GO ?= go

.PHONY: help check build vet lint vet-json fmt-check test race bench bench-smoke bench-profile alloc-gate fuzz-smoke clockcheck chaos chaos-smoke crash-sweep serve-smoke scrub-smoke shard-smoke examples

help: ## list targets (static analysis lives in lint = icash-vet)
	@awk -F':.*## ' '/^[a-z-]+:.*## /{printf "%-12s %s\n", $$1, $$2}' Makefile

check: fmt-check vet lint build race clockcheck bench-smoke alloc-gate crash-sweep serve-smoke scrub-smoke shard-smoke ## everything CI's check job runs

build: ## go build ./...
	$(GO) build ./...

vet: ## stdlib go vet
	$(GO) vet ./...

lint: ## icash-vet: the 9 repo-specific analyzers, strict (stale suppressions fail), baselined
	$(GO) run ./cmd/icash-vet -strict -baseline vet.baseline ./...

vet-json: ## icash-vet findings as an icash-vet/1 JSON document (machine-readable)
	$(GO) run ./cmd/icash-vet -json -strict -baseline vet.baseline ./...

fmt-check: ## fail on gofmt drift
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test: ## go test ./...
	$(GO) test ./...

race: ## go test -race ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-smoke: ## one iteration of every figure benchmark
	$(GO) test -bench=Fig -benchtime=1x -run '^$$' .

bench-profile: ## full figure suite with CPU + heap profiles (cpu.prof, mem.prof)
	$(GO) run ./cmd/icash-bench -run all -cpuprofile cpu.prof -memprofile mem.prof
	@echo "profiles written: cpu.prof mem.prof (inspect with: go tool pprof cpu.prof)"

alloc-gate: ## hot-path allocation gates + allocs/op benchmarks (must run WITHOUT -race)
	$(GO) test -run 'TestAllocGate' -count=1 ./internal/delta/ ./internal/blockdev/ ./internal/core/
	$(GO) test -bench 'AppendEncode|AppendDecode|Size' -benchtime 1000x -benchmem -run '^$$' ./internal/delta/

fuzz-smoke: ## 10s per fuzz target, seeded from testdata corpora
	$(GO) test ./internal/delta -fuzz FuzzDeltaRoundTrip -fuzztime 10s
	$(GO) test ./internal/core -fuzz FuzzLogReplay -fuzztime 10s
	$(GO) test ./internal/core -fuzz FuzzJournalReplay -fuzztime 10s
	$(GO) test ./internal/server -fuzz FuzzFrameRoundTrip -fuzztime 10s
	$(GO) test ./internal/server -fuzz FuzzSessionBytes -fuzztime 10s

crash-sweep: ## crash-point recovery sweeps (fail-stop + fail-slow, journal-audited)
	$(GO) test -count=1 -run 'TestCrash|TestNoCrashBaseline' ./internal/fault/crashtest/

serve-smoke: ## block-service battery under -race: conformance, served-vs-inproc, crash sweep
	$(GO) test -race -count=1 ./internal/server/

clockcheck: ## sim tests with the runtime clock-ownership assertion
	$(GO) test -tags clockcheck ./internal/sim/

chaos: ## 20-seed chaos soak (fail-slow + fail-stop, oracle-checked)
	$(GO) run ./cmd/icash-bench -chaos

scrub-smoke: ## seeded silent-corruption battery under -race: checksums, scrubber, verified repair
	$(GO) test -race -count=1 -run 'TestChaosSilent|TestChaosScrub' ./internal/fault/chaos/
	$(GO) run ./cmd/icash-bench -bitrot -seeds 5 -chaosops 1000

chaos-smoke: ## fixed-seed chaos battery under the race detector
	$(GO) test -race -count=1 -run 'TestChaos|TestDetector|TestSchedule' ./internal/fault/...

shard-smoke: ## sharded-controller battery under -race: routing, scoreboard equality across worker counts, shard-scoped chaos, scaling sweep
	$(GO) test -race -count=1 -run 'TestShard|TestRunBenchmarkSharded|TestBuildSharded|TestStatsAccumulate' ./internal/core/ ./internal/harness/
	$(GO) test -race -count=1 -run 'TestShardRouter|TestChaosShard' ./internal/server/ ./internal/fault/chaos/
	$(GO) run ./cmd/icash-bench -shardsweep -ops 4000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/recovery
	$(GO) run ./examples/oltp
	$(GO) run ./examples/vmimages
	$(GO) run ./examples/bitrot
