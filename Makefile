GO ?= go

.PHONY: check build vet test race bench examples

check: vet build race ## everything CI runs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/recovery
	$(GO) run ./examples/oltp
	$(GO) run ./examples/vmimages
