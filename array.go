package icash

import (
	"fmt"
	"time"

	"icash/internal/core"
	"icash/internal/ssd"
)

// ElementArray is the full "Intelligently Coupled Array" of the paper's
// title: multiple storage elements, each one an SSD+HDD pair coupled by
// its own controller, striped RAID0-style (§3.1 case 1: "all I/O
// operations that can take advantage of parallel disk arrays can take
// advantage of I-CASH"). Chunked striping spreads load across elements
// while sequential runs stay element-local long enough to delta-pack
// together.
//
// ElementArray is not safe for concurrent use.
type ElementArray struct {
	elements    []*Array
	chunkBlocks int64
	perElement  int64
	blocks      int64
}

// ArrayConfig sizes an ElementArray.
type ArrayConfig struct {
	// Elements is the number of SSD+HDD pairs (the paper's prototype is
	// one element; RAID0 analogues use four).
	Elements int
	// ChunkBlocks is the striping chunk size in blocks (default 32).
	ChunkBlocks int64
	// Element configures each storage element; DataBlocks is the
	// *total* array capacity, split evenly across elements.
	Element Config
}

// NewElementArray builds a striped array of I-CASH elements.
func NewElementArray(cfg ArrayConfig) (*ElementArray, error) {
	if cfg.Elements <= 0 {
		return nil, fmt.Errorf("icash: Elements must be positive")
	}
	if cfg.ChunkBlocks <= 0 {
		cfg.ChunkBlocks = 32
	}
	if cfg.Element.DataBlocks <= 0 {
		return nil, fmt.Errorf("icash: Element.DataBlocks must be positive")
	}
	per := (cfg.Element.DataBlocks + int64(cfg.Elements) - 1) / int64(cfg.Elements)
	per = (per + cfg.ChunkBlocks - 1) / cfg.ChunkBlocks * cfg.ChunkBlocks
	a := &ElementArray{
		chunkBlocks: cfg.ChunkBlocks,
		perElement:  per,
		blocks:      per * int64(cfg.Elements),
	}
	for i := 0; i < cfg.Elements; i++ {
		ecfg := cfg.Element
		ecfg.DataBlocks = per
		if ecfg.SSDBlocks > 0 {
			ecfg.SSDBlocks = (ecfg.SSDBlocks + int64(cfg.Elements) - 1) / int64(cfg.Elements)
		}
		el, err := New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("icash: element %d: %w", i, err)
		}
		a.elements = append(a.elements, el)
	}
	return a, nil
}

// Blocks returns the array capacity in blocks.
func (a *ElementArray) Blocks() int64 { return a.blocks }

// Elements returns the individual storage elements (for statistics).
func (a *ElementArray) Elements() []*Array { return a.elements }

// locate maps an array LBA to (element, element LBA) by chunked
// round-robin, exactly like RAID0 striping.
func (a *ElementArray) locate(lba int64) (int, int64) {
	chunk := lba / a.chunkBlocks
	within := lba % a.chunkBlocks
	el := int(chunk % int64(len(a.elements)))
	elChunk := chunk / int64(len(a.elements))
	return el, elChunk*a.chunkBlocks + within
}

func (a *ElementArray) checkRange(lba int64) error {
	if lba < 0 || lba >= a.blocks {
		return fmt.Errorf("icash: lba %d out of range (capacity %d)", lba, a.blocks)
	}
	return nil
}

// Read reads one block through the owning element.
func (a *ElementArray) Read(lba int64, buf []byte) (time.Duration, error) {
	if err := a.checkRange(lba); err != nil {
		return 0, err
	}
	el, elba := a.locate(lba)
	return a.elements[el].Read(elba, buf)
}

// Write writes one block through the owning element.
func (a *ElementArray) Write(lba int64, buf []byte) (time.Duration, error) {
	if err := a.checkRange(lba); err != nil {
		return 0, err
	}
	el, elba := a.locate(lba)
	return a.elements[el].Write(elba, buf)
}

// Preload installs initial content without timing or statistics.
func (a *ElementArray) Preload(lba int64, content []byte) error {
	if err := a.checkRange(lba); err != nil {
		return err
	}
	el, elba := a.locate(lba)
	return a.elements[el].Preload(elba, content)
}

// Flush establishes a consistency point on every element.
func (a *ElementArray) Flush() error {
	for i, el := range a.elements {
		if err := el.Flush(); err != nil {
			return fmt.Errorf("icash: element %d flush: %w", i, err)
		}
	}
	return nil
}

// Crash simulates a power failure across the whole array and rebuilds
// every element from its surviving devices.
func (a *ElementArray) Crash() (*ElementArray, error) {
	out := &ElementArray{
		chunkBlocks: a.chunkBlocks,
		perElement:  a.perElement,
		blocks:      a.blocks,
	}
	for i, el := range a.elements {
		rec, err := el.Crash()
		if err != nil {
			return nil, fmt.Errorf("icash: element %d recovery: %w", i, err)
		}
		out.elements = append(out.elements, rec)
	}
	return out, nil
}

// Stats aggregates controller statistics across elements. Accumulate
// walks every counter field, so metrics added to core.Stats aggregate
// here without a hand-maintained sum.
func (a *ElementArray) Stats() core.Stats {
	var total core.Stats
	for _, el := range a.elements {
		s := el.Stats()
		total.Accumulate(&s)
	}
	return total
}

// SSDStats aggregates SSD device statistics across elements (Table 6
// style: host writes and erases sum; write amplification is averaged by
// recomputation).
func (a *ElementArray) SSDStats() ssd.Stats {
	var total ssd.Stats
	for _, el := range a.elements {
		s := el.SSDStats()
		total.Accumulate(&s)
	}
	return total
}

// KindCounts aggregates the block population across elements.
func (a *ElementArray) KindCounts() core.KindCounts {
	var total core.KindCounts
	for _, el := range a.elements {
		k := el.KindCounts()
		total.Reference += k.Reference
		total.Associate += k.Associate
		total.Independent += k.Independent
	}
	return total
}

// SimulatedTime returns the maximum elapsed simulated time across
// elements (elements run in parallel; the slowest bounds the array).
func (a *ElementArray) SimulatedTime() time.Duration {
	var max time.Duration
	for _, el := range a.elements {
		if t := el.SimulatedTime(); t > max {
			max = t
		}
	}
	return max
}
