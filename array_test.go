package icash

import (
	"bytes"
	"testing"

	"icash/internal/sim"
)

func newTestElementArray(t *testing.T) *ElementArray {
	t.Helper()
	arr, err := NewElementArray(ArrayConfig{
		Elements: 4,
		Element:  Config{DataBlocks: 4096, SSDBlocks: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestElementArrayValidation(t *testing.T) {
	if _, err := NewElementArray(ArrayConfig{}); err == nil {
		t.Error("zero elements must fail")
	}
	if _, err := NewElementArray(ArrayConfig{Elements: 2}); err == nil {
		t.Error("zero DataBlocks must fail")
	}
}

func TestElementArrayCapacityAndStriping(t *testing.T) {
	arr := newTestElementArray(t)
	if arr.Blocks() < 4096 {
		t.Fatalf("capacity %d below requested", arr.Blocks())
	}
	if len(arr.Elements()) != 4 {
		t.Fatalf("%d elements", len(arr.Elements()))
	}
	// Chunked round-robin: consecutive chunks land on distinct elements.
	e0, _ := arr.locate(0)
	e1, _ := arr.locate(32)
	e2, _ := arr.locate(64)
	if e0 == e1 || e1 == e2 || e0 == e2 {
		t.Fatalf("striping broken: %d %d %d", e0, e1, e2)
	}
	// Within a chunk: same element, consecutive local addresses.
	ea, la := arr.locate(5)
	eb, lb := arr.locate(6)
	if ea != eb || lb != la+1 {
		t.Fatal("within-chunk locality broken")
	}
}

func TestElementArrayShadow(t *testing.T) {
	arr := newTestElementArray(t)
	r := sim.NewRand(1)
	model := map[int64][]byte{}
	buf := make([]byte, BlockSize)
	for i := 0; i < 6000; i++ {
		lba := r.Int63n(arr.Blocks())
		if r.Float64() < 0.5 {
			content := pattern(byte(lba % 13))
			if _, err := arr.Write(lba, content); err != nil {
				t.Fatal(err)
			}
			model[lba] = content
		} else {
			if _, err := arr.Read(lba, buf); err != nil {
				t.Fatal(err)
			}
			want := model[lba]
			if want == nil {
				want = make([]byte, BlockSize)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d lba %d mismatch", i, lba)
			}
		}
	}
	// Load must spread across elements.
	for i, el := range arr.Elements() {
		st := el.Stats()
		if st.Ops() < 500 {
			t.Errorf("element %d saw only %d ops", i, st.Ops())
		}
	}
	if arr.Stats().WriteDelta == 0 {
		t.Error("no delta writes across the array")
	}
	if arr.KindCounts().Total() == 0 {
		t.Error("no tracked blocks")
	}
	if arr.SimulatedTime() <= 0 {
		t.Error("no simulated time")
	}
	if arr.SSDStats().HostWrites < 0 {
		t.Error("ssd stats")
	}
}

func TestElementArrayCrashRecovery(t *testing.T) {
	arr := newTestElementArray(t)
	model := map[int64][]byte{}
	for lba := int64(0); lba < 1200; lba++ {
		c := pattern(byte(lba % 9))
		if _, err := arr.Write(lba, c); err != nil {
			t.Fatal(err)
		}
		model[lba] = c
	}
	if err := arr.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := arr.Crash()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	for lba, want := range model {
		if _, err := rec.Read(lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d corrupted across array recovery", lba)
		}
	}
}

func TestElementArrayBoundsAndPreload(t *testing.T) {
	arr := newTestElementArray(t)
	buf := make([]byte, BlockSize)
	if _, err := arr.Read(arr.Blocks(), buf); err == nil {
		t.Error("out-of-range read must fail")
	}
	if _, err := arr.Write(-1, buf); err == nil {
		t.Error("negative write must fail")
	}
	want := pattern(5)
	if err := arr.Preload(777, want); err != nil {
		t.Fatal(err)
	}
	arr.Read(777, buf)
	if !bytes.Equal(buf, want) {
		t.Fatal("preload mismatch")
	}
}
