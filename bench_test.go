// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), plus micro-benchmarks of the core algorithms and
// ablation sweeps over the design parameters DESIGN.md calls out.
//
// The figure/table benchmarks drive the full five-system harness at
// 1/256 of the paper's scale; each iteration is one complete experiment,
// and the paper's rows are logged alongside custom metrics (run with
// -benchtime=1x -v to see them). The reproduction criterion is shape:
// who wins and by roughly what factor.
package icash_test

import (
	"fmt"
	"testing"

	"icash"
	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/delta"
	"icash/internal/harness"
	"icash/internal/sig"
	"icash/internal/sim"
	"icash/internal/workload"
)

var benchOpts = workload.Options{Scale: 1.0 / 256, Seed: 42}

// benchExperiment runs one registered experiment per iteration and logs
// the measured-vs-paper rows once.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p, ok := workload.ByName(e.Benchmark)
	if !ok {
		b.Fatalf("unknown benchmark %q", e.Benchmark)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := harness.RunBenchmark(p, benchOpts, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: %s\n%s", e.ID, e.Title, e.Render(br))
			if r := br.Results[harness.ICASH]; r != nil {
				b.ReportMetric(r.TxnPerSec, "icash-tx/s")
			}
			if r := br.Results[harness.FusionIO]; r != nil {
				b.ReportMetric(r.TxnPerSec, "fusionio-tx/s")
			}
		}
	}
}

// One benchmark per figure and table of §5 (DESIGN.md §3 index).

func BenchmarkFig06a(b *testing.B)         { benchExperiment(b, "fig6a") }
func BenchmarkFig06b(b *testing.B)         { benchExperiment(b, "fig6b") }
func BenchmarkFig07(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig08a(b *testing.B)         { benchExperiment(b, "fig8a") }
func BenchmarkFig08b(b *testing.B)         { benchExperiment(b, "fig8b") }
func BenchmarkFig09(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10a(b *testing.B)         { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)         { benchExperiment(b, "fig10b") }
func BenchmarkFig11(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)          { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)          { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)          { benchExperiment(b, "fig16") }
func BenchmarkTable5Hadoop(b *testing.B)   { benchExperiment(b, "table5-hadoop") }
func BenchmarkTable5TPCC(b *testing.B)     { benchExperiment(b, "table5-tpcc") }
func BenchmarkTable6SysBench(b *testing.B) { benchExperiment(b, "table6-sysbench") }
func BenchmarkTable6Hadoop(b *testing.B)   { benchExperiment(b, "table6-hadoop") }
func BenchmarkTable6TPCC(b *testing.B)     { benchExperiment(b, "table6-tpcc") }
func BenchmarkTable6SPECsfs(b *testing.B)  { benchExperiment(b, "table6-specsfs") }

// ---------------------------------------------------------------------
// Micro-benchmarks: the compute building blocks whose cost the paper
// trades against mechanical I/O.
// ---------------------------------------------------------------------

func benchBlocks(similar bool) (target, ref []byte) {
	ref = make([]byte, blockdev.BlockSize)
	sim.NewRand(1).Bytes(ref)
	target = append([]byte(nil), ref...)
	if similar {
		r := sim.NewRand(2)
		for i := 0; i < 5; i++ { // five 40-byte runs ≈ 5% of the block
			pos := r.Intn(blockdev.BlockSize - 40)
			for j := 0; j < 40; j++ {
				target[pos+j] = byte(r.Uint64())
			}
		}
	} else {
		sim.NewRand(3).Bytes(target)
	}
	return
}

func BenchmarkDeltaEncodeSimilar(b *testing.B) {
	target, ref := benchBlocks(true)
	b.SetBytes(blockdev.BlockSize)
	for i := 0; i < b.N; i++ {
		if _, ok := delta.Encode(target, ref, 2048); !ok {
			b.Fatal("similar block rejected")
		}
	}
}

func BenchmarkDeltaEncodeUnrelated(b *testing.B) {
	target, ref := benchBlocks(false)
	b.SetBytes(blockdev.BlockSize)
	for i := 0; i < b.N; i++ {
		delta.Encode(target, ref, 2048) // rejected by threshold
	}
}

func BenchmarkDeltaDecode(b *testing.B) {
	target, ref := benchBlocks(true)
	d, _ := delta.Encode(target, ref, 0)
	b.SetBytes(blockdev.BlockSize)
	for i := 0; i < b.N; i++ {
		if _, err := delta.Decode(ref, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignatureCompute(b *testing.B) {
	blk := make([]byte, blockdev.BlockSize)
	sim.NewRand(4).Bytes(blk)
	b.SetBytes(blockdev.BlockSize)
	for i := 0; i < b.N; i++ {
		sig.Compute(blk)
	}
}

func BenchmarkHeatmapRecordPopularity(b *testing.B) {
	h := sig.NewHeatmap()
	blk := make([]byte, blockdev.BlockSize)
	sim.NewRand(5).Bytes(blk)
	s := sig.Compute(blk)
	for i := 0; i < b.N; i++ {
		h.Record(s)
		_ = h.Popularity(s)
	}
}

func BenchmarkArraySteadyStateWrite(b *testing.B) {
	arr, err := icash.New(icash.Config{DataBlocks: 4096, SSDBlocks: 512})
	if err != nil {
		b.Fatal(err)
	}
	base := make([]byte, icash.BlockSize)
	sim.NewRand(6).Bytes(base)
	for lba := int64(0); lba < 2048; lba++ {
		arr.Write(lba, base)
	}
	mod := append([]byte(nil), base...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod[128+(i%64)] = byte(i)
		if _, err := arr.Write(int64(i%2048), mod); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArraySteadyStateRead(b *testing.B) {
	arr, err := icash.New(icash.Config{DataBlocks: 4096, SSDBlocks: 512})
	if err != nil {
		b.Fatal(err)
	}
	base := make([]byte, icash.BlockSize)
	sim.NewRand(7).Bytes(base)
	for lba := int64(0); lba < 2048; lba++ {
		arr.Write(lba, base)
	}
	buf := make([]byte, icash.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arr.Read(int64(i%2048), buf); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablation sweeps (DESIGN.md §4): each benchmark runs the I-CASH system
// alone across one parameter's values and logs the resulting trade-off.
// ---------------------------------------------------------------------

// ablationRun executes SysBench on I-CASH only, with tune applied.
func ablationRun(b *testing.B, tune func(*core.Config)) *harness.Result {
	b.Helper()
	opts := benchOpts
	opts.TuneICASH = tune
	br, err := harness.RunBenchmark(workload.SysBench(), opts, []harness.Kind{harness.ICASH})
	if err != nil {
		b.Fatal(err)
	}
	return br.Results[harness.ICASH]
}

// BenchmarkAblationSignature compares the paper's sampled sub-signature
// against hashing the full sub-block: the sampled form is an order of
// magnitude cheaper, which is why the paper rejects hashing (§4.2).
func BenchmarkAblationSignature(b *testing.B) {
	blk := make([]byte, blockdev.BlockSize)
	sim.NewRand(8).Bytes(blk)
	b.Run("sampled-subsig", func(b *testing.B) {
		b.SetBytes(blockdev.BlockSize)
		for i := 0; i < b.N; i++ {
			sig.Compute(blk)
		}
	})
	b.Run("full-fnv-hash", func(b *testing.B) {
		b.SetBytes(blockdev.BlockSize)
		for i := 0; i < b.N; i++ {
			var h uint64 = 14695981039346656037
			for _, c := range blk {
				h = (h ^ uint64(c)) * 1099511628211
			}
			_ = h
		}
	})
}

func BenchmarkAblationScanPeriod(b *testing.B) {
	for _, period := range []int{64, 240, 960, 2000} {
		period := period
		b.Run(fmt.Sprintf("period-%d", period), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ablationRun(b, func(c *core.Config) { c.ScanPeriod = period })
				if i == 0 {
					b.ReportMetric(r.TxnPerSec, "tx/s")
					b.ReportMetric(float64(r.ICASHStats.Scans), "scans")
					b.ReportMetric(float64(r.ICASHStats.RefsSelected), "refs")
				}
			}
		})
	}
}

func BenchmarkAblationDeltaThreshold(b *testing.B) {
	for _, thr := range []int{512, 1024, 2048, 4096} {
		thr := thr
		b.Run(fmt.Sprintf("threshold-%d", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ablationRun(b, func(c *core.Config) { c.DeltaThreshold = thr })
				if i == 0 {
					b.ReportMetric(r.TxnPerSec, "tx/s")
					b.ReportMetric(float64(r.SSDHostWrites), "ssd-writes")
					b.ReportMetric(float64(r.ICASHStats.WriteDelta), "delta-writes")
				}
			}
		})
	}
}

func BenchmarkAblationSegmentSize(b *testing.B) {
	for _, seg := range []int{32, 64, 128, 256} {
		seg := seg
		b.Run(fmt.Sprintf("segment-%d", seg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ablationRun(b, func(c *core.Config) { c.SegmentSize = seg })
				if i == 0 {
					b.ReportMetric(r.TxnPerSec, "tx/s")
					b.ReportMetric(float64(r.ICASHStats.EvictDeltaRAM), "delta-evictions")
				}
			}
		})
	}
}

func BenchmarkAblationFlushPeriod(b *testing.B) {
	for _, ops := range []int{16, 128, 480, 4096} {
		ops := ops
		b.Run(fmt.Sprintf("flush-%d", ops), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ablationRun(b, func(c *core.Config) { c.FlushPeriodOps = ops })
				if i == 0 {
					b.ReportMetric(r.TxnPerSec, "tx/s")
					b.ReportMetric(float64(r.ICASHStats.LogBlocksWritten), "log-writes")
					b.ReportMetric(float64(r.ICASHStats.FlushRuns), "flushes")
				}
			}
		})
	}
}

func BenchmarkAblationScanWindow(b *testing.B) {
	for _, win := range []int{500, 1000, 4000} {
		win := win
		b.Run(fmt.Sprintf("window-%d", win), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ablationRun(b, func(c *core.Config) { c.ScanWindow = win })
				if i == 0 {
					b.ReportMetric(r.TxnPerSec, "tx/s")
					b.ReportMetric(float64(r.ICASHStats.AssocFormed), "associations")
				}
			}
		})
	}
}
