// Command icash-bench regenerates the figures and tables of the I-CASH
// paper's evaluation (§5) on the simulated storage stack.
//
// Usage:
//
//	icash-bench -run all                 # every figure and table
//	icash-bench -run fig6a,fig7          # specific experiments
//	icash-bench -list                    # show the experiment index
//	icash-bench -run fig6a -scale 0.02   # bigger run (default 1/256)
//	icash-bench -run fig15 -qd 8 -vms    # overlapping I/O, per-VM streams
//	icash-bench -qdsweep                 # RAID0 queue-depth scaling table
//
// Each experiment prints measured values next to the paper's reported
// values; the reproduction criterion is the shape (who wins, by roughly
// what factor), not absolute numbers — the substrate is a simulator,
// not the authors' 2011 testbed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"icash/internal/harness"
	"icash/internal/workload"
)

func main() {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list all experiments and exit")
		scale   = flag.Float64("scale", 1.0/256, "data-set and op-count scale relative to the paper")
		seed    = flag.Uint64("seed", 42, "workload random seed")
		qd      = flag.Int("qd", 1, "outstanding requests per stream (1 = classic serial issue)")
		vms     = flag.Bool("vms", false, "run multi-VM benchmarks as interleaved per-VM streams")
		qdsweep = flag.Bool("qdsweep", false, "print the RAID0 random-read queue-depth scaling table and exit")
	)
	flag.Parse()

	if *qdsweep {
		opts := workload.Options{Seed: *seed}
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
		})
		if scaleSet {
			opts.Scale = *scale
		}
		report, err := harness.QDSweep(nil, opts)
		fmt.Print(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list || *run == "" {
		fmt.Println("experiments (use -run ID[,ID...] or -run all):")
		for _, e := range harness.Experiments {
			fmt.Printf("  %-16s %-12s %s\n", e.ID, e.Benchmark, e.Title)
		}
		if *run == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := strings.Split(*run, ",")
	opts := workload.Options{Scale: *scale, Seed: *seed, QueueDepth: *qd, StreamPerVM: *vms}
	report, err := harness.RunExperiments(ids, opts)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
		os.Exit(1)
	}
}
