// Command icash-bench regenerates the figures and tables of the I-CASH
// paper's evaluation (§5) on the simulated storage stack.
//
// Usage:
//
//	icash-bench -run all                 # every figure and table
//	icash-bench -run fig6a,fig7          # specific experiments
//	icash-bench -list                    # show the experiment index
//	icash-bench -run fig6a -scale 0.02   # bigger run (default 1/256)
//	icash-bench -run fig15 -qd 8 -vms    # overlapping I/O, per-VM streams
//	icash-bench -run all -parallel 1     # serial (historical) scheduling
//	icash-bench -qdsweep                 # RAID0 queue-depth scaling table
//	icash-bench -serve                   # served-vs-inproc window scaling table
//	icash-bench -chaos                   # 20-seed chaos soak at QD=8
//	icash-bench -chaos -seeds 5 -chaosops 5000
//	icash-bench -scrub                   # scrub-overhead table (clean soaks, off vs on)
//	icash-bench -bitrot                  # seeded silent-corruption soak, scrubber on
//	icash-bench -run all -cpuprofile cpu.out -memprofile mem.out
//
// Each experiment prints measured values next to the paper's reported
// values; the reproduction criterion is the shape (who wins, by roughly
// what factor), not absolute numbers — the substrate is a simulator,
// not the authors' 2011 testbed.
//
// Experiment points (one per profile/system/queue-depth combination)
// are independent simulations; -parallel fans them across a worker
// pool with results reassembled in submission order, so the report is
// byte-identical at every worker count. -parallel 1 reproduces the
// historical serial scheduling exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"

	"icash/internal/fault/chaos"
	"icash/internal/harness"
	"icash/internal/metrics"
	"icash/internal/server"
	"icash/internal/sim"
	"icash/internal/workload"
)

// chaosSeedResult is one seed's outcome, gathered by index so the soak
// report stays in seed order whatever the worker count.
type chaosSeedResult struct {
	res *chaos.Result
	err error
}

// fanSeeds runs f(0..n-1) across the harness worker pool and returns
// the results in index order — the same submission-order reassembly
// the experiment runner uses, so every report is byte-identical at any
// -parallel count.
func fanSeeds(n int, f func(i int) chaosSeedResult) []chaosSeedResult {
	outs := make([]chaosSeedResult, n)
	workers := harness.Parallelism()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				outs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return outs
}

// runChaos drives n chaos-soak seeds — fanned across the harness's
// worker count, each seed a fully independent simulation — and prints
// one result line per seed (in seed order) plus an aggregate
// tail-latency summary. Any seed that fails verification (invariant
// breakage or silent data loss) fails the whole run after all seeds
// have reported.
func runChaos(base uint64, n, ops, qd int) error {
	var (
		readAll  metrics.Histogram
		writeAll metrics.Histogram
		failed   []uint64
		hedges   int64
		wins     int64
		flips    int64
	)
	if qd <= 0 {
		qd = 8
	}
	fmt.Printf("chaos soak: %d seeds from %d, %d ops/seed, QD=%d\n", n, base, ops, qd)
	outs := fanSeeds(n, func(i int) chaosSeedResult {
		cfg := chaos.Config{Seed: base + uint64(i), Ops: ops, QueueDepth: qd}
		res, err := chaos.Run(cfg)
		return chaosSeedResult{res: res, err: err}
	})
	for i, out := range outs {
		if out.err != nil {
			failed = append(failed, base+uint64(i))
			fmt.Printf("  FAIL %v\n", out.err)
			continue
		}
		res := out.res
		fmt.Printf("  %s\n", res)
		readAll.Merge(&res.ReadHist)
		writeAll.Merge(&res.WriteHist)
		hedges += res.Stats.HedgedReads
		wins += res.Stats.HedgeWins
		flips += res.Stats.QuarantineEvents
	}
	fmt.Printf("aggregate reads  %s\n", readAll.String())
	fmt.Printf("aggregate writes %s\n", writeAll.String())
	fmt.Printf("hedges %d (wins %d), quarantine flips %d\n", hedges, wins, flips)
	if failed != nil {
		return fmt.Errorf("chaos: %d of %d seeds failed: %v", len(failed), n, failed)
	}
	fmt.Printf("all %d seeds clean: invariants held, zero silent data loss\n", n)
	return nil
}

// runScrubOverhead prints the cost of running the background integrity
// scrubber on an otherwise healthy system: clean soaks (no fault
// injection of any kind) with the scrubber off and at two interval
// settings, so the throughput and tail-latency deltas are pure scrub
// overhead — the scrubber's reads share the devices with host I/O.
func runScrubOverhead(base uint64, n, ops, qd int) error {
	if qd <= 0 {
		qd = 8
	}
	arms := []struct {
		name     string
		interval sim.Duration
	}{
		{"off", 0},
		{"10ms", 10 * sim.Millisecond},
		{"2ms", 2 * sim.Millisecond},
	}
	fmt.Printf("scrub overhead: %d clean seeds from %d, %d ops/seed, QD=%d\n", n, base, ops, qd)
	fmt.Printf("%-6s %9s %10s %9s %9s %9s %8s %8s %7s\n",
		"scrub", "ops", "ops/sec", "read p50", "read p99", "write p99", "slotchk", "homechk", "passes")
	for _, arm := range arms {
		outs := fanSeeds(n, func(i int) chaosSeedResult {
			cfg := chaos.Config{
				Seed: base + uint64(i), Ops: ops, QueueDepth: qd,
				NoFailStop: true, NoFailSlow: true,
				ScrubInterval: arm.interval,
			}
			res, err := chaos.Run(cfg)
			return chaosSeedResult{res: res, err: err}
		})
		var (
			readAll, writeAll              metrics.Histogram
			totalOps                       int64
			elapsed                        sim.Duration
			slotChecks, homeChecks, passes int64
		)
		for i, out := range outs {
			if out.err != nil {
				return fmt.Errorf("scrub overhead: seed %d (%s): %w", base+uint64(i), arm.name, out.err)
			}
			res := out.res
			if res.Stats.CorruptionsDetected != 0 {
				return fmt.Errorf("scrub overhead: seed %d (%s): %d corruptions detected on a clean run",
					base+uint64(i), arm.name, res.Stats.CorruptionsDetected)
			}
			readAll.Merge(&res.ReadHist)
			writeAll.Merge(&res.WriteHist)
			totalOps += res.Ops
			elapsed += res.Elapsed
			slotChecks += res.Stats.ScrubSlotChecks
			homeChecks += res.Stats.ScrubHomeChecks
			passes += res.Stats.ScrubPasses
		}
		opsPerSec := float64(totalOps) / (float64(elapsed) / float64(sim.Second))
		fmt.Printf("%-6s %9d %10.0f %9v %9v %9v %8d %8d %7d\n",
			arm.name, totalOps, opsPerSec,
			readAll.P50(), readAll.P99(), writeAll.P99(),
			slotChecks, homeChecks, passes)
	}
	return nil
}

// runBitrot drives the seeded silent-corruption soak: every seed gets
// a generated schedule of bit-flip / misdirected-write / lost-write
// windows on both devices with the scrubber on, and the report
// aggregates how much damage was injected, how fast the checksums
// caught it, and how much of it could be repaired. Any wrong byte
// reaching the host beyond the controller's own accounted loss fails
// the run — the zero-undetected-corruption bound.
func runBitrot(base uint64, n, ops, qd int) error {
	if qd <= 0 {
		qd = 8
	}
	fmt.Printf("bit-rot soak: %d seeds from %d, %d ops/seed, QD=%d, scrubber on\n", n, base, ops, qd)
	outs := fanSeeds(n, func(i int) chaosSeedResult {
		// Pure silent-corruption arm: fail-stop and fail-slow injection
		// off, so every wrong byte, detection, and repair in the report
		// traces back to a lying device — the combined-mode soak lives
		// under -chaos.
		cfg := chaos.Config{
			Seed: base + uint64(i), Ops: ops, QueueDepth: qd,
			NoFailStop: true, NoFailSlow: true,
			SilentFaults:  true,
			ScrubInterval: 5 * sim.Millisecond,
		}
		res, err := chaos.Run(cfg)
		return chaosSeedResult{res: res, err: err}
	})
	var (
		detectAll                           metrics.Histogram
		injected, detected, repaired, unrep int64
		uncaught, dropped                   int64
		failed                              []uint64
	)
	for i, out := range outs {
		if out.err != nil {
			failed = append(failed, base+uint64(i))
			fmt.Printf("  FAIL %v\n", out.err)
			continue
		}
		res := out.res
		fmt.Printf("  %s\n", res)
		injected += res.SSDFault.BitFlips + res.SSDFault.MisdirectedWrites + res.SSDFault.LostWrites +
			res.HDDFault.BitFlips + res.HDDFault.MisdirectedWrites + res.HDDFault.LostWrites
		detected += res.Stats.CorruptionsDetected
		repaired += res.Stats.CorruptionsRepaired
		unrep += res.Stats.UnrepairableBlocks
		uncaught += res.SilentUncaught
		dropped += res.Stats.DroppedLogRecs
		detectAll.Merge(&res.DetectLat)
	}
	fmt.Printf("injected %d (ssd+hdd), detected %d, repaired %d, unrepairable %d, dropped log recs %d\n",
		injected, detected, repaired, unrep, dropped)
	fmt.Printf("never host-visible (cold, uncaught at end) %d\n", uncaught)
	fmt.Printf("detection latency %s\n", detectAll.String())
	if failed != nil {
		return fmt.Errorf("bitrot: %d of %d seeds failed: %v", len(failed), n, failed)
	}
	fmt.Printf("all %d seeds clean: every host-visible corruption caught and accounted\n", n)
	return nil
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		run     = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list all experiments and exit")
		scale   = flag.Float64("scale", 1.0/256, "data-set and op-count scale relative to the paper")
		seed    = flag.Uint64("seed", 42, "workload random seed")
		qd      = flag.Int("qd", 1, "outstanding requests per stream (1 = classic serial issue)")
		vms     = flag.Bool("vms", false, "run multi-VM benchmarks as interleaved per-VM streams")
		qdsweep = flag.Bool("qdsweep", false, "print the RAID0 random-read queue-depth scaling table and exit")
		wsweep  = flag.Bool("wsweep", false, "print the I-CASH random-write queue-depth scaling table (group-commit batching) and exit")
		serve   = flag.Bool("serve", false, "print the served-vs-inproc window scaling table (block-service front-end) and exit")

		shards     = flag.Int("shards", 1, "partition I-CASH into this many LBA-range shards, each its own SSD+HDD pair (1 = classic single controller)")
		shardsweep = flag.Bool("shardsweep", false, "print the I-CASH shard-count scaling table (random read + write at QD>=8) and exit")
		sweepOps   = flag.Int("ops", 0, "sweeps: cap measured operations per point (0 = sweep default)")

		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"experiment points to run concurrently (1 = historical serial scheduling; output is identical either way)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		chaos    = flag.Bool("chaos", false, "run the deterministic chaos soak (fail-slow + fail-stop schedules, oracle-checked)")
		seeds    = flag.Int("seeds", 20, "chaos/scrub/bitrot: number of consecutive seeds, starting at -seed")
		chaosops = flag.Int("chaosops", 2000, "chaos/scrub/bitrot: measured operations per seed")

		scrub  = flag.Bool("scrub", false, "print the scrub-overhead table (clean soaks, scrubber off vs on) and exit")
		bitrot = flag.Bool("bitrot", false, "run the seeded bit-rot soak (silent-corruption schedules, scrubber on, oracle-checked) and exit")
	)
	flag.Parse()
	harness.SetParallelism(*parallel)
	harness.SetShards(*shards)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
			}
		}()
	}

	if *chaos || *scrub || *bitrot {
		// The shared -qd flag defaults to 1 for the classic experiments;
		// the soak modes' own default is QD=8, so only an explicit -qd
		// overrides it.
		soakQD := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "qd" {
				soakQD = *qd
			}
		})
		var err error
		switch {
		case *scrub:
			err = runScrubOverhead(*seed, *seeds, *chaosops, soakQD)
		case *bitrot:
			err = runBitrot(*seed, *seeds, *chaosops, soakQD)
		default:
			err = runChaos(*seed, *seeds, *chaosops, soakQD)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *qdsweep || *wsweep || *serve || *shardsweep {
		opts := workload.Options{Seed: *seed, MaxOps: *sweepOps}
		scaleSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				scaleSet = true
			}
			if f.Name == "qd" {
				opts.QueueDepth = *qd
			}
		})
		if scaleSet {
			opts.Scale = *scale
		}
		sweep := harness.QDSweep
		if *wsweep {
			sweep = harness.WriteQDSweep
		}
		if *serve {
			sweep = server.ServeSweep
		}
		if *shardsweep {
			sweep = harness.ShardSweep
		}
		report, err := sweep(nil, opts)
		fmt.Print(report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
			return 1
		}
		return 0
	}

	if *list || *run == "" {
		fmt.Println("experiments (use -run ID[,ID...] or -run all):")
		for _, e := range harness.Experiments {
			fmt.Printf("  %-16s %-12s %s\n", e.ID, e.Benchmark, e.Title)
		}
		if *run == "" && !*list {
			return 2
		}
		return 0
	}

	ids := strings.Split(*run, ",")
	opts := workload.Options{Scale: *scale, Seed: *seed, QueueDepth: *qd, StreamPerVM: *vms}
	report, err := harness.RunExperiments(ids, opts)
	fmt.Print(report)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icash-bench: %v\n", err)
		return 1
	}
	return 0
}
