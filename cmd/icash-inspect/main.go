// Command icash-inspect runs a benchmark workload against a single
// I-CASH array and dumps the controller's internal state: the block-kind
// mix, delta-size distribution, heatmap spectrum, SSD slot usage, and
// the full path/eviction statistics — the observability companion to
// icash-bench.
//
// Usage:
//
//	icash-inspect -bench SysBench
//	icash-inspect -bench "TPC-C 5VMs" -scale 0.01
//	icash-inspect -bench "TPC-C 5VMs" -serve -vms -window 8
//
// With -serve the workload arrives through the block-service front-end
// (simulated framed sessions on the event engine) instead of the
// in-process harness, and the dump is preceded by per-session wire
// accounting: request mix, bytes on the wire, uplink-station
// utilization, and end-to-end latency histograms.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/harness"
	"icash/internal/metrics"
	"icash/internal/server"
	"icash/internal/ssd"
	"icash/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "SysBench", "benchmark name (see icash-trace)")
		scale  = flag.Float64("scale", 1.0/256, "workload scale")
		seed   = flag.Uint64("seed", 42, "workload seed")
		serve  = flag.Bool("serve", false, "drive the array through the block-service front-end")
		window = flag.Int("window", 8, "serve mode: per-session in-flight window")
		vms    = flag.Bool("vms", false, "serve mode: one session per VM partition")
		shards = flag.Int("shards", 1, "partition the array into N LBA-range shards")
	)
	flag.Parse()
	harness.SetShards(*shards)

	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "icash-inspect: unknown benchmark %q\n", *bench)
		os.Exit(2)
	}

	if *serve {
		opts := workload.Options{Scale: *scale, Seed: *seed, StreamPerVM: *vms, QueueDepth: *window}
		cfg := server.DefaultSimConfig()
		cfg.Window = *window
		sr, err := server.RunServed(p, opts, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "icash-inspect: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(sr.Report())
		fmt.Println()
		dumpController(viewOf(sr.Sys), sr.Stats, sr.Degraded)
		st := ssdTotals(sr.Sys)
		fmt.Printf("\ndevices: SSD %s (%d host writes, %d erases, WA %.2f)\n",
			workload.ByteSize(st.HostWrites*blockdev.BlockSize),
			st.HostWrites, st.Erases, st.WriteAmplification())
		return
	}

	opts := workload.Options{Scale: *scale, Seed: *seed}
	br, err := harness.RunBenchmark(p, opts, []harness.Kind{harness.ICASH})
	if err != nil {
		fmt.Fprintf(os.Stderr, "icash-inspect: %v\n", err)
		os.Exit(1)
	}
	res := br.Results[harness.ICASH]
	st := res.ICASHStats

	fmt.Printf("I-CASH on %s (scale %.4g, %d ops)\n", p.Name, *scale, res.Ops)
	fmt.Printf("elapsed %v — %.1f tx/s, reads avg %v, writes avg %v\n",
		res.Elapsed, res.TxnPerSec, res.ReadLat.Mean(), res.WriteLat.Mean())
	fmt.Printf("read latency  %s\n", res.ReadHist.String())
	fmt.Printf("write latency %s\n\n", res.WriteHist.String())

	view := arrayView{single: br.SysICASH, sharded: br.SysSharded}
	dumpController(view, st, res.Degraded)

	fmt.Printf("\ndevices: SSD %s (%d host writes, %d erases, WA %.2f), HDD busy %v\n",
		workload.ByteSize(int64(res.SSDHostWrites)*blockdev.BlockSize),
		res.SSDHostWrites, res.SSDErases, res.SSDWriteAmp, res.HDDBusy)
}

// arrayView folds the single-controller and sharded builds into the one
// read-only surface the dump renders: aggregates come from whichever
// composition is live, the heatmap spectrum sums across shards, and the
// sharded form carries the per-shard breakouts.
type arrayView struct {
	single  *core.Controller
	sharded *core.ShardedController
}

func viewOf(sys *harness.System) arrayView {
	return arrayView{single: sys.ICASH, sharded: sys.Sharded}
}

func (v arrayView) kindCounts() core.KindCounts {
	if v.sharded != nil {
		return v.sharded.KindCounts()
	}
	return v.single.KindCounts()
}

func (v arrayView) liveSlots() int {
	if v.sharded != nil {
		return v.sharded.LiveSlotCount()
	}
	return v.single.LiveSlotCount()
}

func (v arrayView) freeSlots() int {
	if v.sharded != nil {
		return v.sharded.FreeSlotCount()
	}
	return v.single.FreeSlotCount()
}

func (v arrayView) deltaRAMUsed() int64 {
	if v.sharded != nil {
		return v.sharded.DeltaRAMUsed()
	}
	return v.single.DeltaRAMUsed()
}

func (v arrayView) poisonedBlocks() int {
	if v.sharded != nil {
		return v.sharded.PoisonedBlocks()
	}
	return v.single.PoisonedBlocks()
}

// heatValue sums one heatmap cell across every shard's controller.
func (v arrayView) heatValue(row int, col byte) uint64 {
	if v.sharded != nil {
		var total uint64
		for _, sh := range v.sharded.Shards() {
			total += sh.Heatmap().Value(row, col)
		}
		return total
	}
	return v.single.Heatmap().Value(row, col)
}

// ssdTotals aggregates flash accounting across however many SSDs the
// build has (one per shard on sharded builds).
func ssdTotals(sys *harness.System) *ssd.Stats {
	if sys.SSD != nil {
		return &sys.SSD.Stats
	}
	var total ssd.Stats
	for _, dev := range sys.SSDs {
		total.Accumulate(&dev.Stats)
	}
	return &total
}

// dumpController renders the controller-internal sections shared by the
// direct and served paths: block mix, delta accounting, I/O paths,
// reference management, journal (with a per-shard breakout on sharded
// builds), resilience, evictions, and the heatmap spectrum.
func dumpController(v arrayView, st *core.Stats, degraded bool) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	kinds := v.kindCounts()
	ref, assoc, indep := kinds.Fractions()
	fmt.Fprintf(w, "block mix\treference %d (%.0f%%)\tassociate %d (%.0f%%)\tindependent %d (%.0f%%)\n",
		kinds.Reference, 100*ref, kinds.Associate, 100*assoc, kinds.Independent, 100*indep)
	fmt.Fprintf(w, "SSD slots\tlive %d\tfree %d\t\n", v.liveSlots(), v.freeSlots())
	fmt.Fprintf(w, "delta RAM\t%s in use\tavg delta %.0fB\t%d deltas accepted\n",
		workload.ByteSize(v.deltaRAMUsed()), st.AvgDeltaSize(), st.DeltaCount)
	if sc := v.sharded; sc != nil {
		fmt.Fprintf(w, "shards\t%d x %d blocks\t\t\n", sc.NumShards(), sc.ShardBlocks())
	}
	w.Flush()

	fmt.Println("\ndelta size distribution (accepted deltas):")
	labels := []string{"<=64B", "<=128B", "<=256B", "<=512B", "<=1KB", "<=2KB"}
	for i, n := range st.DeltaSizeHist {
		bar := ""
		if st.DeltaCount > 0 {
			width := int(50 * n / st.DeltaCount)
			for j := 0; j < width; j++ {
				bar += "#"
			}
		}
		fmt.Printf("  %-7s %7d %s\n", labels[i], n, bar)
	}

	fmt.Println("\nwrite path:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  delta-compressed\t%d\n", st.WriteDelta)
	fmt.Fprintf(w, "  SSD write-through (oversized delta, §5.3)\t%d\n", st.WriteThroughSSD)
	fmt.Fprintf(w, "  independent (RAM data block)\t%d\n", st.WriteIndependent)
	fmt.Fprintf(w, "  delta encodes / threshold rejects\t%d / %d\n", st.EncodeOps, st.ScanDeltaRejects)
	w.Flush()

	fmt.Println("\nread path:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  controller RAM hits\t%d\n", st.ReadRAMHits)
	fmt.Fprintf(w, "  SSD reference + delta decode\t%d (%d decodes)\n", st.ReadSSDHits, st.DecodeOps)
	fmt.Fprintf(w, "  packed-delta log loads\t%d\n", st.ReadLogLoads)
	fmt.Fprintf(w, "  HDD home misses\t%d\n", st.ReadHDDMisses)
	w.Flush()

	fmt.Println("\nreference management:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  scans / candidates examined\t%d / %d\n", st.Scans, st.ScanCandidates)
	fmt.Fprintf(w, "  references selected / demoted\t%d / %d\n", st.RefsSelected, st.RefsDemoted)
	fmt.Fprintf(w, "  associations formed (first-load: %d)\t%d\n", st.FirstLoadPairs, st.AssocFormed)
	w.Flush()

	fmt.Println("\ndelta log:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  flushes / log blocks written / deltas packed\t%d / %d / %d\n",
		st.FlushRuns, st.LogBlocksWritten, st.DeltasPacked)
	fmt.Fprintf(w, "  cleaner runs / deltas rescued\t%d / %d\n", st.LogCleanerRuns, st.DeltasRescued)
	w.Flush()

	fmt.Println("\ngroup-commit journal:")
	fmt.Print(metrics.FormatCounters(metrics.JournalCounters(st), "  ", false))
	if st.TxnsCommitted > 0 {
		fmt.Printf("  avg batch %s over %d txns\n",
			workload.ByteSize(st.GroupCommitBytes/st.TxnsCommitted), st.TxnsCommitted)
	}
	if sc := v.sharded; sc != nil {
		// Each shard runs its own group-commit chain; the aggregate
		// above is their sum, and the breakout shows whether the LBA
		// routing spread the commit load or funneled it.
		fmt.Println("  per-shard chains:")
		for i := 0; i < sc.NumShards(); i++ {
			ss := sc.Shard(i).Stats
			fmt.Printf("    s%d\ttxns=%d\tbytes=%s", i, ss.TxnsCommitted,
				workload.ByteSize(ss.GroupCommitBytes))
			if ss.TxnsCommitted > 0 {
				fmt.Printf("\tavg batch %s", workload.ByteSize(ss.GroupCommitBytes/ss.TxnsCommitted))
			}
			fmt.Println()
		}
	}

	fmt.Println("\nresilience (fault handling and self-healing):")
	if table := metrics.FormatCounters(metrics.ResilienceCounters(st), "  ", true); table != "" {
		fmt.Print(table)
	} else {
		fmt.Println("  no faults observed")
	}
	if degraded {
		fmt.Println("  ** array is running in HDD-only degraded mode **")
	}

	fmt.Println("\nintegrity (checksums, scrubbing, verified repair):")
	if table := metrics.FormatCounters(metrics.IntegrityCounters(st), "  ", true); table != "" {
		fmt.Print(table)
	} else {
		fmt.Println("  no corruption observed, scrubber idle")
	}
	if n := v.poisonedBlocks(); n > 0 {
		fmt.Printf("  ** %d blocks poisoned (unrepairable; awaiting overwrite) **\n", n)
	}

	fmt.Println("\nevictions:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  virtual blocks / data RAM / delta RAM\t%d / %d / %d\n",
		st.EvictVBlocks, st.EvictDataRAM, st.EvictDeltaRAM)
	fmt.Fprintf(w, "  write-backs to home\t%d\n", st.WritebacksHome)
	w.Flush()

	fmt.Println("\nheatmap spectrum (top sub-signature popularity per row, summed across shards):")
	for row := 0; row < 8; row++ {
		type hv struct {
			val byte
			pop uint64
		}
		var top []hv
		for c := 0; c < 256; c++ {
			if p := v.heatValue(row, byte(c)); p > 0 {
				top = append(top, hv{byte(c), p})
			}
		}
		sort.Slice(top, func(i, j int) bool { return top[i].pop > top[j].pop })
		fmt.Printf("  row %d:", row)
		for i := 0; i < 4 && i < len(top); i++ {
			fmt.Printf("  0x%02x=%d", top[i].val, top[i].pop)
		}
		fmt.Println()
	}
}
