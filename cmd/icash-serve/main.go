// Command icash-serve runs the block-service front-end over the
// I-CASH array.
//
// In the default simulated mode it drives framed client sessions
// (generated from a workload profile) through the deterministic event
// engine and reports per-session and per-device accounting — the same
// machinery the served-vs-inproc experiments use:
//
//	icash-serve -bench SysBench
//	icash-serve -bench "TPC-C 5VMs" -vms -window 8
//
// With -listen it binds the very same session state machine to a real
// TCP socket for interactive use (the simulated array still serves the
// blocks; latencies are modeled, not waited out):
//
//	icash-serve -bench SysBench -listen 127.0.0.1:10809
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"icash/internal/harness"
	"icash/internal/server"
	"icash/internal/sim"
	"icash/internal/workload"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		bench  = flag.String("bench", "SysBench", "workload profile (see icash-bench -list)")
		scale  = flag.Float64("scale", 1.0/256, "workload scale")
		seed   = flag.Uint64("seed", 42, "workload seed")
		window = flag.Int("window", 8, "per-session in-flight window")
		vms    = flag.Bool("vms", false, "serve multi-VM profiles as one session per VM partition")
		ops    = flag.Int("ops", 0, "cap generated requests (0 = profile default)")
		listen = flag.String("listen", "", "serve the framed protocol on a real TCP address instead of simulating clients")
		shards = flag.Int("shards", 1, "partition the array into N LBA-range shards; sessions on different shards serve in parallel")
	)
	flag.Parse()
	harness.SetShards(*shards)

	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "icash-serve: unknown benchmark %q\n", *bench)
		return 2
	}
	opts := workload.Options{Scale: *scale, Seed: *seed, MaxOps: *ops, StreamPerVM: *vms, QueueDepth: *window}

	if *listen != "" {
		if err := serveListen(*listen, p, opts, *window); err != nil {
			fmt.Fprintf(os.Stderr, "icash-serve: %v\n", err)
			return 1
		}
		return 0
	}

	cfg := server.DefaultSimConfig()
	cfg.Window = *window
	res, err := server.RunServed(p, opts, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icash-serve: %v\n", err)
		return 1
	}
	fmt.Print(res.Report())
	return 0
}

// sysBackend exposes a harness System as a server.Backend.
type sysBackend struct {
	sys *harness.System
}

func (b sysBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	return b.sys.Dev.ReadBlock(lba, buf)
}

func (b sysBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	return b.sys.Dev.WriteBlock(lba, buf)
}

func (b sysBackend) Flush() error  { return b.sys.Flush() }
func (b sysBackend) Blocks() int64 { return b.sys.Dev.Blocks() }

// serveListen builds and populates the array, then serves the framed
// protocol to real TCP clients until interrupted. Connections register
// with a server.Registry so shutdown can drain: when the listener dies,
// the aggregate accounting is reported and the array flushed before the
// error surfaces.
func serveListen(addr string, p workload.Profile, opts workload.Options, window int) error {
	sys, err := harness.Build(harness.ICASH, harness.ConfigForProfile(p, opts))
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(p, opts)
	sys.SetFill(gen.Fill)
	fmt.Fprintf(os.Stderr, "icash-serve: populating %s\n", gen.Summary())
	if err := harness.Populate(sys, gen); err != nil {
		return err
	}
	// Per-shard backends under the router: sessions whose partitions
	// land on different shards serve concurrently, each shard still
	// single-threaded behind its lockmap address. An unsharded build is
	// the degenerate one-shard case — one address, the old funnel.
	var routed []server.Backend
	if sc := sys.Sharded; sc != nil {
		for i := 0; i < sc.NumShards(); i++ {
			routed = append(routed, sc.Shard(i))
		}
	} else {
		routed = []server.Backend{sysBackend{sys: sys}}
	}
	backend, err := server.NewShardRouter(routed)
	if err != nil {
		return err
	}
	registry := server.NewRegistry()
	imageBlocks := gen.ImageBlocks()
	vms := p.VMs

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(os.Stderr, "icash-serve: listening on %s (%d blocks, window %d)\n",
		ln.Addr(), backend.Blocks(), window)
	for {
		conn, err := ln.Accept()
		if err != nil {
			total, derr := registry.Drain(backend)
			if derr != nil {
				fmt.Fprintf(os.Stderr, "icash-serve: %v\n", derr)
			}
			fmt.Fprintf(os.Stderr, "icash-serve: served %d requests (%d reads, %d writes) before shutdown\n",
				total.Requests, total.Reads, total.Writes)
			return err
		}
		go handleConn(conn, backend, registry, window, imageBlocks, vms)
	}
}

// handleConn runs one session over a TCP connection.
func handleConn(conn net.Conn, backend server.Backend, registry *server.Registry, window int, imageBlocks int64, vms int) {
	defer conn.Close()
	partition := func(vm uint32) (int64, int64, bool) {
		if vm == server.AnyVM {
			return 0, backend.Blocks(), true
		}
		if vms > 1 && int64(vm) < int64(vms) {
			return int64(vm) * imageBlocks, imageBlocks, true
		}
		if vm == 0 {
			return 0, backend.Blocks(), true
		}
		return 0, 0, false
	}
	sess := server.NewSession(conn.RemoteAddr().String(), backend,
		server.SessionOptions{MaxWindow: window, Partition: partition})
	id, err := registry.Add(sess)
	if err != nil {
		fmt.Fprintf(os.Stderr, "icash-serve: %v\n", err)
		return
	}
	defer registry.Remove(id)
	buf := make([]byte, 256<<10)
	for {
		n, rerr := conn.Read(buf)
		if n > 0 {
			out, err := sess.Feed(buf[:n])
			if len(out) > 0 {
				if _, werr := conn.Write(out); werr != nil {
					fmt.Fprintf(os.Stderr, "icash-serve: %s: write: %v\n", sess.Name(), werr)
					return
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "icash-serve: %s: %v\n", sess.Name(), err)
				return
			}
			if sess.State() == server.StateClosed {
				return
			}
		}
		if rerr != nil {
			if err := sess.CloseStream(); err != nil {
				fmt.Fprintf(os.Stderr, "icash-serve: %s: %v\n", sess.Name(), err)
			}
			return
		}
	}
}
