// Command icash-trace generates and characterizes the benchmark request
// streams (the paper's Table 4): request counts, average request sizes,
// data-set sizes, read/write mix — both the paper's reported values and
// the properties of the scaled synthetic streams this reproduction
// drives.
//
// Usage:
//
//	icash-trace                     # Table 4 for all benchmarks
//	icash-trace -bench SysBench     # one benchmark, measured stream stats
//	icash-trace -bench TPC-C -dump 20   # print the first 20 requests
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"icash/internal/blockdev"
	"icash/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark name (empty = all, Table 4 style)")
		scale = flag.Float64("scale", 1.0/256, "stream scale")
		seed  = flag.Uint64("seed", 42, "workload seed")
		dump  = flag.Int("dump", 0, "print the first N requests of the stream")
	)
	flag.Parse()

	if *bench == "" {
		printTable4()
		return
	}
	p, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "icash-trace: unknown benchmark %q; known:\n", *bench)
		for _, q := range workload.Table4() {
			fmt.Fprintf(os.Stderr, "  %s\n", q.Name)
		}
		os.Exit(2)
	}
	gen := workload.NewGenerator(p, workload.Options{Scale: *scale, Seed: *seed})
	fmt.Println(gen.Summary())

	if *dump > 0 {
		for i := 0; i < *dump; i++ {
			req, ok := gen.Next()
			if !ok {
				break
			}
			op := "R"
			if req.Write {
				op = "W"
			}
			fmt.Printf("%6d %s lba=%-10d blocks=%d\n", i, op, req.LBA, req.Blocks)
		}
		return
	}

	// Measure the actual stream properties and compare with Table 4.
	var reads, writes, readBlocks, writeBlocks int64
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		if req.Write {
			writes++
			writeBlocks += int64(req.Blocks)
		} else {
			reads++
			readBlocks += int64(req.Blocks)
		}
	}
	avg := func(blocks, n int64) float64 {
		if n == 0 {
			return 0
		}
		return float64(blocks) / float64(n) * blockdev.BlockSize
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "metric\tmeasured (scaled)\tpaper (Table 4)\n")
	fmt.Fprintf(w, "reads\t%d\t%d\n", reads, p.PaperReads)
	fmt.Fprintf(w, "writes\t%d\t%d\n", writes, p.PaperWrites)
	fmt.Fprintf(w, "read fraction\t%.3f\t%.3f\n",
		float64(reads)/float64(reads+writes), p.ReadFraction())
	fmt.Fprintf(w, "avg read bytes\t%.0f\t%d\n", avg(readBlocks, reads), p.AvgReadBytes)
	fmt.Fprintf(w, "avg write bytes\t%.0f\t%d\n", avg(writeBlocks, writes), p.AvgWriteBytes)
	fmt.Fprintf(w, "data size\t%s\t%s\n",
		workload.ByteSize(gen.DataBlocks()*blockdev.BlockSize), workload.ByteSize(p.DataBytes))
	w.Flush()
}

func printTable4() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Benchmark\t#Reads\t#Writes\tAvgRead\tAvgWrite\tDataSize\tVM RAM\n")
	for _, p := range workload.Table4() {
		fmt.Fprintf(w, "%s\t%d\t%d\t%dB\t%dB\t%s\t%s\n",
			p.Name, p.PaperReads, p.PaperWrites, p.AvgReadBytes, p.AvgWriteBytes,
			workload.ByteSize(p.DataBytes), workload.ByteSize(p.VMRAMBytes))
	}
	w.Flush()
	fmt.Println("\n(paper Table 4; use -bench NAME for measured scaled-stream statistics)")
}
