// Command icash-vet runs the repo-specific static analyzer suite
// (internal/analysis) over the module: detclock, maporder, errclass,
// latcharge, poolreturn, verifyread, lockorder, goroutines and
// staleignore — the compile-time enforcement of the determinism,
// error-handling, data-integrity and concurrency invariants the
// simulation's correctness rests on.
//
// Usage:
//
//	icash-vet [-list] [-json] [-strict] [-baseline file] [-writebaseline file] [packages]
//
// Package patterns are module-relative ("./...", "./internal/ssd");
// the default is "./...". Findings print one per line in vet format
// (file:line:col: analyzer: message) and any finding exits 1, with two
// exceptions: staleignore findings (suppression directives that no
// longer suppress anything) are warnings unless -strict, and findings
// recorded in a -baseline file are parked. -json emits the icash-vet/1
// JSON document instead of text; -writebaseline regenerates a baseline
// file from the current hard findings and exits clean. A known-good
// site is suppressed with a //lint:ignore directive on its line or the
// line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"icash/internal/analysis"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		list          = flag.Bool("list", false, "list the analyzer catalog and exit")
		jsonOut       = flag.Bool("json", false, "emit findings as an icash-vet/1 JSON document")
		strict        = flag.Bool("strict", false, "treat staleignore findings as errors, not warnings")
		baselinePath  = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBaseline = flag.String("writebaseline", "", "write current findings to this baseline file and exit clean")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: icash-vet [-list] [-json] [-strict] [-baseline file] [-writebaseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Catalog() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "icash-vet:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icash-vet:", err)
		return 2
	}
	findings, err := analysis.Vet(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icash-vet:", err)
		return 2
	}

	// Stale suppressions are hygiene, not correctness: warn by default,
	// fail only under -strict (CI). Everything else is hard.
	var hard, stale []analysis.Finding
	for _, f := range findings {
		if f.Analyzer == "staleignore" {
			stale = append(stale, f)
		} else {
			hard = append(hard, f)
		}
	}

	if *baselinePath != "" {
		set, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "icash-vet:", err)
			return 2
		}
		var parked int
		hard, parked = analysis.FilterBaseline(root, hard, set)
		if parked > 0 {
			fmt.Fprintf(os.Stderr, "icash-vet: %d finding(s) parked in %s\n", parked, *baselinePath)
		}
	}

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, root, hard); err != nil {
			fmt.Fprintln(os.Stderr, "icash-vet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "icash-vet: wrote %d finding(s) to %s\n", len(hard), *writeBaseline)
		return 0
	}

	failing := hard
	if *strict {
		failing = append(failing, stale...)
	}

	if *jsonOut {
		out, err := analysis.MarshalFindings(root, failing)
		if err != nil {
			fmt.Fprintln(os.Stderr, "icash-vet:", err)
			return 2
		}
		fmt.Println(string(out))
	} else {
		for _, f := range hard {
			fmt.Println(f)
		}
		for _, f := range stale {
			if *strict {
				fmt.Println(f)
			} else {
				fmt.Printf("warning: %s\n", f)
			}
		}
	}
	if len(failing) > 0 {
		fmt.Fprintf(os.Stderr, "icash-vet: %d finding(s)\n", len(failing))
		return 1
	}
	return 0
}
