// Command icash-vet runs the repo-specific static analyzer suite
// (internal/analysis) over the module: detclock, maporder, errclass,
// latcharge, poolreturn and verifyread — the compile-time enforcement
// of the determinism, error-handling and data-integrity invariants the
// simulation's correctness rests on.
//
// Usage:
//
//	icash-vet [-list] [packages]
//
// Package patterns are module-relative ("./...", "./internal/ssd");
// the default is "./...". Findings print one per line in vet format
// (file:line:col: analyzer: message) and any finding exits 1. A
// known-good site is suppressed with a //lint:ignore directive on its
// line or the line above:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"icash/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer catalog and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: icash-vet [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Catalog() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "icash-vet:", err)
		os.Exit(2)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icash-vet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Vet(root, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "icash-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "icash-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
