// Silent-corruption defense: devices that lie. A disk that fails
// loudly is the easy case — the I-CASH controller also keeps a content
// checksum for every block it has seen, verifies it at each layer
// crossing, and runs a background scrubber, so even a device that
// returns wrong bytes with a clean status cannot get them to the host.
// Three demonstrations:
//
//  1. the whole flash rots (every SSD block gets a bit flipped behind
//     the controller's back) and every read is still served correct,
//     repaired from redundant copies;
//
//  2. a cold HDD home block rots: the read fails loudly (corruption,
//     not silence), and an overwrite cures the block;
//
//  3. the background scrubber finds rot proactively — damage on blocks
//     the host never touches is detected and healed in the background.
//
//     go run ./examples/bitrot
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"sort"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/hdd"
	"icash/internal/sim"
	"icash/internal/ssd"
)

func main() {
	cfg := core.NewDefaultConfig(4096, 256, 256<<10, 1<<20)
	cfg.ScanPeriod = 200
	cfg.ScanWindow = 800
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	flash := ssd.New(ssd.DefaultConfig(cfg.SSDBlocks))
	disk := hdd.New(hdd.DefaultConfig(cfg.VirtualBlocks + cfg.LogBlocks))
	ctrl, err := core.New(cfg, flash, disk, clock, cpu)
	if err != nil {
		log.Fatal(err)
	}

	// A content-local working set: families of similar blocks, so the
	// scan installs reference slots on the SSD and rewrites attach as
	// deltas — the flash ends up holding data the host depends on.
	template := make([]byte, blockdev.BlockSize)
	sim.NewRand(7).Bytes(template)
	content := func(lba int64, version int) []byte {
		b := append([]byte(nil), template...)
		cr := sim.NewRand(uint64(lba)*31 + uint64(version) + 1)
		for i := 0; i < 200; i++ {
			b[cr.Intn(len(b))] = byte(cr.Uint64())
		}
		return b
	}
	model := make(map[int64][]byte)
	r := sim.NewRand(42)
	fmt.Println("running a content-local workload (2,500 ops over 600 blocks)...")
	buf := make([]byte, blockdev.BlockSize)
	for op := 0; op < 2500; op++ {
		lba := int64(r.Intn(600))
		if r.Float64() < 0.5 {
			c := content(lba, op%4)
			if _, err := ctrl.WriteBlock(lba, c); err != nil {
				log.Fatal(err)
			}
			model[lba] = c
		} else if _, err := ctrl.ReadBlock(lba, buf); err != nil {
			log.Fatal(err)
		}
	}
	// The consistency point gives every write-through slot a home
	// backup: each flash block now has a verified redundant copy.
	if err := ctrl.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flash now holds %d reference slots\n\n", ctrl.LiveSlotCount())

	wholeFlashRot(ctrl, flash, model)
	homeRot(ctrl, disk, content)
	scrubberFindsColdRot(ctrl, disk, clock, content)

	if err := ctrl.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncontroller invariants hold after every act")
}

// wholeFlashRot flips one bit in EVERY flash block and reads the whole
// working set back: each read either returns the exact last-written
// bytes (detected and repaired from a redundant copy) or an accounted
// regression — never the rotted flash content.
func wholeFlashRot(ctrl *core.Controller, flash *ssd.Device, model map[int64][]byte) {
	fmt.Println("--- act 1: the whole flash rots ---")
	for i := int64(0); i < ctrl.Config().SSDBlocks; i++ {
		if err := flash.Corrupt(i, int(i*17+3)); err != nil {
			log.Fatal(err)
		}
	}
	before := ctrl.Stats
	buf := make([]byte, blockdev.BlockSize)
	lbas := make([]int64, 0, len(model))
	for lba := range model {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	exact, stale := 0, 0
	for _, lba := range lbas {
		want := model[lba]
		if _, err := ctrl.ReadBlock(lba, buf); err != nil {
			log.Fatalf("read %d after flash rot: %v", lba, err)
		}
		if bytes.Equal(buf, want) {
			exact++
		} else {
			stale++
		}
	}
	st := ctrl.Stats
	detected := st.CorruptionsDetected - before.CorruptionsDetected
	repaired := st.CorruptionsRepaired - before.CorruptionsRepaired
	accounted := (st.ScrubDataLoss + st.DegradedDataLoss + st.DroppedLogRecs) -
		(before.ScrubDataLoss + before.DegradedDataLoss + before.DroppedLogRecs)
	fmt.Printf("%d/%d reads exact after total flash rot; %d fell back to an older durable copy\n",
		exact, len(model), stale)
	fmt.Printf("detected %d lying flash reads, repaired %d in place, %d accounted regressions\n",
		detected, repaired, accounted)
	if int64(stale) > accounted {
		log.Fatalf("%d stale reads but only %d accounted: silent corruption leaked", stale, accounted)
	}
	fmt.Println("zero unaccounted wrong bytes reached the host")
}

// homeRot corrupts the HDD home of a cold, home-resident block: the
// next read fails loudly with a corruption error (a block with no
// second copy cannot be healed — but it can refuse to lie), and a
// fresh write cures it.
func homeRot(ctrl *core.Controller, disk *hdd.Device, content func(int64, int) []byte) {
	fmt.Println("\n--- act 2: a cold home block rots ---")
	const lba = 3900 // outside the working set: home-resident, cold
	if err := ctrl.Preload(lba, content(lba, 0)); err != nil {
		log.Fatal(err)
	}
	if err := disk.Corrupt(lba, 12345); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	_, err := ctrl.ReadBlock(lba, buf)
	if err == nil {
		log.Fatal("rotted home read returned success")
	}
	if !errors.Is(err, blockdev.ErrCorruption) {
		log.Fatalf("expected a corruption-classed error, got: %v", err)
	}
	fmt.Printf("read of the rotted block fails loudly: %v\n", err)
	fmt.Printf("block is poisoned (%d poisoned total) until rewritten\n", ctrl.PoisonedBlocks())
	if _, err := ctrl.WriteBlock(lba, content(lba, 1)); err != nil {
		log.Fatal(err)
	}
	if _, err := ctrl.ReadBlock(lba, buf); err != nil || !bytes.Equal(buf, content(lba, 1)) {
		log.Fatal("overwrite did not cure the poisoned block")
	}
	fmt.Println("a fresh write cures it: new content, new checksum, poison cleared")
}

// scrubberFindsColdRot arms the background scrubber and lets it sweep
// the array with no host I/O at all: rot on a block the host never
// reads is still detected, and — when a clean RAM copy exists — healed
// in the background.
func scrubberFindsColdRot(ctrl *core.Controller, disk *hdd.Device, clock *sim.Clock, content func(int64, int) []byte) {
	fmt.Println("\n--- act 3: the background scrubber ---")
	// One block with a clean cached copy (repairable) and one cold
	// (detectable only).
	const cached, cold = 3910, 3920
	for _, lba := range []int64{cached, cold} {
		if err := ctrl.Preload(lba, content(lba, 0)); err != nil {
			log.Fatal(err)
		}
	}
	buf := make([]byte, blockdev.BlockSize)
	if _, err := ctrl.ReadBlock(cached, buf); err != nil {
		log.Fatal(err) // leaves a clean RAM copy behind
	}
	for _, lba := range []int64{cached, cold} {
		if err := disk.Corrupt(lba, 777); err != nil {
			log.Fatal(err)
		}
	}
	before := ctrl.Stats
	ctrl.SetScrub(core.ScrubConfig{Interval: sim.Millisecond, Batch: 64})
	for i := 0; i < 100000 && ctrl.Stats.ScrubPasses == before.ScrubPasses; i++ {
		clock.Advance(sim.Millisecond)
		ctrl.ScrubPoll()
	}
	st := ctrl.Stats
	fmt.Printf("one full scrub pass: %d slot checks, %d home checks\n",
		st.ScrubSlotChecks-before.ScrubSlotChecks, st.ScrubHomeChecks-before.ScrubHomeChecks)
	fmt.Printf("found %d rotted blocks without any host read; healed %d from the clean RAM copy\n",
		st.CorruptionsDetected-before.CorruptionsDetected,
		st.CorruptionsRepaired-before.CorruptionsRepaired)
	if _, err := ctrl.ReadBlock(cached, buf); err != nil || !bytes.Equal(buf, content(cached, 0)) {
		log.Fatal("scrub-healed block did not read back clean")
	}
	fmt.Println("the healed block reads back clean; the unhealable one is poisoned, not lying:")
	if _, err := ctrl.ReadBlock(cold, buf); err != nil {
		fmt.Printf("  %v\n", err)
	} else {
		log.Fatal("cold rotted block served without error")
	}
}
