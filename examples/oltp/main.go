// OLTP comparison (paper §5.1 flavour): run the SysBench-style workload
// against I-CASH, a pure SSD, an SSD LRU cache and RAID0, and print the
// transaction-rate comparison the paper's Figure 6(a) reports.
//
//	go run ./examples/oltp
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"icash/internal/harness"
	"icash/internal/workload"
)

func main() {
	p := workload.SysBench()
	fmt.Printf("benchmark: %s — %s\n", p.Name, p.Description)
	fmt.Printf("data set %s, %.0f%% reads, SSD cache %s, delta RAM %s\n\n",
		workload.ByteSize(p.DataBytes), 100*p.ReadFraction(),
		workload.ByteSize(p.SSDCacheBytes), workload.ByteSize(p.DeltaRAMBytes))

	br, err := harness.RunBenchmark(p, workload.Options{Scale: 1.0 / 256, Seed: 42}, nil)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\ttx/s\tavg read\tavg write\tSSD writes\tHDD busy")
	for _, k := range harness.AllKinds() {
		r := br.Results[k]
		fmt.Fprintf(w, "%s\t%.1f\t%.1fµs\t%.1fµs\t%d\t%v\n",
			k, r.TxnPerSec,
			r.ReadLat.Mean().Microseconds(), r.WriteLat.Mean().Microseconds(),
			r.SSDHostWrites, r.HDDBusy)
	}
	w.Flush()

	ic, fio := br.Results[harness.ICASH], br.Results[harness.FusionIO]
	fmt.Printf("\nI-CASH vs pure SSD: %.2fx the transactions at ~10%% of the SSD\n",
		ic.TxnPerSec/fio.TxnPerSec)
	fmt.Printf("I-CASH SSD writes: %.1f%% of pure SSD's (longer flash lifetime, §5.3)\n",
		100*float64(ic.SSDHostWrites)/float64(fio.SSDHostWrites))
	if ic.ICASHStats != nil {
		ref, assoc, indep := ic.KindCounts.Fractions()
		fmt.Printf("I-CASH block mix: %.0f%% reference / %.0f%% associate / %.0f%% independent (paper: 1/85/14)\n",
			100*ref, 100*assoc, 100*indep)
	}
}
