// Quickstart: create an I-CASH array, write and read blocks, and watch
// the controller turn similar-content writes into deltas instead of SSD
// writes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"icash"
	"icash/internal/sim"
)

func main() {
	arr, err := icash.New(icash.Config{
		DataBlocks: 16384, // 64 MB virtual disk
		SSDBlocks:  2048,  // 8 MB reference store (~12%)
	})
	if err != nil {
		log.Fatal(err)
	}

	// A "database page" template: blocks share most of their content.
	template := make([]byte, icash.BlockSize)
	sim.NewRand(7).Bytes(template)

	// Phase 1: lay down 2,000 similar pages.
	page := make([]byte, icash.BlockSize)
	for lba := int64(0); lba < 2000; lba++ {
		copy(page, template)
		// Each page differs in a small header region.
		for i := 0; i < 64; i++ {
			page[i] = byte(lba >> (i % 8))
		}
		if _, err := arr.Write(lba, page); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 2: an update pass — each write changes ~100 bytes, the
	// content locality I-CASH exploits (paper §2.2: 5-20% of bits).
	var totalWrite, totalRead int64
	buf := make([]byte, icash.BlockSize)
	for lba := int64(0); lba < 2000; lba++ {
		if _, err := arr.Read(lba, buf); err != nil {
			log.Fatal(err)
		}
		for i := 100; i < 200; i++ {
			buf[i] ^= 0x5A
		}
		d, err := arr.Write(lba, buf)
		if err != nil {
			log.Fatal(err)
		}
		totalWrite += int64(d)
	}
	for lba := int64(0); lba < 2000; lba++ {
		d, err := arr.Read(lba, buf)
		if err != nil {
			log.Fatal(err)
		}
		totalRead += int64(d)
	}

	st := arr.Stats()
	kinds := arr.KindCounts()
	ssd := arr.SSDStats()
	fmt.Println("I-CASH quickstart")
	fmt.Println("-----------------")
	fmt.Printf("simulated time:        %v\n", arr.SimulatedTime())
	fmt.Printf("avg write latency:     %dns (deltas land in RAM)\n", totalWrite/2000)
	fmt.Printf("avg read latency:      %dns (SSD reference + delta decode)\n", totalRead/2000)
	fmt.Printf("writes stored as delta: %d (avg delta %.0f bytes of %d)\n",
		st.WriteDelta, st.AvgDeltaSize(), icash.BlockSize)
	fmt.Printf("block mix:             %d references / %d associates / %d independents\n",
		kinds.Reference, kinds.Associate, kinds.Independent)
	fmt.Printf("SSD write requests:    %d (the whole point: almost none)\n", ssd.HostWrites)
	fmt.Printf("SSD erase operations:  %d\n", ssd.Erases)
}
