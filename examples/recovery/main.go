// Crash recovery (paper §3.3): I-CASH keeps deltas in RAM for speed and
// flushes them to the HDD log periodically. This example writes data,
// establishes a consistency point, "pulls the plug", and rebuilds the
// controller from the SSD + HDD alone — demonstrating that the delta
// log, reference pointers and tombstones reconstruct the exact state.
// It then goes further: a power cut that TEARS a log block mid-write
// (the CRC rejects the torn block and replay stops cleanly), and a
// whole-SSD failure survived in HDD-only degraded mode.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"

	"icash"
	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/fault"
	"icash/internal/sim"
)

func main() {
	arr, err := icash.New(icash.Config{DataBlocks: 4096, SSDBlocks: 512})
	if err != nil {
		log.Fatal(err)
	}

	// A content-local working set: blocks share a template, writes
	// modify a header region.
	template := make([]byte, icash.BlockSize)
	sim.NewRand(3).Bytes(template)
	content := func(lba int64, version int) []byte {
		b := append([]byte(nil), template...)
		for i := 0; i < 48; i++ {
			b[i] = byte(int(lba) + version + i)
		}
		return b
	}

	fmt.Println("writing 1,000 blocks, two versions each...")
	for version := 0; version < 2; version++ {
		for lba := int64(0); lba < 1000; lba++ {
			if _, err := arr.Write(lba, content(lba, version)); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := arr.Stats()
	fmt.Printf("controller state: %d delta writes, %d log blocks written, %d flushes\n",
		st.WriteDelta, st.LogBlocksWritten, st.FlushRuns)

	fmt.Println("flushing (consistency point)...")
	if err := arr.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("CRASH: discarding all controller RAM state")
	rec, err := arr.Crash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d blocks tracked from the delta log\n", rec.KindCounts().Total())

	fmt.Println("verifying all 1,000 blocks post-recovery...")
	buf := make([]byte, icash.BlockSize)
	bad := 0
	for lba := int64(0); lba < 1000; lba++ {
		if _, err := rec.Read(lba, buf); err != nil {
			log.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, content(lba, 1)) {
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d blocks corrupted after recovery", bad)
	}
	fmt.Println("all blocks intact: reference blocks (SSD) + delta log (HDD) fully reconstruct the data")

	// Demonstrate the bounded loss window: unflushed writes are lost.
	if _, err := rec.Write(0, content(0, 9)); err != nil {
		log.Fatal(err)
	}
	rec2, err := rec.Crash() // no flush this time
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rec2.Read(0, buf); err != nil {
		log.Fatalf("read after second crash: %v", err)
	}
	if bytes.Equal(buf, content(0, 9)) {
		fmt.Println("note: the unflushed write happened to be durable (small delta flushed by cadence)")
	} else {
		fmt.Println("as designed: the write issued after the last flush was lost — the")
		fmt.Println("flush interval is the paper's reliability/performance knob (§3.3)")
	}

	tornLogCrash(content)
	degradedMode(content)
}

// tornLogCrash pulls the plug in the MIDDLE of a log-block write: only
// a prefix of the block reaches the platter. The log CRC rejects the
// torn block at replay, so recovery keeps everything durable before it
// and loses only the unacknowledged tail — never serving torn bytes.
func tornLogCrash(content func(int64, int) []byte) {
	fmt.Println("\n--- torn log write at a crash point ---")
	cfg := core.NewDefaultConfig(4096, 512, 256<<10, 1<<20)
	cfg.LogBlocks = 512
	cfg.FlushPeriodOps = 0
	cfg.FlushDirtyBytes = 1 << 30 // flush only when asked
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
	hddF := fault.Wrap(blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond),
		fault.Config{Seed: 1})
	ctrl, err := core.New(cfg, ssd, hddF, clock, cpu)
	if err != nil {
		log.Fatal(err)
	}

	for lba := int64(0); lba < 200; lba++ {
		if _, err := ctrl.WriteBlock(lba, content(lba, 0)); err != nil {
			log.Fatal(err)
		}
	}
	if err := ctrl.Flush(); err != nil { // durable consistency point
		log.Fatal(err)
	}
	for lba := int64(0); lba < 200; lba++ { // second versions: not yet flushed
		if _, err := ctrl.WriteBlock(lba, content(lba, 1)); err != nil {
			log.Fatal(err)
		}
	}
	// Power dies 100 bytes into the NEXT log write.
	hddF.SetCrashAfterWrites(1, 100)
	if err := ctrl.Flush(); err == nil {
		log.Fatal("expected the flush to die at the crash point")
	}
	fmt.Printf("power cut mid log write: %d torn write on media\n", hddF.Stats.TornWrites)

	hddF.Restore() // power-on: media intact, torn block included
	rctrl, err := core.Recover(cfg, ssd, hddF, sim.NewClock(), cpumodel.NewAccountant(sim.NewClock()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery skipped %d torn log block(s) via CRC\n", rctrl.Stats.TornLogBlocks)
	buf := make([]byte, icash.BlockSize)
	v0, v1 := 0, 0
	for lba := int64(0); lba < 200; lba++ {
		if _, err := rctrl.ReadBlock(lba, buf); err != nil {
			log.Fatal(err)
		}
		switch {
		case bytes.Equal(buf, content(lba, 0)):
			v0++
		case bytes.Equal(buf, content(lba, 1)):
			v1++
		default:
			log.Fatalf("lba %d: torn or foreign content leaked through recovery", lba)
		}
	}
	fmt.Printf("read-back: %d blocks at the flushed version, %d at the newer (partially committed) one,\n", v0, v1)
	fmt.Println("zero torn or corrupt blocks — the CRC truncates replay at the tear")
}

// degradedMode rips out the whole SSD mid-run: the array salvages what
// RAM still holds, flips to HDD-only operation, and keeps serving.
func degradedMode(content func(int64, int) []byte) {
	fmt.Println("\n--- whole-SSD loss: HDD-only degraded mode ---")
	arr, err := icash.New(icash.Config{DataBlocks: 4096, SSDBlocks: 512})
	if err != nil {
		log.Fatal(err)
	}
	for lba := int64(0); lba < 500; lba++ {
		if _, err := arr.Write(lba, content(lba, 0)); err != nil {
			log.Fatal(err)
		}
	}
	arr.FailSSD()
	fmt.Printf("SSD lost: degraded=%v, %d block(s) unsalvageable\n",
		arr.Degraded(), arr.Stats().DegradedDataLoss)

	// The array still serves reads and writes, HDD-only.
	buf := make([]byte, icash.BlockSize)
	intact := 0
	for lba := int64(0); lba < 500; lba++ {
		if _, err := arr.Read(lba, buf); err != nil {
			log.Fatal(err)
		}
		if bytes.Equal(buf, content(lba, 0)) {
			intact++
		}
	}
	if _, err := arr.Write(7, content(7, 5)); err != nil {
		log.Fatal(err)
	}
	if _, err := arr.Read(7, buf); err != nil || !bytes.Equal(buf, content(7, 5)) {
		log.Fatal("degraded write/read round-trip failed")
	}
	fmt.Printf("%d/500 blocks intact after salvage; degraded writes and reads still served (%d degraded ops)\n",
		intact, arr.Stats().DegradedOps)
}
