// Crash recovery (paper §3.3): I-CASH keeps deltas in RAM for speed and
// flushes them to the HDD log periodically. This example writes data,
// establishes a consistency point, "pulls the plug", and rebuilds the
// controller from the SSD + HDD alone — demonstrating that the delta
// log, reference pointers and tombstones reconstruct the exact state.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"

	"icash"
	"icash/internal/sim"
)

func main() {
	arr, err := icash.New(icash.Config{DataBlocks: 4096, SSDBlocks: 512})
	if err != nil {
		log.Fatal(err)
	}

	// A content-local working set: blocks share a template, writes
	// modify a header region.
	template := make([]byte, icash.BlockSize)
	sim.NewRand(3).Bytes(template)
	content := func(lba int64, version int) []byte {
		b := append([]byte(nil), template...)
		for i := 0; i < 48; i++ {
			b[i] = byte(int(lba) + version + i)
		}
		return b
	}

	fmt.Println("writing 1,000 blocks, two versions each...")
	for version := 0; version < 2; version++ {
		for lba := int64(0); lba < 1000; lba++ {
			if _, err := arr.Write(lba, content(lba, version)); err != nil {
				log.Fatal(err)
			}
		}
	}
	st := arr.Stats()
	fmt.Printf("controller state: %d delta writes, %d log blocks written, %d flushes\n",
		st.WriteDelta, st.LogBlocksWritten, st.FlushRuns)

	fmt.Println("flushing (consistency point)...")
	if err := arr.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("CRASH: discarding all controller RAM state")
	rec, err := arr.Crash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d blocks tracked from the delta log\n", rec.KindCounts().Total())

	fmt.Println("verifying all 1,000 blocks post-recovery...")
	buf := make([]byte, icash.BlockSize)
	bad := 0
	for lba := int64(0); lba < 1000; lba++ {
		if _, err := rec.Read(lba, buf); err != nil {
			log.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, content(lba, 1)) {
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d blocks corrupted after recovery", bad)
	}
	fmt.Println("all blocks intact: reference blocks (SSD) + delta log (HDD) fully reconstruct the data")

	// Demonstrate the bounded loss window: unflushed writes are lost.
	if _, err := rec.Write(0, content(0, 9)); err != nil {
		log.Fatal(err)
	}
	rec2, err := rec.Crash() // no flush this time
	if err != nil {
		log.Fatal(err)
	}
	rec2.Read(0, buf)
	if bytes.Equal(buf, content(0, 9)) {
		fmt.Println("note: the unflushed write happened to be durable (small delta flushed by cadence)")
	} else {
		fmt.Println("as designed: the write issued after the last flush was lost — the")
		fmt.Println("flush interval is the paper's reliability/performance knob (§3.3)")
	}
}
