// VM image sprawl (paper §2.2, §3.1 case 2): clone virtual machines
// share almost all of their disk image content. I-CASH stores one
// reference copy in the SSD and represents every clone's block as a
// tiny delta, so five VMs cost little more SSD than one.
//
//	go run ./examples/vmimages
package main

import (
	"fmt"
	"log"

	"icash"
	"icash/internal/core"
	"icash/internal/sim"
)

const (
	vms         = 5
	imageBlocks = 2048 // 8 MB per VM image
)

func main() {
	arr, err := icash.New(icash.Config{
		DataBlocks:    vms * imageBlocks,
		SSDBlocks:     imageBlocks / 2, // SSD holds 10% of the total data
		VMImageBlocks: imageBlocks,
		Tune: func(c *core.Config) {
			c.MaxSigDistance = 4
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build the "native machine" image.
	base := make([][]byte, imageBlocks)
	r := sim.NewRand(42)
	for i := range base {
		base[i] = make([]byte, icash.BlockSize)
		r.Bytes(base[i])
	}

	// The clones differ from the native image in a few dozen bytes per
	// block (hostnames, keys, timestamps...).
	fmt.Println("populating 5 VM images (1 native + 4 clones)...")
	for vm := int64(0); vm < vms; vm++ {
		for i := int64(0); i < imageBlocks; i++ {
			img := append([]byte(nil), base[i]...)
			if vm > 0 {
				for j := 0; j < 32; j++ {
					img[(j*113)%len(img)] ^= byte(vm)
				}
			}
			if err := arr.Preload(vm*imageBlocks+i, img); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Boot storm: every VM reads its whole image.
	fmt.Println("boot storm: all 5 VMs read their images...")
	buf := make([]byte, icash.BlockSize)
	var total int64
	for vm := int64(0); vm < vms; vm++ {
		for i := int64(0); i < imageBlocks; i++ {
			d, err := arr.Read(vm*imageBlocks+i, buf)
			if err != nil {
				log.Fatal(err)
			}
			total += int64(d)
		}
	}
	// Second pass: the steady state after reference selection.
	var second int64
	for vm := int64(0); vm < vms; vm++ {
		for i := int64(0); i < imageBlocks; i++ {
			d, err := arr.Read(vm*imageBlocks+i, buf)
			if err != nil {
				log.Fatal(err)
			}
			second += int64(d)
		}
	}

	st := arr.Stats()
	kinds := arr.KindCounts()
	n := int64(vms * imageBlocks)
	fmt.Println()
	fmt.Printf("first-pass avg read:   %dns (cold: HDD + pairing)\n", total/n)
	fmt.Printf("steady-state avg read: %dns (SSD reference + RAM delta)\n", second/n)
	fmt.Printf("first-load VM pairings: %d\n", st.FirstLoadPairs)
	fmt.Printf("block mix: %d references / %d associates / %d independents\n",
		kinds.Reference, kinds.Associate, kinds.Independent)
	fmt.Printf("5 VM images (%d blocks) are served by %d SSD slots — %.1fx logical-to-SSD expansion\n",
		n, arr.Controller().LiveSlotCount(),
		float64(kinds.Reference+kinds.Associate)/float64(max64(1, int64(arr.Controller().LiveSlotCount()))))
	fmt.Printf("avg delta: %.0f bytes per clone block\n", st.AvgDeltaSize())
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
