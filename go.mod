module icash

go 1.22
