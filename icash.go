// Package icash is a library implementation of I-CASH — the
// Intelligently Coupled Array of SSD and HDD from Ren & Yang, HPCA 2011
// — together with the simulated storage substrate and baseline systems
// used to reproduce the paper's evaluation.
//
// The core idea: instead of stacking an SSD cache on top of a disk,
// couple the two horizontally. The SSD stores seldom-changed, mostly
// read *reference blocks*; the HDD stores a sequential log of content
// *deltas* between active blocks and their references. Reads combine an
// SSD reference with a (usually RAM-resident) delta; writes are
// delta-compressed into RAM and committed in batches by one sequential
// log write. Random SSD writes — slow and wearing — are almost
// eliminated.
//
// # Quick start
//
//	arr, _ := icash.New(icash.Config{
//	    DataBlocks: 1 << 16, // 256 MB virtual disk
//	    SSDBlocks:  1 << 13, // 32 MB reference store
//	})
//	buf := make([]byte, icash.BlockSize)
//	copy(buf, []byte("hello"))
//	arr.Write(42, buf)
//	arr.Read(42, buf)
//	fmt.Println(arr.Stats().WriteDelta, "writes stored as deltas")
//
// Everything runs on a simulated clock: Read and Write return the
// simulated service latency of the request, and SimulatedTime reports
// total elapsed simulated time, so experiments are deterministic and
// independent of the host.
//
// The full evaluation harness (five storage systems, the paper's eight
// benchmark profiles, every figure and table of §5) lives in
// internal/harness and is driven by cmd/icash-bench.
package icash

import (
	"fmt"
	"time"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/hdd"
	"icash/internal/sim"
	"icash/internal/ssd"
)

// BlockSize is the unit of all I/O: 4 KB, the paper's cache-block size.
const BlockSize = blockdev.BlockSize

// Config sizes an Array. Zero fields take sensible defaults.
type Config struct {
	// DataBlocks is the virtual disk capacity in 4 KB blocks. Required.
	DataBlocks int64
	// SSDBlocks is the reference store size in blocks. Default:
	// DataBlocks/10 (the paper's ~10% provisioning).
	SSDBlocks int64
	// DeltaRAMBytes is the controller RAM devoted to delta segments.
	// Default: 1/32 of the data size.
	DeltaRAMBytes int64
	// DataRAMBytes is the controller RAM for cached full blocks.
	// Default: equal to DeltaRAMBytes.
	DataRAMBytes int64
	// LogBlocks is the HDD delta-log region size. Default: DataBlocks/8.
	LogBlocks int64
	// VMImageBlocks partitions the disk into equal VM images for
	// first-load similarity pairing (0 disables).
	VMImageBlocks int64
	// Tune overrides individual controller parameters after defaults
	// are applied (optional).
	Tune func(*core.Config)
}

// Array is an I-CASH storage element: one simulated SSD and one
// simulated HDD coupled by the controller. It is not safe for
// concurrent use.
type Array struct {
	ctrl  *core.Controller
	ssd   *ssd.Device
	hdd   *hdd.Device
	clock *sim.Clock
	cpu   *cpumodel.Accountant
}

// New builds an Array from cfg.
func New(cfg Config) (*Array, error) {
	if cfg.DataBlocks <= 0 {
		return nil, fmt.Errorf("icash: DataBlocks must be positive")
	}
	if cfg.SSDBlocks <= 0 {
		cfg.SSDBlocks = cfg.DataBlocks / 10
		if cfg.SSDBlocks < 64 {
			cfg.SSDBlocks = 64
		}
	}
	if cfg.DeltaRAMBytes <= 0 {
		cfg.DeltaRAMBytes = cfg.DataBlocks * BlockSize / 32
		if cfg.DeltaRAMBytes < 256<<10 {
			cfg.DeltaRAMBytes = 256 << 10
		}
	}
	if cfg.DataRAMBytes <= 0 {
		cfg.DataRAMBytes = cfg.DeltaRAMBytes
	}
	if cfg.LogBlocks <= 0 {
		cfg.LogBlocks = cfg.DataBlocks / 8
		if cfg.LogBlocks < 512 {
			cfg.LogBlocks = 512
		}
	}
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssdDev := ssd.New(ssd.DefaultConfig(cfg.SSDBlocks))
	hddDev := hdd.New(hdd.DefaultConfig(cfg.DataBlocks + cfg.LogBlocks))

	ccfg := core.NewDefaultConfig(cfg.DataBlocks, cfg.SSDBlocks, cfg.DeltaRAMBytes, cfg.DataRAMBytes)
	ccfg.LogBlocks = cfg.LogBlocks
	ccfg.VMImageBlocks = cfg.VMImageBlocks
	ccfg.MetadataBlocks = int(cfg.DataBlocks) + 64
	if cfg.Tune != nil {
		cfg.Tune(&ccfg)
	}
	ctrl, err := core.New(ccfg, ssdDev, hddDev, clock, cpu)
	if err != nil {
		return nil, err
	}
	return &Array{ctrl: ctrl, ssd: ssdDev, hdd: hddDev, clock: clock, cpu: cpu}, nil
}

// Blocks returns the virtual disk capacity in blocks.
func (a *Array) Blocks() int64 { return a.ctrl.Blocks() }

// Read reads block lba into buf (len(buf) == BlockSize), advancing the
// simulated clock, and returns the simulated service latency.
func (a *Array) Read(lba int64, buf []byte) (time.Duration, error) {
	d, err := a.ctrl.ReadBlock(lba, buf)
	if err != nil {
		return 0, err
	}
	a.clock.Advance(d)
	return time.Duration(d), nil
}

// Write writes buf (len(buf) == BlockSize) to block lba, advancing the
// simulated clock, and returns the simulated service latency.
func (a *Array) Write(lba int64, buf []byte) (time.Duration, error) {
	d, err := a.ctrl.WriteBlock(lba, buf)
	if err != nil {
		return 0, err
	}
	a.clock.Advance(d)
	return time.Duration(d), nil
}

// Flush establishes a consistency point: all dirty state reaches
// durable media. After Flush, Recover loses nothing.
func (a *Array) Flush() error { return a.ctrl.Flush() }

// Preload installs initial content at lba (the data set "already on
// disk") without affecting timing or statistics.
func (a *Array) Preload(lba int64, content []byte) error {
	return a.ctrl.Preload(lba, content)
}

// Stats returns a snapshot of controller statistics.
func (a *Array) Stats() core.Stats { return a.ctrl.Stats }

// SSDStats returns a snapshot of SSD device statistics (host writes,
// erases, wear — the paper's Table 6 metrics).
func (a *Array) SSDStats() ssd.Stats { return a.ssd.Stats }

// HDDStats returns a snapshot of HDD device statistics.
func (a *Array) HDDStats() hdd.Stats { return a.hdd.Stats }

// KindCounts reports the block population by kind (reference /
// associate / independent), the paper's §5.1 block-mix metric.
func (a *Array) KindCounts() core.KindCounts { return a.ctrl.KindCounts() }

// SimulatedTime returns total elapsed simulated time.
func (a *Array) SimulatedTime() time.Duration { return time.Duration(a.clock.Now()) }

// Controller exposes the underlying controller for advanced inspection.
func (a *Array) Controller() *core.Controller { return a.ctrl }

// Degraded reports whether the array has fallen back to HDD-only
// operation after losing its SSD.
func (a *Array) Degraded() bool { return a.ctrl.Degraded() }

// FailSSD simulates losing the whole SSD device: RAM-resident content
// is salvaged to the HDD home region where possible, everything else is
// accounted as DegradedDataLoss, and the array continues serving
// requests in HDD-only degraded mode.
func (a *Array) FailSSD() { a.ctrl.DegradeSSD() }

// InjectHDDLatentError plants a latent sector error at an HDD LBA:
// reads of that sector fail until a write remaps it. Self-healing
// experiments use this to exercise the controller's retry, scrub and
// fallback paths.
func (a *Array) InjectHDDLatentError(lba int64) { a.hdd.InjectLatentError(lba) }

// Crash simulates a power failure: all RAM state is lost, and a new
// Array is rebuilt from the surviving SSD and HDD contents by replaying
// the delta log (paper §3.3). The original Array must not be used
// afterwards.
func (a *Array) Crash() (*Array, error) {
	cfg := a.ctrl.Config()
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ctrl, err := core.Recover(cfg, a.ssd, a.hdd, clock, cpu)
	if err != nil {
		return nil, err
	}
	return &Array{ctrl: ctrl, ssd: a.ssd, hdd: a.hdd, clock: clock, cpu: cpu}, nil
}
