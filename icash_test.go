package icash

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"icash/internal/core"
	"icash/internal/sim"
)

func newTestArray(t *testing.T) *Array {
	t.Helper()
	arr, err := New(Config{DataBlocks: 2048, SSDBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func pattern(tag byte) []byte {
	b := make([]byte, BlockSize)
	r := sim.NewRand(uint64(tag) + 1)
	r.Bytes(b)
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero DataBlocks must fail")
	}
	arr, err := New(Config{DataBlocks: 512})
	if err != nil {
		t.Fatal(err)
	}
	if arr.Blocks() != 512 {
		t.Fatalf("Blocks = %d", arr.Blocks())
	}
}

func TestReadYourWrites(t *testing.T) {
	arr := newTestArray(t)
	model := map[int64][]byte{}
	r := sim.NewRand(1)
	buf := make([]byte, BlockSize)
	for i := 0; i < 5000; i++ {
		lba := r.Int63n(arr.Blocks())
		if r.Float64() < 0.5 {
			content := pattern(byte(lba % 17))
			if _, err := arr.Write(lba, content); err != nil {
				t.Fatal(err)
			}
			model[lba] = content
		} else {
			if _, err := arr.Read(lba, buf); err != nil {
				t.Fatal(err)
			}
			want := model[lba]
			if want == nil {
				want = make([]byte, BlockSize)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d lba %d mismatch", i, lba)
			}
		}
	}
	if arr.SimulatedTime() <= 0 {
		t.Error("clock did not advance")
	}
	if arr.Stats().WriteDelta == 0 {
		t.Error("expected delta-compressed writes")
	}
	if arr.KindCounts().Total() == 0 {
		t.Error("no tracked blocks")
	}
}

func TestPreloadVisible(t *testing.T) {
	arr := newTestArray(t)
	want := pattern(3)
	if err := arr.Preload(100, want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if _, err := arr.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("preload content mismatch")
	}
}

func TestCrashRecovery(t *testing.T) {
	arr := newTestArray(t)
	model := map[int64][]byte{}
	for lba := int64(0); lba < 300; lba++ {
		c := pattern(byte(lba % 11))
		if _, err := arr.Write(lba, c); err != nil {
			t.Fatal(err)
		}
		model[lba] = c
	}
	if err := arr.Flush(); err != nil {
		t.Fatal(err)
	}
	rec, err := arr.Crash()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	for lba, want := range model {
		if _, err := rec.Read(lba, buf); err != nil {
			t.Fatalf("post-crash read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("post-crash lba %d mismatch", lba)
		}
	}
}

func TestTuneHook(t *testing.T) {
	var seen core.Config
	arr, err := New(Config{
		DataBlocks: 512,
		Tune: func(c *core.Config) {
			c.DeltaThreshold = 1024
			seen = *c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if arr.Controller().Config().DeltaThreshold != 1024 {
		t.Fatal("Tune override not applied")
	}
	if seen.VirtualBlocks != 512 {
		t.Fatal("Tune saw wrong defaults")
	}
}

func TestLatencyAsymmetry(t *testing.T) {
	// The architectural claim: once references exist, writes complete at
	// RAM speed while a pure read-modify cycle still touches devices.
	arr := newTestArray(t)
	base := pattern(1)
	for lba := int64(0); lba < 512; lba++ {
		arr.Write(lba, base) // similar content: references + associates form
	}
	// Rewrite with small changes: deltas.
	mod := append([]byte(nil), base...)
	mod[100] ^= 0xFF
	var wsum time.Duration
	for lba := int64(0); lba < 256; lba++ {
		d, err := arr.Write(lba, mod)
		if err != nil {
			t.Fatal(err)
		}
		wsum += d
	}
	if avg := wsum / 256; avg > 100*time.Microsecond {
		t.Fatalf("steady-state delta writes average %v, expected RAM-speed", avg)
	}
	st := arr.Stats()
	if st.WriteDelta == 0 {
		t.Fatal("no delta writes recorded")
	}
}

// Property: arbitrary op sequences preserve read-your-writes.
func TestArrayShadowProperty(t *testing.T) {
	f := func(seed uint64) bool {
		arr, err := New(Config{DataBlocks: 256, SSDBlocks: 64})
		if err != nil {
			return false
		}
		r := sim.NewRand(seed)
		model := map[int64]byte{}
		buf := make([]byte, BlockSize)
		for i := 0; i < 400; i++ {
			lba := r.Int63n(256)
			if r.Float64() < 0.5 {
				tag := byte(r.Uint64())
				content := pattern(tag)
				if _, err := arr.Write(lba, content); err != nil {
					return false
				}
				model[lba] = tag
			} else {
				if _, err := arr.Read(lba, buf); err != nil {
					return false
				}
				tag, ok := model[lba]
				if !ok {
					continue
				}
				if !bytes.Equal(buf, pattern(tag)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
