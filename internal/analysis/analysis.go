// Package analysis is the repo-specific static analyzer suite behind
// cmd/icash-vet. It proves, at compile time, the invariants the rest of
// the repository otherwise enforces only at runtime:
//
//   - determinism: no wall-clock time, no math/rand, no unordered map
//     iteration feeding results (detclock, maporder);
//   - clock ownership: only the run-driving layers may mutate the
//     shared sim.Clock (detclock, generalizing the `clockcheck`
//     build-tag runtime assertion in internal/sim);
//   - error discipline: device errors are classified, wrapped with %w,
//     and never silently discarded on I/O paths (errclass);
//   - latency accounting: device op methods cannot return success
//     without charging service time (latcharge);
//   - end-to-end integrity: the controller's device content fetch
//     paths cannot return success without checksum-verifying the
//     bytes (verifyread).
//
// The suite is deliberately stdlib-only (go/ast, go/parser, go/types —
// no golang.org/x/tools) so the module stays go.sum-free. The driver
// in load.go type-checks packages from source, which makes every check
// type-aware: "this ranges over a map", "this expression is an error",
// "this is a *sim.Clock method call" are facts from go/types, not
// guesses from identifier spelling.
//
// Findings print in vet format (file:line:col: analyzer: message) and
// any finding makes icash-vet exit nonzero. A site that is known-good
// can be suppressed with a directive on its line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare directive is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the short identifier used in findings and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// proves and why the repository needs it.
	Doc string
	// Run inspects one package and reports findings on pass.
	Run func(pass *Pass)
	// Finish, if set, runs once after every package's Run, over the
	// module-wide facts Run accumulated on the Program. lockorder uses
	// it: acquisition-order cycles only exist across the whole edge
	// set, never inside one package's view.
	Finish func(prog *Program) []Finding
}

// Catalog returns every analyzer in the suite, in stable order.
func Catalog() []*Analyzer {
	return []*Analyzer{
		DetClock,
		MapOrder,
		ErrClass,
		LatCharge,
		PoolReturn,
		VerifyRead,
		LockOrder,
		Goroutines,
		StaleIgnore,
	}
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package. Its Path() is what analyzers
	// scope on (e.g. detclock only fires under icash/internal/).
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
	// Prog is the module-wide interprocedural view: per-function
	// summaries, the call graph, and memoized transitive queries
	// (summary.go). Analyzers use it to see one call past the package
	// under analysis.
	Prog *Program

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is one reported violation.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in vet format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// sortFindings orders findings by file, line, column, analyzer — the
// stable order icash-vet prints and tests compare against.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzers applies every analyzer in catalog to pkg and returns the
// raw findings (suppressions not yet applied). prog is the shared
// interprocedural view; the caller runs any Finish hooks itself once
// every package has been analyzed.
func RunAnalyzers(catalog []*Analyzer, pkg *Package, prog *Program) []Finding {
	var findings []Finding
	for _, a := range catalog {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
			findings: &findings,
		}
		a.Run(pass)
	}
	return findings
}

// --- shared type-query helpers used by several analyzers ---

// calleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a named function (builtin, func value,
// type conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes a function named name from the
// package with import path pkgPath.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isNilExpr reports whether e is the untyped nil constant.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// namedTypePath reports the (package path, type name) of t's core named
// type, unwrapping pointers and aliases; ok is false for unnamed types.
func namedTypePath(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := types.Unalias(t).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isMethod reports whether fn has a receiver.
func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// recvIsSimClock reports whether fn is a method on icash's sim.Clock.
func recvIsSimClock(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	pkgPath, name, ok := namedTypePath(sig.Recv().Type())
	return ok && pkgPath == "icash/internal/sim" && name == "Clock"
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos &&
		node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// baseIdentObj resolves the root identifier object of an lvalue like
// x, x.f, or x[i] — the variable whose storage the expression reaches.
func baseIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
