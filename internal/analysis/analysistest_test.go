package analysis

// This file is the golden-file fixture harness: each analyzer's test
// loads a package from testdata/src/<analyzer>/ under a chosen import
// path (so path-scoped analyzers fire), runs one analyzer, and
// compares the findings against `// want "substring"` comments in the
// fixture source. Every fixture line that wants a finding must get
// exactly one whose message contains the substring; every finding must
// land on a line that wants it.

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches `// want "..."` markers. The quoted text is a plain
// substring of the expected finding message, not a regexp — fixtures
// stay readable.
var wantRe = regexp.MustCompile(`// want (".*")\s*$`)

// runFixture loads testdata/src/<name> as import path asPath, runs the
// single analyzer, applies //lint:ignore directives, and checks the
// findings against the fixture's want markers.
func runFixture(t *testing.T, a *Analyzer, name, asPath string) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// Fixtures may contain deliberately unused imports or other soft
	// type errors alongside the violation under test.
	l.Lenient = true
	dir := filepath.Join("testdata", "src", name)
	pkg, err := l.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	prog := NewProgram(l)
	findings := RunAnalyzers([]*Analyzer{a}, pkg, prog)
	if a.Finish != nil {
		findings = append(findings, a.Finish(prog)...)
	}
	findings = applyIgnores(pkg, findings)
	sortFindings(findings)

	wants := parseWants(t, pkg.Fset, pkg)
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if !strings.Contains(f.Message, w.substr) {
				t.Errorf("%s: finding %q does not contain wanted substring %q", f, f.Message, w.substr)
			}
			matched[i] = true
			ok = true
			break
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: wanted finding containing %q, got none", w.file, w.line, w.substr)
		}
	}
}

type want struct {
	file   string
	line   int
	substr string
}

// parseWants extracts want markers from the fixture's comments.
func parseWants(t *testing.T, fset *token.FileSet, pkg *Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				substr, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("bad want marker %q: %v", c.Text, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, want{
					file:   filepath.Base(pos.Filename),
					line:   pos.Line,
					substr: substr,
				})
			}
		}
	}
	return wants
}

// TestWantMarkersDoNotLeakIntoFindings guards the harness itself: a
// fixture with no want markers and no violations yields no findings.
func TestWantMarkersDoNotLeakIntoFindings(t *testing.T) {
	for _, a := range Catalog() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("catalog entry %+v incomplete", a)
		}
	}
	if len(Catalog()) != 9 {
		t.Fatalf("catalog has %d analyzers, want 9", len(Catalog()))
	}
}

// TestFindingString pins the vet output format tools and CI grep for.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Analyzer: "detclock",
		Message:  "msg",
	}
	if got, wantStr := f.String(), "x.go:3:7: detclock: msg"; got != wantStr {
		t.Fatalf("Finding.String() = %q, want %q", got, wantStr)
	}
	_ = fmt.Sprintf("%v", f)
}
