package analysis

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Baseline mode lets the suite grow while legacy findings are burned
// down: icash-vet -baseline vet.baseline suppresses exactly the
// findings recorded in the file, so a new analyzer can land with its
// pre-existing debt parked and every NEW violation still failing the
// build.
//
// An entry keys on analyzer, root-relative file, and message —
// deliberately NOT the line number, so unrelated edits above a parked
// finding do not resurrect it. Moving the finding to another file, or
// any change to its message (which embeds the specifics that matter:
// lock class, function name), retires the entry; staleignore-style
// hygiene comes for free because -writebaseline regenerates the file
// sorted and de-duplicated, and a committed baseline that shrinks is a
// reviewable diff.
//
// The file format is one entry per line, tab-separated:
//
//	analyzer<TAB>file<TAB>message
//
// Blank lines and #-comments are skipped. The repo commits an empty
// vet.baseline: the tree carries no parked debt, and the file existing
// keeps the mode exercised by CI.

// baselineKey renders the line-number-insensitive identity of f.
func baselineKey(root string, f Finding) string {
	return f.Analyzer + "\t" + rootRelative(root, f.Pos.Filename) + "\t" + f.Message
}

// LoadBaseline reads a baseline file into a suppression set.
func LoadBaseline(path string) (map[string]bool, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	defer file.Close()
	set := make(map[string]bool)
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("analysis: baseline %s: malformed entry %q (want analyzer<TAB>file<TAB>message)", path, line)
		}
		set[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analysis: baseline: %w", err)
	}
	return set, nil
}

// FilterBaseline drops findings recorded in the baseline set and
// returns the survivors (alongside how many were parked).
func FilterBaseline(root string, findings []Finding, baseline map[string]bool) (kept []Finding, parked int) {
	for _, f := range findings {
		if baseline[baselineKey(root, f)] {
			parked++
			continue
		}
		kept = append(kept, f)
	}
	return kept, parked
}

// WriteBaseline writes findings as a sorted, de-duplicated baseline
// file at path.
func WriteBaseline(path, root string, findings []Finding) error {
	seen := make(map[string]bool)
	var lines []string
	for _, f := range findings {
		k := baselineKey(root, f)
		if !seen[k] {
			seen[k] = true
			lines = append(lines, k)
		}
	}
	sort.Strings(lines)
	var b strings.Builder
	b.WriteString("# icash-vet baseline: parked findings (analyzer<TAB>file<TAB>message per line).\n")
	b.WriteString("# Regenerate with: go run ./cmd/icash-vet -writebaseline vet.baseline ./...\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
