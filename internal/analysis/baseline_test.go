package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineFinding(file string, line int, analyzer, msg string) Finding {
	return Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestBaselineParksLegacyFailsNew is the mode's contract: a recorded
// finding is suppressed even after its line number drifts, while a new
// finding in the same file still fails.
func TestBaselineParksLegacyFailsNew(t *testing.T) {
	root := t.TempDir()
	legacy := baselineFinding(filepath.Join(root, "internal", "x", "x.go"), 10, "lockorder", "legacy cycle")
	path := filepath.Join(root, "vet.baseline")
	if err := WriteBaseline(path, root, []Finding{legacy}); err != nil {
		t.Fatal(err)
	}
	set, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Same finding, different line: still parked (edits above it must
	// not resurrect parked debt).
	moved := legacy
	moved.Pos.Line = 99
	fresh := baselineFinding(filepath.Join(root, "internal", "x", "x.go"), 11, "lockorder", "new cycle")
	kept, parked := FilterBaseline(root, []Finding{moved, fresh}, set)
	if parked != 1 {
		t.Errorf("parked = %d, want 1", parked)
	}
	if len(kept) != 1 || kept[0].Message != "new cycle" {
		t.Errorf("kept = %v, want only the new finding", kept)
	}
}

// TestBaselineFileFormat pins the on-disk format: sorted unique
// tab-separated entries under # comments, blanks skipped, malformed
// entries rejected loudly.
func TestBaselineFileFormat(t *testing.T) {
	root := t.TempDir()
	f1 := baselineFinding(filepath.Join(root, "b.go"), 1, "zeta", "msg z")
	f2 := baselineFinding(filepath.Join(root, "a.go"), 1, "alpha", "msg a")
	path := filepath.Join(root, "vet.baseline")
	if err := WriteBaseline(path, root, []Finding{f1, f2, f1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	want := []string{"alpha\ta.go\tmsg a", "zeta\tb.go\tmsg z"}
	if len(entries) != 2 || entries[0] != want[0] || entries[1] != want[1] {
		t.Errorf("baseline entries = %q, want %q", entries, want)
	}

	set, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Errorf("loaded %d entries, want 2", len(set))
	}

	bad := filepath.Join(root, "bad.baseline")
	if err := os.WriteFile(bad, []byte("just one field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(bad); err == nil || !strings.Contains(err.Error(), "malformed entry") {
		t.Errorf("malformed baseline accepted (err = %v)", err)
	}
}

// TestBaselineEmptyCommitted: the committed vet.baseline (no parked
// debt) loads to an empty set — the tree starts every PR clean.
func TestBaselineEmptyCommitted(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	set, err := LoadBaseline(filepath.Join(root, "vet.baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 0 {
		t.Errorf("committed baseline carries %d parked findings; burn them down or justify in the file header", len(set))
	}
}
