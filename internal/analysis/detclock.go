package analysis

import (
	"go/ast"
	"strings"
)

// DetClock proves the simulation's determinism-of-time invariant: code
// under icash/internal/ must never observe or depend on wall-clock
// time, and the shared sim.Clock may only be mutated by the packages
// that drive runs.
//
// Concretely it flags, in any package under icash/internal/:
//
//   - calls to time.Now, time.Since, time.Until, time.Sleep,
//     time.After, time.Tick, time.NewTimer, time.NewTicker and
//     time.AfterFunc (wall-clock reads and timers);
//   - imports of math/rand and math/rand/v2 (unseeded global state;
//     simulation code must use sim.Rand, which is deterministic and
//     per-stream seedable);
//   - argless time.Time construction (time.Time{} composite literals)
//     — a zero wall-clock instant smuggled into simulated state;
//   - calls to the mutating sim.Clock methods (Advance, AdvanceTo,
//     Reset) from any package other than the run-driving owners:
//     internal/sim itself, the event scheduler (internal/sim/event),
//     the experiment harness (internal/harness), and the chaos-soak
//     harness (internal/fault/chaos). Device models receive latencies
//     and return them; they never advance the timeline.
//
// The last rule is the static generalization of the `clockcheck`
// build-tag runtime assertion (internal/sim/clockcheck_on.go), which
// binds a Clock to the first goroutine that mutates it and panics on
// mutation from any other. The runtime assertion stays as
// defense-in-depth — it catches ownership hand-offs between goroutines
// that a per-package view cannot — while detclock rejects, at vet
// time, any diff that teaches a non-driver package to move time.
// Change one enforcement layer only together with the other.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc:  "forbid wall-clock time, math/rand, and out-of-owner sim.Clock mutation in simulation packages",
	Run:  runDetClock,
}

// wallClockFuncs are the package-level time functions that read or act
// on the wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// clockOwnerPkgs are the packages allowed to mutate a sim.Clock: the
// layers that drive simulation runs (see the Clock single-owner rule,
// DESIGN.md §8).
var clockOwnerPkgs = map[string]bool{
	"icash/internal/sim":         true,
	"icash/internal/sim/event":   true,
	"icash/internal/harness":     true,
	"icash/internal/fault/chaos": true,
}

// engineOwnerPkgs are run-driving packages that own the clock only
// through the event engine: they build schedulers and compose whole
// served runs, but every instant they touch must come from a scheduled
// event, never from mutating the clock directly. The block-service
// front-end is the archetype — its sessions are stations on the
// engine, so a direct Advance would fork the timeline out from under
// its own scheduler. They get a tailored diagnostic instead of a pass.
var engineOwnerPkgs = map[string]bool{
	"icash/internal/server": true,
}

// clockMutators are the sim.Clock methods that move or rewind time.
var clockMutators = map[string]bool{
	"Advance": true, "AdvanceTo": true, "Reset": true,
}

const simPkgPath = "icash/internal/sim"

func runDetClock(pass *Pass) {
	if !strings.HasPrefix(pass.Pkg.Path(), "icash/internal/") {
		return
	}
	ownsClock := clockOwnerPkgs[pass.Pkg.Path()]
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %s in a simulation package: use sim.Rand for deterministic, per-stream seedable randomness", strings.Trim(imp.Path.Value, `"`))
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()] && !isMethod(fn) {
					pass.Reportf(n.Pos(),
						"wall-clock call time.%s in a simulation package: simulated time comes from sim.Clock", fn.Name())
					return true
				}
				if fn.Pkg().Path() == simPkgPath && clockMutators[fn.Name()] && isMethod(fn) && !ownsClock {
					if recvIsSimClock(fn) {
						if engineOwnerPkgs[pass.Pkg.Path()] {
							pass.Reportf(n.Pos(),
								"sim.Clock.%s in an engine-owner package: this package drives runs only through the event scheduler — schedule an event at the target instant instead of mutating the clock", fn.Name())
						} else {
							pass.Reportf(n.Pos(),
								"sim.Clock.%s called outside the run-driving packages: only the scheduler/harness layer advances time (see the clockcheck runtime assertion, internal/sim/clockcheck_on.go)", fn.Name())
						}
					}
				}
			case *ast.CompositeLit:
				if p, name, ok := namedTypePath(pass.Info.TypeOf(n)); ok && p == "time" && name == "Time" && len(n.Elts) == 0 {
					pass.Reportf(n.Pos(),
						"argless time.Time construction in a simulation package: use sim.Time on the simulated timeline")
				}
			}
			return true
		})
	}
}
