package analysis

import "testing"

// TestDetClockFixture runs detclock over its golden fixture, mounted
// under icash/internal/ so the analyzer is in scope.
func TestDetClockFixture(t *testing.T) {
	runFixture(t, DetClock, "detclock", "icash/internal/fixturedet")
}

// TestDetClockOutOfScope proves the same fixture produces nothing
// outside internal/: the analyzer must not leak into cmd/ or examples.
func TestDetClockOutOfScope(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/detclock", "icash/cmd/fixturedet")
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Analyzer{DetClock}, pkg, newProgram()); len(fs) != 0 {
		t.Fatalf("detclock fired outside internal/: %v", fs)
	}
}

// TestDetClockEngineOwnerPackages proves engine-owner packages (the
// block-service front-end) get the tailored diagnostic: they drive
// runs, but only the scheduler may move their clock, so direct
// mutation is still flagged — with the schedule-an-event message.
func TestDetClockEngineOwnerPackages(t *testing.T) {
	runFixture(t, DetClock, "engineclock", "icash/internal/server")
}

// TestDetClockAllowsOwnerPackages proves the clock-mutation rule stays
// quiet in the run-driving packages: the same mutating calls that the
// fixture flags are legal when the package is a clock owner.
func TestDetClockAllowsOwnerPackages(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/ownerclock", "icash/internal/harness")
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Analyzer{DetClock}, pkg, newProgram()); len(fs) != 0 {
		t.Fatalf("detclock flagged clock mutation in an owner package: %v", fs)
	}
}
