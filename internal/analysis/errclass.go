package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrClass proves the fault taxonomy's promise: every device error is
// classified before it is acted on, and none is silently discarded on
// an I/O path. fault.Classify and blockdev.Classify resolve an error's
// recovery class through arbitrary wrapping — but only if every layer
// preserves the chain (%w) and nobody drops or shadow-compares the
// error on the way up.
//
// In the device-layer packages (blockdev, ssd, hdd, raid, ram, core,
// fault and its subpackages, baseline, harness) the analyzer flags:
//
//   - `_ = expr` and `x, _ := f()` assignments that blank an
//     error-typed value: a swallowed I/O error is a silent-data-loss
//     bug in waiting;
//   - expression, defer and go statements that call a function
//     returning an error and drop the whole result
//     (`dev.WriteBlock(...)` as a bare statement) — except calls whose
//     error result is dead by documented contract: the fmt print
//     family, strings.Builder / bytes.Buffer writes, hash.Hash.Write;
//   - fmt.Errorf calls that interpolate an error argument without the
//     %w verb: the chain breaks and Classify downgrades the fault to
//     ClassOther, disabling retry/degrade logic;
//   - == / != comparisons between two error values (other than nil
//     checks) and switches on an error value: sentinel identity does
//     not survive wrapping — use errors.Is, errors.As, or
//     fault.Classify.
//
// Outside those packages the analyzer goes interprocedural: using the
// Program's function summaries it flags blanked or dropped errors whose
// callee — directly or through any chain of module wrappers — returns
// an error sourced from a device call. A one-level wrapper cannot hide
// a dropped classification.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc:  "device-layer errors must be classified or %w-wrapped, never discarded or identity-compared",
	Run:  runErrClass,
}

// errClassPkgs are the I/O-path packages the discipline applies to.
// fault subpackages (chaos, crashtest) inherit via prefix match.
var errClassPkgs = map[string]bool{
	"icash/internal/blockdev": true,
	"icash/internal/ssd":      true,
	"icash/internal/hdd":      true,
	"icash/internal/raid":     true,
	"icash/internal/ram":      true,
	"icash/internal/core":     true,
	"icash/internal/fault":    true,
	"icash/internal/baseline": true,
	"icash/internal/harness":  true,
}

func inErrClassScope(path string) bool {
	return errClassPkgs[path] || strings.HasPrefix(path, "icash/internal/fault/")
}

func runErrClass(pass *Pass) {
	if !inErrClassScope(pass.Pkg.Path()) {
		runErrClassInterproc(pass)
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankError(pass, n)
			case *ast.ExprStmt:
				checkDroppedError(pass, n.X, "")
			case *ast.DeferStmt:
				checkDroppedError(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDroppedError(pass, n.Call, "go ")
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			case *ast.BinaryExpr:
				checkErrorCompare(pass, n)
			case *ast.SwitchStmt:
				checkErrorSwitch(pass, n)
			}
			return true
		})
	}
}

// runErrClassInterproc extends the discard checks to the rest of the
// module via function summaries. Outside the device-layer packages most
// errors are the caller's business — but an error that originates at
// the device layer does not stop being a device error because a wrapper
// re-exported it: if the callee (directly, or through any chain of
// summarized module functions) returns an error sourced from a device
// call, blanking or dropping it is the same silent-data-loss bug the
// in-scope checks catch, one level up.
func runErrClassInterproc(pass *Pass) {
	if pass.Prog == nil || !strings.HasPrefix(pass.Pkg.Path(), "icash/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankDeviceError(pass, n)
			case *ast.ExprStmt:
				checkDroppedDeviceError(pass, n.X, "")
			case *ast.DeferStmt:
				checkDroppedDeviceError(pass, n.Call, "defer ")
			case *ast.GoStmt:
				checkDroppedDeviceError(pass, n.Call, "go ")
			}
			return true
		})
	}
}

// deviceErrorCall reports whether call returns an error that originates
// at the device layer: a direct device/station call, or a summarized
// module function the Program knows forwards a device error.
func deviceErrorCall(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || !returnsError(pass, call) {
		return nil, false
	}
	if isDirectDeviceCall(pass.Info, call) {
		return fn, true
	}
	return fn, pass.Prog.DeviceErrorSource(fn)
}

// checkBlankDeviceError flags `x, _ := wrapper()` where wrapper's error
// is device-originated.
func checkBlankDeviceError(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" || !isErrorType(blankedType(pass, as, i)) {
			continue
		}
		rhs := as.Rhs[min(i, len(as.Rhs)-1)]
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, tainted := deviceErrorCall(pass, call); tainted {
			pass.Reportf(lhs.Pos(),
				"error from %s discarded with _, but it originates at the device layer (via the call chain): a wrapper does not launder a device error — handle or return it", fn.Name())
		}
	}
}

// checkDroppedDeviceError flags statements that drop the whole result
// of a device-error-tainted call.
func checkDroppedDeviceError(pass *Pass, e ast.Expr, prefix string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if fn, tainted := deviceErrorCall(pass, call); tainted {
		pass.Reportf(call.Pos(),
			"%sstatement drops the error of %s, which originates at the device layer (via the call chain): check it or assign it explicitly", prefix, fn.Name())
	}
}

// checkBlankError flags assignments that blank an error value.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if isErrorType(blankedType(pass, as, i)) {
			pass.Reportf(lhs.Pos(),
				"error value discarded with _ on an I/O path: handle it, or wrap with %%w and return (suppress with //lint:ignore errclass <why> if provably impossible)")
		}
	}
}

// checkDroppedError flags statements that invoke an error-returning
// function and ignore every result. Writers whose documented contract
// is to never return a non-nil error are exempt (see neverFails).
func checkDroppedError(pass *Pass, e ast.Expr, prefix string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if returnsError(pass, call) && !neverFails(pass, call) {
		pass.Reportf(call.Pos(),
			"%sstatement drops an error result on an I/O path: check it or assign it explicitly", prefix)
	}
}

// neverFails reports whether call's error result is dead by documented
// contract: the fmt print family, the in-memory writers
// (strings.Builder, bytes.Buffer), and hash.Hash.Write all promise to
// never return a non-nil error, so dropping it carries no information.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	if !isMethod(fn) {
		return false
	}
	// Judge methods by the static type of the receiver expression (not
	// the method's declaring type): h.Write on a hash.Hash64 resolves
	// to the embedded io.Writer.Write, but it is the hash interface
	// that documents the never-fails contract.
	recv := receiverType(pass, call)
	pkgPath, name, named := namedTypePath(recv)
	if !named {
		return false
	}
	switch {
	case pkgPath == "strings" && name == "Builder":
		return true
	case pkgPath == "bytes" && name == "Buffer":
		return true
	case pkgPath == "hash" && fn.Name() == "Write":
		return true
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf with an error argument and no %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.Info.TypeOf(arg)) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf interpolates an error without %%w: the chain breaks and fault.Classify downgrades it to ClassOther (use %%w, or %%v with //lint:ignore errclass <why> to deliberately seal the chain)")
			return
		}
	}
}

// checkErrorCompare flags err1 == err2 where neither side is nil.
func checkErrorCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isErrorType(pass.Info.TypeOf(b.X)) || !isErrorType(pass.Info.TypeOf(b.Y)) {
		return
	}
	if isNilExpr(pass.Info, b.X) || isNilExpr(pass.Info, b.Y) {
		return
	}
	pass.Reportf(b.Pos(),
		"error identity comparison does not survive %%w wrapping: use errors.Is, errors.As, or fault.Classify")
}

// checkErrorSwitch flags `switch err { case ErrMedia: ... }`.
func checkErrorSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(pass.Info.TypeOf(sw.Tag)) {
		return
	}
	// A switch whose only cases are nil tests is a null check; any
	// non-nil case expression is a sentinel identity match.
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isNilExpr(pass.Info, e) {
				pass.Reportf(e.Pos(),
					"switch on error identity does not survive %%w wrapping: switch on fault.Classify(err) instead")
				return
			}
		}
	}
}

// receiverType returns the static type of the receiver expression of a
// method call, or nil for non-selector calls.
func receiverType(pass *Pass, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.Info.Selections[sel]; ok {
		return s.Recv()
	}
	return nil
}

// blankedType resolves the type flowing into LHS position i of as:
// positions pair one-to-one unless a single multi-value RHS (call,
// comma-ok) fans out across the LHS, which go/types records as a
// tuple.
func blankedType(pass *Pass, as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == len(as.Lhs) {
		return pass.Info.TypeOf(as.Rhs[i])
	}
	if len(as.Rhs) != 1 {
		return nil
	}
	t := pass.Info.TypeOf(as.Rhs[0])
	if tuple, ok := t.(*types.Tuple); ok && i < tuple.Len() {
		return tuple.At(i).Type()
	}
	return nil
}

// returnsError reports whether call's result tuple contains an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.Info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}
