package analysis

import "testing"

// TestErrClassFixture runs errclass over its golden fixture, mounted
// under internal/fault/ so the device-layer scope applies.
func TestErrClassFixture(t *testing.T) {
	runFixture(t, ErrClass, "errclass", "icash/internal/fault/fixtureerr")
}

// TestErrClassInterprocFixture runs errclass over the interprocedural
// fixture, mounted OUTSIDE the device-layer scope: only blanked or
// dropped errors whose callee chain reaches a device call are findings
// there — a one-level (or two-level) wrapper cannot launder the taint,
// and pure local errors stay the caller's business.
func TestErrClassInterprocFixture(t *testing.T) {
	runFixture(t, ErrClass, "errclassinterproc", "icash/internal/wrapfix")
}

// TestErrClassOutOfScope proves the discipline does not apply outside
// the device-layer packages (reporting/tool code may drop fmt errors
// freely without suppressions).
func TestErrClassOutOfScope(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/errclass", "icash/cmd/fixtureerr")
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Analyzer{ErrClass}, pkg, newProgram()); len(fs) != 0 {
		t.Fatalf("errclass fired outside the device layer: %v", fs)
	}
}
