package analysis

import (
	"go/ast"
	"strings"
)

// Goroutines proves the concurrency-containment invariant behind the
// repo's determinism story: simulation code under icash/internal/ does
// not hand-roll concurrency. Byte-identical results at any -parallel
// count hold because exactly three places are allowed to spawn
// goroutines or multiplex channels, each with a reviewed determinism
// argument:
//
//   - harness.ForEachPoint — the blessed fan-out primitive: parallel
//     across experiment points, never within a run, results delivered
//     into pre-sized slots (DESIGN.md §8);
//   - the event engine (internal/sim/event) — single-threaded today,
//     and the one place a future engine-level overlap model would live;
//   - the crash harness (internal/fault/crashtest) — process-level
//     fault injection is inherently asynchronous.
//
// Everywhere else under icash/internal/, a go statement or a select is
// a finding: a worker pool beside the harness re-introduces completion-
// order nondeterminism, and a select is scheduling-order dependent by
// design (two ready cases are chosen pseudo-randomly). Code that needs
// fan-out routes through harness.ForEachPoint; code that needs
// timeline concurrency models it as events. cmd/ front-ends (real
// sockets, real signals) are out of scope on purpose.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc:  "internal/ packages spawn goroutines and select only via the approved primitives (ForEachPoint, event engine, crashtest)",
	Run:  runGoroutines,
}

// goroutinePkgAllow are the packages whose concurrency is the approved
// machinery itself.
var goroutinePkgAllow = map[string]bool{
	"icash/internal/sim/event":       true,
	"icash/internal/fault/crashtest": true,
}

// goroutineFuncAllow are individually-approved functions in otherwise
// restricted packages: package path -> function name.
var goroutineFuncAllow = map[string]map[string]bool{
	"icash/internal/harness": {"ForEachPoint": true},
}

func runGoroutines(pass *Pass) {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, "icash/internal/") || goroutinePkgAllow[path] {
		return
	}
	allowFuncs := goroutineFuncAllow[path]
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowFuncs[fd.Name.Name] && fd.Recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(),
						"go statement outside the approved concurrency primitives: route fan-out through harness.ForEachPoint (parallel across runs, never within a run) or model it as events")
				case *ast.SelectStmt:
					pass.Reportf(n.Pos(),
						"select in a simulation package: two ready cases resolve in scheduler order, which is nondeterministic — use the event engine's ordered queue instead")
				}
				return true
			})
		}
	}
}
