package analysis

import "testing"

// TestGoroutinesFixture runs the concurrency-containment analyzer over
// its golden fixture, mounted at a plain internal/ path where no
// allowance applies.
func TestGoroutinesFixture(t *testing.T) {
	runFixture(t, Goroutines, "goroutines", "icash/internal/gofix")
}

// TestGoroutinesAllowFixture mounts a fixture at the harness path:
// ForEachPoint (the blessed fan-out primitive) may spawn, its package
// neighbors may not.
func TestGoroutinesAllowFixture(t *testing.T) {
	runFixture(t, Goroutines, "goroutinesallow", "icash/internal/harness")
}

// TestGoroutinesAllowedPackages proves the approved machinery packages
// (event engine, crash harness) are exempt wholesale.
func TestGoroutinesAllowedPackages(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/goroutines", "icash/internal/sim/event")
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Analyzer{Goroutines}, pkg, newProgram()); len(fs) != 0 {
		t.Fatalf("goroutines fired inside an approved package: %v", fs)
	}
}
