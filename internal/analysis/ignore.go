package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // analyzer names the directive silences
	reason    string   // mandatory justification
}

// parseIgnores extracts every //lint:ignore directive from pkg's
// comments. Malformed directives (no analyzer, no reason, or a name
// not in the catalog) are returned as findings so a typo cannot
// silently disable a check.
func parseIgnores(pkg *Package) (byLine map[string][]ignoreDirective, bad []Finding) {
	known := make(map[string]bool)
	for _, a := range Catalog() {
		known[a.Name] = true
	}
	byLine = make(map[string][]ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: need an analyzer name and a reason",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				valid := true
				for _, n := range names {
					if !known[n] {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "//lint:ignore names unknown analyzer " + n,
						})
						valid = false
					}
				}
				if !valid {
					continue
				}
				d := ignoreDirective{
					pos:       pos,
					analyzers: names,
					reason:    strings.Join(fields[1:], " "),
				}
				byLine[lineKey(pos.Filename, pos.Line)] = append(byLine[lineKey(pos.Filename, pos.Line)], d)
			}
		}
	}
	return byLine, bad
}

func lineKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}

// applyIgnores filters findings suppressed by a //lint:ignore directive
// on the finding's own line or the line directly above it, and appends
// findings for malformed directives.
func applyIgnores(pkg *Package, findings []Finding) []Finding {
	byLine, bad := parseIgnores(pkg)
	var kept []Finding
	for _, f := range findings {
		if ignored(byLine, f) {
			continue
		}
		kept = append(kept, f)
	}
	kept = append(kept, bad...)
	return kept
}

func ignored(byLine map[string][]ignoreDirective, f Finding) bool {
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range byLine[lineKey(f.Pos.Filename, line)] {
			for _, name := range d.analyzers {
				if name == f.Analyzer {
					return true
				}
			}
		}
	}
	return false
}
