package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. used flips when
// the directive suppresses at least one finding; a tracked application
// (the vet pipeline) reports directives that never flip as staleignore
// findings.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // analyzer names the directive silences
	reason    string   // mandatory justification
	used      bool
}

// parseIgnores extracts every //lint:ignore directive from pkg's
// comments, in source order. Malformed directives (no analyzer, no
// reason, or a name not in the catalog) are returned as findings so a
// typo cannot silently disable a check.
func parseIgnores(pkg *Package) (dirs []*ignoreDirective, bad []Finding) {
	known := make(map[string]bool)
	for _, a := range Catalog() {
		known[a.Name] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: need an analyzer name and a reason",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				valid := true
				for _, n := range names {
					if !known[n] {
						bad = append(bad, Finding{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "//lint:ignore names unknown analyzer " + n,
						})
						valid = false
					}
				}
				if !valid {
					continue
				}
				dirs = append(dirs, &ignoreDirective{
					pos:       pos,
					analyzers: names,
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

func lineKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}

// directivesByLine indexes directives by file and line.
func directivesByLine(dirs []*ignoreDirective) map[string][]*ignoreDirective {
	byLine := make(map[string][]*ignoreDirective)
	for _, d := range dirs {
		k := lineKey(d.pos.Filename, d.pos.Line)
		byLine[k] = append(byLine[k], d)
	}
	return byLine
}

// matchDirective returns the directive that suppresses f (a directive
// on the finding's own line or the line directly above, naming the
// finding's analyzer), or nil.
func matchDirective(byLine map[string][]*ignoreDirective, f Finding) *ignoreDirective {
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range byLine[lineKey(f.Pos.Filename, line)] {
			for _, name := range d.analyzers {
				if name == f.Analyzer {
					return d
				}
			}
		}
	}
	return nil
}

// applyIgnores filters findings suppressed by pkg's //lint:ignore
// directives and appends findings for malformed ones. This is the
// single-package, staleness-blind application the fixture harness uses:
// a fixture run executes one analyzer, so "this directive suppressed
// nothing" would be meaningless there.
func applyIgnores(pkg *Package, findings []Finding) []Finding {
	dirs, bad := parseIgnores(pkg)
	byLine := directivesByLine(dirs)
	var kept []Finding
	for _, f := range findings {
		if matchDirective(byLine, f) != nil {
			continue
		}
		kept = append(kept, f)
	}
	return append(kept, bad...)
}

// applyIgnoresTracked is the vet pipeline's application: it merges the
// directives of every vetted package, filters the full catalog's
// findings through them while tracking usage, and appends malformed-
// directive findings plus one staleignore finding per directive that
// suppressed nothing. Only meaningful after the complete catalog ran —
// a directive is stale against all analyzers or none.
func applyIgnoresTracked(pkgs []*Package, findings []Finding) []Finding {
	var dirs []*ignoreDirective
	var bad []Finding
	for _, pkg := range pkgs {
		d, b := parseIgnores(pkg)
		dirs = append(dirs, d...)
		bad = append(bad, b...)
	}
	byLine := directivesByLine(dirs)
	var kept []Finding
	for _, f := range findings {
		if d := matchDirective(byLine, f); d != nil {
			d.used = true
			continue
		}
		kept = append(kept, f)
	}
	kept = append(kept, bad...)
	for _, d := range dirs {
		if d.used {
			continue
		}
		kept = append(kept, Finding{
			Pos:      d.pos,
			Analyzer: "staleignore",
			Message: "//lint:ignore " + strings.Join(d.analyzers, ",") +
				" suppresses nothing: the finding it excused is gone — delete the directive (reason was: " +
				strconv.Quote(d.reason) + ")",
		})
	}
	return kept
}
