package analysis

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// JSON output. Schema "icash-vet/1":
//
//	{
//	  "schema": "icash-vet/1",
//	  "findings": [
//	    {"file": "internal/core/iopath.go", "line": 12, "col": 3,
//	     "analyzer": "errclass", "message": "..."}
//	  ]
//	}
//
// File paths are module-root-relative with forward slashes, so reports
// diff cleanly across machines and checkouts. "findings" is always
// present (an empty array when clean), sorted in the suite's stable
// order. The schema field lets downstream tooling hard-fail on a
// format change instead of misparsing one.

// JSONReport is the icash-vet/1 document.
type JSONReport struct {
	Schema   string        `json:"schema"`
	Findings []JSONFinding `json:"findings"`
}

// JSONFinding is one finding, root-relative.
type JSONFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonSchemaVersion identifies the report format.
const jsonSchemaVersion = "icash-vet/1"

// MarshalFindings renders findings as an indented icash-vet/1 JSON
// document, with file paths relative to root.
func MarshalFindings(root string, findings []Finding) ([]byte, error) {
	rep := JSONReport{Schema: jsonSchemaVersion, Findings: []JSONFinding{}}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, JSONFinding{
			File:     rootRelative(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return json.MarshalIndent(rep, "", "  ")
}

// UnmarshalFindings parses an icash-vet/1 document, rejecting unknown
// schema versions.
func UnmarshalFindings(data []byte) (*JSONReport, error) {
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("analysis: parsing vet JSON: %w", err)
	}
	if rep.Schema != jsonSchemaVersion {
		return nil, fmt.Errorf("analysis: unsupported vet JSON schema %q (want %q)", rep.Schema, jsonSchemaVersion)
	}
	return &rep, nil
}

// rootRelative renders path relative to root with forward slashes,
// falling back to the input when it does not sit under root.
func rootRelative(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
