package analysis

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// TestJSONRoundTrip pins the icash-vet/1 schema: findings marshal with
// root-relative forward-slash paths, parse back identically, and an
// empty report still carries the findings array.
func TestJSONRoundTrip(t *testing.T) {
	root := "/repo"
	findings := []Finding{
		{
			Pos:      token.Position{Filename: "/repo/internal/core/iopath.go", Line: 12, Column: 3},
			Analyzer: "errclass",
			Message:  "dropped error",
		},
		{
			Pos:      token.Position{Filename: "/repo/internal/server/registry.go", Line: 40, Column: 2},
			Analyzer: "lockorder",
			Message:  "held across device call",
		},
	}
	out, err := MarshalFindings(root, findings)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := UnmarshalFindings(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "icash-vet/1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("round-tripped %d findings, want 2", len(rep.Findings))
	}
	f := rep.Findings[0]
	if f.File != "internal/core/iopath.go" || f.Line != 12 || f.Col != 3 ||
		f.Analyzer != "errclass" || f.Message != "dropped error" {
		t.Errorf("finding round-tripped as %+v", f)
	}
	if strings.Contains(string(out), "\\") {
		t.Errorf("JSON output contains backslash paths: %s", out)
	}
}

// TestJSONEmptyReport: a clean run emits findings: [], not null, so
// downstream consumers can iterate without a nil check.
func TestJSONEmptyReport(t *testing.T) {
	out, err := MarshalFindings("/repo", nil)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(out, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["findings"]) == "null" {
		t.Errorf("empty report marshals findings as null: %s", out)
	}
	rep, err := UnmarshalFindings(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("empty report parsed as %+v", rep)
	}
}

// TestJSONSchemaRejected: unknown schema versions hard-fail instead of
// misparsing.
func TestJSONSchemaRejected(t *testing.T) {
	_, err := UnmarshalFindings([]byte(`{"schema":"icash-vet/999","findings":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported vet JSON schema") {
		t.Errorf("unknown schema accepted (err = %v)", err)
	}
	_, err = UnmarshalFindings([]byte(`{nope`))
	if err == nil {
		t.Error("malformed JSON accepted")
	}
}
