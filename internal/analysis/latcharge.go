package analysis

import (
	"go/ast"
	"go/types"
)

// LatCharge proves the latency-accounting invariant of the device
// models: a block-op method (ReadBlock/WriteBlock returning
// (sim.Duration, error)) must not return success without charging the
// request's service time to the device's accounting — the
// blockdev.Stats NoteRead/NoteWrite helpers and, when instrumented,
// the event-station note. A success path that skips the charge makes
// throughput figures silently optimistic and starves the station
// model of the queueing time the concurrency engine depends on.
//
// The check is a lexical approximation, deliberately biased quiet: a
// `return …, nil` inside a ReadBlock/WriteBlock method in
// internal/ssd, internal/hdd or internal/raid is flagged only when no
// accounting call (Stats.NoteRead, Stats.NoteWrite, or a tracer
// note/Note) appears anywhere earlier in the method body. Error
// returns are exempt — charging on failure is policy, not invariant.
var LatCharge = &Analyzer{
	Name: "latcharge",
	Doc:  "device op methods must charge latency accounting before returning success",
	Run:  runLatCharge,
}

// latChargePkgs are the device-model packages whose op methods carry
// the accounting obligation.
var latChargePkgs = map[string]bool{
	"icash/internal/ssd":  true,
	"icash/internal/hdd":  true,
	"icash/internal/raid": true,
}

// latChargeFuncs extends the obligation to named methods outside the
// device models. The controller's journalWrite is the group-commit
// journal's durability point: every commit-record part flows through
// it, so a success return that skips NoteCommitWrite would hide commit
// device time from both the background account and the journal meter.
var latChargeFuncs = map[string]map[string]bool{
	"icash/internal/core": {"journalWrite": true},
}

// chargeMethods are the accounting helpers that count as charging:
// the blockdev.Stats note pair, the event-tracer station note, and
// the journal's commit-write meter.
var chargeMethods = map[string]bool{
	"NoteRead": true, "NoteWrite": true, "Note": true, "note": true,
	"NoteCommitWrite": true,
}

func runLatCharge(pass *Pass) {
	opScope := latChargePkgs[pass.Pkg.Path()]
	named := latChargeFuncs[pass.Pkg.Path()]
	if !opScope && named == nil {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			obligated := opScope && (fd.Name.Name == "ReadBlock" || fd.Name.Name == "WriteBlock")
			if !obligated && !named[fd.Name.Name] {
				continue
			}
			if !isDurationErrorSig(pass, fd) {
				continue
			}
			checkOpMethod(pass, fd)
		}
	}
}

// isDurationErrorSig reports whether fd returns exactly
// (sim.Duration, error).
func isDurationErrorSig(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	if res.Len() != 2 || !isErrorType(res.At(1).Type()) {
		return false
	}
	pkgPath, name, ok := namedTypePath(res.At(0).Type())
	return ok && pkgPath == simPkgPath && name == "Duration"
}

// checkOpMethod flags success returns not preceded by a charge.
// Function literals are not descended into: their returns belong to
// the closure, not to the op method.
func checkOpMethod(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 2 {
			return true
		}
		if !isNilExpr(pass.Info, ret.Results[1]) {
			return true // error path: charging is optional
		}
		if !chargedBefore(pass, fd, ret) {
			pass.Reportf(ret.Pos(),
				"%s returns success without charging latency: call Stats.NoteRead/NoteWrite (and the station note when instrumented) before this return", fd.Name.Name)
		}
		return true
	})
}

// chargedBefore reports whether any accounting call appears lexically
// before ret inside fd's body.
func chargedBefore(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	charged := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if charged || n == nil || n.Pos() >= ret.Pos() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && isMethod(fn) && chargeMethods[fn.Name()] {
				charged = true
				return false
			}
		}
		return true
	})
	return charged
}
