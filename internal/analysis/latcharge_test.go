package analysis

import "testing"

// TestLatChargeFixture runs latcharge over its golden fixture, mounted
// at a device-model path (internal/ssd) so op methods carry the
// accounting obligation.
func TestLatChargeFixture(t *testing.T) {
	runFixture(t, LatCharge, "latcharge", "icash/internal/ssd")
}

// TestLatChargeJournalWrite runs latcharge over the named-function
// fixture mounted at the controller's path: journalWrite must charge
// NoteCommitWrite before success, while op-method names and op-shaped
// helpers in the same package stay exempt.
func TestLatChargeJournalWrite(t *testing.T) {
	runFixture(t, LatCharge, "latchargecore", "icash/internal/core")
}

// TestLatChargeOutOfScope proves op-shaped methods outside the device
// models (e.g. the controller, whose charging flows through different
// helpers) are not flagged by this analyzer.
func TestLatChargeOutOfScope(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/latcharge", "icash/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Analyzer{LatCharge}, pkg, newProgram()); len(fs) != 0 {
		t.Fatalf("latcharge fired outside the device models: %v", fs)
	}
}
