package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds type-checker diagnostics when the loader runs
	// lenient (fixtures); a strict load fails on the first of these.
	TypeErrors []error
}

// Loader loads and type-checks packages of one module from source,
// using only the standard library: module-internal imports resolve to
// directories under the module root, everything else falls through to
// go/importer's source importer (which type-checks the standard
// library from $GOROOT/src). No export data, no go.sum, no x/tools.
type Loader struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Module is the module path declared in go.mod.
	Module string
	// Lenient tolerates type errors instead of failing the load. The
	// fixture tests use it so a deliberately-broken testdata file still
	// produces a Package the analyzers can walk.
	Lenient bool

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: modPath,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   make(map[string]*Package),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod. Tests and the CLI use it so icash-vet works from any
// directory inside the repository.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves package patterns against the module. Supported forms
// mirror the go tool where this repo needs them: "./..." (every
// package under the root), "./x/..." (every package under x), and
// plain relative directories ("./internal/ssd").
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "./"
			}
		}
		dir := filepath.Join(l.Root, filepath.FromSlash(pat))
		if !rec {
			if ip, ok := l.dirImportPath(dir); ok {
				add(ip)
				continue
			}
			return nil, fmt.Errorf("analysis: no Go package in %s", pat)
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if ip, ok := l.dirImportPath(path); ok {
				add(ip)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// dirImportPath maps a directory with buildable Go files to its
// module-relative import path.
func (l *Loader) dirImportPath(dir string) (string, bool) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil || len(bp.GoFiles) == 0 {
		return "", false
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", false
	}
	if rel == "." {
		return l.Module, true
	}
	return l.Module + "/" + filepath.ToSlash(rel), true
}

// Load type-checks the package at import path (module-internal), or
// returns the cached result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	return l.loadDir(dir, path)
}

// LoadDir type-checks the package in dir under an explicit import
// path. The fixture tests use it to mount testdata packages at paths
// the scoped analyzers react to (e.g. under icash/internal/).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	return l.loadDir(dir, asPath)
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path: path,
		Dir:  dir,
		Fset: l.fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		Files: files,
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, pkg.Info)
	if err != nil && !l.Lenient {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// loaderImporter routes module-internal imports back through the
// Loader and everything else to the standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Vet loads every package matching patterns under root, builds the
// module-wide Program (summaries for the targets and every module
// dependency the load pulled in), runs the full analyzer catalog over
// each target, runs the Finish hooks over the accumulated module-wide
// facts, applies //lint:ignore suppressions with usage tracking (stale
// directives become staleignore findings), and returns the surviving
// findings in stable order.
func Vet(root string, patterns []string) ([]Finding, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := l.Expand(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(l)
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, RunAnalyzers(Catalog(), pkg, prog)...)
	}
	for _, a := range Catalog() {
		if a.Finish != nil {
			findings = append(findings, a.Finish(prog)...)
		}
	}
	findings = applyIgnoresTracked(pkgs, findings)
	sortFindings(findings)
	return findings, nil
}

// VetPackage runs the full catalog (Finish hooks included) on one
// loaded package, applies its //lint:ignore directives, and reports the
// stale ones — the single-package version of Vet. The Program sees only
// this package, so interprocedural facts stop at its boundary.
func VetPackage(pkg *Package) []Finding {
	prog := newProgram()
	prog.addPackage(pkg)
	findings := RunAnalyzers(Catalog(), pkg, prog)
	for _, a := range Catalog() {
		if a.Finish != nil {
			findings = append(findings, a.Finish(prog)...)
		}
	}
	return applyIgnoresTracked([]*Package{pkg}, findings)
}
