package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder proves the locking discipline the sharded controller leans
// on: every lock acquisition in the concurrency-bearing packages
// respects one global acquisition order, and no lock is held across a
// blocking device or station call.
//
// The analyzer walks each function with a lexical held-set (Lock pushes
// a class, Unlock pops it, a deferred Unlock holds to the end of the
// function) and:
//
//   - records an edge A → B in the module-wide acquisition-order graph
//     whenever class B is acquired — directly, or anywhere inside a
//     called module function (via its summary) — while class A is held.
//     After all packages are analyzed, the Finish hook reports every
//     edge that lies on a cycle: two goroutines taking the same pair of
//     locks in opposite orders is the classic ABBA deadlock, and a
//     self-edge is a recursive acquisition that deadlocks on its own
//     (sync.Mutex is not reentrant);
//   - flags any (transitively) blocking device or station call made
//     while a lock is held: that is how a lock ends up serializing the
//     array behind its slowest device op. The one deliberate case,
//     server.ShardRouter — whose per-shard lockmap address IS the
//     exclusion token that keeps each single-threaded shard controller
//     single-threaded — carries //lint:ignore directives saying so;
//     only the owning shard waits, the others keep serving.
//
// Lock classes are static "slots", not runtime instances:
// "server.Registry.mu" is one class however many registries exist, and
// a lockmap.LockMap is one class per declared map — ordering between
// addresses inside a map is Acquire2's canonical-order contract, which
// this analyzer cannot see and the -race jobs cover instead.
var LockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "lock acquisitions must follow one global order and never span blocking device/station calls",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// lockOrderScopes are the package prefixes the discipline applies to:
// the packages that hold real locks (or soon will). Keeping the scope
// tight keeps the graph readable; a new concurrent package earns its
// place here the day it declares a mutex.
var lockOrderScopes = []string{
	"icash/internal/core",
	"icash/internal/server",
	"icash/internal/lockmap",
	"icash/cmd/icash-serve",
}

func inLockOrderScope(path string) bool {
	for _, s := range lockOrderScopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

// lockEdge is one observed acquisition ordering: to was acquired while
// from was held, at pos (inside pkg).
type lockEdge struct {
	from, to string
	pos      token.Pos
	position token.Position
}

// heldLock is one entry of the lexical held-set.
type heldLock struct {
	class    string
	deferred bool // released by defer: held to end of function
}

func runLockOrder(pass *Pass) {
	if pass.Prog == nil || !inLockOrderScope(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkLockOrder(pass, fd)
		}
	}
}

// walkLockOrder runs the lexical held-set over one function body.
// Statements are walked in order; each branch of an if/for/switch/
// select gets a copy of the held-set, so a lock acquired (or released)
// on an early-return path does not pollute the fall-through path. This
// models the repo's straight-line-plus-early-return style exactly; a
// lock acquired in one branch and released in a later sibling branch is
// beyond it, in the suite's "biased quiet" tradition.
func walkLockOrder(pass *Pass, fd *ast.FuncDecl) {
	w := &lockWalker{pass: pass, deferred: make(map[*ast.CallExpr]bool)}
	held := []heldLock{}
	w.stmts(fd.Body.List, &held)
}

type lockWalker struct {
	pass     *Pass
	deferred map[*ast.CallExpr]bool
}

func copyHeld(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

func (w *lockWalker) stmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held *[]heldLock) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		w.stmt(s.Init, held)
		w.calls(s.Cond, held)
		branch := copyHeld(*held)
		w.stmt(s.Body, &branch)
		if s.Else != nil {
			elseBranch := copyHeld(*held)
			w.stmt(s.Else, &elseBranch)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, held)
		if s.Cond != nil {
			w.calls(s.Cond, held)
		}
		branch := copyHeld(*held)
		w.stmt(s.Body, &branch)
		w.stmt(s.Post, &branch)
	case *ast.RangeStmt:
		w.calls(s.X, held)
		branch := copyHeld(*held)
		w.stmt(s.Body, &branch)
	case *ast.SwitchStmt:
		w.stmt(s.Init, held)
		if s.Tag != nil {
			w.calls(s.Tag, held)
		}
		w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, held)
		w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			branch := copyHeld(*held)
			w.stmt(cc.Comm, &branch)
			w.stmts(cc.Body, &branch)
		}
	case *ast.DeferStmt:
		w.deferred[s.Call] = true
		w.calls(s.Call, held)
	default:
		// Leaf statements: expression/assign/return/go/send/decl. Their
		// calls execute in evaluation order with the current held-set.
		w.calls(s, held)
	}
}

func (w *lockWalker) caseClauses(body *ast.BlockStmt, held *[]heldLock) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.calls(e, held)
		}
		branch := copyHeld(*held)
		w.stmts(cc.Body, &branch)
	}
}

// calls applies every call expression under n (function literals
// included) to the held-set: lock ops update it, blocking work under a
// held lock is reported, callee lock summaries contribute edges.
func (w *lockWalker) calls(n ast.Node, held *[]heldLock) {
	if n == nil {
		return
	}
	pass := w.pass
	info := pass.Info
	edge := func(to string, pos token.Pos) {
		for _, h := range *held {
			pass.Prog.lockEdges = append(pass.Prog.lockEdges, lockEdge{
				from:     h.class,
				to:       to,
				pos:      pos,
				position: pass.Fset.Position(pos),
			})
		}
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		if d, ok := nn.(*ast.DeferStmt); ok {
			w.deferred[d.Call] = true
			return true
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		ops := lockOps(info, call)
		for _, op := range ops {
			switch {
			case op.Acquire:
				edge(op.Class, call.Pos())
				*held = append(*held, heldLock{class: op.Class})
			case w.deferred[call]:
				// defer mu.Unlock(): the lock stays held for the rest
				// of the function (or branch).
				for i := len(*held) - 1; i >= 0; i-- {
					if (*held)[i].class == op.Class && !(*held)[i].deferred {
						(*held)[i].deferred = true
						break
					}
				}
			default:
				// Release with no matching lexical acquire (the
				// drop-the-lock-around-IO pattern split across helpers)
				// pops nothing and stays quiet.
				for i := len(*held) - 1; i >= 0; i-- {
					if (*held)[i].class == op.Class && !(*held)[i].deferred {
						*held = append((*held)[:i], (*held)[i+1:]...)
						break
					}
				}
			}
		}
		if len(*held) == 0 {
			return true
		}
		// Blocking device/station work under a lock: direct calls and —
		// via summaries — anything a module callee reaches.
		callee := calleeFunc(info, call)
		if isDirectDeviceCall(info, call) {
			name := "call"
			if callee != nil {
				name = funcDisplayName(callee)
			}
			pass.Reportf(call.Pos(),
				"lock %s held across blocking device/station call %s: one slow op stalls every waiter — release the lock (or snapshot under it) before touching the device",
				(*held)[len(*held)-1].class, name)
		} else if callee != nil && pass.Prog.PerformsDeviceCall(callee) {
			pass.Reportf(call.Pos(),
				"lock %s held across call to %s, which (transitively) performs blocking device/station work: release the lock before calling down",
				(*held)[len(*held)-1].class, funcDisplayName(callee))
		}
		// Ordering edges contributed by the callee's own locks.
		if callee != nil && len(ops) == 0 {
			for _, class := range pass.Prog.AcquiredClasses(callee) {
				edge(class, call.Pos())
			}
		}
		return true
	})
}

// funcDisplayName renders pkg-qualified "server.Backend.Flush" /
// "event.Run" style names.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		if i := strings.LastIndex(path, "/"); i >= 0 {
			path = path[i+1:]
		}
		pkg = path + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, name, named := namedTypePath(sig.Recv().Type()); named {
			return pkg + name + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// finishLockOrder reports every acquisition-order edge that lies on a
// cycle of the module-wide graph. Edges are visited in deterministic
// (position) order, so output is stable across runs.
func finishLockOrder(prog *Program) []Finding {
	edges := prog.lockEdges
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	// reaches reports whether to is reachable from from.
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			next := make([]string, 0, len(adj[n]))
			for m := range adj[n] {
				next = append(next, m)
			}
			sort.Strings(next)
			for _, m := range next {
				if m == to {
					return true
				}
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return false
	}

	sorted := make([]lockEdge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].position, sorted[j].position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})

	var findings []Finding
	reported := make(map[string]bool)
	for _, e := range sorted {
		key := e.from + "\x00" + e.to + "\x00" + e.position.String()
		if reported[key] {
			continue
		}
		switch {
		case e.from == e.to:
			reported[key] = true
			findings = append(findings, Finding{
				Pos:      e.position,
				Analyzer: "lockorder",
				Message: "lock class " + e.to + " acquired while already held: sync.Mutex is not reentrant — " +
					"a same-class nested acquire deadlocks unless a canonical order (lockmap.Acquire2) proves the instances distinct",
			})
		case reaches(e.to, e.from):
			reported[key] = true
			findings = append(findings, Finding{
				Pos:      e.position,
				Analyzer: "lockorder",
				Message: "lock acquisition order cycle: " + e.to + " acquired while " + e.from +
					" held, but the module also orders " + e.to + " before " + e.from +
					" — concurrent goroutines taking the two orders deadlock (ABBA)",
			})
		}
	}
	return findings
}

// LockOrderGraph renders the module-wide acquisition-order graph as
// sorted, de-duplicated "from -> to" lines — the deterministic dump the
// selfcheck test pins so the lock hierarchy is reviewed like code.
func (p *Program) LockOrderGraph() []string {
	seen := make(map[string]bool)
	var lines []string
	for _, e := range p.lockEdges {
		line := e.from + " -> " + e.to
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	}
	sort.Strings(lines)
	return lines
}
