package analysis

import (
	"reflect"
	"testing"
)

// TestLockOrderFixture runs lockorder over its golden fixture, mounted
// under internal/server/ so the concurrency scope applies and the
// fixture's ReadBlock method counts as a device call.
func TestLockOrderFixture(t *testing.T) {
	runFixture(t, LockOrder, "lockorder", "icash/internal/server/lofix")
}

// TestLockOrderFixtureGraph pins the acquisition-order graph the
// fixture induces, including the summary-derived edge from
// nestedViaCallee (regA held while callLocker acquires regC) — an edge
// no single-function walk could draw.
func TestLockOrderFixtureGraph(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/lockorder", "icash/internal/server/lofix")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(l)
	RunAnalyzers([]*Analyzer{LockOrder}, pkg, prog)
	got := prog.LockOrderGraph()
	want := []string{
		"lofix.regA.mu -> lofix.regA.mu",
		"lofix.regA.mu -> lofix.regB.mu",
		"lofix.regA.mu -> lofix.regC.mu",
		"lofix.regB.mu -> lofix.regA.mu",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LockOrderGraph() = %v, want %v", got, want)
	}
}

// TestLockOrderOutOfScope proves the discipline does not apply outside
// the concurrency-bearing packages.
func TestLockOrderOutOfScope(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/lockorder", "icash/internal/ssd/lofix")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram(l)
	fs := RunAnalyzers([]*Analyzer{LockOrder}, pkg, prog)
	fs = append(fs, finishLockOrder(prog)...)
	if len(fs) != 0 {
		t.Fatalf("lockorder fired outside its scope: %v", fs)
	}
}
