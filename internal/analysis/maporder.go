package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder proves the GOMAXPROCS-determinism invariant against its
// classic silent killer: Go randomizes map iteration order, so any
// `range` over a map whose body does something order-sensitive makes
// results differ run to run while every test still passes. The
// chaos-soak regression test eventually notices; this analyzer rejects
// the diff instead.
//
// A map range is flagged when its body:
//
//   - writes output (the fmt print family, including Sprint*: a string
//     built from map order is as nondeterministic as printed bytes);
//   - appends to a slice declared outside the loop (the slice's
//     element order then depends on map order — unless the slice is
//     passed to a sort/slices sorting call later in the same function,
//     the collect-then-sort idiom, which re-establishes determinism);
//   - accumulates floating point (+= and friends on a float declared
//     outside the loop: FP addition is not associative, so the sum
//     depends on iteration order);
//   - feeds the metrics package (histograms and windowed detectors are
//     order-sensitive; a counter bumped in map order today becomes a
//     ring-buffer append tomorrow).
//
// Integer accumulation, membership tests, and keyed writes into other
// maps are order-insensitive and intentionally not flagged. The fix is
// almost always the same: collect the keys, sort them, range over the
// sorted slice.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive iteration over Go maps (output, escaping appends, float accumulation, metrics)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Info.TypeOf(rng.X); t == nil {
				return true
			} else if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			checkMapRange(pass, rng, enclosingFunc(file, rng))
			return true
		})
	}
}

// enclosingFunc returns the innermost function declaration or literal
// lexically containing n, or the file itself for package-level code.
// Pre-order traversal visits outer functions before nested ones, so
// the last containing match is the innermost.
func enclosingFunc(file *ast.File, n ast.Node) ast.Node {
	var best ast.Node = file
	ast.Inspect(file, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if m.Pos() <= n.Pos() && n.End() <= m.End() {
				best = m
			}
		}
		return true
	})
	return best
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, enclosing ast.Node) {
	// The collect-keys idiom: a body that only appends the key to a
	// slice is fine if and only if that slice is later sorted.
	if sliceObj, ok := collectKeysOnly(pass.Info, rng); ok {
		if sortedLater(pass.Info, enclosing, rng, sliceObj) {
			return
		}
		pass.Reportf(rng.Pos(),
			"map keys collected into %s but never sorted in this function: iteration order will leak into results (sort before use)", sliceObj.Name())
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil {
				if fn.Pkg().Path() == "fmt" && isPrintName(fn.Name()) {
					pass.Reportf(n.Pos(),
						"fmt.%s inside range over map: output order is nondeterministic (iterate sorted keys)", fn.Name())
				}
				if fn.Pkg().Path() == "icash/internal/metrics" {
					pass.Reportf(n.Pos(),
						"metrics call inside range over map: observation order is nondeterministic (iterate sorted keys)")
				}
			}
			if obj := appendTarget(pass.Info, n); obj != nil && !declaredWithin(obj, rng) &&
				!sortedLater(pass.Info, enclosing, rng, obj) {
				pass.Reportf(n.Pos(),
					"append to %s (declared outside the loop) inside range over map: element order is nondeterministic (iterate sorted keys, or sort %s before use)", obj.Name(), obj.Name())
			}
		case *ast.AssignStmt:
			checkFloatAccum(pass, rng, n)
		}
		return true
	})
}

// isPrintName matches the fmt print family, Sprint* included.
func isPrintName(name string) bool {
	for _, prefix := range []string{"Print", "Fprint", "Sprint", "Append"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// appendTarget returns the object of x in `x = append(x, ...)`-style
// calls, i.e. the slice being grown, or nil for non-append calls.
// It resolves the call's first argument, which is the canonical target
// even in `y = append(x, ...)` misuse.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return baseIdentObj(info, call.Args[0])
}

// checkFloatAccum flags op-assignments accumulating floats declared
// outside the loop.
func checkFloatAccum(pass *Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		t := pass.Info.TypeOf(lhs)
		if t == nil {
			continue
		}
		basic, ok := t.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			continue
		}
		if obj := baseIdentObj(pass.Info, lhs); obj != nil && !declaredWithin(obj, rng) {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %s inside range over map: FP addition is not associative, the sum depends on iteration order", obj.Name())
		}
	}
}

// collectKeysOnly reports whether rng's body is exactly the
// collect-keys idiom `s = append(s, k)` (k the range key), returning
// the slice object.
func collectKeysOnly(info *types.Info, rng *ast.RangeStmt) (types.Object, bool) {
	if len(rng.Body.List) != 1 || rng.Key == nil {
		return nil, false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil, false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return nil, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil, false
	}
	target := appendTarget(info, call)
	if target == nil || target != baseIdentObj(info, as.Lhs[0]) {
		return nil, false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || info.ObjectOf(arg) != info.ObjectOf(keyID) {
		return nil, false
	}
	return target, true
}

// sortedLater reports whether, after rng, the enclosing function calls
// a sort/slices function with obj as an argument (sort.Slice(keys, …),
// sort.Ints(keys), slices.Sort(keys), …).
func sortedLater(info *types.Info, enclosing ast.Node, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if baseIdentObj(info, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
