package analysis

import "testing"

// TestMapOrderFixture runs maporder over its golden fixture: output,
// escaping appends, float accumulation and metrics feeds inside map
// ranges are flagged; sorted-key idioms and integer accumulation are
// not.
func TestMapOrderFixture(t *testing.T) {
	runFixture(t, MapOrder, "maporder", "icash/internal/fixturemap")
}
