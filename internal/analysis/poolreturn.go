package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockdevPath is the package whose buffer pool poolreturn audits.
const blockdevPath = "icash/internal/blockdev"

// PoolReturn proves the pool-ownership discipline behind the
// zero-allocation hot path (DESIGN.md §11): every 4 KB buffer taken
// from the blockdev pool must either come back via blockdev.PutBlock or
// visibly transfer ownership. A buffer that does neither is a leak —
// the program stays correct, but the pool silently degrades to
// make([]byte, BlockSize) per I/O, which is exactly the regression the
// pool exists to prevent and which no test notices (allocation gates
// only cover the paths they exercise).
//
// Within each function, a blockdev.GetBlock() result bound to a local
// variable must be one of:
//
//   - passed to blockdev.PutBlock, directly or inside a deferred call
//     or closure in the same function;
//   - stored somewhere that outlives the call: a struct field, slice or
//     map element, dereference, or package-level variable (including as
//     an operand of the right-hand side, so c.buf = append(c.buf, b)
//     counts);
//   - returned to the caller, which takes over the obligation.
//
// Merely lending the buffer to another function (h.Write(buf)) is not a
// transfer — the lender still owns it — so a Get that is only lent and
// never Put is flagged. A GetBlock() whose result is discarded or
// passed straight into another call without ever being bound is flagged
// outright: nothing can Put what nothing names. Known-good exceptions
// carry a //lint:ignore poolreturn directive with a reason.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc:  "flag blockdev pool buffers that are neither returned via PutBlock nor handed off (field store / return)",
	Run:  runPoolReturn,
}

func runPoolReturn(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolOwnership(pass, fn.Body)
		}
	}
}

// checkPoolOwnership audits one function body (nested function literals
// included — a deferred closure's PutBlock discharges the obligation).
func checkPoolOwnership(pass *Pass, body *ast.BlockStmt) {
	info := pass.Info

	// Pass 1: find every GetBlock call and how its result is bound.
	acquired := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPkgFunc(info, call, blockdevPath, "GetBlock") || i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					// v.dataRAM = GetBlock() and friends: the store
					// itself is the ownership transfer.
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"blockdev.GetBlock() result discarded: the buffer can never be returned to the pool")
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || !declaredWithin(obj, body) {
					continue // package-level or parameter rebinding: out of scope
				}
				if _, seen := acquired[obj]; !seen {
					acquired[obj] = call.Pos()
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok &&
				isPkgFunc(info, call, blockdevPath, "GetBlock") {
				pass.Reportf(call.Pos(),
					"blockdev.GetBlock() result discarded: the buffer can never be returned to the pool")
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Pass 2: discharge obligations.
	discharged := map[types.Object]bool{}
	refersTo := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isPkgFunc(info, n, blockdevPath, "PutBlock") {
				return true
			}
			for _, arg := range n.Args {
				if obj := baseIdentObj(info, arg); obj != nil {
					discharged[obj] = true
				}
			}
		case *ast.AssignStmt:
			// A store through a field, element, dereference, or
			// non-local variable transfers ownership of any acquired
			// buffer the right-hand side mentions.
			for i, lhs := range n.Lhs {
				// Pairwise assignment, or a single multi-value RHS.
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if localPlainIdent(info, body, lhs) {
					continue
				}
				for obj := range acquired {
					if refersTo(rhs, obj) {
						discharged[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for obj := range acquired {
					if refersTo(res, obj) {
						discharged[obj] = true
					}
				}
			}
		}
		return true
	})

	for obj, pos := range acquired {
		if !discharged[obj] {
			pass.Reportf(pos,
				"pooled buffer %s is neither returned via blockdev.PutBlock nor handed off (field store or return): the block leaks from the pool", obj.Name())
		}
	}
}

// localPlainIdent reports whether lhs is a bare identifier naming a
// variable local to body — the one assignment form that does not move
// a value anywhere an outsider could see it.
func localPlainIdent(info *types.Info, body *ast.BlockStmt, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := info.ObjectOf(id)
	return obj != nil && declaredWithin(obj, body)
}
