package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockdevPath is the package whose buffer pool poolreturn audits.
const blockdevPath = "icash/internal/blockdev"

// PoolReturn proves the pool-ownership discipline behind the
// zero-allocation hot path (DESIGN.md §11): every 4 KB buffer taken
// from the blockdev pool must either come back via blockdev.PutBlock or
// visibly transfer ownership. A buffer that does neither is a leak —
// the program stays correct, but the pool silently degrades to
// make([]byte, BlockSize) per I/O, which is exactly the regression the
// pool exists to prevent and which no test notices (allocation gates
// only cover the paths they exercise).
//
// Within each function, a blockdev.GetBlock() result bound to a local
// variable must be one of:
//
//   - passed to blockdev.PutBlock, directly or inside a deferred call
//     or closure in the same function;
//   - stored somewhere that outlives the call: a struct field, slice or
//     map element, dereference, or package-level variable (including as
//     an operand of the right-hand side, so c.buf = append(c.buf, b)
//     counts);
//   - returned to the caller, which takes over the obligation.
//
// Merely lending the buffer to another function (h.Write(buf)) is not a
// transfer — the lender still owns it — so a Get that is only lent and
// never Put is flagged. A GetBlock() whose result is discarded or
// passed straight into another call without ever being bound is flagged
// outright: nothing can Put what nothing names. Known-good exceptions
// carry a //lint:ignore poolreturn directive with a reason.
//
// The check is interprocedural one level deep in both directions, via
// the Program's summaries:
//
//   - allocator wrappers: a module function whose GetBlock-bound buffer
//     escapes only by being returned is itself a pool source — its
//     callers inherit the Put obligation, so a wrapper cannot hide a
//     leak (transitively: a wrapper of a wrapper is still a source);
//   - sink parameters: passing an acquired buffer to a module function
//     whose parameter provably reaches blockdev.PutBlock (or is stored
//     somewhere that outlives the call) discharges the obligation — the
//     callee took ownership, it did not merely borrow.
var PoolReturn = &Analyzer{
	Name: "poolreturn",
	Doc:  "flag blockdev pool buffers that are neither returned via PutBlock nor handed off (field store / return / ownership-taking callee)",
	Run:  runPoolReturn,
}

func runPoolReturn(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolOwnership(pass, fn.Body)
		}
	}
}

// --- interprocedural pool-flow facts (memoized on the Program) ---

// isPoolSourceCall reports whether call acquires a pooled buffer:
// blockdev.GetBlock itself, or a module allocator wrapper.
func isPoolSourceCall(pass *Pass, call *ast.CallExpr) bool {
	if isPkgFunc(pass.Info, call, blockdevPath, "GetBlock") {
		return true
	}
	if pass.Prog == nil {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	return fn != nil && poolSource(pass.Prog, fn)
}

// poolSource reports whether fn hands a pooled buffer to its caller:
// some pool-acquired local escapes fn only by being returned — never
// Put, never stored anywhere that outlives the call — or the function
// returns a pool-source call outright (`return blockdev.GetBlock()`).
// Such a function is GetBlock in a trench coat; its callers inherit the
// obligation.
// (core's getScratch is deliberately NOT a source: it parks every
// buffer in the controller's scratch arena — a field store — before
// returning it, so the arena owns the Put.)
func poolSource(prog *Program, fn *types.Func) bool {
	switch prog.poolMemo[fn] {
	case 1:
		return true
	case 2, 3:
		return false
	}
	s := prog.Summary(fn)
	if s == nil {
		return false
	}
	prog.poolMemo[fn] = 3
	flow := poolFlowOf(prog, s)
	ans := flow.returnsSource
	for obj := range flow.acquired {
		if flow.returned[obj] && !flow.put[obj] && !flow.stored[obj] {
			ans = true
			break
		}
	}
	if ans {
		prog.poolMemo[fn] = 1
	} else {
		prog.poolMemo[fn] = 2
	}
	return ans
}

// poolSink reports whether fn's i'th parameter takes ownership of a
// pooled buffer: it reaches blockdev.PutBlock, is stored somewhere that
// outlives the call, or is forwarded to another sink parameter.
// Returning the parameter is not a sink — ownership comes back to the
// caller with it.
func poolSink(prog *Program, fn *types.Func, i int) bool {
	if m := prog.sinkMemo[fn]; m != nil {
		switch m[i] {
		case 1:
			return true
		case 2, 3:
			return false
		}
	} else {
		prog.sinkMemo[fn] = make(map[int]uint8)
	}
	s := prog.Summary(fn)
	if s == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || i >= sig.Params().Len() {
		return false
	}
	param := sig.Params().At(i)
	prog.sinkMemo[fn][i] = 3
	info := s.Pkg.Info
	ans := false
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		if ans {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(info, n, blockdevPath, "PutBlock") {
				for _, arg := range n.Args {
					if baseIdentObj(info, arg) == param {
						ans = true
					}
				}
				return true
			}
			callee := calleeFunc(info, n)
			if callee == nil || callee == fn {
				return true
			}
			for j, arg := range n.Args {
				if baseIdentObj(info, arg) == param && poolSink(prog, callee, j) {
					ans = true
				}
			}
		case *ast.AssignStmt:
			for k, lhs := range n.Lhs {
				rhs := n.Rhs[min(k, len(n.Rhs)-1)]
				if localPlainIdent(info, s.Decl.Body, lhs) {
					continue
				}
				if baseIdentObj(info, rhs) == param {
					ans = true
				}
			}
		}
		return true
	})
	if ans {
		prog.sinkMemo[fn][i] = 1
	} else {
		prog.sinkMemo[fn][i] = 2
	}
	return ans
}

// poolFlow is the ownership ledger of one function body: which locals
// hold pool buffers and how each escapes.
type poolFlow struct {
	acquired map[types.Object]token.Pos
	put      map[types.Object]bool // reached blockdev.PutBlock
	stored   map[types.Object]bool // stored somewhere outliving the call
	sunk     map[types.Object]bool // passed to an ownership-taking callee
	returned map[types.Object]bool
	// discards are pool-source calls whose result was never bound.
	discards []poolDiscard
	// returnsSource marks a `return blockdev.GetBlock()` (or a wrapper
	// thereof) with no intervening local: the function hands a pooled
	// buffer straight to its caller, making it a pool source even though
	// nothing was ever bound.
	returnsSource bool
}

// poolFlowOf computes the ledger for a summarized function.
func poolFlowOf(prog *Program, s *FuncSummary) *poolFlow {
	pass := &Pass{Fset: s.Pkg.Fset, Info: s.Pkg.Info, Pkg: s.Pkg.Types, Prog: prog}
	return poolFlowBody(pass, s.Decl.Body)
}

// checkPoolOwnership audits one function body (nested function literals
// included — a deferred closure's PutBlock discharges the obligation).
func checkPoolOwnership(pass *Pass, body *ast.BlockStmt) {
	flow := poolFlowBody(pass, body)
	for _, d := range flow.discards {
		pass.Reportf(d.pos,
			"%s result discarded: the pooled buffer can never be returned to the pool", d.name)
	}
	for obj, pos := range flow.acquired {
		if flow.put[obj] || flow.stored[obj] || flow.returned[obj] || flow.sunk[obj] {
			continue
		}
		pass.Reportf(pos,
			"pooled buffer %s is neither returned via blockdev.PutBlock nor handed off (field store, return, or ownership-taking callee): the block leaks from the pool", obj.Name())
	}
}

// poolDiscard is a pool-source call whose result was never bound.
type poolDiscard struct {
	pos  token.Pos
	name string
}

// sourceCallName renders the pool source for diagnostics.
func sourceCallName(pass *Pass, call *ast.CallExpr) string {
	if isPkgFunc(pass.Info, call, blockdevPath, "GetBlock") {
		return "blockdev.GetBlock()"
	}
	if fn := calleeFunc(pass.Info, call); fn != nil {
		return fn.Name() + "() (an allocator wrapper over the pool)"
	}
	return "pool source"
}

// poolFlowBody computes one body's ownership ledger. Pass 1 binds
// pool-source results to locals; pass 2 records how each escapes.
func poolFlowBody(pass *Pass, body *ast.BlockStmt) *poolFlow {
	info := pass.Info
	flow := &poolFlow{
		acquired: map[types.Object]token.Pos{},
		put:      map[types.Object]bool{},
		stored:   map[types.Object]bool{},
		sunk:     map[types.Object]bool{},
		returned: map[types.Object]bool{},
	}

	bind := func(lhs ast.Expr, call *ast.CallExpr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			// v.dataRAM = GetBlock() and friends: the store itself is
			// the ownership transfer.
			return
		}
		if id.Name == "_" {
			flow.discards = append(flow.discards, poolDiscard{call.Pos(), sourceCallName(pass, call)})
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || !declaredWithin(obj, body) {
			return // package-level or parameter rebinding: out of scope
		}
		if _, seen := flow.acquired[obj]; !seen {
			flow.acquired[obj] = call.Pos()
		}
	}

	// Pass 1: find every pool-source call and how its result is bound.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// buf, err := wrapper(): bind the []byte result(s).
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || !isPoolSourceCall(pass, call) {
					return true
				}
				for _, lhs := range n.Lhs {
					if isByteSlice(info.TypeOf(lhs)) {
						bind(lhs, call)
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolSourceCall(pass, call) || i >= len(n.Lhs) {
					continue
				}
				bind(n.Lhs[i], call)
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isPoolSourceCall(pass, call) {
				flow.discards = append(flow.discards, poolDiscard{call.Pos(), sourceCallName(pass, call)})
			}
		}
		return true
	})
	// Unbound pass-through: `return blockdev.GetBlock()` makes the
	// function a source with nothing acquired. Closures are skipped —
	// their returns are not this function's returns.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			for _, res := range ret.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isPoolSourceCall(pass, call) {
					flow.returnsSource = true
				}
			}
		}
		return true
	})
	if len(flow.acquired) == 0 {
		return flow
	}

	// Pass 2: record how each acquired buffer escapes.
	refersTo := func(e ast.Expr, obj types.Object) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isPkgFunc(info, n, blockdevPath, "PutBlock") {
				for _, arg := range n.Args {
					if obj := baseIdentObj(info, arg); obj != nil {
						flow.put[obj] = true
					}
				}
				return true
			}
			// Passing the buffer to an ownership-taking module callee
			// discharges; merely lending it does not.
			if pass.Prog == nil {
				return true
			}
			callee := calleeFunc(info, n)
			if callee == nil {
				return true
			}
			for j, arg := range n.Args {
				obj := baseIdentObj(info, arg)
				if obj == nil {
					continue
				}
				if _, isAcq := flow.acquired[obj]; isAcq && poolSink(pass.Prog, callee, j) {
					flow.sunk[obj] = true
				}
			}
		case *ast.AssignStmt:
			// A store through a field, element, dereference, or
			// non-local variable transfers ownership of any acquired
			// buffer the right-hand side mentions.
			for i, lhs := range n.Lhs {
				// Pairwise assignment, or a single multi-value RHS.
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if localPlainIdent(info, body, lhs) {
					continue
				}
				for obj := range flow.acquired {
					if refersTo(rhs, obj) {
						flow.stored[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for obj := range flow.acquired {
					if refersTo(res, obj) {
						flow.returned[obj] = true
					}
				}
			}
		}
		return true
	})
	return flow
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// localPlainIdent reports whether lhs is a bare identifier naming a
// variable local to body — the one assignment form that does not move
// a value anywhere an outsider could see it.
func localPlainIdent(info *types.Info, body *ast.BlockStmt, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := info.ObjectOf(id)
	return obj != nil && declaredWithin(obj, body)
}
