package analysis

import "testing"

// TestPoolReturnFixture runs poolreturn over its golden fixture,
// mounted at a core-like path (pool users live throughout internal/).
func TestPoolReturnFixture(t *testing.T) {
	runFixture(t, PoolReturn, "poolreturn", "icash/internal/poolreturnfixture")
}
