package analysis

import "testing"

// TestPoolReturnFixture runs poolreturn over its golden fixture,
// mounted at a core-like path (pool users live throughout internal/).
func TestPoolReturnFixture(t *testing.T) {
	runFixture(t, PoolReturn, "poolreturn", "icash/internal/poolreturnfixture")
}

// TestPoolReturnInterprocFixture runs poolreturn over the
// interprocedural fixture: allocator wrappers (including the unbound
// `return blockdev.GetBlock()` form) are pool sources whose callers
// inherit the Put obligation, ownership-taking callees discharge it,
// and lending to a borrower does not.
func TestPoolReturnInterprocFixture(t *testing.T) {
	runFixture(t, PoolReturn, "poolreturninterproc", "icash/internal/poolwrapfix")
}
