package analysis

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean is the suite's anchor: the repository's own
// source must satisfy every invariant the analyzers prove. A finding
// here means a diff re-broke one of the statically-enforced rules —
// fix the code or add a //lint:ignore with a reason, never weaken the
// analyzer to pass.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Vet(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestIgnoreDirectives pins the suppression contract: a directive
// silences exactly its named analyzer on its own line and the line
// below, malformed directives are themselves findings, and unknown
// analyzer names are rejected.
func TestIgnoreDirectives(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/ignore", "icash/internal/fixtureignore")
	if err != nil {
		t.Fatal(err)
	}
	findings := VetPackage(pkg)
	sortFindings(findings)

	var got []string
	for _, f := range findings {
		got = append(got, f.Analyzer+": "+f.Message)
	}
	assertContains := func(substr string) {
		t.Helper()
		for _, g := range got {
			if strings.Contains(g, substr) {
				return
			}
		}
		t.Errorf("no finding contains %q; got %v", substr, got)
	}
	// The unsuppressed violation survives.
	assertContains("wall-clock call time.Now")
	// The directive naming the wrong analyzer does not silence detclock.
	assertContains("wall-clock call time.Sleep")
	// Malformed directives are findings in their own right.
	assertContains("malformed //lint:ignore")
	assertContains("unknown analyzer nosuch")
	// The wrong-analyzer directive suppressed nothing, so it is stale.
	assertContains("suppresses nothing")
	// Exactly the suppressed violation is absent.
	for _, g := range got {
		if strings.Contains(g, "time.Since") {
			t.Errorf("suppressed finding leaked: %v", g)
		}
	}
}

// TestLockOrderGraphDeterministic dumps the repository's own lock
// acquisition-order graph and pins it, so the lock hierarchy is
// reviewed like code: a new edge in this list is a new lock-nesting
// relationship and must be argued for in the PR that adds it. With the
// shard router in place the expected graph is still a single self-edge
// — lockmap.Acquire2 nests two acquisitions of one map under its
// canonical-address-order contract. server.ShardRouter's own locking
// contributes no edge: its read/write paths hold exactly one shard
// address at a time, and its flush barrier's ascending loop-carried
// nesting is below the lexical walker's resolution (the -race router
// tests cover it dynamically). Notably there are still NO core.*
// classes: each shard controller remains single-threaded and lock-free;
// all cross-shard exclusion lives in the router's lockmap.
func TestLockOrderGraphDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the concurrency-bearing packages; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./internal/core/...", "./internal/server/...", "./internal/lockmap", "./cmd/icash-serve"})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(l)
	for _, pkg := range pkgs {
		RunAnalyzers([]*Analyzer{LockOrder}, pkg, prog)
	}
	// Cycle-freedom is the Finish-phase claim: no acquisition-order edge
	// may lie on a cycle of the module-wide graph, and no class nests
	// under itself — after the source's own //lint:ignore directives are
	// honored (lockmap.Acquire2's canonical-order self-edge is the one
	// excused nesting).
	fin := finishLockOrder(prog)
	for _, pkg := range pkgs {
		fin = applyIgnores(pkg, fin)
	}
	for _, f := range fin {
		t.Errorf("lock acquisition-order violation: %s: %s", f.Pos, f.Message)
	}
	got := prog.LockOrderGraph()
	want := []string{"lockmap.LockMap -> lockmap.LockMap"}
	if len(got) != len(want) {
		t.Fatalf("lock acquisition-order graph changed:\n  got  %v\n  want %v\nnew edges must be argued for in the PR that adds them", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lock acquisition-order graph changed:\n  got  %v\n  want %v", got, want)
		}
	}
	for _, line := range got {
		if strings.Contains(line, "core.") {
			t.Errorf("core holds a lock (%s): the pre-sharding controller is contractually lock-free", line)
		}
	}
}

// TestExpandPatterns pins pattern expansion: ./... covers the module,
// testdata stays invisible, and a direct package path resolves.
func TestExpandPatterns(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into expansion: %s", p)
		}
	}
	for _, wantPkg := range []string{"icash", "icash/internal/ssd", "icash/internal/analysis", "icash/cmd/icash-vet"} {
		if !seen[wantPkg] {
			t.Errorf("expansion missing %s (got %d packages)", wantPkg, len(paths))
		}
	}
	one, err := l.Expand([]string{"./internal/ssd"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "icash/internal/ssd" {
		t.Errorf("direct pattern expanded to %v", one)
	}
}
