package analysis

// StaleIgnore keeps the suppression ledger honest: a //lint:ignore
// directive that no longer suppresses anything is reported, so the
// escape hatches shrink back as the code they excused improves. Without
// it, directives outlive their findings — the suppressed line gets
// rewritten, the directive stays, and a future real finding on that
// line is silenced by an excuse written for different code.
//
// The detection cannot run inside a single package pass: whether a
// directive is stale depends on the findings of every analyzer over the
// package, after the full catalog has run. The Run hook is therefore
// empty; the work happens in the vet pipeline (applyIgnoresTracked in
// ignore.go), which tracks per-directive usage while applying
// suppressions and emits one staleignore finding per unused directive.
//
// icash-vet prints staleignore findings as warnings by default and
// fails on them only under -strict (CI's lint job runs strict; an
// in-flight refactor on a developer machine does not have to). The
// repo's own tree must stay stale-free: TestRepoIsLintClean counts
// staleignore findings as failures like any other.
var StaleIgnore = &Analyzer{
	Name: "staleignore",
	Doc:  "flag //lint:ignore directives that no longer suppress any finding (warning; error under -strict)",
	Run:  func(pass *Pass) {},
}
