package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestStaleIgnoreFixture runs the FULL catalog over the staleignore
// fixture via VetPackage — staleness only exists against every
// analyzer, so the single-analyzer harness cannot host it — and checks
// the result against the fixture's want markers: the directive
// suppressing a live detclock finding stays quiet, the one suppressing
// nothing is itself a finding.
func TestStaleIgnoreFixture(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "staleignore"), "icash/internal/stalefix")
	if err != nil {
		t.Fatal(err)
	}
	findings := VetPackage(pkg)
	sortFindings(findings)

	wants := parseWants(t, pkg.Fset, pkg)
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if !strings.Contains(f.Message, w.substr) {
				t.Errorf("%s: finding %q does not contain wanted substring %q", f, f.Message, w.substr)
			}
			matched[i] = true
			ok = true
			break
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: wanted finding containing %q, got none", w.file, w.line, w.substr)
		}
	}

	// The stale finding belongs to the staleignore analyzer (so the CLI
	// can demote it to a warning outside -strict).
	found := false
	for _, f := range findings {
		if f.Analyzer == "staleignore" {
			found = true
			if !strings.Contains(f.Message, "suppresses nothing") {
				t.Errorf("staleignore message %q lacks the diagnosis", f.Message)
			}
		}
	}
	if !found {
		t.Error("no staleignore finding produced for the stale directive")
	}
}
