package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of the suite: a module-level
// call-graph builder with one summary per function. Analyzers stay
// per-package (each Run sees one Pass), but every Pass carries the
// shared *Program, whose summaries let a check see one call past the
// function it is walking — the wrapper level where, before this layer,
// dropped error classifications, leaked pooled buffers, out-of-order
// lock acquisitions and stray goroutines could hide.
//
// A FuncSummary records the facts a caller needs about a callee without
// re-walking its body: which module functions it calls, where it spawns
// goroutines or selects, which lock classes it acquires and releases,
// whether it performs blocking device/station calls, whether it mutates
// the sim.Clock, whether an error it returns originates at the device
// layer, and how pooled buffers flow through its parameters and
// results. Derived facts that need the whole graph — "does this call
// transitively reach a device?" — are memoized on the Program with a
// cycle guard, so recursion costs nothing and cycles resolve to the
// conservative answer.

// Program is the module-wide state of one vet run: every loaded
// package's function summaries, the call graph they induce, memoized
// transitive queries, and the cross-package facts analyzers accumulate
// for their Finish hooks (lockorder's acquisition-order edges).
type Program struct {
	// pkgs are the summarized packages by import path.
	pkgs map[string]*Package
	// funcs maps each declared function/method to its summary.
	funcs map[*types.Func]*FuncSummary

	// Tri-state memos for transitive queries: 0 unvisited, 1 true,
	// 2 false, 3 in-progress (resolves conservative).
	devMemo  map[*types.Func]uint8
	errMemo  map[*types.Func]uint8
	poolMemo map[*types.Func]uint8
	sinkMemo map[*types.Func]map[int]uint8

	// lockEdges is the module-wide lock acquisition-order graph the
	// lockorder analyzer builds while running per package; its Finish
	// hook turns cycles into findings.
	lockEdges []lockEdge
}

// newProgram returns an empty Program.
func newProgram() *Program {
	return &Program{
		pkgs:     make(map[string]*Package),
		funcs:    make(map[*types.Func]*FuncSummary),
		devMemo:  make(map[*types.Func]uint8),
		errMemo:  make(map[*types.Func]uint8),
		poolMemo: make(map[*types.Func]uint8),
		sinkMemo: make(map[*types.Func]map[int]uint8),
	}
}

// NewProgram returns a Program over every package the loader has
// type-checked so far — analysis targets and the module-internal
// dependencies loading them pulled in. Vet calls it after expanding and
// loading its patterns; fixture tests call it after LoadDir.
func NewProgram(l *Loader) *Program {
	p := newProgram()
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		p.addPackage(l.pkgs[path])
	}
	return p
}

// addPackage builds summaries for every function declared in pkg.
func (p *Program) addPackage(pkg *Package) {
	if pkg == nil || pkg.Types == nil {
		return
	}
	if _, seen := p.pkgs[pkg.Path]; seen {
		return
	}
	p.pkgs[pkg.Path] = pkg
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.funcs[fn] = buildSummary(pkg, fd, fn)
		}
	}
}

// Summary returns fn's summary, or nil for functions outside the
// summarized packages (standard library, func values, interface
// methods without bodies).
func (p *Program) Summary(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	return p.funcs[fn]
}

// CallSite is one static call from a summarized function to a named
// function (module-internal or not).
type CallSite struct {
	Fn  *types.Func
	Pos token.Pos
}

// LockOp is one lock acquisition or release a function performs,
// identified by lock class (see lockClass). Deferred marks releases
// scheduled by defer: the lock stays held until the function returns.
type LockOp struct {
	Class    string
	Acquire  bool
	Deferred bool
	Pos      token.Pos
}

// FuncSummary is the per-function fact sheet callers consult instead of
// re-walking the callee's body.
type FuncSummary struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls lists static callees in lexical order, module and stdlib
	// alike; transitive queries filter to summarized ones.
	Calls []CallSite
	// Spawns are go-statement positions; Selects are select statements.
	Spawns  []token.Pos
	Selects []token.Pos
	// ClockMutations are direct calls to the mutating sim.Clock methods.
	ClockMutations []token.Pos
	// DeviceCalls are direct blocking device/station calls (see
	// isDirectDeviceCall).
	DeviceCalls []token.Pos
	// Locks are the function's lock operations in lexical order.
	Locks []LockOp
	// ReturnsError reports whether the signature's results include the
	// error interface.
	ReturnsError bool
}

// buildSummary walks one function body once and records every fact the
// interprocedural queries need. Function literals are included: a
// closure's calls and locks belong to the enclosing function's footprint
// (conservative for deferred or scheduled closures, which is the safe
// direction for hazard detection).
func buildSummary(pkg *Package, fd *ast.FuncDecl, fn *types.Func) *FuncSummary {
	s := &FuncSummary{Fn: fn, Pkg: pkg, Decl: fd}
	if sig, ok := fn.Type().(*types.Signature); ok {
		res := sig.Results()
		for i := 0; i < res.Len(); i++ {
			if isErrorType(res.At(i).Type()) {
				s.ReturnsError = true
			}
		}
	}
	info := pkg.Info
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			s.Spawns = append(s.Spawns, n.Pos())
		case *ast.SelectStmt:
			s.Selects = append(s.Selects, n.Pos())
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.CallExpr:
			callee := calleeFunc(info, n)
			if callee != nil {
				s.Calls = append(s.Calls, CallSite{Fn: callee, Pos: n.Pos()})
				if callee.Pkg() != nil && callee.Pkg().Path() == simPkgPath &&
					clockMutators[callee.Name()] && recvIsSimClock(callee) {
					s.ClockMutations = append(s.ClockMutations, n.Pos())
				}
			}
			if isDirectDeviceCall(info, n) {
				s.DeviceCalls = append(s.DeviceCalls, n.Pos())
			}
			for _, op := range lockOps(info, n) {
				if deferred[n] && !op.Acquire {
					op.Deferred = true
				}
				s.Locks = append(s.Locks, op)
			}
		}
		return true
	})
	return s
}

// --- blocking device/station calls ---

// devicePkgs are the device-model packages: any call into them is a
// (simulated) device operation, the thing no lock may be held across
// and the origin that taints an error as a device error.
var devicePkgs = map[string]bool{
	"icash/internal/blockdev": true,
	"icash/internal/ssd":      true,
	"icash/internal/hdd":      true,
	"icash/internal/raid":     true,
	"icash/internal/ram":      true,
}

// deviceMethodNames are the block-op method names that mark a call as a
// device operation even through an interface defined elsewhere
// (blockdev.Device embedded in harness systems, server.Backend): the
// static callee then belongs to the defining package, but the dynamic
// callee is a device stack.
var deviceMethodNames = map[string]bool{
	"ReadBlock": true, "WriteBlock": true, "Flush": true,
}

// stationFuncs are the event-engine entry points that advance the
// station timeline: running or stepping the scheduler, admitting work
// to a station, replaying a trace.
var stationFuncs = map[string]bool{
	"Run": true, "Step": true, "Admit": true, "Replay": true,
}

// isDirectDeviceCall reports whether call is, statically, a blocking
// device or station operation: a call into a device-model package, a
// block-op interface method on a module type, or an event-engine
// station call.
func isDirectDeviceCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if devicePkgs[path] {
		// Pool traffic (GetBlock/PutBlock) and pure classification
		// helpers are not device operations.
		switch fn.Name() {
		case "GetBlock", "PutBlock", "Classify", "ContentCRC":
			return false
		}
		return true
	}
	if path == "icash/internal/sim/event" && stationFuncs[fn.Name()] {
		return true
	}
	if strings.HasPrefix(path, "icash/") && isMethod(fn) && deviceMethodNames[fn.Name()] {
		return true
	}
	return false
}

// PerformsDeviceCall reports whether fn — directly or through any chain
// of summarized module functions — performs a blocking device/station
// call. Unsummarized callees (stdlib, func values) are assumed not to.
func (p *Program) PerformsDeviceCall(fn *types.Func) bool {
	switch p.devMemo[fn] {
	case 1:
		return true
	case 2:
		return false
	case 3:
		return false // cycle: resolve quiet
	}
	s := p.funcs[fn]
	if s == nil {
		return false
	}
	p.devMemo[fn] = 3
	ans := len(s.DeviceCalls) > 0
	for _, c := range s.Calls {
		if ans {
			break
		}
		ans = p.PerformsDeviceCall(c.Fn)
	}
	if ans {
		p.devMemo[fn] = 1
	} else {
		p.devMemo[fn] = 2
	}
	return ans
}

// DeviceErrorSource reports whether fn returns an error that (possibly
// through summarized wrappers) originates at the device layer: it
// returns error and its body reaches a device call. Dropping such a
// function's error result is dropping a device error, wherever the
// caller lives — the interprocedural extension of errclass.
func (p *Program) DeviceErrorSource(fn *types.Func) bool {
	switch p.errMemo[fn] {
	case 1:
		return true
	case 2:
		return false
	case 3:
		return false
	}
	s := p.funcs[fn]
	if s == nil || !s.ReturnsError {
		return false
	}
	p.errMemo[fn] = 3
	ans := len(s.DeviceCalls) > 0
	for _, c := range s.Calls {
		if ans {
			break
		}
		ans = p.DeviceErrorSource(c.Fn)
	}
	if ans {
		p.errMemo[fn] = 1
	} else {
		p.errMemo[fn] = 2
	}
	return ans
}

// AcquiredClasses returns the lock classes fn — directly or through
// summarized callees — acquires, sorted. Used by lockorder to extend
// the acquisition-order graph one call past the function under analysis.
func (p *Program) AcquiredClasses(fn *types.Func) []string {
	seen := make(map[*types.Func]bool)
	classes := make(map[string]bool)
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		if f == nil || seen[f] {
			return
		}
		seen[f] = true
		s := p.funcs[f]
		if s == nil {
			return
		}
		for _, op := range s.Locks {
			if op.Acquire {
				classes[op.Class] = true
			}
		}
		for _, c := range s.Calls {
			visit(c.Fn)
		}
	}
	visit(fn)
	out := make([]string, 0, len(classes))
	for c := range classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// --- lock classes ---

// lockClass names the static lock a mutex operation touches, the node
// identity in the acquisition-order graph. Two operations share a class
// when they reach the same declared lock "slot":
//
//	x.mu.Lock()            -> "<pkg>.<TypeOf(x)>.mu"    (field mutex)
//	s.Lock()               -> "<pkg>.<TypeOf(s)>"       (embedded mutex)
//	pkgVar.Lock()          -> "<pkg>.pkgVar"            (package-level mutex)
//	localMu.Lock()         -> "<pkg>.<func>.localMu"    (local mutex)
//	lm.Acquire(addr)       -> "<pkg>.<TypeOf(lm)>.<field>" or type form
//
// Address-granular locks (lockmap.LockMap) collapse to one class per
// declared map: the graph tracks the hierarchy between lock classes;
// within a class, ordering is the Acquire2 canonical-order contract.
func lockClass(info *types.Info, recv ast.Expr, declPkg string) (string, bool) {
	short := func(path string) string {
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	e := ast.Unparen(recv)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if pkgPath, name, named := namedTypePath(info.TypeOf(sel.X)); named {
			return short(pkgPath) + "." + name + "." + sel.Sel.Name, true
		}
		return short(declPkg) + "." + sel.Sel.Name, true
	}
	if id, ok := e.(*ast.Ident); ok {
		if pkgPath, name, named := namedTypePath(info.TypeOf(id)); named && !isSyncMutexType(info.TypeOf(id)) {
			// Embedded mutex or named lock type: class by the type.
			return short(pkgPath) + "." + name, true
		}
		return short(declPkg) + "." + id.Name, true
	}
	return "", false
}

// isSyncMutexType reports whether t (pointers unwrapped) is
// sync.Mutex or sync.RWMutex itself.
func isSyncMutexType(t types.Type) bool {
	pkgPath, name, ok := namedTypePath(t)
	return ok && pkgPath == "sync" && (name == "Mutex" || name == "RWMutex")
}

// lockAcquireNames / lockReleaseNames are the sync mutex methods.
var lockAcquireNames = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var lockReleaseNames = map[string]bool{"Unlock": true, "RUnlock": true}

// lockOps classifies call as zero or more lock operations: a
// sync.Mutex/RWMutex method, or a lockmap.LockMap Acquire*/Release*/
// With. Read and write locks share a class — the ordering discipline
// does not distinguish them (an RLock-while-holding still orders the
// classes). With is a bracketed acquire-and-release: both ops at the
// call site, so anything acquired while a With is in flight still draws
// its edge, but nothing after the call counts as nested under it.
func lockOps(info *types.Info, call *ast.CallExpr) []LockOp {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !isMethod(fn) {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	declPkg := fn.Pkg().Path()
	switch {
	case declPkg == "sync" && (lockAcquireNames[fn.Name()] || lockReleaseNames[fn.Name()]):
		sig := fn.Type().(*types.Signature)
		if !isSyncMutexType(sig.Recv().Type()) {
			return nil
		}
		class, ok := lockClass(info, sel.X, declPkg)
		if !ok {
			return nil
		}
		return []LockOp{{Class: class, Acquire: lockAcquireNames[fn.Name()], Pos: call.Pos()}}
	case declPkg == "icash/internal/lockmap":
		class, ok := lockClass(info, sel.X, declPkg)
		if !ok {
			return nil
		}
		switch fn.Name() {
		case "Acquire", "Acquire2":
			return []LockOp{{Class: class, Acquire: true, Pos: call.Pos()}}
		case "Release", "Release2":
			return []LockOp{{Class: class, Acquire: false, Pos: call.Pos()}}
		case "With":
			return []LockOp{
				{Class: class, Acquire: true, Pos: call.Pos()},
				{Class: class, Acquire: false, Pos: call.Pos()},
			}
		}
	}
	return nil
}
