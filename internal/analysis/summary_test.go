package analysis

import (
	"go/types"
	"reflect"
	"testing"
)

// loadSummaryFixture mounts the synthetic summary package and builds
// the module-wide Program over it.
func loadSummaryFixture(t *testing.T) (*Package, *Program) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/summary", "icash/internal/summaryfix")
	if err != nil {
		t.Fatal(err)
	}
	return pkg, NewProgram(l)
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("fixture has no function %s", name)
	}
	return fn
}

// TestSummaryDeviceReachability pins PerformsDeviceCall across a
// three-deep call chain and DeviceErrorSource's taint propagation.
func TestSummaryDeviceReachability(t *testing.T) {
	pkg, prog := loadSummaryFixture(t)
	for _, name := range []string{"leaf", "mid", "top"} {
		fn := lookupFunc(t, pkg, name)
		if !prog.PerformsDeviceCall(fn) {
			t.Errorf("PerformsDeviceCall(%s) = false, want true", name)
		}
		if !prog.DeviceErrorSource(fn) {
			t.Errorf("DeviceErrorSource(%s) = false, want true", name)
		}
	}
	for _, name := range []string{"pure", "locker", "spawner"} {
		fn := lookupFunc(t, pkg, name)
		if prog.PerformsDeviceCall(fn) {
			t.Errorf("PerformsDeviceCall(%s) = true, want false", name)
		}
		if prog.DeviceErrorSource(fn) {
			t.Errorf("DeviceErrorSource(%s) = true, want false", name)
		}
	}
}

// TestSummaryCycleTermination proves the memoized transitive queries
// terminate on mutual recursion and resolve to the quiet answer.
func TestSummaryCycleTermination(t *testing.T) {
	pkg, prog := loadSummaryFixture(t)
	for _, name := range []string{"cyclic", "cyclic2"} {
		fn := lookupFunc(t, pkg, name)
		if prog.PerformsDeviceCall(fn) {
			t.Errorf("PerformsDeviceCall(%s) = true, want false", name)
		}
		if prog.DeviceErrorSource(fn) {
			t.Errorf("DeviceErrorSource(%s) = true, want false", name)
		}
	}
}

// TestSummaryFacts pins the per-function fact sheet: lock ops with
// deferred releases, spawns and selects, call sites, error results.
func TestSummaryFacts(t *testing.T) {
	pkg, prog := loadSummaryFixture(t)

	locker := prog.Summary(lookupFunc(t, pkg, "locker"))
	if locker == nil {
		t.Fatal("no summary for locker")
	}
	if len(locker.Locks) != 2 {
		t.Fatalf("locker has %d lock ops, want 2: %+v", len(locker.Locks), locker.Locks)
	}
	if op := locker.Locks[0]; !op.Acquire || op.Class != "summaryfix.guarded.mu" {
		t.Errorf("locker.Locks[0] = %+v, want acquire of summaryfix.guarded.mu", op)
	}
	if op := locker.Locks[1]; op.Acquire || !op.Deferred {
		t.Errorf("locker.Locks[1] = %+v, want deferred release", op)
	}
	if got := prog.AcquiredClasses(locker.Fn); !reflect.DeepEqual(got, []string{"summaryfix.guarded.mu"}) {
		t.Errorf("AcquiredClasses(locker) = %v", got)
	}

	spawner := prog.Summary(lookupFunc(t, pkg, "spawner"))
	if len(spawner.Spawns) != 1 || len(spawner.Selects) != 1 {
		t.Errorf("spawner records %d spawns, %d selects; want 1 and 1",
			len(spawner.Spawns), len(spawner.Selects))
	}

	top := prog.Summary(lookupFunc(t, pkg, "top"))
	foundMid := false
	for _, c := range top.Calls {
		if c.Fn.Name() == "mid" {
			foundMid = true
		}
	}
	if !foundMid {
		t.Errorf("top's call sites %v do not include mid", top.Calls)
	}
	if got := prog.AcquiredClasses(top.Fn); len(got) != 0 {
		t.Errorf("AcquiredClasses(top) = %v, want none", got)
	}

	if !prog.Summary(lookupFunc(t, pkg, "leaf")).ReturnsError {
		t.Error("leaf.ReturnsError = false, want true")
	}
	if prog.Summary(lookupFunc(t, pkg, "pure")).ReturnsError {
		t.Error("pure.ReturnsError = true, want false")
	}
	if prog.Summary(nil) != nil {
		t.Error("Summary(nil) != nil")
	}
}
