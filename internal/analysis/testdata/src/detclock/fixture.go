// Package fixturedet exercises the detclock analyzer. Each `want`
// marker names a substring of the finding expected on that line;
// unmarked lines must produce no finding. The fixture test mounts this
// package at an icash/internal/ path so the analyzer is in scope.
package fixturedet

import (
	_ "math/rand" // want "import of math/rand"
	"time"

	"icash/internal/sim"
)

func wallClock() time.Duration {
	start := time.Now()          // want "wall-clock call time.Now"
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep"
	return time.Since(start)     // want "wall-clock call time.Since"
}

func zeroTime() time.Time {
	return time.Time{} // want "argless time.Time construction"
}

func mutateClock(c *sim.Clock) {
	c.Advance(sim.Microsecond) // want "sim.Clock.Advance called outside"
	c.AdvanceTo(5)             // want "sim.Clock.AdvanceTo called outside"
	c.Reset()                  // want "sim.Clock.Reset called outside"
}

// readClock shows the non-mutating side of the single-owner rule:
// anyone may read simulated time.
func readClock(c *sim.Clock) sim.Time {
	return c.Now()
}

// simDurations never touch the time package's clock; only its types
// would, and sim defines its own.
func simDurations() sim.Duration {
	return 3 * sim.Millisecond
}

func suppressed(c *sim.Clock) {
	//lint:ignore detclock fixture demonstrates a justified suppression
	c.Advance(sim.Microsecond)
}
