// Package engineclock is the detclock fixture for engine-owner
// packages: mounted at icash/internal/server, a package that drives
// runs but owns the clock only through the event scheduler. Direct
// mutation gets the tailored engine-owner diagnostic; reading the
// clock and scheduling events stay legal.
package engineclock

import "icash/internal/sim"

func driveServedRun(c *sim.Clock) sim.Time {
	t := c.Now()                               // reading the clock is fine everywhere
	c.Advance(10 * sim.Microsecond)            // want "engine-owner package"
	c.AdvanceTo(5 * sim.Time(sim.Millisecond)) // want "schedule an event"
	c.Reset()                                  // want "engine-owner package"
	return t
}
