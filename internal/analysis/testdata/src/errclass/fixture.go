// Package fixtureerr exercises the errclass analyzer. The fixture is
// mounted under icash/internal/fault/ so the device-layer scope
// applies.
package fixtureerr

import (
	"errors"
	"fmt"
	"strings"
)

var errSentinel = errors.New("sentinel")

func produce() error                   { return errSentinel }
func produceTwo() (int, error)         { return 0, errSentinel }
func produceThree() (int, bool)        { return 0, false }
func lookup(m map[int]int) (int, bool) { v, ok := m[0]; return v, ok }

func blankDiscard() int {
	_ = produce()        // want "error value discarded with _"
	n, _ := produceTwo() // want "error value discarded with _"
	return n
}

func blankBoolIsFine(m map[int]int) int {
	n, _ := produceThree() // bool, not error: no finding
	v, _ := lookup(m)
	return n + v
}

func dropped() {
	produce() // want "statement drops an error result"
}

func droppedDefer() {
	defer produce() // want "defer statement drops an error result"
}

func droppedGo() {
	go produce() // want "go statement drops an error result"
}

func badWrap(err error) error {
	return fmt.Errorf("read failed: %v", err) // want "interpolates an error without %w"
}

func goodWrap(err error) error {
	return fmt.Errorf("read failed: %w", err)
}

func compare(err error) bool {
	return err == errSentinel // want "error identity comparison"
}

func compareNeq(err error) bool {
	return err != errSentinel // want "error identity comparison"
}

func nilChecks(err error) bool {
	return err == nil || nil != err
}

func switchIdentity(err error) int {
	switch err {
	case errSentinel: // want "switch on error identity"
		return 1
	}
	return 0
}

func switchNilOnly(err error) bool {
	switch err {
	case nil:
		return true
	}
	return false
}

// neverFailWriters: contracts documented to return nil errors are not
// worth a finding.
func neverFailWriters() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("tail")
	fmt.Println(b.String())
	return b.String()
}

func suppressedDiscard() {
	//lint:ignore errclass fixture demonstrates a justified suppression
	_ = produce()
}
