// Package errclassinterproc exercises errclass's interprocedural mode:
// mounted outside the device-layer scope, only device-originated errors
// (direct calls or summarized wrappers over them) may not be blanked or
// dropped — pure local errors are the caller's business.
package errclassinterproc

// dev stands in for a device stack: an icash/ module type with a
// block-op method name is a device call to the analyzer.
type dev struct{}

func (dev) ReadBlock(lba int64, buf []byte) (int64, error) { return 0, nil }

// devRead wraps the device call one level: its error is device-tainted.
func devRead(d dev, buf []byte) error {
	_, err := d.ReadBlock(0, buf)
	return err
}

// devReadTwice wraps two levels deep; taint survives the chain.
func devReadTwice(d dev, buf []byte) error {
	return devRead(d, buf)
}

// pure returns an error with no device origin.
func pure() error { return nil }

func dropsDirect(d dev) {
	d.ReadBlock(0, nil) // want "drops the error of ReadBlock"
}

func dropsWrapped(d dev) {
	devRead(d, nil) // want "via the call chain"
}

func dropsTwoLevels(d dev) {
	devReadTwice(d, nil) // want "via the call chain"
}

func deferWrapped(d dev) {
	defer devRead(d, nil) // want "defer statement drops"
}

func blanksWrapped(d dev) {
	_ = devRead(d, nil) // want "discarded with _"
}

func blanksPair(d dev) int64 {
	n, _ := d.ReadBlock(0, nil) // want "discarded with _"
	return n
}

func handles(d dev) error {
	if err := devRead(d, nil); err != nil {
		return err
	}
	return nil
}

// Outside the device-layer packages a pure error is droppable: the
// in-scope strictness deliberately does not apply here.
func dropsPure() {
	pure()
}

func blanksPure() {
	_ = pure()
}
