// Package goroutines exercises the concurrency-containment analyzer:
// hand-rolled goroutines and selects are findings anywhere under
// icash/internal/ outside the approved primitives.
package goroutines

func work() {}

func spawns() {
	go work() // want "go statement outside the approved concurrency primitives"
}

func spawnsClosure() {
	done := make(chan struct{})
	go func() { // want "go statement outside the approved concurrency primitives"
		close(done)
	}()
	<-done
}

func selects(ch chan int) int {
	select { // want "select in a simulation package"
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// plain channel use without select or go is fine: a blocking receive
// has exactly one outcome.
func plainChannel(ch chan int) int {
	return <-ch
}
