// Package goroutinesallow is mounted at icash/internal/harness to pin
// the allowlist: ForEachPoint may spawn, its neighbors may not.
package goroutinesallow

// ForEachPoint mimics the blessed fan-out primitive: at this mount path
// and under this exact name, its goroutines are approved.
func ForEachPoint(n int, fn func(int) error) error {
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			done <- fn(0)
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			return err
		}
	}
	return nil
}

// neighbor sits in the same package but is not on the allowlist.
func neighbor() {
	go func() {}() // want "go statement outside the approved concurrency primitives"
}
