// Package fixtureignore exercises the //lint:ignore directive
// machinery itself; see TestIgnoreDirectives for the expectations.
package fixtureignore

import "time"

func unsuppressed() time.Time {
	return time.Now() // survives: no directive
}

func wrongAnalyzer() {
	//lint:ignore maporder directive names the wrong analyzer, so detclock still fires
	time.Sleep(time.Millisecond)
}

func suppressedSameLine() time.Duration {
	start := time.Time{} //lint:ignore detclock same-line directive silences both findings on this line
	return time.Since(start)
}

//lint:ignore
func malformedNoArgs() {}

//lint:ignore nosuch this analyzer does not exist
func unknownAnalyzer() {}
