// Package fixturelat exercises the latcharge analyzer. The fixture is
// mounted at a device-model package path (internal/ssd) so the op
// methods below carry the accounting obligation.
package fixturelat

import (
	"errors"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

var errBroken = errors.New("broken")

// Dev charges on its final success path but leaks an early one.
type Dev struct {
	Stats blockdev.Stats
}

func (d *Dev) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if lba < 0 {
		return 0, errBroken // error path: charging optional, no finding
	}
	if lba == 1 {
		return 5 * sim.Microsecond, nil // want "ReadBlock returns success without charging latency"
	}
	lat := 10 * sim.Microsecond
	d.Stats.NoteRead(blockdev.BlockSize, lat)
	return lat, nil
}

// WriteBlock never charges at all.
func (d *Dev) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, 100); err != nil {
		return 0, err
	}
	return sim.Microsecond, nil // want "WriteBlock returns success without charging latency"
}

// seekCost has the op signature but not an op name: helpers that
// compute latency for their caller to charge are fine.
func (d *Dev) seekCost() (sim.Duration, error) {
	return sim.Microsecond, nil
}

// Closure proves returns inside function literals belong to the
// closure, not the op method.
type Closure struct {
	Stats blockdev.Stats
}

func (c *Closure) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	f := func() (sim.Duration, error) {
		return 0, nil // closure's own return: no finding
	}
	lat, err := f()
	if err != nil {
		return 0, err
	}
	c.Stats.NoteRead(blockdev.BlockSize, lat)
	return lat, nil
}

// Quiet shows the suppression escape hatch.
type Quiet struct {
	Stats blockdev.Stats
}

func (q *Quiet) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	//lint:ignore latcharge fixture demonstrates a justified suppression
	return sim.Microsecond, nil
}
