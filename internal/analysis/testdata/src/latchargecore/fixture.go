// Package fixturelatcore exercises the latcharge analyzer's named-
// function scope. The fixture is mounted at the controller's package
// path (internal/core), where only journalWrite carries the
// accounting obligation — op-shaped helpers under other names stay
// exempt.
package fixturelatcore

import (
	"errors"

	"icash/internal/sim"
)

var errBroken = errors.New("broken")

// meter mirrors the slice of core.Stats the journal write path
// charges.
type meter struct{}

func (meter) NoteCommitWrite(d sim.Duration) {}

// Journal charges on its final success path but leaks an early one.
type Journal struct {
	Stats meter
}

func (j *Journal) journalWrite(b int64, buf []byte) (sim.Duration, error) {
	if b < 0 {
		return 0, errBroken // error path: charging optional, no finding
	}
	if b == 1 {
		return 5 * sim.Microsecond, nil // want "journalWrite returns success without charging latency"
	}
	lat := 10 * sim.Microsecond
	j.Stats.NoteCommitWrite(lat)
	return lat, nil
}

// hddWrite has the op signature but is not an obligated name in this
// package: helpers that compute latency for their caller to charge are
// fine.
func (j *Journal) hddWrite(b int64, buf []byte) (sim.Duration, error) {
	return sim.Microsecond, nil
}

// ReadBlock is an op-method name, but the controller is not a
// device-model package — only journalWrite is obligated here.
func (j *Journal) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	return sim.Microsecond, nil
}
