// Package lockorder exercises the lock-order analyzer: acquisition
// ordering, held-across-device detection (direct and via summaries),
// and branch-scoped held-set precision. Mounted under
// icash/internal/server/ so the analyzer is in scope and local
// ReadBlock methods count as device calls.
package lockorder

import "sync"

// dev stands in for a device stack: a module type with a block-op
// method name is a device call to the analyzer.
type dev struct{}

func (dev) ReadBlock(lba int64, buf []byte) (int64, error) { return 0, nil }

type regA struct{ mu sync.Mutex }
type regB struct{ mu sync.Mutex }

// heldAcrossDevice performs a direct device call under a lock.
func heldAcrossDevice(a *regA, d dev) {
	a.mu.Lock()
	defer a.mu.Unlock()
	d.ReadBlock(0, nil) // want "held across blocking device/station call"
}

// helper reaches the device without holding anything itself.
func helper(d dev) {
	d.ReadBlock(0, nil)
}

// heldAcrossHelper reaches the device only through a summarized callee.
func heldAcrossHelper(a *regA, d dev) {
	a.mu.Lock()
	helper(d) // want "transitively"
	a.mu.Unlock()
}

// lockAB and lockBA take the same pair in opposite orders: the classic
// ABBA deadlock, visible only in the module-wide graph.
func lockAB(a *regA, b *regB) {
	a.mu.Lock()
	b.mu.Lock() // want "cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *regA, b *regB) {
	b.mu.Lock()
	a.mu.Lock() // want "cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

// recursive re-acquires a held class: sync.Mutex self-deadlocks.
func recursive(a *regA) {
	a.mu.Lock()
	a.mu.Lock() // want "acquired while already held"
	a.mu.Unlock()
	a.mu.Unlock()
}

// nestedViaCallee sees the callee's acquisition through its summary:
// callLocker acquires regC inside, so the call under regA draws the
// regA -> regC edge. Nothing orders regC back before regA, so the edge
// is clean — it appears in the graph dump but produces no finding.
type regC struct{ mu sync.Mutex }

func callLocker(c *regC) {
	c.mu.Lock()
	c.mu.Unlock()
}

func nestedViaCallee(a *regA, c *regC) {
	a.mu.Lock()
	callLocker(c)
	a.mu.Unlock()
}

// earlyReturn pins the branch-scoped held-set: the unlock-and-return
// path does not leak its release into the fall-through, and the
// fall-through's release means the later device call is lock-free.
func earlyReturn(a *regA, d dev, cond bool) {
	a.mu.Lock()
	if cond {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	d.ReadBlock(0, nil) // no finding: nothing held on this path
}

// snapshotThenIO is the approved pattern Drain uses: capture under the
// lock, do device work after releasing it.
func snapshotThenIO(a *regA, d dev) {
	a.mu.Lock()
	n := int64(1)
	a.mu.Unlock()
	d.ReadBlock(n, nil)
}
