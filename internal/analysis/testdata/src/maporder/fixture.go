// Package fixturemap exercises the maporder analyzer: order-sensitive
// map-range bodies are flagged, order-insensitive ones and the
// collect-then-sort idiom are not.
package fixturemap

import (
	"fmt"
	"sort"

	"icash/internal/metrics"
	"icash/internal/sim"
)

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "fmt.Println inside range over map"
	}
}

func stringBuild(m map[string]int) string {
	out := ""
	for k := range m {
		out += fmt.Sprintf("%s,", k) // want "fmt.Sprintf inside range over map"
	}
	return out
}

func escapingAppend(m map[int64]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append to out"
	}
	return out
}

func floatAccum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want "floating-point accumulation into total"
	}
	return total
}

func metricsFeed(m map[int]sim.Duration, h *metrics.Histogram) {
	for _, d := range m {
		h.Record(d) // want "metrics call inside range over map"
	}
}

// collectUnsorted is the half-done idiom: keys collected but never
// sorted, so the slice still carries map order.
func collectUnsorted(m map[string]int) []string { // the finding lands on the range line below
	var keys []string
	for k := range m { // want "never sorted"
		keys = append(keys, k)
	}
	return keys
}

// --- negative cases: all of the below must produce no findings ---

// collectSorted is the canonical fix: collect, sort, then use.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// filteredAppendSorted mirrors the dedup cache's evict path: a
// conditional append whose slice is sorted after the loop.
func filteredAppendSorted(m map[int64]bool) []int64 {
	var lbas []int64
	for lba, dirty := range m {
		if dirty {
			lbas = append(lbas, lba)
		}
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	return lbas
}

// intAccum: integer addition is commutative and associative, so the
// total is order-independent.
func intAccum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// keyedWrites: writes into another map keyed by the range key land in
// the same place whatever the order.
func keyedWrites(src map[int]int, dst map[int]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

// localAppend: the slice is declared inside the loop body, so nothing
// escapes in map order.
func localAppend(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// sliceRange: ranging a slice is ordered; nothing to flag.
func sliceRange(s []float64) float64 {
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total
}

func suppressed(m map[string]int) {
	for k := range m {
		//lint:ignore maporder fixture demonstrates a justified suppression
		fmt.Println(k)
	}
}
