// Package ownerclock is the negative twin of the detclock fixture's
// clock-mutation cases: mounted at a run-driving package path
// (internal/harness), the same calls are the legitimate single owner
// moving simulated time.
package ownerclock

import "icash/internal/sim"

func driveRun(c *sim.Clock) sim.Time {
	c.Advance(10 * sim.Microsecond)
	c.AdvanceTo(5 * sim.Time(sim.Millisecond))
	t := c.Now()
	c.Reset()
	return t
}
