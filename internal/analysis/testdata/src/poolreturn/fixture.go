// Package poolreturn exercises the pool-ownership analyzer: buffers
// from blockdev's pool must be Put back or visibly handed off.
package poolreturn

import "icash/internal/blockdev"

type holder struct {
	buf     []byte
	scratch [][]byte
}

// goodDeferredPut is the canonical borrow: Get, use, deferred Put.
func goodDeferredPut() {
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	use(buf)
}

// goodDirectPut returns the buffer on every path reaching the Put.
func goodDirectPut() {
	buf := blockdev.GetBlock()
	use(buf)
	blockdev.PutBlock(buf)
}

// goodClosurePut discharges the obligation from a deferred closure —
// the rebinding loop idiom used by the log cleaner.
func goodClosurePut() {
	var buf []byte
	defer func() { blockdev.PutBlock(buf) }()
	for i := 0; i < 3; i++ {
		buf = blockdev.GetBlock()
		use(buf)
		blockdev.PutBlock(buf)
		buf = nil
	}
}

// goodFieldStore transfers ownership into a longer-lived struct.
func (h *holder) goodFieldStore() {
	b := blockdev.GetBlock()
	h.buf = b
}

// goodDirectFieldStore is the same transfer without a local binding.
func (h *holder) goodDirectFieldStore() {
	h.buf = blockdev.GetBlock()
}

// goodAppendToField hands off as an operand of the stored expression.
func (h *holder) goodAppendToField() []byte {
	b := blockdev.GetBlock()
	h.scratch = append(h.scratch, b)
	return b
}

// goodReturn hands the obligation to the caller.
func goodReturn() []byte {
	b := blockdev.GetBlock()
	return b
}

// badLentOnly lends the buffer but never Puts or hands it off.
func badLentOnly() {
	buf := blockdev.GetBlock() // want "neither returned via blockdev.PutBlock nor handed off"
	use(buf)
}

// badDiscarded drops the result on the floor.
func badDiscarded() {
	blockdev.GetBlock() // want "result discarded"
}

// badBlank cannot ever name the buffer again.
func badBlank() {
	_ = blockdev.GetBlock() // want "result discarded"
}

// badLocalOnly shuffles the buffer between locals, which moves nothing
// anywhere an outsider could see.
func badLocalOnly() int {
	b := blockdev.GetBlock() // want "neither returned via blockdev.PutBlock nor handed off"
	c := b
	return len(c)
}

func use([]byte) {}
