// Package poolreturninterproc exercises poolreturn's interprocedural
// mode: allocator wrappers are pool sources (their callers inherit the
// PutBlock obligation), ownership-taking callees are sinks (passing the
// buffer to them discharges it), and lending to a mere borrower is not
// a transfer.
package poolreturninterproc

import "icash/internal/blockdev"

type cache struct{ buf []byte }

// alloc is GetBlock in a trench coat: the buffer escapes only by being
// returned, so alloc's callers inherit the Put obligation.
func alloc() []byte {
	b := blockdev.GetBlock()
	return b
}

// allocDirect returns the pool call without ever binding it — still a
// source.
func allocDirect() []byte {
	return blockdev.GetBlock()
}

// release takes ownership: its parameter reaches blockdev.PutBlock.
func release(b []byte) {
	blockdev.PutBlock(b)
}

// releaseVia forwards its parameter to another sink — still a sink.
func releaseVia(b []byte) {
	release(b)
}

// keep takes ownership by parking the parameter in a field.
func (c *cache) keep(b []byte) {
	c.buf = b
}

// fill merely borrows its parameter: the caller still owns the buffer.
func fill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func okSunk() {
	b := alloc()
	release(b)
}

func okSunkDeep() {
	b := allocDirect()
	releaseVia(b)
}

func okStoredViaParam(c *cache) {
	b := alloc()
	c.keep(b)
}

func okReturned() []byte {
	b := alloc()
	return b
}

func okPut() {
	b := alloc()
	defer blockdev.PutBlock(b)
	fill(b)
}

func leakLent() {
	b := alloc() // want "leaks from the pool"
	fill(b)
}

func leakWrapped() {
	b := allocDirect() // want "leaks from the pool"
	_ = b
}

func discardWrapped() {
	alloc() // want "allocator wrapper"
}
