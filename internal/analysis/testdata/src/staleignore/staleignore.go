// Package staleignore exercises stale-suppression detection: a
// directive that suppresses a live finding is kept quiet, one that
// suppresses nothing is itself a finding. Runs under the full catalog
// (VetPackage), since staleness only exists against all analyzers.
package staleignore

import "time"

func live() {
	//lint:ignore detclock fixture exercises a live suppression
	time.Sleep(time.Millisecond)
}

func stale() {
	//lint:ignore detclock nothing on the next line violates anything // want "suppresses nothing"
	_ = 1 + 1
}

func multiName() {
	//lint:ignore detclock,maporder the detclock half is live, so the directive is used
	time.Sleep(time.Millisecond)
}
