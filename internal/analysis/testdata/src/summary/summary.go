// Package summary is the synthetic package the call-graph/summary unit
// tests walk: a three-deep device-call chain, a pure function, a
// deferred-unlock locker, a spawner, and a mutually-recursive pair that
// pins termination of the memoized transitive queries.
package summary

import "sync"

type dev struct{}

func (dev) WriteBlock(lba int64, buf []byte) error { return nil }

type guarded struct{ mu sync.Mutex }

func leaf(d dev) error {
	return d.WriteBlock(0, nil)
}

func mid(d dev) error {
	return leaf(d)
}

func top(d dev) error {
	return mid(d)
}

func pure() int { return 42 }

func locker(g *guarded) {
	g.mu.Lock()
	defer g.mu.Unlock()
}

func spawner(ch chan int) {
	go pure()
	select {
	case <-ch:
	default:
	}
}

func cyclic(n int) error {
	if n > 0 {
		return cyclic2(n - 1)
	}
	return nil
}

func cyclic2(n int) error {
	return cyclic(n)
}
