// Package fixtureverifyread exercises the verifyread analyzer. The
// fixture is mounted at the controller's package path (internal/core),
// where slotContent and readHomeVerified carry the checksum-before-
// success obligation — fetch helpers under other names stay exempt.
package fixtureverifyread

import (
	"errors"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

var errRot = errors.New("rot")

// contentCRC mirrors the controller's package-local checksum helper.
func contentCRC(b []byte) uint32 { return blockdev.ContentCRC(b) }

type dev struct{}

func (dev) read(lba int64, buf []byte) (sim.Duration, error) { return sim.Microsecond, nil }

type ctrl struct {
	d    dev
	sums map[int64]uint32
}

// readHomeVerified checks the home read on its main path but leaks an
// untracked-LBA success return before any verification.
func (c *ctrl) readHomeVerified(lba int64, buf []byte) (sim.Duration, error) {
	d, err := c.d.read(lba, buf)
	if err != nil {
		return d, err // error path: already failing loudly, no finding
	}
	if lba < 0 {
		return d, nil // want "readHomeVerified returns fetched content without checksum verification"
	}
	if blockdev.ContentCRC(buf) != c.sums[lba] {
		return d, errRot
	}
	return d, nil // verified above: no finding
}

// slotContent verifies via the package-local helper, except for a
// background fast path that hands the bytes out unchecked.
func (c *ctrl) slotContent(slot int64, background bool) ([]byte, sim.Duration, error) {
	buf := make([]byte, 64)
	// A closure's success returns belong to the closure, not to
	// slotContent — no finding even though it precedes any checksum.
	probe := func() (sim.Duration, error) { return 0, nil }
	if _, err := probe(); err != nil {
		return nil, 0, err
	}
	d, err := c.d.read(slot, buf)
	if err != nil {
		return nil, d, err
	}
	if background {
		return buf, d, nil // want "slotContent returns fetched content without checksum verification"
	}
	if contentCRC(buf) != c.sums[slot] {
		return nil, d, errRot
	}
	return buf, d, nil
}

// rawFetch has the fetch shape but is not an obligated name: helpers
// whose callers own the verification stay exempt.
func (c *ctrl) rawFetch(lba int64, buf []byte) (sim.Duration, error) {
	return c.d.read(lba, buf)
}
