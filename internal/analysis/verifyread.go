package analysis

import (
	"go/ast"
	"go/types"
)

// VerifyRead proves the end-to-end integrity invariant of the
// controller's content fetch paths: a function that pulls raw block
// content off a device and can hand it onward (slotContent's SSD
// reference fetch, readHomeVerified's HDD home read) must check the
// bytes against a content checksum — contentCRC or
// blockdev.ContentCRC — before any success return. A fetch path that
// skips the verification reintroduces exactly the failure mode the
// integrity layer exists to kill: a lying device read flowing to the
// host as if it were good data.
//
// Like latcharge, the check is a lexical approximation biased quiet: a
// return whose final result is nil inside an obligated function is
// flagged only when no checksum call appears anywhere earlier in the
// body. Error returns are exempt — a path that already fails loudly
// needs no verification.
var VerifyRead = &Analyzer{
	Name: "verifyread",
	Doc:  "device content fetch paths must checksum-verify bytes before returning success",
	Run:  runVerifyRead,
}

// verifyReadFuncs names the obligated fetch paths per package: the two
// layer crossings where raw device bytes enter the controller.
var verifyReadFuncs = map[string]map[string]bool{
	"icash/internal/core": {"slotContent": true, "readHomeVerified": true},
}

// verifyCalls are the checksum entry points that count as verifying:
// the controller's contentCRC and the underlying blockdev.ContentCRC.
var verifyCalls = map[string]bool{
	"contentCRC": true,
	"ContentCRC": true,
}

func runVerifyRead(pass *Pass) {
	named := verifyReadFuncs[pass.Pkg.Path()]
	if named == nil {
		return
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !named[fd.Name.Name] {
				continue
			}
			if !lastResultIsError(pass, fd) {
				continue
			}
			checkVerifyRead(pass, fd)
		}
	}
}

// lastResultIsError reports whether fd's final result is the error
// interface — the success/failure discriminator the check keys on.
func lastResultIsError(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	return res.Len() >= 1 && isErrorType(res.At(res.Len()-1).Type())
}

// checkVerifyRead flags success returns not preceded by a checksum
// call. Function literals are not descended into: their returns belong
// to the closure, not to the fetch path.
func checkVerifyRead(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		if !isNilExpr(pass.Info, ret.Results[len(ret.Results)-1]) {
			return true // error path: already failing loudly
		}
		if !verifiedBefore(pass, fd, ret) {
			pass.Reportf(ret.Pos(),
				"%s returns fetched content without checksum verification: check contentCRC/blockdev.ContentCRC before this return", fd.Name.Name)
		}
		return true
	})
}

// verifiedBefore reports whether a checksum call appears lexically
// before ret inside fd's body.
func verifiedBefore(pass *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt) bool {
	verified := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if verified || n == nil || n.Pos() >= ret.Pos() {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(pass.Info, call); fn != nil && verifyCalls[fn.Name()] {
				verified = true
				return false
			}
		}
		return true
	})
	return verified
}
