package analysis

import "testing"

// TestVerifyReadFixture runs verifyread over its golden fixture,
// mounted at the controller's path so slotContent and readHomeVerified
// carry the checksum obligation.
func TestVerifyReadFixture(t *testing.T) {
	runFixture(t, VerifyRead, "verifyreadcore", "icash/internal/core")
}

// TestVerifyReadOutOfScope proves the same source mounted outside the
// controller carries no obligation: the fetch-path names are only
// meaningful in internal/core.
func TestVerifyReadOutOfScope(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.Lenient = true
	pkg, err := l.LoadDir("testdata/src/verifyreadcore", "icash/internal/ssd")
	if err != nil {
		t.Fatal(err)
	}
	if fs := RunAnalyzers([]*Analyzer{VerifyRead}, pkg, newProgram()); len(fs) != 0 {
		t.Fatalf("verifyread fired outside the controller: %v", fs)
	}
}
