package baseline

import (
	"bytes"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

type rig struct {
	ssd   *blockdev.MemDevice
	hdd   *blockdev.MemDevice
	clock *sim.Clock
	cpu   *cpumodel.Accountant
}

func newRig(ssdBlocks, hddBlocks int64) *rig {
	clock := sim.NewClock()
	return &rig{
		ssd:   blockdev.NewMemDevice(ssdBlocks, 10*sim.Microsecond),
		hdd:   blockdev.NewMemDevice(hddBlocks, 5*sim.Millisecond),
		clock: clock,
		cpu:   cpumodel.NewAccountant(clock),
	}
}

func fill(tag byte) []byte {
	b := make([]byte, blockdev.BlockSize)
	for i := range b {
		b[i] = tag
	}
	return b
}

// shadowCheck drives dev with a random mixed workload, verifying reads
// against a model and returning after flush-verify.
func shadowCheck(t *testing.T, dev blockdev.Device, flush func() error, hdd *blockdev.MemDevice, seed uint64, ops int) {
	t.Helper()
	r := sim.NewRand(seed)
	model := map[int64][]byte{}
	buf := make([]byte, blockdev.BlockSize)
	out := make([]byte, blockdev.BlockSize)
	for i := 0; i < ops; i++ {
		lba := r.Int63n(dev.Blocks())
		if r.Float64() < 0.5 {
			r.Bytes(buf)
			if _, err := dev.WriteBlock(lba, buf); err != nil {
				t.Fatalf("op %d write: %v", i, err)
			}
			model[lba] = append([]byte(nil), buf...)
		} else {
			if _, err := dev.ReadBlock(lba, out); err != nil {
				t.Fatalf("op %d read: %v", i, err)
			}
			want := model[lba]
			if want == nil {
				want = make([]byte, blockdev.BlockSize)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("op %d: lba %d content mismatch", i, lba)
			}
		}
	}
	if err := flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	// After flush, the backing HDD holds every written block.
	for lba, want := range model {
		if _, err := hdd.ReadBlock(lba, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("post-flush lba %d not durable on HDD", lba)
		}
	}
}

func TestLRUCacheShadow(t *testing.T) {
	rg := newRig(32, 512)
	c := NewLRUCache(rg.ssd, rg.hdd, rg.cpu)
	shadowCheck(t, c, c.Flush, rg.hdd, 11, 5000)
	if c.Stats.Evictions == 0 || c.Stats.Writebacks == 0 {
		t.Errorf("expected evictions and writebacks: %+v", c.Stats)
	}
	if c.Stats.HitRatio() <= 0 {
		t.Error("expected some cache hits")
	}
}

func TestDedupCacheShadow(t *testing.T) {
	rg := newRig(32, 512)
	c := NewDedupCache(rg.ssd, rg.hdd, rg.cpu)
	shadowCheck(t, c, c.Flush, rg.hdd, 13, 5000)
	if c.Stats.Evictions == 0 {
		t.Errorf("expected evictions: %+v", c.Stats)
	}
}

func TestLRUHitFasterThanMiss(t *testing.T) {
	rg := newRig(64, 1024)
	c := NewLRUCache(rg.ssd, rg.hdd, rg.cpu)
	buf := make([]byte, blockdev.BlockSize)
	miss, err := c.ReadBlock(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := c.ReadBlock(7, buf)
	if err != nil {
		t.Fatal(err)
	}
	if hit >= miss {
		t.Fatalf("hit %v not faster than miss %v", hit, miss)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestDedupSharesIdenticalContent(t *testing.T) {
	rg := newRig(64, 1024)
	c := NewDedupCache(rg.ssd, rg.hdd, rg.cpu)
	content := fill(0x42)
	// Write the same content to many LBAs: one SSD copy must serve all.
	for lba := int64(0); lba < 50; lba++ {
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatal(err)
		}
	}
	if c.DedupHits < 49 {
		t.Fatalf("dedup hits = %d, want >= 49", c.DedupHits)
	}
	if got := rg.ssd.Stats.Writes; got != 1 {
		t.Fatalf("SSD writes = %d, want 1 (single shared copy)", got)
	}
	// All LBAs read back the shared content.
	out := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < 50; lba++ {
		c.ReadBlock(lba, out)
		if !bytes.Equal(out, content) {
			t.Fatalf("lba %d content mismatch", lba)
		}
	}
}

func TestDedupCopyOnWrite(t *testing.T) {
	rg := newRig(64, 1024)
	c := NewDedupCache(rg.ssd, rg.hdd, rg.cpu)
	shared := fill(1)
	c.WriteBlock(0, shared)
	c.WriteBlock(1, shared)
	// Writing new content to one LBA must not disturb the other.
	c.WriteBlock(0, fill(2))
	out := make([]byte, blockdev.BlockSize)
	c.ReadBlock(1, out)
	if out[0] != 1 {
		t.Fatal("copy-on-write corrupted the sharing LBA")
	}
	c.ReadBlock(0, out)
	if out[0] != 2 {
		t.Fatal("new content lost")
	}
}

func TestDedupCapacityAdvantage(t *testing.T) {
	// With duplicated content, dedup retains more distinct LBAs in SSD
	// than LRU can (the paper's motivation for the Dedup baseline).
	mkContent := func(lba int64) []byte { return fill(byte(lba % 4)) } // only 4 distinct contents
	run := func(dev blockdev.Device) (hits int64) {
		buf := make([]byte, blockdev.BlockSize)
		for pass := 0; pass < 2; pass++ {
			for lba := int64(0); lba < 64; lba++ {
				copy(buf, mkContent(lba))
				dev.WriteBlock(lba, buf)
			}
		}
		return 0
	}
	rgL := newRig(8, 256)
	lru := NewLRUCache(rgL.ssd, rgL.hdd, rgL.cpu)
	run(lru)
	rgD := newRig(8, 256)
	ddp := NewDedupCache(rgD.ssd, rgD.hdd, rgD.cpu)
	run(ddp)
	if ddp.Stats.Evictions >= lru.Stats.Evictions {
		t.Fatalf("dedup evictions %d should be below lru %d on duplicate-heavy content",
			ddp.Stats.Evictions, lru.Stats.Evictions)
	}
}

func TestPureSSD(t *testing.T) {
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(128, 20*sim.Microsecond)
	p := NewPureSSD(ssd, cpu)
	if p.Blocks() != 128 {
		t.Fatalf("Blocks = %d", p.Blocks())
	}
	buf := fill(9)
	if _, err := p.WriteBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, blockdev.BlockSize)
	if _, err := p.ReadBlock(5, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, buf) {
		t.Fatal("content mismatch")
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := p.Preload(6, buf); err != nil {
		t.Fatal(err)
	}
	if p.Stats.Ops() != 2 {
		t.Fatalf("ops = %d", p.Stats.Ops())
	}
	p.ResetStats()
	if p.Stats.Ops() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCacheBounds(t *testing.T) {
	rg := newRig(8, 64)
	lru := NewLRUCache(rg.ssd, rg.hdd, rg.cpu)
	buf := make([]byte, blockdev.BlockSize)
	if _, err := lru.ReadBlock(64, buf); err == nil {
		t.Error("lru out-of-range read must fail")
	}
	if _, err := lru.WriteBlock(0, buf[:9]); err == nil {
		t.Error("lru short buffer must fail")
	}
	ddp := NewDedupCache(rg.ssd, rg.hdd, rg.cpu)
	if _, err := ddp.ReadBlock(-1, buf); err == nil {
		t.Error("dedup negative read must fail")
	}
	if _, err := ddp.WriteBlock(64, buf); err == nil {
		t.Error("dedup out-of-range write must fail")
	}
}
