package baseline

import (
	"fmt"
	"hash/fnv"
	"sort"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// DedupCache uses the SSD as a content-addressed cache: identical blocks
// share one SSD copy (the paper's third baseline, "DeDup"). Compared to
// LRU it stores more distinct data in the same SSD space, but every
// write must hash its content, and writing a block whose old content was
// shared cannot update in place — it allocates a fresh copy, which is
// the copy-on-write overhead the paper observes slowing writes (§5.1).
type DedupCache struct {
	ssd   blockdev.Device
	hdd   blockdev.Device
	cpu   *cpumodel.Accountant
	costs cpumodel.Costs

	capacity int64
	blocks   int64

	// lbaTo maps a cached LBA to the content node holding its bytes.
	lbaTo map[int64]*dedupNode
	// byHash maps content hash to its node.
	byHash map[uint64]*dedupNode
	// dirtyLBA marks LBAs whose newest content has not reached the HDD.
	dirtyLBA  map[int64]bool
	freeSlots []int64

	head, tail *dedupNode

	// Stats is host-visible accounting.
	Stats CacheStats
	// DedupHits counts writes whose content already existed in cache.
	DedupHits int64
}

// dedupNode is one unique content block resident in the SSD.
type dedupNode struct {
	hash       uint64
	slot       int64
	refs       int // LBAs pointing at this content
	prev, next *dedupNode
}

// NewDedupCache builds a deduplicating cache using all of ssd's capacity
// over hdd.
func NewDedupCache(ssdDev, hddDev blockdev.Device, cpu *cpumodel.Accountant) *DedupCache {
	c := &DedupCache{
		ssd:      ssdDev,
		hdd:      hddDev,
		cpu:      cpu,
		costs:    cpumodel.DefaultCosts(),
		capacity: ssdDev.Blocks(),
		blocks:   hddDev.Blocks(),
		lbaTo:    make(map[int64]*dedupNode),
		byHash:   make(map[uint64]*dedupNode),
		dirtyLBA: make(map[int64]bool),
	}
	c.freeSlots = make([]int64, 0, c.capacity)
	for i := c.capacity - 1; i >= 0; i-- {
		c.freeSlots = append(c.freeSlots, i)
	}
	return c
}

// Blocks returns the virtual capacity (the HDD size).
func (c *DedupCache) Blocks() int64 { return c.blocks }

// hashContent computes the content fingerprint, charging the CPU model.
func (c *DedupCache) hashContent(b []byte) uint64 {
	c.cpu.ChargeStorage(c.costs.HashBlock)
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

func (c *DedupCache) pushFront(n *dedupNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *DedupCache) unlink(n *dedupNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *DedupCache) touch(n *dedupNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

// dropRef decrements a node's reference count, freeing its slot when the
// last LBA leaves. Dirty LBAs must be persisted by the caller first.
func (c *DedupCache) dropRef(n *dedupNode) {
	n.refs--
	if n.refs > 0 {
		return
	}
	c.unlink(n)
	delete(c.byHash, n.hash)
	c.freeSlots = append(c.freeSlots, n.slot)
	c.Stats.Evictions++
}

// allocNode finds or creates the content node for (hash, content),
// returning it plus the SSD cost incurred. mayWrite is false when the
// caller only probes.
func (c *DedupCache) allocNode(hash uint64, content []byte) (*dedupNode, sim.Duration, error) {
	if n, ok := c.byHash[hash]; ok {
		c.touch(n)
		c.DedupHits++
		return n, 0, nil
	}
	var lat sim.Duration
	// Need a slot: evict unreferenced... all nodes are referenced, so
	// evict the LRU node by spilling its referencing LBAs to the HDD.
	for len(c.freeSlots) == 0 {
		victim := c.tail
		if victim == nil {
			return nil, 0, fmt.Errorf("baseline: dedup cache has no capacity")
		}
		d, err := c.evictNode(victim)
		if err != nil {
			return nil, 0, err
		}
		lat += d
	}
	slot := c.freeSlots[len(c.freeSlots)-1]
	c.freeSlots = c.freeSlots[:len(c.freeSlots)-1]
	d, err := c.ssd.WriteBlock(slot, content)
	if err != nil {
		return nil, 0, err
	}
	lat += d
	n := &dedupNode{hash: hash, slot: slot}
	c.byHash[hash] = n
	c.pushFront(n)
	return n, lat, nil
}

// evictNode removes a content node, writing back any dirty LBAs that
// reference it via the asynchronous cleaner (background time, not
// request latency). LBAs are processed in sorted order so device timing
// is deterministic run to run.
func (c *DedupCache) evictNode(n *dedupNode) (sim.Duration, error) {
	var lat sim.Duration
	var content []byte
	var victims []int64
	for lba, node := range c.lbaTo {
		if node == n {
			victims = append(victims, lba)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
	for _, lba := range victims {
		if c.dirtyLBA[lba] {
			if content == nil {
				content = make([]byte, blockdev.BlockSize)
				d, err := c.ssd.ReadBlock(n.slot, content)
				if err != nil {
					return 0, err
				}
				c.Stats.BackgroundTime += d
			}
			d, err := c.hdd.WriteBlock(lba, content)
			if err != nil {
				return 0, err
			}
			c.Stats.BackgroundTime += d
			delete(c.dirtyLBA, lba)
			c.Stats.Writebacks++
		}
		delete(c.lbaTo, lba)
		n.refs--
	}

	c.unlink(n)
	delete(c.byHash, n.hash)
	c.freeSlots = append(c.freeSlots, n.slot)
	c.Stats.Evictions++
	return lat, nil
}

// ReadBlock serves a read: SSD on (content) hit, HDD + insert on miss.
func (c *DedupCache) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, c.blocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	c.cpu.ChargeStorage(c.costs.PerRequest)
	var lat sim.Duration
	if n, ok := c.lbaTo[lba]; ok {
		d, err := c.ssd.ReadBlock(n.slot, buf)
		if err != nil {
			return 0, err
		}
		lat += d
		c.touch(n)
		c.Stats.Hits++
	} else {
		d, err := c.hdd.ReadBlock(lba, buf)
		if err != nil {
			return 0, err
		}
		lat += d
		c.Stats.Misses++
		hash := c.hashContent(buf)
		n, d2, err := c.allocNode(hash, buf)
		if err != nil {
			return 0, err
		}
		lat += d2
		n.refs++
		c.lbaTo[lba] = n
		c.Stats.Promotions++
	}
	c.Stats.NoteRead(blockdev.BlockSize, lat)
	return lat, nil
}

// WriteBlock serves a write: hash the new content; identical content
// shares the existing SSD copy, new content allocates one (copy on
// write when the old content was shared).
func (c *DedupCache) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, c.blocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	c.cpu.ChargeStorage(c.costs.PerRequest)
	var lat sim.Duration
	hash := c.hashContent(buf)
	if old, ok := c.lbaTo[lba]; ok {
		if old.hash == hash {
			// Same content rewritten: nothing to store.
			c.touch(old)
			c.DedupHits++
			c.dirtyLBA[lba] = true
			c.Stats.NoteWrite(blockdev.BlockSize, lat)
			return lat, nil
		}
		delete(c.lbaTo, lba)
		c.dropRef(old)
	}
	n, d, err := c.allocNode(hash, buf)
	if err != nil {
		return 0, err
	}
	lat += d
	n.refs++
	c.lbaTo[lba] = n
	c.dirtyLBA[lba] = true
	c.Stats.NoteWrite(blockdev.BlockSize, lat)
	return lat, nil
}

// Flush writes all dirty LBAs back to the HDD in sorted order.
func (c *DedupCache) Flush() error {
	buf := make([]byte, blockdev.BlockSize)
	lbas := make([]int64, 0, len(c.dirtyLBA))
	for lba, dirty := range c.dirtyLBA {
		if dirty {
			lbas = append(lbas, lba)
		}
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	for _, lba := range lbas {
		n, ok := c.lbaTo[lba]
		if !ok {
			continue
		}
		if _, err := c.ssd.ReadBlock(n.slot, buf); err != nil {
			return err
		}
		if _, err := c.hdd.WriteBlock(lba, buf); err != nil {
			return err
		}
		c.dirtyLBA[lba] = false
	}
	return nil
}

// Preload routes initial data to the backing HDD.
func (c *DedupCache) Preload(lba int64, content []byte) error {
	p, ok := c.hdd.(blockdev.Preloader)
	if !ok {
		return fmt.Errorf("baseline: backing HDD does not support preloading")
	}
	return p.Preload(lba, content)
}

var (
	_ blockdev.Device    = (*DedupCache)(nil)
	_ blockdev.Preloader = (*DedupCache)(nil)
)

// ResetStats zeroes the cache statistics.
func (c *DedupCache) ResetStats() { c.Stats = CacheStats{}; c.DedupHits = 0 }
