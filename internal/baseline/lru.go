// Package baseline implements the comparison storage systems from the
// paper's evaluation (§4.4): the SSD-as-LRU-cache hierarchy, the
// deduplicating SSD cache, and the pure-SSD configuration. All of them
// drive the same simulated SSD/HDD devices as the I-CASH controller so
// that every difference in results comes from the management algorithm,
// not the substrate.
package baseline

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// LRUCache uses the SSD as a block-granular LRU cache in front of the
// HDD (the paper's fourth baseline). Write-back policy: writes land in
// the SSD and dirty blocks are written to the HDD on eviction; read
// misses fetch from the HDD and promote into the SSD. Every promotion
// and write costs an SSD write — exactly the wear the paper's Table 6
// charges this design with.
type LRUCache struct {
	ssd        blockdev.Device
	hdd        blockdev.Device
	cpu        *cpumodel.Accountant
	costs      cpumodel.Costs
	capacity   int64
	blocks     int64
	entries    map[int64]*lruEntry
	slotOf     map[int64]int64 // ssd slot -> lba
	freeSlots  []int64
	head, tail *lruEntry

	// Stats is host-visible accounting.
	Stats CacheStats
}

// CacheStats aggregates cache-level counters shared by the LRU and
// dedup baselines.
type CacheStats struct {
	blockdev.Stats
	Hits       int64
	Misses     int64
	Promotions int64
	Writebacks int64
	Evictions  int64
	// BackgroundTime is device time spent on asynchronous cleaning
	// (dirty-victim write-back), off the request path.
	BackgroundTime sim.Duration
}

// HitRatio returns hits/(hits+misses), or 0 before any traffic.
func (s *CacheStats) HitRatio() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Hits) / float64(t)
}

type lruEntry struct {
	lba        int64
	slot       int64
	dirty      bool
	prev, next *lruEntry
}

// NewLRUCache builds an LRU cache using all of ssd's capacity as cache
// space over hdd.
func NewLRUCache(ssdDev, hddDev blockdev.Device, cpu *cpumodel.Accountant) *LRUCache {
	c := &LRUCache{
		ssd:      ssdDev,
		hdd:      hddDev,
		cpu:      cpu,
		costs:    cpumodel.DefaultCosts(),
		capacity: ssdDev.Blocks(),
		blocks:   hddDev.Blocks(),
		entries:  make(map[int64]*lruEntry),
		slotOf:   make(map[int64]int64),
	}
	c.freeSlots = make([]int64, 0, c.capacity)
	for i := c.capacity - 1; i >= 0; i-- {
		c.freeSlots = append(c.freeSlots, i)
	}
	return c
}

// Blocks returns the virtual capacity (the HDD size).
func (c *LRUCache) Blocks() int64 { return c.blocks }

func (c *LRUCache) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LRUCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *LRUCache) touch(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// allocSlot returns a free SSD slot, evicting the LRU entry if needed.
// Dirty victims are written back to the HDD by the asynchronous cleaner
// (accounted as background time, not request latency).
func (c *LRUCache) allocSlot() (int64, sim.Duration, error) {
	if n := len(c.freeSlots); n > 0 {
		s := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return s, 0, nil
	}
	victim := c.tail
	if victim == nil {
		return 0, 0, fmt.Errorf("baseline: lru cache has no capacity")
	}
	if victim.dirty {
		buf := make([]byte, blockdev.BlockSize)
		d, err := c.ssd.ReadBlock(victim.slot, buf)
		if err != nil {
			return 0, 0, err
		}
		c.Stats.BackgroundTime += d
		d, err = c.hdd.WriteBlock(victim.lba, buf)
		if err != nil {
			return 0, 0, err
		}
		c.Stats.BackgroundTime += d
		c.Stats.Writebacks++
	}
	c.unlink(victim)
	delete(c.entries, victim.lba)
	delete(c.slotOf, victim.slot)
	c.Stats.Evictions++
	return victim.slot, 0, nil
}

// ReadBlock serves a read: SSD on hit, HDD + promotion on miss.
func (c *LRUCache) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, c.blocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	c.cpu.ChargeStorage(c.costs.PerRequest)
	var lat sim.Duration
	if e, ok := c.entries[lba]; ok {
		d, err := c.ssd.ReadBlock(e.slot, buf)
		if err != nil {
			return 0, err
		}
		lat += d
		c.touch(e)
		c.Stats.Hits++
	} else {
		d, err := c.hdd.ReadBlock(lba, buf)
		if err != nil {
			return 0, err
		}
		lat += d
		c.Stats.Misses++
		// Promote into the cache (inline, like a kernel block cache).
		slot, evictCost, err := c.allocSlot()
		if err != nil {
			return 0, err
		}
		lat += evictCost
		d, err = c.ssd.WriteBlock(slot, buf)
		if err != nil {
			return 0, err
		}
		lat += d
		e := &lruEntry{lba: lba, slot: slot}
		c.entries[lba] = e
		c.slotOf[slot] = lba
		c.pushFront(e)
		c.Stats.Promotions++
	}
	c.Stats.NoteRead(blockdev.BlockSize, lat)
	return lat, nil
}

// WriteBlock serves a write: write-back into the SSD cache.
func (c *LRUCache) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, c.blocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	c.cpu.ChargeStorage(c.costs.PerRequest)
	var lat sim.Duration
	e, ok := c.entries[lba]
	if !ok {
		slot, evictCost, err := c.allocSlot()
		if err != nil {
			return 0, err
		}
		lat += evictCost
		e = &lruEntry{lba: lba, slot: slot}
		c.entries[lba] = e
		c.slotOf[slot] = lba
		c.pushFront(e)
	} else {
		c.touch(e)
	}
	d, err := c.ssd.WriteBlock(e.slot, buf)
	if err != nil {
		return 0, err
	}
	lat += d
	e.dirty = true
	c.Stats.NoteWrite(blockdev.BlockSize, lat)
	return lat, nil
}

// Flush writes every dirty cached block back to the HDD (end of run).
func (c *LRUCache) Flush() error {
	buf := make([]byte, blockdev.BlockSize)
	for e := c.head; e != nil; e = e.next {
		if !e.dirty {
			continue
		}
		if _, err := c.ssd.ReadBlock(e.slot, buf); err != nil {
			return err
		}
		if _, err := c.hdd.WriteBlock(e.lba, buf); err != nil {
			return err
		}
		e.dirty = false
	}
	return nil
}

// Preload routes initial data to the backing HDD.
func (c *LRUCache) Preload(lba int64, content []byte) error {
	p, ok := c.hdd.(blockdev.Preloader)
	if !ok {
		return fmt.Errorf("baseline: backing HDD does not support preloading")
	}
	return p.Preload(lba, content)
}

var (
	_ blockdev.Device    = (*LRUCache)(nil)
	_ blockdev.Preloader = (*LRUCache)(nil)
)

// ResetStats zeroes the cache statistics.
func (c *LRUCache) ResetStats() { c.Stats = CacheStats{} }
