package baseline

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// PureSSD is the paper's first baseline ("Fusion-io"): the whole data
// set lives on the SSD and every request goes straight to it. It exists
// as a wrapper so the harness drives all five systems through one
// interface and the request-handling CPU overhead is charged uniformly.
type PureSSD struct {
	ssd   blockdev.Device
	cpu   *cpumodel.Accountant
	costs cpumodel.Costs

	// Stats is host-visible accounting.
	Stats blockdev.Stats
}

// NewPureSSD wraps ssd as a standalone storage system.
func NewPureSSD(ssdDev blockdev.Device, cpu *cpumodel.Accountant) *PureSSD {
	return &PureSSD{ssd: ssdDev, cpu: cpu, costs: cpumodel.DefaultCosts()}
}

// Blocks returns the SSD capacity.
func (p *PureSSD) Blocks() int64 { return p.ssd.Blocks() }

// ReadBlock forwards to the SSD.
func (p *PureSSD) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	p.cpu.ChargeStorage(p.costs.PerRequest)
	d, err := p.ssd.ReadBlock(lba, buf)
	if err != nil {
		return 0, err
	}
	p.Stats.NoteRead(blockdev.BlockSize, d)
	return d, nil
}

// WriteBlock forwards to the SSD.
func (p *PureSSD) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	p.cpu.ChargeStorage(p.costs.PerRequest)
	d, err := p.ssd.WriteBlock(lba, buf)
	if err != nil {
		return 0, err
	}
	p.Stats.NoteWrite(blockdev.BlockSize, d)
	return d, nil
}

// Flush is a no-op: the SSD is the durable store.
func (p *PureSSD) Flush() error { return nil }

// Preload routes initial data into the SSD.
func (p *PureSSD) Preload(lba int64, content []byte) error {
	pl, ok := p.ssd.(blockdev.Preloader)
	if !ok {
		return fmt.Errorf("baseline: SSD does not support preloading")
	}
	return pl.Preload(lba, content)
}

var (
	_ blockdev.Device    = (*PureSSD)(nil)
	_ blockdev.Preloader = (*PureSSD)(nil)
)

// ResetStats zeroes the wrapper statistics.
func (p *PureSSD) ResetStats() { p.Stats = blockdev.Stats{} }
