// Package blockdev defines the block-device abstraction every simulated
// storage component implements: SSDs, HDDs, RAID arrays, caches and the
// I-CASH controller itself. Devices address fixed-size blocks (the paper
// fixes the cache block at 4 KB) and report a simulated service latency
// for every request instead of sleeping.
package blockdev

import (
	"errors"
	"fmt"
	"hash/crc32"

	"icash/internal/sim"
)

// BlockSize is the unit of all device I/O in this simulation: 4 KB,
// matching the paper's fixed cache-block size (§4.2).
const BlockSize = 4096

// Errors shared by all device implementations.
var (
	// ErrOutOfRange reports an access beyond the device capacity.
	ErrOutOfRange = errors.New("blockdev: block address out of range")
	// ErrBadBuffer reports a data buffer whose length is not BlockSize.
	ErrBadBuffer = errors.New("blockdev: buffer length must equal BlockSize")

	// ErrMedia reports an uncorrectable media error: a latent sector
	// error on disk or an uncorrectable bit-error/program failure on
	// flash. The affected block stays unreadable until rewritten
	// (sector remap / page reprogram); other blocks are unaffected.
	ErrMedia = errors.New("blockdev: uncorrectable media error")
	// ErrTransient reports a transient device timeout. The operation
	// did not take effect; an immediate retry may succeed.
	ErrTransient = errors.New("blockdev: transient device timeout")
	// ErrDeviceLost reports whole-device failure (pulled drive, dead
	// controller, power cut mid-operation). Every subsequent request
	// fails the same way until the device is restored.
	ErrDeviceLost = errors.New("blockdev: device lost")
	// ErrCorruption reports silent corruption caught by a content
	// checksum: the device returned success with wrong bytes (bit rot,
	// a misdirected write, a lost write). Unlike ErrMedia the device
	// itself admits nothing — re-reading the same copy returns the same
	// wrong data, so recovery must repair from a redundant copy, never
	// retry in place.
	ErrCorruption = errors.New("blockdev: content checksum mismatch (silent corruption)")
)

// ErrorClass partitions device errors by the recovery action they call
// for. Consumers switch on Classify(err) instead of matching sentinel
// errors at every call site.
type ErrorClass int

const (
	// ClassNone is the class of a nil error.
	ClassNone ErrorClass = iota
	// ClassTransient errors are worth retrying with backoff.
	ClassTransient
	// ClassMedia errors are permanent for one block; the content must
	// be repaired from a redundant copy and rewritten.
	ClassMedia
	// ClassDeviceLost errors mean the whole device is gone; the caller
	// must degrade to whatever redundancy remains.
	ClassDeviceLost
	// ClassCorruption errors mean a read succeeded with wrong bytes
	// (checksum mismatch). Retrying the same copy is useless; the block
	// must be repaired from a redundant copy that verifies.
	ClassCorruption
	// ClassOther covers caller bugs (range/buffer validation) and
	// unrecognized errors; retrying cannot help.
	ClassOther
)

// String names the class for diagnostics.
func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassMedia:
		return "media"
	case ClassDeviceLost:
		return "device-lost"
	case ClassCorruption:
		return "corruption"
	default:
		return "other"
	}
}

// Classify maps an error returned by a Device operation to its
// recovery class. Wrapped errors (fmt.Errorf with %w) classify the
// same as their underlying sentinel.
func Classify(err error) ErrorClass {
	switch {
	case err == nil:
		return ClassNone
	case errors.Is(err, ErrTransient):
		return ClassTransient
	case errors.Is(err, ErrMedia):
		return ClassMedia
	case errors.Is(err, ErrDeviceLost):
		return ClassDeviceLost
	case errors.Is(err, ErrCorruption):
		return ClassCorruption
	default:
		return ClassOther
	}
}

// castagnoli is the CRC32-C polynomial table shared by every content
// checksum in the stack. Castagnoli is the polynomial storage systems
// standardize on (iSCSI, btrfs, ext4 metadata) and has hardware support
// on both amd64 and arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ContentCRC computes the CRC32-C content checksum of a block. All
// layers (controller checksum map, reference slots, delta cache,
// scrubber) use this one function so checksums computed at different
// layer crossings are directly comparable.
func ContentCRC(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// Device is a fixed-block storage device on the simulated timeline.
//
// ReadBlock and WriteBlock transfer exactly one block and return the
// simulated service time of the request. Implementations advance any
// internal state (head position, FTL mappings, wear counters) but do not
// advance the shared clock; the caller owns scheduling.
type Device interface {
	// ReadBlock reads block lba into buf (len(buf) == BlockSize).
	ReadBlock(lba int64, buf []byte) (sim.Duration, error)
	// WriteBlock writes buf (len(buf) == BlockSize) to block lba.
	WriteBlock(lba int64, buf []byte) (sim.Duration, error)
	// Blocks returns the device capacity in blocks.
	Blocks() int64
}

// Stats accumulates request counts, bytes and service time for one
// device or one side (read/write) of a storage system. The experiment
// harness renders figures from these counters.
type Stats struct {
	Reads      int64
	Writes     int64
	ReadTime   sim.Duration
	WriteTime  sim.Duration
	ReadBytes  int64
	WriteBytes int64
}

// NoteRead records one read of n bytes taking d.
func (s *Stats) NoteRead(n int, d sim.Duration) {
	s.Reads++
	s.ReadBytes += int64(n)
	s.ReadTime += d
}

// NoteWrite records one write of n bytes taking d.
func (s *Stats) NoteWrite(n int, d sim.Duration) {
	s.Writes++
	s.WriteBytes += int64(n)
	s.WriteTime += d
}

// Ops returns the total number of requests recorded.
func (s *Stats) Ops() int64 { return s.Reads + s.Writes }

// AvgRead returns the mean read service time, or 0 with no reads.
func (s *Stats) AvgRead() sim.Duration {
	if s.Reads == 0 {
		return 0
	}
	return s.ReadTime / sim.Duration(s.Reads)
}

// AvgWrite returns the mean write service time, or 0 with no writes.
func (s *Stats) AvgWrite() sim.Duration {
	if s.Writes == 0 {
		return 0
	}
	return s.WriteTime / sim.Duration(s.Writes)
}

// Add merges o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadTime += o.ReadTime
	s.WriteTime += o.WriteTime
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
}

// String summarizes the counters for logs and inspection tools.
func (s *Stats) String() string {
	return fmt.Sprintf("reads=%d(avg %v) writes=%d(avg %v)",
		s.Reads, s.AvgRead(), s.Writes, s.AvgWrite())
}

// CheckRange validates an (lba, capacity) pair, returning ErrOutOfRange
// outside [0, blocks).
func CheckRange(lba, blocks int64) error {
	if lba < 0 || lba >= blocks {
		return fmt.Errorf("%w: lba %d, capacity %d blocks", ErrOutOfRange, lba, blocks)
	}
	return nil
}

// CheckBuffer validates a data buffer length.
func CheckBuffer(buf []byte) error {
	if len(buf) != BlockSize {
		return fmt.Errorf("%w: got %d bytes", ErrBadBuffer, len(buf))
	}
	return nil
}

// Preloader is implemented by devices that can have content installed
// directly, bypassing timing, wear and statistics. Experiment harnesses
// use it to lay down the initial data set, mirroring devices that
// already hold the benchmark data before the measured run starts.
type Preloader interface {
	Preload(lba int64, content []byte) error
}

// FillFunc generates the initial content of a never-written block. The
// experiment harness installs the workload's content oracle on every
// device so the benchmark data set "already exists" on the media without
// materializing gigabytes of RAM: unwritten blocks are recomputed on
// demand, deterministically.
type FillFunc func(lba int64, buf []byte)

// Filler is implemented by devices that accept a FillFunc.
type Filler interface {
	SetFill(FillFunc)
}
