package blockdev

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"icash/internal/sim"
)

func TestCheckRange(t *testing.T) {
	if err := CheckRange(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := CheckRange(9, 10); err != nil {
		t.Fatal(err)
	}
	if err := CheckRange(10, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := CheckRange(-1, 10); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
}

func TestCheckBuffer(t *testing.T) {
	if err := CheckBuffer(make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := CheckBuffer(make([]byte, 100)); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("want ErrBadBuffer, got %v", err)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.NoteRead(BlockSize, 10*sim.Microsecond)
	s.NoteRead(BlockSize, 30*sim.Microsecond)
	s.NoteWrite(BlockSize, 100*sim.Microsecond)
	if s.Ops() != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.AvgRead() != 20*sim.Microsecond {
		t.Fatalf("avg read = %v", s.AvgRead())
	}
	if s.AvgWrite() != 100*sim.Microsecond {
		t.Fatalf("avg write = %v", s.AvgWrite())
	}
	var o Stats
	o.NoteWrite(BlockSize, 50*sim.Microsecond)
	s.Add(o)
	if s.Writes != 2 || s.WriteBytes != 2*BlockSize {
		t.Fatalf("after Add: %+v", s)
	}
	if !strings.Contains(s.String(), "reads=2") {
		t.Fatalf("String() = %q", s.String())
	}
	var empty Stats
	if empty.AvgRead() != 0 || empty.AvgWrite() != 0 {
		t.Fatal("empty averages must be zero")
	}
}

func TestMemDevice(t *testing.T) {
	m := NewMemDevice(16, 5*sim.Microsecond)
	if m.Blocks() != 16 {
		t.Fatalf("Blocks = %d", m.Blocks())
	}
	buf := make([]byte, BlockSize)
	out := make([]byte, BlockSize)

	// Unwritten block reads zeros.
	if _, err := m.ReadBlock(3, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, buf) {
		t.Fatal("unwritten block not zero")
	}

	buf[0] = 0xAB
	d, err := m.WriteBlock(3, buf)
	if err != nil || d != 5*sim.Microsecond {
		t.Fatalf("write: %v %v", d, err)
	}
	m.ReadBlock(3, out)
	if out[0] != 0xAB {
		t.Fatal("content mismatch")
	}
	// Device must copy, not alias, caller buffers.
	buf[0] = 0xCD
	m.ReadBlock(3, out)
	if out[0] != 0xAB {
		t.Fatal("device aliased the caller's buffer")
	}

	if _, err := m.ReadBlock(16, out); err == nil {
		t.Error("out-of-range read must fail")
	}
	if _, err := m.WriteBlock(0, buf[:3]); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestMemDevicePreloadAndFill(t *testing.T) {
	m := NewMemDevice(8, 0)
	m.SetFill(func(lba int64, b []byte) { b[0] = byte(lba + 100) })
	out := make([]byte, BlockSize)
	m.ReadBlock(2, out)
	if out[0] != 102 {
		t.Fatal("fill ignored")
	}
	pre := make([]byte, BlockSize)
	pre[0] = 7
	if err := m.Preload(2, pre); err != nil {
		t.Fatal(err)
	}
	m.ReadBlock(2, out)
	if out[0] != 7 {
		t.Fatal("preload did not override fill")
	}
	if err := m.Preload(8, pre); err == nil {
		t.Error("out-of-range preload must fail")
	}
	if err := m.Preload(0, pre[:9]); err == nil {
		t.Error("short preload must fail")
	}
}
