package blockdev

import (
	"icash/internal/sim"
)

// MemDevice is a trivial in-memory device with constant access latency.
// It backs unit tests and serves as the DRAM-resident "device" in a few
// baselines; real models live in the ssd and hdd packages.
type MemDevice struct {
	blocks  int64
	latency sim.Duration
	data    map[int64][]byte
	fill    FillFunc
	Stats   Stats
}

// NewMemDevice returns a memory device with the given capacity in blocks
// and fixed per-request latency.
func NewMemDevice(blocks int64, latency sim.Duration) *MemDevice {
	return &MemDevice{blocks: blocks, latency: latency, data: make(map[int64][]byte)}
}

// Blocks returns the capacity in blocks.
func (m *MemDevice) Blocks() int64 { return m.blocks }

// ReadBlock copies the stored block (zeros if never written) into buf.
func (m *MemDevice) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := CheckRange(lba, m.blocks); err != nil {
		return 0, err
	}
	if err := CheckBuffer(buf); err != nil {
		return 0, err
	}
	if b, ok := m.data[lba]; ok {
		copy(buf, b)
	} else if m.fill != nil {
		m.fill(lba, buf)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	m.Stats.NoteRead(BlockSize, m.latency)
	return m.latency, nil
}

// WriteBlock stores a copy of buf at lba.
func (m *MemDevice) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := CheckRange(lba, m.blocks); err != nil {
		return 0, err
	}
	if err := CheckBuffer(buf); err != nil {
		return 0, err
	}
	b, ok := m.data[lba]
	if !ok {
		b = make([]byte, BlockSize)
		m.data[lba] = b
	}
	copy(b, buf)
	m.Stats.NoteWrite(BlockSize, m.latency)
	return m.latency, nil
}

var _ Device = (*MemDevice)(nil)

// Preload installs content without timing or statistics.
func (m *MemDevice) Preload(lba int64, content []byte) error {
	if err := CheckRange(lba, m.blocks); err != nil {
		return err
	}
	if err := CheckBuffer(content); err != nil {
		return err
	}
	b, ok := m.data[lba]
	if !ok {
		b = make([]byte, BlockSize)
		m.data[lba] = b
	}
	copy(b, content)
	return nil
}

var _ Preloader = (*MemDevice)(nil)

// Corrupt flips one bit of the stored content at lba, bypassing the
// write path and all statistics — the silent-corruption test hook,
// mirroring the ones on the ssd and hdd device models. The device
// itself will keep serving the rotted content without an error; only
// an integrity layer above can notice.
func (m *MemDevice) Corrupt(lba int64, bit int) error {
	if err := CheckRange(lba, m.blocks); err != nil {
		return err
	}
	b, ok := m.data[lba]
	if !ok {
		b = make([]byte, BlockSize)
		if m.fill != nil {
			m.fill(lba, b)
		}
		m.data[lba] = b
	}
	n := len(b) * 8
	bit = ((bit % n) + n) % n
	b[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// SetFill installs the initial-content oracle for unwritten blocks.
func (m *MemDevice) SetFill(f FillFunc) { m.fill = f }

var _ Filler = (*MemDevice)(nil)
