package blockdev

import "sync"

// blockPool recycles BlockSize-byte buffers across the hot I/O paths
// (core.iopath, the log encoder, the harness page cache). Storing
// *[BlockSize]byte rather than []byte keeps Get/Put free of interface
// boxing allocations.
//
// Ownership rules (DESIGN.md §11): a pooled buffer's prior contents are
// arbitrary — every acquirer must fully overwrite it before reading
// (all Device implementations fill the whole block on ReadBlock, and
// the log encoder zero-fills, so this holds by construction). A buffer
// may be handed off exactly once (stored into a struct field or
// returned); whoever holds it last calls PutBlock exactly once, or
// simply drops it — leaking to the GC is safe, double-Put is not.
var blockPool = sync.Pool{
	New: func() any { return new([BlockSize]byte) },
}

// GetBlock returns a BlockSize-byte buffer with arbitrary contents,
// drawn from the pool when one is available.
func GetBlock() []byte {
	return blockPool.Get().(*[BlockSize]byte)[:]
}

// PutBlock returns a buffer obtained from GetBlock to the pool. Buffers
// of any other shape are dropped silently, so callers that sometimes
// hold device-owned or short slices need not special-case them — but
// the caller must not retain any reference to b afterwards.
func PutBlock(b []byte) {
	if len(b) != BlockSize || cap(b) != BlockSize {
		return
	}
	blockPool.Put((*[BlockSize]byte)(b))
}
