package blockdev

import (
	"testing"

	"icash/internal/race"
)

func TestBlockPoolShape(t *testing.T) {
	b := GetBlock()
	if len(b) != BlockSize || cap(b) != BlockSize {
		t.Fatalf("GetBlock returned len %d cap %d, want %d/%d",
			len(b), cap(b), BlockSize, BlockSize)
	}
	PutBlock(b)

	// Wrong-shaped slices are dropped, not pooled: a short slice must
	// never come back from GetBlock.
	PutBlock(make([]byte, 10))
	PutBlock(nil)
	PutBlock(make([]byte, BlockSize, 2*BlockSize))
	for i := 0; i < 64; i++ {
		g := GetBlock()
		if len(g) != BlockSize || cap(g) != BlockSize {
			t.Fatalf("pool handed out a wrong-shaped buffer: len %d cap %d", len(g), cap(g))
		}
	}
}

func TestBlockPoolRecycles(t *testing.T) {
	// Not guaranteed by sync.Pool in general, but on a single goroutine
	// with no GC in between, a Put buffer is the next Get.
	b := GetBlock()
	b[0] = 0xEE
	PutBlock(b)
	g := GetBlock()
	defer PutBlock(g)
	if &g[0] != &b[0] {
		t.Skip("pool did not recycle (GC ran); nothing to assert")
	}
	if g[0] != 0xEE {
		t.Fatal("recycled buffer lost its bytes — Get must not zero")
	}
}

func TestAllocGateBlockPool(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	// Steady-state Get/Put cycles must not allocate: the pool stores
	// array pointers, so there is no boxing on either side.
	if got := testing.AllocsPerRun(100, func() {
		b := GetBlock()
		b[0]++
		PutBlock(b)
	}); got != 0 {
		t.Fatalf("Get/Put cycle allocated %v objects/op, want 0", got)
	}
}
