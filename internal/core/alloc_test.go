package core

import (
	"runtime"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/race"
	"icash/internal/sim"
)

// Alloc gates for the request hot path. The scratch arena and the
// blockdev pool remove the per-I/O 4 KB buffer churn; what remains is
// the documented allocation floor (DESIGN.md §11, EXPERIMENTS.md):
//
//   - RAM-hit reads: zero steady-state heap allocations;
//   - delta writes: the retained delta bytes themselves (delta.Encode's
//     output lives on as v.deltaRAM until the block is evicted) plus
//     bookkeeping that grows with the working set (dirty queue, log
//     metadata, map growth) — a handful of objects, not buffers.
//
// Run by the CI alloc-gate step; skipped under -race, whose
// instrumentation adds allocations.

func TestAllocGateReadRAMHit(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rig := newTestRig(t, smallConfig())
	c := rig.c
	buf := make([]byte, blockdev.BlockSize)
	content := genContent(sim.NewRand(77), 1, 0.02)
	if _, err := c.WriteBlock(7, content); err != nil {
		t.Fatal(err)
	}
	// Warm: the block is cached in RAM; steady-state reads must not
	// allocate at all. Interleave away from periodic boundaries by
	// measuring many runs — the scan/flush cadence allocates, but the
	// amortized count over 100 runs still lands well under 1 when the
	// per-read cost is zero.
	if _, err := c.ReadBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(100, func() {
		if _, err := c.ReadBlock(7, buf); err != nil {
			t.Fatal(err)
		}
	})
	if got >= 1 {
		t.Fatalf("RAM-hit ReadBlock allocated %v objects/op, want amortized < 1", got)
	}
}

// BenchmarkReadRAMHit and BenchmarkWriteDelta report the per-request
// allocation counts the gates above assert; their allocs/op columns are
// the record EXPERIMENTS.md's engine-performance appendix quotes.

func BenchmarkReadRAMHit(b *testing.B) {
	rig := newTestRig(b, smallConfig())
	c := rig.c
	buf := make([]byte, blockdev.BlockSize)
	content := genContent(sim.NewRand(77), 1, 0.02)
	if _, err := c.WriteBlock(7, content); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadBlock(7, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteDelta(b *testing.B) {
	rig := newTestRig(b, smallConfig())
	c := rig.c
	base := genContent(sim.NewRand(88), 2, 0)
	if _, err := c.WriteBlock(9, base); err != nil {
		b.Fatal(err)
	}
	r := sim.NewRand(99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base[r.Intn(len(base))] = byte(r.Uint64())
		if _, err := c.WriteBlock(9, base); err != nil {
			b.Fatal(err)
		}
	}
}

// TestAllocGateCommitSteadyState gates the group-commit path at zero
// steady-state heap allocations: with the staging area, part scratch,
// meta slices, per-transaction block lists and the pack buffer all
// pooled, a flush that drains one dirty delta into a durable
// transaction must not touch the heap. The dirtying WriteBlock runs
// outside the measured window (its retained delta is the write path's
// documented floor); only Flush is metered, via the runtime's malloc
// counter.
func TestAllocGateCommitSteadyState(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rig := newTestRig(t, smallConfig())
	c := rig.c
	base := genContent(sim.NewRand(88), 2, 0)
	if _, err := c.WriteBlock(9, base); err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(99)
	step := func() error {
		base[r.Intn(len(base))] = byte(r.Uint64())
		if _, err := c.WriteBlock(9, base); err != nil {
			return err
		}
		return c.Flush()
	}
	// Warm-up: fill the scratch pools, lazily allocate the log region's
	// device blocks, and let the transaction-recycling cycle reach its
	// steady state (a dead transaction's block list returns to the pool
	// only when a later commit reuses its block).
	for i := 0; i < 100; i++ {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	var mallocs uint64
	const runs = 200
	for i := 0; i < runs; i++ {
		base[r.Intn(len(base))] = byte(r.Uint64())
		if _, err := c.WriteBlock(9, base); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&before)
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		mallocs += after.Mallocs - before.Mallocs
	}
	if got := float64(mallocs) / runs; got >= 0.05 {
		t.Fatalf("steady-state commit allocated %v objects over %d flushes (%.3f/op), want 0",
			mallocs, runs, got)
	}
}

// BenchmarkCommitFlush reports the commit path's time and allocs/op:
// one dirty delta drained per flush into a one-part transaction. Its
// allocs/op column is the record the gate above asserts at zero...
// minus the write's retained delta, which rides along here.
func BenchmarkCommitFlush(b *testing.B) {
	rig := newTestRig(b, smallConfig())
	c := rig.c
	base := genContent(sim.NewRand(88), 2, 0)
	if _, err := c.WriteBlock(9, base); err != nil {
		b.Fatal(err)
	}
	r := sim.NewRand(99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base[r.Intn(len(base))] = byte(r.Uint64())
		if _, err := c.WriteBlock(9, base); err != nil {
			b.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAllocGateWriteDeltaFloor(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rig := newTestRig(t, smallConfig())
	c := rig.c
	base := genContent(sim.NewRand(88), 2, 0)
	if _, err := c.WriteBlock(9, base); err != nil {
		t.Fatal(err)
	}
	// Small mutations of one block: every write re-derives a delta, so
	// the floor is the retained delta buffer (delta.Encode output) plus
	// amortized queue/log bookkeeping. Gate it at a small constant so a
	// regression back to fresh-4KB-buffers-per-I/O (several buffers per
	// op before this pool existed) fails loudly.
	r := sim.NewRand(99)
	i := 0
	got := testing.AllocsPerRun(200, func() {
		base[r.Intn(len(base))] = byte(r.Uint64())
		i++
		if _, err := c.WriteBlock(9, base); err != nil {
			t.Fatal(err)
		}
	})
	if got > 8 {
		t.Fatalf("delta WriteBlock allocated %v objects/op, want <= 8 (retained delta + bookkeeping)", got)
	}
}
