package core

import (
	"fmt"

	"icash/internal/blockdev"
)

// AuditJournal re-reads the whole delta-log region from the HDD and
// cross-checks the on-disk journal against the controller's in-memory
// index. It is the durability oracle's structural half: beyond "the
// right bytes came back", it proves the transactional invariants the
// group-commit design promises actually hold on the media.
//
// Checked relations:
//   - every live logIndex record points into an on-disk transaction
//     that is complete (all parts present, CRC-valid, commit marker
//     seen) — atomicity: no reader-visible record can depend on a
//     partially landed batch;
//   - the disk block backing a live record carries the transaction id
//     the controller's reuse bookkeeping (blockTxn) has for it, in the
//     current epoch or an earlier one;
//   - the record itself (lba, seq, kind) is present in that decoded
//     block — the index never points at bytes that are not there.
//
// It returns the number of incomplete transactions left on the media.
// Immediately after Recover, before any new commit reuses their
// blocks, that count equals Stats.TxnsDiscardedOnReplay; the crash
// harness asserts exactly that.
func (c *Controller) AuditJournal() (int, error) {
	asm := newJournalAsm()
	buf := make([]byte, blockdev.BlockSize)
	for b := int64(0); b < c.cfg.LogBlocks; b++ {
		if c.badLogBlocks[b] {
			continue
		}
		if _, err := c.hddRead(c.cfg.VirtualBlocks+b, buf); err != nil {
			return 0, fmt.Errorf("core: audit read log block %d: %w", b, err)
		}
		asm.addBlock(b, buf)
	}

	incomplete := 0
	for _, t := range asm.txns {
		if !t.complete() {
			incomplete++
		}
	}

	for lba, rec := range c.logIndex {
		sb, ok := asm.blocks[rec.block]
		if !ok {
			return incomplete, fmt.Errorf("core: audit: live record for lba %d in undecodable log block %d", lba, rec.block)
		}
		t := asm.txns[sb.hdr.txn]
		if t == nil || !t.complete() {
			return incomplete, fmt.Errorf("core: audit: live record for lba %d rides incomplete txn %d (block %d)",
				lba, sb.hdr.txn, rec.block)
		}
		owner, tracked := c.blockTxn[rec.block]
		if !tracked {
			return incomplete, fmt.Errorf("core: audit: live record for lba %d in untracked log block %d", lba, rec.block)
		}
		if owner != sb.hdr.txn {
			return incomplete, fmt.Errorf("core: audit: log block %d holds txn %d on disk, controller tracks txn %d",
				rec.block, sb.hdr.txn, owner)
		}
		found := false
		for i := range sb.entries {
			e := &sb.entries[i]
			if e.lba == lba && e.seq == rec.seq && e.kind == rec.kind {
				found = true
				break
			}
		}
		if !found {
			return incomplete, fmt.Errorf("core: audit: record for lba %d (seq %d kind %d) absent from disk block %d",
				lba, rec.seq, rec.kind, rec.block)
		}
	}

	// Every transaction the reuse bookkeeping still tracks with live
	// records must be wholly on the media.
	for txn, live := range c.txnLive {
		if live == 0 {
			continue
		}
		t := asm.txns[txn]
		if t == nil || !t.complete() {
			return incomplete, fmt.Errorf("core: audit: txn %d has %d live records but is not complete on disk", txn, live)
		}
	}
	return incomplete, nil
}
