// Package core implements the I-CASH controller: the "intelligent
// algorithm" that couples an SSD holding seldom-changed reference blocks
// with an HDD holding a log of content deltas (paper §3–§4).
//
// The controller exposes a virtual disk (blockdev.Device). Underneath:
//
//   - the HDD carries a primary region (home location of every virtual
//     block) followed by a circular delta-log region;
//   - the SSD carries reference blocks, selected by Heatmap popularity,
//     plus occasional write-through blocks whose deltas exceeded the
//     threshold (paper §5.3);
//   - controller RAM buffers deltas (64-byte segment granularity) and
//     caches full data blocks.
//
// Reads are served by combining an SSD reference with a RAM- or
// log-resident delta; writes are served by delta-encoding against the
// reference into RAM and later packing many deltas into one sequential
// log write — one HDD operation accomplishing many I/Os.
package core

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Config parameterizes a Controller. NewDefaultConfig supplies the
// paper's prototype constants.
type Config struct {
	// VirtualBlocks is the size of the exposed virtual disk in blocks.
	VirtualBlocks int64

	// SSDBlocks is the reference-store capacity in blocks (the paper
	// typically provisions ~10% of the data-set size).
	SSDBlocks int64

	// DeltaRAMBytes is the RAM budget for delta segments.
	DeltaRAMBytes int64
	// DataRAMBytes is the RAM budget for cached full data blocks.
	DataRAMBytes int64
	// MetadataBlocks caps tracked virtual blocks (LRU-managed). Zero
	// derives a default from the RAM budgets.
	MetadataBlocks int

	// ScanPeriod is the number of I/Os between similarity scans (paper:
	// 2,000).
	ScanPeriod int
	// ScanWindow is how many blocks from the head of the LRU queue each
	// scan examines (paper: 4,000).
	ScanWindow int
	// MaxSigDistance is the maximum number of differing sub-signatures
	// for two blocks to be considered similarity candidates.
	MaxSigDistance int

	// DeltaThreshold is the maximum stored delta size in bytes; larger
	// deltas cause a direct write instead (paper: 2,048).
	DeltaThreshold int
	// SegmentSize is the delta allocation granularity (paper: 64-byte
	// segments).
	SegmentSize int

	// LogBlocks is the HDD delta-log region size in blocks.
	LogBlocks int64
	// FlushDirtyBytes triggers a delta flush when this many dirty delta
	// bytes accumulate. The flush interval is the paper's tunable
	// reliability/performance knob (§3.3).
	FlushDirtyBytes int64
	// FlushPeriodOps flushes dirty deltas at least every this many I/Os
	// regardless of volume (0 disables periodic flushing).
	FlushPeriodOps int

	// VMImageBlocks partitions the virtual disk into equal-sized VM
	// images (the prototype derives a VM identifier from the most
	// significant byte of the virtual disk address, §4.1; here the image
	// size plays that role so addresses stay within the disk). Blocks at
	// the same offset in different images are first-load similarity
	// candidates. Zero disables VM-aware pairing.
	VMImageBlocks int64

	// HeatmapDecayOps halves all heatmap counters every this many I/Os
	// (0 disables decay).
	HeatmapDecayOps int

	// ReserveSlots keeps this many SSD slots out of reach of reference
	// installation so the write-through path (§5.3) always has room for
	// incompressible writes. Zero derives SSDBlocks/8.
	ReserveSlots int

	// MaxRetries bounds retries of transient device errors per device
	// operation. Zero derives the default (3); negative disables
	// retrying entirely.
	MaxRetries int
	// RetryBackoff is the simulated-clock delay charged before the
	// first retry of a transient error; it doubles on each further
	// attempt. Zero derives the default (500 µs).
	RetryBackoff sim.Duration

	// HedgeDeadline is the per-read deadline on SSD reference fetches:
	// when a foreground slot read's device service time exceeds it, the
	// controller issues a hedge read against the slot's CRC-verified HDD
	// home backup and serves whichever copy completes first — the slow
	// request is cancelled, not waited out. A healthy SSD read is tens
	// of microseconds, so the default (2 ms) only fires under fail-slow
	// conditions (GC stalls, brownout, freeze). Zero derives the
	// default; negative disables hedging and quarantine bypass.
	HedgeDeadline sim.Duration
	// OpDeadline bounds the total time (attempts plus backoff) one
	// device operation may accumulate in the retry loop before the
	// controller gives up instead of backing off again. Zero derives
	// the default (50 ms — above any healthy retry sequence); negative
	// disables the bound.
	OpDeadline sim.Duration
}

// NewDefaultConfig returns the prototype constants from the paper for a
// virtual disk of the given size, with SSD and RAM sized by the caller.
func NewDefaultConfig(virtualBlocks, ssdBlocks, deltaRAMBytes, dataRAMBytes int64) Config {
	return Config{
		VirtualBlocks:   virtualBlocks,
		SSDBlocks:       ssdBlocks,
		DeltaRAMBytes:   deltaRAMBytes,
		DataRAMBytes:    dataRAMBytes,
		ScanPeriod:      2000,
		ScanWindow:      4000,
		MaxSigDistance:  4,
		DeltaThreshold:  2048,
		SegmentSize:     64,
		LogBlocks:       16384, // 64 MB log region
		FlushDirtyBytes: 1 << 20,
		FlushPeriodOps:  4096,
		VMImageBlocks:   0,
		HeatmapDecayOps: 1 << 20,
	}
}

// validate normalizes cfg and reports configuration errors.
func (c *Config) validate() error {
	if c.VirtualBlocks <= 0 {
		return fmt.Errorf("core: VirtualBlocks must be positive")
	}
	if c.SSDBlocks <= 0 {
		return fmt.Errorf("core: SSDBlocks must be positive")
	}
	if c.SegmentSize <= 0 {
		c.SegmentSize = 64
	}
	if c.DeltaThreshold <= 0 {
		c.DeltaThreshold = 2048
	}
	if c.DeltaThreshold > blockdev.BlockSize {
		return fmt.Errorf("core: DeltaThreshold %d exceeds block size", c.DeltaThreshold)
	}
	if c.ScanPeriod <= 0 {
		c.ScanPeriod = 2000
	}
	if c.ScanWindow <= 0 {
		c.ScanWindow = 4000
	}
	if c.MaxSigDistance < 0 {
		c.MaxSigDistance = 0
	}
	if c.LogBlocks < 8 {
		c.LogBlocks = 8
	}
	if c.MetadataBlocks <= 0 {
		// Default: enough metadata to cover the data RAM, the delta RAM
		// at average delta occupancy, and the reference store.
		est := c.DataRAMBytes/blockdev.BlockSize + c.DeltaRAMBytes/256 + c.SSDBlocks
		if est < 1024 {
			est = 1024
		}
		c.MetadataBlocks = int(est)
	}
	if c.FlushDirtyBytes <= 0 {
		c.FlushDirtyBytes = 1 << 20
	}
	if c.ReserveSlots <= 0 {
		c.ReserveSlots = int(c.SSDBlocks / 8)
		if c.ReserveSlots < 4 {
			c.ReserveSlots = 4
		}
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * sim.Microsecond
	}
	if c.HedgeDeadline == 0 {
		c.HedgeDeadline = 2 * sim.Millisecond
	}
	if c.OpDeadline == 0 {
		c.OpDeadline = 50 * sim.Millisecond
	}
	return nil
}
