package core

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/ram"
	"icash/internal/sig"
	"icash/internal/sim"
)

// refSlot is one SSD block holding immutable reference content. Virtual
// blocks attach to a slot and carry a delta against its content; the
// slot's content never changes while any block is attached, which keeps
// every associate decodable (a written "reference block" keeps its SSD
// data and accumulates its own delta, paper §4.3).
type refSlot struct {
	index  int64         // SSD block index
	refcnt int           // attached virtual blocks
	donor  int64         // lba whose content was installed, -1 when unknown
	sigv   sig.Signature // signature of the slot content
	crc    uint32        // CRC32 of the slot content (repair validation)
	// homeLBA is the HDD home location holding a backup of the slot
	// content (the donor's home at install time), or -1. scrubSlot
	// re-fetches damaged reference content from here; the CRC guards
	// against the backup having been overwritten since.
	homeLBA int64
}

// Controller is the I-CASH device: an SSD + HDD pair coupled by the
// similarity/delta algorithm. It implements blockdev.Device. It is not
// safe for concurrent use; the simulation is single-threaded.
type Controller struct {
	cfg   Config
	clock *sim.Clock
	cpu   *cpumodel.Accountant
	costs cpumodel.Costs

	ssd blockdev.Device // reference store, cfg.SSDBlocks
	hdd blockdev.Device // primary region + delta-log region

	heat   *sig.Heatmap
	blocks map[int64]*vblock
	lru    lruList

	deltaBudget *ram.Budget
	dataBudget  *ram.Budget

	slots map[int64]*refSlot // SSD index -> live slot
	// slotOrder lists live slots in allocation order for deterministic
	// similarity search (map iteration order would not be reproducible).
	slotOrder []*refSlot
	freeSlots []int64
	// quarantine holds freed SSD slots that may not be reused until the
	// next log flush commits the tombstones that detached them.
	quarantine []int64
	// retiredSlots lists SSD blocks permanently removed from circulation
	// after unrecoverable program failures (see resilience.go).
	retiredSlots []int64

	// ssdLost marks HDD-only degraded mode: the SSD failed wholesale and
	// every request bypasses it (see degradeSSD).
	ssdLost bool

	// ssdQuarantined marks soft quarantine of a fail-slow SSD: reads
	// prefer the HDD home backup and writes skip similarity detection
	// and write-through, but no state is salvaged — clearing the flag
	// re-admits the device intact (see SetSSDQuarantined).
	ssdQuarantined bool
	// quarantineReads counts slot reads arriving while quarantined;
	// every canaryInterval-th one probes the SSD so the detector keeps
	// receiving samples and can eventually re-admit the device.
	quarantineReads int64

	// lastAttemptDur is the device service time of the most recent
	// single attempt inside withRetry, excluding backoff and earlier
	// failed attempts — the hedging decision keys on this so a
	// transient-retry detour does not masquerade as a slow device.
	lastAttemptDur sim.Duration

	// badLogBlocks marks HDD log blocks retired after write failures;
	// the flush frontier skips them.
	badLogBlocks map[int64]bool

	// dirtyQ is the FIFO of virtual blocks with unflushed deltas or
	// pending control records, in write order (flush packs in this
	// order, preserving the temporal grouping of §3.1).
	dirtyQ     []*vblock
	dirtyBytes int64
	// control holds pending durable control records (tombstones and SSD
	// pointers) awaiting the next flush.
	control []logEntry

	logHead int64 // next log block (index within the log region)
	logSeq  uint64
	// logIndex maps each LBA to its newest durable log record; recovery
	// replays exactly this relation. In-RAM state supersedes it while
	// the controller is running.
	logIndex map[int64]logRec
	// logMeta holds per-log-block entry metadata so the compactor can
	// decide liveness without reading dead blocks from disk.
	logMeta map[int64][]entryMeta
	// perLba counts durable records per LBA across the whole log; a
	// tombstone may be dropped only when it is the last record.
	perLba map[int64]int

	// nextTxn hands out journal transaction IDs. IDs are never reused,
	// so a half-overwritten old transaction can never alias a new one.
	nextTxn uint64
	// logEpoch stamps every commit record written by this controller
	// incarnation; recovery bumps it past everything it saw on disk.
	logEpoch uint64
	// blockTxn maps each tracked log block to the transaction whose
	// commit record it carries.
	blockTxn map[int64]uint64
	// txnLive counts live (newest-for-their-LBA) records per tracked
	// transaction. A log block may be overwritten only when its whole
	// transaction has no live records left: txn-granular reuse keeps
	// every on-disk transaction either wholly intact or wholly dead,
	// which is what makes all-or-nothing replay safe.
	txnLive map[uint64]int
	// txnBlocks lists the log blocks of each tracked transaction.
	txnBlocks map[uint64][]int64
	// metaPool recycles entryMeta slices between packed log blocks.
	metaPool [][]entryMeta
	// txnBlocksPool recycles the per-transaction block lists, so the
	// steady-state commit path (one new transaction per flush) stays
	// allocation-free.
	txnBlocksPool [][]int64
	// pendingScratch, partScratch and rescueScratch are the commit
	// path's reusable staging areas (alloc-gated: steady-state commits
	// reuse them instead of allocating).
	pendingScratch []logEntry
	partScratch    []txnPart
	rescueScratch  []logEntry
	// shedScratch is shedLogPressure's reusable victim batch: evictions
	// are collected in LRU order, then written back in home-LBA order so
	// the HDD sweeps them with short forward seeks.
	shedScratch []*vblock
	// committing guards against re-entrant flushes: eviction inside a
	// commit can hit RAM pressure whose reclaim path asks for another
	// flush, but the commit buffer is already snapshotted — a nested
	// drain would interleave quarantine releases and grooming with the
	// half-finished outer commit.
	committing bool

	// sameOffset indexes blocks by VM-image offset for first-load
	// similarity pairing (paper §4.2 case 1).
	sameOffset map[int64][]*vblock

	// sums maps each LBA to the CRC32-C of its current content — the
	// end-to-end integrity checksum, set on every successful host write
	// and checked at every layer crossing (see integrity.go). An LBA
	// leaves the map when its content intentionally regresses to a
	// stale copy (accounted-loss fallbacks) or becomes indeterminate
	// (failed write).
	sums map[int64]uint32
	// poisoned marks LBAs whose every copy failed verification: reads
	// fail loudly with ErrCorruption instead of serving wrong bytes,
	// until a full overwrite installs known-good content again.
	poisoned map[int64]bool
	// corruptionHook, when set, observes every checksum-mismatch
	// detection (device name + device-local address). The chaos harness
	// uses it to measure detection latency against injection times.
	corruptionHook func(dev string, devLBA int64)

	// Background scrubber state (see scrub.go). scrub.Interval <= 0
	// disables scrubbing entirely.
	scrub           ScrubConfig
	scrubArmed      bool
	scrubNext       sim.Time
	scrubSlotCursor int64
	scrubHomeCursor int64

	// liveLogBytes approximates the payload bytes of live delta records
	// in the log; shedding keeps it below the log capacity.
	liveLogBytes int64

	opCount int64

	// pinned is the block currently being served by ReadBlock or
	// WriteBlock; every eviction and reclamation path skips it so that
	// budget pressure can never drop the in-flight request's state.
	pinned *vblock

	// scratch holds the pooled buffers handed out by getScratch during
	// the current host request; recycled wholesale at the next request
	// entry (see scratch.go).
	scratch [][]byte

	// Stats is externally visible accounting.
	Stats Stats
}

// New builds a controller over the given SSD and HDD devices. The HDD
// must be at least cfg.VirtualBlocks+cfg.LogBlocks large; the SSD at
// least cfg.SSDBlocks.
func New(cfg Config, ssdDev, hddDev blockdev.Device, clock *sim.Clock, cpu *cpumodel.Accountant) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if ssdDev.Blocks() < cfg.SSDBlocks {
		return nil, fmt.Errorf("core: SSD has %d blocks, config needs %d", ssdDev.Blocks(), cfg.SSDBlocks)
	}
	if hddDev.Blocks() < cfg.VirtualBlocks+cfg.LogBlocks {
		return nil, fmt.Errorf("core: HDD has %d blocks, need %d (primary) + %d (log)",
			hddDev.Blocks(), cfg.VirtualBlocks, cfg.LogBlocks)
	}
	c := &Controller{
		cfg:          cfg,
		clock:        clock,
		cpu:          cpu,
		costs:        cpumodel.DefaultCosts(),
		ssd:          ssdDev,
		hdd:          hddDev,
		heat:         sig.NewHeatmap(),
		blocks:       make(map[int64]*vblock),
		deltaBudget:  ram.NewBudget(cfg.DeltaRAMBytes),
		dataBudget:   ram.NewBudget(cfg.DataRAMBytes),
		slots:        make(map[int64]*refSlot),
		badLogBlocks: make(map[int64]bool),
		logIndex:     make(map[int64]logRec),
		logMeta:      make(map[int64][]entryMeta),
		perLba:       make(map[int64]int),
		nextTxn:      1,
		logEpoch:     1,
		blockTxn:     make(map[int64]uint64),
		txnLive:      make(map[uint64]int),
		txnBlocks:    make(map[uint64][]int64),
		sameOffset:   make(map[int64][]*vblock),
		sums:         make(map[int64]uint32),
		poisoned:     make(map[int64]bool),
	}
	c.freeSlots = make([]int64, 0, cfg.SSDBlocks)
	for i := cfg.SSDBlocks - 1; i >= 0; i-- {
		c.freeSlots = append(c.freeSlots, i)
	}
	return c, nil
}

// Blocks returns the virtual disk capacity.
func (c *Controller) Blocks() int64 { return c.cfg.VirtualBlocks }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Heatmap exposes the popularity table for inspection tools and tests.
func (c *Controller) Heatmap() *sig.Heatmap { return c.heat }

// DeltaRAMUsed returns the current delta-buffer occupancy in bytes.
func (c *Controller) DeltaRAMUsed() int64 { return c.deltaBudget.Used() }

// segBytes rounds a delta size up to segment granularity; deltas are
// managed as linked 64-byte segments (paper §4.3).
func (c *Controller) segBytes(n int) int64 {
	seg := int64(c.cfg.SegmentSize)
	return (int64(n) + seg - 1) / seg * seg
}

// offsetKey maps an LBA to its VM-image offset key, or -1 when VM-aware
// pairing is disabled.
func (c *Controller) offsetKey(lba int64) int64 {
	if c.cfg.VMImageBlocks <= 0 {
		return -1
	}
	return lba % c.cfg.VMImageBlocks
}

// KindCounts snapshots the virtual-block population.
func (c *Controller) KindCounts() KindCounts {
	var k KindCounts
	for v := c.lru.head; v != nil; v = v.next {
		switch v.kind {
		case Reference:
			k.Reference++
		case Associate:
			k.Associate++
		default:
			k.Independent++
		}
	}
	return k
}

// ---------------------------------------------------------------------
// Virtual block lifecycle
// ---------------------------------------------------------------------

// getOrLoad returns the vblock for lba, loading it from the HDD home
// location on a miss (forWrite skips the home read: a full-block write
// overwrites everything). The returned latency is the synchronous cost.
func (c *Controller) getOrLoad(lba int64, forWrite bool) (*vblock, sim.Duration, error) {
	if v, ok := c.blocks[lba]; ok {
		return v, 0, nil
	}
	if err := c.ensureMetadata(); err != nil {
		return nil, 0, err
	}
	v := &vblock{lba: lba, hddHome: true}
	var lat sim.Duration
	if !forWrite {
		// Pooled: cacheData copies and sig.Compute only reads, so the
		// buffer is dead by the time the deferred Put runs.
		buf := blockdev.GetBlock()
		defer blockdev.PutBlock(buf)
		d, err := c.readHomeVerified(lba, buf)
		if err != nil {
			return nil, 0, err
		}
		lat += d
		c.Stats.ReadHDDMisses++
		if err := c.cacheData(v, buf, false); err != nil {
			return nil, 0, err
		}
		v.sigv = sig.Compute(buf)
		c.cpu.ChargeStorage(c.costs.Signature)
	}
	c.blocks[lba] = v
	c.lru.pushFront(v)
	if key := c.offsetKey(lba); key >= 0 {
		c.sameOffset[key] = append(c.sameOffset[key], v)
	}
	// First-load similarity: look for an attached block at the same
	// VM-image offset and try to share its reference (paper §4.2).
	if !forWrite && v.dataRAM != nil {
		c.pinned = v // pairing may trigger reclamation
		c.tryFirstLoadPair(v)
	}
	return v, lat, nil
}

// dropVBlock removes v from all controller indexes and releases its RAM.
// The caller must already have made v's content durable.
func (c *Controller) dropVBlock(v *vblock) {
	v.dead = true
	v.inDirty = false // pending flush entries for v are skipped
	c.releaseData(v)
	c.releaseDelta(v)
	if v.slotRef != nil {
		c.detachSlot(v)
	}
	c.lru.remove(v)
	delete(c.blocks, v.lba)
	if key := c.offsetKey(v.lba); key >= 0 {
		list := c.sameOffset[key]
		for i, b := range list {
			if b == v {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(c.sameOffset, key)
		} else {
			c.sameOffset[key] = list
		}
	}
	c.Stats.EvictVBlocks++
}

// ---------------------------------------------------------------------
// RAM budget management
// ---------------------------------------------------------------------

// cacheData installs content (copied) as v's RAM data block, evicting
// colder data blocks if needed. dirty marks the copy newer than any
// durable copy.
func (c *Controller) cacheData(v *vblock, content []byte, dirty bool) error {
	if v.dataRAM == nil {
		for !c.dataBudget.Reserve(blockdev.BlockSize) {
			if !c.evictOneDataRAM(v) {
				// Budget too small to hold even this block: serve
				// without caching. Dirty content must not be dropped.
				if dirty {
					if err := c.writeHome(v, content); err != nil {
						return err
					}
				}
				return nil
			}
		}
		// Pooled: releaseData is the matching Put. The copy below fully
		// overwrites whatever the recycled buffer held.
		v.dataRAM = blockdev.GetBlock()
	}
	copy(v.dataRAM, content)
	v.dataDirty = dirty
	return nil
}

// releaseData drops v's RAM data block (caller handles dirtiness) and
// returns the pooled buffer. Callers guarantee no slice aliasing
// v.dataRAM is used after this point — the only materialize outputs
// that alias it belong to the current request, and every release site
// runs after that content has been consumed.
func (c *Controller) releaseData(v *vblock) {
	if v.dataRAM != nil {
		blockdev.PutBlock(v.dataRAM)
		v.dataRAM = nil
		c.dataBudget.Release(blockdev.BlockSize)
	}
}

// evictOneDataRAM frees one cached data block, searching from the LRU
// tail (paper's data-block replacement, §4.3). keep is exempt. Reports
// whether anything was freed.
func (c *Controller) evictOneDataRAM(keep *vblock) bool {
	for v := c.lru.tail; v != nil; v = v.prev {
		if v == keep || v == c.pinned || v.dataRAM == nil {
			continue
		}
		if v.dataDirty {
			// Only copy: make it durable at the home location first.
			if err := c.writeHome(v, v.dataRAM); err != nil {
				continue
			}
		}
		c.releaseData(v)
		c.Stats.EvictDataRAM++
		return true
	}
	return false
}

// storeDelta installs enc as v's RAM delta, adjusting the segment-based
// budget and the dirty queue. Reports whether the budget could
// accommodate it.
func (c *Controller) storeDelta(v *vblock, enc []byte, dirty bool) bool {
	return c.storeDeltaOpt(v, enc, dirty, reclaimFull)
}

// storeDeltaBestEffort is storeDelta with only recursion-safe
// reclamation: it may drop cold clean deltas that also live in the log,
// but never evicts blocks (no device I/O, no recursion). Log-prefetch
// and recovery paths use it.
func (c *Controller) storeDeltaBestEffort(v *vblock, enc []byte, dirty bool) bool {
	return c.storeDeltaOpt(v, enc, dirty, reclaimDropOnly)
}

// reclaim modes for storeDeltaOpt.
type reclaimMode uint8

const (
	reclaimFull reclaimMode = iota
	reclaimDropOnly
)

func (c *Controller) storeDeltaOpt(v *vblock, enc []byte, dirty bool, mode reclaimMode) bool {
	newCost := c.segBytes(len(enc))
	// Reclamation can reach back into v itself: a journal commit groomed
	// mid-loop may re-cache v's own logged delta via loadDeltaBlock, or
	// drop the one it held. The cost v currently holds must therefore be
	// recomputed on every pass — sizing the reservation against an entry
	// snapshot leaks budget when the install below replaces a delta that
	// was charged after the snapshot.
	var oldCost int64
	for {
		oldCost = 0
		if v.deltaRAM != nil {
			oldCost = c.segBytes(len(v.deltaRAM))
		}
		if newCost <= oldCost {
			c.deltaBudget.Release(oldCost - newCost)
			break
		}
		if c.deltaBudget.Reserve(newCost - oldCost) {
			break
		}
		var ok bool
		switch mode {
		case reclaimDropOnly:
			ok = c.dropOneCleanDelta(v)
		default:
			ok = c.reclaimDeltaRAM(v)
		}
		if !ok {
			return false
		}
	}
	wasDirty := v.deltaDirty
	v.deltaRAM = enc
	v.deltaCRC = blockdev.ContentCRC(enc)
	v.deltaDirty = dirty
	if dirty {
		c.dirtyBytes += int64(len(enc))
		if wasDirty {
			// Replaced a dirty delta: its bytes were already queued;
			// adjust the outstanding estimate.
			c.dirtyBytes -= oldCost // approximation: remove old segment cost
			if c.dirtyBytes < 0 {
				c.dirtyBytes = 0
			}
		}
		if !v.inDirty {
			v.inDirty = true
			c.dirtyQ = append(c.dirtyQ, v)
		}
	}
	return true
}

// releaseDelta drops v's RAM delta and its budget reservation.
func (c *Controller) releaseDelta(v *vblock) {
	if v.deltaRAM == nil {
		return
	}
	c.deltaBudget.Release(c.segBytes(len(v.deltaRAM)))
	v.deltaRAM = nil
	v.deltaDirty = false
}

// reclaimDeltaRAM frees delta-buffer space under pressure: first drop a
// clean RAM delta that also lives in the log (cheap), then flush dirty
// deltas to the log, then fall back to evicting a whole delta-carrying
// virtual block (the paper's delta replacement, §4.3). keep is exempt.
// dropOneCleanDelta frees delta RAM by discarding, from the LRU tail, a
// clean delta whose durable copy lives in the log. Pure RAM operation:
// no device I/O, safe from any context.
func (c *Controller) dropOneCleanDelta(keep *vblock) bool {
	for v := c.lru.tail; v != nil; v = v.prev {
		if v == keep || v == c.pinned || v.deltaRAM == nil || v.deltaDirty || !c.deltaLogged(v) {
			continue
		}
		c.releaseDelta(v)
		c.Stats.EvictDeltaRAM++
		return true
	}
	return false
}

func (c *Controller) reclaimDeltaRAM(keep *vblock) bool {
	if c.dropOneCleanDelta(keep) {
		return true
	}
	if c.dirtyBytes > 0 || len(c.dirtyQ) > 0 {
		before := c.deltaBudget.Used()
		if err := c.commitJournal(); err == nil {
			// Flushing marks deltas clean; retry the drop pass.
			if c.dropOneCleanDelta(keep) || c.deltaBudget.Used() < before {
				return true
			}
		}
	}
	// Last resort: evict a whole non-reference block carrying a delta.
	for v := c.lru.tail; v != nil; v = v.prev {
		if v == keep || v == c.pinned || v.kind == Reference || (v.deltaRAM == nil && !c.deltaLogged(v)) {
			continue
		}
		if err := c.evictToHome(v); err == nil {
			return true
		}
	}
	return false
}

// deltaLogged reports whether the newest durable log record for v is a
// delta record (i.e. v's clean RAM delta can be dropped and reloaded).
func (c *Controller) deltaLogged(v *vblock) bool {
	rec, ok := c.logIndex[v.lba]
	return ok && rec.kind == entryDelta
}

// ensureMetadata keeps the tracked-block population within bounds by
// evicting from the LRU tail, skipping reference blocks (the paper's
// virtual-block replacement, §4.3).
func (c *Controller) ensureMetadata() error {
	for c.lru.len() >= c.cfg.MetadataBlocks {
		var victim *vblock
		for v := c.lru.tail; v != nil; v = v.prev {
			if v != c.pinned && v.kind != Reference {
				victim = v
				break
			}
		}
		if victim == nil {
			// Everything is a reference; demote the coldest.
			for v := c.lru.tail; v != nil; v = v.prev {
				if v != c.pinned {
					victim = v
					break
				}
			}
			if victim == nil {
				return nil
			}
		}
		if err := c.evictToHome(victim); err != nil {
			return err
		}
	}
	return nil
}

// evictToHome makes v's current content durable at its HDD home
// location, appends a tombstone so recovery ignores stale log entries,
// and drops the block's metadata.
func (c *Controller) evictToHome(v *vblock) error {
	if !v.hddHome || v.dataDirty {
		content, _, _, err := c.materialize(v, true)
		if err != nil {
			return err
		}
		if err := c.writeHome(v, content); err != nil {
			return err
		}
	}
	// A tombstone tells recovery the home location is authoritative,
	// superseding any durable or pending delta/pointer record.
	rec, hasRec := c.logIndex[v.lba]
	dbg(v.lba, "evictToHome kind=%v ssdCur=%v hasRec=%v recKind=%d dirty=%v", v.kind, v.ssdCurrent, hasRec, rec.kind, v.deltaDirty)
	if (hasRec && rec.kind != entryTombstone) || v.ssdCurrent || v.deltaDirty || v.inDirty {
		c.queueControl(logEntry{kind: entryTombstone, lba: v.lba})
	}
	c.Stats.WritebacksHome++
	c.dropVBlock(v)
	return nil
}

// writeHome writes content to v's HDD home location (background time).
func (c *Controller) writeHome(v *vblock, content []byte) error {
	d, err := c.hddWrite(v.lba, content)
	if err != nil {
		return fmt.Errorf("core: home write lba %d: %w", v.lba, err)
	}
	c.Stats.BackgroundHDDTime += d
	v.hddHome = true
	v.dataDirty = false
	return nil
}

// debugLBA enables targeted tracing of one LBA's state transitions in
// tests; -1 disables.
var debugLBA int64 = -1

func dbg(lba int64, format string, args ...interface{}) {
	if lba == debugLBA {
		fmt.Printf("[dbg %d] "+format+"\n", append([]interface{}{lba}, args...)...)
	}
}

// ResetStats zeroes the controller's accumulated statistics; internal
// state (references, deltas, LRU) is untouched. Harnesses call it after
// an unmeasured populate phase.
func (c *Controller) ResetStats() { c.Stats = Stats{} }
