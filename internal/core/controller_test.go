package core

import (
	"bytes"
	"fmt"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// testRig bundles a controller with in-memory devices for fast tests.
type testRig struct {
	c     *Controller
	ssd   *blockdev.MemDevice
	hdd   *blockdev.MemDevice
	clock *sim.Clock
}

func newTestRig(t testing.TB, cfg Config) *testRig {
	t.Helper()
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
	hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
	c, err := New(cfg, ssd, hdd, clock, cpu)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &testRig{c: c, ssd: ssd, hdd: hdd, clock: clock}
}

func smallConfig() Config {
	cfg := NewDefaultConfig(4096, 256, 64<<10, 256<<10)
	cfg.ScanPeriod = 100
	cfg.ScanWindow = 400
	cfg.LogBlocks = 64
	cfg.FlushPeriodOps = 128
	cfg.FlushDirtyBytes = 32 << 10
	return cfg
}

// genContent produces a block from one of nFamilies base patterns with
// mutation fraction applied, modelling the paper's content locality.
func genContent(r *sim.Rand, family int, mutFrac float64) []byte {
	b := make([]byte, blockdev.BlockSize)
	base := sim.NewRand(uint64(family) * 977)
	base.Bytes(b)
	nMut := int(mutFrac * float64(len(b)))
	for i := 0; i < nMut; i++ {
		b[r.Intn(len(b))] = byte(r.Uint64())
	}
	return b
}

// TestReadYourWrites drives a mixed, content-local workload against the
// controller and checks every read against a shadow model.
func TestReadYourWrites(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	r := sim.NewRand(42)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)

	const lbaSpace = 1024
	for op := 0; op < 20000; op++ {
		lba := int64(r.Intn(lbaSpace))
		if r.Float64() < 0.4 {
			content := genContent(r, int(lba%7), 0.05)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write lba %d: %v", op, lba, err)
			}
			model[lba] = content
		} else {
			if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatalf("op %d: read lba %d: %v", op, lba, err)
			}
			want, ok := model[lba]
			if !ok {
				want = make([]byte, blockdev.BlockSize) // never written: zeros
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d: read lba %d returned wrong content", op, lba)
			}
		}
	}
	if c.Stats.WriteDelta == 0 {
		t.Error("expected some writes to be stored as deltas")
	}
	if c.Stats.Scans == 0 {
		t.Error("expected similarity scans to run")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReadYourWritesTinyRAM repeats the shadow-model check under severe
// RAM pressure so every eviction and reclamation path fires.
func TestReadYourWritesTinyRAM(t *testing.T) {
	cfg := smallConfig()
	cfg.DeltaRAMBytes = 4 << 10
	cfg.DataRAMBytes = 16 << 10
	cfg.MetadataBlocks = 64
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(7)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)

	for op := 0; op < 10000; op++ {
		lba := int64(r.Intn(512))
		if r.Float64() < 0.5 {
			content := genContent(r, int(lba%5), 0.08)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write lba %d: %v", op, lba, err)
			}
			model[lba] = content
		} else {
			if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatalf("op %d: read lba %d: %v", op, lba, err)
			}
			want, ok := model[lba]
			if !ok {
				want = make([]byte, blockdev.BlockSize)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d: read lba %d returned wrong content (evictions=%d)",
					op, lba, c.Stats.EvictVBlocks)
			}
		}
	}
	if c.Stats.EvictVBlocks == 0 {
		t.Error("expected virtual-block evictions under metadata pressure")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecovery verifies that a controller rebuilt from the devices after
// a crash (RAM lost) serves every flushed write correctly.
func TestRecovery(t *testing.T) {
	cfg := smallConfig()
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(99)
	model := make(map[int64][]byte)

	for op := 0; op < 5000; op++ {
		lba := int64(r.Intn(700))
		content := genContent(r, int(lba%6), 0.05)
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatalf("write: %v", err)
		}
		model[lba] = content
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// Crash: rebuild from devices only.
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	rc, err := Recover(cfg, rig.ssd, rig.hdd, clock, cpu)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	buf := make([]byte, blockdev.BlockSize)
	for lba, want := range model {
		if _, err := rc.ReadBlock(lba, buf); err != nil {
			t.Fatalf("post-recovery read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("post-recovery read lba %d returned wrong content", lba)
		}
	}
}

// TestRecoveryAfterMoreActivity crashes a controller that has gone
// through scans, evictions and log cleaning, then checks flushed state.
func TestRecoveryAfterMoreActivity(t *testing.T) {
	cfg := smallConfig()
	cfg.LogBlocks = 16 // force log wrap + cleaning
	cfg.DeltaRAMBytes = 16 << 10
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(5)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)

	for op := 0; op < 15000; op++ {
		lba := int64(r.Intn(400))
		if r.Float64() < 0.6 {
			content := genContent(r, int(lba%4), 0.04)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("write: %v", err)
			}
			model[lba] = content
		} else if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("read: %v", err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	clock := sim.NewClock()
	rc, err := Recover(cfg, rig.ssd, rig.hdd, clock, cpumodel.NewAccountant(clock))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for lba, want := range model {
		if _, err := rc.ReadBlock(lba, buf); err != nil {
			t.Fatalf("post-recovery read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("post-recovery read lba %d returned wrong content", lba)
		}
	}
	if c.Stats.LogCleanerRuns == 0 {
		t.Log("note: log cleaner never ran (log may be large enough)")
	}
}

// TestPreload verifies preloaded content is readable and counts as a
// cold read.
func TestPreload(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	want := genContent(sim.NewRand(1), 3, 0)
	if err := c.Preload(17, want); err != nil {
		t.Fatalf("Preload: %v", err)
	}
	buf := make([]byte, blockdev.BlockSize)
	if _, err := c.ReadBlock(17, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("preloaded content mismatch")
	}
}

// TestBounds exercises range and buffer validation.
func TestBounds(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	buf := make([]byte, blockdev.BlockSize)
	if _, err := c.ReadBlock(-1, buf); err == nil {
		t.Error("negative lba read should fail")
	}
	if _, err := c.ReadBlock(c.Blocks(), buf); err == nil {
		t.Error("out-of-range read should fail")
	}
	if _, err := c.WriteBlock(0, buf[:100]); err == nil {
		t.Error("short buffer write should fail")
	}
}

// TestVMImageSharing verifies first-load pairing: cloned VM images at
// the same offsets should attach to shared references rather than
// occupying independent space.
func TestVMImageSharing(t *testing.T) {
	cfg := smallConfig()
	cfg.VMImageBlocks = 512 // 4 VM images across the 4096-block disk
	rig := newTestRig(t, cfg)
	c := rig.c
	const imgBlocks = 200
	r := sim.NewRand(11)
	// VM 0 is the "native machine": write its image, then read it so the
	// scan can select references.
	base := make([][]byte, imgBlocks)
	for i := range base {
		base[i] = genContent(r, i, 0)
	}
	buf := make([]byte, blockdev.BlockSize)
	for round := 0; round < 4; round++ {
		for i := range base {
			lba := int64(i)
			if round == 0 {
				if _, err := c.WriteBlock(lba, base[i]); err != nil {
					t.Fatal(err)
				}
			} else if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Clone VMs 1..3: preload nearly identical images, then read them.
	for vm := int64(1); vm <= 3; vm++ {
		for i := range base {
			img := append([]byte(nil), base[i]...)
			img[100] ^= 0xFF // one-byte difference
			lba := vm*cfg.VMImageBlocks + int64(i)
			if err := c.Preload(lba, img); err != nil {
				t.Fatal(err)
			}
		}
	}
	for vm := int64(1); vm <= 3; vm++ {
		for i := range base {
			lba := vm*cfg.VMImageBlocks + int64(i)
			if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatal(err)
			}
			want := append([]byte(nil), base[i]...)
			want[100] ^= 0xFF
			if !bytes.Equal(buf, want) {
				t.Fatalf("vm %d block %d content mismatch", vm, i)
			}
		}
	}
	if c.Stats.FirstLoadPairs == 0 {
		t.Errorf("expected first-load VM pairing; refs=%d assoc=%d",
			c.Stats.RefsSelected, c.Stats.AssocFormed)
	}
}

// TestKindStringAndStats covers small helpers.
func TestKindStringAndStats(t *testing.T) {
	for k, want := range map[Kind]string{Independent: "independent", Reference: "reference", Associate: "associate", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	kc := KindCounts{Reference: 1, Associate: 8, Independent: 1}
	if kc.Total() != 10 {
		t.Errorf("Total = %d", kc.Total())
	}
	ref, assoc, indep := kc.Fractions()
	if fmt.Sprintf("%.1f %.1f %.1f", ref, assoc, indep) != "0.1 0.8 0.1" {
		t.Errorf("Fractions = %v %v %v", ref, assoc, indep)
	}
}

// TestDeltaBudgetSurvivesGroomReentrancy: with auto-flush disabled the
// journal fills under a sustained content-local write load, so delta
// stores routinely hit the budget wall and reclaim by grooming the log
// mid-store. That groom can reach back into the very block being
// stored — loadDeltaBlock re-caches its logged delta — which used to
// leak the re-cached charge when the store then replaced the delta it
// had sized against a pre-groom snapshot. The budget invariant must
// hold after every single op.
func TestDeltaBudgetSurvivesGroomReentrancy(t *testing.T) {
	cfg := smallConfig()
	cfg.FlushPeriodOps = 0
	cfg.FlushDirtyBytes = 1 << 30 // no auto-flush: maximal log pressure
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(21)
	buf := make([]byte, blockdev.BlockSize)
	for op := 0; op < 2000; op++ {
		lba := int64(r.Intn(512))
		var err error
		if r.Float64() < 0.4 {
			_, err = c.WriteBlock(lba, genContent(r, int(lba%5), 0.05))
		} else {
			_, err = c.ReadBlock(lba, buf)
		}
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("op %d (lba %d): %v", op, lba, err)
		}
	}
}
