package core

import (
	"reflect"
	"testing"

	"icash/internal/blockdev"
)

// fuzzLogBlock builds a valid CRC'd commit-record part for seeding.
func fuzzLogBlock(hdr blockHeader, entries []logEntry) []byte {
	buf := make([]byte, blockdev.BlockSize)
	encodeLogBlock(buf, hdr, entries)
	return buf
}

// oneTxn is the framing of a whole single-part transaction.
var fuzzHdr = blockHeader{txn: 1, epoch: 1, part: 0, total: 1, flags: blockFlagCommit}

// FuzzLogReplay replays arbitrary bytes through the CRC'd journal-block
// decoder, the path crash recovery walks over a disk that may hold torn
// writes, stale garbage, or bit rot. Decoding must never panic; blocks
// it accepts must survive an encode/decode round trip unchanged.
func FuzzLogReplay(f *testing.F) {
	f.Add(make([]byte, blockdev.BlockSize)) // never-written block: no magic
	f.Add(fuzzLogBlock(fuzzHdr, nil))       // valid, empty
	valid := fuzzLogBlock(fuzzHdr, []logEntry{
		{kind: entryDelta, flags: 1, lba: 42, seq: 7, slot: 3, delta: []byte{1, 2, 3, 4, 5}},
		{kind: entryPointer, lba: 99, seq: 8, slot: 12},
		{kind: entryTombstone, lba: 7, seq: 9},
	})
	f.Add(valid)
	torn := append([]byte(nil), valid...)
	torn[2048] ^= 0xFF // flipped bit deep in the payload: CRC must catch it
	f.Add(torn)
	f.Add(valid[:100]) // truncated write: decoder sees it zero-padded
	f.Fuzz(func(t *testing.T, data []byte) {
		// The log always hands the decoder whole blocks: pad or clip the
		// input to exactly one block, as a torn or short write would be
		// read back from a zero-filled disk.
		buf := make([]byte, blockdev.BlockSize)
		copy(buf, data)

		hdr, entries, err := decodeLogBlock(buf)
		if err != nil {
			return // rejected: corrupt blocks are allowed to fail, not panic
		}
		if hdr.total == 0 {
			return // no magic: never-written block
		}
		// Accepted blocks round-trip: re-encoding the decoded header and
		// entries and decoding again must reproduce them exactly.
		re := make([]byte, blockdev.BlockSize)
		encodeLogBlock(re, hdr, entries)
		rehdr, again, err := decodeLogBlock(re)
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		if rehdr != hdr {
			t.Fatalf("round trip header %+v, want %+v", rehdr, hdr)
		}
		if len(entries) != len(again) {
			t.Fatalf("round trip entry count %d, want %d", len(again), len(entries))
		}
		if len(entries) > 0 && !reflect.DeepEqual(entries, again) {
			t.Fatalf("round trip entries differ:\n got %+v\nwant %+v", again, entries)
		}
	})
}

// fuzzJournal concatenates whole blocks into one multi-block region.
func fuzzJournal(blocks ...[]byte) []byte {
	var out []byte
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// FuzzJournalReplay drives arbitrary multi-block regions through the
// transaction assembly that crash recovery and the durability audit
// share. The seeds are the hostile shapes a crashed or scribbled disk
// produces: a transaction truncated before its commit marker, a
// bit-flipped CRC, the same transaction id framing two different
// batches (duplicate parts), and a stale-epoch leftover adopted into a
// newer transaction's id. Assembly must never panic, and a transaction
// it reports complete must actually be whole and consistent —
// anything less must count as discarded, never as partially applied.
func FuzzJournalReplay(f *testing.F) {
	entryA := []logEntry{{kind: entryDelta, lba: 10, seq: 1, slot: 2, delta: []byte{1, 2}}}
	entryB := []logEntry{{kind: entryTombstone, lba: 11, seq: 2}}
	entryC := []logEntry{{kind: entryPointer, lba: 12, seq: 3, slot: 4}}

	// A complete two-part transaction followed by a complete single-part one.
	f.Add(fuzzJournal(
		fuzzLogBlock(blockHeader{txn: 5, epoch: 2, part: 0, total: 2}, entryA),
		fuzzLogBlock(blockHeader{txn: 5, epoch: 2, part: 1, total: 2, flags: blockFlagCommit}, entryB),
		fuzzLogBlock(blockHeader{txn: 6, epoch: 2, part: 0, total: 1, flags: blockFlagCommit}, entryC),
	))
	// Truncated commit: the marker part of txn 5 never made it to disk.
	f.Add(fuzzJournal(
		fuzzLogBlock(blockHeader{txn: 5, epoch: 2, part: 0, total: 3}, entryA),
		fuzzLogBlock(blockHeader{txn: 5, epoch: 2, part: 1, total: 3}, entryB),
		make([]byte, blockdev.BlockSize),
	))
	// Bit-flipped CRC inside a part: the transaction must void wholly.
	flipped := fuzzLogBlock(blockHeader{txn: 7, epoch: 2, part: 0, total: 2}, entryA)
	flipped[100] ^= 0x40
	f.Add(fuzzJournal(
		flipped,
		fuzzLogBlock(blockHeader{txn: 7, epoch: 2, part: 1, total: 2, flags: blockFlagCommit}, entryB),
	))
	// Duplicate txn id: two generations framed the same id and part.
	f.Add(fuzzJournal(
		fuzzLogBlock(blockHeader{txn: 8, epoch: 1, part: 0, total: 1, flags: blockFlagCommit}, entryA),
		fuzzLogBlock(blockHeader{txn: 8, epoch: 1, part: 0, total: 1, flags: blockFlagCommit}, entryB),
	))
	// Stale-epoch record: an old incarnation's part under a reused id.
	f.Add(fuzzJournal(
		fuzzLogBlock(blockHeader{txn: 9, epoch: 1, part: 0, total: 2}, entryA),
		fuzzLogBlock(blockHeader{txn: 9, epoch: 4, part: 1, total: 2, flags: blockFlagCommit}, entryB),
	))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Clip to whole blocks, at most a small region; a torn tail
		// block arrives zero-padded like a real partial write.
		const maxBlocks = 8
		asm := newJournalAsm()
		buf := make([]byte, blockdev.BlockSize)
		for b := int64(0); b < maxBlocks; b++ {
			lo := int(b) * blockdev.BlockSize
			if lo >= len(data) {
				break
			}
			for i := range buf {
				buf[i] = 0
			}
			copy(buf, data[lo:])
			asm.addBlock(b, buf)
		}
		for id, txn := range asm.txns {
			if !txn.complete() {
				continue
			}
			// A complete transaction must be internally whole: every
			// part present exactly once, consistent framing, commit
			// marker on the final part, every entry's seq within the
			// assembly's max.
			if len(txn.seen) != txn.total || txn.bad || !txn.commit {
				t.Fatalf("txn %d reported complete but seen=%d total=%d bad=%v commit=%v",
					id, len(txn.seen), txn.total, txn.bad, txn.commit)
			}
			for part := 0; part < txn.total; part++ {
				b, ok := txn.seen[uint16(part)]
				if !ok {
					t.Fatalf("complete txn %d missing part %d", id, part)
				}
				sb, ok := asm.blocks[b]
				if !ok {
					t.Fatalf("complete txn %d part %d points at undecoded block %d", id, part, b)
				}
				if sb.hdr.txn != id || sb.hdr.epoch != txn.epoch || int(sb.hdr.total) != txn.total {
					t.Fatalf("complete txn %d part %d has inconsistent header %+v", id, part, sb.hdr)
				}
				if sb.hdr.commit() != (part == txn.total-1) {
					t.Fatalf("txn %d part %d: commit marker misplaced", id, part)
				}
				for i := range sb.entries {
					if sb.entries[i].seq > asm.maxSeq {
						t.Fatalf("entry seq %d above assembly max %d", sb.entries[i].seq, asm.maxSeq)
					}
				}
			}
		}
	})
}
