package core

import (
	"reflect"
	"testing"

	"icash/internal/blockdev"
)

// fuzzLogBlock builds a valid CRC'd log block for seeding.
func fuzzLogBlock(entries []logEntry) []byte {
	buf := make([]byte, blockdev.BlockSize)
	encodeLogBlock(buf, entries)
	return buf
}

// FuzzLogReplay replays arbitrary bytes through the CRC'd log-block
// decoder, the path crash recovery walks over a disk that may hold torn
// writes, stale garbage, or bit rot. Decoding must never panic; blocks
// it accepts must survive an encode/decode round trip unchanged.
func FuzzLogReplay(f *testing.F) {
	f.Add(make([]byte, blockdev.BlockSize)) // never-written block: no magic
	f.Add(fuzzLogBlock(nil))                // valid, empty
	valid := fuzzLogBlock([]logEntry{
		{kind: entryDelta, flags: 1, lba: 42, seq: 7, slot: 3, delta: []byte{1, 2, 3, 4, 5}},
		{kind: entryPointer, lba: 99, seq: 8, slot: 12},
		{kind: entryTombstone, lba: 7, seq: 9},
	})
	f.Add(valid)
	torn := append([]byte(nil), valid...)
	torn[2048] ^= 0xFF // flipped bit deep in the payload: CRC must catch it
	f.Add(torn)
	f.Add(valid[:100]) // truncated write: decoder sees it zero-padded
	f.Fuzz(func(t *testing.T, data []byte) {
		// The log always hands the decoder whole blocks: pad or clip the
		// input to exactly one block, as a torn or short write would be
		// read back from a zero-filled disk.
		buf := make([]byte, blockdev.BlockSize)
		copy(buf, data)

		entries, err := decodeLogBlock(buf)
		if err != nil {
			return // rejected: corrupt blocks are allowed to fail, not panic
		}
		// Accepted blocks round-trip: re-encoding the decoded entries and
		// decoding again must reproduce them exactly.
		re := make([]byte, blockdev.BlockSize)
		encodeLogBlock(re, entries)
		again, err := decodeLogBlock(re)
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		if len(entries) != len(again) {
			t.Fatalf("round trip entry count %d, want %d", len(again), len(entries))
		}
		if len(entries) > 0 && !reflect.DeepEqual(entries, again) {
			t.Fatalf("round trip entries differ:\n got %+v\nwant %+v", again, entries)
		}
	})
}
