package core

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// This file is the controller's end-to-end integrity layer (DESIGN.md
// §14): a per-LBA content-checksum map maintained on the host write
// path and verified at every layer crossing — SSD reference fetch
// (slots.go), HDD home read (below), delta apply (iopath.go), journal
// load (log.go) — so a device that lies and returns success with wrong
// bytes is caught before the bytes are served or re-encoded. Detected
// corruption is repaired from whichever redundant copy verifies; when
// none does, the block is poisoned (reads fail loudly) or its content
// regresses to an accounted stale copy — never silently wrong.

// SetCorruptionHook registers fn to observe every checksum-mismatch
// detection: dev names the lying device ("ssd", "hdd", "ram", "host")
// and devLBA is the device-local block address. The chaos harness uses
// the hook to measure detection latency against recorded injection
// times. nil clears the hook.
func (c *Controller) SetCorruptionHook(fn func(dev string, devLBA int64)) {
	c.corruptionHook = fn
}

// noteCorruption records one checksum-mismatch detection.
func (c *Controller) noteCorruption(dev string, devLBA int64) {
	c.Stats.CorruptionsDetected++
	if c.corruptionHook != nil {
		c.corruptionHook(dev, devLBA)
	}
}

// trackSum records lba's current content checksum after a successful
// host write (or preload) and clears any poison: the block holds
// known-good content again.
func (c *Controller) trackSum(lba int64, content []byte) {
	c.sums[lba] = blockdev.ContentCRC(content)
	delete(c.poisoned, lba)
}

// dropSum stops tracking lba. Called when the block's durable content
// becomes indeterminate (a failed host write) or intentionally
// regresses to a stale copy (the accounted-loss fallbacks): the old
// checksum would flag the fallback content as corrupt forever.
func (c *Controller) dropSum(lba int64) { delete(c.sums, lba) }

// Poisoned reports whether lba is poisoned: every copy of its content
// failed verification and reads fail with ErrCorruption until the
// block is fully overwritten.
func (c *Controller) Poisoned(lba int64) bool { return c.poisoned[lba] }

// PoisonedBlocks reports how many LBAs are currently poisoned.
func (c *Controller) PoisonedBlocks() int { return len(c.poisoned) }

// errPoisoned builds the loud read error for a poisoned block.
func errPoisoned(lba int64) error {
	return fmt.Errorf("core: lba %d poisoned by unrepairable corruption (awaiting overwrite): %w",
		lba, blockdev.ErrCorruption)
}

// readHomeVerified reads lba's HDD home block into buf and verifies it
// against the tracked content checksum. On a mismatch the repair
// ladder is: one re-read (a transfer-path upset leaves the media
// intact, so a fresh copy may verify), else poison — a home-resident
// block has no other copy, and a loud error beats silently serving
// wrong bytes. Untracked LBAs (never written through the controller)
// pass unverified. The returned duration covers every device access;
// the caller charges it foreground or background as usual.
func (c *Controller) readHomeVerified(lba int64, buf []byte) (sim.Duration, error) {
	if c.poisoned[lba] {
		return 0, errPoisoned(lba)
	}
	d, err := c.hddRead(lba, buf)
	if err != nil {
		return d, fmt.Errorf("core: home read lba %d: %w", lba, err)
	}
	want, tracked := c.sums[lba]
	if !tracked || blockdev.ContentCRC(buf) == want {
		return d, nil
	}
	c.noteCorruption("hdd", lba)
	d2, err := c.hddRead(lba, buf)
	d += d2
	if err == nil && blockdev.ContentCRC(buf) == want {
		c.Stats.CorruptionsRepaired++
		return d, nil
	}
	c.poisoned[lba] = true
	c.Stats.UnrepairableBlocks++
	return d, fmt.Errorf("core: home read lba %d: %w", lba, blockdev.ErrCorruption)
}

// dropCorruptDelta abandons a block's delta after the journal copy was
// found corrupt or vanished under a misdirected write: without the
// delta the slot base alone is not the block's current content, so the
// stale home copy is what remains — the in-run analogue of recovery's
// dropRecord, accounted the same way (DroppedLogRecs). The tracked
// checksum is dropped with the content regression. Returns a
// corruption-classed error; the caller's faultRecovered retry then
// serves the home copy.
func (c *Controller) dropCorruptDelta(v *vblock, cause error) error {
	c.Stats.DroppedLogRecs++
	c.dropSum(v.lba)
	c.orphanFromSlot(v)
	v.hddHome = true
	v.dataDirty = false
	return fmt.Errorf("core: lba %d: delta record corrupt, falling back to stale home copy: %w",
		v.lba, cause)
}
