package core

import (
	"bytes"
	"errors"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// This file tests the end-to-end integrity layer (DESIGN.md §14):
// checksum verification at the layer crossings, the background
// scrubber, verified repair, and the poison/overwrite lifecycle for
// blocks no redundant copy can save.

// driveLocalWorkload runs a content-local mixed workload and returns
// the shadow model, leaving the controller with a populated slot store.
func driveLocalWorkload(t *testing.T, c *Controller, seed uint64, ops int) map[int64][]byte {
	t.Helper()
	r := sim.NewRand(seed)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)
	const lbaSpace = 1024
	for op := 0; op < ops; op++ {
		lba := int64(r.Intn(lbaSpace))
		if r.Float64() < 0.4 {
			content := genContent(r, int(lba%7), 0.05)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write lba %d: %v", op, lba, err)
			}
			model[lba] = content
		} else {
			if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatalf("op %d: read lba %d: %v", op, lba, err)
			}
		}
	}
	return model
}

// runScrubPass drives the scrubber through at least one complete pass
// over both cursor domains by advancing the simulated clock.
func runScrubPass(t *testing.T, rig *testRig) {
	t.Helper()
	c := rig.c
	c.SetScrub(ScrubConfig{Interval: sim.Millisecond, Batch: 64})
	start := c.Stats.ScrubPasses
	for i := 0; i < 100000 && c.Stats.ScrubPasses == start; i++ {
		rig.clock.Advance(sim.Millisecond)
		c.ScrubPoll()
	}
	if c.Stats.ScrubPasses == start {
		t.Fatal("scrubber never completed a full pass")
	}
}

// findHomeBackedSlot returns a dependent vblock and its slot where the
// slot's HDD home backup is still valid — i.e. scrubSlot has a
// guaranteed repair source that is not the SSD copy itself.
func findHomeBackedSlot(rig *testRig) (*vblock, *refSlot) {
	c := rig.c
	buf := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < c.cfg.VirtualBlocks; lba++ {
		v := c.blocks[lba]
		if v == nil || v.slotRef == nil || v.dataDirty {
			continue
		}
		s := v.slotRef
		if s.homeLBA < 0 || c.poisoned[s.homeLBA] || c.sums[s.homeLBA] != s.crc {
			continue
		}
		if _, err := rig.hdd.ReadBlock(s.homeLBA, buf); err != nil || contentCRC(buf) != s.crc {
			continue
		}
		return v, s
	}
	return nil, nil
}

// TestLyingSSDReadNeverReachesHost is the regression test for the
// latent repair gap: an SSD that silently serves flipped bits (no I/O
// error) on a reference-slot read. The checksum in the slot map must
// catch it, the scrubSlot repair path must heal the flash copy from a
// redundant one, and the host read must complete with the correct
// bytes — the lie never crosses the host boundary.
func TestLyingSSDReadNeverReachesHost(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	model := driveLocalWorkload(t, c, 42, 20000)
	// Flush: a consistency point gives every write-through slot a home
	// backup (backupWriteThroughs), so repair has a redundant copy.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	victim, slot := findHomeBackedSlot(rig)
	if victim == nil {
		t.Fatal("workload produced no slot with a valid home backup")
	}
	// Force the next read of the victim onto the SSD: drop its clean RAM
	// copy, and the donor's too if that could short-circuit slotContent.
	if victim.dataRAM != nil {
		c.releaseData(victim)
	}
	if slot.donor >= 0 && slot.donor != victim.lba {
		if dv := c.blocks[slot.donor]; dv != nil && dv.dataRAM != nil && !dv.dataDirty &&
			contentCRC(dv.dataRAM) == slot.crc {
			c.releaseData(dv)
		}
	}
	if err := rig.ssd.Corrupt(slot.index, 4097); err != nil {
		t.Fatalf("corrupt ssd: %v", err)
	}

	det0, rep0 := c.Stats.CorruptionsDetected, c.Stats.CorruptionsRepaired
	buf := make([]byte, blockdev.BlockSize)
	if _, err := c.ReadBlock(victim.lba, buf); err != nil {
		t.Fatalf("read of silently corrupted slot: %v", err)
	}
	want, ok := model[victim.lba]
	if !ok {
		want = make([]byte, blockdev.BlockSize)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("lying SSD read reached the host: returned bytes differ from last write")
	}
	if c.Stats.CorruptionsDetected == det0 {
		t.Fatal("checksum never detected the flipped SSD content")
	}
	if c.Stats.CorruptionsRepaired == rep0 {
		t.Fatal("detected corruption was not repaired")
	}
	// The flash copy itself must be healed, not just routed around.
	raw := make([]byte, blockdev.BlockSize)
	if _, err := rig.ssd.ReadBlock(slot.index, raw); err != nil {
		t.Fatalf("raw ssd read: %v", err)
	}
	if c.slots[slot.index] == slot && contentCRC(raw) != slot.crc {
		t.Fatal("SSD slot content not healed in place")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHomeRotPoisonAndOverwrite drives the unrepairable path: a home
// block rots persistently with no redundant copy. The read must fail
// loudly with ErrCorruption (never return the rotted bytes), the block
// is poisoned against further reads, and a host overwrite — the only
// legitimate cure — clears the poison.
func TestHomeRotPoisonAndOverwrite(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	const lba = 5
	content := genContent(sim.NewRand(9), 3, 0)
	if err := c.Preload(lba, content); err != nil {
		t.Fatalf("preload: %v", err)
	}
	if err := rig.hdd.Corrupt(lba, 123); err != nil {
		t.Fatalf("corrupt hdd: %v", err)
	}

	buf := make([]byte, blockdev.BlockSize)
	_, err := c.ReadBlock(lba, buf)
	if err == nil {
		t.Fatal("read of persistently rotted home block succeeded")
	}
	if !errors.Is(err, blockdev.ErrCorruption) {
		t.Fatalf("error does not wrap ErrCorruption: %v", err)
	}
	if cl := blockdev.Classify(err); cl != blockdev.ClassCorruption {
		t.Fatalf("Classify = %v, want ClassCorruption", cl)
	}
	if c.Stats.CorruptionsDetected == 0 || c.Stats.UnrepairableBlocks == 0 {
		t.Fatalf("counters: det=%d unrep=%d", c.Stats.CorruptionsDetected, c.Stats.UnrepairableBlocks)
	}
	if !c.Poisoned(lba) || c.PoisonedBlocks() != 1 {
		t.Fatalf("poison state: Poisoned=%v PoisonedBlocks=%d", c.Poisoned(lba), c.PoisonedBlocks())
	}
	// Poisoned blocks stay loud until overwritten.
	if _, err := c.ReadBlock(lba, buf); !errors.Is(err, blockdev.ErrCorruption) {
		t.Fatalf("second read: %v, want ErrCorruption", err)
	}
	// A fresh host write is the cure.
	fresh := genContent(sim.NewRand(10), 4, 0)
	if _, err := c.WriteBlock(lba, fresh); err != nil {
		t.Fatalf("healing write: %v", err)
	}
	if c.Poisoned(lba) || c.PoisonedBlocks() != 0 {
		t.Fatal("overwrite did not clear poison")
	}
	if _, err := c.ReadBlock(lba, buf); err != nil {
		t.Fatalf("read after overwrite: %v", err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("read after overwrite returned stale content")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubHealsRottedHomeBackup: cold rot on a reference slot's HDD
// home backup — a block no host read would visit — is found by the
// background scrubber's cross-device check and rewritten from the
// still-good SSD copy.
func TestScrubHealsRottedHomeBackup(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	driveLocalWorkload(t, c, 7, 20000)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	_, slot := findHomeBackedSlot(rig)
	if slot == nil {
		t.Fatal("workload produced no slot with a valid home backup")
	}
	if err := rig.hdd.Corrupt(slot.homeLBA, 999); err != nil {
		t.Fatalf("corrupt hdd: %v", err)
	}
	det0, rep0 := c.Stats.CorruptionsDetected, c.Stats.CorruptionsRepaired
	runScrubPass(t, rig)
	if c.Stats.CorruptionsDetected == det0 {
		t.Fatal("scrubber never detected the rotted home backup")
	}
	if c.Stats.CorruptionsRepaired == rep0 {
		t.Fatal("scrubber detected but did not repair the backup")
	}
	raw := make([]byte, blockdev.BlockSize)
	if _, err := rig.hdd.ReadBlock(slot.homeLBA, raw); err != nil {
		t.Fatalf("raw hdd read: %v", err)
	}
	if c.slots[slot.index] == slot && contentCRC(raw) != slot.crc {
		t.Fatal("home backup not healed in place")
	}
	if c.PoisonedBlocks() != 0 {
		t.Fatal("repairable rot must not poison")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubFindsColdRot: rot on a tracked home block that nothing ever
// reads. With no redundant copy the scrubber cannot repair, so it must
// quarantine: the block is poisoned (bounded detection latency instead
// of a wrong read years later), and a host overwrite clears it.
func TestScrubFindsColdRot(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	const lba = 17
	if err := c.Preload(lba, genContent(sim.NewRand(3), 1, 0)); err != nil {
		t.Fatalf("preload: %v", err)
	}
	if err := rig.hdd.Corrupt(lba, 31); err != nil {
		t.Fatalf("corrupt hdd: %v", err)
	}
	runScrubPass(t, rig)
	if c.Stats.CorruptionsDetected == 0 {
		t.Fatal("scrubber never detected cold rot")
	}
	if c.Stats.UnrepairableBlocks == 0 || !c.Poisoned(lba) {
		t.Fatalf("cold rot with no redundancy must poison: unrep=%d poisoned=%v",
			c.Stats.UnrepairableBlocks, c.Poisoned(lba))
	}
	fresh := genContent(sim.NewRand(4), 2, 0)
	if _, err := c.WriteBlock(lba, fresh); err != nil {
		t.Fatalf("healing write: %v", err)
	}
	buf := make([]byte, blockdev.BlockSize)
	if _, err := c.ReadBlock(lba, buf); err != nil {
		t.Fatalf("read after overwrite: %v", err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("read after overwrite returned stale content")
	}
}

// TestScrubSkipsMidUpdate interleaves scrub passes with an active write
// stream. Blocks mid-update (dirty RAM, unflushed deltas, slot
// attachments) have their authoritative content away from home, so the
// scrubber must skip them rather than flag the stale home copy as rot:
// zero detections, zero poisons, and every read still matches the
// model afterwards.
func TestScrubSkipsMidUpdate(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	c.SetScrub(ScrubConfig{Interval: sim.Millisecond, Batch: 64})
	r := sim.NewRand(99)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)
	const lbaSpace = 512
	for round := 0; round < 6; round++ {
		for op := 0; op < 1500; op++ {
			lba := int64(r.Intn(lbaSpace))
			if r.Float64() < 0.5 {
				content := genContent(r, int(lba%5), 0.05)
				if _, err := c.WriteBlock(lba, content); err != nil {
					t.Fatalf("round %d op %d: write: %v", round, op, err)
				}
				model[lba] = content
			} else if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatalf("round %d op %d: read: %v", round, op, err)
			}
		}
		runScrubPass(t, rig)
		if round == 2 {
			// A flush mid-test moves deltas to the journal and write-backs
			// home; the scrubber must track the shifting authority.
			if err := c.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
		}
	}
	if c.Stats.CorruptionsDetected != 0 {
		t.Fatalf("scrubber invented %d corruptions on a clean array", c.Stats.CorruptionsDetected)
	}
	if c.PoisonedBlocks() != 0 {
		t.Fatalf("scrubber poisoned %d clean blocks", c.PoisonedBlocks())
	}
	if c.Stats.ScrubHomeChecks == 0 {
		t.Fatal("scrubber never actually checked a home block")
	}
	for lba, want := range model {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("final read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d corrupted under scrub/write interleaving", lba)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayDiscardsCorruptJournalTxn: a journal block silently rotted
// between crash and recovery. The block fails its CRC during the scan,
// its transaction assembles as incomplete, and recovery discards the
// transaction wholly — counted, never partially applied — while every
// record outside it survives intact.
func TestReplayDiscardsCorruptJournalTxn(t *testing.T) {
	cfg := smallConfig()
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(61)
	durable := make(map[int64][]byte)
	for round := 0; round < 3; round++ {
		for op := 0; op < 600; op++ {
			lba := int64(r.Intn(300))
			content := genContent(r, int(lba%4), 0.04)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatal(err)
			}
			durable[lba] = content
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Pick a journal block from a multi-block transaction (a torn
	// single-block transaction is simply invisible to the assembler and
	// would not exercise the discard accounting).
	victim := int64(-1)
	var victimTxn uint64
	for b := int64(0); b < cfg.LogBlocks; b++ {
		id, ok := c.blockTxn[b]
		if ok && len(c.txnBlocks[id]) >= 2 {
			victim, victimTxn = b, id
			break
		}
	}
	if victim < 0 {
		t.Fatal("workload produced no multi-block journal transaction")
	}
	affected := make(map[int64]bool)
	for _, b := range c.txnBlocks[victimTxn] {
		for _, m := range c.logMeta[b] {
			affected[m.lba] = true
		}
	}
	if err := rig.hdd.Corrupt(cfg.VirtualBlocks+victim, 2048); err != nil {
		t.Fatalf("corrupt journal block: %v", err)
	}

	clock2 := sim.NewClock()
	rc, err := Recover(cfg, rig.ssd, rig.hdd, clock2, cpumodel.NewAccountant(clock2))
	if err != nil {
		t.Fatalf("recovery over corrupt journal: %v", err)
	}
	if rc.Stats.TornLogBlocks == 0 {
		t.Fatal("corrupted journal block not counted as torn")
	}
	if rc.Stats.TxnsDiscardedOnReplay == 0 {
		t.Fatal("transaction with a corrupt part was not discarded")
	}
	buf := make([]byte, blockdev.BlockSize)
	for lba, want := range durable {
		if affected[lba] {
			continue // inside the discarded transaction: bounded, accounted loss
		}
		if _, err := rc.ReadBlock(lba, buf); err != nil {
			t.Fatalf("post-recovery read lba %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d outside the discarded txn lost data", lba)
		}
	}
	if err := rc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
