package core

import "fmt"

// CheckInvariants validates the controller's cross-structure
// consistency. Tests call it after randomized operation sequences; it
// is not part of any hot path.
//
// Checked relations:
//   - the LRU list and the block map contain exactly the same blocks;
//   - slot reference counts equal the number of attached blocks, and
//     every live slot is reachable from the slots map;
//   - free, quarantined and live slots partition the SSD exactly;
//   - the delta budget equals the segment-rounded sum of resident
//     deltas, and the data budget equals the resident data blocks;
//   - logIndex entries point at blocks the cleaner still tracks
//     (logMeta), and perLba counts match the per-block record census.
func (c *Controller) CheckInvariants() error {
	// LRU <-> map agreement.
	seen := make(map[int64]bool, c.lru.len())
	n := 0
	for v := c.lru.head; v != nil; v = v.next {
		if v.dead {
			return fmt.Errorf("core: dead block %d still in LRU", v.lba)
		}
		if seen[v.lba] {
			return fmt.Errorf("core: lba %d appears twice in LRU", v.lba)
		}
		seen[v.lba] = true
		if c.blocks[v.lba] != v {
			return fmt.Errorf("core: LRU block %d not in map", v.lba)
		}
		n++
	}
	if n != len(c.blocks) || n != c.lru.len() {
		return fmt.Errorf("core: LRU has %d blocks, map has %d, count says %d",
			n, len(c.blocks), c.lru.len())
	}

	// Slot refcounts and partition of SSD slots.
	refcnt := make(map[*refSlot]int)
	for v := c.lru.head; v != nil; v = v.next {
		if v.slotRef != nil {
			refcnt[v.slotRef]++
			if c.slots[v.slotRef.index] != v.slotRef {
				return fmt.Errorf("core: lba %d attached to unregistered slot %d",
					v.lba, v.slotRef.index)
			}
		}
	}
	for idx, s := range c.slots {
		if s.index != idx {
			return fmt.Errorf("core: slot map key %d holds slot %d", idx, s.index)
		}
		if refcnt[s] != s.refcnt {
			return fmt.Errorf("core: slot %d refcnt=%d, actual attached=%d",
				s.index, s.refcnt, refcnt[s])
		}
		if s.refcnt <= 0 {
			return fmt.Errorf("core: live slot %d with refcnt %d", s.index, s.refcnt)
		}
	}
	used := make(map[int64]string)
	for idx := range c.slots {
		used[idx] = "live"
	}
	for _, idx := range c.freeSlots {
		if prev, ok := used[idx]; ok {
			return fmt.Errorf("core: slot %d both free and %s", idx, prev)
		}
		used[idx] = "free"
	}
	for _, idx := range c.quarantine {
		if prev, ok := used[idx]; ok {
			return fmt.Errorf("core: slot %d both quarantined and %s", idx, prev)
		}
		used[idx] = "quarantined"
	}
	for _, idx := range c.retiredSlots {
		if prev, ok := used[idx]; ok {
			return fmt.Errorf("core: slot %d both retired and %s", idx, prev)
		}
		used[idx] = "retired"
	}
	if int64(len(used)) != c.cfg.SSDBlocks {
		return fmt.Errorf("core: %d slots accounted, SSD has %d", len(used), c.cfg.SSDBlocks)
	}

	// Retired log blocks must not be tracked by the cleaner.
	for b := range c.badLogBlocks {
		if len(c.logMeta[b]) > 0 {
			return fmt.Errorf("core: retired log block %d still tracked by the cleaner", b)
		}
	}

	// RAM budgets.
	var deltaBytes, dataBytes int64
	for v := c.lru.head; v != nil; v = v.next {
		if v.deltaRAM != nil {
			deltaBytes += c.segBytes(len(v.deltaRAM))
		}
		if v.dataRAM != nil {
			dataBytes += int64(len(v.dataRAM))
		}
	}
	if deltaBytes != c.deltaBudget.Used() {
		return fmt.Errorf("core: delta budget says %d, resident deltas sum to %d",
			c.deltaBudget.Used(), deltaBytes)
	}
	if dataBytes != c.dataBudget.Used() {
		return fmt.Errorf("core: data budget says %d, resident data sums to %d",
			c.dataBudget.Used(), dataBytes)
	}

	// Log index vs per-block metadata census.
	census := make(map[int64]int)
	for block, metas := range c.logMeta {
		for i := range metas {
			census[metas[i].lba]++
			if metas[i].kind != entryDelta && metas[i].kind != entryPointer && metas[i].kind != entryTombstone {
				return fmt.Errorf("core: log block %d has record of kind %d", block, metas[i].kind)
			}
		}
	}
	for lba, cnt := range c.perLba {
		if census[lba] != cnt {
			return fmt.Errorf("core: perLba[%d]=%d, census says %d", lba, cnt, census[lba])
		}
	}
	for lba, cnt := range census {
		if c.perLba[lba] != cnt {
			return fmt.Errorf("core: census[%d]=%d, perLba says %d", lba, cnt, c.perLba[lba])
		}
	}
	for lba, rec := range c.logIndex {
		metas := c.logMeta[rec.block]
		found := false
		for i := range metas {
			if metas[i].lba == lba && metas[i].seq == rec.seq && metas[i].kind == rec.kind {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: logIndex[%d] points at missing record (block %d seq %d)",
				lba, rec.block, rec.seq)
		}
	}

	// Transaction bookkeeping: tracked blocks and transactions point at
	// each other exactly, and the per-transaction live counts (which
	// gate block reuse) match the live-record census.
	for b := range c.logMeta {
		if _, ok := c.blockTxn[b]; !ok {
			return fmt.Errorf("core: log block %d tracked without a transaction", b)
		}
	}
	for b, t := range c.blockTxn {
		if c.badLogBlocks[b] {
			return fmt.Errorf("core: retired log block %d still in txn %d", b, t)
		}
		found := false
		for _, bb := range c.txnBlocks[t] {
			if bb == b {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: log block %d claims txn %d, which does not list it", b, t)
		}
	}
	for t, blocks := range c.txnBlocks {
		if len(blocks) == 0 {
			return fmt.Errorf("core: txn %d tracked with no blocks", t)
		}
		if _, ok := c.txnLive[t]; !ok {
			return fmt.Errorf("core: txn %d has blocks but no live count", t)
		}
		for _, b := range blocks {
			if owner, ok := c.blockTxn[b]; !ok || owner != t {
				return fmt.Errorf("core: txn %d lists block %d owned by txn %d", t, b, owner)
			}
		}
	}
	for t := range c.txnLive {
		if _, ok := c.txnBlocks[t]; !ok {
			return fmt.Errorf("core: txn %d has a live count but no blocks", t)
		}
	}
	txnCensus := make(map[uint64]int)
	for _, rec := range c.logIndex {
		t, ok := c.blockTxn[rec.block]
		if !ok {
			return fmt.Errorf("core: live record in block %d outside any transaction", rec.block)
		}
		txnCensus[t]++
	}
	for t, live := range c.txnLive {
		if txnCensus[t] != live {
			return fmt.Errorf("core: txnLive[%d]=%d, census says %d", t, live, txnCensus[t])
		}
	}

	// Dirty-queue membership flags.
	for _, v := range c.dirtyQ {
		if v.inDirty && v.dead {
			return fmt.Errorf("core: dead block %d marked dirty", v.lba)
		}
	}
	return nil
}
