package core

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/delta"
	"icash/internal/ram"
	"icash/internal/sig"
	"icash/internal/sim"
)

// readPath classifies how a read was served, for statistics.
type readPath uint8

const (
	pathRAM readPath = iota
	pathSSD
	pathSSDLog
	pathHome
)

// periodic runs the per-I/O housekeeping: similarity scans every
// ScanPeriod I/Os (paper §4.2), periodic flushing, heatmap decay, and
// the background scrubber's schedule poll (a single comparison when
// scrubbing is disabled).
func (c *Controller) periodic() error {
	c.opCount++
	if c.cfg.HeatmapDecayOps > 0 && c.opCount%int64(c.cfg.HeatmapDecayOps) == 0 {
		c.heat.Decay()
	}
	if c.opCount%int64(c.cfg.ScanPeriod) == 0 {
		if err := c.scan(); err != nil {
			return err
		}
	}
	c.scrubPoll()
	return c.maybeFlush()
}

// touchLRU marks v most recently used. A reference is kept ahead of its
// associates in the queue because serving an associate also touches its
// reference (paper §4.3).
func (c *Controller) touchLRU(v *vblock) {
	c.lru.moveToFront(v)
	if v.kind == Associate && v.slotRef != nil && v.slotRef.donor >= 0 {
		if donor, ok := c.blocks[v.slotRef.donor]; ok && donor.slotRef == v.slotRef {
			c.lru.moveToFront(donor)
		}
	}
}

// materialize returns v's current content and the synchronous latency
// of producing it. When background is true, device time is accounted to
// background stats instead. The returned slice must not be retained or
// mutated by callers.
func (c *Controller) materialize(v *vblock, background bool) ([]byte, sim.Duration, readPath, error) {
	if v.dataRAM != nil {
		return v.dataRAM, ram.AccessLatency, pathRAM, nil
	}
	if v.slotRef != nil {
		if v.ssdCurrent {
			// Write-through block or pristine donor: the slot holds the
			// current content directly.
			content, lat, err := c.slotContent(v.slotRef, background)
			return content, lat, pathSSD, err
		}
		// Reference + delta. Fetch the delta (RAM, else one log read
		// that prefetches its whole packed block), then the base.
		if v.deltaRAM != nil && blockdev.ContentCRC(v.deltaRAM) != v.deltaCRC {
			// The cached delta rotted in RAM. A clean delta with a durable
			// journal copy is simply re-fetched; a dirty one (or one with
			// no durable copy) is unrecoverable — the block falls back to
			// its accounted stale home copy.
			c.noteCorruption("ram", v.lba)
			if !v.deltaDirty && c.deltaLogged(v) {
				c.releaseDelta(v)
				c.Stats.CorruptionsRepaired++
			} else {
				return nil, 0, pathSSD, c.dropCorruptDelta(v, blockdev.ErrCorruption)
			}
		}
		var lat sim.Duration
		path := pathSSD
		if v.deltaRAM == nil {
			rec, ok := c.logIndex[v.lba]
			if !ok || rec.kind != entryDelta {
				return nil, 0, pathSSD, fmt.Errorf("core: lba %d: delta lost (no RAM copy, no log record)", v.lba)
			}
			d, err := c.loadDeltaBlock(rec.block)
			if err != nil {
				if blockdev.Classify(err) == blockdev.ClassCorruption {
					return nil, 0, pathSSD, c.dropCorruptDelta(v, err)
				}
				return nil, 0, pathSSD, err
			}
			if background {
				c.Stats.BackgroundHDDTime += d
			} else {
				lat += d
			}
			path = pathSSDLog
		}
		base, d, err := c.slotContent(v.slotRef, background)
		if err != nil {
			return nil, 0, path, err
		}
		lat += d
		var enc []byte
		if v.deltaRAM != nil {
			enc = v.deltaRAM
		} else {
			// loadDeltaBlock may have failed to cache under budget
			// pressure; decode straight from the packed block copy.
			enc2, err := c.deltaFromLog(v.lba)
			if err != nil {
				if blockdev.Classify(err) == blockdev.ClassCorruption {
					return nil, 0, path, c.dropCorruptDelta(v, err)
				}
				return nil, 0, path, err
			}
			enc = enc2
		}
		content, err := delta.AppendDecode(c.getScratch()[:0], base, enc)
		if err != nil {
			return nil, 0, path, fmt.Errorf("core: lba %d: %w", v.lba, err)
		}
		c.cpu.ChargeStorage(c.costs.DeltaDecode)
		c.Stats.DecodeOps++
		if !background {
			lat += c.costs.DeltaDecode
		}
		return content, lat, path, nil
	}
	if v.hddHome {
		buf := c.getScratch()
		d, err := c.readHomeVerified(v.lba, buf)
		if err != nil {
			return nil, 0, pathHome, err
		}
		if background {
			c.Stats.BackgroundHDDTime += d
			d = 0
		}
		return buf, d, pathHome, nil
	}
	return nil, 0, pathHome, fmt.Errorf("core: lba %d has no recoverable content", v.lba)
}

// deltaFromLog re-reads v's delta bytes from its durable log record
// (slow path used only when the RAM budget rejected the prefetch).
func (c *Controller) deltaFromLog(lba int64) ([]byte, error) {
	rec, ok := c.logIndex[lba]
	if !ok || rec.kind != entryDelta {
		return nil, fmt.Errorf("core: lba %d: no durable delta record", lba)
	}
	// Pooled: decodeLogBlock copies every entry's delta bytes out.
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	d, err := c.hddRead(c.cfg.VirtualBlocks+rec.block, buf)
	if err != nil {
		return nil, err
	}
	c.Stats.BackgroundHDDTime += d
	_, entries, err := decodeLogBlock(buf)
	if err != nil {
		c.noteCorruption("hdd", c.cfg.VirtualBlocks+rec.block)
		return nil, fmt.Errorf("core: log block %d: %w: %w", rec.block, err, blockdev.ErrCorruption)
	}
	for i := range entries {
		if entries[i].seq == rec.seq && entries[i].lba == lba {
			return entries[i].delta, nil
		}
	}
	// The block decoded as a valid (foreign) log block but the expected
	// record is not in it: a misdirected or lost journal write. Classed
	// as corruption so the caller drops the delta as accounted loss.
	c.noteCorruption("hdd", c.cfg.VirtualBlocks+rec.block)
	return nil, fmt.Errorf("core: lba %d: log record vanished: %w", lba, blockdev.ErrCorruption)
}

// ReadBlock services a host read (paper Figure 1c: combine the delta
// with its reference block).
func (c *Controller) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, c.cfg.VirtualBlocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	if c.poisoned[lba] {
		return 0, errPoisoned(lba)
	}
	c.recycleScratch() // previous request's scratch buffers are dead now
	if err := c.periodic(); err != nil {
		// Whole-SSD loss surfacing from background work (scan, flush)
		// degrades the array but does not fail the host request.
		if !c.maybeDegradeSSD(err) {
			return 0, err
		}
	}
	c.cpu.ChargeStorage(c.costs.PerRequest)
	if c.ssdLost {
		c.Stats.DegradedOps++
	} else if c.ssdQuarantined {
		c.Stats.QuarantinedOps++
	}

	v, lat, err := c.getOrLoad(lba, false)
	if err != nil {
		return 0, err
	}
	c.pinned = v
	defer func() { c.pinned = nil }()
	content, lat2, path, err := c.materialize(v, false)
	if err != nil && c.faultRecovered(v, err) {
		// The failing dependency is gone (SSD degraded away, or the
		// block was salvaged to its home location); one retry serves
		// from what remains.
		content, lat2, path, err = c.materialize(v, false)
	}
	if err != nil {
		return 0, err
	}
	lat += lat2
	// End-to-end verification: the bytes about to be served must match
	// the checksum recorded at the block's last host write. This is the
	// last line of defense — it catches whatever slipped past the
	// per-layer checks (e.g. RAM rot in the data cache). Dirty blocks are
	// exempt: their RAM copy *is* the content the checksum was taken of.
	if want, tracked := c.sums[lba]; tracked && !v.dataDirty && blockdev.ContentCRC(content) != want {
		c.noteCorruption("host", lba)
		// Drop the (possibly aliased) bad cached copy and rebuild from
		// the durable layers, which verify themselves.
		c.releaseData(v)
		content, lat2, path, err = c.materialize(v, false)
		if err != nil && c.faultRecovered(v, err) {
			content, lat2, path, err = c.materialize(v, false)
		}
		if err != nil {
			return 0, err
		}
		lat += lat2
		// Re-fetch the expected sum: the rebuild may have dropped the
		// delta as accounted loss, untracking the block.
		if want2, tracked2 := c.sums[lba]; tracked2 && blockdev.ContentCRC(content) != want2 {
			c.poisoned[lba] = true
			c.Stats.UnrepairableBlocks++
			return 0, errPoisoned(lba)
		}
		c.Stats.CorruptionsRepaired++
	}
	copy(buf, content)
	switch path {
	case pathRAM:
		c.Stats.ReadRAMHits++
	case pathSSD:
		c.Stats.ReadSSDHits++
	case pathSSDLog:
		// counted by loadDeltaBlock
	case pathHome:
		// counted by getOrLoad for cold misses; re-reads after data
		// eviction land here too.
	}
	// Cache the materialized content for future hits.
	if v.dataRAM == nil {
		if err := c.cacheData(v, content, false); err != nil {
			return 0, err
		}
	}
	c.heat.Record(v.sigv)
	c.touchLRU(v)
	if lat == 0 {
		lat = ram.AccessLatency
	}
	c.Stats.NoteRead(blockdev.BlockSize, lat)
	return lat, nil
}

// WriteBlock services a host write (paper Figure 1b: derive the delta
// with respect to the reference block). Delta derivation is overlapped
// with I/O processing (§5.1), so an accepted delta write completes at
// RAM speed; the encode cost is charged to the CPU model.
func (c *Controller) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, c.cfg.VirtualBlocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	c.recycleScratch()
	if err := c.periodic(); err != nil {
		if !c.maybeDegradeSSD(err) {
			return 0, err
		}
	}
	c.cpu.ChargeStorage(c.costs.PerRequest)
	if c.ssdLost {
		c.Stats.DegradedOps++
	} else if c.ssdQuarantined {
		c.Stats.QuarantinedOps++
	}

	v, _, err := c.getOrLoad(lba, true)
	if err != nil {
		return 0, err
	}
	c.pinned = v
	defer func() { c.pinned = nil }()
	newSig := sig.Compute(buf)
	c.cpu.ChargeStorage(c.costs.Signature)
	c.heat.Record(newSig)

	dispatch := func() (sim.Duration, error) {
		if v.slotRef != nil {
			return c.writeAttached(v, buf, newSig)
		}
		return c.writeIndependent(v, buf, newSig)
	}
	lat, err := dispatch()
	if err != nil && c.faultRecovered(v, err) {
		lat, err = dispatch()
	}
	if err != nil {
		// The block's durable content is indeterminate after a failed
		// write; stop verifying against the stale checksum.
		c.dropSum(lba)
		return 0, err
	}
	// The accepted write defines the block's expected content from here
	// on (and clears any poison: known-good bytes are installed again).
	c.trackSum(lba, buf)
	c.touchLRU(v)
	c.Stats.NoteWrite(blockdev.BlockSize, lat)
	return lat, nil
}

// writeAttached updates a block bound to an SSD slot: re-derive the
// delta against the immutable slot content; oversized deltas write
// through to the SSD (paper §5.3).
func (c *Controller) writeAttached(v *vblock, buf []byte, newSig sig.Signature) (sim.Duration, error) {
	base, _, err := c.slotContent(v.slotRef, true)
	if err != nil {
		return 0, err
	}
	c.cpu.ChargeStorage(c.costs.DeltaEncode)
	c.Stats.EncodeOps++
	enc, ok := delta.Encode(buf, base, c.cfg.DeltaThreshold)
	if ok && c.storeDelta(v, enc, true) {
		if v.slotRef.donor == v.lba {
			v.kind = Reference
			v.ssdCurrent = false // the reference now carries a self-delta
		} else {
			v.kind = Associate
			// The signature keeps referring to the reference content
			// (paper §4.3): the association, not the new bytes, defines
			// the block's identity in the heatmap.
		}
		v.hddHome = false
		if err := c.cacheData(v, buf, false); err != nil {
			return 0, err
		}
		c.Stats.WriteDelta++
		c.Stats.NoteDelta(len(enc))
		if err := c.maybeFlush(); err != nil {
			return 0, err
		}
		return ram.AccessLatency, nil
	}
	// Delta too large (or no delta RAM left): direct SSD write.
	c.Stats.ScanDeltaRejects++
	v.sigv = newSig
	return c.writeThroughSSD(v, buf)
}

// writeIndependent updates an unattached block. Per Figure 1b the write
// path always performs similarity detection first: if a reference with
// a close signature accepts a small delta, the block attaches; if the
// delta would exceed the threshold (or no reference matches), the new
// data is written directly to the SSD, releasing delta-buffer space
// (§5.3) — this is the source of I-CASH's residual SSD writes in
// Table 6. Only when no SSD slot can be found does the write stay in a
// RAM data block.
func (c *Controller) writeIndependent(v *vblock, buf []byte, newSig sig.Signature) (sim.Duration, error) {
	v.sigv = newSig // independents re-sign on every write (paper §4.3)
	if c.ssdSidelined() {
		// HDD-only degraded mode, or a fail-slow SSD under quarantine:
		// no similarity detection, no write-through — plain RAM + home
		// semantics keep new traffic off the sidelined device.
		v.kind = Independent
		v.hddHome = false
		if err := c.cacheData(v, buf, true); err != nil {
			return 0, err
		}
		c.Stats.WriteIndependent++
		return ram.AccessLatency, nil
	}
	if s := c.findSimilarSlot(newSig); s != nil {
		base, _, err := c.slotContent(s, true)
		if err != nil {
			return 0, err
		}
		c.cpu.ChargeStorage(c.costs.DeltaEncode)
		c.Stats.EncodeOps++
		enc, ok := delta.Encode(buf, base, c.cfg.DeltaThreshold)
		if ok && c.storeDelta(v, enc, true) {
			c.attachSlot(v, s)
			c.promoteDonor(s)
			v.kind = Associate
			v.sigv = s.sigv
			v.hddHome = false
			if err := c.cacheData(v, buf, false); err != nil {
				return 0, err
			}
			c.Stats.WriteDelta++
			c.Stats.AssocFormed++
			c.Stats.NoteDelta(len(enc))
			if err := c.maybeFlush(); err != nil {
				return 0, err
			}
			return ram.AccessLatency, nil
		}
		c.Stats.ScanDeltaRejects++
	}
	// No delta representation possible: direct SSD write (§5.3).
	if len(c.freeSlots) > 0 || c.canReclaimSlot() {
		return c.writeThroughSSD(v, buf)
	}
	v.kind = Independent
	v.hddHome = false
	if err := c.cacheData(v, buf, true); err != nil {
		return 0, err
	}
	c.Stats.WriteIndependent++
	return ram.AccessLatency, nil
}

// tryFirstLoadPair attempts first-load similarity pairing (paper §4.2
// case 1): a freshly loaded block is compared against blocks at the
// same VM-image offset. A candidate that is already attached shares its
// reference slot; a similar *independent* candidate — the native
// machine's block before any clone touched it — is promoted to a
// reference on the spot, which is how VM-image clones bootstrap into
// reference + tiny delta without waiting for popularity to accumulate.
func (c *Controller) tryFirstLoadPair(v *vblock) {
	key := c.offsetKey(v.lba)
	if key < 0 || v.dataRAM == nil || c.ssdSidelined() {
		return
	}
	const maxCandidates = 3
	tried := 0
	for _, cand := range c.sameOffset[key] {
		if cand == v || cand.dead {
			continue
		}
		if sig.Distance(v.sigv, cand.sigv) > c.cfg.MaxSigDistance {
			continue
		}
		if tried++; tried > maxCandidates {
			return
		}
		s := cand.slotRef
		if s == nil {
			// Independent sibling: promote it to a reference first.
			content, _, _, err := c.materialize(cand, true)
			if err != nil {
				continue
			}
			s, err = c.installReference(cand, content)
			if err != nil || s == nil {
				continue
			}
		} else if cand.kind == Independent && !cand.ssdCurrent {
			continue
		}
		base, _, err := c.slotContent(s, true)
		if err != nil {
			continue
		}
		c.cpu.ChargeStorage(c.costs.DeltaEncode)
		c.Stats.EncodeOps++
		enc, ok := delta.Encode(v.dataRAM, base, c.cfg.DeltaThreshold)
		if !ok {
			c.Stats.ScanDeltaRejects++
			continue
		}
		if !c.storeDelta(v, enc, true) {
			return
		}
		c.attachSlot(v, s)
		c.promoteDonor(s)
		v.kind = Associate
		v.sigv = s.sigv // identity now refers to the reference
		c.Stats.FirstLoadPairs++
		c.Stats.AssocFormed++
		c.Stats.NoteDelta(len(enc))
		return
	}
}

// Preload installs content at lba's home location without touching
// timing, statistics or controller metadata. Harnesses use it to lay
// down the initial data set, mirroring a machine whose disks already
// hold the benchmark data.
func (c *Controller) Preload(lba int64, content []byte) error {
	if err := blockdev.CheckRange(lba, c.cfg.VirtualBlocks); err != nil {
		return err
	}
	p, ok := c.hdd.(blockdev.Preloader)
	if !ok {
		return fmt.Errorf("core: backing HDD does not support preloading")
	}
	if err := p.Preload(lba, content); err != nil {
		return err
	}
	// Preloaded content is known good: track it so home reads verify
	// from the first access.
	c.trackSum(lba, content)
	return nil
}

var _ blockdev.Device = (*Controller)(nil)
