package core

import (
	"fmt"
	"sort"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Group-commit machinery (DESIGN.md §12). The delta log is written in
// transactions: the commit buffer (control queue + dirty-delta queue)
// is drained into batches, each batch packed into one or more
// consecutive commit-record parts and made durable as one sequential
// HDD burst before any of its entries becomes visible to readers or to
// setLogIndex. Block reuse is transaction-granular — a block may be
// overwritten only when its whole transaction has no live records — so
// every on-disk transaction is either wholly intact or wholly dead,
// and recovery can discard incomplete ones without losing anything
// that was ever acknowledged.

// txnPart is one planned commit-record part of a transaction.
type txnPart struct {
	lo, hi int // entries[lo:hi] packed into this part
	block  int64
	metas  []entryMeta
}

// maxTxnBlocks bounds one transaction's footprint. Reuse is
// transaction-granular, so big transactions in a small log pin blocks
// too coarsely for the compactor to win; a sixteenth of the region
// keeps pinning fine-grained (tiny test logs degrade to single-block
// transactions, the old block-granular behavior) while real-sized logs
// still commit multi-block sequential bursts, capped at 64 blocks
// (256 KB of commit record).
func (c *Controller) maxTxnBlocks() int64 {
	n := c.cfg.LogBlocks / 16
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return n
}

// reserveLogBlocks is the compaction workspace (the LFS reserved-
// segment rule): batch commits never spend the last reserve blocks, so
// the compactor always has room to write a rescue transaction and can
// open space for the next batch.
func (c *Controller) reserveLogBlocks() int64 {
	n := c.cfg.LogBlocks / 4
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// logBlockFree reports whether log block b may be overwritten: healthy,
// and not part of a transaction that still has live records.
func (c *Controller) logBlockFree(b int64) bool {
	if c.badLogBlocks[b] {
		return false
	}
	t, ok := c.blockTxn[b]
	return !ok || c.txnLive[t] == 0
}

// logBlockAlloc walks the circular log from the frontier handing out
// overwritable blocks, each at most once per walk. It mutates nothing;
// the frontier advances only after a successful commit.
type logBlockAlloc struct {
	c     *Controller
	steps int64
}

func (c *Controller) newLogAlloc() logBlockAlloc { return logBlockAlloc{c: c} }

func (a *logBlockAlloc) take() (int64, bool) {
	for a.steps < a.c.cfg.LogBlocks {
		b := (a.c.logHead + a.steps) % a.c.cfg.LogBlocks
		a.steps++
		if a.c.logBlockFree(b) {
			return b, true
		}
	}
	return 0, false
}

// countFreeLogBlocks counts the overwritable blocks one frontier lap
// would find.
func (c *Controller) countFreeLogBlocks() int64 {
	a := c.newLogAlloc()
	n := int64(0)
	for {
		if _, ok := a.take(); !ok {
			return n
		}
		n++
	}
}

// newMetas hands out a pooled entryMeta slice for one packed block.
func (c *Controller) newMetas() []entryMeta {
	if n := len(c.metaPool); n > 0 {
		m := c.metaPool[n-1]
		c.metaPool = c.metaPool[:n-1]
		return m[:0]
	}
	return make([]entryMeta, 0, 16)
}

// newTxnBlocks hands out a pooled per-transaction block list.
func (c *Controller) newTxnBlocks() []int64 {
	if n := len(c.txnBlocksPool); n > 0 {
		b := c.txnBlocksPool[n-1]
		c.txnBlocksPool = c.txnBlocksPool[:n-1]
		return b[:0]
	}
	return make([]int64, 0, 4)
}

// recycleTxnBlocks returns a block list to the pool.
func (c *Controller) recycleTxnBlocks(b []int64) {
	if cap(b) == 0 || len(c.txnBlocksPool) >= 64 {
		return
	}
	c.txnBlocksPool = append(c.txnBlocksPool, b[:0])
}

// recycleMetas returns a meta slice to the pool.
func (c *Controller) recycleMetas(m []entryMeta) {
	if cap(m) == 0 || len(c.metaPool) >= 64 {
		return
	}
	c.metaPool = append(c.metaPool, m[:0])
}

// forgetLogBlock drops the RAM bookkeeping of a log block whose on-disk
// content has been destroyed (overwritten or failed): per-LBA census,
// packed-record metadata, and transaction membership. The caller must
// ensure no live logIndex record still points at the block — guaranteed
// for blocks obtained through logBlockFree. Called only after the
// destroying write actually happened: forgetting earlier would let a
// failed commit resurrect stale records at recovery (the on-disk old
// transaction would still be complete while RAM stopped counting it).
func (c *Controller) forgetLogBlock(b int64) {
	if metas, ok := c.logMeta[b]; ok {
		for i := range metas {
			m := &metas[i]
			c.perLba[m.lba]--
			if c.perLba[m.lba] <= 0 {
				delete(c.perLba, m.lba)
			}
		}
		delete(c.logMeta, b)
		c.recycleMetas(metas)
	}
	t, ok := c.blockTxn[b]
	if !ok {
		return
	}
	delete(c.blockTxn, b)
	blocks := c.txnBlocks[t]
	for i, bb := range blocks {
		if bb == b {
			blocks[i] = blocks[len(blocks)-1]
			c.txnBlocks[t] = blocks[:len(blocks)-1]
			break
		}
	}
	if len(c.txnBlocks[t]) == 0 {
		c.recycleTxnBlocks(c.txnBlocks[t])
		delete(c.txnBlocks, t)
		delete(c.txnLive, t)
	}
}

// journalWrite durably writes one commit-record part to log block b.
// The device time of a successful write is charged to the commit-path
// accounting before returning; failures surface classified, wrapped.
func (c *Controller) journalWrite(b int64, buf []byte) (sim.Duration, error) {
	d, err := c.hddWrite(c.cfg.VirtualBlocks+b, buf)
	if err != nil {
		return 0, fmt.Errorf("core: journal write block %d: %w", b, err)
	}
	c.Stats.NoteCommitWrite(d)
	return d, nil
}

// commitJournal drains the commit buffer — every pending dirty delta
// and control record — into group-commit transactions appended to the
// HDD journal. When the frontier lap finds no overwritable block, the
// compactor rescues the live records of the cheapest dead-most
// transactions first (LFS-style), as its own transaction, then the
// backlog continues. Quarantined SSD slots become reusable once a
// commit makes their tombstones durable.
func (c *Controller) commitJournal() error {
	if c.committing {
		return nil // re-entrant flush: the outer drain is already running
	}
	c.committing = true
	defer func() { c.committing = false }()
	// Relieve log pressure first: if the live volume plus this batch
	// would crowd the circular log, push the coldest blocks home.
	var pendingBytes int64
	for i := range c.control {
		pendingBytes += int64(entrySize(&c.control[i]))
	}
	for _, v := range c.dirtyQ {
		if v.inDirty && v.deltaDirty && v.deltaRAM != nil {
			pendingBytes += int64(entryHeadSize + len(v.deltaRAM))
		}
	}
	if err := c.shedLogPressure(pendingBytes); err != nil {
		return err
	}

	// Snapshot the commit buffer into the reusable staging area.
	pending := c.pendingScratch[:0]
	pending = append(pending, c.control...)
	c.control = c.control[:0]
	for _, v := range c.dirtyQ {
		if !v.inDirty || !v.deltaDirty || v.deltaRAM == nil || v.slotRef == nil {
			if v.inDirty {
				v.inDirty = false
			}
			continue
		}
		v.inDirty = false
		var flags byte
		if v.slotRef.donor == v.lba {
			flags |= flagDonor
		}
		pending = append(pending, logEntry{
			kind:  entryDelta,
			flags: flags,
			lba:   v.lba,
			slot:  v.slotRef.index,
			delta: v.deltaRAM,
		})
	}
	c.dirtyQ = c.dirtyQ[:0]
	c.dirtyBytes = 0
	c.pendingScratch = pending[:0]
	if len(pending) == 0 {
		return nil
	}
	c.Stats.FlushRuns++

	guard := 8 * c.cfg.LogBlocks // progress guard against a too-small log
	reserve := c.reserveLogBlocks()
	for len(pending) > 0 {
		if guard--; guard < 0 {
			c.requeuePending(pending)
			return fmt.Errorf("core: delta log too small for live delta volume (LogBlocks=%d)", c.cfg.LogBlocks)
		}
		if int64(len(c.badLogBlocks)) >= c.cfg.LogBlocks {
			c.requeuePending(pending)
			return fmt.Errorf("core: every log block has failed: %w", blockdev.ErrMedia)
		}
		freeBefore := c.countFreeLogBlocks()
		spend := freeBefore - reserve
		if spend <= 0 {
			// The batch is about to dip into the compaction reserve:
			// rescue the dead-most transactions first to open space.
			progressed, err := c.compactStep(false, nil)
			if err != nil {
				c.requeuePending(pending)
				return err
			}
			if progressed && c.countFreeLogBlocks() > freeBefore {
				continue // compaction opened net space; retry the batch
			}
			// Compaction cannot open net space right now (every tracked
			// transaction is near-fully live): spend the reserve on the
			// batch itself — its tombstones and superseding records are
			// what kill transactions and reopen space for the compactor.
			// The final block is never spent: with zero free blocks the
			// compactor could not write a rescue at all, and the log
			// would wedge permanently.
			spend = c.countFreeLogBlocks() - 1
			if spend <= 0 {
				// Every committed record supersedes the previous live
				// record for its LBA, so the batch itself can be the cure
				// for a pinned log rather than a victim of it. The final
				// workspace blocks may be spent on it — but only with
				// proof that the commit frees at least one block, or the
				// log wedges at zero for good.
				if free := c.countFreeLogBlocks(); free > 0 && c.prefixUnpins(pending, free) {
					n, err := c.writeTxn(pending, free)
					if err != nil {
						c.requeuePending(pending)
						return err
					}
					if n > 0 {
						pending = pending[n:]
						continue
					}
				}
				// Fragmentation wedge: every block but the workspace
				// floor is pinned and a pure rescue cannot win. Compact
				// aggressively — evictable delta records are written to
				// their home locations and rescued as tombstones, so
				// victims shrink far below their logged size. Entries of
				// the in-flight batch alias block RAM and block eviction
				// for their LBAs.
				inFlight := make(map[int64]bool, len(pending))
				for i := range pending {
					inFlight[pending[i].lba] = true
				}
				before := c.countFreeLogBlocks()
				progressed, err := c.compactStep(true, inFlight)
				if err != nil {
					c.requeuePending(pending)
					return err
				}
				if !progressed || c.countFreeLogBlocks() <= before {
					c.requeuePending(pending)
					return fmt.Errorf("core: delta log too small for live delta volume (LogBlocks=%d)", c.cfg.LogBlocks)
				}
				continue
			}
		}
		if m := c.maxTxnBlocks(); spend > m {
			spend = m
		}
		n, err := c.writeTxn(pending, spend)
		if err != nil {
			c.requeuePending(pending)
			return err
		}
		if n == 0 {
			// A media retirement between the count and the write can
			// shrink the lap to nothing; the guard bounds the retries.
			continue
		}
		pending = pending[n:]
	}

	// Tombstones for detached slots are now durable: release quarantine.
	if len(c.quarantine) > 0 {
		c.freeSlots = append(c.freeSlots, c.quarantine...)
		c.quarantine = c.quarantine[:0]
	}
	return c.groomLog()
}

// groomLog restores the compaction workspace after a flush drains. The
// byte-level governor (shedLogPressure) bounds live volume, but
// transaction pinning can exhaust free blocks while bytes look healthy;
// left alone, the workspace ratchets down across flushes until the
// drain loop wedges on its final block. Right after a drain is the
// cheapest moment to push back: the control queue is empty and no
// in-flight batch constrains eviction. Pure compaction is tried first;
// when it cannot gain, the evicting mode shrinks cold victims to
// tombstones. Failure to reach the reserve is not an error — the next
// drain's wedge path remains the backstop.
func (c *Controller) groomLog() error {
	reserve := c.reserveLogBlocks()
	guard := 4 * c.cfg.LogBlocks
	for c.countFreeLogBlocks() <= reserve {
		if guard--; guard < 0 {
			return nil
		}
		freeBefore := c.countFreeLogBlocks()
		if _, err := c.compactStep(false, nil); err != nil {
			return err
		}
		if c.countFreeLogBlocks() > freeBefore {
			continue
		}
		if _, err := c.compactStep(true, nil); err != nil {
			return err
		}
		if c.countFreeLogBlocks() <= freeBefore {
			return nil
		}
	}
	return nil
}

// writeTxn packs a prefix of entries into one transaction of at most
// blockCap commit-record parts, writes every part durably, and only
// then publishes the batch (logIndex, per-block metadata, stats).
// Returns how many entries committed; 0 with nil error means the
// frontier lap found no overwritable block. On error nothing of the
// transaction is visible.
func (c *Controller) writeTxn(entries []logEntry, blockCap int64) (int, error) {
	if blockCap < 1 {
		blockCap = 1
	}
	alloc := c.newLogAlloc()
	parts := c.partScratch[:0]
	n := 0
	for n < len(entries) && int64(len(parts)) < blockCap {
		blk, ok := alloc.take()
		if !ok {
			break
		}
		lo := n
		used := logHeaderSize
		metas := c.newMetas()
		for n < len(entries) {
			e := &entries[n]
			sz := entrySize(e)
			if used+sz > blockdev.BlockSize {
				break
			}
			e.seq = c.nextSeq()
			used += sz
			metas = append(metas, entryMeta{kind: e.kind, flags: e.flags, lba: e.lba, seq: e.seq, slot: e.slot, size: int32(sz)})
			n++
		}
		if n == lo {
			// The block was empty, so the next entry alone overflows it.
			c.recycleMetas(metas)
			c.partScratch = parts[:0]
			return 0, fmt.Errorf("core: delta record larger than a log block")
		}
		parts = append(parts, txnPart{lo: lo, hi: n, block: blk, metas: metas})
	}
	c.partScratch = parts
	if len(parts) == 0 {
		return 0, nil
	}

	txn := c.nextTxn
	c.nextTxn++
	// Pooled pack buffer: encodeLogBlock fully overwrites it and the
	// device copies it, so nothing aliases it past the defer.
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	abort := func() {
		for i := range parts {
			c.recycleMetas(parts[i].metas)
		}
		c.partScratch = parts[:0]
	}
	for i := range parts {
		p := &parts[i]
		hdr := blockHeader{txn: txn, epoch: c.logEpoch, part: uint16(i), total: uint16(len(parts))}
		if i == len(parts)-1 {
			hdr.flags |= blockFlagCommit
		}
		encodeLogBlock(buf, hdr, entries[p.lo:p.hi])
		for {
			_, err := c.journalWrite(p.block, buf)
			if err == nil {
				// The old content of this block is destroyed only now;
				// forgetting it earlier would let an aborted commit
				// resurrect its superseded records at recovery.
				c.forgetLogBlock(p.block)
				break
			}
			if blockdev.Classify(err) != blockdev.ClassMedia {
				// Device-level failure: nothing of the transaction is
				// visible; the caller re-queues and retries the batch.
				abort()
				return 0, err
			}
			// Latent defect under the frontier: the failed write may
			// have scribbled the block, so drop its old bookkeeping,
			// retire it, and move this part to the next free block.
			// Parts carry their index in the header, so their disk
			// placement is position-independent.
			c.forgetLogBlock(p.block)
			c.badLogBlocks[p.block] = true
			c.Stats.BadLogBlocks++
			nb, ok := alloc.take()
			if !ok {
				abort()
				return 0, fmt.Errorf("core: no usable log block after media failure: %w", blockdev.ErrMedia)
			}
			p.block = nb
		}
	}

	// Every part is durable: publish the transaction. Registration
	// precedes the logIndex updates so setLogIndex maintains txnLive.
	txnBlocks := c.newTxnBlocks()
	for i := range parts {
		p := &parts[i]
		c.logMeta[p.block] = p.metas
		c.blockTxn[p.block] = txn
		txnBlocks = append(txnBlocks, p.block)
		c.Stats.LogBlocksWritten++
	}
	c.txnBlocks[txn] = txnBlocks
	if _, ok := c.txnLive[txn]; !ok {
		c.txnLive[txn] = 0
	}
	payload := 0
	for i := range parts {
		p := &parts[i]
		for j := range p.metas {
			m := &p.metas[j]
			e := &entries[p.lo+j]
			payload += int(m.size)
			c.perLba[m.lba]++
			if debugLBA >= 0 {
				dbg(m.lba, "commit txn=%d kind=%d seq=%d block=%d", txn, m.kind, m.seq, p.block)
			}
			c.setLogIndex(m.lba, logRec{block: p.block, seq: m.seq, kind: m.kind, size: m.size})
			if m.kind == entryDelta {
				c.Stats.DeltasPacked++
				// A rescued delta is an older version: the newer dirty
				// delta (if any) is still waiting for its own commit.
				if v, ok := c.blocks[m.lba]; ok && !e.rescued {
					v.deltaDirty = false
				}
			}
		}
	}
	c.Stats.NoteCommit(payload)
	c.logHead = (c.logHead + alloc.steps) % c.cfg.LogBlocks
	return n, nil
}

// requeuePending pushes not-yet-durable commit work back onto the
// control queue after a failure: every entry keeps its payload (delta
// records carry their bytes), so the next commit packs the same records
// again with fresh sequence numbers. Compaction copies are dropped
// instead — their source records never stopped being live.
func (c *Controller) requeuePending(pending []logEntry) {
	for i := range pending {
		if pending[i].rescued {
			continue
		}
		c.control = append(c.control, pending[i])
	}
}

// compactStep rescues the live records of the transactions with the
// fewest survivors into one fresh transaction, which makes the victims'
// blocks overwritable once the rescue commits. Returns false when no
// space can be opened. The rescue commits as its own transaction BEFORE
// the backlog, so a superseding record for the same LBA always lands
// with a higher sequence number than its rescue.
// In evicting mode (evict=true) a live delta record whose block can be
// written back to its HDD home location is displaced instead of
// rescued: the content goes home, the vblock drops, and a 28-byte
// tombstone rides in the rescue transaction where the full delta would
// have. Victims shrink far below their logged size, which is what
// breaks fragmentation wedges a pure rescue cannot. Records whose LBA
// appears in inFlight (the drain loop's snapshotted batch) are never
// evicted — the pending entry aliases the block's RAM and must outrank
// the tombstone.
func (c *Controller) compactStep(evict bool, inFlight map[int64]bool) (bool, error) {
	// Write-free pass first: a tombstone that is the only record left
	// anywhere for its LBA no longer protects anything (the home
	// location is authoritative without it), so dropping it can release
	// whole transactions without writing a byte. This also works when
	// zero blocks are free and a rescue could not be written at all.
	var deadStones []int64
	for lba, rec := range c.logIndex {
		if rec.kind == entryTombstone && c.perLba[lba] == 1 {
			deadStones = append(deadStones, lba)
		}
	}
	freed := false
	if len(deadStones) > 0 {
		sort.Slice(deadStones, func(i, j int) bool { return deadStones[i] < deadStones[j] })
		before := c.countFreeLogBlocks()
		for _, lba := range deadStones {
			c.clearLogIndex(lba)
		}
		freed = c.countFreeLogBlocks() > before
	}
	free := c.countFreeLogBlocks()
	if free == 0 {
		return freed, nil
	}
	// recSize is a record's projected size in the rescue transaction:
	// full size normally, tombstone-sized when eviction will displace it.
	recSize := func(m *entryMeta) int64 {
		if evict && m.kind == entryDelta && c.compactEvictable(m.lba, m.slot, inFlight) != nil {
			return entryHeadSize
		}
		return int64(m.size)
	}
	// Victims in ascending live-density order (projected rescue bytes
	// per block), ties on id: deterministic, and maximizes the blocks
	// freed per byte of rescue the workspace can hold.
	type victim struct {
		txn    uint64
		blocks int64
		bytes  int64
	}
	var vs []victim
	for t, live := range c.txnLive {
		if live > 0 {
			vs = append(vs, victim{txn: t})
		}
	}
	if len(vs) == 0 {
		return freed, nil
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].txn < vs[j].txn })
	for k := range vs {
		v := &vs[k]
		v.blocks = int64(len(c.txnBlocks[v.txn]))
		for _, b := range c.txnBlocks[v.txn] {
			metas := c.logMeta[b]
			for i := range metas {
				m := &metas[i]
				if rec, live := c.logIndex[m.lba]; live && rec.block == b && rec.seq == m.seq {
					v.bytes += recSize(m)
				}
			}
		}
	}
	sort.Slice(vs, func(i, j int) bool {
		di, dj := vs[i].bytes*vs[j].blocks, vs[j].bytes*vs[i].blocks
		if di != dj {
			return di < dj
		}
		if vs[i].bytes != vs[j].bytes {
			return vs[i].bytes < vs[j].bytes
		}
		return vs[i].txn < vs[j].txn
	})
	// Accept victims whose rescues, packed exactly the way writeTxn
	// packs (greedy, in order), fit the rescue budget; a victim too big
	// for the remaining budget is skipped, not a stopper — a denser
	// later victim may still fit. Dropped tombstones during the real
	// rescue only shrink the packing. The net-gain rule below keeps an
	// uncapped budget honest: a rescue may span many blocks only when
	// it frees strictly more.
	budget := free
	blocksUsed, usedInBlock := int64(0), 0
	fits := func(sz int) bool {
		if usedInBlock+sz > blockdev.BlockSize {
			if blocksUsed+1 >= budget {
				return false
			}
			blocksUsed++
			usedInBlock = logHeaderSize
		}
		usedInBlock += sz
		return true
	}
	usedInBlock = blockdev.BlockSize // force first record to open block 0
	blocksUsed = -1
	picked := vs[:0]
	for _, v := range vs {
		before, beforeUsed := blocksUsed, usedInBlock
		ok := true
		for _, b := range c.txnBlocks[v.txn] {
			metas := c.logMeta[b]
			for i := range metas {
				m := &metas[i]
				rec, live := c.logIndex[m.lba]
				if !live || rec.block != b || rec.seq != m.seq {
					continue
				}
				if !fits(int(recSize(m))) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			blocksUsed, usedInBlock = before, beforeUsed
			continue
		}
		picked = append(picked, v)
	}
	if len(picked) == 0 {
		return freed, nil
	}
	// A rescue must open strictly more blocks than it spends: a
	// net-zero move only rearranges pins (and merges victims into the
	// immovable dense transactions it would later have to move again).
	var victimBlocks int64
	for _, v := range picked {
		victimBlocks += v.blocks
	}
	if victimBlocks < blocksUsed+2 {
		return freed, nil
	}

	rescues := c.rescueScratch[:0]
	var err error
	var displaced map[int64]bool
	if evict {
		// Evictions first, in a separate pass: writing content home can
		// hit RAM pressure whose reclaim path recycles delta buffers,
		// and the rescue pass below aliases live vblocks' delta RAM.
		displaced = make(map[int64]bool)
		for _, v := range picked {
			rescues, err = c.evictTxnDeltas(v.txn, rescues, inFlight, displaced)
			if err != nil {
				c.rescueScratch = rescues[:0]
				return false, err
			}
		}
	}
	for _, v := range picked {
		rescues, err = c.rescueTxn(v.txn, rescues, displaced)
		if err != nil {
			c.rescueScratch = rescues[:0]
			return false, err
		}
		c.Stats.LogCleanerRuns++
	}
	c.rescueScratch = rescues[:0]
	if len(rescues) == 0 {
		// Every live record was a droppable tombstone; the victims are
		// already dead and their blocks free without writing anything.
		return true, nil
	}
	n, err := c.writeTxn(rescues, budget)
	if err != nil {
		return false, err
	}
	if n < len(rescues) {
		// The budget above guarantees this cannot happen; fail loudly
		// rather than free victim blocks with rescues missing.
		return false, fmt.Errorf("core: compaction committed %d of %d rescues", n, len(rescues))
	}
	return true, nil
}

// prefixUnpins reports whether committing the prefix of pending that
// fits within budget blocks would fully unpin at least one tracked
// transaction. Every committed record — control or delta — supersedes
// the previous live record for its LBA, so a batch write can be the
// cure for a pinned log rather than a victim of it. The simulation
// mirrors writeTxn's greedy packing; only the first record per LBA
// counts, because later duplicates supersede within the new
// transaction, not the old one.
func (c *Controller) prefixUnpins(pending []logEntry, budget int64) bool {
	dec := make(map[uint64]int)
	seen := make(map[int64]bool)
	used := logHeaderSize
	for i := range pending {
		e := &pending[i]
		sz := entrySize(e)
		if used+sz > blockdev.BlockSize {
			if budget--; budget <= 0 {
				break
			}
			used = logHeaderSize
		}
		used += sz
		if seen[e.lba] {
			continue // only the first new record supersedes the current one
		}
		seen[e.lba] = true
		if rec, ok := c.logIndex[e.lba]; ok {
			if t, ok := c.blockTxn[rec.block]; ok {
				dec[t]++
			}
		}
	}
	for t, d := range dec {
		if c.txnLive[t] == d {
			return true
		}
	}
	return false
}

// compactEvictable returns the vblock behind a live delta record when
// the evicting compactor may displace it to its home location, nil
// otherwise. Pending batch entries alias the block's RAM; the pinned
// block is mid-operation; a reference with associates may be the only
// durable source of its slot's base content (its self-delta means the
// flash copy is the base's last copy), so only an associate-free
// reference is demoted.
func (c *Controller) compactEvictable(lba int64, slot int64, inFlight map[int64]bool) *vblock {
	if inFlight[lba] {
		return nil
	}
	v := c.blocks[lba]
	if v == nil || v == c.pinned {
		return nil
	}
	if v.kind == Reference && v.slotRef != nil && v.slotRef.refcnt > 1 {
		return nil
	}
	return v
}

// evictTxnDeltas displaces the evictable delta records of txn: content
// goes to its HDD home, the vblock drops, and a tombstone is appended
// to dst in place of the full rescue. Displaced LBAs are recorded so
// the rescue pass skips them.
func (c *Controller) evictTxnDeltas(txn uint64, dst []logEntry, inFlight map[int64]bool, displaced map[int64]bool) ([]logEntry, error) {
	for _, b := range c.txnBlocks[txn] {
		metas := c.logMeta[b]
		for i := range metas {
			m := &metas[i]
			rec, ok := c.logIndex[m.lba]
			if !ok || rec.block != b || rec.seq != m.seq || m.kind != entryDelta {
				continue
			}
			v := c.compactEvictable(m.lba, m.slot, inFlight)
			if v == nil {
				continue
			}
			if !v.hddHome || v.dataDirty {
				content, _, _, err := c.materialize(v, true)
				if err != nil {
					return dst, err
				}
				if err := c.writeHome(v, content); err != nil {
					return dst, err
				}
			}
			c.Stats.WritebacksHome++
			c.dropVBlock(v)
			dst = append(dst, logEntry{kind: entryTombstone, rescued: true, lba: m.lba})
			displaced[m.lba] = true
			if debugLBA >= 0 {
				dbg(m.lba, "compact-evict txn=%d seq=%d block=%d", txn, m.seq, b)
			}
		}
	}
	return dst, nil
}

// journalAsm assembles transactions from raw journal blocks. Crash
// recovery, the post-recovery audit, and the replay fuzzer all drive
// this same assembly, so they agree exactly on what "complete" means.
type journalAsm struct {
	blocks      map[int64]asmBlock // decodable journal blocks by log index
	txns        map[uint64]*asmTxn
	torn        int64 // CRC-corrupt or structurally invalid blocks
	maxSeq      uint64
	maxSeqBlock int64
	maxTxn      uint64
	maxEpoch    uint64
}

// asmBlock is one decoded commit-record part.
type asmBlock struct {
	hdr     blockHeader
	entries []logEntry
}

// asmTxn accumulates the parts seen for one transaction id.
type asmTxn struct {
	epoch  uint64
	total  int
	commit bool
	bad    bool // conflicting headers or duplicate parts
	seen   map[uint16]int64
}

func newJournalAsm() *journalAsm {
	return &journalAsm{
		blocks: make(map[int64]asmBlock),
		txns:   make(map[uint64]*asmTxn),
	}
}

// addBlock decodes one raw log block into the assembly. A corrupt
// block counts as torn (voiding its transaction); a block without
// journal magic is ignored.
func (a *journalAsm) addBlock(b int64, buf []byte) {
	hdr, entries, err := decodeLogBlock(buf)
	if err != nil {
		a.torn++
		return
	}
	if hdr.total == 0 {
		return // no magic: never-written block
	}
	a.blocks[b] = asmBlock{hdr: hdr, entries: entries}
	t := a.txns[hdr.txn]
	if t == nil {
		t = &asmTxn{epoch: hdr.epoch, total: int(hdr.total), seen: make(map[uint16]int64)}
		a.txns[hdr.txn] = t
	}
	// A part disagreeing with its siblings on epoch or part count — a
	// stale leftover reusing a transaction id — poisons the whole
	// transaction, as does the same part index appearing twice.
	if t.epoch != hdr.epoch || t.total != int(hdr.total) {
		t.bad = true
	}
	if _, dup := t.seen[hdr.part]; dup {
		t.bad = true
	}
	t.seen[hdr.part] = b
	if hdr.commit() {
		t.commit = true
	}
	if hdr.txn > a.maxTxn {
		a.maxTxn = hdr.txn
	}
	if hdr.epoch > a.maxEpoch {
		a.maxEpoch = hdr.epoch
	}
	// Sequence numbers from incomplete transactions count too: records
	// written after recovery must outrank everything left on the disk.
	for i := range entries {
		if entries[i].seq > a.maxSeq {
			a.maxSeq = entries[i].seq
			a.maxSeqBlock = b
		}
	}
}

// complete reports whether t assembled fully: every part present
// exactly once, headers consistent, commit marker seen. Anything less
// is discarded in full — never partially applied.
func (t *asmTxn) complete() bool {
	return !t.bad && t.commit && len(t.seen) == t.total
}

// rescueTxn appends rescue copies of every still-live record of txn to
// dst. Delta bytes come from RAM when it holds that exact version,
// otherwise from the victim's own blocks on disk. A tombstone that is
// the last record anywhere for its LBA is dropped instead (the home
// location is already authoritative without it). Sources stay live —
// the rescue supersedes them only when its transaction commits.
func (c *Controller) rescueTxn(txn uint64, dst []logEntry, displaced map[int64]bool) ([]logEntry, error) {
	var blockData []byte // lazily read only if delta bytes are needed
	// Pooled: decodeLogBlock copies delta bytes out, so the rescued
	// entries never alias blockData and the Put below is safe.
	defer func() { blockdev.PutBlock(blockData) }()
	for _, b := range c.txnBlocks[txn] {
		metas := c.logMeta[b]
		blockRead := false
		var blockEntries []logEntry
		for i := range metas {
			m := &metas[i]
			rec, ok := c.logIndex[m.lba]
			if !ok || rec.block != b || rec.seq != m.seq {
				continue // superseded: dead record
			}
			if displaced[m.lba] {
				continue // evicted home; its tombstone already rides along
			}
			if debugLBA >= 0 {
				dbg(m.lba, "rescue txn=%d kind=%d seq=%d block=%d", txn, m.kind, m.seq, b)
			}
			switch m.kind {
			case entryDelta:
				// This is the newest DURABLE record for the LBA, so it
				// must survive even when RAM says a newer version is
				// coming (a dirty delta, a promotion): that newer
				// version is not durable until its own record commits,
				// and a crash in between must still find this one.
				var bytes []byte
				v := c.blocks[m.lba]
				if v != nil && v.slotRef != nil && v.slotRef.index == m.slot &&
					!v.ssdCurrent && !v.deltaDirty && v.deltaRAM != nil {
					bytes = v.deltaRAM
				} else {
					// RAM does not hold this exact delta version
					// (evicted metadata, or a newer dirty delta in its
					// place): read the logged bytes back from the block.
					if !blockRead {
						if blockData == nil {
							blockData = blockdev.GetBlock()
						}
						d, err := c.hddRead(c.cfg.VirtualBlocks+b, blockData)
						if err != nil {
							return dst, fmt.Errorf("core: compaction read: %w", err)
						}
						c.Stats.BackgroundHDDTime += d
						_, blockEntries, err = decodeLogBlock(blockData)
						if err != nil {
							return dst, fmt.Errorf("core: log block %d: %w", b, err)
						}
						blockRead = true
					}
					for j := range blockEntries {
						if blockEntries[j].seq == m.seq {
							bytes = blockEntries[j].delta
							break
						}
					}
					if bytes == nil {
						return dst, fmt.Errorf("core: log block %d missing seq %d", b, m.seq)
					}
				}
				dst = append(dst, logEntry{kind: entryDelta, flags: m.flags, rescued: true, lba: m.lba, slot: m.slot, delta: bytes})
				c.Stats.DeltasRescued++
			case entryPointer:
				dst = append(dst, logEntry{kind: entryPointer, flags: m.flags, rescued: true, lba: m.lba, slot: m.slot})
			case entryTombstone:
				// Recovery replays the newest record per LBA, so a
				// tombstone must outlive every older record for its LBA.
				// Only when it is the last record anywhere may it drop:
				// with no records at all, home is authoritative anyway.
				if c.perLba[m.lba] > 1 {
					dst = append(dst, logEntry{kind: entryTombstone, rescued: true, lba: m.lba})
				} else {
					c.clearLogIndex(m.lba)
				}
			}
		}
	}
	return dst, nil
}
