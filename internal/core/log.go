package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// The HDD delta log (paper §3.3) is a circular region of 4 KB blocks
// following the primary region. Each log block packs many records so
// that one sequential HDD write commits many I/Os' worth of deltas and
// one HDD read on a miss prefetches many deltas at once.
//
// On-disk log block layout (little endian):
//
//	[0:4)   magic "ICLG"
//	[4:6)   record count
//	[6:10)  CRC32 (IEEE) of the whole block with this field zeroed
//	then per record:
//	    kind   byte   (1 delta, 2 ssd pointer, 3 tombstone)
//	    flags  byte   (bit 0: donor — the LBA is the slot's donor)
//	    lba    int64
//	    seq    uint64
//	    slot   int64  (delta: reference slot; pointer: content slot)
//	    dlen   uint16 (delta bytes following; 0 for pointer/tombstone)
//	    delta  [dlen]byte
//
// Recovery scans the region and applies, per LBA, the record with the
// highest sequence number: delta → attach to slot, pointer → content in
// SSD, tombstone → the HDD home location is authoritative.

type entryKind uint8

const (
	entryDelta     entryKind = 1
	entryPointer   entryKind = 2
	entryTombstone entryKind = 3
)

// ErrCorruptLogBlock reports a log block whose magic is present but
// whose checksum or structure does not hold — the signature of a torn
// (partially persisted) or corrupted log write. Recovery treats such a
// block as holding no records: whatever it carried was the unflushed
// tail of the bounded reliability window (§3.3).
var ErrCorruptLogBlock = errors.New("core: corrupt log block")

const (
	logMagic      = "ICLG"
	logHeaderSize = 10
	entryHeadSize = 1 + 1 + 8 + 8 + 8 + 2
	// flagDonor marks the record's LBA as the donor of its slot.
	flagDonor byte = 1 << 0
	// flagReference marks a pointer record installed as a reference by
	// the scan (vs. a threshold write-through).
	flagReference byte = 1 << 1
)

// logEntry is a record queued for packing. seq is assigned at pack time.
type logEntry struct {
	kind  entryKind
	flags byte
	lba   int64
	seq   uint64
	slot  int64
	delta []byte
}

// entryMeta is the RAM-resident metadata the cleaner keeps per packed
// record (no delta bytes).
type entryMeta struct {
	kind  entryKind
	flags byte
	lba   int64
	seq   uint64
	slot  int64
	size  int32 // packed size including header
}

// logRec is the logIndex value: where the newest durable record for an
// LBA lives.
type logRec struct {
	block int64
	seq   uint64
	kind  entryKind
	size  int32
}

// setLogIndex updates the newest-record index for lba, maintaining the
// live-byte estimate used for log-pressure shedding.
func (c *Controller) setLogIndex(lba int64, rec logRec) {
	if old, ok := c.logIndex[lba]; ok {
		c.liveLogBytes -= int64(old.size)
	}
	c.logIndex[lba] = rec
	c.liveLogBytes += int64(rec.size)
}

// clearLogIndex removes the newest-record index entry for lba.
func (c *Controller) clearLogIndex(lba int64) {
	if old, ok := c.logIndex[lba]; ok {
		c.liveLogBytes -= int64(old.size)
		delete(c.logIndex, lba)
	}
}

// logCapacityBytes is the usable payload capacity of the log region,
// with one block of slack for the write frontier. Log blocks retired
// after write failures no longer count.
func (c *Controller) logCapacityBytes() int64 {
	usable := c.cfg.LogBlocks - 1 - int64(len(c.badLogBlocks))
	if usable < 1 {
		usable = 1
	}
	return usable * int64(blockdev.BlockSize-logHeaderSize)
}

// shedLogPressure keeps the live-record volume within the log capacity
// by writing the coldest delta-carrying blocks back to their home
// locations (their records become tombstones). Without shedding a
// too-small log would livelock in the cleaner.
func (c *Controller) shedLogPressure(pendingBytes int64) error {
	limit := c.logCapacityBytes() * 3 / 4
	projected := c.liveLogBytes + pendingBytes
	for projected > limit {
		var victim *vblock
		for v := c.lru.tail; v != nil; v = v.prev {
			if v == c.pinned || v.kind == Reference {
				continue
			}
			if v.deltaRAM != nil || c.deltaLogged(v) {
				victim = v
				break
			}
		}
		if victim == nil {
			return nil
		}
		if victim.deltaDirty && victim.deltaRAM != nil {
			projected -= int64(entryHeadSize + len(victim.deltaRAM))
		}
		if rec, ok := c.logIndex[victim.lba]; ok && rec.kind == entryDelta {
			projected -= int64(rec.size)
		}
		projected += entryHeadSize // the tombstone
		if err := c.evictToHome(victim); err != nil {
			return err
		}
	}
	return nil
}

// nextSeq hands out monotonically increasing record sequence numbers.
func (c *Controller) nextSeq() uint64 {
	c.logSeq++
	return c.logSeq
}

// queueControl appends a control record (pointer/tombstone) for the next
// flush.
func (c *Controller) queueControl(e logEntry) {
	c.control = append(c.control, e)
}

// maybeFlush flushes when dirty volume or the periodic op counter says
// so (paper §3.3: the flush interval is a tunable reliability knob).
func (c *Controller) maybeFlush() error {
	if c.dirtyBytes >= c.cfg.FlushDirtyBytes {
		return c.flushDeltas()
	}
	if c.cfg.FlushPeriodOps > 0 && c.opCount%int64(c.cfg.FlushPeriodOps) == 0 &&
		(len(c.dirtyQ) > 0 || len(c.control) > 0) {
		return c.flushDeltas()
	}
	return nil
}

// entrySize returns the packed size of e.
func entrySize(e *logEntry) int { return entryHeadSize + len(e.delta) }

// flushDeltas packs every pending dirty delta and control record into
// log blocks and appends them sequentially to the HDD log region. Log
// blocks about to be overwritten are cleaned first: still-live records
// are re-queued (LFS-style). Quarantined SSD slots become reusable once
// the flush commits their tombstones.
func (c *Controller) flushDeltas() error {
	// Relieve log pressure first: if the live volume plus this flush
	// would crowd the circular log, push the coldest blocks home.
	var pendingBytes int64
	for i := range c.control {
		pendingBytes += int64(entrySize(&c.control[i]))
	}
	for _, v := range c.dirtyQ {
		if v.inDirty && v.deltaDirty && v.deltaRAM != nil {
			pendingBytes += int64(entryHeadSize + len(v.deltaRAM))
		}
	}
	if err := c.shedLogPressure(pendingBytes); err != nil {
		return err
	}

	// Snapshot pending work. Records rescued by cleaning are appended
	// to this same queue while we drain it.
	pending := make([]logEntry, 0, len(c.control)+len(c.dirtyQ))
	pending = append(pending, c.control...)
	c.control = c.control[:0]
	for _, v := range c.dirtyQ {
		if !v.inDirty || !v.deltaDirty || v.deltaRAM == nil || v.slotRef == nil {
			if v.inDirty {
				v.inDirty = false
			}
			continue
		}
		v.inDirty = false
		var flags byte
		if v.slotRef.donor == v.lba {
			flags |= flagDonor
		}
		pending = append(pending, logEntry{
			kind:  entryDelta,
			flags: flags,
			lba:   v.lba,
			slot:  v.slotRef.index,
			delta: v.deltaRAM,
		})
	}
	c.dirtyQ = c.dirtyQ[:0]
	c.dirtyBytes = 0
	if len(pending) == 0 {
		return nil
	}
	c.Stats.FlushRuns++

	// Pooled pack buffer: encodeLogBlock fully overwrites it and the
	// device copies it, so nothing aliases it past the defer.
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	guard := 4 * c.cfg.LogBlocks // progress guard against a too-small log
	for len(pending) > 0 {
		if guard--; guard < 0 {
			c.requeuePending(pending)
			return fmt.Errorf("core: delta log too small for live delta volume (LogBlocks=%d)", c.cfg.LogBlocks)
		}
		if int64(len(c.badLogBlocks)) >= c.cfg.LogBlocks {
			c.requeuePending(pending)
			return fmt.Errorf("core: every log block has failed: %w", blockdev.ErrMedia)
		}
		for c.badLogBlocks[c.logHead] {
			c.logHead = (c.logHead + 1) % c.cfg.LogBlocks
		}
		target := c.logHead
		// The frontier only ever lands on a block with no live records:
		// the previous iteration (or recovery) already relocated them.
		// Cleaning target here is a defensive no-op in normal operation;
		// it does work only when that invariant could not be established
		// (a recovered log with every block live).
		rescued, err := c.cleanLogBlock(target)
		if err != nil {
			c.requeuePending(pending)
			return err
		}
		// Rescue-before-overwrite: relocate the NEXT block's live records
		// into THIS write, so by the time the frontier reaches that block
		// its old copies are already durable elsewhere. Packing a block's
		// rescued records into the very write that overwrites their own
		// block would lose them to a torn write at a crash point.
		next := (target + 1) % c.cfg.LogBlocks
		for c.badLogBlocks[next] && next != target {
			next = (next + 1) % c.cfg.LogBlocks
		}
		if next != target {
			r2, err := c.cleanLogBlock(next)
			if err != nil {
				c.requeuePending(append(rescued, pending...))
				return err
			}
			rescued = append(rescued, r2...)
		}
		if len(rescued) > 0 {
			// Rescued records go first: one block's records always fit in
			// one block, so they commit in this write, ahead of the
			// frontier overwriting their source.
			pending = append(rescued, pending...)
		}

		// Pack records into one block.
		n := 0
		used := logHeaderSize
		metas := make([]entryMeta, 0, 8)
		for n < len(pending) {
			e := &pending[n]
			sz := entrySize(e)
			if used+sz > blockdev.BlockSize {
				break
			}
			e.seq = c.nextSeq()
			used += sz
			metas = append(metas, entryMeta{kind: e.kind, flags: e.flags, lba: e.lba, seq: e.seq, slot: e.slot, size: int32(sz)})
			n++
		}
		if n == 0 {
			return fmt.Errorf("core: delta record larger than a log block")
		}
		encodeLogBlock(buf, pending[:n])
		d, err := c.hddWrite(c.cfg.VirtualBlocks+target, buf)
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassMedia {
				// Latent defect under the log frontier: retire this log
				// block and pack the same records into the next one.
				// Nothing from this block landed, so nothing is lost.
				c.badLogBlocks[target] = true
				c.Stats.BadLogBlocks++
				c.logHead = (c.logHead + 1) % c.cfg.LogBlocks
				continue
			}
			// Device-level failure: requeue everything still pending so
			// no delta or tombstone silently vanishes, and surface the
			// error. The next flush attempt retries the whole batch.
			c.requeuePending(pending)
			return fmt.Errorf("core: log write: %w", err)
		}
		c.Stats.BackgroundHDDTime += d
		c.Stats.LogBlocksWritten++

		// Commit indexes.
		c.logMeta[target] = metas
		for i := range metas {
			m := &metas[i]
			c.perLba[m.lba]++
			dbg(m.lba, "commit kind=%d seq=%d block=%d", m.kind, m.seq, target)
			c.setLogIndex(m.lba, logRec{block: target, seq: m.seq, kind: m.kind, size: m.size})
			if m.kind == entryDelta {
				c.Stats.DeltasPacked++
				if v, ok := c.blocks[m.lba]; ok {
					v.deltaDirty = false
				}
			}
		}
		pending = pending[n:]
		c.logHead = (c.logHead + 1) % c.cfg.LogBlocks
	}

	// Tombstones for detached slots are now durable: release quarantine.
	if len(c.quarantine) > 0 {
		c.freeSlots = append(c.freeSlots, c.quarantine...)
		c.quarantine = c.quarantine[:0]
	}
	return nil
}

// requeuePending pushes not-yet-durable flush work back onto the
// control queue after a mid-flush failure: every entry keeps its
// payload (delta records carry their bytes), so the next flush packs
// the same records again with fresh sequence numbers. Without this, a
// failed log write would silently drop tombstones and deltas whose
// vblocks were already marked clean in the dirty queue.
func (c *Controller) requeuePending(pending []logEntry) {
	c.control = append(c.control, pending...)
}

// cleanLogBlock prepares log block b for overwriting: every record in it
// is forgotten, and records that are still the newest for their LBA are
// rescued — re-queued so they land in a fresh block. Returns the rescue
// queue.
func (c *Controller) cleanLogBlock(b int64) ([]logEntry, error) {
	metas := c.logMeta[b]
	if len(metas) == 0 {
		return nil, nil
	}
	var rescued []logEntry
	var blockData []byte // lazily read only if delta bytes are needed
	// Pooled: decodeLogBlock copies delta bytes out, so the rescued
	// entries never alias blockData and the Put below is safe.
	defer func() { blockdev.PutBlock(blockData) }()
	readBlock := func() error {
		if blockData != nil {
			return nil
		}
		blockData = blockdev.GetBlock()
		d, err := c.hddRead(c.cfg.VirtualBlocks+b, blockData)
		if err != nil {
			return fmt.Errorf("core: log clean read: %w", err)
		}
		c.Stats.BackgroundHDDTime += d
		return nil
	}
	cleaned := false
	for i := range metas {
		m := &metas[i]
		c.perLba[m.lba]--
		if c.perLba[m.lba] <= 0 {
			delete(c.perLba, m.lba)
		}
		rec, ok := c.logIndex[m.lba]
		if !ok || rec.block != b || rec.seq != m.seq {
			continue // superseded: dead record
		}
		dbg(m.lba, "clean live rec kind=%d seq=%d block=%d", m.kind, m.seq, b)
		c.clearLogIndex(m.lba)
		v := c.blocks[m.lba]
		switch m.kind {
		case entryDelta:
			// This is the newest DURABLE record for the LBA, so it must
			// survive even when RAM state says a newer version is coming
			// (a dirty delta, a promotion): that newer version is not
			// durable until its own record commits, and a crash in
			// between must still find this one. Rescued records are
			// repacked ahead of pending work, so the superseding record
			// always commits with a higher sequence number.
			var bytes []byte
			if v != nil && v.slotRef != nil && v.slotRef.index == m.slot &&
				!v.ssdCurrent && !v.deltaDirty && v.deltaRAM != nil {
				bytes = v.deltaRAM
			} else {
				// RAM does not hold this exact delta version (evicted
				// metadata, or a newer dirty delta in its place): read
				// the logged bytes back from the block itself.
				if err := readBlock(); err != nil {
					return rescued, err
				}
				entries, err := decodeLogBlock(blockData)
				if err != nil {
					return rescued, fmt.Errorf("core: log block %d: %w", b, err)
				}
				for j := range entries {
					if entries[j].seq == m.seq {
						bytes = entries[j].delta
						break
					}
				}
				if bytes == nil {
					return rescued, fmt.Errorf("core: log block %d missing seq %d", b, m.seq)
				}
			}
			rescued = append(rescued, logEntry{kind: entryDelta, flags: m.flags, lba: m.lba, slot: m.slot, delta: bytes})
			c.Stats.DeltasRescued++
			cleaned = true
		case entryPointer:
			rescued = append(rescued, logEntry{kind: entryPointer, flags: m.flags, lba: m.lba, slot: m.slot})
			cleaned = true
		case entryTombstone:
			// Recovery replays the newest *raw* record per LBA, so a
			// tombstone must outlive every older record for its LBA —
			// even if the block is alive in RAM right now (RAM state
			// does not survive the crash; the log must stand alone).
			if c.perLba[m.lba] > 0 {
				rescued = append(rescued, logEntry{kind: entryTombstone, lba: m.lba})
				cleaned = true
			}
		}
	}
	delete(c.logMeta, b)
	if cleaned {
		c.Stats.LogCleanerRuns++
	}
	return rescued, nil
}

// logBlockCRC computes the block checksum: CRC32-IEEE over the whole
// block with the checksum field treated as zero (computed piecewise so
// the caller's buffer is never mutated).
func logBlockCRC(buf []byte) uint32 {
	var zero [4]byte
	crc := crc32.Update(0, crc32.IEEETable, buf[0:6])
	crc = crc32.Update(crc, crc32.IEEETable, zero[:])
	return crc32.Update(crc, crc32.IEEETable, buf[10:])
}

// encodeLogBlock serializes records into buf (4 KB, zero padded).
func encodeLogBlock(buf []byte, entries []logEntry) {
	for i := range buf {
		buf[i] = 0
	}
	copy(buf[0:4], logMagic)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(entries)))
	off := logHeaderSize
	for i := range entries {
		e := &entries[i]
		buf[off] = byte(e.kind)
		buf[off+1] = e.flags
		binary.LittleEndian.PutUint64(buf[off+2:], uint64(e.lba))
		binary.LittleEndian.PutUint64(buf[off+10:], e.seq)
		binary.LittleEndian.PutUint64(buf[off+18:], uint64(e.slot))
		binary.LittleEndian.PutUint16(buf[off+26:], uint16(len(e.delta)))
		off += entryHeadSize
		copy(buf[off:], e.delta)
		off += len(e.delta)
	}
	binary.LittleEndian.PutUint32(buf[6:10], logBlockCRC(buf))
}

// decodeLogBlock parses a log block; a block that never held log data
// (no magic) yields no entries. A block whose magic is present but
// whose checksum or structure fails returns ErrCorruptLogBlock — the
// torn-write signature.
func decodeLogBlock(buf []byte) ([]logEntry, error) {
	if string(buf[0:4]) != logMagic {
		return nil, nil
	}
	if got, want := binary.LittleEndian.Uint32(buf[6:10]), logBlockCRC(buf); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, computed %08x", ErrCorruptLogBlock, got, want)
	}
	count := int(binary.LittleEndian.Uint16(buf[4:6]))
	entries := make([]logEntry, 0, count)
	off := logHeaderSize
	for i := 0; i < count; i++ {
		if off+entryHeadSize > len(buf) {
			return nil, fmt.Errorf("%w: record %d overruns block", ErrCorruptLogBlock, i)
		}
		e := logEntry{
			kind:  entryKind(buf[off]),
			flags: buf[off+1],
			lba:   int64(binary.LittleEndian.Uint64(buf[off+2:])),
			seq:   binary.LittleEndian.Uint64(buf[off+10:]),
			slot:  int64(binary.LittleEndian.Uint64(buf[off+18:])),
		}
		dlen := int(binary.LittleEndian.Uint16(buf[off+26:]))
		off += entryHeadSize
		if off+dlen > len(buf) {
			return nil, fmt.Errorf("%w: record %d delta overruns block", ErrCorruptLogBlock, i)
		}
		if dlen > 0 {
			e.delta = append([]byte(nil), buf[off:off+dlen]...)
			off += dlen
		}
		switch e.kind {
		case entryDelta, entryPointer, entryTombstone:
		default:
			return nil, fmt.Errorf("%w: record %d has unknown kind %d", ErrCorruptLogBlock, i, e.kind)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// loadDeltaBlock services a read-path miss on a delta that lives only in
// the log: one HDD read fetches the packed block, and every still-live
// delta in it is prefetched into RAM — the paper's "one HDD operation
// yields many I/Os" effect. Returns the synchronous latency.
func (c *Controller) loadDeltaBlock(b int64) (sim.Duration, error) {
	// Pooled: decodeLogBlock copies delta bytes out before the Put.
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	d, err := c.hddRead(c.cfg.VirtualBlocks+b, buf)
	if err != nil {
		return 0, fmt.Errorf("core: log read: %w", err)
	}
	c.Stats.ReadLogLoads++
	entries, err := decodeLogBlock(buf)
	if err != nil {
		return d, fmt.Errorf("core: log block %d: %w", b, err)
	}
	for i := range entries {
		e := &entries[i]
		if e.kind != entryDelta {
			continue
		}
		rec, ok := c.logIndex[e.lba]
		if !ok || rec.block != b || rec.seq != e.seq {
			continue
		}
		v, ok := c.blocks[e.lba]
		if !ok || v.slotRef == nil || v.slotRef.index != e.slot || v.deltaRAM != nil {
			continue
		}
		// Best effort: install clean; on budget failure skip (the delta
		// stays log-resident). Never reclaims — prefetch must not evict.
		c.storeDeltaBestEffort(v, e.delta, false)
	}
	return d, nil
}

// Flush establishes a full consistency point: dirty independent data
// blocks are written back to their home locations, then all pending
// deltas and control records are committed to the log, and finally
// write-through slots gain home backups. After Flush, a crash loses
// nothing.
func (c *Controller) Flush() error {
	c.recycleScratch() // request boundary: prior scratch is dead
	for v := c.lru.head; v != nil; v = v.next {
		if v.dataDirty && v.dataRAM != nil {
			if err := c.writeHome(v, v.dataRAM); err != nil {
				return err
			}
		}
	}
	if err := c.flushDeltas(); err != nil {
		return err
	}
	return c.backupWriteThroughs()
}

// backupWriteThroughs writes the content of every backup-less
// write-through slot to its donor's home location and records the
// backup on the slot. A write-through slot is born without a home
// backup (the home copy is stale the moment the write lands on flash);
// until the next Flush it is the one kind of slot that a scrub cannot
// repair and a hedged read cannot rescue. This pass closes that window
// at every consistency point, at the cost of one background HDD write
// per new write-through. An unwritable home is skipped — the slot just
// stays backup-less until a later Flush.
func (c *Controller) backupWriteThroughs() error {
	for _, s := range c.liveSlots() {
		if s.homeLBA >= 0 || s.donor < 0 {
			continue
		}
		v, ok := c.blocks[s.donor]
		if !ok || v.slotRef != s || !v.ssdCurrent {
			continue
		}
		content, _, err := c.slotContent(s, true)
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassDeviceLost {
				return err
			}
			continue // unreadable slot: scrub handles it on the read path
		}
		if err := c.writeHome(v, content); err == nil {
			s.homeLBA = v.lba
			s.crc = contentCRC(content)
		}
	}
	return nil
}
