package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// The HDD delta log (paper §3.3) is a circular region of 4 KB blocks
// following the primary region, organized as a transactional
// group-commit journal (DESIGN.md §12). Pending records accumulate in
// an in-memory commit buffer; the committer packs whole batches into
// CRC-framed commit records — one transaction spanning one or more
// consecutive parts, the last part carrying the commit marker — and
// writes every part durably before any entry of the batch becomes
// visible to readers or to setLogIndex. One sequential HDD write
// commits many I/Os' worth of deltas, and one HDD read on a miss
// prefetches many deltas at once.
//
// On-disk journal block layout v2 (little endian):
//
//	[0:4)   magic "ICJL"
//	[4:6)   record count
//	[6:10)  CRC32 (IEEE) of the whole block with this field zeroed
//	[10:18) transaction id
//	[18:26) commit epoch (controller incarnation stamp)
//	[26:28) part index within the transaction
//	[28:30) part count of the transaction
//	[30]    block flags (bit 0: commit marker, set only on the last part)
//	[31]    reserved (zero)
//	then per record:
//	    kind   byte   (1 delta, 2 ssd pointer, 3 tombstone)
//	    flags  byte   (bit 0: donor — the LBA is the slot's donor)
//	    lba    int64
//	    seq    uint64
//	    slot   int64  (delta: reference slot; pointer: content slot)
//	    dlen   uint16 (delta bytes following; 0 for pointer/tombstone)
//	    delta  [dlen]byte
//
// Recovery assembles transactions from block headers and replays only
// complete ones — every part present, CRC-valid, consistent, with the
// commit marker among them — all-or-nothing; within the surviving
// records, the highest sequence number per LBA wins.

type entryKind uint8

const (
	entryDelta     entryKind = 1
	entryPointer   entryKind = 2
	entryTombstone entryKind = 3
)

// ErrCorruptLogBlock reports a journal block whose magic is present but
// whose checksum or structure does not hold — the signature of a torn
// (partially persisted) or corrupted commit write. Recovery treats such
// a block as holding no records, which voids its whole transaction:
// whatever the batch carried was the unflushed tail of the bounded
// reliability window (§3.3).
var ErrCorruptLogBlock = errors.New("core: corrupt log block")

const (
	logMagic      = "ICJL"
	logHeaderSize = 32
	entryHeadSize = 1 + 1 + 8 + 8 + 8 + 2
	// flagDonor marks the record's LBA as the donor of its slot.
	flagDonor byte = 1 << 0
	// flagReference marks a pointer record installed as a reference by
	// the scan (vs. a threshold write-through).
	flagReference byte = 1 << 1
	// blockFlagCommit marks the final part of a transaction — the
	// commit marker. A transaction replays only when every part is
	// present, CRC-valid, and the marker part is among them.
	blockFlagCommit byte = 1 << 0
)

// blockHeader is the decoded journal framing of one commit-record part.
type blockHeader struct {
	txn   uint64
	epoch uint64
	part  uint16
	total uint16
	flags byte
}

// commit reports whether this part carries the commit marker.
func (h blockHeader) commit() bool { return h.flags&blockFlagCommit != 0 }

// logEntry is a record queued for packing. seq is assigned at pack
// time. rescued marks a compaction copy (RAM-only, never encoded):
// its source record stays live until the copy commits, so a failed
// commit simply drops the copy instead of re-queueing it.
type logEntry struct {
	kind    entryKind
	flags   byte
	rescued bool
	lba     int64
	seq     uint64
	slot    int64
	delta   []byte
}

// entryMeta is the RAM-resident metadata the compactor keeps per packed
// record (no delta bytes).
type entryMeta struct {
	kind  entryKind
	flags byte
	lba   int64
	seq   uint64
	slot  int64
	size  int32 // packed size including header
}

// logRec is the logIndex value: where the newest durable record for an
// LBA lives.
type logRec struct {
	block int64
	seq   uint64
	kind  entryKind
	size  int32
}

// setLogIndex updates the newest-record index for lba, maintaining the
// live-byte estimate used for log-pressure shedding and the per-
// transaction live-record counts that gate block reuse.
func (c *Controller) setLogIndex(lba int64, rec logRec) {
	if old, ok := c.logIndex[lba]; ok {
		c.liveLogBytes -= int64(old.size)
		if t, ok := c.blockTxn[old.block]; ok {
			c.txnLive[t]--
		}
	}
	c.logIndex[lba] = rec
	c.liveLogBytes += int64(rec.size)
	if t, ok := c.blockTxn[rec.block]; ok {
		c.txnLive[t]++
	}
}

// clearLogIndex removes the newest-record index entry for lba.
func (c *Controller) clearLogIndex(lba int64) {
	if old, ok := c.logIndex[lba]; ok {
		c.liveLogBytes -= int64(old.size)
		if t, ok := c.blockTxn[old.block]; ok {
			c.txnLive[t]--
		}
		delete(c.logIndex, lba)
	}
}

// logCapacityBytes is the usable payload capacity of the log region,
// with one block of slack for the write frontier. Log blocks retired
// after write failures no longer count.
func (c *Controller) logCapacityBytes() int64 {
	usable := c.cfg.LogBlocks - 1 - int64(len(c.badLogBlocks))
	if usable < 1 {
		usable = 1
	}
	return usable * int64(blockdev.BlockSize-logHeaderSize)
}

// shedLogPressure keeps the live-record volume within the log capacity
// by writing the coldest delta-carrying blocks back to their home
// locations (their records become tombstones). Without shedding a
// too-small log would livelock in the compactor.
//
// Victims are selected in LRU order but written back in home-LBA order:
// the whole batch is collected first, then sorted, so the HDD services
// an elevator sweep of short forward seeks instead of one random
// multi-millisecond seek per eviction. At queue depth the background
// writeback stream is what saturates the disk, so the sweep order is
// worth a large slice of the commit budget.
func (c *Controller) shedLogPressure(pendingBytes int64) error {
	limit := c.logCapacityBytes() * 3 / 4
	projected := c.liveLogBytes + pendingBytes
	if projected <= limit {
		return nil
	}
	victims := c.shedScratch[:0]
	for v := c.lru.tail; v != nil && projected > limit; v = v.prev {
		if v == c.pinned || v.kind == Reference {
			continue
		}
		if v.deltaRAM == nil && !c.deltaLogged(v) {
			continue
		}
		if v.deltaDirty && v.deltaRAM != nil {
			projected -= int64(entryHeadSize + len(v.deltaRAM))
		}
		if rec, ok := c.logIndex[v.lba]; ok && rec.kind == entryDelta {
			projected -= int64(rec.size)
		}
		projected += entryHeadSize // the tombstone
		victims = append(victims, v)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].lba < victims[j].lba })
	for _, v := range victims {
		if v.dead {
			continue // dropped as a side effect of an earlier eviction
		}
		if err := c.evictToHome(v); err != nil {
			c.shedScratch = victims[:0]
			return err
		}
	}
	c.shedScratch = victims[:0]
	return nil
}

// nextSeq hands out monotonically increasing record sequence numbers.
func (c *Controller) nextSeq() uint64 {
	c.logSeq++
	return c.logSeq
}

// queueControl appends a control record (pointer/tombstone) for the next
// flush.
func (c *Controller) queueControl(e logEntry) {
	c.control = append(c.control, e)
}

// maybeFlush commits when dirty volume or the periodic op counter says
// so (paper §3.3: the flush interval is a tunable reliability knob).
func (c *Controller) maybeFlush() error {
	if c.dirtyBytes >= c.cfg.FlushDirtyBytes {
		return c.commitJournal()
	}
	if c.cfg.FlushPeriodOps > 0 && c.opCount%int64(c.cfg.FlushPeriodOps) == 0 &&
		(len(c.dirtyQ) > 0 || len(c.control) > 0) {
		return c.commitJournal()
	}
	return nil
}

// entrySize returns the packed size of e.
func entrySize(e *logEntry) int { return entryHeadSize + len(e.delta) }

// logBlockCRC computes the block checksum: CRC32-IEEE over the whole
// block with the checksum field treated as zero (computed piecewise so
// the caller's buffer is never mutated).
// crcZero stands in for the checksum field itself; package-level so
// taking the slice never escapes to the heap (the commit path is
// allocation-gated).
var crcZero [4]byte

func logBlockCRC(buf []byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, buf[0:6])
	crc = crc32.Update(crc, crc32.IEEETable, crcZero[:])
	return crc32.Update(crc, crc32.IEEETable, buf[10:])
}

// encodeLogBlock serializes one commit-record part into buf (4 KB, zero
// padded): the journal framing from hdr, then the records.
func encodeLogBlock(buf []byte, hdr blockHeader, entries []logEntry) {
	for i := range buf {
		buf[i] = 0
	}
	copy(buf[0:4], logMagic)
	binary.LittleEndian.PutUint16(buf[4:6], uint16(len(entries)))
	binary.LittleEndian.PutUint64(buf[10:18], hdr.txn)
	binary.LittleEndian.PutUint64(buf[18:26], hdr.epoch)
	binary.LittleEndian.PutUint16(buf[26:28], hdr.part)
	binary.LittleEndian.PutUint16(buf[28:30], hdr.total)
	buf[30] = hdr.flags
	off := logHeaderSize
	for i := range entries {
		e := &entries[i]
		buf[off] = byte(e.kind)
		buf[off+1] = e.flags
		binary.LittleEndian.PutUint64(buf[off+2:], uint64(e.lba))
		binary.LittleEndian.PutUint64(buf[off+10:], e.seq)
		binary.LittleEndian.PutUint64(buf[off+18:], uint64(e.slot))
		binary.LittleEndian.PutUint16(buf[off+26:], uint16(len(e.delta)))
		off += entryHeadSize
		copy(buf[off:], e.delta)
		off += len(e.delta)
	}
	binary.LittleEndian.PutUint32(buf[6:10], logBlockCRC(buf))
}

// decodeLogBlock parses one commit-record part; a block that never held
// journal data (no magic) yields no entries and a zero header. A block
// whose magic is present but whose checksum, framing, or record
// structure fails returns ErrCorruptLogBlock — the torn-write
// signature, which voids the block's whole transaction on replay.
func decodeLogBlock(buf []byte) (blockHeader, []logEntry, error) {
	var hdr blockHeader
	if string(buf[0:4]) != logMagic {
		return hdr, nil, nil
	}
	if got, want := binary.LittleEndian.Uint32(buf[6:10]), logBlockCRC(buf); got != want {
		return hdr, nil, fmt.Errorf("%w: checksum %08x, computed %08x", ErrCorruptLogBlock, got, want)
	}
	hdr.txn = binary.LittleEndian.Uint64(buf[10:18])
	hdr.epoch = binary.LittleEndian.Uint64(buf[18:26])
	hdr.part = binary.LittleEndian.Uint16(buf[26:28])
	hdr.total = binary.LittleEndian.Uint16(buf[28:30])
	hdr.flags = buf[30]
	if hdr.total == 0 {
		return hdr, nil, fmt.Errorf("%w: zero part count", ErrCorruptLogBlock)
	}
	if hdr.part >= hdr.total {
		return hdr, nil, fmt.Errorf("%w: part %d of %d", ErrCorruptLogBlock, hdr.part, hdr.total)
	}
	if hdr.flags&^blockFlagCommit != 0 {
		return hdr, nil, fmt.Errorf("%w: unknown block flags %02x", ErrCorruptLogBlock, hdr.flags)
	}
	if hdr.commit() != (hdr.part == hdr.total-1) {
		return hdr, nil, fmt.Errorf("%w: commit marker on part %d of %d", ErrCorruptLogBlock, hdr.part, hdr.total)
	}
	if buf[31] != 0 {
		return hdr, nil, fmt.Errorf("%w: reserved byte %02x", ErrCorruptLogBlock, buf[31])
	}
	count := int(binary.LittleEndian.Uint16(buf[4:6]))
	entries := make([]logEntry, 0, count)
	off := logHeaderSize
	for i := 0; i < count; i++ {
		if off+entryHeadSize > len(buf) {
			return hdr, nil, fmt.Errorf("%w: record %d overruns block", ErrCorruptLogBlock, i)
		}
		e := logEntry{
			kind:  entryKind(buf[off]),
			flags: buf[off+1],
			lba:   int64(binary.LittleEndian.Uint64(buf[off+2:])),
			seq:   binary.LittleEndian.Uint64(buf[off+10:]),
			slot:  int64(binary.LittleEndian.Uint64(buf[off+18:])),
		}
		dlen := int(binary.LittleEndian.Uint16(buf[off+26:]))
		off += entryHeadSize
		if off+dlen > len(buf) {
			return hdr, nil, fmt.Errorf("%w: record %d delta overruns block", ErrCorruptLogBlock, i)
		}
		if dlen > 0 {
			e.delta = append([]byte(nil), buf[off:off+dlen]...)
			off += dlen
		}
		switch e.kind {
		case entryDelta, entryPointer, entryTombstone:
		default:
			return hdr, nil, fmt.Errorf("%w: record %d has unknown kind %d", ErrCorruptLogBlock, i, e.kind)
		}
		entries = append(entries, e)
	}
	return hdr, entries, nil
}

// loadDeltaBlock services a read-path miss on a delta that lives only in
// the log: one HDD read fetches the packed block, and every still-live
// delta in it is prefetched into RAM — the paper's "one HDD operation
// yields many I/Os" effect. Returns the synchronous latency.
func (c *Controller) loadDeltaBlock(b int64) (sim.Duration, error) {
	// Pooled: decodeLogBlock copies delta bytes out before the Put.
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	d, err := c.hddRead(c.cfg.VirtualBlocks+b, buf)
	if err != nil {
		return 0, fmt.Errorf("core: log read: %w", err)
	}
	c.Stats.ReadLogLoads++
	_, entries, err := decodeLogBlock(buf)
	if err != nil {
		// The journal copy failed its CRC/framing checks: a silently
		// corrupted (or misdirect-clobbered) log block. Classed as
		// corruption so the read path drops the delta as accounted loss
		// instead of retrying a copy that cannot get better.
		c.noteCorruption("hdd", c.cfg.VirtualBlocks+b)
		return d, fmt.Errorf("core: log block %d: %w: %w", b, err, blockdev.ErrCorruption)
	}
	for i := range entries {
		e := &entries[i]
		if e.kind != entryDelta {
			continue
		}
		rec, ok := c.logIndex[e.lba]
		if !ok || rec.block != b || rec.seq != e.seq {
			continue
		}
		v, ok := c.blocks[e.lba]
		if !ok || v.slotRef == nil || v.slotRef.index != e.slot || v.deltaRAM != nil {
			continue
		}
		// Best effort: install clean; on budget failure skip (the delta
		// stays log-resident). Never reclaims — prefetch must not evict.
		c.storeDeltaBestEffort(v, e.delta, false)
	}
	return d, nil
}

// Flush establishes a full consistency point: dirty independent data
// blocks are written back to their home locations, then all pending
// deltas and control records are committed to the journal, and finally
// write-through slots gain home backups. After Flush, a crash loses
// nothing.
func (c *Controller) Flush() error {
	c.recycleScratch() // request boundary: prior scratch is dead
	for v := c.lru.head; v != nil; v = v.next {
		if v.dataDirty && v.dataRAM != nil {
			if err := c.writeHome(v, v.dataRAM); err != nil {
				return err
			}
		}
	}
	if err := c.commitJournal(); err != nil {
		return err
	}
	return c.backupWriteThroughs()
}

// backupWriteThroughs writes the content of every backup-less
// write-through slot to its donor's home location and records the
// backup on the slot. A write-through slot is born without a home
// backup (the home copy is stale the moment the write lands on flash);
// until the next Flush it is the one kind of slot that a scrub cannot
// repair and a hedged read cannot rescue. This pass closes that window
// at every consistency point, at the cost of one background HDD write
// per new write-through. An unwritable home is skipped — the slot just
// stays backup-less until a later Flush.
func (c *Controller) backupWriteThroughs() error {
	for _, s := range c.liveSlots() {
		if s.homeLBA >= 0 || s.donor < 0 {
			continue
		}
		v, ok := c.blocks[s.donor]
		if !ok || v.slotRef != s || !v.ssdCurrent {
			continue
		}
		content, _, err := c.slotContent(s, true)
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassDeviceLost {
				return err
			}
			continue // unreadable slot: scrub handles it on the read path
		}
		if err := c.writeHome(v, content); err == nil {
			s.homeLBA = v.lba
			s.crc = contentCRC(content)
		}
	}
	return nil
}
