package core

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

func TestLogBlockCodec(t *testing.T) {
	entries := []logEntry{
		{kind: entryDelta, flags: flagDonor, lba: 42, seq: 7, slot: 3, delta: []byte{1, 2, 3}},
		{kind: entryPointer, flags: flagDonor | flagReference, lba: 100, seq: 8, slot: 9},
		{kind: entryTombstone, lba: 7, seq: 9, slot: -1},
	}
	hdr := blockHeader{txn: 11, epoch: 3, part: 1, total: 2, flags: blockFlagCommit}
	buf := make([]byte, blockdev.BlockSize)
	encodeLogBlock(buf, hdr, entries)
	ghdr, got, err := decodeLogBlock(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ghdr != hdr {
		t.Fatalf("header mismatch: %+v vs %+v", ghdr, hdr)
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		e, g := entries[i], got[i]
		if e.kind != g.kind || e.flags != g.flags || e.lba != g.lba || e.seq != g.seq || e.slot != g.slot {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, e, g)
		}
		if !bytes.Equal(e.delta, g.delta) {
			t.Fatalf("entry %d delta mismatch", i)
		}
	}
}

func TestLogBlockCodecEmpty(t *testing.T) {
	// A never-written (zero) block decodes to no entries, no error.
	buf := make([]byte, blockdev.BlockSize)
	hdr, got, err := decodeLogBlock(buf)
	if err != nil || len(got) != 0 || hdr.total != 0 {
		t.Fatalf("zero block: %d entries, hdr %+v, %v", len(got), hdr, err)
	}
}

// recrc recomputes the block checksum in place, so a corruption test
// exercises the structural validation behind the CRC, not the CRC.
func recrc(buf []byte) {
	binary.LittleEndian.PutUint32(buf[6:10], logBlockCRC(buf))
}

func TestLogBlockCodecCorrupt(t *testing.T) {
	hdr := blockHeader{txn: 1, epoch: 1, part: 0, total: 1, flags: blockFlagCommit}
	one := []logEntry{{kind: entryDelta, lba: 1, seq: 1, delta: []byte{9}}}
	buf := make([]byte, blockdev.BlockSize)

	// A flipped bit fails the checksum.
	encodeLogBlock(buf, hdr, one)
	buf[logHeaderSize] ^= 0xFF
	if _, _, err := decodeLogBlock(buf); err == nil {
		t.Fatal("bit flip must fail the checksum")
	}
	// Corrupt record kind behind a valid CRC.
	encodeLogBlock(buf, hdr, one)
	buf[logHeaderSize] = 77
	recrc(buf)
	if _, _, err := decodeLogBlock(buf); err == nil {
		t.Fatal("corrupt record kind must error")
	}
	// Overstated count behind a valid CRC.
	encodeLogBlock(buf, hdr, one)
	buf[4] = 0xFF
	buf[5] = 0x7F
	recrc(buf)
	if _, _, err := decodeLogBlock(buf); err == nil {
		t.Fatal("overstated record count must error")
	}
	// Journal framing: part out of range, zero part count, commit
	// marker anywhere but the last part — all torn-write signatures.
	encodeLogBlock(buf, blockHeader{txn: 1, epoch: 1, part: 2, total: 2, flags: blockFlagCommit}, one)
	if _, _, err := decodeLogBlock(buf); err == nil {
		t.Fatal("part >= total must error")
	}
	encodeLogBlock(buf, blockHeader{txn: 1, epoch: 1, part: 0, total: 0}, one)
	if _, _, err := decodeLogBlock(buf); err == nil {
		t.Fatal("zero part count must error")
	}
	encodeLogBlock(buf, blockHeader{txn: 1, epoch: 1, part: 0, total: 2, flags: blockFlagCommit}, one)
	if _, _, err := decodeLogBlock(buf); err == nil {
		t.Fatal("commit marker on a non-final part must error")
	}
	encodeLogBlock(buf, blockHeader{txn: 1, epoch: 1, part: 0, total: 2}, one)
	if _, _, err := decodeLogBlock(buf); err != nil {
		t.Fatalf("valid non-final part must decode: %v", err)
	}
}

// TestLogCleanerRescue forces the circular log to wrap and verifies that
// still-live deltas are rescued rather than lost.
func TestLogCleanerRescue(t *testing.T) {
	cfg := smallConfig()
	cfg.LogBlocks = 12 // tiny log: wraps quickly
	cfg.FlushPeriodOps = 16
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(21)
	model := map[int64][]byte{}
	buf := make([]byte, blockdev.BlockSize)

	for op := 0; op < 6000; op++ {
		lba := int64(r.Intn(200))
		content := genContent(r, int(lba%3), 0.03)
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		model[lba] = content
	}
	if c.Stats.LogBlocksWritten < cfg.LogBlocks {
		t.Skipf("log never wrapped (%d blocks written)", c.Stats.LogBlocksWritten)
	}
	for lba, want := range model {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("read %d: %v", lba, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d corrupted after log wrap", lba)
		}
	}
}

// TestShedLogPressure verifies the live-volume governor: with a log too
// small for the working set, the controller sheds cold deltas to home
// locations instead of failing.
func TestShedLogPressure(t *testing.T) {
	cfg := smallConfig()
	cfg.LogBlocks = 8
	cfg.FlushPeriodOps = 8
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(23)
	model := map[int64][]byte{}
	buf := make([]byte, blockdev.BlockSize)
	for op := 0; op < 4000; op++ {
		lba := int64(r.Intn(600))
		content := genContent(r, int(lba%3), 0.03)
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		model[lba] = content
	}
	if c.Stats.WritebacksHome == 0 {
		t.Error("expected home write-backs under log pressure")
	}
	for lba, want := range model {
		c.ReadBlock(lba, buf)
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d corrupted under log pressure", lba)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryIdempotent: recovering twice yields the same state.
func TestRecoveryIdempotent(t *testing.T) {
	cfg := smallConfig()
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(31)
	for op := 0; op < 2000; op++ {
		lba := int64(r.Intn(300))
		if _, err := c.WriteBlock(lba, genContent(r, int(lba%4), 0.04)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock()
	r1, err := Recover(cfg, rig.ssd, rig.hdd, clock, cpumodel.NewAccountant(clock))
	if err != nil {
		t.Fatal(err)
	}
	clock2 := sim.NewClock()
	r2, err := Recover(cfg, rig.ssd, rig.hdd, clock2, cpumodel.NewAccountant(clock2))
	if err != nil {
		t.Fatal(err)
	}
	if r1.lru.len() != r2.lru.len() || len(r1.logIndex) != len(r2.logIndex) ||
		r1.logSeq != r2.logSeq || r1.logHead != r2.logHead {
		t.Fatalf("recovery not idempotent: %d/%d blocks, %d/%d index",
			r1.lru.len(), r2.lru.len(), len(r1.logIndex), len(r2.logIndex))
	}
}

// TestCrashAtRandomPoints: property-style — write, flush at a random
// point, keep writing, crash; every pre-flush write must survive.
func TestCrashAtRandomPoints(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := smallConfig()
		clock := sim.NewClock()
		cpu := cpumodel.NewAccountant(clock)
		ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
		hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
		c, err := New(cfg, ssd, hdd, clock, cpu)
		if err != nil {
			return false
		}
		r := sim.NewRand(seed)
		durable := map[int64][]byte{}
		pending := map[int64][]byte{}
		nOps := 300 + r.Intn(1200)
		flushAt := r.Intn(nOps)
		for op := 0; op < nOps; op++ {
			lba := int64(r.Intn(250))
			content := genContent(r, int(lba%5), 0.05)
			if _, err := c.WriteBlock(lba, content); err != nil {
				return false
			}
			pending[lba] = content
			if op == flushAt {
				if err := c.Flush(); err != nil {
					return false
				}
				for k, v := range pending {
					durable[k] = v
				}
				pending = map[int64][]byte{}
			}
		}
		clock2 := sim.NewClock()
		rc, err := Recover(cfg, ssd, hdd, clock2, cpumodel.NewAccountant(clock2))
		if err != nil {
			return false
		}
		buf := make([]byte, blockdev.BlockSize)
		for lba, want := range durable {
			if _, overwritten := pending[lba]; overwritten {
				continue // post-flush write may or may not have survived
			}
			if _, err := rc.ReadBlock(lba, buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineBlocksSlotReuse: a freed slot must not be reused before
// the flush that commits its dependents' tombstones.
func TestQuarantineBlocksSlotReuse(t *testing.T) {
	cfg := smallConfig()
	cfg.SSDBlocks = 8 // tiny SSD: slot churn guaranteed
	cfg.FlushPeriodOps = 1 << 30
	cfg.FlushDirtyBytes = 1 << 30 // flushing only when forced
	rig := newTestRig(t, cfg)
	c := rig.c
	r := sim.NewRand(41)
	buf := make([]byte, blockdev.BlockSize)
	model := map[int64][]byte{}
	for op := 0; op < 3000; op++ {
		lba := int64(r.Intn(100))
		content := genContent(r, op%50, 0.4) // diverse content: write-through pressure
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		model[lba] = content
	}
	for lba, want := range model {
		c.ReadBlock(lba, buf)
		if !bytes.Equal(buf, want) {
			t.Fatalf("lba %d corrupted under slot churn", lba)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
