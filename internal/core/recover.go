package core

import (
	"errors"
	"fmt"
	"sort"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sig"
	"icash/internal/sim"
)

// Recover rebuilds a controller after a crash (paper §3.3): RAM contents
// are gone, but the SSD reference store and the HDD (home region + delta
// log) survive. The log region is scanned sequentially; for every LBA
// the record with the highest sequence number wins:
//
//	delta     → the block is an associate/reference of an SSD slot plus
//	            the logged delta;
//	pointer   → the block's current content sits in an SSD slot;
//	tombstone → the HDD home location is authoritative (nothing to do).
//
// Writes that were only in the RAM delta buffer at crash time are lost;
// that is the bounded reliability window the flush interval tunes.
func Recover(cfg Config, ssdDev, hddDev blockdev.Device, clock *sim.Clock, cpu *cpumodel.Accountant) (*Controller, error) {
	c, err := New(cfg, ssdDev, hddDev, clock, cpu)
	if err != nil {
		return nil, err
	}
	if err := c.replayLog(); err != nil {
		return nil, err
	}
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: post-recovery state inconsistent: %w", err)
	}
	return c, nil
}

// replayLog scans the whole log region and reconstructs metadata.
func (c *Controller) replayLog() error {
	type newest struct {
		e     logEntry
		block int64
	}
	latest := make(map[int64]newest)
	var maxSeq uint64
	var maxSeqBlock int64
	buf := make([]byte, blockdev.BlockSize)
	for b := int64(0); b < c.cfg.LogBlocks; b++ {
		d, err := c.hddRead(c.cfg.VirtualBlocks+b, buf)
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassMedia {
				// Unreadable log block: retire it. Its records were
				// either superseded elsewhere or fall inside the bounded
				// loss window.
				c.badLogBlocks[b] = true
				c.Stats.BadLogBlocks++
				continue
			}
			return fmt.Errorf("core: recovery read log block %d: %w", b, err)
		}
		c.Stats.BackgroundHDDTime += d
		entries, err := decodeLogBlock(buf)
		if err != nil {
			if errors.Is(err, ErrCorruptLogBlock) {
				// Torn write: the crash interrupted this block's flush,
				// so its records were never acknowledged as durable.
				// Skip it and replay everything that did commit.
				c.Stats.TornLogBlocks++
				continue
			}
			return fmt.Errorf("core: recovery log block %d: %w", b, err)
		}
		if len(entries) == 0 {
			continue
		}
		metas := make([]entryMeta, 0, len(entries))
		for i := range entries {
			e := entries[i]
			metas = append(metas, entryMeta{kind: e.kind, flags: e.flags, lba: e.lba, seq: e.seq, slot: e.slot, size: int32(entrySize(&e))})
			c.perLba[e.lba]++
			if cur, ok := latest[e.lba]; !ok || e.seq > cur.e.seq {
				latest[e.lba] = newest{e: e, block: b}
			}
			if e.seq > maxSeq {
				maxSeq = e.seq
				maxSeqBlock = b
			}
		}
		c.logMeta[b] = metas
	}
	c.logSeq = maxSeq
	if maxSeq > 0 {
		c.logHead = (maxSeqBlock + 1) % c.cfg.LogBlocks
	}

	// Apply newest records in LBA order for determinism.
	lbas := make([]int64, 0, len(latest))
	for lba := range latest {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })

	slotContentCache := make(map[int64][]byte)
	readSlot := func(idx int64) ([]byte, error) {
		if b, ok := slotContentCache[idx]; ok {
			return b, nil
		}
		b := make([]byte, blockdev.BlockSize)
		d, err := c.ssdRead(idx, b)
		if err != nil {
			return nil, err
		}
		c.Stats.BackgroundSSDTime += d
		slotContentCache[idx] = b
		return b, nil
	}
	getSlot := func(idx int64) (*refSlot, error) {
		if s, ok := c.slots[idx]; ok {
			return s, nil
		}
		if idx < 0 || idx >= c.cfg.SSDBlocks {
			return nil, fmt.Errorf("core: recovery: log references slot %d outside SSD", idx)
		}
		s := &refSlot{index: idx, donor: -1, homeLBA: -1}
		content, err := readSlot(idx)
		if err != nil {
			return nil, err
		}
		s.sigv = sig.Compute(content)
		s.crc = contentCRC(content)
		c.slots[idx] = s
		c.slotOrder = append(c.slotOrder, s)
		return s, nil
	}
	// dropRecord abandons a slot-bound record whose SSD content cannot
	// be read back: the stale home copy is what survives for that LBA. A
	// tombstone is queued so the next flush makes the fallback durable;
	// whole-SSD loss additionally flips the array into degraded mode.
	dropRecord := func(lba int64, err error) error {
		switch blockdev.Classify(err) {
		case blockdev.ClassDeviceLost:
			if !c.ssdLost {
				c.ssdLost = true
				c.Stats.DegradeEvents++
			}
		case blockdev.ClassMedia:
		default:
			return err
		}
		c.Stats.DroppedLogRecs++
		c.queueControl(logEntry{kind: entryTombstone, lba: lba})
		return nil
	}

	for _, lba := range lbas {
		n := latest[lba]
		e := n.e
		c.setLogIndex(lba, logRec{block: n.block, seq: e.seq, kind: e.kind, size: int32(entrySize(&e))})
		switch e.kind {
		case entryTombstone:
			// Home location is authoritative; no metadata needed.
		case entryPointer:
			s, err := getSlot(e.slot)
			if err != nil {
				if err := dropRecord(lba, err); err != nil {
					return err
				}
				continue
			}
			v := &vblock{lba: lba, ssdCurrent: true, sigv: s.sigv}
			c.attachSlot(v, s)
			if e.flags&flagDonor != 0 {
				s.donor = lba
			}
			if e.flags&flagReference != 0 {
				v.kind = Reference
			} else {
				v.kind = Independent
			}
			c.blocks[lba] = v
			c.lru.pushFront(v)
			c.indexOffset(v)
		case entryDelta:
			s, err := getSlot(e.slot)
			if err != nil {
				if err := dropRecord(lba, err); err != nil {
					return err
				}
				continue
			}
			v := &vblock{lba: lba, sigv: s.sigv}
			c.attachSlot(v, s)
			if e.flags&flagDonor != 0 {
				s.donor = lba
				v.kind = Reference
			} else {
				v.kind = Associate
			}
			// Best effort RAM install; the log copy remains the durable
			// source either way.
			c.storeDeltaBestEffort(v, e.delta, false)
			c.blocks[lba] = v
			c.lru.pushFront(v)
			c.indexOffset(v)
		}
	}

	// The flush frontier must resume on a block with no live records:
	// flushDeltas relocates a block's survivors one write ahead of the
	// frontier (rescue-before-overwrite), which only works if the
	// frontier never starts on live data. Scan forward from the block
	// after the newest write for the first live-free, healthy block.
	if maxSeq > 0 {
		liveBlocks := make(map[int64]bool)
		for _, rec := range c.logIndex {
			liveBlocks[rec.block] = true
		}
		start := (maxSeqBlock + 1) % c.cfg.LogBlocks
		c.logHead = start
		for i := int64(0); i < c.cfg.LogBlocks; i++ {
			b := (start + i) % c.cfg.LogBlocks
			if c.badLogBlocks[b] || liveBlocks[b] {
				continue
			}
			c.logHead = b
			break
		}
	}

	// SSD slots not referenced by any live record are free.
	used := make(map[int64]bool, len(c.slots))
	for idx := range c.slots {
		used[idx] = true
	}
	c.freeSlots = c.freeSlots[:0]
	for i := c.cfg.SSDBlocks - 1; i >= 0; i-- {
		if !used[i] {
			c.freeSlots = append(c.freeSlots, i)
		}
	}
	return nil
}

// indexOffset registers v in the VM-offset pairing index.
func (c *Controller) indexOffset(v *vblock) {
	if key := c.offsetKey(v.lba); key >= 0 {
		c.sameOffset[key] = append(c.sameOffset[key], v)
	}
}
