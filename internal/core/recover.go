package core

import (
	"fmt"
	"sort"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sig"
	"icash/internal/sim"
)

// Recover rebuilds a controller after a crash (paper §3.3): RAM contents
// are gone, but the SSD reference store and the HDD (home region + delta
// log) survive. The journal region is scanned sequentially and its
// commit records are assembled into transactions; a transaction replays
// only when complete — every part present and CRC-valid with the commit
// marker among them — and is discarded in full otherwise, never
// partially applied. Within the surviving records, for every LBA the
// record with the highest sequence number wins:
//
//	delta     → the block is an associate/reference of an SSD slot plus
//	            the logged delta;
//	pointer   → the block's current content sits in an SSD slot;
//	tombstone → the HDD home location is authoritative (nothing to do).
//
// Writes that were only in the RAM commit buffer at crash time are
// lost; that is the bounded reliability window the flush interval
// tunes. A batch whose commit burst the crash interrupted was never
// acknowledged as durable, so discarding it wholly loses nothing.
func Recover(cfg Config, ssdDev, hddDev blockdev.Device, clock *sim.Clock, cpu *cpumodel.Accountant) (*Controller, error) {
	c, err := New(cfg, ssdDev, hddDev, clock, cpu)
	if err != nil {
		return nil, err
	}
	if err := c.replayLog(); err != nil {
		return nil, err
	}
	if err := c.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("core: post-recovery state inconsistent: %w", err)
	}
	return c, nil
}

// replayLog scans the whole journal region, assembles transactions,
// and reconstructs metadata from the complete ones (all-or-nothing).
func (c *Controller) replayLog() error {
	asm := newJournalAsm()
	buf := make([]byte, blockdev.BlockSize)
	for b := int64(0); b < c.cfg.LogBlocks; b++ {
		d, err := c.hddRead(c.cfg.VirtualBlocks+b, buf)
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassMedia {
				// Unreadable log block: retire it. Its records were
				// either superseded elsewhere or fall inside the bounded
				// loss window (its transaction assembles as incomplete).
				c.badLogBlocks[b] = true
				c.Stats.BadLogBlocks++
				continue
			}
			return fmt.Errorf("core: recovery read log block %d: %w", b, err)
		}
		c.Stats.BackgroundHDDTime += d
		asm.addBlock(b, buf)
	}
	c.Stats.TornLogBlocks += asm.torn

	// Register complete transactions in id order for determinism; an
	// incomplete one is discarded wholly — its blocks stay untracked
	// (and thus reusable), its records invisible.
	txns := make([]uint64, 0, len(asm.txns))
	for id := range asm.txns {
		txns = append(txns, id)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
	type newest struct {
		e     logEntry
		block int64
	}
	latest := make(map[int64]newest)
	for _, id := range txns {
		t := asm.txns[id]
		if !t.complete() {
			c.Stats.TxnsDiscardedOnReplay++
			continue
		}
		c.txnLive[id] = 0
		for part := 0; part < t.total; part++ {
			b := t.seen[uint16(part)]
			sb := asm.blocks[b]
			metas := make([]entryMeta, 0, len(sb.entries))
			for i := range sb.entries {
				e := sb.entries[i]
				metas = append(metas, entryMeta{kind: e.kind, flags: e.flags, lba: e.lba, seq: e.seq, slot: e.slot, size: int32(entrySize(&e))})
				c.perLba[e.lba]++
				if cur, ok := latest[e.lba]; !ok || e.seq > cur.e.seq {
					latest[e.lba] = newest{e: e, block: b}
				}
			}
			c.logMeta[b] = metas
			c.blockTxn[b] = id
			c.txnBlocks[id] = append(c.txnBlocks[id], b)
		}
	}
	c.logSeq = asm.maxSeq
	c.nextTxn = asm.maxTxn + 1
	c.logEpoch = asm.maxEpoch + 1

	// Apply newest records in LBA order for determinism.
	lbas := make([]int64, 0, len(latest))
	for lba := range latest {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })

	slotContentCache := make(map[int64][]byte)
	readSlot := func(idx int64) ([]byte, error) {
		if b, ok := slotContentCache[idx]; ok {
			return b, nil
		}
		b := make([]byte, blockdev.BlockSize)
		d, err := c.ssdRead(idx, b)
		if err != nil {
			return nil, err
		}
		c.Stats.BackgroundSSDTime += d
		slotContentCache[idx] = b
		return b, nil
	}
	getSlot := func(idx int64) (*refSlot, error) {
		if s, ok := c.slots[idx]; ok {
			return s, nil
		}
		if idx < 0 || idx >= c.cfg.SSDBlocks {
			return nil, fmt.Errorf("core: recovery: log references slot %d outside SSD", idx)
		}
		s := &refSlot{index: idx, donor: -1, homeLBA: -1}
		content, err := readSlot(idx)
		if err != nil {
			return nil, err
		}
		s.sigv = sig.Compute(content)
		s.crc = contentCRC(content)
		c.slots[idx] = s
		c.slotOrder = append(c.slotOrder, s)
		return s, nil
	}
	// dropRecord abandons a slot-bound record whose SSD content cannot
	// be read back: the stale home copy is what survives for that LBA. A
	// tombstone is queued so the next flush makes the fallback durable;
	// whole-SSD loss additionally flips the array into degraded mode.
	dropRecord := func(lba int64, err error) error {
		switch blockdev.Classify(err) {
		case blockdev.ClassDeviceLost:
			if !c.ssdLost {
				c.ssdLost = true
				c.Stats.DegradeEvents++
			}
		case blockdev.ClassMedia:
		default:
			return err
		}
		c.Stats.DroppedLogRecs++
		c.dropSum(lba) // content regresses to the stale home copy
		c.queueControl(logEntry{kind: entryTombstone, lba: lba})
		return nil
	}

	for _, lba := range lbas {
		n := latest[lba]
		e := n.e
		c.setLogIndex(lba, logRec{block: n.block, seq: e.seq, kind: e.kind, size: int32(entrySize(&e))})
		switch e.kind {
		case entryTombstone:
			// Home location is authoritative; no metadata needed.
		case entryPointer:
			s, err := getSlot(e.slot)
			if err != nil {
				if err := dropRecord(lba, err); err != nil {
					return err
				}
				continue
			}
			v := &vblock{lba: lba, ssdCurrent: true, sigv: s.sigv}
			c.attachSlot(v, s)
			if e.flags&flagDonor != 0 {
				s.donor = lba
			}
			if e.flags&flagReference != 0 {
				v.kind = Reference
			} else {
				v.kind = Independent
			}
			c.blocks[lba] = v
			c.lru.pushFront(v)
			c.indexOffset(v)
		case entryDelta:
			s, err := getSlot(e.slot)
			if err != nil {
				if err := dropRecord(lba, err); err != nil {
					return err
				}
				continue
			}
			v := &vblock{lba: lba, sigv: s.sigv}
			c.attachSlot(v, s)
			if e.flags&flagDonor != 0 {
				s.donor = lba
				v.kind = Reference
			} else {
				v.kind = Associate
			}
			// Best effort RAM install; the log copy remains the durable
			// source either way.
			c.storeDeltaBestEffort(v, e.delta, false)
			c.blocks[lba] = v
			c.lru.pushFront(v)
			c.indexOffset(v)
		}
	}

	// The commit frontier resumes on an overwritable block after the
	// newest write. Block reuse is transaction-granular (logBlockFree),
	// so this needs the live counts the apply loop just rebuilt.
	if asm.maxSeq > 0 {
		start := (asm.maxSeqBlock + 1) % c.cfg.LogBlocks
		c.logHead = start
		for i := int64(0); i < c.cfg.LogBlocks; i++ {
			b := (start + i) % c.cfg.LogBlocks
			if !c.logBlockFree(b) {
				continue
			}
			c.logHead = b
			break
		}
	}

	// SSD slots not referenced by any live record are free.
	used := make(map[int64]bool, len(c.slots))
	for idx := range c.slots {
		used[idx] = true
	}
	c.freeSlots = c.freeSlots[:0]
	for i := c.cfg.SSDBlocks - 1; i >= 0; i-- {
		if !used[i] {
			c.freeSlots = append(c.freeSlots, i)
		}
	}
	return nil
}

// indexOffset registers v in the VM-offset pairing index.
func (c *Controller) indexOffset(v *vblock) {
	if key := c.offsetKey(v.lba); key >= 0 {
		c.sameOffset[key] = append(c.sameOffset[key], v)
	}
}
