package core

import (
	"errors"
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/delta"
	"icash/internal/sim"
)

// This file is the controller's fault-handling layer: typed error
// classification with bounded retry and simulated-clock backoff, slot
// scrubbing (repair of damaged SSD reference content from a redundant
// copy), and graceful degradation to HDD-only passthrough when the SSD
// is lost entirely. The paper's reliability argument (§3.3) says
// I-CASH survives crashes because the SSD reference store and the HDD
// log are durable; this layer is what keeps that argument honest when
// the media themselves misbehave.

// errSSDOp tags errors that originated on the SSD side of the array so
// the top-level request handlers can tell SSD loss from HDD loss.
var errSSDOp = errors.New("core: ssd operation failed")

// withRetry runs op, retrying transient device errors up to
// cfg.MaxRetries times with doubling simulated backoff, bounded by the
// per-operation deadline: once the accumulated time (attempts plus the
// next backoff) would cross cfg.OpDeadline, the loop gives up instead
// of backing off again — a fail-slow device must not pin a request
// indefinitely. The returned duration includes every attempt plus the
// backoff waits; the returned error is the last attempt's error (nil
// on success). The final attempt's own service time is also kept in
// c.lastAttemptDur for the hedging decision.
func (c *Controller) withRetry(op func() (sim.Duration, error)) (sim.Duration, error) {
	var total sim.Duration
	backoff := c.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		d, err := op()
		total += d
		c.lastAttemptDur = d
		if err == nil {
			return total, nil
		}
		if blockdev.Classify(err) != blockdev.ClassTransient || attempt >= c.cfg.MaxRetries {
			return total, err
		}
		if c.cfg.OpDeadline > 0 && total+backoff > c.cfg.OpDeadline {
			c.Stats.DeadlineGiveUps++
			return total, err
		}
		c.Stats.TransientRetries++
		c.Stats.RetryBackoffTime += backoff
		total += backoff
		backoff *= 2
	}
}

// ssdRead reads one SSD block with retry. A lost SSD fails fast.
func (c *Controller) ssdRead(lba int64, buf []byte) (sim.Duration, error) {
	if c.ssdLost {
		return 0, fmt.Errorf("%w: read lba %d: %w", errSSDOp, lba, blockdev.ErrDeviceLost)
	}
	d, err := c.withRetry(func() (sim.Duration, error) { return c.ssd.ReadBlock(lba, buf) })
	if err != nil {
		c.Stats.SSDReadFaults++
		err = fmt.Errorf("%w: read lba %d: %w", errSSDOp, lba, err)
	}
	return d, err
}

// ssdWrite writes one SSD block with retry.
func (c *Controller) ssdWrite(lba int64, buf []byte) (sim.Duration, error) {
	if c.ssdLost {
		return 0, fmt.Errorf("%w: write lba %d: %w", errSSDOp, lba, blockdev.ErrDeviceLost)
	}
	d, err := c.withRetry(func() (sim.Duration, error) { return c.ssd.WriteBlock(lba, buf) })
	if err != nil {
		c.Stats.SSDWriteFaults++
		err = fmt.Errorf("%w: write lba %d: %w", errSSDOp, lba, err)
	}
	return d, err
}

// hddRead reads one HDD block with retry.
func (c *Controller) hddRead(lba int64, buf []byte) (sim.Duration, error) {
	d, err := c.withRetry(func() (sim.Duration, error) { return c.hdd.ReadBlock(lba, buf) })
	if err != nil {
		c.Stats.HDDReadFaults++
	}
	return d, err
}

// hddWrite writes one HDD block with retry.
func (c *Controller) hddWrite(lba int64, buf []byte) (sim.Duration, error) {
	d, err := c.withRetry(func() (sim.Duration, error) { return c.hdd.WriteBlock(lba, buf) })
	if err != nil {
		c.Stats.HDDWriteFaults++
	}
	return d, err
}

// contentCRC is the end-to-end integrity checksum kept per reference
// slot and per LBA, used to validate a repair source before trusting
// it (the similarity signature is a sketch, not collision resistant)
// and to catch silently corrupted reads at every layer crossing. RAM
// only — never serialized — so it delegates to the shared CRC32-C.
func contentCRC(b []byte) uint32 { return blockdev.ContentCRC(b) }

// discardSlot unwinds a freshly allocated slot whose content write
// failed before any block attached. retire permanently removes the SSD
// block from circulation (program failure); otherwise the slot is
// quarantined until the next flush, like any freed slot.
func (c *Controller) discardSlot(s *refSlot, retire bool) {
	if c.slots[s.index] == s {
		delete(c.slots, s.index)
	}
	if retire {
		c.retiredSlots = append(c.retiredSlots, s.index)
		c.Stats.SlotsRetired++
	} else {
		c.quarantine = append(c.quarantine, s.index)
	}
}

// retireQuarantined moves a slot index that detachSlot just placed in
// quarantine onto the permanent retired list instead, keeping a dying
// flash block out of the allocation rotation.
func (c *Controller) retireQuarantined(idx int64) {
	for i, q := range c.quarantine {
		if q == idx {
			c.quarantine = append(c.quarantine[:i], c.quarantine[i+1:]...)
			c.retiredSlots = append(c.retiredSlots, idx)
			c.Stats.SlotsRetired++
			return
		}
	}
}

// scrubSlot repairs a reference slot whose SSD content came back with
// an uncorrectable media error. Repair sources, in order:
//
//  1. the donor's pristine RAM copy (a donor with no self-delta holds
//     exactly the slot content);
//  2. the slot's HDD home backup — installReference writes the
//     reference content to the donor's home location precisely so this
//     path exists — validated against the slot's CRC before use (a
//     later home rewrite invalidates the backup; the CRC detects it).
//
// On success the content is rewritten to the SSD, healing the bad
// block, and returned. When no source validates (or the heal write
// also fails), every dependent is salvaged and the slot is retired.
func (c *Controller) scrubSlot(s *refSlot) ([]byte, error) {
	c.Stats.SlotScrubs++
	var content []byte
	if s.donor >= 0 {
		if donor, ok := c.blocks[s.donor]; ok && donor.slotRef == s && donor.ssdCurrent && donor.dataRAM != nil {
			content = append([]byte(nil), donor.dataRAM...)
		}
	}
	if content == nil && s.homeLBA >= 0 {
		buf := make([]byte, blockdev.BlockSize)
		if d, err := c.hddRead(s.homeLBA, buf); err == nil {
			c.Stats.BackgroundHDDTime += d
			if contentCRC(buf) == s.crc {
				content = buf
			}
		}
	}
	if content == nil {
		c.salvageSlot(s, true)
		return nil, fmt.Errorf("core: slot %d: media error and no valid repair source: %w",
			s.index, blockdev.ErrMedia)
	}
	// Rewriting heals the bad block (sector remap / page reprogram). If
	// even the rewrite fails the flash block is dying: salvage the
	// dependents (their content is reconstructible — we hold it) and
	// retire the block.
	d, err := c.ssdWrite(s.index, content)
	if err != nil {
		if blockdev.Classify(err) == blockdev.ClassDeviceLost {
			return nil, err
		}
		c.salvageContent(s, content)
		return nil, fmt.Errorf("core: slot %d: repair rewrite failed: %w", s.index, err)
	}
	c.Stats.BackgroundSSDTime += d
	c.Stats.SlotScrubRepairs++
	return content, nil
}

// salvageSlot handles an unrepairable slot: every dependent either has
// its current content in RAM (write it home, detach, live on as an
// independent) or has lost data — its newest content needed the dead
// slot, so the stale HDD home copy is what remains (counted as
// ScrubDataLoss). The slot itself is retired when retire is set.
func (c *Controller) salvageSlot(s *refSlot, retire bool) {
	idx := s.index
	for _, v := range c.slotDependents(s) {
		if v.dataRAM != nil {
			if err := c.writeHome(v, v.dataRAM); err != nil {
				c.Stats.ScrubDataLoss++
				c.dropSum(v.lba) // content regresses to the stale copy
				v.hddHome = true // stale home copy is all that remains
				v.dataDirty = false
			}
		} else {
			c.Stats.ScrubDataLoss++
			c.dropSum(v.lba)
			v.hddHome = true
		}
		c.orphanFromSlot(v)
	}
	if retire {
		c.retireQuarantined(idx)
	}
}

// salvageContent detaches every dependent of s after its content was
// recovered but could not be rewritten to flash: each dependent's
// current content is reconstructed from the recovered base and written
// home, so nothing is lost. The slot is retired.
func (c *Controller) salvageContent(s *refSlot, base []byte) {
	idx := s.index
	for _, v := range c.slotDependents(s) {
		content := v.dataRAM
		if content == nil && v.ssdCurrent {
			content = base
		}
		if content == nil {
			if enc := c.residentDelta(v); enc != nil {
				if dec, err := delta.Decode(base, enc); err == nil {
					content = dec
				}
			}
		}
		if content != nil {
			if err := c.writeHome(v, content); err != nil {
				c.Stats.ScrubDataLoss++
				c.dropSum(v.lba)
				v.hddHome = true
				v.dataDirty = false
			}
		} else {
			c.Stats.ScrubDataLoss++
			c.dropSum(v.lba)
			v.hddHome = true
		}
		c.orphanFromSlot(v)
	}
	c.retireQuarantined(idx)
}

// residentDelta returns v's delta bytes from RAM or, failing that, from
// its durable log record. nil when neither source is available.
func (c *Controller) residentDelta(v *vblock) []byte {
	if v.deltaRAM != nil {
		return v.deltaRAM
	}
	if c.deltaLogged(v) {
		if enc, err := c.deltaFromLog(v.lba); err == nil {
			return enc
		}
	}
	return nil
}

// orphanFromSlot detaches v from its slot and turns it into a plain
// independent whose home location is authoritative, queueing the
// tombstone that supersedes any durable or pending slot-bound record.
func (c *Controller) orphanFromSlot(v *vblock) {
	c.releaseDelta(v)
	c.detachSlot(v)
	v.kind = Independent
	if rec, ok := c.logIndex[v.lba]; !ok || rec.kind != entryTombstone {
		c.queueControl(logEntry{kind: entryTombstone, lba: v.lba})
	}
}

// slotDependents snapshots the blocks attached to s (detaching mutates
// the LRU during iteration otherwise).
func (c *Controller) slotDependents(s *refSlot) []*vblock {
	var deps []*vblock
	for v := c.lru.head; v != nil; v = v.next {
		if v.slotRef == s {
			deps = append(deps, v)
		}
	}
	return deps
}

// maybeDegradeSSD inspects a request-path error and, on whole-SSD
// loss, switches the controller into HDD-only degraded mode. Reports
// whether degradation happened — the caller should then retry its
// operation once, because every block is slot-free afterwards. Errors
// from the HDD side never trigger this.
func (c *Controller) maybeDegradeSSD(err error) bool {
	if err == nil || c.ssdLost {
		return false
	}
	if !errors.Is(err, errSSDOp) || blockdev.Classify(err) != blockdev.ClassDeviceLost {
		return false
	}
	c.degradeSSD()
	return true
}

// faultRecovered reports whether the fault behind a request-path error
// has been repaired to the point that one retry can succeed: either the
// SSD was just degraded away (every block is slot-free now), or a
// media-level or corruption-level scrub failure salvaged v to its home
// location (v is slot-free). Corruption is never retried in place —
// the lying copy was detached, and the retry reads the surviving one.
// Transient faults were already retried below; anything else stays
// fatal.
func (c *Controller) faultRecovered(v *vblock, err error) bool {
	if c.maybeDegradeSSD(err) {
		return true
	}
	cl := blockdev.Classify(err)
	return (cl == blockdev.ClassMedia || cl == blockdev.ClassCorruption) &&
		v.slotRef == nil && !v.dead
}

// degradeSSD transitions to HDD-only passthrough after whole-SSD loss:
// every slot-attached block is salvaged from controller RAM where
// possible (content written to its HDD home) and detached; blocks
// whose newest content existed only as SSD reference + delta are
// counted as DegradedDataLoss and fall back to their stale home copy.
// Afterwards reads and writes bypass the SSD entirely: the similarity
// scan, first-load pairing and write-through paths are disabled.
func (c *Controller) degradeSSD() {
	if c.ssdLost {
		return
	}
	c.ssdLost = true
	c.ssdQuarantined = false // loss supersedes soft quarantine
	c.Stats.DegradeEvents++
	var attached []*vblock
	for v := c.lru.head; v != nil; v = v.next {
		if v.slotRef != nil {
			attached = append(attached, v)
		}
	}
	for _, v := range attached {
		if v.dataRAM != nil {
			if err := c.writeHome(v, v.dataRAM); err != nil {
				c.Stats.DegradedDataLoss++
				c.dropSum(v.lba)
				v.hddHome = true
				v.dataDirty = false
			}
		} else {
			c.Stats.DegradedDataLoss++
			c.dropSum(v.lba)
			v.hddHome = true
		}
		c.orphanFromSlot(v)
	}
	// Commit the tombstones: after this flush the HDD alone describes
	// every surviving block, so a later crash recovers cleanly without
	// the SSD. On flush failure they stay queued for the next attempt.
	if err := c.commitJournal(); err != nil {
		dbg(-2, "degrade flush failed: %v", err)
	}
}

// hedgeBackup tries to serve slot content from the slot's CRC-verified
// HDD home backup instead of the (slow) SSD. Returns the content, the
// HDD service time, and whether the backup validated. installReference
// writes the backup precisely so this alternative exists; the CRC
// detects a backup later overwritten by an eviction. Write-through
// slots (homeLBA < 0) have no backup and cannot hedge.
func (c *Controller) hedgeBackup(s *refSlot) ([]byte, sim.Duration, bool) {
	if s.homeLBA < 0 {
		return nil, 0, false
	}
	buf := c.getScratch()
	d, err := c.hddRead(s.homeLBA, buf)
	if err != nil || contentCRC(buf) != s.crc {
		if err == nil {
			// The probe cost real HDD time but served nothing; charge it
			// as background work (a cancelled hedge in flight).
			c.Stats.BackgroundHDDTime += d
		}
		return nil, 0, false
	}
	return buf, d, true
}

// SetSSDQuarantined flips the soft quarantine of a fail-slow SSD. Under
// quarantine, foreground slot reads bypass the SSD via the home backup,
// and the write path stops feeding it (no similarity detection, no
// write-through, no reference installs) — the same code points HDD-only
// degraded mode gates, but reversible: nothing is salvaged or detached,
// so clearing the flag re-admits the device with its state intact. The
// slow-device detector drives this; operators and tests may too.
func (c *Controller) SetSSDQuarantined(q bool) {
	if q == c.ssdQuarantined || c.ssdLost {
		return
	}
	c.ssdQuarantined = q
	if q {
		c.Stats.QuarantineEvents++
		c.quarantineReads = 0 // canary cadence restarts per episode
	} else {
		c.Stats.ReadmitEvents++
	}
}

// canaryInterval: one quarantined slot read in every canaryInterval
// probes the SSD instead of the backup. Frequent enough that the
// detector's eighth-window clear threshold is reachable on canary
// traffic spread across the SSD channels, rare enough that a sick
// device stays mostly idle.
const canaryInterval = 3

// SSDQuarantined reports whether the SSD is currently quarantined.
func (c *Controller) SSDQuarantined() bool { return c.ssdQuarantined }

// ssdSidelined reports whether the SSD should be avoided on new work:
// lost for good, or quarantined as fail-slow.
func (c *Controller) ssdSidelined() bool { return c.ssdLost || c.ssdQuarantined }

// Degraded reports whether the controller is running in HDD-only
// passthrough mode after SSD loss.
func (c *Controller) Degraded() bool { return c.ssdLost }

// DegradeSSD forces HDD-only degraded mode, as if the SSD had just
// failed. Exposed for operational tooling and tests.
func (c *Controller) DegradeSSD() { c.degradeSSD() }

// RetiredSlotCount reports SSD blocks permanently removed from
// circulation after unrecoverable program failures.
func (c *Controller) RetiredSlotCount() int { return len(c.retiredSlots) }
