package core

import (
	"bytes"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/fault"
	"icash/internal/sim"
)

// faultRig is a controller whose devices sit behind fault wrappers.
type faultRig struct {
	c    *Controller
	ssdF *fault.Device
	hddF *fault.Device
}

func newFaultRig(t *testing.T, cfg Config, ssdCfg, hddCfg fault.Config) *faultRig {
	t.Helper()
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
	hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
	ssdF := fault.Wrap(ssd, ssdCfg)
	hddF := fault.Wrap(hdd, hddCfg)
	c, err := New(cfg, ssdF, hddF, clock, cpu)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &faultRig{c: c, ssdF: ssdF, hddF: hddF}
}

// TestRequestValidation table-drives CheckRange/CheckBuffer propagation
// through the controller's public request entry points: invalid requests
// are rejected up front and leave no trace in controller state.
func TestRequestValidation(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	good := make([]byte, blockdev.BlockSize)
	short := make([]byte, blockdev.BlockSize-1)

	cases := []struct {
		name  string
		read  bool
		lba   int64
		buf   []byte
		wantE bool
	}{
		{"read ok", true, 0, good, false},
		{"write ok", false, 0, good, false},
		{"read negative lba", true, -1, good, true},
		{"write negative lba", false, -5, good, true},
		{"read past end", true, c.cfg.VirtualBlocks, good, true},
		{"write past end", false, c.cfg.VirtualBlocks + 7, good, true},
		{"read short buffer", true, 1, short, true},
		{"write short buffer", false, 1, short, true},
		{"read nil buffer", true, 1, nil, true},
		{"write nil buffer", false, 1, nil, true},
	}
	for _, tc := range cases {
		var err error
		if tc.read {
			_, err = c.ReadBlock(tc.lba, tc.buf)
		} else {
			_, err = c.WriteBlock(tc.lba, tc.buf)
		}
		if tc.wantE && err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
		if !tc.wantE && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants violated: %v", tc.name, err)
		}
	}
}

// TestFailedPromotionKeepsInvariants forces every SSD program to fail:
// reference installation and write-through must unwind cleanly (slots
// retired, content falling back to RAM/home) with no metadata damage
// and no wrong answers.
func TestFailedPromotionKeepsInvariants(t *testing.T) {
	cfg := smallConfig()
	rig := newFaultRig(t, cfg,
		fault.Config{Seed: 1, Rates: fault.Rates{WriteMedia: 1}},
		fault.Config{Seed: 2})
	c := rig.c
	r := sim.NewRand(42)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)

	for op := 0; op < 8000; op++ {
		lba := int64(r.Intn(1024))
		if r.Float64() < 0.4 {
			content := genContent(r, int(lba%7), 0.05)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write: %v", op, err)
			}
			model[lba] = content
		} else {
			if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatalf("op %d: read: %v", op, err)
			}
			want, ok := model[lba]
			if !ok {
				want = make([]byte, blockdev.BlockSize)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d: read lba %d wrong content", op, lba)
			}
		}
	}
	if c.Stats.SSDWriteFaults == 0 {
		t.Error("workload never hit the SSD program-failure path")
	}
	if c.Stats.SlotsRetired == 0 {
		t.Error("failed installs should retire slots")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after failed promotions: %v", err)
	}
}

// TestSlotCorruptionScrubRepair populates the reference store, corrupts
// every SSD slot, and checks that continued reads self-heal: damaged
// slots are scrubbed and repaired from a redundant copy (donor RAM or
// the HDD home backup), and any block whose content is genuinely
// unrecoverable is accounted in ScrubDataLoss — never silently wrong.
func TestSlotCorruptionScrubRepair(t *testing.T) {
	cfg := smallConfig()
	rig := newFaultRig(t, cfg, fault.Config{Seed: 3}, fault.Config{Seed: 4})
	c := rig.c
	r := sim.NewRand(11)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)

	for op := 0; op < 8000; op++ {
		lba := int64(r.Intn(1024))
		if r.Float64() < 0.4 {
			content := genContent(r, int(lba%7), 0.05)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write: %v", op, err)
			}
			model[lba] = content
		} else if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("op %d: read: %v", op, err)
		}
	}
	if c.Stats.RefsSelected == 0 {
		t.Fatal("workload never populated the reference store")
	}

	// Fixed-seed corruption: every slot's flash goes bad at once.
	for idx := int64(0); idx < cfg.SSDBlocks; idx++ {
		rig.ssdF.InjectBad(idx)
	}

	mismatches := int64(0)
	for lba := int64(0); lba < 1024; lba++ {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("read lba %d after corruption: %v", lba, err)
		}
		want, ok := model[lba]
		if !ok {
			want = make([]byte, blockdev.BlockSize)
		}
		if !bytes.Equal(buf, want) {
			mismatches++
		}
	}
	if c.Stats.SlotScrubs == 0 {
		t.Error("corrupted slots never triggered a scrub")
	}
	if c.Stats.SlotScrubRepairs == 0 {
		t.Error("no slot was repaired from a redundant copy")
	}
	if loss := c.Stats.ScrubDataLoss; mismatches > loss {
		t.Errorf("%d wrong reads but only %d accounted as scrub data loss", mismatches, loss)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after scrub storm: %v", err)
	}
}

// TestSSDLossDegradedMode pulls the whole SSD mid-run: the controller
// must flip into HDD-only degraded mode, keep serving every request,
// and account any block whose newest content died with the SSD.
func TestSSDLossDegradedMode(t *testing.T) {
	cfg := smallConfig()
	rig := newFaultRig(t, cfg, fault.Config{Seed: 5}, fault.Config{Seed: 6})
	c := rig.c
	r := sim.NewRand(23)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)

	for op := 0; op < 8000; op++ {
		if op == 4000 {
			rig.ssdF.Lose()
		}
		lba := int64(r.Intn(1024))
		if r.Float64() < 0.4 {
			content := genContent(r, int(lba%7), 0.05)
			if _, err := c.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write: %v", op, err)
			}
			model[lba] = content
		} else if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("op %d: read: %v", op, err)
		}
	}
	if !c.Degraded() {
		t.Fatal("controller never entered degraded mode")
	}
	if c.Stats.DegradeEvents != 1 {
		t.Errorf("DegradeEvents = %d, want 1", c.Stats.DegradeEvents)
	}
	if c.Stats.DegradedOps == 0 {
		t.Error("no operations accounted as degraded")
	}

	mismatches := int64(0)
	for lba := int64(0); lba < 1024; lba++ {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("degraded read lba %d: %v", lba, err)
		}
		want, ok := model[lba]
		if !ok {
			want = make([]byte, blockdev.BlockSize)
		}
		if !bytes.Equal(buf, want) {
			mismatches++
		}
	}
	if loss := c.Stats.DegradedDataLoss + c.Stats.ScrubDataLoss; mismatches > loss {
		t.Errorf("%d wrong reads but only %d accounted as data loss", mismatches, loss)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants in degraded mode: %v", err)
	}
}

// TestDeterministicFaultReplay runs the same faulty workload twice with
// identical seeds and requires bit-identical statistics — the property
// the crash-point harness depends on.
func TestDeterministicFaultReplay(t *testing.T) {
	run := func() (Stats, fault.Stats, fault.Stats) {
		cfg := smallConfig()
		rig := newFaultRig(t, cfg,
			fault.Config{Seed: 7, Rates: fault.Rates{Transient: 0.01, WriteMedia: 0.002}},
			fault.Config{Seed: 8, Rates: fault.Rates{Transient: 0.01}})
		c := rig.c
		r := sim.NewRand(99)
		buf := make([]byte, blockdev.BlockSize)
		for op := 0; op < 6000; op++ {
			lba := int64(r.Intn(1024))
			if r.Float64() < 0.4 {
				if _, err := c.WriteBlock(lba, genContent(r, int(lba%7), 0.05)); err != nil {
					t.Fatalf("op %d: write: %v", op, err)
				}
			} else if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatalf("op %d: read: %v", op, err)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return c.Stats, rig.ssdF.Stats, rig.hddF.Stats
	}
	s1, fs1, fh1 := run()
	s2, fs2, fh2 := run()
	if s1 != s2 {
		t.Errorf("controller stats diverged:\n%+v\n%+v", s1, s2)
	}
	if fs1 != fs2 || fh1 != fh2 {
		t.Errorf("fault wrapper stats diverged")
	}
	if s1.TransientRetries == 0 {
		t.Error("transient faults never exercised the retry path")
	}
}

// TestHedgedReadCutsSlowSSD arms a fail-slow window on the SSD and
// checks the hedging path end to end: foreground reference reads that
// blow the hedge deadline issue a hedge against the CRC-validated HDD
// home backup, winning hedges bound the request at deadline + HDD time,
// and every byte served stays correct.
func TestHedgedReadCutsSlowSSD(t *testing.T) {
	cfg := smallConfig()
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
	hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
	plan := &fault.Schedule{Seed: 1}
	ssdF := fault.Wrap(ssd, fault.Config{Seed: 1, Plan: plan, Clock: clock, Station: "ssd"})
	c, err := New(cfg, ssdF, hdd, clock, cpu)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	// Content-local workload: the scan installs references (each backed
	// up at its donor's home) and attaches associates.
	r := sim.NewRand(42)
	model := make(map[int64][]byte)
	for op := 0; op < 2000; op++ {
		lba := int64(r.Intn(512))
		content := genContent(r, int(lba%4), 0.03)
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatalf("op %d: write: %v", op, err)
		}
		model[lba] = content
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	// The plan is late-bound: appending a window now takes effect on the
	// next shaped operation. 1000x turns the 10 us SSD into 10 ms — far
	// past the 2 ms hedge deadline — while the HDD stays healthy.
	plan.Windows = append(plan.Windows, fault.Window{
		Station: "ssd",
		From:    clock.Now(),
		To:      clock.Now().Add(sim.Duration(10) * sim.Second),
		Factor:  1000,
	})

	buf := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < 512; lba++ {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		want, ok := model[lba]
		if !ok {
			want = make([]byte, blockdev.BlockSize)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("read lba %d: wrong content under fail-slow window", lba)
		}
	}

	st := c.Stats
	if st.DeadlineExceeded == 0 {
		t.Fatal("no foreground slot read ever blew the hedge deadline")
	}
	if st.HedgedReads == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges issued/won = %d/%d, want both > 0", st.HedgedReads, st.HedgeWins)
	}
	if st.HedgeSavedTime <= 0 {
		t.Fatalf("HedgeSavedTime = %v, want > 0", st.HedgeSavedTime)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestQuarantineBypassAndCanary: with the SSD quarantined, slot reads
// are served from home backups (QuarantineSkips), a deterministic
// fraction still reaches the SSD as canary probes (the detector needs
// samples to re-admit), and lifting the quarantine counts a re-admit.
func TestQuarantineBypassAndCanary(t *testing.T) {
	cfg := smallConfig()
	rig := newFaultRig(t, cfg, fault.Config{Seed: 5}, fault.Config{Seed: 6})
	c := rig.c
	r := sim.NewRand(42)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)
	for op := 0; op < 2000; op++ {
		lba := int64(r.Intn(512))
		content := genContent(r, int(lba%4), 0.03)
		if _, err := c.WriteBlock(lba, content); err != nil {
			t.Fatalf("op %d: write: %v", op, err)
		}
		model[lba] = content
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	c.SetSSDQuarantined(true)
	if !c.SSDQuarantined() || c.Stats.QuarantineEvents != 1 {
		t.Fatalf("quarantine entry not recorded: %+v", c.Stats)
	}
	ssdReadsBefore := rig.ssdF.Stats.Reads
	for lba := int64(0); lba < 512; lba++ {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatalf("quarantined read lba %d: %v", lba, err)
		}
		if want := model[lba]; want != nil && !bytes.Equal(buf, want) {
			t.Fatalf("quarantined read lba %d: wrong content", lba)
		}
	}
	if c.Stats.QuarantineSkips == 0 {
		t.Fatal("quarantine never bypassed the SSD")
	}
	if c.Stats.QuarantinedOps == 0 {
		t.Fatal("QuarantinedOps not counted")
	}
	if canaries := rig.ssdF.Stats.Reads - ssdReadsBefore; canaries == 0 {
		t.Fatal("no canary probe reached the quarantined SSD")
	}

	c.SetSSDQuarantined(false)
	if c.SSDQuarantined() || c.Stats.ReadmitEvents != 1 {
		t.Fatalf("re-admission not recorded: %+v", c.Stats)
	}
}

// TestRetryDeadlineGiveUp: a device stuck returning transient timeouts
// must not be retried past the per-operation deadline — the retry loop
// gives up loudly and counts it.
func TestRetryDeadlineGiveUp(t *testing.T) {
	cfg := smallConfig()
	cfg.MaxRetries = 100
	cfg.OpDeadline = 2 * sim.Millisecond
	rig := newFaultRig(t, cfg,
		fault.Config{Seed: 9},
		fault.Config{Seed: 10, Rates: fault.Rates{Transient: 1}})
	buf := make([]byte, blockdev.BlockSize)
	if _, err := rig.c.ReadBlock(0, buf); err == nil {
		t.Fatal("read through an always-transient HDD succeeded")
	}
	if rig.c.Stats.DeadlineGiveUps == 0 {
		t.Fatal("retry loop never gave up at the op deadline")
	}
	if err := rig.c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after give-up: %v", err)
	}
}
