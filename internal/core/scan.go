package core

import (
	"sort"

	"icash/internal/blockdev"
	"icash/internal/delta"
	"icash/internal/sig"
	"icash/internal/sim"
)

// scan is the periodic similarity-detection phase (paper §4.2): every
// ScanPeriod I/Os the controller examines up to ScanWindow blocks from
// the head of the LRU queue, computes each block's Heatmap popularity,
// selects the most popular unattached blocks as new references, and
// delta-attaches the remaining similar blocks to references. The
// association between reference and delta blocks is reorganized at the
// end of each scanning phase.
func (c *Controller) scan() error {
	if c.ssdSidelined() {
		// HDD-only degraded mode (nowhere to install references), or a
		// quarantined fail-slow SSD (keep reorganization traffic off it).
		return nil
	}
	c.Stats.Scans++

	// Collect the scan window from the LRU head.
	window := make([]*vblock, 0, c.cfg.ScanWindow)
	for v := c.lru.head; v != nil && len(window) < c.cfg.ScanWindow; v = v.next {
		window = append(window, v)
	}
	if len(window) == 0 {
		return nil
	}
	c.Stats.ScanCandidates += int64(len(window))
	c.cpu.ChargeStorage(c.costs.ScanPerBlock * sim.Duration(len(window)))

	// Popularity of every window block, and identical-signature groups:
	// two blocks sharing an exact signature are the strongest similarity
	// signal and always justify a reference.
	type cand struct {
		v   *vblock
		pop uint64
	}
	cands := make([]cand, 0, len(window))
	sigGroup := make(map[sig.Signature]int, len(window))
	var popSum uint64
	for _, v := range window {
		p := c.heat.Popularity(v.sigv)
		cands = append(cands, cand{v: v, pop: p})
		popSum += p
		sigGroup[v.sigv]++
	}
	popBar := 2 * popSum / uint64(len(window)) // twice the window mean

	// Most popular first; ties broken by LBA for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].pop != cands[j].pop {
			return cands[i].pop > cands[j].pop
		}
		return cands[i].v.lba < cands[j].v.lba
	})

	installFailed := 0
	for _, cd := range cands {
		v := cd.v
		if v.dead {
			continue // evicted by reclamation earlier in this scan
		}
		if v.slotRef != nil {
			continue // already a reference, associate or write-through
		}
		// Find the closest existing reference slot by signature.
		best := c.findSimilarSlot(v.sigv)
		if best != nil {
			if ok, err := c.tryAttach(v, best); err != nil {
				if blockdev.Classify(err) == blockdev.ClassMedia {
					continue // unscrubable candidate; skip, don't abort the scan
				}
				return err
			} else if ok {
				continue
			}
		}
		// No attachable reference: promote to reference if the content
		// is popular enough — shared by an identical-signature sibling
		// in the window, or well above the window's mean popularity.
		promote := sigGroup[v.sigv] > 1 || (cd.pop > popBar && cd.pop >= 16)
		if !promote {
			continue
		}
		content, _, _, err := c.materialize(v, true)
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassMedia {
				continue
			}
			return err
		}
		s, err := c.installReference(v, content)
		if err != nil {
			return err
		}
		if s == nil {
			installFailed++
		}
	}

	// Reorganization pressure valve: when this scan wanted to install
	// fresher references but the SSD was full, demote the coldest
	// donor-only references to make room for the next scan.
	if installFailed > 0 && len(c.freeSlots) == 0 {
		demoted := 0
		for v := c.lru.tail; v != nil && demoted < 8; {
			prev := v.prev
			if v.kind == Reference && v.slotRef != nil && v.slotRef.refcnt == 1 {
				if err := c.evictToHome(v); err != nil {
					return err
				}
				c.Stats.RefsDemoted++
				demoted++
			}
			v = prev
		}
	}
	return nil
}

// findSimilarSlot returns the live reference slot whose content
// signature is closest to sigv (within MaxSigDistance), or nil. The
// probe count is bounded so per-request similarity detection stays
// cheap.
func (c *Controller) findSimilarSlot(sigv sig.Signature) *refSlot {
	const maxSlotProbe = 256
	var best *refSlot
	bestDist := c.cfg.MaxSigDistance + 1
	probes := 0
	for _, s := range c.liveSlots() {
		if probes++; probes > maxSlotProbe {
			break
		}
		if d := sig.Distance(sigv, s.sigv); d < bestDist {
			best, bestDist = s, d
			if d == 0 {
				break
			}
		}
	}
	return best
}

// tryAttach delta-encodes v against slot s and attaches it as an
// associate when the delta fits the threshold.
func (c *Controller) tryAttach(v *vblock, s *refSlot) (bool, error) {
	base, _, err := c.slotContent(s, true)
	if err != nil {
		return false, err
	}
	content, _, _, err := c.materialize(v, true)
	if err != nil {
		return false, err
	}
	c.cpu.ChargeStorage(c.costs.DeltaEncode)
	c.Stats.EncodeOps++
	enc, ok := delta.Encode(content, base, c.cfg.DeltaThreshold)
	if !ok {
		c.Stats.ScanDeltaRejects++
		return false, nil
	}
	// Keep the full content cached before rebinding, then store the
	// delta as the authoritative representation.
	if v.dataRAM == nil {
		if err := c.cacheData(v, content, false); err != nil {
			return false, err
		}
	}
	if !c.storeDelta(v, enc, true) {
		return false, nil
	}
	c.attachSlot(v, s)
	c.promoteDonor(s)
	v.kind = Associate
	v.sigv = s.sigv // identity now refers to the reference content
	v.dataDirty = false
	c.Stats.AssocFormed++
	c.Stats.NoteDelta(len(enc))
	return true, nil
}
