package core

import (
	"bytes"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// writeSimilarSet writes n blocks derived from one template (small
// per-block differences), then reads them all twice so the scan sees a
// popular content family.
func writeSimilarSet(t *testing.T, c *Controller, n int64, seed uint64) [][]byte {
	t.Helper()
	template := make([]byte, blockdev.BlockSize)
	sim.NewRand(seed).Bytes(template)
	contents := make([][]byte, n)
	for lba := int64(0); lba < n; lba++ {
		b := append([]byte(nil), template...)
		for j := 0; j < 24; j++ {
			b[200+j] = byte(lba >> (j % 8))
		}
		contents[lba] = b
		if _, err := c.WriteBlock(lba, b); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, blockdev.BlockSize)
	for pass := 0; pass < 2; pass++ {
		for lba := int64(0); lba < n; lba++ {
			if _, err := c.ReadBlock(lba, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	return contents
}

func TestScanBuildsReferences(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	writeSimilarSet(t, c, 600, 77)
	k := c.KindCounts()
	if k.Reference == 0 {
		t.Fatal("scan never selected a reference")
	}
	if k.Associate < 400 {
		t.Fatalf("only %d associates of 600 similar blocks", k.Associate)
	}
	if c.Stats.AvgDeltaSize() > 512 {
		t.Fatalf("avg delta %f too large for near-identical blocks", c.Stats.AvgDeltaSize())
	}
	// SSD economy: many logical blocks per SSD slot.
	covered := k.Reference + k.Associate
	if slots := c.LiveSlotCount(); covered < 3*slots {
		t.Errorf("coverage %d blocks over %d slots: expected delta sharing", covered, slots)
	}
}

func TestReferenceAheadOfAssociatesInLRU(t *testing.T) {
	// Paper §4.3: a reference block is always ahead of its associates in
	// the LRU queue because serving an associate touches the reference.
	rig := newTestRig(t, smallConfig())
	c := rig.c
	writeSimilarSet(t, c, 200, 5)
	buf := make([]byte, blockdev.BlockSize)
	// Touch a specific associate; its reference donor must be at least
	// as recent.
	var assoc *vblock
	for v := c.lru.head; v != nil; v = v.next {
		if v.kind == Associate && v.slotRef != nil && v.slotRef.donor >= 0 {
			if _, ok := c.blocks[v.slotRef.donor]; ok {
				assoc = v
				break
			}
		}
	}
	if assoc == nil {
		t.Skip("no associate with live donor")
	}
	if _, err := c.ReadBlock(assoc.lba, buf); err != nil {
		t.Fatal(err)
	}
	donor := c.blocks[assoc.slotRef.donor]
	// Walk from the head: the donor must appear before the associate.
	for v := c.lru.head; v != nil; v = v.next {
		if v == donor {
			return // donor first: ordering holds
		}
		if v == assoc {
			t.Fatal("associate ahead of its reference in the LRU queue")
		}
	}
	t.Fatal("blocks missing from LRU")
}

func TestWriteThroughOnIncompressible(t *testing.T) {
	rig := newTestRig(t, smallConfig())
	c := rig.c
	writeSimilarSet(t, c, 300, 9)
	before := rig.ssd.Stats.Writes
	// Overwrite attached blocks with unrelated content: deltas exceed
	// the threshold, so the new data goes straight to the SSD (§5.3).
	r := sim.NewRand(10)
	fresh := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < 50; lba++ {
		r.Bytes(fresh)
		if _, err := c.WriteBlock(lba, fresh); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats.WriteThroughSSD == 0 {
		t.Fatal("incompressible writes never took the write-through path")
	}
	if rig.ssd.Stats.Writes == before {
		t.Fatal("write-through did not reach the SSD device")
	}
}

func TestHeatmapDecayTriggered(t *testing.T) {
	cfg := smallConfig()
	cfg.HeatmapDecayOps = 500
	rig := newTestRig(t, cfg)
	c := rig.c
	writeSimilarSet(t, c, 300, 13)
	var s = c.blocks[0].sigv
	popMid := c.heat.Popularity(s)
	// Idle accesses to unrelated blocks: decay halves old popularity.
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < 1200; i++ {
		c.ReadBlock(int64(2000+i%100), buf)
	}
	if got := c.heat.Popularity(s); got >= popMid {
		t.Fatalf("popularity %d did not decay from %d", got, popMid)
	}
}

func TestSelfDeltaOnReference(t *testing.T) {
	// A written reference block keeps its SSD content and accumulates a
	// self-delta (§4.3): associates must still decode correctly.
	rig := newTestRig(t, smallConfig())
	c := rig.c
	contents := writeSimilarSet(t, c, 100, 17)

	// Find a donor (reference) and one of its associates.
	var donor, assoc *vblock
	for v := c.lru.head; v != nil; v = v.next {
		if v.kind == Reference && v.slotRef != nil && v.slotRef.refcnt > 1 {
			donor = v
			break
		}
	}
	if donor == nil {
		t.Skip("no shared reference formed")
	}
	for v := c.lru.head; v != nil; v = v.next {
		if v.kind == Associate && v.slotRef == donor.slotRef {
			assoc = v
			break
		}
	}
	if assoc == nil {
		t.Skip("no associate on the shared reference")
	}

	// Write the reference: small change -> self delta.
	mod := append([]byte(nil), contents[donor.lba]...)
	mod[50] ^= 0xFF
	if _, err := c.WriteBlock(donor.lba, mod); err != nil {
		t.Fatal(err)
	}
	if donor.ssdCurrent {
		t.Fatal("written reference should carry a self-delta")
	}
	// Both read back correctly.
	buf := make([]byte, blockdev.BlockSize)
	if _, err := c.ReadBlock(donor.lba, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, mod) {
		t.Fatal("reference self-delta decode wrong")
	}
	if _, err := c.ReadBlock(assoc.lba, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, contents[assoc.lba]) {
		t.Fatal("associate corrupted by reference write")
	}
}

func TestDataRAMEvictionKeepsCorrectness(t *testing.T) {
	cfg := smallConfig()
	cfg.DataRAMBytes = 8 << 10 // two blocks: constant data eviction
	rig := newTestRig(t, cfg)
	c := rig.c
	contents := writeSimilarSet(t, c, 120, 19)
	if c.Stats.EvictDataRAM == 0 {
		t.Fatal("expected data-RAM evictions")
	}
	buf := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < 120; lba++ {
		if _, err := c.ReadBlock(lba, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, contents[lba]) {
			t.Fatalf("lba %d wrong after data eviction", lba)
		}
	}
}

func TestLRUListOps(t *testing.T) {
	var l lruList
	a, b, c := &vblock{lba: 1}, &vblock{lba: 2}, &vblock{lba: 3}
	l.pushFront(a)
	l.pushFront(b)
	l.pushFront(c) // order: c b a
	if l.len() != 3 || l.head != c || l.tail != a {
		t.Fatal("push order wrong")
	}
	l.moveToFront(a) // a c b
	if l.head != a || l.tail != b {
		t.Fatal("moveToFront wrong")
	}
	l.moveToFront(a) // no-op
	if l.head != a {
		t.Fatal("moveToFront head no-op wrong")
	}
	l.remove(c) // a b
	if l.len() != 2 || a.next != b || b.prev != a {
		t.Fatal("remove middle wrong")
	}
	l.remove(a)
	l.remove(b)
	if l.len() != 0 || l.head != nil || l.tail != nil {
		t.Fatal("list not empty")
	}
}
