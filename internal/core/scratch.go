package core

import "icash/internal/blockdev"

// Request-scoped scratch arena. Hot paths that need a transient 4 KB
// buffer whose lifetime is "the rest of this host request" — slot
// content reads, home reads inside materialize, delta decode output —
// draw from here instead of allocating. The arena owns every buffer it
// hands out: callers never Put, they simply let the slice go out of
// scope, and the next host request's entry point recycles the whole
// arena back to the blockdev pool in one sweep.
//
// This shape exists because materialize/slotContent callers cannot tell
// a pooled scratch buffer from long-lived cached RAM (both flow through
// the same "returned slice must not be retained" contract), so per-call
// Put would be unsound. Deferring the Put to the next request boundary
// makes it sound: by then every slice derived from the arena is dead.
// See DESIGN.md §11 for the full ownership rules.

// getScratch returns a BlockSize buffer with arbitrary contents, valid
// until the next recycleScratch (i.e. the next host request entry).
func (c *Controller) getScratch() []byte {
	b := blockdev.GetBlock()
	c.scratch = append(c.scratch, b)
	return b
}

// recycleScratch returns every outstanding scratch buffer to the pool.
// Called only at host-request entry points (ReadBlock, WriteBlock,
// Flush), when no slice from the previous request can still be live.
func (c *Controller) recycleScratch() {
	for i, b := range c.scratch {
		blockdev.PutBlock(b)
		c.scratch[i] = nil
	}
	c.scratch = c.scratch[:0]
}
