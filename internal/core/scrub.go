package core

import (
	"icash/internal/blockdev"
	"icash/internal/sim"
)

// This file is the proactive background scrubber (DESIGN.md §14): a
// deterministic, clock-driven station that walks the SSD reference
// slots and the checksum-tracked HDD home blocks, cross-checking each
// copy against the integrity layer's expected CRCs, and drives the
// existing repair machinery (scrubSlot, retirement, quarantine) when a
// copy has silently rotted. Unlike the reactive checks on the request
// path — which only catch corruption when a block happens to be read —
// the scrubber bounds detection latency for cold data.
//
// Determinism: progress is a pair of linear cursors advanced on a
// simulated-clock schedule. No RNG, no map iteration, no wall clock —
// a scrubbed run is byte-identical at any -parallel count and across
// repeats, which the chaos battery checks.

// ScrubConfig configures the background scrubber station.
type ScrubConfig struct {
	// Interval is the simulated time between scrub batches. Zero or
	// negative disables the scrubber entirely (the default): the only
	// cost on the request path is one comparison in periodic().
	Interval sim.Duration
	// Batch is how many blocks each firing verifies (default 8). The
	// pair Interval/Batch is the scrub rate limit: Batch blocks per
	// Interval of simulated time.
	Batch int
}

// SetScrub installs the scrubber schedule. Call before issuing I/O (or
// between phases); changing the interval re-anchors the next firing at
// the next request. A zero-interval config disables the station.
func (c *Controller) SetScrub(cfg ScrubConfig) {
	c.scrub = cfg
	c.scrubArmed = false
}

// ScrubPoll runs any scrub batches whose schedule has come due. The
// request path calls this from periodic(); harness drivers may also
// call it directly between requests.
func (c *Controller) ScrubPoll() { c.scrubPoll() }

func (c *Controller) scrubPoll() {
	if c.scrub.Interval <= 0 {
		return
	}
	now := c.clock.Now()
	if !c.scrubArmed {
		// Lazy arming anchors the schedule at the first polled time, so
		// a scrubber configured before the workload starts does not owe
		// a burst of catch-up batches for the idle prefix.
		c.scrubArmed = true
		c.scrubNext = now.Add(c.scrub.Interval)
		return
	}
	// Catch up at most a few missed firings, then re-anchor: a long
	// request gap charges bounded scrub work, not an unbounded burst.
	for fired := 0; now >= c.scrubNext; fired++ {
		if fired >= 4 {
			c.scrubNext = now.Add(c.scrub.Interval)
			return
		}
		c.scrubBatch()
		c.scrubNext = c.scrubNext.Add(c.scrub.Interval)
	}
}

// scrubBatch verifies one batch of blocks at the cursors.
func (c *Controller) scrubBatch() {
	n := c.scrub.Batch
	if n <= 0 {
		n = 8
	}
	for i := 0; i < n; i++ {
		c.scrubStep()
	}
}

// scrubStep advances the scrub cursor by one block: first across the
// SSD slot range, then across the HDD home range, then wraps (counting
// a completed pass).
func (c *Controller) scrubStep() {
	if c.scrubSlotCursor < c.cfg.SSDBlocks {
		c.scrubOneSlot(c.scrubSlotCursor)
		c.scrubSlotCursor++
		return
	}
	if c.scrubHomeCursor < c.cfg.VirtualBlocks {
		c.scrubOneHome(c.scrubHomeCursor)
		c.scrubHomeCursor++
		return
	}
	c.scrubSlotCursor = 0
	c.scrubHomeCursor = 0
	c.Stats.ScrubPasses++
}

// scrubOneSlot verifies the reference slot at SSD index idx, if one is
// live there. A checksum mismatch routes through the same scrubSlot
// repair/retirement path the request-path detection uses; the slot's
// HDD home backup is cross-checked too, so a rotted backup is healed
// while the SSD copy is still good (and vice versa).
func (c *Controller) scrubOneSlot(idx int64) {
	s, ok := c.slots[idx]
	if !ok || c.ssdSidelined() {
		return
	}
	c.Stats.ScrubSlotChecks++
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	d, err := c.ssdRead(idx, buf)
	detected := false
	if err == nil {
		c.Stats.BackgroundSSDTime += d
		if contentCRC(buf) == s.crc {
			c.scrubSlotBackup(s, buf)
			return
		}
		c.noteCorruption("ssd", idx)
		detected = true
	} else if blockdev.Classify(err) == blockdev.ClassDeviceLost {
		return
	}
	// Damaged content (silently wrong or loudly failed): repair from a
	// redundant copy, salvaging and retiring the slot when none
	// validates — identical handling to a request-path detection.
	_, serr := c.scrubSlot(s)
	if detected {
		if serr == nil {
			c.Stats.CorruptionsRepaired++
		} else {
			c.Stats.UnrepairableBlocks++
		}
	}
}

// scrubSlotBackup cross-checks the slot's HDD home backup against the
// (just verified) SSD copy and heals a rotted backup in place. Only a
// backup that is still supposed to match is checked: the donor's home
// may since have been legitimately overwritten by an eviction, which
// the integrity map distinguishes from rot (the tracked home checksum
// then no longer equals the slot CRC).
func (c *Controller) scrubSlotBackup(s *refSlot, content []byte) {
	if s.homeLBA < 0 || c.poisoned[s.homeLBA] || c.sums[s.homeLBA] != s.crc {
		return
	}
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	d, err := c.hddRead(s.homeLBA, buf)
	if err != nil {
		return
	}
	c.Stats.BackgroundHDDTime += d
	if contentCRC(buf) == s.crc {
		return
	}
	c.noteCorruption("hdd", s.homeLBA)
	if wd, werr := c.hddWrite(s.homeLBA, content); werr == nil {
		c.Stats.BackgroundHDDTime += wd
		c.Stats.CorruptionsRepaired++
	} else {
		c.Stats.UnrepairableBlocks++
	}
}

// scrubOneHome verifies the HDD home block at lba against the tracked
// content checksum. Only quiescent home-resident copies are checked: a
// block with dirty RAM state, an unflushed delta, or a slot attachment
// has its authoritative content elsewhere, and verifying mid-update
// state would race the write path (the scrub-vs-concurrent-write
// test pins this). Repair sources, in order: the block's clean RAM
// copy, a fresh re-read; failing both, the block is poisoned.
func (c *Controller) scrubOneHome(lba int64) {
	want, tracked := c.sums[lba]
	if !tracked || c.poisoned[lba] {
		return
	}
	v := c.blocks[lba]
	if v != nil && (!v.hddHome || v.dataDirty || v.deltaDirty || v.inDirty || v.slotRef != nil) {
		return
	}
	c.Stats.ScrubHomeChecks++
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	d, err := c.hddRead(lba, buf)
	if err != nil {
		return
	}
	c.Stats.BackgroundHDDTime += d
	if blockdev.ContentCRC(buf) == want {
		return
	}
	c.noteCorruption("hdd", lba)
	if v != nil && v.dataRAM != nil && blockdev.ContentCRC(v.dataRAM) == want {
		if wd, werr := c.hddWrite(lba, v.dataRAM); werr == nil {
			c.Stats.BackgroundHDDTime += wd
			c.Stats.CorruptionsRepaired++
			return
		}
	}
	d2, err := c.hddRead(lba, buf)
	if err == nil {
		c.Stats.BackgroundHDDTime += d2
		if blockdev.ContentCRC(buf) == want {
			c.Stats.CorruptionsRepaired++
			return
		}
	}
	c.poisoned[lba] = true
	c.Stats.UnrepairableBlocks++
}
