package core

import (
	"fmt"

	"icash/internal/sim"
)

// ShardedController composes N independent controllers into one block
// device by contiguous LBA range: shard i owns virtual blocks
// [i*shardBlocks, (i+1)*shardBlocks). Each shard is a complete I-CASH
// instance — its own slot table, heatmap, delta cache and group-commit
// journal chain over its own SSD+HDD pair — so shards never share
// mutable state and a request touches exactly one shard.
//
// Determinism contract: the shards all read the one sim.Clock their
// builder passed to New, and ShardedController itself owns no clock and
// never advances one. Routing is a pure function of the LBA, every
// aggregate accessor walks the shards in index order, and Flush drains
// them in index order, so a run's output is byte-identical whatever
// worker count populated or drove it — the PR-5 forEachPoint discipline
// extended to request routing.
//
// Like Controller, ShardedController is not itself safe for concurrent
// use on one shard; callers that want cross-shard concurrency must hold
// a per-shard exclusion token (see server.ShardRouter). Two goroutines
// inside two *different* shards are safe by construction: the only
// cross-shard state is this struct's immutable routing table.
type ShardedController struct {
	shards      []*Controller
	shardBlocks int64
	blocks      int64
}

// NewSharded composes shards (all sized identically) into one LBA
// space. The uniform size keeps Route a divide — and, when the builder
// aligns shardBlocks to the VM image size, keeps every VM image whole
// within one shard so first-load pairing still sees its image-offset
// twins.
func NewSharded(shards []*Controller) (*ShardedController, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: NewSharded needs at least one shard")
	}
	per := shards[0].Blocks()
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("core: NewSharded: shard %d is nil", i)
		}
		if sh.Blocks() != per {
			return nil, fmt.Errorf("core: NewSharded: shard %d has %d blocks, want uniform %d",
				i, sh.Blocks(), per)
		}
	}
	return &ShardedController{
		shards:      shards,
		shardBlocks: per,
		blocks:      per * int64(len(shards)),
	}, nil
}

// NumShards returns the shard count.
func (s *ShardedController) NumShards() int { return len(s.shards) }

// Shard returns shard i for per-shard inspection (journal counters,
// invariants, quarantine control).
func (s *ShardedController) Shard(i int) *Controller { return s.shards[i] }

// Shards returns the shard slice in index order. Callers must not
// mutate it.
func (s *ShardedController) Shards() []*Controller { return s.shards }

// ShardBlocks returns the per-shard capacity in blocks.
func (s *ShardedController) ShardBlocks() int64 { return s.shardBlocks }

// Route maps a global LBA to (shard index, shard-local LBA). It is the
// single routing function: the device path, the block service's session
// partitions and the inspection tools all agree on it.
func (s *ShardedController) Route(lba int64) (int, int64) {
	return int(lba / s.shardBlocks), lba % s.shardBlocks
}

// Blocks returns the composed capacity.
func (s *ShardedController) Blocks() int64 { return s.blocks }

func (s *ShardedController) checkRange(lba int64) error {
	if lba < 0 || lba >= s.blocks {
		return fmt.Errorf("core: sharded lba %d out of range (capacity %d)", lba, s.blocks)
	}
	return nil
}

// ReadBlock routes a read to its owning shard.
func (s *ShardedController) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := s.checkRange(lba); err != nil {
		return 0, err
	}
	si, local := s.Route(lba)
	return s.shards[si].ReadBlock(local, buf)
}

// WriteBlock routes a write to its owning shard.
func (s *ShardedController) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := s.checkRange(lba); err != nil {
		return 0, err
	}
	si, local := s.Route(lba)
	return s.shards[si].WriteBlock(local, buf)
}

// Flush drains every shard in index order. The order is load-bearing
// for determinism: each shard's flush mutates only shard-local state,
// but the first error out decides the call's result.
func (s *ShardedController) Flush() error {
	for i, sh := range s.shards {
		if err := sh.Flush(); err != nil {
			return fmt.Errorf("core: shard %d flush: %w", i, err)
		}
	}
	return nil
}

// Stats sums the per-shard counters (index order; Accumulate walks
// every field, so histograms and embedded device stats aggregate too).
func (s *ShardedController) Stats() Stats {
	var total Stats
	for _, sh := range s.shards {
		st := sh.Stats
		total.Accumulate(&st)
	}
	return total
}

// KindCounts sums the block-population mix across shards.
func (s *ShardedController) KindCounts() KindCounts {
	var total KindCounts
	for _, sh := range s.shards {
		k := sh.KindCounts()
		total.Reference += k.Reference
		total.Associate += k.Associate
		total.Independent += k.Independent
	}
	return total
}

// DeltaRAMUsed sums the shards' delta-buffer occupancy.
func (s *ShardedController) DeltaRAMUsed() int64 {
	var total int64
	for _, sh := range s.shards {
		total += sh.DeltaRAMUsed()
	}
	return total
}

// LiveSlotCount sums occupied SSD slots across shards.
func (s *ShardedController) LiveSlotCount() int {
	var total int
	for _, sh := range s.shards {
		total += sh.LiveSlotCount()
	}
	return total
}

// FreeSlotCount sums free SSD slots across shards.
func (s *ShardedController) FreeSlotCount() int {
	var total int
	for _, sh := range s.shards {
		total += sh.FreeSlotCount()
	}
	return total
}

// PoisonedBlocks sums unreadable (poisoned) blocks across shards.
func (s *ShardedController) PoisonedBlocks() int {
	var total int
	for _, sh := range s.shards {
		total += sh.PoisonedBlocks()
	}
	return total
}

// Degraded reports whether any shard has fallen into HDD-only degraded
// mode: one lost SSD degrades the LBA range it serves, and the array's
// service promise is only as strong as its weakest shard.
func (s *ShardedController) Degraded() bool {
	for _, sh := range s.shards {
		if sh.Degraded() {
			return true
		}
	}
	return false
}

// SSDQuarantined reports whether any shard currently serves around a
// soft-quarantined SSD.
func (s *ShardedController) SSDQuarantined() bool {
	for _, sh := range s.shards {
		if sh.SSDQuarantined() {
			return true
		}
	}
	return false
}

// ResetStats zeroes every shard's counters (after populate).
func (s *ShardedController) ResetStats() {
	for _, sh := range s.shards {
		sh.ResetStats()
	}
}

// SetScrub configures the background scrubber on every shard.
func (s *ShardedController) SetScrub(cfg ScrubConfig) {
	for _, sh := range s.shards {
		sh.SetScrub(cfg)
	}
}

// SetCorruptionHook installs fn on every shard, prefixing the device
// name with the shard's station namespace ("s2.ssd") so a chaos oracle
// can attribute a detection to the one faulted shard.
func (s *ShardedController) SetCorruptionHook(fn func(dev string, devLBA int64)) {
	for i, sh := range s.shards {
		prefix := fmt.Sprintf("s%d.", i)
		sh.SetCorruptionHook(func(dev string, devLBA int64) { fn(prefix+dev, devLBA) })
	}
}

// CheckInvariants runs every shard's invariant sweep, reporting the
// first violation by shard index.
func (s *ShardedController) CheckInvariants() error {
	for i, sh := range s.shards {
		if err := sh.CheckInvariants(); err != nil {
			return fmt.Errorf("core: shard %d: %w", i, err)
		}
	}
	return nil
}
