package core

import (
	"bytes"
	"fmt"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// newShardedRig builds n identically-sized shards over in-memory
// devices, all under one shared clock, composed by NewSharded.
func newShardedRig(t testing.TB, n int, cfg Config) (*ShardedController, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	shards := make([]*Controller, n)
	for i := range shards {
		ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
		hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
		c, err := New(cfg, ssd, hdd, clock, cpu)
		if err != nil {
			t.Fatalf("New shard %d: %v", i, err)
		}
		shards[i] = c
	}
	sc, err := NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return sc, clock
}

func shardConfig() Config {
	cfg := NewDefaultConfig(1024, 128, 64<<10, 256<<10)
	cfg.ScanPeriod = 100
	cfg.ScanWindow = 400
	cfg.LogBlocks = 64
	cfg.FlushPeriodOps = 128
	cfg.FlushDirtyBytes = 32 << 10
	return cfg
}

func TestShardedRouting(t *testing.T) {
	sc, _ := newShardedRig(t, 4, shardConfig())
	per := sc.ShardBlocks()
	if per != 1024 {
		t.Fatalf("ShardBlocks = %d, want 1024", per)
	}
	if sc.Blocks() != 4*per {
		t.Fatalf("Blocks = %d, want %d", sc.Blocks(), 4*per)
	}
	for _, tc := range []struct {
		lba   int64
		shard int
		local int64
	}{
		{0, 0, 0}, {per - 1, 0, per - 1}, {per, 1, 0},
		{2*per + 7, 2, 7}, {4*per - 1, 3, per - 1},
	} {
		si, local := sc.Route(tc.lba)
		if si != tc.shard || local != tc.local {
			t.Errorf("Route(%d) = (%d, %d), want (%d, %d)", tc.lba, si, local, tc.shard, tc.local)
		}
	}
	buf := make([]byte, blockdev.BlockSize)
	if _, err := sc.ReadBlock(4*per, buf); err == nil {
		t.Error("ReadBlock past capacity did not fail")
	}
	if _, err := sc.WriteBlock(-1, buf); err == nil {
		t.Error("WriteBlock at negative lba did not fail")
	}
}

// TestShardedReadYourWrites drives a content-local workload over shard
// counts 1/2/4 and checks every read against a shadow model: routing
// must never mix ranges, and each shard must behave as a full
// controller over its slice.
func TestShardedReadYourWrites(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			cfg := shardConfig()
			sc, clock := newShardedRig(t, n, cfg)
			total := sc.Blocks()
			shadow := make(map[int64][]byte)
			r := sim.NewRand(42)
			buf := make([]byte, blockdev.BlockSize)

			for op := 0; op < 4000; op++ {
				lba := int64(r.Intn(int(total)))
				if r.Float64() < 0.6 {
					content := genContent(r, int(lba%7), 0.02)
					if _, err := sc.WriteBlock(lba, content); err != nil {
						t.Fatalf("write lba %d: %v", lba, err)
					}
					shadow[lba] = content
				} else if want, ok := shadow[lba]; ok {
					if _, err := sc.ReadBlock(lba, buf); err != nil {
						t.Fatalf("read lba %d: %v", lba, err)
					}
					if !bytes.Equal(buf, want) {
						t.Fatalf("read lba %d: content mismatch", lba)
					}
				}
				clock.Advance(20 * sim.Microsecond)
			}
			if err := sc.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			if err := sc.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			// Re-read everything after the flush.
			for lba, want := range shadow {
				if _, err := sc.ReadBlock(lba, buf); err != nil {
					t.Fatalf("post-flush read lba %d: %v", lba, err)
				}
				if !bytes.Equal(buf, want) {
					t.Fatalf("post-flush read lba %d: content mismatch", lba)
				}
			}
		})
	}
}

// TestShardedAggregation checks that the composed accessors are exact
// sums of the per-shard state.
func TestShardedAggregation(t *testing.T) {
	sc, clock := newShardedRig(t, 4, shardConfig())
	r := sim.NewRand(7)
	for op := 0; op < 1000; op++ {
		lba := int64(r.Intn(int(sc.Blocks())))
		content := genContent(r, int(lba%5), 0.02)
		if _, err := sc.WriteBlock(lba, content); err != nil {
			t.Fatalf("write: %v", err)
		}
		clock.Advance(20 * sim.Microsecond)
	}
	if err := sc.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	agg := sc.Stats()
	var wantWrites, wantTxns, wantBytes int64
	var wantKinds KindCounts
	var wantDelta int64
	for i := 0; i < sc.NumShards(); i++ {
		st := sc.Shard(i).Stats
		wantWrites += st.Writes
		wantTxns += st.TxnsCommitted
		wantBytes += st.GroupCommitBytes
		k := sc.Shard(i).KindCounts()
		wantKinds.Reference += k.Reference
		wantKinds.Associate += k.Associate
		wantKinds.Independent += k.Independent
		wantDelta += sc.Shard(i).DeltaRAMUsed()
	}
	if agg.Writes != wantWrites || agg.Writes != 1000 {
		t.Errorf("aggregate Writes = %d (per-shard sum %d), want 1000", agg.Writes, wantWrites)
	}
	if agg.TxnsCommitted != wantTxns {
		t.Errorf("aggregate TxnsCommitted = %d, want %d", agg.TxnsCommitted, wantTxns)
	}
	if wantTxns == 0 {
		t.Error("no journal transactions committed across shards; flush should commit")
	}
	if agg.GroupCommitBytes != wantBytes {
		t.Errorf("aggregate GroupCommitBytes = %d, want %d", agg.GroupCommitBytes, wantBytes)
	}
	if got := sc.KindCounts(); got != wantKinds {
		t.Errorf("aggregate KindCounts = %+v, want %+v", got, wantKinds)
	}
	if got := sc.DeltaRAMUsed(); got != wantDelta {
		t.Errorf("aggregate DeltaRAMUsed = %d, want %d", got, wantDelta)
	}

	sc.ResetStats()
	if st := sc.Stats(); st.Writes != 0 || st.TxnsCommitted != 0 {
		t.Errorf("ResetStats left counters: %+v", st)
	}
}

// TestStatsAccumulate exercises the reflective walker over scalar
// counters, durations, histogram arrays and the embedded device stats.
func TestStatsAccumulate(t *testing.T) {
	var a, b Stats
	a.Reads = 3
	a.ReadTime = 5 * sim.Millisecond
	a.WriteDelta = 7
	a.DeltaSizeHist = [6]int64{1, 2, 3, 4, 5, 6}
	a.CommitWriteTime = 11 * sim.Microsecond
	b.Reads = 10
	b.ReadTime = 1 * sim.Millisecond
	b.WriteDelta = 1
	b.DeltaSizeHist = [6]int64{6, 5, 4, 3, 2, 1}
	b.CommitWriteTime = 9 * sim.Microsecond

	a.Accumulate(&b)
	if a.Reads != 13 || a.ReadTime != 6*sim.Millisecond || a.WriteDelta != 8 {
		t.Errorf("scalar accumulate wrong: %+v", a)
	}
	for i := range a.DeltaSizeHist {
		if a.DeltaSizeHist[i] != 7 {
			t.Errorf("DeltaSizeHist[%d] = %d, want 7", i, a.DeltaSizeHist[i])
		}
	}
	if a.CommitWriteTime != 20*sim.Microsecond {
		t.Errorf("CommitWriteTime = %v, want 20µs", a.CommitWriteTime)
	}
	if b.Reads != 10 {
		t.Errorf("Accumulate mutated its source: %+v", b)
	}
}
