package core

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/ram"
	"icash/internal/sim"
)

// SSD slot management. A slot is one SSD block of immutable content that
// attached virtual blocks decode against. Slots are freed only when no
// block is attached, and freed slots sit in quarantine until the next
// log flush commits the records that detached their dependents — only
// then is reusing the slot crash-safe.

// allocSlot reserves a free SSD slot. Returns nil when none are free —
// callers decide whether reclaiming (installReference) or falling back
// to RAM (write-through) is appropriate; forced eviction churn on the
// write path would turn every incompressible write into HDD traffic.
func (c *Controller) allocSlot() *refSlot {
	if len(c.freeSlots) == 0 {
		return nil
	}
	idx := c.freeSlots[len(c.freeSlots)-1]
	c.freeSlots = c.freeSlots[:len(c.freeSlots)-1]
	s := &refSlot{index: idx, donor: -1, homeLBA: -1}
	c.slots[idx] = s
	c.slotOrder = append(c.slotOrder, s)
	return s
}

// liveSlots compacts and returns the deterministic slot list.
func (c *Controller) liveSlots() []*refSlot {
	out := c.slotOrder[:0]
	for _, s := range c.slotOrder {
		if s.refcnt > 0 && c.slots[s.index] == s {
			out = append(out, s)
		}
	}
	c.slotOrder = out
	return out
}

// attachSlot binds v to s, resurrecting s if it was quarantined in the
// meantime. A caller may hold s across a delta store or data install
// whose RAM-pressure cascade evicts the slot's last dependent: the
// refcount hits zero and the index is queued for reuse while the
// caller still intends to attach. Attaching again is sound — the flash
// content is untouched until the index is reallocated, which cannot
// happen inside the cascade — but the index must come back out of the
// quarantine or free list, or a later flush would hand it out while
// blocks are still attached.
func (c *Controller) attachSlot(v *vblock, s *refSlot) {
	if v.slotRef != nil {
		c.detachSlot(v)
	}
	if s.refcnt <= 0 && c.slots[s.index] != s {
		if prev, taken := c.slots[s.index]; taken {
			panic(fmt.Sprintf("core: slot %d resurrected after reallocation (now %p)", s.index, prev))
		}
		c.slots[s.index] = s
		c.slotOrder = append(c.slotOrder, s)
		c.quarantine = removeIndex(c.quarantine, s.index)
		c.freeSlots = removeIndex(c.freeSlots, s.index)
	}
	v.slotRef = s
	s.refcnt++
}

// removeIndex deletes the first occurrence of idx, preserving order.
func removeIndex(list []int64, idx int64) []int64 {
	for i, x := range list {
		if x == idx {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// detachSlot unbinds v from its slot, quarantining the slot when the
// last dependent leaves. Callers are responsible for queueing the log
// record (tombstone / pointer / new delta) that supersedes v's durable
// state before the next flush.
func (c *Controller) detachSlot(v *vblock) {
	dbg(v.lba, "detachSlot kind=%v ssdCur=%v", v.kind, v.ssdCurrent)
	s := v.slotRef
	v.slotRef = nil
	v.ssdCurrent = false
	if s == nil {
		return
	}
	s.refcnt--
	if s.refcnt <= 0 {
		delete(c.slots, s.index)
		c.quarantine = append(c.quarantine, s.index)
	}
}

// reclaimWriteThrough evicts the coldest write-through (independent,
// SSD-resident) block to its home location, freeing its slot for a new
// write-through. Reference slots are never touched here — breaking
// associations on the write path would be far more expensive than the
// RAM fallback.
func (c *Controller) reclaimWriteThrough() error {
	for v := c.lru.tail; v != nil; v = v.prev {
		if v == c.pinned || v.slotRef == nil || v.kind != Independent {
			continue
		}
		if err := c.evictToHome(v); err != nil {
			return err
		}
		if len(c.quarantine) > 0 && len(c.freeSlots) == 0 {
			return c.commitJournal()
		}
		return nil
	}
	return nil
}

// canReclaimSlot reports whether reclaimSlot would find a victim.
func (c *Controller) canReclaimSlot() bool {
	for v := c.lru.tail; v != nil; v = v.prev {
		if v == c.pinned || v.slotRef == nil {
			continue
		}
		if v.kind == Independent {
			return true
		}
		if v.kind == Reference && v.slotRef.refcnt == 1 {
			return true
		}
	}
	return false
}

// reclaimSlot tries to free one SSD slot by evicting, from the LRU tail,
// first a cold write-through independent and then a donor-only
// reference. Shared reference slots are never broken up here (the scan
// reorganizes those).
func (c *Controller) reclaimSlot() {
	var writeThrough, donorOnly *vblock
	for v := c.lru.tail; v != nil; v = v.prev {
		if v == c.pinned || v.slotRef == nil {
			continue
		}
		if v.kind == Independent && writeThrough == nil {
			writeThrough = v
		}
		if v.kind == Reference && v.slotRef.refcnt == 1 && donorOnly == nil {
			donorOnly = v
		}
		if writeThrough != nil {
			break
		}
	}
	victim := writeThrough
	if victim == nil {
		victim = donorOnly
	}
	if victim == nil {
		return
	}
	// Make the victim durable at home and drop its slot dependence.
	if err := c.evictToHome(victim); err != nil {
		return
	}
}

// promoteDonor reclassifies a write-through block as a Reference once
// other blocks attach to its slot: its content is now "being referred"
// (paper §4.3), so it must not be recycled as a plain write-through.
func (c *Controller) promoteDonor(s *refSlot) {
	if s.donor < 0 || s.refcnt < 2 {
		return
	}
	donor, ok := c.blocks[s.donor]
	if !ok || donor.slotRef != s {
		return
	}
	if donor.kind == Independent && donor.ssdCurrent {
		donor.kind = Reference
	}
}

// slotContent returns the immutable content of slot s and the
// synchronous latency of obtaining it. The donor's cached data doubles
// as the slot content while the donor is pristine; otherwise the SSD is
// read. When background is true the device time is charged to
// background stats and the returned latency is zero.
//
// This is also where fail-slow defenses live (paper §3.3's redundancy,
// exploited for latency instead of durability):
//
//   - a quarantined SSD is bypassed outright: the slot's CRC-verified
//     HDD home backup serves the read and the sick device sees no
//     traffic at all;
//   - a foreground SSD read whose device service time blows the hedge
//     deadline races a hedge read against the home backup, and the
//     request completes at min(ssd, deadline + hdd) — the slow read is
//     cancelled, not waited out.
func (c *Controller) slotContent(s *refSlot, background bool) ([]byte, sim.Duration, error) {
	if s.donor >= 0 {
		if donor, ok := c.blocks[s.donor]; ok && donor.slotRef == s && donor.ssdCurrent && donor.dataRAM != nil {
			if contentCRC(donor.dataRAM) == s.crc {
				return donor.dataRAM, ram.AccessLatency, nil
			}
			// The cached donor copy disagrees with the install-time slot
			// checksum: the RAM copy rotted. Fall through to the devices,
			// which hold verified redundant copies.
			c.noteCorruption("ram", s.index)
		}
	}
	if c.ssdQuarantined {
		// Every canaryInterval-th quarantined read falls through to the
		// SSD as a canary probe: the detector only re-admits a station
		// after a run of clean samples, and a fully bypassed device
		// would never produce any. The hedge below bounds the probe's
		// latency, so a still-sick device costs one deadline, not one
		// full slowdown.
		c.quarantineReads++
		if c.quarantineReads%canaryInterval != 0 {
			if alt, altD, ok := c.hedgeBackup(s); ok {
				c.Stats.QuarantineSkips++
				if background {
					c.Stats.BackgroundHDDTime += altD
					altD = 0
				}
				return alt, altD, nil
			}
		}
	}
	buf := c.getScratch()
	d, err := c.ssdRead(s.index, buf)
	detected := false
	if err == nil && contentCRC(buf) != s.crc {
		// The SSD reported success but returned wrong bytes (silent
		// corruption). Synthesize a corruption-classed error so the lie
		// routes through exactly the same repair path as a loud media
		// error — a lying read must never reach the host.
		c.noteCorruption("ssd", s.index)
		detected = true
		err = fmt.Errorf("%w: slot %d: %w", errSSDOp, s.index, blockdev.ErrCorruption)
	}
	if err != nil {
		if cl := blockdev.Classify(err); cl == blockdev.ClassMedia || cl == blockdev.ClassCorruption {
			// Damaged reference content — an uncorrectable bit error or a
			// checksum-caught silent flip: scrub the slot from a redundant
			// copy (donor RAM or the CRC-verified HDD home backup) and
			// heal the flash block in place.
			content, serr := c.scrubSlot(s)
			if detected {
				if serr == nil {
					c.Stats.CorruptionsRepaired++
				} else {
					c.Stats.UnrepairableBlocks++
				}
			}
			if serr != nil {
				return nil, 0, fmt.Errorf("core: slot %d read: %w", s.index, serr)
			}
			buf = content
		} else {
			return nil, 0, fmt.Errorf("core: slot %d read: %w", s.index, err)
		}
	}
	if background {
		c.Stats.BackgroundSSDTime += d
		return buf, 0, nil
	}
	// Hedged read: the deadline check keys on the last single attempt's
	// device time (not the retry-loop total), so only a genuinely slow
	// device — not a transient-retry detour — triggers the hedge.
	if dl := c.cfg.HedgeDeadline; dl > 0 && err == nil && c.lastAttemptDur > dl {
		c.Stats.DeadlineExceeded++
		if alt, altD, ok := c.hedgeBackup(s); ok {
			c.Stats.HedgedReads++
			if hedged := dl + altD; hedged < d {
				// The hedge won: the SSD read is cancelled at the deadline
				// and the backup's bytes serve the request.
				c.Stats.HedgeWins++
				c.Stats.HedgeSavedTime += d - hedged
				return alt, hedged, nil
			}
			// The SSD completed first after all; the hedge is discarded
			// and its wasted HDD time becomes background work.
			c.Stats.HedgeCancels++
			c.Stats.BackgroundHDDTime += altD
		}
	}
	return buf, d, nil
}

// writeThroughSSD handles an oversized delta (paper §5.3): the new
// content is written directly to an SSD slot, releasing delta-buffer
// space. The write is synchronous (it is the request's data path), so
// its latency is returned. Falls back to a dirty RAM block when no slot
// can be allocated.
func (c *Controller) writeThroughSSD(v *vblock, content []byte) (sim.Duration, error) {
	var s *refSlot
	if v.slotRef != nil && v.slotRef.refcnt == 1 {
		// Sole occupant: overwrite the same slot in place.
		s = v.slotRef
		if s.donor != v.lba && s.donor >= 0 {
			// Slot content belonged to another (departed) donor; it is
			// ours alone now.
			s.donor = v.lba
		}
	} else {
		if v.slotRef != nil {
			c.detachSlot(v)
		}
		s = c.allocSlot()
		if s == nil && len(c.quarantine) > 0 {
			// Freed slots are waiting on a flush to commit their
			// tombstones; commit now (cheap sequential log writes) and
			// retry.
			if err := c.commitJournal(); err != nil {
				return 0, err
			}
			s = c.allocSlot()
		}
		if s == nil {
			// Recycle the coldest previous write-through block; its
			// content moves to its home location in the background.
			if err := c.reclaimWriteThrough(); err != nil {
				return 0, err
			}
			s = c.allocSlot()
		}
	}
	if s == nil {
		// SSD fully pinned by shared references: keep the block dirty
		// in RAM instead; eviction will write it home. A tombstone
		// supersedes any durable delta/pointer record left behind.
		c.releaseDelta(v)
		v.kind = Independent
		v.hddHome = false
		if rec, ok := c.logIndex[v.lba]; ok && rec.kind != entryTombstone {
			c.queueControl(logEntry{kind: entryTombstone, lba: v.lba})
		}
		if err := c.cacheData(v, content, true); err != nil {
			return 0, err
		}
		c.Stats.WriteIndependent++
		c.Stats.WriteRAMFallback++
		return ram.AccessLatency, nil
	}
	d, err := c.ssdWrite(s.index, content)
	if err != nil {
		if blockdev.Classify(err) == blockdev.ClassDeviceLost {
			return 0, fmt.Errorf("core: write-through slot %d: %w", s.index, err)
		}
		// Program failure: unwind so the metadata never points at a slot
		// whose content didn't land, then keep the write in RAM (same
		// fallback as a fully pinned SSD). A media-class failure retires
		// the flash block; anything else quarantines it for reuse.
		retire := blockdev.Classify(err) == blockdev.ClassMedia
		if v.slotRef == s {
			c.detachSlot(v) // quarantines s: refcnt hits zero
			if retire {
				c.retireQuarantined(s.index)
			}
		} else {
			c.discardSlot(s, retire)
		}
		c.releaseDelta(v)
		v.kind = Independent
		v.hddHome = false
		if rec, ok := c.logIndex[v.lba]; !ok || rec.kind != entryTombstone {
			c.queueControl(logEntry{kind: entryTombstone, lba: v.lba})
		}
		if err := c.cacheData(v, content, true); err != nil {
			return 0, err
		}
		c.Stats.WriteIndependent++
		c.Stats.WriteRAMFallback++
		return ram.AccessLatency, nil
	}
	if v.slotRef != s {
		c.attachSlot(v, s)
	}
	s.donor = v.lba
	s.sigv = v.sigv
	s.crc = contentCRC(content)
	s.homeLBA = -1 // write-throughs have no home backup (home is stale)
	c.releaseDelta(v)
	v.kind = Independent
	v.ssdCurrent = true
	v.hddHome = false
	if err := c.cacheData(v, content, false); err != nil {
		return 0, err
	}
	dbg(v.lba, "writeThroughSSD pointer slot=%d", s.index)
	c.queueControl(logEntry{kind: entryPointer, flags: flagDonor, lba: v.lba, slot: s.index})
	c.Stats.WriteThroughSSD++
	return d, nil
}

// installReference writes content into a fresh SSD slot and makes v its
// donor ("reference block"). Called by the similarity scan; the SSD
// write is background reorganization work, not request latency.
// References never take the last ReserveSlots slots — those stay
// available for threshold write-throughs.
func (c *Controller) installReference(v *vblock, content []byte) (*refSlot, error) {
	if len(c.freeSlots) <= c.cfg.ReserveSlots {
		c.reclaimSlot()
	}
	if len(c.freeSlots) <= c.cfg.ReserveSlots {
		return nil, nil
	}
	s := c.allocSlot()
	if s == nil {
		return nil, nil
	}
	d, err := c.ssdWrite(s.index, content)
	if err != nil {
		// Unwind the unattached slot so invariants hold; the candidate
		// simply stays unpromoted. A dead SSD aborts the whole scan.
		c.discardSlot(s, blockdev.Classify(err) == blockdev.ClassMedia)
		if blockdev.Classify(err) == blockdev.ClassDeviceLost {
			return nil, fmt.Errorf("core: install reference slot %d: %w", s.index, err)
		}
		return nil, nil
	}
	c.Stats.BackgroundSSDTime += d
	// Back up the reference content at the donor's home location: slot
	// scrubbing re-fetches it from there if the flash copy degrades. The
	// CRC detects a backup later overwritten by an eviction.
	s.crc = contentCRC(content)
	if err := c.writeHome(v, content); err == nil {
		s.homeLBA = v.lba
	}
	if v.slotRef != nil {
		c.detachSlot(v)
	}
	c.attachSlot(v, s)
	s.donor = v.lba
	s.sigv = v.sigv
	v.kind = Reference
	v.ssdCurrent = true
	v.dataDirty = false // the SSD slot is now a durable current copy
	c.releaseDelta(v)
	v.deltaDirty = false
	dbg(v.lba, "installReference pointer slot=%d", s.index)
	c.queueControl(logEntry{kind: entryPointer, flags: flagDonor | flagReference, lba: v.lba, slot: s.index})
	c.Stats.RefsSelected++
	return s, nil
}

// FreeSlotCount reports currently allocatable SSD slots (excluding
// quarantined ones awaiting a flush).
func (c *Controller) FreeSlotCount() int { return len(c.freeSlots) }

// LiveSlotCount reports SSD slots holding live reference or
// write-through content.
func (c *Controller) LiveSlotCount() int { return len(c.slots) }
