package core

import (
	"reflect"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Stats aggregates controller activity for the experiment harness and
// the inspection tool.
type Stats struct {
	// Host-visible request accounting (latency per request).
	blockdev.Stats

	// Path counters.
	ReadRAMHits   int64 // reads served entirely from controller RAM
	ReadSSDHits   int64 // reads needing an SSD reference read
	ReadLogLoads  int64 // reads that loaded a packed delta block from the log
	ReadHDDMisses int64 // reads that went to the HDD home location
	DecodeOps     int64 // delta decodes (read path)
	EncodeOps     int64 // delta encodes (write path)

	// Write-path outcomes.
	WriteDelta       int64 // writes stored as deltas
	WriteThroughSSD  int64 // oversized deltas written directly to SSD (§5.3)
	WriteIndependent int64 // writes to independent blocks (RAM + home)
	WriteRAMFallback int64 // write-throughs that found no SSD slot

	// Delta bookkeeping.
	DeltaBytesStored int64 // sum of encoded delta sizes accepted
	DeltaCount       int64 // number of deltas accepted
	// DeltaSizeHist counts accepted deltas by size bucket: <=64, <=128,
	// <=256, <=512, <=1024, <=2048 bytes — the paper's content-locality
	// claim made visible (most deltas are tiny).
	DeltaSizeHist    [6]int64
	FlushRuns        int64 // delta-pack flushes
	LogBlocksWritten int64 // packed delta blocks appended to the log
	DeltasPacked     int64 // deltas packed into the log
	LogCleanerRuns   int64 // transactions compacted (live records rescued)
	DeltasRescued    int64 // live deltas re-packed by the compactor

	// Group-commit journal accounting (see log.go §12 in DESIGN.md).
	TxnsCommitted    int64        // journal transactions made durable
	GroupCommitBytes int64        // payload bytes across all committed txns
	CommitWriteTime  sim.Duration // device time spent on commit-record writes
	// GroupCommitBatchHist counts committed transactions by payload
	// size bucket: <=4KiB (one part), <=16KiB, <=64KiB, <=256KiB,
	// <=1MiB, larger — how much batching group commit actually gets.
	GroupCommitBatchHist [6]int64
	// TxnsDiscardedOnReplay counts transactions recovery threw away in
	// full for lacking a complete, CRC-valid set of commit parts.
	TxnsDiscardedOnReplay int64

	// Scanning and reference management.
	Scans            int64
	RefsSelected     int64
	RefsDemoted      int64
	AssocFormed      int64
	AssocBroken      int64
	FirstLoadPairs   int64 // similarity found at first load via VM addressing
	ScanCandidates   int64 // blocks examined by scans
	ScanDeltaRejects int64 // candidate pairs rejected by the size threshold

	// Evictions.
	EvictVBlocks   int64
	EvictDataRAM   int64
	EvictDeltaRAM  int64
	WritebacksHome int64 // reconstructed blocks written back to HDD home

	// BackgroundHDDTime is HDD time spent on flush/cleaning, performed
	// off the request path.
	BackgroundHDDTime sim.Duration
	// BackgroundSSDTime is SSD time spent installing references.
	BackgroundSSDTime sim.Duration

	// Fault handling and self-healing (see resilience.go).
	TransientRetries int64 // transient device errors absorbed by retry
	RetryBackoffTime sim.Duration
	SSDReadFaults    int64 // SSD reads that failed after retries
	SSDWriteFaults   int64 // SSD writes that failed after retries
	HDDReadFaults    int64 // HDD reads that failed after retries
	HDDWriteFaults   int64 // HDD writes that failed after retries
	SlotScrubs       int64 // damaged reference slots scrub attempts
	SlotScrubRepairs int64 // slots rebuilt from a redundant copy
	ScrubDataLoss    int64 // blocks orphaned by an unrepairable slot
	SlotsRetired     int64 // SSD slots retired after program failures
	BadLogBlocks     int64 // HDD log blocks retired after write failures
	TornLogBlocks    int64 // corrupt/torn log blocks skipped by recovery
	DroppedLogRecs   int64 // log records dropped over unreadable slots
	DegradeEvents    int64 // transitions into HDD-only degraded mode
	DegradedDataLoss int64 // blocks whose newest content died with the SSD
	DegradedOps      int64 // requests served in HDD-only degraded mode

	// Fail-slow handling: per-read deadlines, hedged reads against the
	// HDD home backup, and detector-driven SSD quarantine (see
	// resilience.go and slots.go).
	DeadlineExceeded int64        // foreground slot reads over the hedge deadline
	HedgedReads      int64        // hedge reads issued to the HDD home backup
	HedgeWins        int64        // hedges that beat the slow SSD read
	HedgeCancels     int64        // hedges the SSD still beat (hedge discarded)
	HedgeSavedTime   sim.Duration // request latency removed by winning hedges
	DeadlineGiveUps  int64        // retry loops abandoned at the op deadline
	QuarantineEvents int64        // transitions into SSD quarantine
	ReadmitEvents    int64        // quarantine lifts (device re-admitted)
	QuarantinedOps   int64        // requests served while the SSD was quarantined
	QuarantineSkips  int64        // SSD reads bypassed outright during quarantine

	// End-to-end integrity: content checksums, scrubbing, verified
	// repair (see integrity.go and scrub.go, DESIGN.md §14).
	CorruptionsDetected int64 // checksum mismatches caught before reaching the host
	CorruptionsRepaired int64 // detected corruptions healed from a verifying copy
	UnrepairableBlocks  int64 // detected corruptions with no verifying copy (poisoned/dropped)
	ScrubPasses         int64 // completed full sweeps of slots + tracked home blocks
	ScrubSlotChecks     int64 // SSD reference slots verified by the scrubber
	ScrubHomeChecks     int64 // HDD home blocks verified by the scrubber
}

// Accumulate adds every counter of o into s, field by field. The walk
// is reflective so a counter added to Stats (or to an embedded struct
// or histogram array) is aggregated without touching any call site —
// the sharded controller and the element array both sum per-instance
// stats through here. Only integer counters (int64, sim.Duration),
// arrays of them, and nested structs of the same are legal; any other
// field kind panics, which the aggregation tests turn into a compile-
// time-like guard for new fields.
func (s *Stats) Accumulate(o *Stats) {
	accumulate(reflect.ValueOf(s).Elem(), reflect.ValueOf(o).Elem())
}

func accumulate(dst, src reflect.Value) {
	switch dst.Kind() {
	case reflect.Int64:
		dst.SetInt(dst.Int() + src.Int())
	case reflect.Array:
		for i := 0; i < dst.Len(); i++ {
			accumulate(dst.Index(i), src.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			accumulate(dst.Field(i), src.Field(i))
		}
	default:
		panic("core: Stats.Accumulate: unsupported field kind " + dst.Kind().String())
	}
}

// KindCounts is a snapshot of the virtual-block population by kind,
// matching the paper's "1% reference / 85% associate / 14% independent"
// observation for SysBench (§5.1).
type KindCounts struct {
	Reference   int
	Associate   int
	Independent int
}

// Total returns the tracked block count.
func (k KindCounts) Total() int { return k.Reference + k.Associate + k.Independent }

// Fractions returns the population fractions (0 when empty).
func (k KindCounts) Fractions() (ref, assoc, indep float64) {
	t := k.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(k.Reference) / float64(t), float64(k.Associate) / float64(t), float64(k.Independent) / float64(t)
}

// NoteCommitWrite charges the device time of one successful
// commit-record write: commit writes happen off the request path, so
// the time lands in the background account as well as the journal's
// own meter. icash-vet's latcharge analyzer requires journalWrite to
// call this before any successful return.
func (s *Stats) NoteCommitWrite(d sim.Duration) {
	s.BackgroundHDDTime += d
	s.CommitWriteTime += d
}

// NoteCommit records one durable journal transaction of n payload
// bytes (packed record bytes across all its parts).
func (s *Stats) NoteCommit(n int) {
	s.TxnsCommitted++
	s.GroupCommitBytes += int64(n)
	bucket := 0
	for limit := 4 << 10; bucket < len(s.GroupCommitBatchHist)-1 && n > limit; bucket++ {
		limit <<= 2
	}
	s.GroupCommitBatchHist[bucket]++
}

// NoteDelta records an accepted delta of n bytes.
func (s *Stats) NoteDelta(n int) {
	s.DeltaCount++
	s.DeltaBytesStored += int64(n)
	bucket := 0
	for limit := 64; bucket < len(s.DeltaSizeHist)-1 && n > limit; bucket++ {
		limit <<= 1
	}
	s.DeltaSizeHist[bucket]++
}

// AvgDeltaSize returns the mean accepted delta size in bytes.
func (s *Stats) AvgDeltaSize() float64 {
	if s.DeltaCount == 0 {
		return 0
	}
	return float64(s.DeltaBytesStored) / float64(s.DeltaCount)
}
