package core

import (
	"fmt"

	"icash/internal/sig"
)

// Kind classifies a virtual block (paper §4.3).
type Kind uint8

const (
	// Independent blocks have no reference association; their current
	// content lives in RAM and/or at their HDD home (or an SSD slot
	// after a threshold write-through).
	Independent Kind = iota
	// Reference blocks hold popular content in an SSD slot; associates
	// are delta-encoded against them.
	Reference
	// Associate blocks are represented as reference + delta.
	Associate
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	switch k {
	case Independent:
		return "independent"
	case Reference:
		return "reference"
	case Associate:
		return "associate"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// vblock is the per-LBA metadata record ("virtual block", paper §4.3):
// the LBA, the content signature, the reference association, and
// pointers to cached data and delta bytes. The newest durable log record
// for the LBA, if any, is tracked centrally in Controller.logIndex.
type vblock struct {
	lba  int64
	kind Kind
	sigv sig.Signature

	// slotRef is the SSD reference slot this block is attached to (nil
	// for plain independents). Attached blocks are decodable as slot
	// content plus delta. The block flagged as the slot's donor is the
	// "reference block"; other attached blocks are associates.
	// Independent blocks may also hold a slotRef after a threshold
	// write-through (§5.3): the slot then carries the block's current
	// content directly (ssdCurrent == true).
	slotRef *refSlot

	// dataRAM caches the full current content (nil when evicted).
	dataRAM []byte
	// dataDirty marks dataRAM newer than every durable copy.
	dataDirty bool
	// hddHome is true when the block's HDD home location holds its
	// current content.
	hddHome bool
	// ssdCurrent is true when the attached SSD slot holds the block's
	// *current* content (write-through blocks; for a donor it means no
	// self-delta has accumulated).
	ssdCurrent bool

	// deltaRAM holds the current delta against the slot content.
	deltaRAM []byte
	// deltaDirty marks deltaRAM as not yet packed into the log.
	deltaDirty bool
	// deltaCRC is the CRC32-C of deltaRAM, set when the delta is
	// stored; materialize verifies it before decoding so a corrupt
	// cache entry is never baked into served content.
	deltaCRC uint32

	// LRU linkage (intrusive doubly-linked list).
	prev, next *vblock
	// inDirty marks membership in the dirty-delta flush queue.
	inDirty bool
	// dead marks a block evicted from the controller; holders of stale
	// pointers (the scan window snapshot) must skip it.
	dead bool
}

// lruList is an intrusive LRU list of vblocks. head is most recently
// used, tail least.
type lruList struct {
	head, tail *vblock
	n          int
}

// pushFront inserts v at the head (most recently used).
func (l *lruList) pushFront(v *vblock) {
	v.prev = nil
	v.next = l.head
	if l.head != nil {
		l.head.prev = v
	}
	l.head = v
	if l.tail == nil {
		l.tail = v
	}
	l.n++
}

// remove unlinks v.
func (l *lruList) remove(v *vblock) {
	if v.prev != nil {
		v.prev.next = v.next
	} else {
		l.head = v.next
	}
	if v.next != nil {
		v.next.prev = v.prev
	} else {
		l.tail = v.prev
	}
	v.prev, v.next = nil, nil
	l.n--
}

// moveToFront marks v most recently used.
func (l *lruList) moveToFront(v *vblock) {
	if l.head == v {
		return
	}
	l.remove(v)
	l.pushFront(v)
}

// len returns the list length.
func (l *lruList) len() int { return l.n }
