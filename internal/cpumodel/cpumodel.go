// Package cpumodel accounts simulated CPU time. The paper's Figures 6(b),
// 8(b) and 10(b) report host CPU utilization for each storage system;
// I-CASH trades CPU cycles (delta compression, decompression, signature
// computation, similarity scanning) for mechanical I/O, and the claim is
// that the added utilization stays within a few percent.
//
// The model splits CPU busy time into application work (charged by the
// workload generator per request) and storage-stack work (charged by the
// storage system under test). Utilization is busy time over elapsed
// simulated time.
package cpumodel

import "icash/internal/sim"

// Costs is the compute-cost table used by the I-CASH controller and the
// baselines. The constants follow the paper's measurements: ~10 µs to
// decompress (combine delta with reference) and a compression step that
// is the most expensive part of a write (§5.1).
type Costs struct {
	// DeltaEncode is the cost to delta-compress one 4 KB block against
	// a reference.
	DeltaEncode sim.Duration
	// DeltaDecode is the cost to reconstruct a block from reference +
	// delta (the paper's 10 µs decompression).
	DeltaDecode sim.Duration
	// Signature is the cost to compute the 8 sub-signatures of a block.
	Signature sim.Duration
	// ScanPerBlock is the per-block cost of the periodic similarity
	// scan (popularity lookup plus candidate comparison amortized).
	ScanPerBlock sim.Duration
	// HashBlock is the cost to content-hash a block (dedup baseline).
	HashBlock sim.Duration
	// PerRequest is fixed request-handling overhead common to every
	// storage system (queueing, context switch).
	PerRequest sim.Duration
}

// DefaultCosts returns the cost table calibrated to the paper's numbers
// on a 1.8 GHz Xeon.
func DefaultCosts() Costs {
	return Costs{
		DeltaEncode:  25 * sim.Microsecond,
		DeltaDecode:  10 * sim.Microsecond,
		Signature:    2 * sim.Microsecond,
		ScanPerBlock: 3 * sim.Microsecond,
		HashBlock:    15 * sim.Microsecond,
		PerRequest:   5 * sim.Microsecond,
	}
}

// Accountant accumulates busy time against a shared simulated clock.
type Accountant struct {
	clock *sim.Clock
	start sim.Time

	// AppTime is CPU time charged by the application/workload model.
	AppTime sim.Duration
	// StorageTime is CPU time charged by the storage system (delta
	// coding, hashing, scanning, request overhead).
	StorageTime sim.Duration
}

// NewAccountant returns an accountant over clock, with the utilization
// window starting now.
func NewAccountant(clock *sim.Clock) *Accountant {
	return &Accountant{clock: clock, start: clock.Now()}
}

// ChargeApp adds application CPU time.
func (a *Accountant) ChargeApp(d sim.Duration) { a.AppTime += d }

// ChargeStorage adds storage-stack CPU time.
func (a *Accountant) ChargeStorage(d sim.Duration) { a.StorageTime += d }

// Busy returns total CPU busy time.
func (a *Accountant) Busy() sim.Duration { return a.AppTime + a.StorageTime }

// Elapsed returns the simulated time covered so far.
func (a *Accountant) Elapsed() sim.Duration { return a.clock.Now().Sub(a.start) }

// Utilization returns busy/elapsed in [0,1]; 0 before any time passes.
// A multi-core host is modeled by the caller dividing by core count.
func (a *Accountant) Utilization() float64 {
	e := a.Elapsed()
	if e <= 0 {
		return 0
	}
	u := float64(a.Busy()) / float64(e)
	if u > 1 {
		u = 1
	}
	return u
}

// Reset zeroes accumulated busy time and restarts the utilization
// window at the clock's current instant.
func (a *Accountant) Reset() {
	a.start = a.clock.Now()
	a.AppTime = 0
	a.StorageTime = 0
}
