package cpumodel

import (
	"testing"

	"icash/internal/sim"
)

func TestAccountant(t *testing.T) {
	clock := sim.NewClock()
	a := NewAccountant(clock)
	if a.Utilization() != 0 {
		t.Fatal("utilization before any time passes")
	}
	a.ChargeApp(30 * sim.Millisecond)
	a.ChargeStorage(10 * sim.Millisecond)
	clock.Advance(100 * sim.Millisecond)
	if a.Busy() != 40*sim.Millisecond {
		t.Fatalf("busy = %v", a.Busy())
	}
	if got := a.Utilization(); got != 0.4 {
		t.Fatalf("utilization = %f, want 0.4", got)
	}
	if a.Elapsed() != 100*sim.Millisecond {
		t.Fatalf("elapsed = %v", a.Elapsed())
	}
}

func TestUtilizationClamped(t *testing.T) {
	clock := sim.NewClock()
	a := NewAccountant(clock)
	a.ChargeApp(10 * sim.Second)
	clock.Advance(1 * sim.Second)
	if a.Utilization() != 1 {
		t.Fatalf("utilization = %f, want clamp at 1", a.Utilization())
	}
}

func TestReset(t *testing.T) {
	clock := sim.NewClock()
	a := NewAccountant(clock)
	a.ChargeApp(5 * sim.Millisecond)
	clock.Advance(20 * sim.Millisecond)
	a.Reset()
	if a.Busy() != 0 || a.Elapsed() != 0 {
		t.Fatal("reset did not clear state")
	}
	a.ChargeStorage(1 * sim.Millisecond)
	clock.Advance(10 * sim.Millisecond)
	if got := a.Utilization(); got != 0.1 {
		t.Fatalf("post-reset utilization = %f", got)
	}
}

func TestDefaultCostsSane(t *testing.T) {
	c := DefaultCosts()
	// The paper: decompression ~10 µs; compression is the most
	// expensive write-path step; signatures are far cheaper than hashes.
	if c.DeltaDecode != 10*sim.Microsecond {
		t.Errorf("DeltaDecode = %v, paper says ~10µs", c.DeltaDecode)
	}
	if c.DeltaEncode <= c.DeltaDecode {
		t.Error("encode should cost more than decode")
	}
	if c.Signature >= c.HashBlock {
		t.Error("sampled sub-signatures must be cheaper than full hashing (§4.2)")
	}
}
