package delta

import (
	"testing"

	"icash/internal/race"
)

// Alloc gates: the append-style APIs must be zero-allocation at steady
// state (caller-supplied buffers with sufficient capacity), and Size
// must allocate nothing ever. Run by the CI alloc-gate step; skipped
// under the race detector, whose instrumentation adds allocations.

func skipIfRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
}

func TestAllocGateAppendEncode(t *testing.T) {
	skipIfRace(t)
	target, ref := randomPair(21, 4096, 64)
	dst := make([]byte, 0, 8192)
	if got := testing.AllocsPerRun(100, func() {
		var ok bool
		dst, ok = AppendEncode(dst[:0], target, ref, 0)
		if !ok {
			t.Fatal("AppendEncode failed")
		}
	}); got != 0 {
		t.Fatalf("AppendEncode allocated %v objects/op, want 0", got)
	}
}

func TestAllocGateAppendDecode(t *testing.T) {
	skipIfRace(t)
	target, ref := randomPair(22, 4096, 64)
	d, ok := Encode(target, ref, 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	dst := make([]byte, 0, 8192)
	if got := testing.AllocsPerRun(100, func() {
		var err error
		dst, err = AppendDecode(dst[:0], ref, d)
		if err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("AppendDecode allocated %v objects/op, want 0", got)
	}
}

func TestAllocGateSize(t *testing.T) {
	skipIfRace(t)
	target, ref := randomPair(23, 4096, 64)
	if got := testing.AllocsPerRun(100, func() {
		if Size(target, ref) <= 0 {
			t.Fatal("Size returned nonsense")
		}
	}); got != 0 {
		t.Fatalf("Size allocated %v objects/op, want 0", got)
	}
}

func BenchmarkAppendEncode(b *testing.B) {
	target, ref := randomPair(24, 4096, 64)
	dst := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		dst, _ = AppendEncode(dst[:0], target, ref, 0)
	}
	_ = dst
}

func BenchmarkAppendDecode(b *testing.B) {
	target, ref := randomPair(25, 4096, 64)
	d, _ := Encode(target, ref, 0)
	dst := make([]byte, 0, 8192)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		dst, _ = AppendDecode(dst[:0], ref, d)
	}
	_ = dst
}

func BenchmarkSize(b *testing.B) {
	target, ref := randomPair(26, 4096, 64)
	b.ReportAllocs()
	b.SetBytes(4096)
	var s int
	for i := 0; i < b.N; i++ {
		s = Size(target, ref)
	}
	_ = s
}
