package delta

import (
	"bytes"
	"testing"
	"testing/quick"

	"icash/internal/sim"
)

// randomPair builds a reference block and a target mutated from it —
// the workload shape the encoder is designed for.
func randomPair(seed uint64, n, nMut int) (target, ref []byte) {
	ref = make([]byte, n)
	sim.NewRand(seed).Bytes(ref)
	target = append([]byte(nil), ref...)
	r := sim.NewRand(seed + 1)
	for i := 0; i < nMut && n > 0; i++ {
		target[r.Intn(n)] = byte(r.Uint64())
	}
	return target, ref
}

// Property: Size is a genuine counting twin of Encode — byte-for-byte
// agreement with len(Encode(t, r, 0)) across random pairs, including
// mismatched lengths.
func TestSizeMatchesEncodeProperty(t *testing.T) {
	f := func(seed uint64, length uint16, nMut uint8, refCut uint8) bool {
		n := int(length)%5000 + 1
		target, ref := randomPair(seed, n, int(nMut))
		// Exercise ref shorter and longer than target.
		ref = ref[:n-int(refCut)%n]
		d, ok := Encode(target, ref, 0)
		if !ok {
			return false
		}
		return Size(target, ref) == len(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Degenerate shapes the quick generator may miss.
	for _, tc := range [][2][]byte{
		{nil, nil},
		{nil, []byte("ref")},
		{[]byte("target"), nil},
		{bytes.Repeat([]byte{7}, 4096), bytes.Repeat([]byte{7}, 4096)},
	} {
		d, _ := Encode(tc[0], tc[1], 0)
		if got := Size(tc[0], tc[1]); got != len(d) {
			t.Fatalf("Size(%d,%d bytes) = %d, Encode produced %d",
				len(tc[0]), len(tc[1]), got, len(d))
		}
	}
}

// AppendEncode into a prefixed buffer must produce exactly Encode's
// bytes after the prefix, and a maxSize rejection must hand the buffer
// back at its original length.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	target, ref := randomPair(11, 4096, 64)
	want, ok := Encode(target, ref, 0)
	if !ok {
		t.Fatal("Encode failed")
	}

	prefix := []byte("prefix")
	dst := append([]byte(nil), prefix...)
	got, ok := AppendEncode(dst, target, ref, 0)
	if !ok {
		t.Fatal("AppendEncode failed")
	}
	if !bytes.Equal(got[:len(prefix)], prefix) {
		t.Fatal("AppendEncode clobbered dst prefix")
	}
	if !bytes.Equal(got[len(prefix):], want) {
		t.Fatal("AppendEncode bytes differ from Encode")
	}

	// Rejection: the bound applies to the appended delta only, and dst
	// comes back at its original length.
	if rej, ok := AppendEncode(append([]byte(nil), prefix...), target, ref, len(want)-1); ok {
		t.Fatal("AppendEncode must reject when the delta exceeds maxSize")
	} else if len(rej) != len(prefix) {
		t.Fatalf("rejected AppendEncode returned len %d, want original %d", len(rej), len(prefix))
	}
	if acc, ok := AppendEncode(append([]byte(nil), prefix...), target, ref, len(want)); !ok {
		t.Fatal("AppendEncode must accept at exactly maxSize")
	} else if !bytes.Equal(acc[len(prefix):], want) {
		t.Fatal("AppendEncode at exact bound differs from Encode")
	}
}

// AppendDecode into a prefixed buffer must append exactly the target,
// and errors must hand the buffer back at its original length.
func TestAppendDecodeMatchesDecode(t *testing.T) {
	target, ref := randomPair(12, 4096, 64)
	d, ok := Encode(target, ref, 0)
	if !ok {
		t.Fatal("Encode failed")
	}

	prefix := []byte("prefix")
	got, err := AppendDecode(append([]byte(nil), prefix...), ref, d)
	if err != nil {
		t.Fatalf("AppendDecode: %v", err)
	}
	if !bytes.Equal(got[:len(prefix)], prefix) {
		t.Fatal("AppendDecode clobbered dst prefix")
	}
	if !bytes.Equal(got[len(prefix):], target) {
		t.Fatal("AppendDecode bytes differ from target")
	}

	bad, err := AppendDecode(append([]byte(nil), prefix...), ref, d[:len(d)/2])
	if err == nil {
		t.Fatal("truncated delta must error")
	}
	if len(bad) != len(prefix) {
		t.Fatalf("failed AppendDecode returned len %d, want original %d", len(bad), len(prefix))
	}
}

// A corrupt delta advertising an enormous target length must fail
// without allocating anything like the advertised size: the prealloc
// is clamped and growth only follows validated ops.
func TestDecodeHugeLengthClamped(t *testing.T) {
	// Header + uvarint(2^62) and no ops at all.
	hostile := []byte{magic, version,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40}
	allocated := testing.AllocsPerRun(10, func() {
		if _, err := Decode(nil, hostile); err == nil {
			t.Error("hostile huge-length delta must not decode")
		}
	})
	// The exact count covers the clamped output buffer plus the error
	// chain — the point is it is O(1), not O(advertised length).
	if allocated > 8 {
		t.Fatalf("hostile decode allocated %v objects per run; prealloc clamp lost", allocated)
	}
}
