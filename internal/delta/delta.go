// Package delta implements the high-speed delta compression I-CASH uses
// to represent an active block as a small patch against a reference
// block (paper §3, §4.3).
//
// Block storage gives us positional alignment for free: an associate
// block and its reference describe the same logical content, differing
// in scattered modified byte ranges (the paper cites measurements that
// only 5–20% of the bits in a block change on a typical write). The
// encoder therefore performs a single linear pass emitting alternating
// COPY (take bytes from the reference at the same offset) and ADD
// (literal bytes from the target) operations — no searching, no hashing,
// tens of microseconds of simulated CPU per 4 KB block.
//
// Wire format (all integers are unsigned varints):
//
//	magic 0xD5, version 1, targetLen
//	repeat until targetLen bytes produced:
//	    copyLen          — bytes taken from reference at current offset
//	    addLen, addLen literal bytes — bytes taken from the delta itself
//
// A delta for identical blocks is just the header plus one COPY, a few
// bytes; a delta for unrelated blocks degenerates to header + one ADD of
// the whole block, which callers reject via the maxSize bound.
//
// The allocating entry points (Encode, Decode) are thin wrappers over
// append-style workers (AppendEncode, AppendDecode) so hot paths can
// reuse caller-owned buffers and run allocation-free; Size is a true
// counting pass sharing the encoder's segmentation, never materializing
// the delta.
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	magic   = 0xD5
	version = 1
	// headerSize is magic + version; the varint target length follows.
	headerSize = 2

	// minGap is the shortest run of equal bytes worth switching from ADD
	// back to COPY. A COPY/ADD boundary costs ~2 varint bytes, so gaps
	// shorter than this are cheaper left inside the literal.
	minGap = 4

	// maxDecodePrealloc caps how much Decode pre-allocates on the
	// strength of the delta's own (untrusted) target-length varint:
	// 4× the 4 KB block size this repo traffics in. Larger targets
	// still decode — the output simply grows as ops are validated —
	// but a corrupt length can no longer demand gigabytes up front.
	maxDecodePrealloc = 4 * 4096
)

// Errors returned by Decode.
var (
	ErrCorrupt  = errors.New("delta: corrupt delta stream")
	ErrShortRef = errors.New("delta: reference shorter than delta requires")
)

// nextOps measures the next COPY/ADD pair of the canonical segmentation
// starting at offset i. It is the single source of truth shared by
// AppendEncode and Size: both walk exactly this sequence of ops, so the
// counted size and the materialized bytes cannot diverge.
//
// n is len(target); limit is min(len(ref), n).
func nextOps(target, ref []byte, i, n, limit int) (copyLen, addLen, next int) {
	// Measure the COPY run: equal bytes at the same offset.
	start := i
	for i < limit && target[i] == ref[i] {
		i++
	}
	copyLen = i - start
	// Measure the ADD run: unequal bytes, absorbing short equal gaps.
	addStart := i
	for i < n {
		if i >= limit {
			i = n
			break
		}
		if target[i] != ref[i] {
			i++
			continue
		}
		// Equal byte: only end the ADD if the equal run is long
		// enough to pay for an op boundary.
		g := i
		for g < limit && g-i < minGap && target[g] == ref[g] {
			g++
		}
		if g-i >= minGap || g == n {
			break
		}
		i = g + 1 // absorb the short gap into the literal
	}
	return copyLen, i - addStart, i
}

// AppendEncode appends the delta that rebuilds target from ref to dst
// and returns the extended slice. If the encoded delta (excluding dst's
// prior contents) would exceed maxSize, encoding aborts and ok is false
// with dst returned at its original length — the caller should then
// store the block verbatim instead (the paper uses a 2048-byte
// threshold, §5.3). maxSize <= 0 means unbounded.
//
// target and ref may have different lengths; bytes beyond len(ref) are
// always literals. With sufficient capacity in dst, AppendEncode
// performs no allocations.
func AppendEncode(dst, target, ref []byte, maxSize int) (d []byte, ok bool) {
	base := len(dst)
	out := append(dst, magic, version)
	out = binary.AppendUvarint(out, uint64(len(target)))

	n := len(target)
	limit := len(ref)
	if limit > n {
		limit = n
	}
	i := 0
	for i < n {
		copyLen, addLen, next := nextOps(target, ref, i, n, limit)
		addStart := next - addLen
		i = next
		out = binary.AppendUvarint(out, uint64(copyLen))
		out = binary.AppendUvarint(out, uint64(addLen))
		out = append(out, target[addStart:addStart+addLen]...)
		if maxSize > 0 && len(out)-base > maxSize {
			return dst[:base], false
		}
	}
	if maxSize > 0 && len(out)-base > maxSize {
		return dst[:base], false
	}
	return out, true
}

// Encode produces the delta that rebuilds target from ref. If the
// encoded size would exceed maxSize, encoding aborts and ok is false —
// the caller should then store the block verbatim instead. It is a
// thin allocating wrapper around AppendEncode.
func Encode(target, ref []byte, maxSize int) (d []byte, ok bool) {
	bound := maxSize
	if bound <= 0 {
		bound = len(target) + len(target)/2 + 16
	}
	out, ok := AppendEncode(make([]byte, 0, min(bound, len(target)/4+16)), target, ref, maxSize)
	if !ok {
		return nil, false
	}
	return out, true
}

// AppendDecode appends the target block rebuilt from ref and a delta
// produced by Encode to dst and returns the extended slice. On error
// dst is returned at its original length. With sufficient capacity in
// dst, AppendDecode performs no allocations.
func AppendDecode(dst, ref, d []byte) ([]byte, error) {
	base := len(dst)
	if len(d) < headerSize || d[0] != magic || d[1] != version {
		return dst[:base], fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	p := d[headerSize:]
	targetLen, k := binary.Uvarint(p)
	if k <= 0 {
		return dst[:base], fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	p = p[k:]
	out := dst
	for uint64(len(out)-base) < targetLen {
		copyLen, k := binary.Uvarint(p)
		if k <= 0 {
			return dst[:base], fmt.Errorf("%w: bad copy length", ErrCorrupt)
		}
		p = p[k:]
		addLen, k := binary.Uvarint(p)
		if k <= 0 {
			return dst[:base], fmt.Errorf("%w: bad add length", ErrCorrupt)
		}
		p = p[k:]
		pos := len(out) - base
		if copyLen > 0 {
			end := pos + int(copyLen)
			if end < pos || end > len(ref) || uint64(end) > targetLen {
				return dst[:base], ErrShortRef
			}
			out = append(out, ref[pos:end]...)
			pos = end
		}
		if addLen > 0 {
			if uint64(addLen) > uint64(len(p)) || uint64(pos)+addLen > targetLen {
				return dst[:base], fmt.Errorf("%w: literal overruns", ErrCorrupt)
			}
			out = append(out, p[:addLen]...)
			p = p[addLen:]
		}
		if copyLen == 0 && addLen == 0 && uint64(len(out)-base) < targetLen {
			return dst[:base], fmt.Errorf("%w: zero-progress op", ErrCorrupt)
		}
	}
	if len(p) != 0 {
		return dst[:base], fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return out, nil
}

// Decode rebuilds the target block from ref and a delta produced by
// Encode. It is a thin allocating wrapper around AppendDecode; the
// initial allocation is clamped to maxDecodePrealloc so a corrupt
// length varint cannot trigger an over-allocation before any op has
// been validated.
func Decode(ref, d []byte) ([]byte, error) {
	capHint := 0
	if n, err := TargetLen(d); err == nil && n > 0 {
		capHint = min(n, maxDecodePrealloc)
	}
	return AppendDecode(make([]byte, 0, capHint), ref, d)
}

// Size returns the encoded size of the delta between target and ref
// without materializing it (same segmentation as Encode via nextOps,
// counting only). Size(t, r) == len(d) for d, _ := Encode(t, r, 0),
// and Size allocates nothing.
func Size(target, ref []byte) int {
	n := len(target)
	size := headerSize + uvarintLen(uint64(n))
	limit := len(ref)
	if limit > n {
		limit = n
	}
	for i := 0; i < n; {
		var copyLen, addLen int
		copyLen, addLen, i = nextOps(target, ref, i, n, limit)
		size += uvarintLen(uint64(copyLen)) + uvarintLen(uint64(addLen)) + addLen
	}
	return size
}

// TargetLen reports the length of the block a delta rebuilds, without
// decoding it.
func TargetLen(d []byte) (int, error) {
	if len(d) < headerSize || d[0] != magic || d[1] != version {
		return 0, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	n, k := binary.Uvarint(d[headerSize:])
	if k <= 0 {
		return 0, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	return int(n), nil
}

// uvarintLen reports how many bytes binary.AppendUvarint emits for x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
