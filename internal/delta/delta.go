// Package delta implements the high-speed delta compression I-CASH uses
// to represent an active block as a small patch against a reference
// block (paper §3, §4.3).
//
// Block storage gives us positional alignment for free: an associate
// block and its reference describe the same logical content, differing
// in scattered modified byte ranges (the paper cites measurements that
// only 5–20% of the bits in a block change on a typical write). The
// encoder therefore performs a single linear pass emitting alternating
// COPY (take bytes from the reference at the same offset) and ADD
// (literal bytes from the target) operations — no searching, no hashing,
// tens of microseconds of simulated CPU per 4 KB block.
//
// Wire format (all integers are unsigned varints):
//
//	magic 0xD5, version 1, targetLen
//	repeat until targetLen bytes produced:
//	    copyLen          — bytes taken from reference at current offset
//	    addLen, addLen literal bytes — bytes taken from the delta itself
//
// A delta for identical blocks is just the header plus one COPY, a few
// bytes; a delta for unrelated blocks degenerates to header + one ADD of
// the whole block, which callers reject via the maxSize bound.
package delta

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	magic   = 0xD5
	version = 1
	// headerSize is magic + version; the varint target length follows.
	headerSize = 2

	// minGap is the shortest run of equal bytes worth switching from ADD
	// back to COPY. A COPY/ADD boundary costs ~2 varint bytes, so gaps
	// shorter than this are cheaper left inside the literal.
	minGap = 4
)

// Errors returned by Decode.
var (
	ErrCorrupt  = errors.New("delta: corrupt delta stream")
	ErrShortRef = errors.New("delta: reference shorter than delta requires")
)

// Encode produces the delta that rebuilds target from ref. If the
// encoded size would exceed maxSize, encoding aborts and ok is false —
// the caller should then store the block verbatim instead (the paper
// uses a 2048-byte threshold, §5.3). maxSize <= 0 means unbounded.
//
// target and ref may have different lengths; bytes beyond len(ref) are
// always literals.
func Encode(target, ref []byte, maxSize int) (d []byte, ok bool) {
	bound := maxSize
	if bound <= 0 {
		bound = len(target) + len(target)/2 + 16
	}
	out := make([]byte, 0, min(bound, len(target)/4+16))
	out = append(out, magic, version)
	out = binary.AppendUvarint(out, uint64(len(target)))

	n := len(target)
	limit := len(ref)
	if limit > n {
		limit = n
	}
	i := 0
	for i < n {
		// Measure the COPY run: equal bytes at the same offset.
		start := i
		for i < limit && target[i] == ref[i] {
			i++
		}
		copyLen := i - start
		// Measure the ADD run: unequal bytes, absorbing short equal gaps.
		addStart := i
		for i < n {
			if i >= limit {
				i = n
				break
			}
			if target[i] != ref[i] {
				i++
				continue
			}
			// Equal byte: only end the ADD if the equal run is long
			// enough to pay for an op boundary.
			g := i
			for g < limit && g-i < minGap && target[g] == ref[g] {
				g++
			}
			if g-i >= minGap || g == n {
				break
			}
			i = g + 1 // absorb the short gap into the literal
		}
		addLen := i - addStart
		out = binary.AppendUvarint(out, uint64(copyLen))
		out = binary.AppendUvarint(out, uint64(addLen))
		out = append(out, target[addStart:addStart+addLen]...)
		if maxSize > 0 && len(out) > maxSize {
			return nil, false
		}
	}
	if maxSize > 0 && len(out) > maxSize {
		return nil, false
	}
	return out, true
}

// Decode rebuilds the target block from ref and a delta produced by
// Encode.
func Decode(ref, d []byte) ([]byte, error) {
	if len(d) < headerSize || d[0] != magic || d[1] != version {
		return nil, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	p := d[headerSize:]
	targetLen, k := binary.Uvarint(p)
	if k <= 0 {
		return nil, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	p = p[k:]
	out := make([]byte, 0, targetLen)
	for uint64(len(out)) < targetLen {
		copyLen, k := binary.Uvarint(p)
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad copy length", ErrCorrupt)
		}
		p = p[k:]
		addLen, k := binary.Uvarint(p)
		if k <= 0 {
			return nil, fmt.Errorf("%w: bad add length", ErrCorrupt)
		}
		p = p[k:]
		if copyLen > 0 {
			end := len(out) + int(copyLen)
			if end > len(ref) || uint64(end) > targetLen {
				return nil, ErrShortRef
			}
			out = append(out, ref[len(out):end]...)
		}
		if addLen > 0 {
			if uint64(addLen) > uint64(len(p)) || uint64(len(out))+addLen > targetLen {
				return nil, fmt.Errorf("%w: literal overruns", ErrCorrupt)
			}
			out = append(out, p[:addLen]...)
			p = p[addLen:]
		}
		if copyLen == 0 && addLen == 0 && uint64(len(out)) < targetLen {
			return nil, fmt.Errorf("%w: zero-progress op", ErrCorrupt)
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	return out, nil
}

// Size returns the encoded size of the delta between target and ref
// without materializing it (same pass as Encode, counting only).
func Size(target, ref []byte) int {
	d, _ := Encode(target, ref, 0)
	return len(d)
}

// TargetLen reports the length of the block a delta rebuilds, without
// decoding it.
func TargetLen(d []byte) (int, error) {
	if len(d) < headerSize || d[0] != magic || d[1] != version {
		return 0, fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	n, k := binary.Uvarint(d[headerSize:])
	if k <= 0 {
		return 0, fmt.Errorf("%w: bad length", ErrCorrupt)
	}
	return int(n), nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
