package delta

import (
	"bytes"
	"testing"
	"testing/quick"

	"icash/internal/sim"
)

func mustDecode(t *testing.T, ref, d []byte) []byte {
	t.Helper()
	out, err := Decode(ref, d)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return out
}

func TestRoundTripIdentical(t *testing.T) {
	b := make([]byte, 4096)
	sim.NewRand(1).Bytes(b)
	d, ok := Encode(b, b, 0)
	if !ok {
		t.Fatal("Encode rejected with no size bound")
	}
	if len(d) > 16 {
		t.Fatalf("identical blocks should produce a tiny delta, got %d bytes", len(d))
	}
	if !bytes.Equal(mustDecode(t, b, d), b) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripSmallChange(t *testing.T) {
	ref := make([]byte, 4096)
	sim.NewRand(2).Bytes(ref)
	target := append([]byte(nil), ref...)
	copy(target[1000:], []byte("hello world"))
	d, ok := Encode(target, ref, 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	if len(d) > 64 {
		t.Fatalf("11 changed bytes should encode in well under 64, got %d", len(d))
	}
	if !bytes.Equal(mustDecode(t, ref, d), target) {
		t.Fatal("round trip mismatch")
	}
}

func TestRoundTripUnrelated(t *testing.T) {
	ref := make([]byte, 4096)
	target := make([]byte, 4096)
	sim.NewRand(3).Bytes(ref)
	sim.NewRand(4).Bytes(target)
	d, ok := Encode(target, ref, 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	if !bytes.Equal(mustDecode(t, ref, d), target) {
		t.Fatal("round trip mismatch")
	}
	// Unrelated content: delta should be about a block, and certainly
	// rejected by the paper's 2048-byte threshold.
	if _, ok := Encode(target, ref, 2048); ok {
		t.Fatal("unrelated blocks must exceed the threshold")
	}
}

func TestThreshold(t *testing.T) {
	ref := make([]byte, 4096)
	sim.NewRand(5).Bytes(ref)
	target := append([]byte(nil), ref...)
	for i := 0; i < 100; i++ {
		target[i*40] ^= 0xFF
	}
	d, ok := Encode(target, ref, 2048)
	if !ok {
		t.Fatalf("100 scattered byte changes should fit 2048")
	}
	if _, ok := Encode(target, ref, len(d)-1); ok {
		t.Fatal("threshold one below the actual size must reject")
	}
}

func TestDifferentLengths(t *testing.T) {
	ref := []byte("short reference")
	target := make([]byte, 300)
	copy(target, ref)
	sim.NewRand(6).Bytes(target[100:])
	d, ok := Encode(target, ref, 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	if !bytes.Equal(mustDecode(t, ref, d), target) {
		t.Fatal("target longer than ref: round trip mismatch")
	}

	// Target shorter than ref.
	d2, ok := Encode(ref, target, 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	if !bytes.Equal(mustDecode(t, target, d2), ref) {
		t.Fatal("target shorter than ref: round trip mismatch")
	}
}

func TestEmptyTarget(t *testing.T) {
	d, ok := Encode(nil, []byte("ref"), 0)
	if !ok {
		t.Fatal("Encode failed")
	}
	out := mustDecode(t, []byte("ref"), d)
	if len(out) != 0 {
		t.Fatalf("expected empty target, got %d bytes", len(out))
	}
	n, err := TargetLen(d)
	if err != nil || n != 0 {
		t.Fatalf("TargetLen = %d, %v", n, err)
	}
}

func TestTargetLen(t *testing.T) {
	ref := make([]byte, 512)
	target := make([]byte, 512)
	sim.NewRand(7).Bytes(target)
	d, _ := Encode(target, ref, 0)
	n, err := TargetLen(d)
	if err != nil || n != 512 {
		t.Fatalf("TargetLen = %d, %v", n, err)
	}
	if _, err := TargetLen([]byte{1, 2}); err == nil {
		t.Fatal("bad header must error")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	ref := make([]byte, 256)
	target := make([]byte, 256)
	sim.NewRand(8).Bytes(target)
	d, _ := Encode(target, ref, 0)

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   {0x00, 0x01, 0x10},
		"bad version": {magic, 99, 0x10},
		"truncated":   d[:len(d)/2],
	}
	for name, bad := range cases {
		if _, err := Decode(ref, bad); err == nil {
			t.Errorf("%s: expected decode error", name)
		}
	}
	// Trailing garbage.
	if _, err := Decode(ref, append(append([]byte(nil), d...), 0xFF)); err == nil {
		t.Error("trailing bytes: expected decode error")
	}
	// Reference too short for the copies the delta demands.
	if _, err := Decode(ref[:10], d); err == nil {
		// Only fails when the delta actually copies beyond 10 bytes;
		// with random target content the first op may be a large ADD.
		// Force a copy-heavy delta instead.
		same := append([]byte(nil), ref...)
		same[200] = 1
		d2, _ := Encode(same, ref, 0)
		if _, err := Decode(ref[:10], d2); err == nil {
			t.Error("short reference: expected decode error")
		}
	}
}

func TestSize(t *testing.T) {
	ref := make([]byte, 4096)
	sim.NewRand(9).Bytes(ref)
	target := append([]byte(nil), ref...)
	target[0] ^= 1
	d, _ := Encode(target, ref, 0)
	if Size(target, ref) != len(d) {
		t.Fatalf("Size = %d, Encode produced %d", Size(target, ref), len(d))
	}
}

// Property: Decode(ref, Encode(target, ref)) == target for arbitrary
// inputs, and the encoded size is monotone-ish in the number of changes
// (never exceeds target length plus bounded overhead).
func TestRoundTripProperty(t *testing.T) {
	f := func(seedRef, seedMut uint64, length uint16, nMut uint8) bool {
		n := int(length)%5000 + 1
		ref := make([]byte, n)
		sim.NewRand(seedRef).Bytes(ref)
		target := append([]byte(nil), ref...)
		r := sim.NewRand(seedMut)
		for i := 0; i < int(nMut); i++ {
			target[r.Intn(n)] = byte(r.Uint64())
		}
		d, ok := Encode(target, ref, 0)
		if !ok {
			return false
		}
		if len(d) > n+n/2+16 {
			return false // overhead bound
		}
		out, err := Decode(ref, d)
		return err == nil && bytes.Equal(out, target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: clustered changes of k bytes encode in O(k) bytes — the
// content-locality premise that makes I-CASH deltas small.
func TestClusteredChangesCompact(t *testing.T) {
	f := func(seed uint64, runsRaw uint8) bool {
		runs := int(runsRaw)%8 + 1
		ref := make([]byte, 4096)
		sim.NewRand(seed).Bytes(ref)
		target := append([]byte(nil), ref...)
		r := sim.NewRand(seed + 1)
		changed := 0
		for i := 0; i < runs; i++ {
			runLen := 16 + r.Intn(48)
			pos := r.Intn(4096 - 64)
			for j := 0; j < runLen; j++ {
				target[pos+j] = byte(r.Uint64())
			}
			changed += runLen
		}
		d, ok := Encode(target, ref, 0)
		if !ok {
			return false
		}
		// Overhead per run is a handful of bytes.
		return len(d) <= changed+runs*12+16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics on arbitrary (possibly hostile) delta
// bytes — it returns an error or a valid block.
func TestDecodeFuzzSafety(t *testing.T) {
	f := func(refSeed uint64, raw []byte) bool {
		ref := make([]byte, 1024)
		sim.NewRand(refSeed).Bytes(ref)
		out, err := Decode(ref, raw)
		if err != nil {
			return true
		}
		n, lerr := TargetLen(raw)
		return lerr == nil && len(out) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
