package delta

import (
	"bytes"
	"testing"
)

// FuzzDeltaRoundTrip drives the encoder/decoder pair with arbitrary
// target/reference pairs and size bounds: every successful Encode must
// Decode back to the exact target within the bound, and Decode must
// never panic on arbitrary input (the raw fuzz bytes double as a
// hostile delta stream).
func FuzzDeltaRoundTrip(f *testing.F) {
	same := bytes.Repeat([]byte{0xAB}, 4096)
	f.Add([]byte("hello, block world"), []byte("hello, delta world"), 0)
	f.Add(same, same, 2048)
	f.Add([]byte{}, []byte("reference only"), 64)
	f.Add([]byte("target only, no reference"), []byte{}, 0)
	f.Add([]byte{0xD5, 0x01, 0x04, 0x00, 0x04, 1, 2, 3, 4}, []byte{9, 9, 9, 9}, 0)
	// Hostile stream advertising a ~2^62-byte target with no ops: the
	// decoder must clamp its pre-allocation instead of trusting the
	// varint (a real over-allocation bug before the clamp existed).
	f.Add([]byte{0xD5, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40},
		[]byte{}, 0)
	f.Fuzz(func(t *testing.T, target, ref []byte, maxSize int) {
		// Bound the work per input; real callers encode 4 KB blocks.
		if len(target) > 2*4096 {
			target = target[:2*4096]
		}
		if len(ref) > 2*4096 {
			ref = ref[:2*4096]
		}
		if maxSize > 1<<20 {
			maxSize = 1 << 20
		}

		if want, ok := Encode(target, ref, 0); ok && Size(target, ref) != len(want) {
			t.Fatalf("Size = %d disagrees with len(Encode) = %d", Size(target, ref), len(want))
		}

		d, ok := Encode(target, ref, maxSize)
		if ok {
			if maxSize > 0 && len(d) > maxSize {
				t.Fatalf("Encode exceeded maxSize %d: got %d bytes", maxSize, len(d))
			}
			n, err := TargetLen(d)
			if err != nil || n != len(target) {
				t.Fatalf("TargetLen = %d, %v; want %d", n, err, len(target))
			}
			got, err := Decode(ref, d)
			if err != nil {
				t.Fatalf("Decode of own encoding failed: %v", err)
			}
			if !bytes.Equal(got, target) {
				t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(target))
			}
		}

		// The fuzz input itself as a hostile delta stream: errors are
		// fine, panics and hangs are not. A successful decode must honour
		// the declared target length.
		if out, err := Decode(ref, target); err == nil {
			if n, err2 := TargetLen(target); err2 != nil || n != len(out) {
				t.Fatalf("hostile decode length %d disagrees with TargetLen %d (%v)", len(out), n, err2)
			}
		}
	})
}
