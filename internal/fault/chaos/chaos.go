// Package chaos is the deterministic chaos-soak harness: randomized
// but fully seeded fail-slow and fail-stop fault schedules driven
// against the I-CASH stack at queue depth > 1, with an independent
// content oracle checking every read. One seed reproduces one
// byte-identical run — fault windows, request stream, quarantine
// flips and all — so a failing seed is a unit test, not a flake.
//
// A soak passes when the stack survives the schedule with its
// invariants intact and *no silent data loss*: every read either
// returns the content the oracle expects, or the mismatch is covered
// by the controller's own loss accounting (scrub losses, degraded
// losses, dropped log records). Data the stack lost and admitted to
// losing is a handled fault; data it lost quietly is a bug.
package chaos

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/fault"
	"icash/internal/harness"
	"icash/internal/metrics"
	"icash/internal/sim"
	"icash/internal/sim/event"
)

// Config parameterizes one soak run. The zero value of every field is
// a sensible default; only Seed normally varies between runs.
type Config struct {
	// Seed drives everything: the fault plan, the error-injection
	// PRNGs, and the request stream.
	Seed uint64
	// Ops is the measured operation budget (default 2000).
	Ops int
	// LBASpace is the virtual-disk size in blocks (default 512).
	LBASpace int64
	// QueueDepth is the closed-loop token count (default 8).
	QueueDepth int
	// WriteFrac is the write fraction of the measured stream
	// (default 0.3).
	WriteFrac float64
	// DisableHedge turns off both hedged reads and detector-driven
	// quarantine (the "no fail-slow handling" ablation arm).
	DisableHedge bool
	// NoFailStop disables the probabilistic media/transient error
	// rates, leaving a pure fail-slow run.
	NoFailStop bool
	// NoFailSlow disables the generated fail-slow plan, leaving a
	// pure fail-stop run.
	NoFailSlow bool
	// Plan overrides the generated fail-slow schedule. Its window
	// times are relative: From/To are offsets from the start of the
	// measured phase, shifted onto the simulated clock by Run.
	Plan *fault.Schedule

	// SilentFaults arms a generated silent-corruption plan for the
	// measured phase: scheduled windows of bit-flip-on-read,
	// misdirected writes, and lost writes on the SSD and HDD. The
	// devices lie (report success, wrong bytes); only the controller's
	// checksums can catch it, and the zero-undetected-corruption bound
	// below holds the controller to that.
	SilentFaults bool
	// SilentSSD / SilentHDD override the generated silent plan per
	// device (used with SilentFaults). Window times are relative, like
	// Plan.
	SilentSSD *fault.SilentPlan
	SilentHDD *fault.SilentPlan
	// ScrubInterval enables the background integrity scrubber with the
	// given batch interval (0 leaves it off). The scrubber arms at the
	// start of the measured phase.
	ScrubInterval sim.Duration

	// Shards partitions the array into N LBA-range shards (0 or 1 =
	// the classic single-controller build). Every fault — fail-slow
	// windows, probabilistic fail-stop rates, silent corruption — lands
	// on shard 0 only, under its "s0." station namespace: the soak then
	// checks both that the faulted shard's loss stays accounted and
	// that the blast radius stops at the shard boundary (the other
	// shards' invariants must hold with zero fault traffic).
	Shards int
}

// Result is one soak's complete accounting. It contains no pointers,
// so two Results from identical runs compare equal with
// reflect.DeepEqual — the determinism tests rely on that.
type Result struct {
	Seed uint64

	Ops    int64
	Reads  int64
	Writes int64
	// OpErrors counts operations the stack gave up on (deadline
	// give-ups, unhealed faults). The op failed loudly; the oracle
	// does not advance for failed writes.
	OpErrors int64
	// WrongReads counts successful reads whose content did not match
	// any oracle-acceptable version; WrongLBAs is the number of
	// distinct blocks affected (the unit the loss counters speak in).
	WrongReads int64
	WrongLBAs  int64
	// AccountedLoss is the controller's own admitted data loss:
	// scrub losses + degraded losses + dropped log records.
	AccountedLoss int64

	ReadHist  metrics.Histogram
	WriteHist metrics.Histogram
	Elapsed   sim.Duration

	// SlowOps / SlowTime aggregate the station-level fail-slow
	// inflation across every SSD channel and HDD actuator; Stations
	// keeps the per-station scoreboard (service/wait percentiles).
	SlowOps  int64
	SlowTime sim.Duration
	Stations []metrics.StationStats

	Stats    core.Stats
	SSDFault fault.Stats
	HDDFault fault.Stats
	// DetectLat is the corruption detection-latency distribution:
	// simulated time from a silent injection to the checksum that
	// caught it. SilentUncaught counts injected damage still
	// outstanding at the end of the run (cold blocks never re-read —
	// damage that never became host-visible).
	DetectLat      metrics.Histogram
	SilentUncaught int64
	// DetectorFlags / DetectorClears total the slow-detector's
	// flag / re-admit transitions across all watched stations.
	DetectorFlags  int64
	DetectorClears int64
	// Quarantined reports whether the run *ended* with the SSD still
	// quarantined (Stats.QuarantineEvents counts the flips).
	Quarantined bool
}

// oracle state for one block: the exact content the last successful
// write installed, plus (after a failed write) the content that may or
// may not have landed — an errored write leaves the block in one of
// two legitimate states, exactly like a real torn command. Full
// byte-for-byte copies, so the verifier catches any corruption, not
// just header swaps.
type lbaState struct {
	current []byte
	maybe   []byte // nil = none
}

// fillBlock writes the deterministic content of (lba, version). The
// LBA space is split into two content regimes so the soak exercises
// both halves of the I-CASH data path:
//
//   - every 4th block belongs to a similarity family: all members of a
//     family share a base pattern and differ only in a small header and
//     sparse per-version edits. Populate writes every member identical
//     (version 1), so the scan installs family references on the SSD,
//     and measured-phase rewrites delta-attach as associates — reads of
//     these blocks are reference-slot reads, the hedgeable path;
//   - the rest get unique incompressible content per (lba, version):
//     their deltas blow the threshold, so rewrites take the SSD
//     write-through path and keep program/erase pressure on the flash
//     channels — the traffic a fail-slow window turns into queue poison.
func fillBlock(buf []byte, lba int64, version uint64) {
	if lba%4 == 0 {
		fam := byte(101 + (lba/32)*17)
		for i := range buf {
			buf[i] = fam
		}
		binary.LittleEndian.PutUint64(buf[0:8], version)
		for i := 128; i < len(buf); i += 128 {
			buf[i] = byte(version)
		}
		return
	}
	binary.LittleEndian.PutUint64(buf[0:8], uint64(lba)^0x9e3779b97f4a7c15)
	binary.LittleEndian.PutUint64(buf[8:16], version)
	pat := byte(uint64(lba)*131 + version*31)
	for i := 16; i < len(buf); i++ {
		buf[i] = pat
		if i%64 == 0 {
			buf[i] = byte(version)
		}
	}
}

// genPlan builds a randomized-but-seeded fail-slow schedule covering
// roughly the first half of the measured phase: one to three windows,
// each hitting the SSD or an HDD with a 10-100x slowdown, brownout
// jitter, or a short freeze. Offsets are relative (shifted by shift).
func genPlan(seed uint64, shift sim.Time, horizon sim.Duration) []fault.Window {
	rng := sim.NewRand(seed ^ 0xc4a5_0b5e_5eed_f001)
	n := 1 + rng.Intn(3)
	ws := make([]fault.Window, 0, n)
	for i := 0; i < n; i++ {
		from := sim.Duration(rng.Int63n(int64(horizon) / 2))
		dur := horizon/16 + sim.Duration(rng.Int63n(int64(horizon)/4))
		w := fault.Window{
			From:   shift.Add(from),
			To:     shift.Add(from + dur),
			Factor: 10 + 90*rng.Float64(),
		}
		switch rng.Intn(4) {
		case 0:
			w.Station = "ssd"
		case 1:
			w.Station = "hdd0"
		case 2:
			w.Station = "ssd"
			w.Jitter = rng.Float64() // brownout: jittery slowdown
		case 3:
			// Short freeze: the device answers nothing until To.
			w.Station = "ssd"
			w.Factor = 1
			w.Freeze = true
			w.To = shift.Add(from + horizon/32)
		}
		ws = append(ws, w)
	}
	return ws
}

// genSilentPlan builds a randomized-but-seeded silent-corruption
// schedule covering roughly the first half of the measured phase: one
// to three windows, each arming one lie mode (bit-flip-on-read,
// misdirected write, or lost write) on either the SSD or the HDD.
// Rates are modest — a soak should survive, loudly.
func genSilentPlan(seed uint64, shift sim.Time, horizon sim.Duration) (ssdW, hddW []fault.SilentWindow) {
	rng := sim.NewRand(seed ^ 0x51e7_c0de_b17f_11b5)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		from := sim.Duration(rng.Int63n(int64(horizon) / 2))
		dur := horizon/16 + sim.Duration(rng.Int63n(int64(horizon)/4))
		w := fault.SilentWindow{From: shift.Add(from), To: shift.Add(from + dur)}
		switch rng.Intn(3) {
		case 0:
			w.BitFlip = 0.01 + 0.04*rng.Float64()
		case 1:
			w.Misdirect = 0.005 + 0.015*rng.Float64()
		case 2:
			w.LostWrite = 0.005 + 0.015*rng.Float64()
		}
		if rng.Intn(2) == 0 {
			ssdW = append(ssdW, w)
		} else {
			hddW = append(hddW, w)
		}
	}
	return ssdW, hddW
}

// Run executes one chaos soak and verifies it: populate, fault
// schedule, closed-loop measured phase at QueueDepth, full-sweep
// verify, invariant check, silent-loss check. Any verification
// failure is returned as an error; a nil error means the stack
// survived this seed's schedule with all loss accounted for.
func Run(cfg Config) (*Result, error) {
	if cfg.Ops <= 0 {
		cfg.Ops = 2000
	}
	if cfg.LBASpace <= 0 {
		cfg.LBASpace = 512
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.WriteFrac <= 0 {
		cfg.WriteFrac = 0.3
	}

	// The plan is installed (empty) at build time and filled in after
	// populate: the station shapers and fault devices hold the pointer,
	// so appending windows then is race-free and keeps window offsets
	// relative to the measured phase, not the build instant.
	plan := &fault.Schedule{Seed: cfg.Seed}
	// Silent-corruption plans use the same install-empty-then-populate
	// trick: the fault devices hold the pointers from build time, and
	// windows are appended once the measured-phase anchor is known.
	silentSSD := &fault.SilentPlan{}
	silentHDD := &fault.SilentPlan{}
	fssd := &fault.Config{Seed: cfg.Seed*0x9e37_79b9 + 1, Plan: plan, Silent: silentSSD}
	fhdd := &fault.Config{Seed: cfg.Seed*0x9e37_79b9 + 2, Plan: plan, Silent: silentHDD}
	bc := harness.BuildConfig{
		DataBlocks:     cfg.LBASpace,
		SSDCacheBlocks: cfg.LBASpace / 2,
		// A deliberately small data cache (1/8 of the set): reads must
		// reach the devices or the soak would only ever exercise RAM.
		DataRAMBytes: cfg.LBASpace / 8 * blockdev.BlockSize,
		FaultSSD:     fssd,
		FaultHDD:     fhdd,
		SlowDetector: !cfg.DisableHedge,
		Shards:       cfg.Shards,
	}
	if cfg.DisableHedge {
		bc.Tune = func(c *core.Config) { c.HedgeDeadline = -1 }
	}
	sys, err := harness.Build(harness.ICASH, bc)
	if err != nil {
		return nil, err
	}
	clock := sys.Clock

	// Populate: every block written once at version 1, fault-free (the
	// plan has no windows yet and the probabilistic rates are armed
	// only after the stats reset below — a populate-phase fault would
	// leave damaged state whose loss accounting ResetStats erases,
	// turning an accounted loss into an apparent silent one).
	oracle := make([]lbaState, cfg.LBASpace)
	buf := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < cfg.LBASpace; lba++ {
		fillBlock(buf, lba, 1)
		if _, err := sys.Dev.WriteBlock(lba, buf); err != nil {
			return nil, fmt.Errorf("chaos: populate lba %d: %w", lba, err)
		}
		oracle[lba] = lbaState{current: append([]byte(nil), buf...)}
		clock.Advance(10 * sim.Microsecond)
	}
	if err := sys.Flush(); err != nil {
		return nil, fmt.Errorf("chaos: populate flush: %w", err)
	}
	sys.ResetStats()

	// Arm the background scrubber for the measured phase (SetScrub
	// re-anchors the schedule at the next request).
	if cfg.ScrubInterval > 0 {
		scrub := core.ScrubConfig{Interval: cfg.ScrubInterval}
		if sys.Sharded != nil {
			sys.Sharded.SetScrub(scrub)
		} else {
			sys.ICASH.SetScrub(scrub)
		}
	}

	// Arm the probabilistic fail-stop rates for the measured phase.
	if !cfg.NoFailStop {
		rates := fault.Rates{ReadMedia: 0.001, WriteMedia: 0.001, Transient: 0.003}
		sys.SSDFault.SetRates(rates)
		sys.HDDFault.SetRates(rates)
	}

	// Install the fail-slow schedule, anchored at the measured phase.
	start := clock.Now()
	if !cfg.NoFailSlow {
		horizon := sim.Duration(cfg.Ops) * 400 * sim.Microsecond
		if cfg.Plan != nil {
			plan.Seed = cfg.Plan.Seed
			for _, w := range cfg.Plan.Windows {
				w.From = start.Add(sim.Duration(w.From))
				w.To = start.Add(sim.Duration(w.To))
				plan.Windows = append(plan.Windows, w)
			}
		} else {
			plan.Windows = genPlan(cfg.Seed, start, horizon)
		}
		if cfg.Shards > 1 {
			// Sharded station names live under per-shard namespaces
			// ("s0.ssd.ch0"); scope every window to the faulted shard so
			// the schedule keeps matching — and only that shard slows.
			for i := range plan.Windows {
				if plan.Windows[i].Station == "" {
					// "every station" scopes to "every station of the
					// faulted shard" ("s0" dotted-prefix-matches them all).
					plan.Windows[i].Station = "s0"
				} else {
					plan.Windows[i].Station = "s0." + plan.Windows[i].Station
				}
			}
		}
		if err := plan.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: plan: %w", err)
		}
	}

	// Install the silent-corruption schedule, anchored the same way.
	if cfg.SilentFaults {
		horizon := sim.Duration(cfg.Ops) * 400 * sim.Microsecond
		shiftWindows := func(p *fault.SilentPlan) []fault.SilentWindow {
			ws := make([]fault.SilentWindow, 0, len(p.Windows))
			for _, w := range p.Windows {
				w.From = start.Add(sim.Duration(w.From))
				w.To = start.Add(sim.Duration(w.To))
				ws = append(ws, w)
			}
			return ws
		}
		if cfg.SilentSSD != nil || cfg.SilentHDD != nil {
			if cfg.SilentSSD != nil {
				silentSSD.Windows = shiftWindows(cfg.SilentSSD)
			}
			if cfg.SilentHDD != nil {
				silentHDD.Windows = shiftWindows(cfg.SilentHDD)
			}
		} else {
			silentSSD.Windows, silentHDD.Windows = genSilentPlan(cfg.Seed, start, horizon)
		}
	}

	// Measured phase: closed-loop QueueDepth tokens on the event
	// engine, mirroring the harness's concurrent runner, with every
	// read checked against the oracle at execution time (the stack
	// runs in deterministic event order, so "current version" is
	// well-defined even with overlapping requests).
	res := &Result{Seed: cfg.Seed}

	// Detection-latency measurement: every checksum-mismatch detection
	// pops the matching device's outstanding-injection record; the gap
	// between injection and detection is the silent corruption's
	// host-visible exposure window.
	corruptionHook := func(dev string, devLBA int64) {
		// Sharded controllers report under their station namespace
		// ("s0.ssd"); only shard 0 carries fault wrappers, so strip the
		// prefix and attribute as usual. A detection on any other shard
		// matches no outstanding injection and records nothing — which
		// is itself the blast-radius claim.
		if i := strings.Index(dev, "."); i > 0 && dev[0] == 's' {
			dev = dev[i+1:]
		}
		var t sim.Time
		var ok bool
		switch dev {
		case "ssd":
			t, ok = sys.SSDFault.TakeCorruption(devLBA)
		case "hdd":
			t, ok = sys.HDDFault.TakeCorruption(devLBA)
		default:
			// A RAM- or host-level detection does not know which device
			// lied; match the outstanding injection on either.
			if t, ok = sys.SSDFault.TakeCorruption(devLBA); !ok {
				t, ok = sys.HDDFault.TakeCorruption(devLBA)
			}
		}
		if ok {
			res.DetectLat.Record(clock.Now().Sub(t))
		}
	}
	if sys.Sharded != nil {
		sys.Sharded.SetCorruptionHook(corruptionHook)
	} else {
		sys.ICASH.SetCorruptionHook(corruptionHook)
	}

	rng := sim.NewRand(cfg.Seed ^ 0x5eed_0fca_0c4a_0001)
	sch := event.NewScheduler(clock)
	maxDone := start
	issued := 0
	version := uint64(1) // global version counter: unique per write
	wrong := make(map[int64]bool)
	var runErr error

	verify := func(lba int64, b []byte) {
		st := &oracle[lba]
		if bytes.Equal(b, st.current) || (st.maybe != nil && bytes.Equal(b, st.maybe)) {
			return
		}
		res.WrongReads++
		wrong[lba] = true
	}

	var issue func()
	issue = func() {
		if runErr != nil || issued >= cfg.Ops {
			return
		}
		issued++
		res.Ops++
		lba := rng.Int63n(cfg.LBASpace)
		write := rng.Float64() < cfg.WriteFrac
		arrival := clock.Now()
		if write {
			version++
			fillBlock(buf, lba, version)
			sys.Tracer.Begin()
			d, werr := sys.Dev.WriteBlock(lba, buf)
			wait := event.Replay(sys.Tracer.Take(), arrival)
			sys.PollDetector()
			st := &oracle[lba]
			if werr != nil {
				// The write failed loudly; the block now legitimately
				// holds either the old or the new content.
				res.OpErrors++
				st.maybe = append([]byte(nil), buf...)
			} else {
				st.current = append([]byte(nil), buf...)
				st.maybe = nil
			}
			res.Writes++
			res.WriteHist.Record(d + wait)
			arrival = arrival.Add(d + wait)
		} else {
			sys.Tracer.Begin()
			d, rerr := sys.Dev.ReadBlock(lba, buf)
			wait := event.Replay(sys.Tracer.Take(), arrival)
			sys.PollDetector()
			if rerr != nil {
				res.OpErrors++
			} else {
				verify(lba, buf)
			}
			res.Reads++
			res.ReadHist.Record(d + wait)
			arrival = arrival.Add(d + wait)
		}
		if arrival > maxDone {
			maxDone = arrival
		}
		sch.At(arrival, issue)
	}
	for t := 0; t < cfg.QueueDepth; t++ {
		sch.After(0, issue)
	}
	sch.Run()
	if runErr != nil {
		return nil, runErr
	}
	if maxDone > clock.Now() {
		clock.AdvanceTo(maxDone)
	}
	if err := sys.Flush(); err != nil {
		// A failed final flush is a loud failure, not silent loss;
		// count it and let the invariant + loss checks judge the state.
		res.OpErrors++
	}

	// Full-sweep verify: every block read back once, serially.
	for lba := int64(0); lba < cfg.LBASpace; lba++ {
		d, rerr := sys.Dev.ReadBlock(lba, buf)
		if rerr != nil {
			res.OpErrors++
		} else {
			verify(lba, buf)
		}
		clock.Advance(d)
	}
	res.Elapsed = clock.Now().Sub(start)

	// Collect accounting.
	if sys.Sharded != nil {
		res.Stats = sys.Sharded.Stats()
		res.Quarantined = sys.Sharded.SSDQuarantined()
	} else {
		res.Stats = sys.ICASH.Stats
		res.Quarantined = sys.ICASH.SSDQuarantined()
	}
	res.SSDFault = sys.SSDFault.Stats
	res.HDDFault = sys.HDDFault.Stats
	if sys.Detector != nil {
		res.DetectorFlags, res.DetectorClears = sys.Detector.TotalEvents()
	}
	for _, s := range sys.Stations {
		st := s.Snapshot(res.Elapsed)
		res.SlowOps += st.SlowOps
		res.SlowTime += st.SlowTime
		res.Stations = append(res.Stations, st)
	}
	res.WrongLBAs = int64(len(wrong))
	res.AccountedLoss = res.Stats.ScrubDataLoss + res.Stats.DegradedDataLoss +
		res.Stats.DroppedLogRecs
	res.SilentUncaught = int64(sys.SSDFault.SilentOutstanding() + sys.HDDFault.SilentOutstanding())

	// Verdicts: structural invariants, then the silent-loss bound. On a
	// sharded build every shard is checked — the unfaulted shards'
	// invariants holding is the blast-radius half of the claim.
	if sys.Sharded != nil {
		if err := sys.Sharded.CheckInvariants(); err != nil {
			return res, fmt.Errorf("chaos: seed %d: controller invariants: %w", cfg.Seed, err)
		}
		for i, sdev := range sys.SSDs {
			if err := sdev.CheckInvariants(); err != nil {
				return res, fmt.Errorf("chaos: seed %d: shard %d ssd invariants: %w", cfg.Seed, i, err)
			}
		}
	} else {
		if err := sys.ICASH.CheckInvariants(); err != nil {
			return res, fmt.Errorf("chaos: seed %d: controller invariants: %w", cfg.Seed, err)
		}
		if err := sys.SSD.CheckInvariants(); err != nil {
			return res, fmt.Errorf("chaos: seed %d: ssd invariants: %w", cfg.Seed, err)
		}
	}
	if res.WrongLBAs > res.AccountedLoss {
		return res, fmt.Errorf("chaos: seed %d: SILENT DATA LOSS: %d wrong blocks but only %d accounted (scrub %d + degraded %d + dropped %d)",
			cfg.Seed, res.WrongLBAs, res.AccountedLoss,
			res.Stats.ScrubDataLoss, res.Stats.DegradedDataLoss, res.Stats.DroppedLogRecs)
	}
	return res, nil
}

// String summarizes a result in one line for tools. Runs that saw
// corruption detections append an integrity segment; healthy lines are
// unchanged.
func (r *Result) String() string {
	s := fmt.Sprintf("seed=%d ops=%d (r=%d w=%d) errs=%d wrong=%d/%d-lba accounted=%d slow=%d quarantine=%d hedges=%d read[%s]",
		r.Seed, r.Ops, r.Reads, r.Writes, r.OpErrors, r.WrongReads, r.WrongLBAs,
		r.AccountedLoss, r.SlowOps, r.Stats.QuarantineEvents, r.Stats.HedgedReads,
		r.ReadHist.String())
	if r.Stats.CorruptionsDetected > 0 {
		s += fmt.Sprintf(" corrupt[det=%d rep=%d unrep=%d uncaught=%d lat %s]",
			r.Stats.CorruptionsDetected, r.Stats.CorruptionsRepaired,
			r.Stats.UnrepairableBlocks, r.SilentUncaught, r.DetectLat.String())
	}
	return s
}
