package chaos

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	"icash/internal/fault"
	"icash/internal/sim"
)

// TestChaosSoak is the acceptance soak: 20 seeds of combined
// fail-slow + fail-stop schedules at QD=8, each required to finish
// with clean invariants and every wrong read covered by the
// controller's own loss accounting (Run returns an error otherwise).
func TestChaosSoak(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		res, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Ops != 2000 {
			t.Fatalf("seed %d: ran %d ops, want 2000", seed, res.Ops)
		}
		t.Logf("%s", res)
	}
}

// TestChaosPureFailSlow soaks seeds with error injection off: every
// fault is a slowdown, so nothing may go wrong at all — no op errors,
// no wrong reads — no matter how hard the devices are throttled.
func TestChaosPureFailSlow(t *testing.T) {
	for seed := uint64(100); seed < 110; seed++ {
		res, err := Run(Config{Seed: seed, NoFailStop: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WrongReads != 0 {
			t.Fatalf("seed %d: %d wrong reads under pure fail-slow", seed, res.WrongReads)
		}
		if res.OpErrors != 0 {
			t.Fatalf("seed %d: %d op errors under pure fail-slow", seed, res.OpErrors)
		}
	}
}

// TestChaosDeterminismAcrossGOMAXPROCS reruns the same seeds under
// different GOMAXPROCS settings and requires byte-identical Results —
// the soak must be a simulation, not a race.
func TestChaosDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	seeds := []uint64{3, 7, 11}
	baseline := make(map[uint64]*Result)
	for _, procs := range []int{1, runtime.NumCPU(), 2} {
		runtime.GOMAXPROCS(procs)
		for _, seed := range seeds {
			res, err := Run(Config{Seed: seed, Ops: 800})
			if err != nil {
				t.Fatalf("seed %d (GOMAXPROCS=%d): %v", seed, procs, err)
			}
			if base, ok := baseline[seed]; !ok {
				baseline[seed] = res
			} else if !reflect.DeepEqual(base, res) {
				t.Fatalf("seed %d (GOMAXPROCS=%d): result differs:\n got %+v\nwant %+v",
					seed, procs, res, base)
			}
		}
	}
}

// slowSSDPlan is the acceptance scenario: one long window multiplying
// every SSD channel's service time by 100 across most of the measured
// phase. Offsets are relative to the measured phase (Run shifts them).
func slowSSDPlan() *fault.Schedule {
	return &fault.Schedule{
		Windows: []fault.Window{{
			Station: "ssd",
			From:    sim.Time(0),
			To:      sim.Time(10 * sim.Second),
			Factor:  100,
		}},
	}
}

// TestChaosHedgingTailWin is the headline acceptance test: under a
// 100x SSD slowdown, the fail-slow machinery (hedged reads plus
// detector-driven quarantine) must cut read p99 by at least 2x versus
// the same run with hedging disabled.
func TestChaosHedgingTailWin(t *testing.T) {
	cfg := Config{Seed: 42, Ops: 3000, NoFailStop: true, Plan: slowSSDPlan()}

	hedged, err := Run(cfg)
	if err != nil {
		t.Fatalf("hedged run: %v", err)
	}
	cfg.DisableHedge = true
	bare, err := Run(cfg)
	if err != nil {
		t.Fatalf("unhedged run: %v", err)
	}

	hp99, bp99 := hedged.ReadHist.P99(), bare.ReadHist.P99()
	t.Logf("read p99: hedged=%v unhedged=%v (p50 %v vs %v; hedges=%d wins=%d quarantine=%d skips=%d)",
		hp99, bp99, hedged.ReadHist.P50(), bare.ReadHist.P50(),
		hedged.Stats.HedgedReads, hedged.Stats.HedgeWins,
		hedged.Stats.QuarantineEvents, hedged.Stats.QuarantineSkips)
	if hedged.Stats.HedgedReads == 0 && hedged.Stats.QuarantineSkips == 0 {
		t.Fatalf("fail-slow machinery never engaged (hedges=0, quarantine skips=0)")
	}
	if bp99 < 2*hp99 {
		t.Fatalf("tail win too small: unhedged p99 %v < 2x hedged p99 %v", bp99, hp99)
	}
}

// TestChaosHedgeEngagement pins the hedged-read path itself. At the
// default LBASpace the SSD's internal DRAM read cache covers every
// reference slot, so slot reads stay under the hedge deadline even at
// 100x and the tail win comes from quarantine alone. Doubling the LBA
// space pushes the slot population past the device cache: slot reads
// miss to flash, blow their deadline under the slowdown, and the
// controller must race the HDD home copy against the slow SSD.
func TestChaosHedgeEngagement(t *testing.T) {
	res, err := Run(Config{Seed: 42, Ops: 3000, LBASpace: 1024,
		NoFailStop: true, Plan: slowSSDPlan()})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("hedges=%d wins=%d cancels=%d deadline=%d saved=%v",
		res.Stats.HedgedReads, res.Stats.HedgeWins, res.Stats.HedgeCancels,
		res.Stats.DeadlineExceeded, res.Stats.HedgeSavedTime)
	if res.Stats.DeadlineExceeded == 0 {
		t.Fatal("no slot read ever exceeded the hedge deadline under a 100x slowdown")
	}
	if res.Stats.HedgedReads == 0 {
		t.Fatal("hedged reads never fired")
	}
	if res.Stats.HedgeWins == 0 {
		t.Fatal("no hedge ever beat the slow SSD read")
	}
}

// TestChaosQuarantineReadmission closes the loop on the detector: a
// fail-slow window that ends mid-run must first quarantine the SSD and
// then — via the canary probes that keep feeding the detector while
// the data path bypasses the device — re-admit it, ending the run with
// the SSD back in service.
func TestChaosQuarantineReadmission(t *testing.T) {
	res, err := Run(Config{Seed: 1, Ops: 4000, NoFailStop: true,
		Plan: &fault.Schedule{Windows: []fault.Window{{
			Station: "ssd", From: 0, To: sim.Time(sim.Second), Factor: 100,
		}}}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("quarantines=%d readmits=%d skips=%d detector flags=%d clears=%d",
		res.Stats.QuarantineEvents, res.Stats.ReadmitEvents,
		res.Stats.QuarantineSkips, res.DetectorFlags, res.DetectorClears)
	if res.Stats.QuarantineEvents == 0 {
		t.Fatal("the 100x window never quarantined the SSD")
	}
	if res.Stats.ReadmitEvents == 0 {
		t.Fatal("the SSD was never re-admitted after the window ended")
	}
	if res.Quarantined {
		t.Fatal("run ended with the SSD still quarantined")
	}
	if res.DetectorClears == 0 {
		t.Fatal("detector never cleared a station flag")
	}
}

// TestChaosExplicitPlanShifts checks that a caller-supplied relative
// plan is anchored at the measured phase: the windows must actually
// inflate station time (SlowOps > 0) even though the populate phase
// consumed simulated time before they were installed.
func TestChaosExplicitPlanShifts(t *testing.T) {
	res, err := Run(Config{Seed: 5, Ops: 600, NoFailStop: true, Plan: slowSSDPlan()})
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowOps == 0 {
		t.Fatal("explicit plan window never fired (SlowOps = 0): window offsets not shifted onto the clock?")
	}
}

// TestChaosSilentCorruptionSoak is the integrity acceptance soak: the
// devices lie — bit flips on reads, misdirected writes, writes acked
// but never applied — under the full fail-slow + fail-stop schedule,
// with the background scrubber running. Run enforces the
// zero-undetected-corruption bound (every wrong read covered by the
// controller's own loss accounting); on top of that, the seed set as a
// whole must actually exercise the machinery: injections happen,
// checksums catch them, and repairs succeed.
func TestChaosSilentCorruptionSoak(t *testing.T) {
	var injected, detected, repaired int64
	for seed := uint64(1); seed <= 15; seed++ {
		res, err := Run(Config{Seed: seed, SilentFaults: true,
			ScrubInterval: 5 * sim.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		injected += res.SSDFault.BitFlips + res.SSDFault.MisdirectedWrites + res.SSDFault.LostWrites +
			res.HDDFault.BitFlips + res.HDDFault.MisdirectedWrites + res.HDDFault.LostWrites
		detected += res.Stats.CorruptionsDetected
		repaired += res.Stats.CorruptionsRepaired
		t.Logf("%s", res)
	}
	if injected == 0 {
		t.Fatal("no silent faults were ever injected across the seed set")
	}
	if detected == 0 {
		t.Fatal("silent faults were injected but no checksum ever caught one")
	}
	if repaired == 0 {
		t.Fatal("corruptions were detected but none was ever repaired")
	}
	t.Logf("totals: injected=%d detected=%d repaired=%d", injected, detected, repaired)
}

// TestChaosSilentPureCorruption isolates the silent faults: no
// fail-stop errors, no fail-slow windows — every fault in the run is a
// device lie. Nothing may reach the host wrong and unaccounted (Run
// checks), and the scrubber must demonstrably cover both scrub
// domains (reference slots and tracked home blocks).
func TestChaosSilentPureCorruption(t *testing.T) {
	var slotChecks, homeChecks, passes int64
	for seed := uint64(200); seed < 210; seed++ {
		res, err := Run(Config{Seed: seed, NoFailStop: true, NoFailSlow: true,
			SilentFaults: true, ScrubInterval: 2 * sim.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		slotChecks += res.Stats.ScrubSlotChecks
		homeChecks += res.Stats.ScrubHomeChecks
		passes += res.Stats.ScrubPasses
		t.Logf("%s", res)
	}
	if slotChecks == 0 {
		t.Fatal("scrubber never verified a reference slot")
	}
	if homeChecks == 0 {
		t.Fatal("scrubber never verified a tracked home block")
	}
	if passes == 0 {
		t.Fatal("scrubber never completed a full pass")
	}
}

// TestChaosSilentDeterminism reruns silent-corruption + scrubber seeds
// under different GOMAXPROCS settings and requires byte-identical
// Results — detection latencies, repair counts and all.
func TestChaosSilentDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	seeds := []uint64{2, 9, 13}
	baseline := make(map[uint64]*Result)
	for _, procs := range []int{1, runtime.NumCPU(), 2} {
		runtime.GOMAXPROCS(procs)
		for _, seed := range seeds {
			res, err := Run(Config{Seed: seed, Ops: 800, SilentFaults: true,
				ScrubInterval: 3 * sim.Millisecond})
			if err != nil {
				t.Fatalf("seed %d (GOMAXPROCS=%d): %v", seed, procs, err)
			}
			if base, ok := baseline[seed]; !ok {
				baseline[seed] = res
			} else if !reflect.DeepEqual(base, res) {
				t.Fatalf("seed %d (GOMAXPROCS=%d): result differs:\n got %+v\nwant %+v",
					seed, procs, res, base)
			}
		}
	}
}

// TestChaosScrubCleanRun pins two properties of the scrubber on a
// fault-free array. First, leaving ScrubInterval at zero is a true
// no-op: the Result is byte-identical to a run that never mentioned
// the scrubber, so baselines stay comparable across the feature
// boundary. Second, turning the scrubber on may add device contention
// (scrub I/O shares the spindle and the flash channel — that overhead
// is measured in EXPERIMENTS.md) but must never invent corruption:
// zero detections, zero wrong reads, every host op still completes.
func TestChaosScrubCleanRun(t *testing.T) {
	base, err := Run(Config{Seed: 77, Ops: 1000, NoFailStop: true, NoFailSlow: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(Config{Seed: 77, Ops: 1000, NoFailStop: true, NoFailSlow: true,
		ScrubInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, off) {
		t.Fatalf("ScrubInterval=0 is not a no-op:\n got %+v\nwant %+v", off, base)
	}
	on, err := Run(Config{Seed: 77, Ops: 1000, NoFailStop: true, NoFailSlow: true,
		ScrubInterval: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.ScrubSlotChecks == 0 && on.Stats.ScrubHomeChecks == 0 {
		t.Fatal("scrubber never ran in the scrubbed arm")
	}
	if on.Ops != base.Ops {
		t.Fatalf("scrubber changed op count: %d vs %d", on.Ops, base.Ops)
	}
	if on.WrongReads != 0 || on.OpErrors != 0 {
		t.Fatalf("scrubbed clean run saw wrong=%d errs=%d", on.WrongReads, on.OpErrors)
	}
	if on.Stats.CorruptionsDetected != 0 || on.Stats.UnrepairableBlocks != 0 {
		t.Fatalf("scrubber invented corruption on a clean array: det=%d unrep=%d",
			on.Stats.CorruptionsDetected, on.Stats.UnrepairableBlocks)
	}
}

// TestChaosShardFaults soaks the sharded build with every fault —
// fail-slow windows, fail-stop rates, silent corruption — landing on
// shard 0 only. The soak must survive with loss accounted (Run errors
// otherwise, checking every shard's invariants), and the blast radius
// must stop at the shard boundary: stations outside the "s0."
// namespace may record zero slow inflation.
func TestChaosShardFaults(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := Run(Config{Seed: seed, Shards: 4, SilentFaults: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Ops != 2000 {
			t.Fatalf("seed %d: ran %d ops, want 2000", seed, res.Ops)
		}
		var s0Stations, others int
		for _, st := range res.Stations {
			if strings.HasPrefix(st.Name, "s0.") {
				s0Stations++
				continue
			}
			others++
			if st.SlowOps != 0 || st.SlowTime != 0 {
				t.Errorf("seed %d: fault leaked off shard 0: station %s slowOps=%d slowTime=%v",
					seed, st.Name, st.SlowOps, st.SlowTime)
			}
		}
		if s0Stations == 0 || others == 0 {
			t.Fatalf("seed %d: station namespaces missing: s0=%d others=%d", seed, s0Stations, others)
		}
		t.Logf("%s", res)
	}
}

// TestChaosShardDeterminism reruns a sharded soak across GOMAXPROCS
// settings and requires byte-identical Results: the per-shard fan and
// the shard-scoped fault schedule must stay a simulation.
func TestChaosShardDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var base *Result
	for _, procs := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(procs)
		res, err := Run(Config{Seed: 5, Ops: 800, Shards: 4, SilentFaults: true})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if base == nil {
			base = res
		} else if !reflect.DeepEqual(base, res) {
			t.Fatalf("GOMAXPROCS=%d: sharded result differs:\n got %+v\nwant %+v", procs, res, base)
		}
	}
}

// TestChaosShardPureFailSlow: a shard-scoped pure slowdown must hurt
// nothing — no op errors, no wrong reads — and must actually engage
// (slow inflation observed somewhere under s0.).
func TestChaosShardPureFailSlow(t *testing.T) {
	for seed := uint64(100); seed < 105; seed++ {
		res, err := Run(Config{Seed: seed, Shards: 2, NoFailStop: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.WrongReads != 0 || res.OpErrors != 0 {
			t.Fatalf("seed %d: wrong=%d errs=%d under pure shard-scoped fail-slow",
				seed, res.WrongReads, res.OpErrors)
		}
	}
}
