package fault

import (
	"errors"
	"fmt"

	"icash/internal/blockdev"
)

// Error is the typed error every injected fault carries: the failed
// operation, its target block, and the fault class. Callers that only
// need the class use Classify; callers that need the details use
// errors.As — both survive arbitrary fmt.Errorf("...: %w", err)
// wrapping by the retry and request paths.
type Error struct {
	// Op is "read" or "write".
	Op string
	// LBA is the target block of the failed operation.
	LBA int64
	// Class is the fault taxonomy entry.
	Class blockdev.ErrorClass
	// Err is the underlying sentinel (blockdev.ErrMedia, ErrTransient,
	// ErrDeviceLost) or a detail error wrapping one.
	Err error
}

// Error renders the same message shape the injector has always used.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: %s lba %d: %v", e.Op, e.LBA, e.Err)
}

// Unwrap exposes the sentinel chain to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// injectErr builds the injector's typed error for one fault.
func injectErr(op string, lba int64, sentinel error) error {
	return &Error{Op: op, LBA: lba, Class: blockdev.Classify(sentinel), Err: sentinel}
}

// Classify resolves the fault class of err, however deeply wrapped. It
// prefers the typed *fault.Error anywhere in the chain (errors.As),
// falling back to sentinel matching (errors.Is, via blockdev.Classify)
// for errors that did not originate in this package — so a transient
// timeout wrapped three layers deep by the retry path still classifies
// as transient instead of falling through to unknown.
func Classify(err error) blockdev.ErrorClass {
	if err == nil {
		return blockdev.ClassNone
	}
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Class
	}
	return blockdev.Classify(err)
}
