package fault

import (
	"errors"
	"fmt"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// TestClassifySurvivesWrapping: an injected fault wrapped by several
// fmt.Errorf layers (the retry loop, the request path) must still
// classify correctly and expose its typed details to errors.As.
func TestClassifySurvivesWrapping(t *testing.T) {
	mem := blockdev.NewMemDevice(16, 10*sim.Microsecond)
	dev := Wrap(mem, Config{Seed: 1})
	dev.InjectBad(3)

	buf := make([]byte, blockdev.BlockSize)
	_, err := dev.ReadBlock(3, buf)
	if err == nil {
		t.Fatal("injected bad block read succeeded")
	}
	wrapped := fmt.Errorf("request: %w", fmt.Errorf("retry 2: %w", err))

	if got := Classify(wrapped); got != blockdev.ClassMedia {
		t.Fatalf("Classify(wrapped) = %v, want media", got)
	}
	if !errors.Is(wrapped, blockdev.ErrMedia) {
		t.Fatal("errors.Is(wrapped, ErrMedia) = false")
	}
	var fe *Error
	if !errors.As(wrapped, &fe) {
		t.Fatal("errors.As(wrapped, *fault.Error) = false")
	}
	if fe.Op != "read" || fe.LBA != 3 || fe.Class != blockdev.ClassMedia {
		t.Fatalf("typed error details = %q/%d/%v, want read/3/media", fe.Op, fe.LBA, fe.Class)
	}
}

// TestClassifyFallsBackToSentinels: errors that did not originate in
// this package classify via the blockdev sentinel chain, and unknown
// errors land in ClassOther instead of panicking or misclassifying.
func TestClassifyFallsBackToSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want blockdev.ErrorClass
	}{
		{nil, blockdev.ClassNone},
		{fmt.Errorf("x: %w", blockdev.ErrTransient), blockdev.ClassTransient},
		{fmt.Errorf("x: %w", fmt.Errorf("y: %w", blockdev.ErrDeviceLost)), blockdev.ClassDeviceLost},
		{errors.New("mystery"), blockdev.ClassOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
