// Package crashtest is a crash-point recovery harness for the I-CASH
// controller. It drives a deterministic workload against a controller
// whose HDD sits behind a fault.Device, cuts power at a chosen write
// (optionally tearing that write mid-block), recovers from the
// surviving media, and checks the recovered array against a durability
// oracle.
//
// The oracle keeps, per LBA, the full history of values ever written
// plus a "durable floor": the history index that was current when the
// last Flush() returned successfully. A recovered value must be a
// member of the history at or after the floor — anything older means a
// durably acknowledged write was lost; anything outside the history
// means corruption leaked through recovery.
package crashtest

import (
	"bytes"
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/fault"
	"icash/internal/sim"
)

// Config parameterizes one crash-test workload. The same Config always
// produces the same request stream and the same device write sequence,
// which is what lets a traced dry run enumerate crash points for later
// armed runs.
type Config struct {
	// Core is the controller configuration.
	Core core.Config
	// Seed drives the workload generator.
	Seed uint64
	// Ops is the number of controller operations to issue.
	Ops int
	// LBASpace bounds the addressed virtual LBA range.
	LBASpace int64
	// WriteFrac is the fraction of operations that are writes.
	WriteFrac float64
	// FlushEvery issues an explicit Flush (durability point) every this
	// many operations.
	FlushEvery int
	// Plan, when non-nil, shapes the HDD's service times with scheduled
	// fail-slow windows (station "hdd"), so crash points land while the
	// device is degraded, not only while it is healthy.
	Plan *fault.Schedule
}

// Result reports one armed run.
type Result struct {
	// Crashed reports whether the armed crash point fired before the
	// workload completed.
	Crashed bool
	// CrashOp is the operation index at which the power cut surfaced.
	CrashOp int
	// Stats is the recovered controller's accounting (TornLogBlocks,
	// DroppedLogRecs, ... let tests assert which paths fired).
	Stats core.Stats
}

// genContent produces a block from one of a few base patterns with a
// small mutation fraction, mirroring the content locality the
// controller exploits.
func genContent(r *sim.Rand, family int) []byte {
	b := make([]byte, blockdev.BlockSize)
	base := sim.NewRand(uint64(family)*977 + 1)
	base.Bytes(b)
	n := len(b) / 20
	for i := 0; i < n; i++ {
		b[r.Intn(len(b))] = byte(r.Uint64())
	}
	return b
}

// Oracle is the per-LBA durability oracle: the full history of values
// ever written plus the durable floor raised at each acknowledged
// flush. It is exported so run-drivers outside this package — the
// block-service crash sweep — can hold the served path to the same
// no-acked-write-lost standard.
type Oracle struct {
	history map[int64][][]byte
	floor   map[int64]int
}

// NewOracle returns an empty oracle.
func NewOracle() *Oracle {
	return &Oracle{history: make(map[int64][][]byte), floor: make(map[int64]int)}
}

// NoteWrite appends content to lba's history. Call it for every write
// the device may have absorbed: acknowledged writes, and the one write
// a power cut interrupted (which may or may not have landed).

func (o *Oracle) NoteWrite(lba int64, content []byte) {
	if len(o.history[lba]) == 0 {
		// History version 0 is the pre-write state (unwritten blocks
		// read as zeros); a crash before the first flush legitimately
		// recovers to it.
		o.history[lba] = append(o.history[lba], make([]byte, blockdev.BlockSize))
	}
	c := make([]byte, len(content))
	copy(c, content)
	o.history[lba] = append(o.history[lba], c)
}

// NoteFlush marks every LBA's current value durable.
func (o *Oracle) NoteFlush() {
	for lba, h := range o.history {
		o.floor[lba] = len(h) - 1
	}
}

// Check validates a recovered value for lba.
func (o *Oracle) Check(lba int64, got []byte) error {
	h := o.history[lba]
	if len(h) == 0 {
		for _, b := range got {
			if b != 0 {
				return fmt.Errorf("lba %d: never written but recovered non-zero content", lba)
			}
		}
		return nil
	}
	for i := len(h) - 1; i >= 0; i-- {
		if bytes.Equal(h[i], got) {
			if i < o.floor[lba] {
				return fmt.Errorf("lba %d: recovered history version %d, durable floor is %d (acknowledged write lost)",
					lba, i, o.floor[lba])
			}
			return nil
		}
	}
	return fmt.Errorf("lba %d: recovered content matches no written version (corruption)", lba)
}

// rig bundles the devices for one run. The HDD sits behind the fault
// wrapper; crash points cut power mid log flush, which is an HDD write.
type rig struct {
	ssd   *blockdev.MemDevice
	hddF  *fault.Device
	clock *sim.Clock
	c     *core.Controller
}

func buildRig(cfg Config) (*rig, error) {
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.Core.SSDBlocks, 10*sim.Microsecond)
	hdd := blockdev.NewMemDevice(cfg.Core.VirtualBlocks+cfg.Core.LogBlocks, 100*sim.Microsecond)
	hddF := fault.Wrap(hdd, fault.Config{Seed: cfg.Seed, Plan: cfg.Plan, Clock: clock, Station: "hdd"})
	c, err := core.New(cfg.Core, ssd, hddF, clock, cpu)
	if err != nil {
		return nil, err
	}
	return &rig{ssd: ssd, hddF: hddF, clock: clock, c: c}, nil
}

// runWorkload issues the deterministic request stream, returning the
// operation index of the power cut (-1 if none fired) and the oracle.
// Any error other than the expected device loss is returned.
func runWorkload(cfg Config, r *rig) (int, *Oracle, error) {
	rnd := sim.NewRand(cfg.Seed)
	o := NewOracle()
	buf := make([]byte, blockdev.BlockSize)
	for op := 0; op < cfg.Ops; op++ {
		lba := int64(rnd.Intn(int(cfg.LBASpace)))
		var err error
		var content []byte
		if rnd.Float64() < cfg.WriteFrac {
			content = genContent(rnd, int(lba%7))
			_, err = r.c.WriteBlock(lba, content)
			if err == nil {
				o.NoteWrite(lba, content)
				content = nil // recorded; don't re-note on a later flush error
			}
		} else {
			_, err = r.c.ReadBlock(lba, buf)
		}
		if err == nil && cfg.FlushEvery > 0 && (op+1)%cfg.FlushEvery == 0 {
			err = r.c.Flush()
			if err == nil {
				o.NoteFlush()
			}
		}
		if err != nil {
			if blockdev.Classify(err) == blockdev.ClassDeviceLost {
				// The armed power cut. A write interrupted by the cut is
				// unacknowledged but may still surface after recovery if
				// its log record landed before the torn block, so it
				// joins the history without raising the durable floor.
				if content != nil {
					o.NoteWrite(lba, content)
				}
				return op, o, nil
			}
			return -1, nil, fmt.Errorf("op %d: %w", op, err)
		}
	}
	return -1, o, nil
}

// LogWritePoints runs the workload fault-free with write tracing and
// returns the 1-indexed HDD write counts whose target falls inside the
// delta-log region. Arming a crash at one of these indices in a fresh
// run cuts power exactly at that log write.
func LogWritePoints(cfg Config) ([]int64, error) {
	r, err := buildRig(cfg)
	if err != nil {
		return nil, err
	}
	r.hddF.TraceWrites = true
	if _, _, err := runWorkload(cfg, r); err != nil {
		return nil, err
	}
	var points []int64
	for i, lba := range r.hddF.WriteLog {
		if lba >= cfg.Core.VirtualBlocks {
			points = append(points, int64(i+1))
		}
	}
	return points, nil
}

// RunCrash replays the workload on fresh devices, cuts power at the
// crashWrite-th HDD write applying only tornBytes of it, then models
// power-on: restores the device, runs core.Recover against the
// surviving media, validates invariants, and reads back the whole LBA
// space against the durability oracle.
func RunCrash(cfg Config, crashWrite int64, tornBytes int) (Result, error) {
	r, err := buildRig(cfg)
	if err != nil {
		return Result{}, err
	}
	r.hddF.SetCrashAfterWrites(crashWrite, tornBytes)
	crashOp, o, err := runWorkload(cfg, r)
	if err != nil {
		return Result{}, err
	}
	res := Result{Crashed: crashOp >= 0, CrashOp: crashOp}
	if !res.Crashed {
		return res, fmt.Errorf("crash point %d never fired (workload made %d writes)",
			crashWrite, r.hddF.WritesSeen())
	}

	// Power-on: RAM is gone, media survives (torn block included).
	r.hddF.Restore()
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	rc, err := core.Recover(cfg.Core, r.ssd, r.hddF, clock, cpu)
	if err != nil {
		return res, fmt.Errorf("recover: %w", err)
	}
	if err := rc.CheckInvariants(); err != nil {
		return res, fmt.Errorf("post-recovery invariants: %w", err)
	}
	// Structural audit of the media itself: no reader-visible record may
	// ride an incomplete transaction, and the incomplete transactions
	// left on disk must be exactly the ones recovery reported discarding
	// — a discrepancy either way means a batch was partially applied.
	incomplete, err := rc.AuditJournal()
	if err != nil {
		return res, fmt.Errorf("post-recovery journal audit: %w", err)
	}
	if int64(incomplete) != rc.Stats.TxnsDiscardedOnReplay {
		return res, fmt.Errorf("journal audit: %d incomplete transactions on disk, recovery discarded %d",
			incomplete, rc.Stats.TxnsDiscardedOnReplay)
	}

	// Full read-back against the oracle.
	buf := make([]byte, blockdev.BlockSize)
	for lba := int64(0); lba < cfg.LBASpace; lba++ {
		if _, err := rc.ReadBlock(lba, buf); err != nil {
			return res, fmt.Errorf("read-back lba %d: %w", lba, err)
		}
		if err := o.Check(lba, buf); err != nil {
			return res, err
		}
	}
	res.Stats = rc.Stats
	return res, nil
}
