package crashtest

import (
	"testing"

	"icash/internal/core"
	"icash/internal/fault"
	"icash/internal/sim"
)

func sweepConfig() Config {
	cc := core.NewDefaultConfig(4096, 256, 64<<10, 256<<10)
	cc.ScanPeriod = 100
	cc.ScanWindow = 400
	cc.LogBlocks = 64
	// Durability points are the harness's explicit Flush calls only, so
	// the oracle knows exactly when the floor rises.
	cc.FlushPeriodOps = 0
	cc.FlushDirtyBytes = 1 << 30
	return Config{
		Core:       cc,
		Seed:       42,
		Ops:        4000,
		LBASpace:   1024,
		WriteFrac:  0.5,
		FlushEvery: 300,
	}
}

// TestCrashSweep cuts power at a spread of log-write boundaries with a
// range of torn-write sizes — from "power died before the sector
// stream" (0) through mid-block tears to "block fully landed" (4096) —
// and requires every recovery to pass invariants plus a full oracle
// read-back.
func TestCrashSweep(t *testing.T) {
	cfg := sweepConfig()
	points, err := LogWritePoints(cfg)
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if len(points) < 20 {
		t.Fatalf("workload produced only %d log writes; need >= 20 crash points", len(points))
	}

	tornVariants := []int{0, 1, 100, 2048, 4096}
	// Spread 25 crash points evenly across the run so early, mid and
	// late log activity (including cleaning) all get cut.
	const nPoints = 25
	var tornSeen, cleanSeen int
	for i := 0; i < nPoints; i++ {
		p := points[i*len(points)/nPoints]
		torn := tornVariants[i%len(tornVariants)]
		res, err := RunCrash(cfg, p, torn)
		if err != nil {
			t.Fatalf("crash at write %d torn %d: %v", p, torn, err)
		}
		if !res.Crashed {
			t.Fatalf("crash at write %d torn %d never fired", p, torn)
		}
		if res.Stats.TornLogBlocks > 0 {
			tornSeen++
		} else {
			cleanSeen++
		}
	}
	// Mid-block tears must actually exercise the CRC-reject path at
	// least some of the time, and full-block landings must recover
	// without spurious rejects.
	if tornSeen == 0 {
		t.Error("no sweep run observed a torn log block; CRC reject path untested")
	}
	if cleanSeen == 0 {
		t.Error("every sweep run claimed a torn block; tornBytes=4096 should land cleanly")
	}
}

// TestCrashSweepFailSlow repeats a crash sweep while the HDD runs under
// an always-active fail-slow window: commit bursts take 8x their
// nominal service time (with deterministic jitter), so power cuts land
// on a degraded device whose writes straddle durability decisions for
// much longer. Atomicity must not depend on the device being fast —
// every recovery still passes invariants, the journal audit, and the
// oracle read-back.
func TestCrashSweepFailSlow(t *testing.T) {
	cfg := sweepConfig()
	cfg.Plan = &fault.Schedule{Windows: []fault.Window{
		{Station: "hdd", From: 0, To: sim.Time(1 << 62), Factor: 8, Jitter: 2},
	}}
	if err := cfg.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	points, err := LogWritePoints(cfg)
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	if len(points) < 10 {
		t.Fatalf("workload produced only %d log writes; need >= 10 crash points", len(points))
	}
	tornVariants := []int{0, 100, 2048, 4096}
	const nPoints = 10
	for i := 0; i < nPoints; i++ {
		p := points[i*len(points)/nPoints]
		torn := tornVariants[i%len(tornVariants)]
		res, err := RunCrash(cfg, p, torn)
		if err != nil {
			t.Fatalf("fail-slow crash at write %d torn %d: %v", p, torn, err)
		}
		if !res.Crashed {
			t.Fatalf("fail-slow crash at write %d torn %d never fired", p, torn)
		}
	}
}

// TestCrashAtEveryEarlyLogWrite densely covers the first log writes,
// where the log head wraps state is simplest and off-by-one bugs in
// replay show up.
func TestCrashAtEveryEarlyLogWrite(t *testing.T) {
	cfg := sweepConfig()
	cfg.Ops = 1500
	points, err := LogWritePoints(cfg)
	if err != nil {
		t.Fatalf("dry run: %v", err)
	}
	n := len(points)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		for _, torn := range []int{0, 2048} {
			if _, err := RunCrash(cfg, points[i], torn); err != nil {
				t.Fatalf("crash at log write %d (write #%d) torn %d: %v", i, points[i], torn, err)
			}
		}
	}
}

// TestNoCrashBaseline checks the harness itself: with no crash armed
// the workload completes and the dry-run trace is reproducible.
func TestNoCrashBaseline(t *testing.T) {
	cfg := sweepConfig()
	p1, err := LogWritePoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := LogWritePoints(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("dry runs disagree: %d vs %d log writes", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("dry runs disagree at %d: %d vs %d", i, p1[i], p2[i])
		}
	}
}
