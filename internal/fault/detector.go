package fault

import (
	"sort"

	"icash/internal/sim"
)

// Detector is the fail-slow detector: it watches per-station service
// times over a sliding window and flags a station as slow when the
// windowed p95 crosses the station's threshold — equivalently, when
// more than 5% of the window's samples exceed it. p95, not p99: a
// healthy flash channel has rare but legitimate multi-millisecond
// service spikes (a host write that triggers garbage collection pays
// an erase plus relocations), and a p99 rule flags a healthy device
// whenever two such spikes land in one window. A fail-slow episode
// inflates *every* sample, so it clears 5% immediately; housekeeping
// spikes at ~0.1% never do. A flagged station is
// cleared (re-admitted) only after an eighth-window of consecutive
// samples stays under the threshold: long enough that a device
// browning in and out does not flap the quarantine on every good
// request, short enough that re-admission works on canary traffic
// alone (a quarantined device only sees sparse probe reads, spread
// across its channels, so demanding a full window of them per channel
// would strand the quarantine).
//
// Everything is O(1) per observation, allocation-free after Watch, and
// fully deterministic: no wall-clock, no randomness.
type Detector struct {
	window   int
	stations map[string]*stationWatch
	order    []string // deterministic iteration for AnySlow / Snapshot
}

// stationWatch is one station's sliding window.
type stationWatch struct {
	threshold sim.Duration
	ring      []sim.Duration
	n         int // samples currently in the ring (<= len(ring))
	idx       int // next write position
	over      int // ring samples above threshold
	cleanRun  int // consecutive under-threshold samples since the last spike

	slow   bool
	Flags  int64 // transitions into the slow state
	Clears int64 // transitions back to healthy
}

// DefaultDetectorWindow is the per-station sample window: small enough
// to react within ~a hundred requests, large enough that a p99 estimate
// means something.
const DefaultDetectorWindow = 128

// NewDetector builds a detector with the given sliding-window size
// (<= 0 uses DefaultDetectorWindow).
func NewDetector(window int) *Detector {
	if window <= 0 {
		window = DefaultDetectorWindow
	}
	return &Detector{window: window, stations: make(map[string]*stationWatch)}
}

// Watch registers a station with its slow threshold: the service time a
// healthy operation should practically never exceed — above the
// station's routine service including its rare housekeeping spikes.
func (d *Detector) Watch(station string, threshold sim.Duration) {
	if _, ok := d.stations[station]; ok {
		d.stations[station].threshold = threshold
		return
	}
	d.stations[station] = &stationWatch{
		threshold: threshold,
		ring:      make([]sim.Duration, d.window),
	}
	d.order = append(d.order, station)
	sort.Strings(d.order)
}

// Observe records one service-time sample for station. Unwatched
// stations are ignored.
func (d *Detector) Observe(station string, svc sim.Duration) {
	w, ok := d.stations[station]
	if !ok {
		return
	}
	if w.n == len(w.ring) {
		if w.ring[w.idx] > w.threshold {
			w.over--
		}
	} else {
		w.n++
	}
	w.ring[w.idx] = svc
	w.idx = (w.idx + 1) % len(w.ring)
	if svc > w.threshold {
		w.over++
		w.cleanRun = 0
	} else {
		w.cleanRun++
	}
	// A clear ends the episode: the ring is reset so the stale slow
	// samples of the episode cannot immediately re-flag the station —
	// the next flag needs a fresh full window of evidence.
	if w.slow && w.cleanRun >= clearRun(len(w.ring)) {
		w.slow = false
		w.Clears++
		w.n, w.idx, w.over, w.cleanRun = 0, 0, 0, 0
		return
	}
	// Windowed p95 over threshold <=> more than 5% of window samples
	// exceed it. Require a full window before flagging so a few early
	// spikes in a short history do not quarantine a healthy device.
	if !w.slow && w.n == len(w.ring) && w.over*20 > len(w.ring) {
		w.slow = true
		w.Flags++
	}
}

// clearRun is the consecutive-clean-sample count that re-admits a
// flagged station: an eighth of a window, floor 8.
func clearRun(window int) int {
	r := window / 8
	if r < 8 {
		r = 8
	}
	return r
}

// Slow reports whether station is currently flagged.
func (d *Detector) Slow(station string) bool {
	w, ok := d.stations[station]
	return ok && w.slow
}

// AnySlow reports whether any watched station whose name equals prefix
// or starts with prefix+"." is currently flagged. An empty prefix
// checks every station.
func (d *Detector) AnySlow(prefix string) bool {
	for _, name := range d.order {
		if prefix != "" && name != prefix && !hasDotPrefix(name, prefix) {
			continue
		}
		if d.stations[name].slow {
			return true
		}
	}
	return false
}

// Events returns the flag/clear transition counts for station.
func (d *Detector) Events(station string) (flags, clears int64) {
	if w, ok := d.stations[station]; ok {
		return w.Flags, w.Clears
	}
	return 0, 0
}

// TotalEvents sums flag/clear transitions across all stations.
func (d *Detector) TotalEvents() (flags, clears int64) {
	for _, name := range d.order {
		w := d.stations[name]
		flags += w.Flags
		clears += w.Clears
	}
	return flags, clears
}

func hasDotPrefix(name, prefix string) bool {
	return len(name) > len(prefix)+1 && name[:len(prefix)] == prefix && name[len(prefix)] == '.'
}
