package fault

import (
	"testing"

	"icash/internal/sim"
)

// TestDetectorFlagsAndClears walks a station through healthy traffic, a
// fail-slow episode, and recovery: the flag must rise only after the
// windowed p95 crosses the threshold and clear only after an
// eighth-window of consecutive clean samples.
func TestDetectorFlagsAndClears(t *testing.T) {
	d := NewDetector(100)
	d.Watch("ssd.ch0", 1*sim.Millisecond)

	// Healthy warm-up: a full window under threshold.
	for i := 0; i < 100; i++ {
		d.Observe("ssd.ch0", 50*sim.Microsecond)
	}
	if d.Slow("ssd.ch0") {
		t.Fatal("healthy station flagged")
	}
	// Five spikes are exactly 5% of the window: housekeeping noise,
	// not over p95 yet.
	for i := 0; i < 5; i++ {
		d.Observe("ssd.ch0", 80*sim.Millisecond)
	}
	if d.Slow("ssd.ch0") {
		t.Fatal("flagged at exactly 5% over")
	}
	// A sixth spike pushes the windowed p95 over the threshold.
	d.Observe("ssd.ch0", 80*sim.Millisecond)
	if !d.Slow("ssd.ch0") {
		t.Fatal("station not flagged with >5% of window over threshold")
	}
	if f, c := d.Events("ssd.ch0"); f != 1 || c != 0 {
		t.Fatalf("events = %d/%d, want 1/0", f, c)
	}
	// Recovery: the flag holds until an eighth window (12 of 100
	// samples here) runs clean — sized for canary-only traffic.
	for i := 0; i < 11; i++ {
		d.Observe("ssd.ch0", 50*sim.Microsecond)
	}
	if !d.Slow("ssd.ch0") {
		t.Fatal("flag cleared before an eighth clean window")
	}
	d.Observe("ssd.ch0", 50*sim.Microsecond)
	if d.Slow("ssd.ch0") {
		t.Fatal("flag not cleared after an eighth clean window")
	}
	if f, c := d.Events("ssd.ch0"); f != 1 || c != 1 {
		t.Fatalf("events = %d/%d, want 1/1", f, c)
	}
}

// TestDetectorNoFlagBeforeFullWindow: a spike in a short history must
// not quarantine a device the detector barely knows.
func TestDetectorNoFlagBeforeFullWindow(t *testing.T) {
	d := NewDetector(128)
	d.Watch("hdd0", 50*sim.Millisecond)
	for i := 0; i < 20; i++ {
		d.Observe("hdd0", 200*sim.Millisecond)
	}
	if d.Slow("hdd0") {
		t.Fatal("flagged before the window filled")
	}
}

// TestDetectorAnySlowPrefix: the dotted-prefix grouping that maps SSD
// channels to one quarantine decision.
func TestDetectorAnySlowPrefix(t *testing.T) {
	d := NewDetector(4)
	d.Watch("ssd.ch0", sim.Millisecond)
	d.Watch("ssd.ch1", sim.Millisecond)
	d.Watch("hdd0", sim.Millisecond)
	for i := 0; i < 4; i++ {
		d.Observe("ssd.ch1", 10*sim.Millisecond)
		d.Observe("ssd.ch0", sim.Microsecond)
		d.Observe("hdd0", sim.Microsecond)
	}
	if !d.Slow("ssd.ch1") {
		t.Fatal("saturated channel not flagged")
	}
	if !d.AnySlow("ssd") || d.AnySlow("hdd0") || !d.AnySlow("") {
		t.Error("AnySlow prefix grouping wrong")
	}
	d.Observe("unwatched", sim.Second) // must be ignored, not panic
	if d.Slow("unwatched") {
		t.Error("unwatched station reported slow")
	}
	if f, c := d.TotalEvents(); f != 1 || c != 0 {
		t.Errorf("total events = %d/%d, want 1/0", f, c)
	}
}
