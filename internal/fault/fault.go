// Package fault is a deterministic, schedule-driven fault-injection
// layer for simulated block devices. A fault.Device wraps any
// blockdev.Device — SSD, HDD, RAID member, memory device — and injects
// reproducible failures drawn from a seeded sim.Rand:
//
//   - latent sector errors / uncorrectable bit errors (ErrMedia): the
//     block stays unreadable until it is rewritten, which models a
//     sector remap or page reprogram healing the location;
//   - transient timeouts (ErrTransient): the operation does not take
//     effect and an immediate retry may succeed;
//   - whole-device loss (ErrDeviceLost): every request fails until
//     Restore is called;
//   - crash points with torn writes: the N-th write applies only a
//     prefix of the new data (the tail keeps the old bytes, exactly
//     what a power cut mid-sector-stream leaves behind), after which
//     the device is lost. Restore models power-on: the media, torn
//     block included, is intact; only the in-flight write was damaged;
//   - silent corruption (SilentRates / SilentPlan): bit flips on
//     successful reads, writes misdirected to the neighboring LBA, and
//     lost writes acked as durable — lie-and-return-success faults that
//     never raise an error and are only caught by content checksums
//     above the device.
//
// Everything is driven by one seed, so two runs with the same seed,
// schedule and request stream observe bit-identical fault sequences —
// the property the deterministic-replay and crash-sweep tests build on.
package fault

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Rates sets per-operation fault probabilities. Zero values disable
// the corresponding fault; scheduled faults (InjectBad, Lose,
// SetCrashAfterWrites) work regardless of rates.
type Rates struct {
	// ReadMedia is the probability that a read discovers a new latent
	// media error at the target block (the block goes bad until
	// rewritten).
	ReadMedia float64
	// WriteMedia is the probability that a write fails as a program
	// failure, leaving the target block bad until a later write
	// succeeds.
	WriteMedia float64
	// Transient is the probability that any operation times out once
	// without taking effect.
	Transient float64
	// Silent sets the lie-and-return-success rates: bit flips on read,
	// misdirected writes, lost writes. These never surface as errors —
	// only a content checksum above the device catches them.
	Silent SilentRates
}

// Config parameterizes a fault.Device.
type Config struct {
	// Seed drives the injection PRNG; the same seed reproduces the
	// same fault sequence for the same request stream.
	Seed uint64
	// Rates are the probabilistic fault rates.
	Rates Rates
	// TimeoutLatency is the simulated service time of a transient
	// timeout (default 10 ms — a device-level command timeout).
	TimeoutLatency sim.Duration
	// ErrorLatency is the simulated service time of a media error
	// (default 5 ms — the drive's internal retries before giving up).
	ErrorLatency sim.Duration
	// LostWriteLatency is the simulated service time of a lost write
	// (default 100 µs): the device acks at normal speed, the data just
	// never reaches the media.
	LostWriteLatency sim.Duration

	// Plan, when non-nil, is the scheduled fail-slow plan: service
	// times (successes and error latencies alike) are inflated by
	// Plan.Inflate(Station, Clock.Now(), d). Requires Clock.
	Plan *Schedule
	// Silent, when non-nil, schedules silent-corruption windows whose
	// rates add to Rates.Silent while active. Requires Clock.
	Silent *SilentPlan
	// Clock supplies the simulated time the Plan's windows are keyed on.
	Clock *sim.Clock
	// Station names this device in the Plan's windows ("ssd", "hdd0").
	Station string
}

// Stats counts injected faults and surviving traffic.
type Stats struct {
	Reads           int64 // reads passed through to the inner device
	Writes          int64 // writes passed through to the inner device
	MediaErrors     int64 // ErrMedia returned (injected or latent re-hit)
	TransientErrors int64 // ErrTransient returned
	LostErrors      int64 // ErrDeviceLost returned
	TornWrites      int64 // crash-point writes that applied partially
	HealedBlocks    int64 // bad blocks cleared by a successful rewrite

	// Silent-corruption injection (never surfaces as a device error).
	BitFlips          int64 // successful reads returned with one bit flipped
	MisdirectedWrites int64 // writes that landed on the neighboring LBA
	LostWrites        int64 // writes acked as durable but never applied

	// Fail-slow accounting (scheduled Plan windows).
	SlowOps  int64        // operations whose service time was inflated
	SlowTime sim.Duration // total extra service time injected
}

// Device wraps an inner device with fault injection. It implements
// blockdev.Device, Preloader and Filler (delegating the latter two
// fault-free: preloading models factory imaging). Not safe for
// concurrent use, like every device in this simulation.
type Device struct {
	inner blockdev.Device
	cfg   Config
	rng   *sim.Rand

	bad        map[int64]bool
	silentAt   map[int64]sim.Time // outstanding silent damage, keyed by LBA, valued by injection time
	lost       bool
	writeSeen  int64
	crashAfter int64 // 1-indexed write count; -1 disables
	tornBytes  int

	// TraceWrites records the LBA of every write attempt in WriteLog;
	// the crash-point harness uses a traced dry run to find log-flush
	// boundaries.
	TraceWrites bool
	WriteLog    []int64

	// Stats is externally visible accounting.
	Stats Stats
}

// Wrap builds a fault-injecting view of inner.
func Wrap(inner blockdev.Device, cfg Config) *Device {
	if cfg.TimeoutLatency <= 0 {
		cfg.TimeoutLatency = 10 * sim.Millisecond
	}
	if cfg.ErrorLatency <= 0 {
		cfg.ErrorLatency = 5 * sim.Millisecond
	}
	if cfg.LostWriteLatency <= 0 {
		cfg.LostWriteLatency = 100 * sim.Microsecond
	}
	return &Device{
		inner:      inner,
		cfg:        cfg,
		rng:        sim.NewRand(cfg.Seed),
		bad:        make(map[int64]bool),
		crashAfter: -1,
	}
}

// Inner returns the wrapped device (recovery paths bypass the wrapper
// to model a fresh power-on against intact media).
func (d *Device) Inner() blockdev.Device { return d.inner }

// shape applies the scheduled fail-slow plan to one operation's service
// time. Error latencies are shaped too: a browning-out device is slow
// to fail just as it is slow to succeed.
func (d *Device) shape(dur sim.Duration) sim.Duration {
	if d.cfg.Plan == nil || d.cfg.Clock == nil {
		return dur
	}
	shaped := d.cfg.Plan.Inflate(d.cfg.Station, d.cfg.Clock.Now(), dur)
	if shaped > dur {
		d.Stats.SlowOps++
		d.Stats.SlowTime += shaped - dur
	}
	return shaped
}

// Blocks returns the inner device capacity.
func (d *Device) Blocks() int64 { return d.inner.Blocks() }

// InjectBad marks lba as a latent media error: reads fail with
// ErrMedia until a write heals the block.
func (d *Device) InjectBad(lba int64) { d.bad[lba] = true }

// BadBlocks reports the current count of unreadable blocks.
func (d *Device) BadBlocks() int { return len(d.bad) }

// Lose fails the whole device: every subsequent request returns
// ErrDeviceLost until Restore.
func (d *Device) Lose() { d.lost = true }

// Lost reports whether the device is currently failed.
func (d *Device) Lost() bool { return d.lost }

// Restore brings a lost device back (power-on after a crash point, or
// reattaching a pulled drive). Latent bad blocks persist.
func (d *Device) Restore() { d.lost = false }

// SetCrashAfterWrites arms a crash point: the n-th subsequent write
// (1-indexed) applies only the first tornBytes bytes of its payload —
// the tail keeps the old media content — and the device is lost.
// tornBytes 0 means the write is not applied at all (power died before
// the sector stream started); tornBytes >= BlockSize means the write
// landed fully and power died immediately after. n <= 0 disarms.
func (d *Device) SetCrashAfterWrites(n int64, tornBytes int) {
	if n <= 0 {
		d.crashAfter = -1
		return
	}
	if tornBytes < 0 {
		tornBytes = 0
	}
	if tornBytes > blockdev.BlockSize {
		tornBytes = blockdev.BlockSize
	}
	d.crashAfter = d.writeSeen + n
	d.tornBytes = tornBytes
}

// WritesSeen returns the number of write attempts observed so far.
func (d *Device) WritesSeen() int64 { return d.writeSeen }

// ReadBlock injects read-path faults, then delegates.
func (d *Device) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, d.inner.Blocks()); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	if d.lost {
		d.Stats.LostErrors++
		return 0, injectErr("read", lba, blockdev.ErrDeviceLost)
	}
	if d.bad[lba] {
		d.Stats.MediaErrors++
		return d.shape(d.cfg.ErrorLatency), injectErr("read", lba, blockdev.ErrMedia)
	}
	if d.cfg.Rates.Transient > 0 && d.rng.Float64() < d.cfg.Rates.Transient {
		d.Stats.TransientErrors++
		return d.shape(d.cfg.TimeoutLatency), injectErr("read", lba, blockdev.ErrTransient)
	}
	if d.cfg.Rates.ReadMedia > 0 && d.rng.Float64() < d.cfg.Rates.ReadMedia {
		d.bad[lba] = true
		d.Stats.MediaErrors++
		return d.shape(d.cfg.ErrorLatency), injectErr("read", lba, blockdev.ErrMedia)
	}
	d.Stats.Reads++
	dur, err := d.inner.ReadBlock(lba, buf)
	if err == nil {
		if r := d.silentNow().BitFlip; r > 0 && d.rng.Float64() < r {
			// Transfer-path upset: the media is intact, this copy of
			// the data is not. The device still reports success.
			d.flipOneBit(buf)
			d.Stats.BitFlips++
			d.noteSilent(lba)
		}
	}
	return d.shape(dur), err
}

// WriteBlock injects write-path faults (including the armed crash
// point), then delegates. A successful write heals a latent bad block:
// the drive remaps the sector / reprograms the page.
func (d *Device) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, d.inner.Blocks()); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	if d.lost {
		d.Stats.LostErrors++
		return 0, injectErr("write", lba, blockdev.ErrDeviceLost)
	}
	d.writeSeen++
	if d.TraceWrites {
		d.WriteLog = append(d.WriteLog, lba)
	}
	if d.crashAfter >= 0 && d.writeSeen == d.crashAfter {
		return 0, d.tearAndDie(lba, buf)
	}
	if d.cfg.Rates.Transient > 0 && d.rng.Float64() < d.cfg.Rates.Transient {
		d.Stats.TransientErrors++
		return d.shape(d.cfg.TimeoutLatency), injectErr("write", lba, blockdev.ErrTransient)
	}
	if d.cfg.Rates.WriteMedia > 0 && d.rng.Float64() < d.cfg.Rates.WriteMedia {
		d.bad[lba] = true
		d.Stats.MediaErrors++
		return d.shape(d.cfg.ErrorLatency), injectErr("write", lba, blockdev.ErrMedia)
	}
	if sr := d.silentNow(); !sr.zero() {
		if sr.LostWrite > 0 && d.rng.Float64() < sr.LostWrite {
			// Acked as durable, never applied: the old content
			// survives on media. No error, normal-looking latency.
			d.Stats.LostWrites++
			d.Stats.Writes++
			d.noteSilent(lba)
			return d.shape(d.cfg.LostWriteLatency), nil
		}
		if sr.Misdirect > 0 && d.rng.Float64() < sr.Misdirect {
			// The write lands on the neighboring LBA: the target keeps
			// its stale content and the neighbor is clobbered with
			// foreign data — both lie silently.
			target := misdirectTarget(lba, d.inner.Blocks())
			d.Stats.MisdirectedWrites++
			d.noteSilent(lba)
			d.noteSilent(target)
			dur, err := d.inner.WriteBlock(target, buf)
			d.Stats.Writes++
			return d.shape(dur), err
		}
	}
	dur, err := d.inner.WriteBlock(lba, buf)
	if err == nil {
		if d.bad[lba] {
			delete(d.bad, lba)
			d.Stats.HealedBlocks++
		}
		// An honest overwrite replaces whatever silent damage the
		// block held; it is no longer outstanding.
		delete(d.silentAt, lba)
	}
	d.Stats.Writes++
	return d.shape(dur), err
}

// tearAndDie applies the armed torn write and fails the device: the
// first tornBytes bytes of buf land on media, the tail keeps whatever
// the block held before.
func (d *Device) tearAndDie(lba int64, buf []byte) error {
	d.Stats.TornWrites++
	d.lost = true
	d.Stats.LostErrors++
	if d.tornBytes > 0 {
		old := make([]byte, blockdev.BlockSize)
		if _, err := d.inner.ReadBlock(lba, old); err == nil {
			copy(old[:d.tornBytes], buf[:d.tornBytes])
			// Bypass wrapper accounting: this is the physical tail of
			// the dying write, not a new host request.
			if p, ok := d.inner.(blockdev.Preloader); ok {
				//lint:ignore errclass the device is dying mid-write; the torn tail is best-effort and there is no caller to surface a failure to
				p.Preload(lba, old)
			} else {
				//lint:ignore errclass the device is dying mid-write; the torn tail is best-effort and there is no caller to surface a failure to
				d.inner.WriteBlock(lba, old)
			}
		}
	}
	return &Error{Op: "write", LBA: lba, Class: blockdev.ClassDeviceLost,
		Err: fmt.Errorf("power cut at crash point (%d bytes applied): %w",
			d.tornBytes, blockdev.ErrDeviceLost)}
}

var _ blockdev.Device = (*Device)(nil)

// Preload delegates to the inner device, fault-free (factory imaging
// happens before the fault schedule starts).
func (d *Device) Preload(lba int64, content []byte) error {
	p, ok := d.inner.(blockdev.Preloader)
	if !ok {
		return fmt.Errorf("fault: inner device does not support preloading")
	}
	return p.Preload(lba, content)
}

var _ blockdev.Preloader = (*Device)(nil)

// SetFill delegates the initial-content oracle to the inner device.
func (d *Device) SetFill(f blockdev.FillFunc) {
	if fl, ok := d.inner.(blockdev.Filler); ok {
		fl.SetFill(f)
	}
}

var _ blockdev.Filler = (*Device)(nil)

// ResetStats zeroes the fault accounting (bad blocks and the crash
// schedule are preserved).
func (d *Device) ResetStats() { d.Stats = Stats{} }

// SetRates replaces the probabilistic fault rates. Harnesses use this
// to keep a warm-up or populate phase genuinely fault-free and arm the
// error injection only for the measured stream — faults before the
// stats reset would leave damaged state whose loss accounting the
// reset then erases.
func (d *Device) SetRates(r Rates) { d.cfg.Rates = r }
