package fault

import (
	"bytes"
	"errors"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

func wrapMem(t *testing.T, blocks int64, cfg Config) (*Device, *blockdev.MemDevice) {
	t.Helper()
	inner := blockdev.NewMemDevice(blocks, sim.Microsecond)
	return Wrap(inner, cfg), inner
}

func fillPattern(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}

func TestPassthrough(t *testing.T) {
	d, _ := wrapMem(t, 16, Config{Seed: 1})
	buf := make([]byte, blockdev.BlockSize)
	fillPattern(buf, 0xAB)
	if _, err := d.WriteBlock(3, buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(3, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back does not match write")
	}
	if d.Stats.Reads != 1 || d.Stats.Writes != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
}

func TestInjectBadAndHeal(t *testing.T) {
	d, _ := wrapMem(t, 16, Config{Seed: 1})
	buf := make([]byte, blockdev.BlockSize)
	d.InjectBad(5)
	if d.BadBlocks() != 1 {
		t.Fatalf("BadBlocks = %d, want 1", d.BadBlocks())
	}
	_, err := d.ReadBlock(5, buf)
	if !errors.Is(err, blockdev.ErrMedia) {
		t.Fatalf("read bad block: %v, want ErrMedia", err)
	}
	if blockdev.Classify(err) != blockdev.ClassMedia {
		t.Fatalf("classify: %v", blockdev.Classify(err))
	}
	// Other blocks unaffected.
	if _, err := d.ReadBlock(6, buf); err != nil {
		t.Fatalf("read healthy block: %v", err)
	}
	// A write heals the block.
	fillPattern(buf, 0x11)
	if _, err := d.WriteBlock(5, buf); err != nil {
		t.Fatalf("healing write: %v", err)
	}
	if d.BadBlocks() != 0 || d.Stats.HealedBlocks != 1 {
		t.Fatalf("after heal: bad=%d stats=%+v", d.BadBlocks(), d.Stats)
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(5, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("healed block content wrong")
	}
}

func TestLoseRestore(t *testing.T) {
	d, _ := wrapMem(t, 16, Config{Seed: 1})
	buf := make([]byte, blockdev.BlockSize)
	if _, err := d.WriteBlock(0, buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	d.Lose()
	if !d.Lost() {
		t.Fatal("Lost() = false after Lose")
	}
	if _, err := d.ReadBlock(0, buf); !errors.Is(err, blockdev.ErrDeviceLost) {
		t.Fatalf("read on lost device: %v", err)
	}
	if _, err := d.WriteBlock(0, buf); !errors.Is(err, blockdev.ErrDeviceLost) {
		t.Fatalf("write on lost device: %v", err)
	}
	if d.Stats.LostErrors != 2 {
		t.Fatalf("LostErrors = %d, want 2", d.Stats.LostErrors)
	}
	d.Restore()
	if _, err := d.ReadBlock(0, buf); err != nil {
		t.Fatalf("read after restore: %v", err)
	}
}

func TestCrashAfterWritesTornPrefix(t *testing.T) {
	d, inner := wrapMem(t, 16, Config{Seed: 1})
	old := make([]byte, blockdev.BlockSize)
	fillPattern(old, 0x55)
	if err := inner.Preload(7, old); err != nil {
		t.Fatalf("preload: %v", err)
	}

	const torn = 100
	d.SetCrashAfterWrites(2, torn)

	buf := make([]byte, blockdev.BlockSize)
	fillPattern(buf, 0x01)
	if _, err := d.WriteBlock(2, buf); err != nil {
		t.Fatalf("write 1: %v", err)
	}

	neu := make([]byte, blockdev.BlockSize)
	fillPattern(neu, 0xEE)
	_, err := d.WriteBlock(7, neu)
	if !errors.Is(err, blockdev.ErrDeviceLost) {
		t.Fatalf("crash-point write: %v, want ErrDeviceLost", err)
	}
	if !d.Lost() || d.Stats.TornWrites != 1 {
		t.Fatalf("after crash: lost=%v stats=%+v", d.Lost(), d.Stats)
	}

	// Power-on: media intact, the torn block holds prefix-of-new +
	// tail-of-old.
	d.Restore()
	got := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(7, got); err != nil {
		t.Fatalf("read torn block: %v", err)
	}
	want := make([]byte, blockdev.BlockSize)
	copy(want, old)
	copy(want[:torn], neu[:torn])
	if !bytes.Equal(got, want) {
		t.Fatal("torn block content: want new prefix, old tail")
	}
}

func TestCrashTornZeroBytesLeavesOldContent(t *testing.T) {
	d, inner := wrapMem(t, 16, Config{Seed: 1})
	old := make([]byte, blockdev.BlockSize)
	fillPattern(old, 0x42)
	if err := inner.Preload(3, old); err != nil {
		t.Fatalf("preload: %v", err)
	}
	d.SetCrashAfterWrites(1, 0)
	neu := make([]byte, blockdev.BlockSize)
	fillPattern(neu, 0x99)
	if _, err := d.WriteBlock(3, neu); !errors.Is(err, blockdev.ErrDeviceLost) {
		t.Fatalf("crash write: %v", err)
	}
	d.Restore()
	got := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(3, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, old) {
		t.Fatal("tornBytes=0 must leave the old content untouched")
	}
}

func TestWriteTrace(t *testing.T) {
	d, _ := wrapMem(t, 16, Config{Seed: 1})
	d.TraceWrites = true
	buf := make([]byte, blockdev.BlockSize)
	for _, lba := range []int64{4, 9, 4, 1} {
		if _, err := d.WriteBlock(lba, buf); err != nil {
			t.Fatalf("write %d: %v", lba, err)
		}
	}
	want := []int64{4, 9, 4, 1}
	if len(d.WriteLog) != len(want) {
		t.Fatalf("WriteLog = %v", d.WriteLog)
	}
	for i := range want {
		if d.WriteLog[i] != want[i] {
			t.Fatalf("WriteLog = %v, want %v", d.WriteLog, want)
		}
	}
	if d.WritesSeen() != 4 {
		t.Fatalf("WritesSeen = %d", d.WritesSeen())
	}
}

// TestDeterministicRates checks that the same seed yields the identical
// fault sequence and different seeds (eventually) diverge.
func TestDeterministicRates(t *testing.T) {
	run := func(seed uint64) (Stats, []bool) {
		d, _ := wrapMem(t, 64, Config{Seed: seed, Rates: Rates{ReadMedia: 0.05, WriteMedia: 0.05, Transient: 0.1}})
		buf := make([]byte, blockdev.BlockSize)
		var outcomes []bool
		for i := 0; i < 400; i++ {
			lba := int64(i % 64)
			var err error
			if i%2 == 0 {
				_, err = d.WriteBlock(lba, buf)
			} else {
				_, err = d.ReadBlock(lba, buf)
			}
			outcomes = append(outcomes, err == nil)
		}
		return d.Stats, outcomes
	}
	s1, o1 := run(7)
	s2, o2 := run(7)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, outcome %d differs", i)
		}
	}
	if s1.MediaErrors == 0 || s1.TransientErrors == 0 {
		t.Fatalf("rates produced no faults in 400 ops: %+v", s1)
	}
	s3, _ := run(8)
	if s1 == s3 {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

func TestTransientDoesNotTakeEffect(t *testing.T) {
	// With Transient=1 every op times out; the inner device must never
	// observe the write.
	d, inner := wrapMem(t, 16, Config{Seed: 3, Rates: Rates{Transient: 1}})
	buf := make([]byte, blockdev.BlockSize)
	fillPattern(buf, 0x77)
	if _, err := d.WriteBlock(2, buf); !errors.Is(err, blockdev.ErrTransient) {
		t.Fatal("want ErrTransient")
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := inner.ReadBlock(2, got); err != nil {
		t.Fatalf("inner read: %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("transient write leaked to inner device")
		}
	}
}
