package fault

import (
	"fmt"
	"strings"

	"icash/internal/sim"
)

// Fail-slow fault plans. Real SSD/HDD arrays mostly die slowly: a
// device keeps answering, just 10-1000x late (SSD garbage-collection
// stalls, HDD vibration and sector remapping). A Schedule expresses
// that as declarative windows in simulated time that inflate a
// station's service time, add brownout jitter, or freeze the device
// outright. The same schedule is applied in two places:
//
//   - at the fault.Device wrapper, so the controller sees the inflated
//     service time and its deadline/hedging machinery can react;
//   - at the sim/event station layer (via Server.SetShaper), so slow
//     requests genuinely occupy the queue and starve later arrivals.
//
// Inflate is a pure function of (station, time, service time) and the
// schedule's seed — both layers agree exactly, runs replay bit-for-bit,
// and the property tests can enumerate its behavior.

// Window is one scheduled fail-slow episode on a station.
type Window struct {
	// Station selects the shaped station: exact name ("ssd", "hdd0") or
	// a prefix matching dotted children ("ssd" shapes "ssd.ch0"...).
	// Empty matches every station.
	Station string
	// From and To bound the episode in simulated time: the window is
	// active for operations starting in [From, To).
	From sim.Time
	To   sim.Time
	// Factor multiplies the service time of every operation inside the
	// window (a GC stall, a remapping drive). Values <= 0 mean 1.
	Factor float64
	// Jitter adds a deterministic brownout on top of Factor: each
	// operation's service time is further multiplied by a pseudo-random
	// value in [1, 1+Jitter] derived from the schedule seed and the
	// operation's time — bursty, but bit-reproducible.
	Jitter float64
	// Freeze stalls the device for the remainder of the window: an
	// operation arriving at t completes no earlier than To (plus its own
	// shaped service time). Models a hung controller that recovers.
	Freeze bool
}

// active reports whether w shapes station at time at.
func (w *Window) active(station string, at sim.Time) bool {
	if at < w.From || at >= w.To {
		return false
	}
	if w.Station == "" || w.Station == station {
		return true
	}
	return strings.HasPrefix(station, w.Station+".")
}

// Schedule is a deterministic fail-slow plan: a set of windows plus the
// seed that drives their jitter. The zero value (and nil) is an empty
// plan that never shapes anything.
type Schedule struct {
	// Seed drives brownout jitter; it does not affect windows without
	// Jitter.
	Seed uint64
	// Windows are the scheduled episodes. Overlapping windows compose
	// multiplicatively (two independent slowdowns both apply).
	Windows []Window
}

// Validate reports the first malformed window, or nil.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, w := range s.Windows {
		if w.To <= w.From {
			return fmt.Errorf("fault: window %d: To %v <= From %v", i, w.To, w.From)
		}
		if w.Factor < 0 || w.Jitter < 0 {
			return fmt.Errorf("fault: window %d: negative factor/jitter", i)
		}
	}
	return nil
}

// jitterQuantum buckets time for jitter derivation: every operation in
// the same ~65 µs quantum of the same window draws the same brownout
// multiplier, so the two application layers (device wrapper, station
// shaper) agree even though they see slightly different instants of the
// same request.
const jitterQuantum = 16 // log2 ns: 2^16 ns ≈ 65 µs

// jitter01 returns a deterministic value in [0, 1) from the schedule
// seed, the window index and the time quantum (splitmix64 finalizer).
func jitter01(seed, window uint64, at sim.Time) float64 {
	z := seed + 0x9e3779b97f4a7c15*(window+1) + uint64(at)>>jitterQuantum
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Inflate returns the shaped service time of an operation on station
// starting at time at with nominal service time svc. Outside every
// window it returns svc unchanged. Inside, factors (and jitter) of all
// active windows compose multiplicatively; freeze windows additionally
// delay completion to the window end. Pure and deterministic.
func (s *Schedule) Inflate(station string, at sim.Time, svc sim.Duration) sim.Duration {
	if s == nil || len(s.Windows) == 0 || svc < 0 {
		return svc
	}
	factor := 1.0
	var freeze sim.Duration
	shaped := false
	for i := range s.Windows {
		w := &s.Windows[i]
		if !w.active(station, at) {
			continue
		}
		shaped = true
		if w.Factor > 0 {
			factor *= w.Factor
		}
		if w.Jitter > 0 {
			factor *= 1 + w.Jitter*jitter01(s.Seed, uint64(i), at)
		}
		if w.Freeze {
			if d := w.To.Sub(at); d > freeze {
				freeze = d
			}
		}
	}
	if !shaped {
		return svc
	}
	return freeze + sim.Duration(factor*float64(svc))
}

// ActiveAt reports whether any window shapes station at time at —
// harnesses use it to tell "inside the episode" samples apart.
func (s *Schedule) ActiveAt(station string, at sim.Time) bool {
	if s == nil {
		return false
	}
	for i := range s.Windows {
		if s.Windows[i].active(station, at) {
			return true
		}
	}
	return false
}

// End returns the latest window end, or zero time for an empty plan.
func (s *Schedule) End() sim.Time {
	var end sim.Time
	if s == nil {
		return end
	}
	for _, w := range s.Windows {
		if w.To > end {
			end = w.To
		}
	}
	return end
}

// Shaper returns a station shaper closure for event.Server.SetShaper,
// binding this schedule to the given station name. A nil schedule
// returns nil (no shaping).
func (s *Schedule) Shaper(station string) func(sim.Time, sim.Duration) sim.Duration {
	if s == nil {
		return nil
	}
	return func(at sim.Time, svc sim.Duration) sim.Duration {
		return s.Inflate(station, at, svc)
	}
}
