package fault

import (
	"errors"
	"fmt"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// TestScheduleWindowBounds is the property test of the window firing
// rule: across randomized windows and probe times, Inflate shapes the
// service time if and only if the probe falls in [From, To) of a
// matching window — never before From, never at or after To.
func TestScheduleWindowBounds(t *testing.T) {
	r := sim.NewRand(1234)
	const svc = 100 * sim.Microsecond
	for trial := 0; trial < 200; trial++ {
		from := sim.Time(r.Int63n(int64(10 * sim.Second)))
		width := sim.Duration(1 + r.Int63n(int64(sim.Second)))
		w := Window{
			Station: "ssd",
			From:    from,
			To:      from.Add(width),
			Factor:  2 + 10*r.Float64(),
			Jitter:  r.Float64(),
			Freeze:  r.Intn(4) == 0,
		}
		s := &Schedule{Seed: r.Uint64(), Windows: []Window{w}}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		probes := []struct {
			at     sim.Time
			inside bool
		}{
			{w.From - 1, false},
			{w.From, true},
			{w.From.Add(width / 2), true},
			{w.To - 1, true},
			{w.To, false},
			{w.To + 1, false},
			{sim.Time(r.Int63n(int64(20 * sim.Second))), false}, // recomputed below
		}
		probes[6].inside = probes[6].at >= w.From && probes[6].at < w.To
		for _, p := range probes {
			got := s.Inflate("ssd", p.at, svc)
			if !p.inside && got != svc {
				t.Fatalf("trial %d: window [%v,%v) fired at %v outside its bounds: %v -> %v",
					trial, w.From, w.To, p.at, svc, got)
			}
			if p.inside && got < sim.Duration(w.Factor*float64(svc)) {
				t.Fatalf("trial %d: inside window at %v: got %v, want >= %v",
					trial, p.at, got, sim.Duration(w.Factor*float64(svc)))
			}
			if p.inside && w.Freeze && got < w.To.Sub(p.at) {
				t.Fatalf("trial %d: freeze window at %v completed %v before window end", trial, p.at, got)
			}
			if got2 := s.Inflate("ssd", p.at, svc); got2 != got {
				t.Fatalf("trial %d: Inflate not deterministic: %v vs %v", trial, got, got2)
			}
		}
	}
}

// TestScheduleOverlapComposesMultiplicatively: two overlapping factor
// windows multiply; in the non-overlapping parts only the single active
// window applies.
func TestScheduleOverlapComposesMultiplicatively(t *testing.T) {
	const svc = 200 * sim.Microsecond
	s := &Schedule{Windows: []Window{
		{Station: "ssd", From: 1000, To: 5000, Factor: 3},
		{Station: "ssd", From: 3000, To: 8000, Factor: 5},
	}}
	cases := []struct {
		at   sim.Time
		want sim.Duration
	}{
		{500, svc},
		{1000, sim.Duration(3 * float64(svc))},
		{2999, sim.Duration(3 * float64(svc))},
		{3000, sim.Duration(3 * 5 * float64(svc))},
		{4999, sim.Duration(3 * 5 * float64(svc))},
		{5000, sim.Duration(5 * float64(svc))},
		{7999, sim.Duration(5 * float64(svc))},
		{8000, svc},
	}
	for _, tc := range cases {
		if got := s.Inflate("ssd", tc.at, svc); got != tc.want {
			t.Errorf("at %v: got %v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestScheduleStationMatching: exact names, dotted-prefix children, and
// the empty wildcard.
func TestScheduleStationMatching(t *testing.T) {
	const svc = 10 * sim.Microsecond
	s := &Schedule{Windows: []Window{{Station: "ssd", From: 0, To: 1000, Factor: 4}}}
	if got := s.Inflate("ssd.ch3", 10, svc); got != 4*svc {
		t.Errorf("dotted child not shaped: %v", got)
	}
	if got := s.Inflate("ssdx", 10, svc); got != svc {
		t.Errorf("non-child prefix shaped: %v", got)
	}
	if got := s.Inflate("hdd0", 10, svc); got != svc {
		t.Errorf("unrelated station shaped: %v", got)
	}
	wild := &Schedule{Windows: []Window{{From: 0, To: 1000, Factor: 2}}}
	if got := wild.Inflate("anything", 10, svc); got != 2*svc {
		t.Errorf("wildcard window not shaped: %v", got)
	}
	var nilSched *Schedule
	if got := nilSched.Inflate("ssd", 10, svc); got != svc {
		t.Errorf("nil schedule shaped: %v", got)
	}
	if nilSched.ActiveAt("ssd", 10) || nilSched.End() != 0 || nilSched.Shaper("ssd") != nil {
		t.Error("nil schedule should be inert")
	}
}

// TestScheduleJitterDeterminism: jitter is a pure function of the seed,
// so two schedule instances agree sample-for-sample, and a different
// seed produces a different brownout sequence.
func TestScheduleJitterDeterminism(t *testing.T) {
	mk := func(seed uint64) *Schedule {
		return &Schedule{Seed: seed, Windows: []Window{
			{Station: "hdd0", From: 0, To: sim.Time(sim.Second), Factor: 1, Jitter: 2},
		}}
	}
	a, b, c := mk(7), mk(7), mk(8)
	const svc = 1 * sim.Millisecond
	diff := false
	for at := sim.Time(0); at < sim.Time(sim.Second); at += sim.Time(10 * sim.Millisecond) {
		ga, gb, gc := a.Inflate("hdd0", at, svc), b.Inflate("hdd0", at, svc), c.Inflate("hdd0", at, svc)
		if ga != gb {
			t.Fatalf("same seed diverged at %v: %v vs %v", at, ga, gb)
		}
		if ga < svc {
			t.Fatalf("jitter shrank the service time at %v: %v", at, ga)
		}
		if ga != gc {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical jitter sequences")
	}
}

// TestScheduleValidate rejects malformed windows.
func TestScheduleValidate(t *testing.T) {
	bad := []*Schedule{
		{Windows: []Window{{From: 10, To: 10}}},
		{Windows: []Window{{From: 10, To: 5}}},
		{Windows: []Window{{From: 0, To: 10, Factor: -1}}},
		{Windows: []Window{{From: 0, To: 10, Jitter: -0.5}}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("schedule %d: Validate accepted a malformed window", i)
		}
	}
	var nilSched *Schedule
	if nilSched.Validate() != nil {
		t.Error("nil schedule should validate")
	}
}

// TestClassifyUnwrapsNestedErrors: the typed *fault.Error classifies
// through arbitrary wrapping — fmt.Errorf chains from the retry path,
// double wrapping, errors.Join — and plain sentinel chains still
// classify via the blockdev fallback.
func TestClassifyUnwrapsNestedErrors(t *testing.T) {
	base := injectErr("read", 42, blockdev.ErrTransient)
	cases := []struct {
		name string
		err  error
		want blockdev.ErrorClass
	}{
		{"nil", nil, blockdev.ClassNone},
		{"typed", base, blockdev.ClassTransient},
		{"wrapped once", fmt.Errorf("retry 1: %w", base), blockdev.ClassTransient},
		{"wrapped thrice", fmt.Errorf("a: %w", fmt.Errorf("b: %w", fmt.Errorf("c: %w", base))), blockdev.ClassTransient},
		{"joined", errors.Join(errors.New("context"), fmt.Errorf("op: %w", base)), blockdev.ClassTransient},
		{"typed media", fmt.Errorf("x: %w", injectErr("write", 7, blockdev.ErrMedia)), blockdev.ClassMedia},
		{"typed lost", fmt.Errorf("x: %w", injectErr("write", 7, blockdev.ErrDeviceLost)), blockdev.ClassDeviceLost},
		{"bare sentinel", fmt.Errorf("no typed error: %w", blockdev.ErrMedia), blockdev.ClassMedia},
		{"unknown", errors.New("who knows"), blockdev.ClassOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The typed error also satisfies the old sentinel interface, so
	// pre-existing blockdev.Classify call sites keep working.
	if got := blockdev.Classify(fmt.Errorf("w: %w", base)); got != blockdev.ClassTransient {
		t.Errorf("blockdev.Classify on typed error = %v", got)
	}
	var fe *Error
	if !errors.As(fmt.Errorf("w: %w", base), &fe) || fe.LBA != 42 || fe.Op != "read" {
		t.Error("errors.As failed to recover the typed error details")
	}
}

// TestDeviceFailSlowPlan: a wrapped device's reported service times are
// inflated inside plan windows (successes and injected errors alike)
// and untouched outside, with the extra time accounted in Stats.
func TestDeviceFailSlowPlan(t *testing.T) {
	clock := sim.NewClock()
	inner := blockdev.NewMemDevice(64, 100*sim.Microsecond)
	plan := &Schedule{Windows: []Window{
		{Station: "ssd", From: sim.Time(1 * sim.Second), To: sim.Time(2 * sim.Second), Factor: 100},
	}}
	d := Wrap(inner, Config{Plan: plan, Clock: clock, Station: "ssd"})
	buf := make([]byte, blockdev.BlockSize)

	before, err := d.ReadBlock(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(sim.Duration(1500 * sim.Millisecond))
	during, err := d.ReadBlock(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if during != 100*before {
		t.Errorf("in-window read latency %v, want 100x %v", during, before)
	}
	if d.Stats.SlowOps != 1 || d.Stats.SlowTime != during-before {
		t.Errorf("slow accounting = %d ops / %v", d.Stats.SlowOps, d.Stats.SlowTime)
	}
	// Injected error latencies are shaped too.
	d.InjectBad(5)
	lat, err := d.ReadBlock(5, buf)
	if Classify(err) != blockdev.ClassMedia {
		t.Fatalf("expected media error, got %v", err)
	}
	if want := d.cfg.ErrorLatency * 100; lat != want {
		t.Errorf("in-window error latency %v, want %v", lat, want)
	}
	clock.Advance(sim.Duration(1 * sim.Second)) // past the window
	after, err := d.ReadBlock(3, buf)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("post-window read latency %v, want %v", after, before)
	}
}
