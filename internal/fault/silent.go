package fault

import (
	"icash/internal/sim"
)

// SilentRates sets the probabilities of the lie-and-return-success
// fault modes: the device reports success but the data is wrong. None
// of these surface as errors at the device boundary — only a content
// checksum above the device can catch them. Zero values disable the
// corresponding fault and (by the same rate>0 gating as Rates) leave
// the injection RNG stream untouched, so a run with all silent rates
// zero is bit-identical to a run on a build without silent faults.
type SilentRates struct {
	// BitFlip is the probability that a successful read returns the
	// block with exactly one bit flipped. The media itself is intact:
	// re-reading may return clean data (a transfer-path upset).
	BitFlip float64
	// Misdirect is the probability that a write lands on the
	// neighboring LBA instead of the target: the neighbor is clobbered
	// with foreign content and the target silently keeps its old data.
	Misdirect float64
	// LostWrite is the probability that a write is acknowledged as
	// durable but never reaches the media: the old content survives.
	LostWrite float64
}

// add accumulates o into r (used when summing active plan windows).
func (r *SilentRates) add(o SilentRates) {
	r.BitFlip += o.BitFlip
	r.Misdirect += o.Misdirect
	r.LostWrite += o.LostWrite
}

// zero reports whether every rate is disabled.
func (r SilentRates) zero() bool {
	return r.BitFlip <= 0 && r.Misdirect <= 0 && r.LostWrite <= 0
}

// SilentWindow raises the silent-fault rates during [From, To) — the
// silent-corruption counterpart of the fail-slow Schedule windows, so
// bit-rot storms can be scripted against the simulated timeline.
type SilentWindow struct {
	From, To sim.Time
	SilentRates
}

// SilentPlan is a scheduled set of silent-fault windows. Window rates
// add to the flat Rates.Silent rates while active; overlapping windows
// sum. Evaluating the plan requires Config.Clock.
type SilentPlan struct {
	Windows []SilentWindow
}

// At returns the summed rates of every window active at now.
func (p *SilentPlan) At(now sim.Time) SilentRates {
	var r SilentRates
	if p == nil {
		return r
	}
	for i := range p.Windows {
		w := &p.Windows[i]
		if now >= w.From && now < w.To {
			r.add(w.SilentRates)
		}
	}
	return r
}

// silentNow returns the effective silent-fault rates for an operation
// issued at the current simulated time: the flat configured rates plus
// any active plan windows.
func (d *Device) silentNow() SilentRates {
	r := d.cfg.Rates.Silent
	if d.cfg.Silent != nil && d.cfg.Clock != nil {
		r.add(d.cfg.Silent.At(d.cfg.Clock.Now()))
	}
	return r
}

// noteSilent records that lba now holds silently wrong (or silently
// stale) content, stamping the injection time for detection-latency
// measurement. The earliest outstanding injection per LBA wins: latency
// is measured from when the corruption first became observable.
func (d *Device) noteSilent(lba int64) {
	if d.silentAt == nil {
		d.silentAt = make(map[int64]sim.Time)
	}
	if _, ok := d.silentAt[lba]; ok {
		return
	}
	var now sim.Time
	if d.cfg.Clock != nil {
		now = d.cfg.Clock.Now()
	}
	d.silentAt[lba] = now
}

// TakeCorruption pops the recorded injection time for lba, if a silent
// fault at that address is still outstanding. The integrity layer calls
// this when a checksum catches the corruption; the caller's clock minus
// the returned stamp is the detection latency.
func (d *Device) TakeCorruption(lba int64) (sim.Time, bool) {
	t, ok := d.silentAt[lba]
	if ok {
		delete(d.silentAt, lba)
	}
	return t, ok
}

// SilentOutstanding reports how many LBAs currently hold silently
// injected damage that no checksum has caught yet (an honest overwrite
// of the block also clears the entry — the damage is gone).
func (d *Device) SilentOutstanding() int { return len(d.silentAt) }

// flipOneBit corrupts buf in place by flipping one RNG-chosen bit.
func (d *Device) flipOneBit(buf []byte) {
	bit := d.rng.Intn(len(buf) * 8)
	buf[bit/8] ^= 1 << uint(bit%8)
}

// misdirectTarget picks the neighboring LBA a misdirected write lands
// on: the address with the lowest bit flipped (an off-by-one in the
// head positioning / FTL mapping), clamped into the device range.
func misdirectTarget(lba, blocks int64) int64 {
	t := lba ^ 1
	if t >= 0 && t < blocks {
		return t
	}
	if lba > 0 {
		return lba - 1
	}
	return lba + 1
}
