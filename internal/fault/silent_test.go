package fault

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Tests for the silent-corruption fault modes: the device lies and
// returns success, so nothing here ever produces an error — the whole
// point is that only a checksum above the device can notice.

func diffBits(a, b []byte) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			n += int(x & 1)
			x >>= 1
		}
	}
	return n
}

// TestSilentBitFlipOnRead: a read under BitFlip=1 succeeds and returns
// the block with exactly one bit wrong, while the media stays intact
// (a transfer-path upset, not rot).
func TestSilentBitFlipOnRead(t *testing.T) {
	inner := blockdev.NewMemDevice(16, sim.Microsecond)
	d := Wrap(inner, Config{Seed: 3, Rates: Rates{Silent: SilentRates{BitFlip: 1}}})
	orig := make([]byte, blockdev.BlockSize)
	fillPattern(orig, 0x5A)
	if err := inner.Preload(4, orig); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(4, got); err != nil {
		t.Fatalf("bit-flip read must still report success: %v", err)
	}
	if n := diffBits(orig, got); n != 1 {
		t.Fatalf("read differs from media by %d bits, want exactly 1", n)
	}
	if d.Stats.BitFlips != 1 {
		t.Fatalf("BitFlips = %d, want 1", d.Stats.BitFlips)
	}
	if d.SilentOutstanding() != 1 {
		t.Fatalf("SilentOutstanding = %d, want 1", d.SilentOutstanding())
	}
	// The media itself is untouched.
	raw := make([]byte, blockdev.BlockSize)
	if _, err := inner.ReadBlock(4, raw); err != nil || !bytes.Equal(raw, orig) {
		t.Fatal("bit-flip-on-read must not modify the stored content")
	}
	// The integrity layer catching it pops the stamp exactly once.
	if _, ok := d.TakeCorruption(4); !ok {
		t.Fatal("TakeCorruption found no outstanding injection")
	}
	if _, ok := d.TakeCorruption(4); ok {
		t.Fatal("TakeCorruption popped the same injection twice")
	}
	if d.SilentOutstanding() != 0 {
		t.Fatalf("SilentOutstanding = %d after pop, want 0", d.SilentOutstanding())
	}
}

// TestSilentLostWrite: a write under LostWrite=1 is acked as durable
// but the old content survives on media; an honest overwrite (after
// the fault window closes) clears the outstanding damage.
func TestSilentLostWrite(t *testing.T) {
	clock := sim.NewClock()
	inner := blockdev.NewMemDevice(16, sim.Microsecond)
	plan := &SilentPlan{Windows: []SilentWindow{
		{From: 0, To: sim.Time(100 * sim.Microsecond), SilentRates: SilentRates{LostWrite: 1}},
	}}
	d := Wrap(inner, Config{Seed: 7, Clock: clock, Silent: plan})

	orig := make([]byte, blockdev.BlockSize)
	fillPattern(orig, 0x11)
	if err := inner.Preload(9, orig); err != nil {
		t.Fatal(err)
	}
	lost := make([]byte, blockdev.BlockSize)
	fillPattern(lost, 0x22)
	if _, err := d.WriteBlock(9, lost); err != nil {
		t.Fatalf("lost write must still report success: %v", err)
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("lost write reached the media")
	}
	if d.Stats.LostWrites != 1 || d.SilentOutstanding() != 1 {
		t.Fatalf("stats: lost=%d outstanding=%d", d.Stats.LostWrites, d.SilentOutstanding())
	}
	// Past the window the device is honest again: the overwrite lands
	// and the outstanding damage is gone with it.
	clock.Advance(time200())
	if _, err := d.WriteBlock(9, lost); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadBlock(9, got); err != nil || !bytes.Equal(got, lost) {
		t.Fatal("honest write after the window did not land")
	}
	if d.SilentOutstanding() != 0 {
		t.Fatalf("honest overwrite left %d outstanding", d.SilentOutstanding())
	}
}

func time200() sim.Duration { return 200 * sim.Microsecond }

// TestSilentMisdirectedWrite: under Misdirect=1 the write lands on the
// neighboring LBA — the target keeps stale data, the neighbor is
// clobbered, and both are marked silently damaged.
func TestSilentMisdirectedWrite(t *testing.T) {
	inner := blockdev.NewMemDevice(16, sim.Microsecond)
	d := Wrap(inner, Config{Seed: 5, Rates: Rates{Silent: SilentRates{Misdirect: 1}}})
	a := make([]byte, blockdev.BlockSize)
	b := make([]byte, blockdev.BlockSize)
	fillPattern(a, 0xAA)
	fillPattern(b, 0xBB)
	if err := inner.Preload(6, a); err != nil {
		t.Fatal(err)
	}
	if err := inner.Preload(7, b); err != nil {
		t.Fatal(err)
	}
	w := make([]byte, blockdev.BlockSize)
	fillPattern(w, 0xCC)
	if _, err := d.WriteBlock(6, w); err != nil {
		t.Fatalf("misdirected write must still report success: %v", err)
	}
	got := make([]byte, blockdev.BlockSize)
	if _, err := inner.ReadBlock(6, got); err != nil || !bytes.Equal(got, a) {
		t.Fatal("target LBA should keep its stale content")
	}
	if _, err := inner.ReadBlock(7, got); err != nil || !bytes.Equal(got, w) {
		t.Fatal("neighbor LBA should hold the misdirected content")
	}
	if d.Stats.MisdirectedWrites != 1 || d.SilentOutstanding() != 2 {
		t.Fatalf("stats: misdirected=%d outstanding=%d",
			d.Stats.MisdirectedWrites, d.SilentOutstanding())
	}
}

// TestMisdirectTarget pins the neighbor mapping at the range edges.
func TestMisdirectTarget(t *testing.T) {
	cases := []struct{ lba, blocks, want int64 }{
		{0, 16, 1},
		{1, 16, 0},
		{6, 16, 7},
		{7, 16, 6},
		{15, 16, 14},
	}
	for _, tc := range cases {
		if got := misdirectTarget(tc.lba, tc.blocks); got != tc.want {
			t.Errorf("misdirectTarget(%d, %d) = %d, want %d", tc.lba, tc.blocks, got, tc.want)
		}
	}
}

// TestSilentPlanWindows: windowed rates activate only inside [From,To)
// and overlapping windows sum.
func TestSilentPlanWindows(t *testing.T) {
	p := &SilentPlan{Windows: []SilentWindow{
		{From: 100, To: 200, SilentRates: SilentRates{BitFlip: 0.25}},
		{From: 150, To: 300, SilentRates: SilentRates{BitFlip: 0.5, LostWrite: 0.1}},
	}}
	if r := p.At(50); !r.zero() {
		t.Fatalf("At(50) = %+v, want zero", r)
	}
	if r := p.At(100); r.BitFlip != 0.25 || r.LostWrite != 0 {
		t.Fatalf("At(100) = %+v", r)
	}
	if r := p.At(175); r.BitFlip != 0.75 || r.LostWrite != 0.1 {
		t.Fatalf("At(175) = %+v (overlap should sum)", r)
	}
	if r := p.At(300); !r.zero() {
		t.Fatalf("At(300) = %+v, want zero (To exclusive)", r)
	}
	var nilPlan *SilentPlan
	if r := nilPlan.At(10); !r.zero() {
		t.Fatal("nil plan must report zero rates")
	}
}

// TestSilentZeroRatesBitIdentical: configuring the silent machinery
// with all-zero rates must not perturb the injection RNG stream — the
// same op sequence produces identical stats and contents as a config
// that never mentions silent faults.
func TestSilentZeroRatesBitIdentical(t *testing.T) {
	run := func(withSilent bool) (Stats, []byte) {
		clock := sim.NewClock()
		cfg := Config{Seed: 11, Clock: clock, Rates: Rates{Transient: 0.2, ReadMedia: 0.01}}
		if withSilent {
			cfg.Rates.Silent = SilentRates{}
			cfg.Silent = &SilentPlan{}
		}
		inner := blockdev.NewMemDevice(64, sim.Microsecond)
		d := Wrap(inner, cfg)
		r := sim.NewRand(99)
		buf := make([]byte, blockdev.BlockSize)
		sum := make([]byte, 0, 512)
		for op := 0; op < 500; op++ {
			lba := int64(r.Intn(64))
			if r.Float64() < 0.5 {
				fillPattern(buf, byte(op))
				d.WriteBlock(lba, buf)
			} else if _, err := d.ReadBlock(lba, buf); err == nil {
				sum = append(sum, buf[0])
			}
			clock.Advance(sim.Microsecond)
		}
		return d.Stats, sum
	}
	s1, c1 := run(false)
	s2, c2 := run(true)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("stats diverged:\n off %+v\n  on %+v", s1, s2)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("read contents diverged with zero-rate silent config")
	}
}

// TestCorruptionClassDistinct: the Corruption class is its own failure
// class — distinct from Media — and survives the double-%w wrapping
// the core request path applies.
func TestCorruptionClassDistinct(t *testing.T) {
	wrapped := fmt.Errorf("request: %w", fmt.Errorf("core: lba 7: %w: %w",
		errors.New("decode failed"), blockdev.ErrCorruption))
	if !errors.Is(wrapped, blockdev.ErrCorruption) {
		t.Fatal("errors.Is(wrapped, ErrCorruption) = false")
	}
	if got := Classify(wrapped); got != blockdev.ClassCorruption {
		t.Fatalf("Classify = %v, want ClassCorruption", got)
	}
	if errors.Is(wrapped, blockdev.ErrMedia) {
		t.Fatal("corruption error must not satisfy ErrMedia")
	}
	if blockdev.Classify(blockdev.ErrMedia) == blockdev.ClassCorruption {
		t.Fatal("media errors must not classify as corruption")
	}
}
