package harness

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim/event"
	"icash/internal/workload"
)

// runConcurrent drives one or more request streams against sys with qd
// outstanding requests per stream, on the discrete-event engine.
//
// The model is closed-loop trace-and-replay. Each stream owns qd issue
// tokens; a token issues a request, and when that request completes the
// token issues the next one — the scheduler interleaves all tokens of
// all streams by virtual completion time. Each block of a request walks
// the device stack synchronously (the stack is ordinary sequential
// code); the devices note every station visit (SSD channel, HDD
// actuator) with its service time, and the engine replays those visits
// onto the station timelines starting at the block's arrival instant to
// discover the queueing delays concurrent requests inflict on each
// other. A block's response time is its uncontended service time plus
// those queue waits; a request completes when its last block does.
//
// Background device work a request triggers (I-CASH log appends,
// destages) occupies its stations just like foreground work: later
// requests landing on the same actuator wait behind it. That is the
// backpressure a real drive exerts, and it is the deliberate design
// choice here — background traffic is invisible at QD=1 (the serial
// path never begins a trace) but contends for arms and channels the
// moment requests overlap.
//
// Determinism: everything runs on one goroutine, the scheduler breaks
// timestamp ties in schedule order, and stack state mutates in event
// order — same seed, same results, regardless of GOMAXPROCS.
func runConcurrent(sys *System, parent *workload.Generator, streams []*workload.Generator, qd int) (*Result, error) {
	p := parent.Profile()
	res := &Result{
		System: sys.Name(), Benchmark: p.Name,
		QueueDepth: qd, Streams: len(streams),
	}
	sys.SetFill(parent.Fill)

	// Guest page cache, one per stream: each stream is one guest VM with
	// its own RAM (the serial path models the same budget as a single
	// shared cache because its VMs take turns).
	frac := p.PCFraction
	if frac <= 0 {
		frac = 0.25
	}
	pcBlocks := int(frac * float64(p.VMRAMBytes/blockdev.BlockSize) *
		float64(parent.DataBlocks()) / float64(p.DataBlocks()))
	caches := make([]*pageCache, len(streams))
	for i := range caches {
		caches[i] = newPageCache(pcBlocks)
	}

	clock := sys.Clock
	sch := event.NewScheduler(clock)
	start := clock.Now()
	maxDone := start
	buf := make([]byte, blockdev.BlockSize)
	var runErr error

	var issue func(si int)
	issue = func(si int) {
		if runErr != nil {
			return
		}
		gen := streams[si]
		req, ok := gen.Next()
		if !ok {
			return // this token retires; the stream is drained
		}
		res.Ops++
		sys.CPU.ChargeApp(p.AppCPU)
		arrival := clock.Now().Add(p.AppCPU)
		for i := 0; i < req.Blocks; i++ {
			lba := req.LBA + int64(i)
			if lba >= sys.Dev.Blocks() {
				break
			}
			if req.Write {
				gen.WriteContent(lba, buf)
				sys.Tracer.Begin()
				d, err := sys.Dev.WriteBlock(lba, buf)
				if err != nil {
					runErr = fmt.Errorf("harness: %s write lba %d: %w", sys.Name(), lba, err)
					return
				}
				wait := event.Replay(sys.Tracer.Take(), arrival)
				sys.PollDetector()
				caches[si].insert(lba)
				res.Writes++
				res.WriteLat.Record(d + wait)
				res.WriteHist.Record(d + wait)
				res.QueueWait.Record(wait)
				arrival = arrival.Add(d + wait)
			} else {
				if caches[si].lookup(lba) {
					res.ReadLat.Record(pageCacheHitLatency)
					res.ReadHist.Record(pageCacheHitLatency)
					arrival = arrival.Add(pageCacheHitLatency)
					continue
				}
				sys.Tracer.Begin()
				d, err := sys.Dev.ReadBlock(lba, buf)
				if err != nil {
					runErr = fmt.Errorf("harness: %s read lba %d: %w", sys.Name(), lba, err)
					return
				}
				wait := event.Replay(sys.Tracer.Take(), arrival)
				sys.PollDetector()
				caches[si].insert(lba)
				res.Reads++
				res.ReadLat.Record(d + wait)
				res.ReadHist.Record(d + wait)
				res.QueueWait.Record(wait)
				arrival = arrival.Add(d + wait)
			}
		}
		if arrival > maxDone {
			maxDone = arrival
		}
		// The token's next request issues when this one completes.
		sch.At(arrival, func() { issue(si) })
	}

	// Prime the pump: qd tokens per stream, all issuing at the start
	// instant, interleaved stream-by-stream for fairness.
	for t := 0; t < qd; t++ {
		for si := range streams {
			si := si
			sch.After(0, func() { issue(si) })
		}
	}
	sch.Run()
	if runErr != nil {
		return nil, runErr
	}
	// The last events are issues; the run ends when the last request
	// completes.
	if maxDone > clock.Now() {
		clock.AdvanceTo(maxDone)
	}
	if err := sys.Flush(); err != nil {
		return nil, fmt.Errorf("harness: %s flush: %w", sys.Name(), err)
	}

	var hits, total float64
	for _, pc := range caches {
		hits += float64(pc.hits)
		total += float64(pc.hits + pc.misses)
	}
	if total > 0 {
		res.PageCacheHitRatio = hits / total
	}
	finalize(sys, res, p, start)
	for _, st := range sys.Stations {
		res.Stations = append(res.Stations, st.Snapshot(res.Elapsed))
	}
	return res, nil
}
