package harness

import (
	"testing"

	"icash/internal/workload"
)

// TestQDScalingRAID0 is the tentpole's acceptance check: a 4-disk RAID0
// array serving uniform random reads must deliver at least 3x the QD=1
// throughput at QD=8 — four actuators genuinely seeking in parallel.
func TestQDScalingRAID0(t *testing.T) {
	p := workload.RandRead()
	throughput := func(qd int) float64 {
		opts := workload.Options{Scale: QDSweepScale, MaxOps: 4000, Seed: 42, QueueDepth: qd}
		br, err := RunBenchmark(p, opts, []Kind{RAID0})
		if err != nil {
			t.Fatal(err)
		}
		return br.Results[RAID0].ReqPerSec
	}
	base := throughput(1)
	got := throughput(8)
	if speedup := got / base; speedup < 3.0 {
		t.Fatalf("QD=8 speedup %.2fx (%.0f vs %.0f req/s), want >= 3x", speedup, got, base)
	}
}

// TestQDStations checks the per-station accounting of a concurrent run:
// every member disk serves work, utilizations rise with queue depth,
// and queue waits appear only when requests actually overlap.
func TestQDStations(t *testing.T) {
	p := workload.RandRead()
	run := func(qd int) *Result {
		opts := workload.Options{Scale: QDSweepScale, MaxOps: 2000, Seed: 42, QueueDepth: qd}
		br, err := RunBenchmark(p, opts, []Kind{RAID0})
		if err != nil {
			t.Fatal(err)
		}
		return br.Results[RAID0]
	}
	r1, r8 := run(1), run(8)

	if r1.Stations != nil {
		t.Fatalf("serial run has station snapshots: %v", r1.Stations)
	}
	if r1.QueueWait.Count() != 0 {
		t.Fatalf("serial run recorded %d queue waits", r1.QueueWait.Count())
	}
	if r8.QueueDepth != 8 || r8.Streams != 1 {
		t.Fatalf("qd/streams = %d/%d, want 8/1", r8.QueueDepth, r8.Streams)
	}
	if len(r8.Stations) != 4 {
		t.Fatalf("station count %d, want 4 (one per member disk)", len(r8.Stations))
	}
	var lowest, highest float64 = 2, 0
	for _, st := range r8.Stations {
		if st.Ops == 0 {
			t.Fatalf("station %s served nothing", st.Name)
		}
		if st.Utilization < lowest {
			lowest = st.Utilization
		}
		if st.Utilization > highest {
			highest = st.Utilization
		}
	}
	if lowest < 0.3 || highest > 1.0 {
		t.Fatalf("QD=8 member utilizations outside [0.3, 1.0]: low %.2f high %.2f", lowest, highest)
	}
	if r8.QueueWait.Count() == 0 || r8.QueueWait.Mean() == 0 {
		t.Fatalf("QD=8 run recorded no queueing (%d waits)", r8.QueueWait.Count())
	}
}

// TestMultiStreamInterleave runs a 5-VM profile as per-VM streams and
// checks the streams genuinely overlap: same total work, five streams
// reported, and wall-clock well below the serialized run on the same
// storage.
func TestMultiStreamInterleave(t *testing.T) {
	p := workload.TPCC5VM()
	run := func(perVM bool) *Result {
		opts := workload.Options{Scale: 1.0 / 256, MaxOps: 2000, Seed: 42, StreamPerVM: perVM}
		br, err := RunBenchmark(p, opts, []Kind{FusionIO})
		if err != nil {
			t.Fatal(err)
		}
		return br.Results[FusionIO]
	}
	serial, streamed := run(false), run(true)

	if streamed.Streams != 5 || streamed.QueueDepth != 1 {
		t.Fatalf("streams/qd = %d/%d, want 5/1", streamed.Streams, streamed.QueueDepth)
	}
	if streamed.Ops != serial.Ops {
		t.Fatalf("streamed ops %d != serial ops %d", streamed.Ops, serial.Ops)
	}
	// Five interleaved streams on parallel-capable storage must beat one
	// serialized stream by a clear margin (not necessarily 5x: the SSD
	// has 4 channels and requests share them).
	if streamed.Elapsed >= serial.Elapsed {
		t.Fatalf("streamed run (%v) not faster than serialized (%v)", streamed.Elapsed, serial.Elapsed)
	}
	if ratio := serial.Elapsed.Seconds() / streamed.Elapsed.Seconds(); ratio < 1.5 {
		t.Fatalf("stream overlap only %.2fx over serial, want >= 1.5x", ratio)
	}
}

// TestVMStreamsPartition checks the per-VM generators stay inside their
// own image partitions and split the request budget exactly.
func TestVMStreamsPartition(t *testing.T) {
	p := workload.TPCC5VM()
	gen := workload.NewGenerator(p, workload.Options{Scale: 1.0 / 256, MaxOps: 5000, Seed: 7})
	streams := gen.VMStreams()
	if len(streams) != 5 {
		t.Fatalf("stream count %d, want 5", len(streams))
	}
	total := 0
	img := gen.ImageBlocks()
	for vi, s := range streams {
		if s.VM() != vi {
			t.Fatalf("stream %d pinned to VM %d", vi, s.VM())
		}
		n := 0
		for {
			req, ok := s.Next()
			if !ok {
				break
			}
			n++
			lo, hi := int64(vi)*img, int64(vi+1)*img
			if req.LBA < lo || req.LBA >= hi {
				t.Fatalf("stream %d request lba %d outside partition [%d, %d)", vi, req.LBA, lo, hi)
			}
		}
		if n != s.NumOps() {
			t.Fatalf("stream %d emitted %d of %d", vi, n, s.NumOps())
		}
		total += n
	}
	if total != gen.NumOps() {
		t.Fatalf("streams emitted %d total, want %d", total, gen.NumOps())
	}
}
