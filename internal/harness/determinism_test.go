package harness

import (
	"reflect"
	"runtime"
	"testing"

	"icash/internal/workload"
)

// determinismCases covers both issue paths (serial QD=1, event-engine
// QD>1, per-VM streams) on a single-machine and a multi-VM profile.
func determinismCases() []struct {
	name string
	p    workload.Profile
	opts workload.Options
} {
	return []struct {
		name string
		p    workload.Profile
		opts workload.Options
	}{
		{"sysbench-qd1", workload.SysBench(),
			workload.Options{Scale: 1.0 / 256, MaxOps: 1200, Seed: 42}},
		{"sysbench-qd8", workload.SysBench(),
			workload.Options{Scale: 1.0 / 256, MaxOps: 1200, Seed: 42, QueueDepth: 8}},
		{"tpcc5vm-streams", workload.TPCC5VM(),
			workload.Options{Scale: 1.0 / 256, MaxOps: 1200, Seed: 42, QueueDepth: 4, StreamPerVM: true}},
	}
}

// TestDeterminismAcrossGOMAXPROCS runs every system on each case
// repeatedly under different GOMAXPROCS settings and requires the
// Result structs — every counter, histogram bucket, and station
// snapshot — to be byte-identical. Run under -race this also proves the
// engine shares no state across goroutines: simulated time is
// single-threaded by construction.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, tc := range determinismCases() {
		t.Run(tc.name, func(t *testing.T) {
			var first map[Kind]*Result
			for run, procs := range []int{1, runtime.NumCPU(), 2} {
				runtime.GOMAXPROCS(procs)
				br, err := RunBenchmark(tc.p, tc.opts, nil)
				if err != nil {
					t.Fatalf("run %d (GOMAXPROCS=%d): %v", run, procs, err)
				}
				if run == 0 {
					first = br.Results
					continue
				}
				for _, k := range AllKinds() {
					if !reflect.DeepEqual(first[k], br.Results[k]) {
						t.Errorf("run %d (GOMAXPROCS=%d): %s result differs:\n got %+v\nwant %+v",
							run, procs, k, br.Results[k], first[k])
					}
				}
			}
		})
	}
}
