package harness

import (
	"fmt"
	"sort"
	"strings"

	"icash/internal/workload"
)

// Experiment maps one figure or table of the paper's §5 to the
// benchmark run that regenerates it and a renderer for its rows. The
// paper's reported values are embedded so every rendering shows
// measured-vs-paper side by side.
type Experiment struct {
	// ID is the figure/table identifier, e.g. "fig6a", "table6".
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Benchmark is the workload.Profile name driving the experiment.
	Benchmark string
	// Render formats the experiment's rows from a completed run.
	Render func(*BenchmarkRun) string
}

// paperFig holds the paper's per-system values in AllKinds order:
// FusionIO, RAID, Dedup, LRU, I-CASH.
type paperFig [5]float64

// renderSeries prints one value per system with the paper's number
// beside it; higher values are better.
func renderSeries(br *BenchmarkRun, metric string, paper paperFig, unit string,
	get func(*Result) float64) string {
	return renderSeriesDir(br, paper, unit, get, false)
}

// renderSeriesLow is renderSeries for lower-is-better metrics
// (latencies, execution time, energy, scores).
func renderSeriesLow(br *BenchmarkRun, paper paperFig, unit string,
	get func(*Result) float64) string {
	return renderSeriesDir(br, paper, unit, get, true)
}

func renderSeriesDir(br *BenchmarkRun, paper paperFig, unit string,
	get func(*Result) float64, lowerIsBetter bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "System", "measured", "paper")
	for i, k := range AllKinds() {
		r := br.Results[k]
		if r == nil {
			continue
		}
		fmt.Fprintf(&b, "%-10s %11.2f %s %11.2f %s\n", k.String(), get(r), unit, paper[i], unit)
	}
	b.WriteString(shapeNote(br, paper, get, lowerIsBetter))
	return b.String()
}

// shapeNote reports whether the measured winner matches the paper's —
// the reproduction criterion (who wins, not absolute values).
func shapeNote(br *BenchmarkRun, paper paperFig, get func(*Result) float64, lowerIsBetter bool) string {
	order := func(vals map[Kind]float64) []Kind {
		ks := append([]Kind(nil), AllKinds()...)
		sort.SliceStable(ks, func(i, j int) bool {
			if lowerIsBetter {
				return vals[ks[i]] < vals[ks[j]]
			}
			return vals[ks[i]] > vals[ks[j]]
		})
		return ks
	}
	measured := make(map[Kind]float64)
	reported := make(map[Kind]float64)
	for i, k := range AllKinds() {
		if r := br.Results[k]; r != nil {
			measured[k] = get(r)
		}
		reported[k] = paper[i]
	}
	mo, po := order(measured), order(reported)
	same := mo[0] == po[0]
	return fmt.Sprintf("best measured: %s; best in paper: %s; agreement: %v\n",
		mo[0], po[0], same)
}

// Experiments is the full per-experiment index (DESIGN.md §3): every
// figure and table in the paper's evaluation.
var Experiments = []Experiment{
	{
		ID: "fig6a", Title: "SysBench transaction rate (tx/s)", Benchmark: "SysBench",
		Render: func(br *BenchmarkRun) string {
			out := renderSeries(br, "tx/s", paperFig{180, 85, 161, 175, 190}, "tx/s",
				func(r *Result) float64 { return r.TxnPerSec })
			if r := br.Results[ICASH]; r != nil && r.ICASHStats != nil {
				ref, assoc, indep := r.KindCounts.Fractions()
				out += fmt.Sprintf("I-CASH block mix: %.0f%% reference / %.0f%% associate / %.0f%% independent (paper: 1/85/14)\n",
					100*ref, 100*assoc, 100*indep)
			}
			return out
		},
	},
	{
		ID: "fig6b", Title: "SysBench CPU utilization", Benchmark: "SysBench",
		Render: func(br *BenchmarkRun) string {
			return renderSeries(br, "util", paperFig{52, 53, 53, 56, 55}, "%",
				func(r *Result) float64 { return 100 * r.CPUUtil })
		},
	},
	{
		ID: "fig7", Title: "SysBench response time (µs)", Benchmark: "SysBench",
		Render: func(br *BenchmarkRun) string {
			out := "reads:\n" + renderSeriesLow(br, paperFig{35, 192, 71, 36, 18}, "µs",
				func(r *Result) float64 { return r.ReadLat.Mean().Microseconds() })
			out += "writes:\n" + renderSeriesLow(br, paperFig{75, 1156, 106, 122, 7}, "µs",
				func(r *Result) float64 { return r.WriteLat.Mean().Microseconds() })
			return out
		},
	},
	{
		ID: "fig8a", Title: "Hadoop execution time (s, lower is better)", Benchmark: "Hadoop",
		Render: func(br *BenchmarkRun) string {
			return renderSeriesLow(br, paperFig{24, 32, 26, 25, 18}, "s",
				func(r *Result) float64 { return r.Elapsed.Seconds() })
		},
	},
	{
		ID: "fig8b", Title: "Hadoop CPU utilization", Benchmark: "Hadoop",
		Render: func(br *BenchmarkRun) string {
			return renderSeries(br, "util", paperFig{83, 73, 82, 84, 86}, "%",
				func(r *Result) float64 { return 100 * r.CPUUtil })
		},
	},
	{
		ID: "fig9", Title: "Hadoop response time (µs)", Benchmark: "Hadoop",
		Render: func(br *BenchmarkRun) string {
			out := "reads:\n" + renderSeriesLow(br, paperFig{1311, 3959, 1712, 1699, 1368}, "µs",
				func(r *Result) float64 { return r.ReadLat.Mean().Microseconds() })
			out += "writes:\n" + renderSeriesLow(br, paperFig{7301, 3244, 7520, 7405, 586}, "µs",
				func(r *Result) float64 { return r.WriteLat.Mean().Microseconds() })
			return out
		},
	},
	{
		ID: "fig10a", Title: "TPC-C transaction rate (tx/s)", Benchmark: "TPC-C",
		Render: func(br *BenchmarkRun) string {
			return renderSeries(br, "tx/s", paperFig{51, 40, 49, 50, 58}, "tx/s",
				func(r *Result) float64 { return r.TxnPerSec })
		},
	},
	{
		ID: "fig10b", Title: "TPC-C CPU utilization", Benchmark: "TPC-C",
		Render: func(br *BenchmarkRun) string {
			return renderSeries(br, "util", paperFig{51, 41, 52, 61, 62}, "%",
				func(r *Result) float64 { return 100 * r.CPUUtil })
		},
	},
	{
		ID: "fig11", Title: "TPC-C application response time (ms, lower is better)", Benchmark: "TPC-C",
		Render: func(br *BenchmarkRun) string {
			return renderSeriesLow(br, paperFig{6.6, 14, 12, 7.1, 2.6}, "ms",
				func(r *Result) float64 { return txnLatencyMs(br, r) })
		},
	},
	{
		ID: "fig12", Title: "LoadSim score (lower is better)", Benchmark: "LoadSim",
		Render: func(br *BenchmarkRun) string {
			return renderSeriesLow(br, paperFig{1803, 5340, 3259, 3002, 2263}, "",
				func(r *Result) float64 { return loadSimScore(r) })
		},
	},
	{
		ID: "fig13", Title: "SPEC-sfs response time (ms, lower is better)", Benchmark: "SPEC-sfs",
		Render: func(br *BenchmarkRun) string {
			return renderSeriesLow(br, paperFig{1.4, 1.8, 2.1, 2.1, 1.5}, "ms",
				func(r *Result) float64 { return txnLatencyMs(br, r) })
		},
	},
	{
		ID: "fig14", Title: "RUBiS request rate (req/s)", Benchmark: "RUBiS",
		Render: func(br *BenchmarkRun) string {
			return renderSeries(br, "req/s", paperFig{84, 48, 59, 73, 76}, "req/s",
				func(r *Result) float64 { return r.TxnPerSec })
		},
	},
	{
		ID: "fig15", Title: "Five TPC-C VMs, normalized transaction rate", Benchmark: "TPC-C 5VMs",
		Render: func(br *BenchmarkRun) string {
			return renderNormalized(br, paperFig{1.0, 0.4, 0.5, 0.4, 2.8})
		},
	},
	{
		ID: "fig16", Title: "Five RUBiS VMs, normalized request rate", Benchmark: "RUBiS 5VMs",
		Render: func(br *BenchmarkRun) string {
			return renderNormalized(br, paperFig{1.0, 0.2, 0.3, 0.3, 1.2})
		},
	},
	{
		ID: "table5-hadoop", Title: "Power consumption, Hadoop (Wh)", Benchmark: "Hadoop",
		Render: func(br *BenchmarkRun) string {
			return renderSeriesLow(br, paperFig{8, 24, 10, 10, 7}, "Wh",
				func(r *Result) float64 { return r.WattHours })
		},
	},
	{
		ID: "table5-tpcc", Title: "Power consumption, TPC-C (Wh)", Benchmark: "TPC-C",
		Render: func(br *BenchmarkRun) string {
			return renderSeriesLow(br, paperFig{11, 28, 11, 12, 11}, "Wh",
				func(r *Result) float64 { return r.WattHours })
		},
	},
	{
		ID: "table6-sysbench", Title: "SSD write requests, SysBench", Benchmark: "SysBench",
		Render: renderTable6(paperFig{893700, 0, 1419023, 1494220, 232452}),
	},
	{
		ID: "table6-hadoop", Title: "SSD write requests, Hadoop", Benchmark: "Hadoop",
		Render: renderTable6(paperFig{2540124, 0, 3082196, 3469785, 1521399}),
	},
	{
		ID: "table6-tpcc", Title: "SSD write requests, TPC-C", Benchmark: "TPC-C",
		Render: renderTable6(paperFig{1173741, 0, 1963988, 2051511, 359919}),
	},
	{
		ID: "table6-specsfs", Title: "SSD write requests, SPEC-sfs", Benchmark: "SPEC-sfs",
		Render: renderTable6(paperFig{5752436, 0, 5559698, 5514935, 5096890}),
	},
}

// renderTable6 renders SSD write counts. The paper's Table 6 has no
// RAID row (no SSD); measured counts are scaled back to paper scale for
// an apples-to-apples magnitude comparison.
func renderTable6(paper paperFig) func(*BenchmarkRun) string {
	return func(br *BenchmarkRun) string {
		var b strings.Builder
		scale := float64(br.Profile.PaperOps()) / float64(opsOf(br))
		fmt.Fprintf(&b, "%-10s %14s %18s %14s\n", "System", "measured", "scaled-to-paper", "paper")
		for i, k := range AllKinds() {
			if k == RAID0 {
				continue // no SSD in the RAID0 system
			}
			r := br.Results[k]
			if r == nil {
				continue
			}
			fmt.Fprintf(&b, "%-10s %14d %18.0f %14.0f\n",
				k.String(), r.SSDHostWrites, float64(r.SSDHostWrites)*scale, paper[i])
		}
		icash, fio := br.Results[ICASH], br.Results[FusionIO]
		if icash != nil && fio != nil && fio.SSDHostWrites > 0 {
			fmt.Fprintf(&b, "I-CASH SSD writes vs FusionIO: %.2fx (paper: %.2fx)\n",
				float64(icash.SSDHostWrites)/float64(fio.SSDHostWrites), paper[4]/paper[0])
		}
		return b.String()
	}
}

// renderNormalized normalizes throughput to the FusionIO baseline, the
// way Figures 15 and 16 report.
func renderNormalized(br *BenchmarkRun, paper paperFig) string {
	base := br.Results[FusionIO]
	if base == nil || base.TxnPerSec == 0 {
		return "missing FusionIO baseline\n"
	}
	return renderSeries(br, "norm", paper, "x",
		func(r *Result) float64 { return r.TxnPerSec / base.TxnPerSec })
}

// txnLatencyMs reports the mean application-level transaction latency:
// IOsPerTxn requests' worth of compute plus I/O.
func txnLatencyMs(br *BenchmarkRun, r *Result) float64 {
	if r.TxnPerSec == 0 {
		return 0
	}
	return 1000 / r.TxnPerSec
}

// loadSimScore mimics LoadSim's weighted-latency score (lower is
// better): the mean request latency in tens of microseconds.
func loadSimScore(r *Result) float64 {
	reqLat := r.ReadLat.Sum() + r.WriteLat.Sum()
	n := r.ReadLat.Count() + r.WriteLat.Count()
	if n == 0 {
		return 0
	}
	return float64(reqLat) / float64(n) / 10_000
}

func opsOf(br *BenchmarkRun) int64 {
	for _, r := range br.Results {
		if r != nil {
			return r.Ops
		}
	}
	return 1
}

// ExperimentByID looks up one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentsForBenchmark lists the experiments rendered from one
// benchmark's run.
func ExperimentsForBenchmark(name string) []Experiment {
	var out []Experiment
	for _, e := range Experiments {
		if e.Benchmark == name {
			out = append(out, e)
		}
	}
	return out
}

// RunExperiments executes the benchmark for the named experiment IDs
// ("all" = every experiment), sharing one benchmark run across all the
// figures it feeds, and returns the rendered report.
//
// The work is flattened into a (profile, system) grid and fanned across
// Parallelism() workers — finer-grained than fanning whole benchmarks,
// so a five-system SysBench run does not serialize behind one worker
// while others idle. Rendering happens afterwards in Table4 order from
// results gathered by grid index, so the report is byte-identical to
// the serial harness's; on failure the report still contains every
// benchmark that completed before (in submission order) the first
// failing point, exactly like the historical sequential loop.
func RunExperiments(ids []string, opts workload.Options) (string, error) {
	want := make(map[string]bool)
	all := len(ids) == 0
	for _, id := range ids {
		if id == "all" {
			all = true
		}
		want[id] = true
	}
	// Group experiments by benchmark.
	benchNeeded := map[string]bool{}
	for _, e := range Experiments {
		if all || want[e.ID] {
			benchNeeded[e.Benchmark] = true
		}
	}
	var profiles []workload.Profile
	for _, p := range workload.Table4() {
		if benchNeeded[p.Name] {
			profiles = append(profiles, p)
		}
	}
	kinds := AllKinds()
	cfgs := make([]BuildConfig, len(profiles))
	for i, p := range profiles {
		cfgs[i] = benchConfig(p, opts)
	}
	type gridPoint struct {
		profile int
		kind    Kind
	}
	var grid []gridPoint
	for pi := range profiles {
		for _, k := range kinds {
			grid = append(grid, gridPoint{profile: pi, kind: k})
		}
	}
	points := make([]pointResult, len(grid))
	errs := make([]error, len(grid))
	firstErr := ForEachPoint(len(grid), func(i int) error {
		g := grid[i]
		pt, err := runPoint(profiles[g.profile], opts, cfgs[g.profile], g.kind)
		if err != nil {
			errs[i] = err
			return err
		}
		points[i] = pt
		return nil
	})
	// The first failing grid index (the same failure a serial loop would
	// hit first — ForEachPoint returns exactly that error) truncates the
	// report at its benchmark's boundary.
	failProfile := len(profiles)
	if firstErr != nil {
		for i, err := range errs {
			if err != nil {
				failProfile = grid[i].profile
				break
			}
		}
	}
	var b strings.Builder
	for pi, p := range profiles {
		if pi >= failProfile {
			break
		}
		br := &BenchmarkRun{Profile: p, Opts: opts, Order: kinds, Results: make(map[Kind]*Result)}
		for gi, g := range grid {
			if g.profile != pi {
				continue
			}
			br.Results[g.kind] = points[gi].res
			if points[gi].icash != nil {
				br.SysICASH = points[gi].icash
			}
			if points[gi].sharded != nil {
				br.SysSharded = points[gi].sharded
			}
		}
		for _, e := range ExperimentsForBenchmark(p.Name) {
			if !all && !want[e.ID] {
				continue
			}
			fmt.Fprintf(&b, "=== %s: %s ===\n", e.ID, e.Title)
			b.WriteString(e.Render(br))
			b.WriteString("\n")
		}
	}
	return b.String(), firstErr
}
