package harness

import (
	"reflect"
	"testing"

	"icash/internal/fault"
	"icash/internal/workload"
)

// TestEmptyFaultLayerBitIdentical is the fail-slow machinery's
// do-no-harm regression: building the I-CASH stack with the full fault
// layer armed but inert — fault wrappers with zero rates, an empty
// fail-slow schedule installed as station shaper, the slow detector
// watching — must leave a QD=1 run bit-identical to a build with no
// fault layer at all. Every counter, latency bucket, and controller
// stat has to match; the chaos harness's ablation arms depend on the
// instrumentation itself being latency- and behavior-neutral.
func TestEmptyFaultLayerBitIdentical(t *testing.T) {
	p := workload.SysBench()
	opts := workload.Options{Scale: 1.0 / 256, MaxOps: 1500, Seed: 42}

	run := func(withFaultLayer bool) *Result {
		gen := workload.NewGenerator(p, opts)
		cfg := BuildConfig{
			DataBlocks:     gen.DataBlocks(),
			SSDCacheBlocks: gen.DataBlocks() / 2,
		}
		if withFaultLayer {
			plan := &fault.Schedule{Seed: opts.Seed}
			cfg.FaultSSD = &fault.Config{Seed: 1, Plan: plan}
			cfg.FaultHDD = &fault.Config{Seed: 2, Plan: plan}
			cfg.SlowDetector = true
		}
		sys, err := Build(ICASH, cfg)
		if err != nil {
			t.Fatalf("build (fault layer %v): %v", withFaultLayer, err)
		}
		gen.Reset()
		sys.SetFill(gen.Fill)
		if err := Populate(sys, gen); err != nil {
			t.Fatalf("populate (fault layer %v): %v", withFaultLayer, err)
		}
		res, err := Run(sys, gen)
		if err != nil {
			t.Fatalf("run (fault layer %v): %v", withFaultLayer, err)
		}
		return res
	}

	bare, layered := run(false), run(true)

	// The layered run reports its (all-zero-fault) injector stats; blank
	// them so the comparison covers everything the workload observed.
	if layered.SSDFaultStats == nil || layered.HDDFaultStats == nil {
		t.Fatal("fault layer build did not report injector stats")
	}
	if layered.SSDFaultStats.MediaErrors != 0 || layered.SSDFaultStats.SlowOps != 0 {
		t.Fatalf("inert fault layer injected faults: %+v", layered.SSDFaultStats)
	}
	layered.SSDFaultStats, layered.HDDFaultStats = nil, nil

	if !reflect.DeepEqual(bare, layered) {
		t.Fatalf("empty fault layer changed the run:\n bare    %+v\n layered %+v", bare, layered)
	}
}
