package harness

import (
	"strings"
	"testing"

	"icash/internal/workload"
)

// testOpts keeps harness tests fast (1/256 of the paper's sizes).
var testOpts = workload.Options{Scale: 1.0 / 256, Seed: 42}

func runBench(t *testing.T, p workload.Profile) *BenchmarkRun {
	t.Helper()
	br, err := RunBenchmark(p, testOpts, nil)
	if err != nil {
		t.Fatalf("RunBenchmark(%s): %v", p.Name, err)
	}
	for _, k := range AllKinds() {
		r := br.Results[k]
		if r == nil {
			t.Fatalf("%s: missing result for %s", p.Name, k)
		}
		t.Logf("%-9s tx/s=%7.1f rd=%8.1fµs wr=%7.1fµs ssdW=%7d elapsed=%v",
			k, r.TxnPerSec, r.ReadLat.Mean().Microseconds(), r.WriteLat.Mean().Microseconds(),
			r.SSDHostWrites, r.Elapsed)
	}
	return br
}

func tx(br *BenchmarkRun, k Kind) float64 { return br.Results[k].TxnPerSec }

// TestSysBenchShape asserts the paper's Figure 6(a)/7 ordering: I-CASH
// fastest, then Fusion-io, then the SSD caches, RAID0 behind them; and
// I-CASH's writes are far cheaper than everyone's.
func TestSysBenchShape(t *testing.T) {
	br := runBench(t, workload.SysBench())
	if !(tx(br, ICASH) > tx(br, FusionIO)) {
		t.Errorf("I-CASH (%f) must beat FusionIO (%f) on SysBench", tx(br, ICASH), tx(br, FusionIO))
	}
	if !(tx(br, FusionIO) > tx(br, LRU) && tx(br, LRU) > tx(br, RAID0)) {
		t.Errorf("ordering FusionIO > LRU > RAID violated: %f %f %f",
			tx(br, FusionIO), tx(br, LRU), tx(br, RAID0))
	}
	ic, fio := br.Results[ICASH], br.Results[FusionIO]
	if ic.WriteLat.Mean() >= fio.WriteLat.Mean() {
		t.Errorf("I-CASH write latency %v must undercut FusionIO %v",
			ic.WriteLat.Mean(), fio.WriteLat.Mean())
	}
	// Table 6: I-CASH performs a small fraction of FusionIO's SSD writes.
	if ic.SSDHostWrites*2 > fio.SSDHostWrites {
		t.Errorf("I-CASH SSD writes %d not well below FusionIO %d",
			ic.SSDHostWrites, fio.SSDHostWrites)
	}
	// §5.1: the vast majority of blocks become associates.
	_, assoc, _ := ic.KindCounts.Fractions()
	if assoc < 0.5 {
		t.Errorf("associate fraction %f, paper reports 85%%", assoc)
	}
}

// TestTPCCShape asserts Figure 10(a)'s top group: I-CASH and Fusion-io
// lead (within a whisker of each other), both far ahead of RAID and the
// caches.
func TestTPCCShape(t *testing.T) {
	br := runBench(t, workload.TPCC())
	if tx(br, ICASH) < 0.9*tx(br, FusionIO) {
		t.Errorf("I-CASH (%f) must be within 10%% of FusionIO (%f)", tx(br, ICASH), tx(br, FusionIO))
	}
	if !(tx(br, ICASH) > 1.5*tx(br, RAID0)) {
		t.Errorf("I-CASH must clearly beat RAID0: %f vs %f", tx(br, ICASH), tx(br, RAID0))
	}
}

// TestRUBiSShape asserts Figure 14: on read-dominated RUBiS the pure
// SSD and I-CASH form the leading pair (the paper has Fusion-io ahead
// by 10%; the simulation lands them within a few percent — a tie at a
// tenth of the SSD space), both far ahead of the caches and RAID.
func TestRUBiSShape(t *testing.T) {
	br := runBench(t, workload.RUBiS())
	lead, chase := tx(br, FusionIO), tx(br, ICASH)
	if chase > lead {
		lead, chase = chase, lead
	}
	if chase < 0.85*lead {
		t.Errorf("FusionIO (%f) and I-CASH (%f) should be within 15%% on RUBiS",
			tx(br, FusionIO), tx(br, ICASH))
	}
	if !(tx(br, ICASH) > tx(br, LRU) && tx(br, ICASH) > tx(br, Dedup) && tx(br, ICASH) > tx(br, RAID0)) {
		t.Error("I-CASH must beat the caches and RAID on RUBiS")
	}
}

// TestMultiVMShape asserts Figures 15/16: with five cloned VMs, I-CASH's
// cross-image reference sharing makes it the fastest system.
func TestMultiVMShape(t *testing.T) {
	for _, p := range []workload.Profile{workload.TPCC5VM(), workload.RUBiS5VM()} {
		br := runBench(t, p)
		if !(tx(br, ICASH) > tx(br, FusionIO)) {
			t.Errorf("%s: I-CASH (%f) must beat FusionIO (%f)", p.Name, tx(br, ICASH), tx(br, FusionIO))
		}
		for _, k := range []Kind{RAID0, Dedup, LRU} {
			if !(tx(br, ICASH) > 2*tx(br, k)) {
				t.Errorf("%s: I-CASH (%f) must be far ahead of %s (%f)", p.Name, tx(br, ICASH), k, tx(br, k))
			}
		}
	}
}

// TestDeterminism: identical options reproduce identical results.
func TestDeterminism(t *testing.T) {
	p := workload.SysBench()
	a, err := RunBenchmark(p, testOpts, []Kind{ICASH})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark(p, testOpts, []Kind{ICASH})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Results[ICASH], b.Results[ICASH]
	if ra.Elapsed != rb.Elapsed || ra.SSDHostWrites != rb.SSDHostWrites ||
		ra.ReadLat.Mean() != rb.ReadLat.Mean() {
		t.Fatalf("non-deterministic: %v/%d vs %v/%d",
			ra.Elapsed, ra.SSDHostWrites, rb.Elapsed, rb.SSDHostWrites)
	}
}

// TestExperimentRegistry checks the per-experiment index is complete
// and renders.
func TestExperimentRegistry(t *testing.T) {
	wantIDs := []string{
		"fig6a", "fig6b", "fig7", "fig8a", "fig8b", "fig9",
		"fig10a", "fig10b", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16",
		"table5-hadoop", "table5-tpcc",
		"table6-sysbench", "table6-hadoop", "table6-tpcc", "table6-specsfs",
	}
	for _, id := range wantIDs {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Errorf("experiment %s missing from the registry", id)
			continue
		}
		if _, ok := workload.ByName(e.Benchmark); !ok {
			t.Errorf("%s references unknown benchmark %q", id, e.Benchmark)
		}
	}
	if len(Experiments) != len(wantIDs) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments), len(wantIDs))
	}
}

// TestRunExperimentsRenders runs one benchmark's experiments end to end
// through the public entry point.
func TestRunExperimentsRenders(t *testing.T) {
	out, err := RunExperiments([]string{"fig6a", "fig6b", "fig7"}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig6a", "I-CASH", "paper", "block mix"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestPageCache covers the guest page-cache model.
func TestPageCache(t *testing.T) {
	pc := newPageCache(2)
	if pc.lookup(1) {
		t.Fatal("empty cache hit")
	}
	pc.insert(1)
	pc.insert(2)
	if !pc.lookup(1) || !pc.lookup(2) {
		t.Fatal("expected hits")
	}
	pc.insert(3) // evicts LRU (1 was looked up before 2... order: 2,1 -> evict 1? lookup order made 2 most recent)
	hits := 0
	for _, lba := range []int64{1, 2, 3} {
		if pc.lookup(lba) {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("expected exactly 2 survivors, got %d", hits)
	}
	if pc.hitRatio() <= 0 {
		t.Fatal("hit ratio")
	}
	// Disabled cache.
	off := newPageCache(0)
	off.insert(5)
	if off.lookup(5) {
		t.Fatal("zero-capacity cache must never hit")
	}
}

// TestBuildValidation covers builder error paths.
func TestBuildValidation(t *testing.T) {
	if _, err := Build(ICASH, BuildConfig{}); err == nil {
		t.Error("zero DataBlocks must fail")
	}
	if _, err := Build(Kind(99), BuildConfig{DataBlocks: 1024}); err == nil {
		t.Error("unknown kind must fail")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind string")
	}
}
