package harness

// pageCache models the guest operating system's page cache, which sits
// above the virtual disk in the paper's KVM prototype (§4.1). Every
// system under test gets an identical instance sized from the
// benchmark's VM RAM (Table 4), so differences between systems come
// from the storage stack, not from caching above it.
//
// The cache tracks presence only (contents live on the devices) with an
// LRU policy; reads that hit never reach the storage system, writes are
// write-through (databases and file servers issue synchronous writes).
type pageCache struct {
	capacity int
	index    map[int64]*pcEntry
	head     *pcEntry
	tail     *pcEntry

	hits, misses int64
}

type pcEntry struct {
	lba        int64
	prev, next *pcEntry
}

func newPageCache(capacity int) *pageCache {
	return &pageCache{capacity: capacity, index: make(map[int64]*pcEntry, capacity)}
}

func (p *pageCache) pushFront(e *pcEntry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

func (p *pageCache) unlink(e *pcEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lookup reports whether lba is cached, updating recency and counters.
func (p *pageCache) lookup(lba int64) bool {
	if p.capacity <= 0 {
		p.misses++
		return false
	}
	if e, ok := p.index[lba]; ok {
		if p.head != e {
			p.unlink(e)
			p.pushFront(e)
		}
		p.hits++
		return true
	}
	p.misses++
	return false
}

// insert caches lba (no-op when already present), evicting LRU entries.
func (p *pageCache) insert(lba int64) {
	if p.capacity <= 0 {
		return
	}
	if e, ok := p.index[lba]; ok {
		if p.head != e {
			p.unlink(e)
			p.pushFront(e)
		}
		return
	}
	if len(p.index) >= p.capacity {
		// Recycle the evicted entry in place of a fresh allocation: once
		// the cache is warm, steady-state inserts allocate nothing.
		victim := p.tail
		p.unlink(victim)
		delete(p.index, victim.lba)
		victim.lba = lba
		p.index[lba] = victim
		p.pushFront(victim)
		return
	}
	e := &pcEntry{lba: lba}
	p.index[lba] = e
	p.pushFront(e)
}

// hitRatio returns hits/(hits+misses).
func (p *pageCache) hitRatio() float64 {
	t := p.hits + p.misses
	if t == 0 {
		return 0
	}
	return float64(p.hits) / float64(t)
}
