package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic parallel experiment scheduler. Independent experiment
// points — one (profile, system-kind, queue-depth) combination each —
// share no mutable state: every point builds its own System (fresh
// clock, devices, controller, CPU accountant) and its own workload
// generator, and the simulation inside a point is single-threaded as
// ever. Fanning points out across a worker pool therefore changes
// wall-clock time only; every simulated number is produced by exactly
// the same code on exactly the same inputs, and results are gathered
// back in submission order. Parallel across runs, never within a run
// (DESIGN.md §11).

// parallelism is the worker count for ForEachPoint; 0 means GOMAXPROCS.
var parallelism atomic.Int32

// SetParallelism sets how many experiment points may run concurrently.
// n <= 0 restores the default (GOMAXPROCS). 1 runs every point inline
// on the calling goroutine in submission order — byte-identical to, and
// exactly as lazy as, the historical serial harness.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the current worker count for experiment points.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachPoint runs fn(0..n-1), fanning across min(Parallelism(), n)
// workers. Results must be gathered by index into caller-owned slices —
// that is what keeps the output independent of completion order. The
// returned error is the lowest-index failure (the same one a serial
// loop would hit first), so error reporting is deterministic too. With
// one worker the calling goroutine runs every point itself, stopping at
// the first failure exactly like the historical loop.
//
// This is the module's blessed fan-out primitive: every package that
// wants experiment-point parallelism routes through it (the goroutines
// analyzer rejects hand-rolled worker pools in internal/), so the
// determinism argument — independent points, index-gathered results,
// lowest-index error — lives in exactly one place.
func ForEachPoint(n int, fn func(int) error) error {
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
