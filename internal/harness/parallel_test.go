package harness

import (
	"fmt"
	"reflect"
	"testing"

	"icash/internal/workload"
)

// The scoreboard-equality battery: the parallel scheduler must not
// change a single simulated number, whatever the worker count. Each
// test runs the same entry point at parallelism 1 (the historical
// serial loop), 2, and 8 and demands deep equality — and, for the
// rendered entry points, byte-for-byte string equality. Run under
// -race these tests double as the data-race proof for the fan-out.

// withParallelism runs fn at the given worker count, restoring the
// previous setting afterwards so tests do not leak configuration.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := int(parallelism.Load())
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

// resultsOf strips a BenchmarkRun to its comparable payload: the
// per-system Results in order. SysICASH is a live controller handle
// (pointer identity differs run to run) and is excluded.
func resultsOf(br *BenchmarkRun) []*Result {
	out := make([]*Result, 0, len(br.Order))
	for _, k := range br.Order {
		out = append(out, br.Results[k])
	}
	return out
}

func TestRunBenchmarkSerialParallelIdentical(t *testing.T) {
	p := workload.SysBench()
	opts := workload.Options{Scale: 1.0 / 256, MaxOps: 1200, Seed: 42}
	var runs [][]*Result
	for _, n := range []int{1, 2, 8} {
		withParallelism(t, n, func() {
			br, err := RunBenchmark(p, opts, nil)
			if err != nil {
				t.Fatalf("parallelism %d: %v", n, err)
			}
			runs = append(runs, resultsOf(br))
		})
	}
	for i := 1; i < len(runs); i++ {
		if !reflect.DeepEqual(runs[0], runs[i]) {
			t.Fatalf("RunBenchmark results diverge between parallelism 1 and %d", []int{1, 2, 8}[i])
		}
	}
}

func TestRunExperimentsSerialParallelIdentical(t *testing.T) {
	ids := []string{"fig6a", "fig7", "table6-sysbench", "fig10a"}
	opts := workload.Options{Scale: 1.0 / 256, MaxOps: 1200, Seed: 42}
	var reports []string
	for _, n := range []int{1, 2, 8} {
		withParallelism(t, n, func() {
			out, err := RunExperiments(ids, opts)
			if err != nil {
				t.Fatalf("parallelism %d: %v", n, err)
			}
			reports = append(reports, out)
		})
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("RunExperiments report diverges between parallelism 1 and %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
				[]int{1, 2, 8}[i], reports[0], reports[i])
		}
	}
}

func TestQDSweepSerialParallelIdentical(t *testing.T) {
	opts := workload.Options{Scale: QDSweepScale, MaxOps: 1000, Seed: 42}
	depths := []int{1, 2, 4, 8}
	var reports []string
	for _, n := range []int{1, 2, 8} {
		withParallelism(t, n, func() {
			out, err := QDSweep(depths, opts)
			if err != nil {
				t.Fatalf("parallelism %d: %v", n, err)
			}
			reports = append(reports, out)
		})
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("QDSweep report diverges between parallelism 1 and %d", []int{1, 2, 8}[i])
		}
	}
}

func TestForEachPointOrderAndErrors(t *testing.T) {
	// Lowest-index error wins deterministically, at any worker count.
	for _, n := range []int{1, 3, 16} {
		withParallelism(t, n, func() {
			visited := make([]bool, 40)
			err := ForEachPoint(len(visited), func(i int) error {
				visited[i] = true
				if i == 7 || i == 23 {
					return errAt(i)
				}
				return nil
			})
			if err == nil || err.Error() != errAt(7).Error() {
				t.Fatalf("parallelism %d: got %v, want lowest-index error %v", n, err, errAt(7))
			}
			if n == 1 {
				// Serial mode stops at the first failure, like the
				// historical loop.
				for i := 8; i < len(visited); i++ {
					if visited[i] {
						t.Fatalf("serial mode ran index %d after failure at 7", i)
					}
				}
			}
		})
	}
}

func errAt(i int) error { return fmt.Errorf("point %d failed", i) }
