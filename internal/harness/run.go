package harness

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/fault"
	"icash/internal/metrics"
	"icash/internal/power"
	"icash/internal/sim"
	"icash/internal/workload"
)

// pageCacheHitLatency is the service time of a guest page-cache hit.
const pageCacheHitLatency = 2 * sim.Microsecond

// Result is one (system, benchmark) measurement, carrying everything
// any figure or table of §5 needs.
type Result struct {
	System    string
	Benchmark string

	Ops    int64
	Reads  int64 // block reads issued to the system (page-cache misses)
	Writes int64

	// ReadLat and WriteLat are block-level response-time distributions,
	// including guest page-cache hits (the prototype measures at the
	// virtual-disk level).
	ReadLat  metrics.LatencyRecorder
	WriteLat metrics.LatencyRecorder
	// ReadHist and WriteHist bucket the same samples for percentile
	// reporting (p50/p95/p99/p999) — tail latency is the signal the
	// fail-slow experiments care about, and means hide it.
	ReadHist  metrics.Histogram
	WriteHist metrics.Histogram

	Elapsed   sim.Duration
	TxnPerSec float64
	ReqPerSec float64
	CPUUtil   float64

	PageCacheHitRatio float64

	// QueueDepth and Streams describe the issue mode that produced the
	// result: outstanding requests per stream and number of interleaved
	// per-VM streams (1 each on the classic serial path).
	QueueDepth int
	Streams    int
	// QueueWait is the per-block device queueing delay distribution
	// (zero on the serial path: one request never queues).
	QueueWait metrics.LatencyRecorder
	// Stations is the per-station utilization/queue accounting from the
	// concurrency engine; nil on the serial path.
	Stations []metrics.StationStats

	// SSD wear metrics (Table 6 and §5.3).
	SSDHostWrites int64
	SSDErases     int64
	SSDWriteAmp   float64

	// HDDBusy is total mechanical busy time across disks.
	HDDBusy sim.Duration
	// HDDOps counts requests reaching the disks.
	HDDOps int64

	// WattHours is the paper's Table 5 energy metric.
	WattHours float64

	// ICASHStats is a copy of the controller stats (I-CASH runs only).
	ICASHStats *core.Stats
	// KindCounts is the block-population mix (I-CASH runs only).
	KindCounts core.KindCounts

	// Degraded reports whether the controller finished the run in
	// HDD-only degraded mode (fault-injection runs only).
	Degraded bool
	// SSDFaultStats / HDDFaultStats are the injector's accounting when
	// the build requested fault injection; nil otherwise.
	SSDFaultStats *fault.Stats
	HDDFaultStats *fault.Stats
}

// Populate writes the whole data set through the system, mirroring the
// benchmarks\' own setup phases (database load, VM image creation,
// §4.4): by the time measurement starts the storage system has seen the
// data, I-CASH has selected references, and caches hold their steady
// working sets. Populate time and device activity are not measured.
func Populate(sys *System, gen *workload.Generator) error {
	if sys.Sharded != nil && sys.Sharded.NumShards() > 1 {
		return populateSharded(sys, gen)
	}
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	n := gen.DataBlocks()
	if n > sys.Dev.Blocks() {
		n = sys.Dev.Blocks()
	}
	for lba := int64(0); lba < n; lba++ {
		gen.Fill(lba, buf)
		if _, err := sys.Dev.WriteBlock(lba, buf); err != nil {
			return fmt.Errorf("harness: %s populate lba %d: %w", sys.Name(), lba, err)
		}
		sys.Clock.Advance(10 * sim.Microsecond)
	}
	if err := sys.Flush(); err != nil {
		return err
	}
	sys.ResetStats()
	return nil
}

// populateSharded loads the data set one shard at a time, fanned across
// ForEachPoint workers — the shard-worker count is Parallelism(), and
// the result is byte-identical at every worker count:
//
//   - shards share no mutable state (own devices, own controller, own
//     CPU accountant), so each worker's writes are a closed system;
//   - the clock is never advanced inside the fan (nothing in the write
//     path reads it, and the scrubber — the controller's only clock
//     reader — cannot fire at a frozen instant); the serial populate's
//     total advance (10 µs per block) is applied once after the join;
//   - each worker uses a fresh generator clone: Fill is deterministic
//     per (profile, options, lba) but memoizes family bases, so clones
//     keep the oracle race-free, and each shard's devices get the
//     clone's fill through the shard-local translation.
func populateSharded(sys *System, gen *workload.Generator) error {
	sc := sys.Sharded
	per := sc.ShardBlocks()
	n := gen.DataBlocks()
	if n > sc.Blocks() {
		n = sc.Blocks()
	}
	p, opts := gen.Profile(), gen.Options()
	err := ForEachPoint(sc.NumShards(), func(i int) error {
		g := workload.NewGenerator(p, opts)
		sys.SetShardFill(i, g.Fill)
		lo, hi := int64(i)*per, int64(i+1)*per
		if hi > n {
			hi = n
		}
		buf := blockdev.GetBlock()
		defer blockdev.PutBlock(buf)
		for lba := lo; lba < hi; lba++ {
			g.Fill(lba, buf)
			if _, err := sc.Shard(i).WriteBlock(lba-lo, buf); err != nil {
				return fmt.Errorf("harness: %s populate shard %d lba %d: %w", sys.Name(), i, lba, err)
			}
		}
		if err := sc.Shard(i).Flush(); err != nil {
			return fmt.Errorf("harness: %s populate shard %d flush: %w", sys.Name(), i, err)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sys.Clock.Advance(sim.Duration(n) * 10 * sim.Microsecond)
	sys.ResetStats()
	return nil
}

// Run drives gen against sys to completion and collects a Result. The
// generator must be freshly Reset; the system must be freshly built.
// Populate is normally called first.
//
// The issue mode comes from the generator's options: QueueDepth <= 1
// with a single stream takes the classic serial path (one request at a
// time on the shared clock — bit-identical to the pre-engine harness);
// anything else runs on the discrete-event engine with overlapping
// requests.
func Run(sys *System, gen *workload.Generator) (*Result, error) {
	opts := gen.Options()
	qd := opts.QueueDepth
	if qd < 1 {
		qd = 1
	}
	streams := []*workload.Generator{gen}
	if opts.StreamPerVM {
		if vs := gen.VMStreams(); vs != nil {
			streams = vs
		}
	}
	if qd <= 1 && len(streams) == 1 {
		return runSerial(sys, gen)
	}
	return runConcurrent(sys, gen, streams, qd)
}

// runSerial is the classic one-request-at-a-time path: the clock
// advances by each request's full service time before the next request
// issues. Kept verbatim so QD=1 single-stream results stay bit-identical
// across the engine's introduction.
func runSerial(sys *System, gen *workload.Generator) (*Result, error) {
	p := gen.Profile()
	res := &Result{System: sys.Name(), Benchmark: p.Name}
	sys.SetFill(gen.Fill)

	// Guest page cache: the profile's PCFraction of VM RAM, scaled like
	// the data set (databases with direct I/O barely use it; file and
	// mail servers cache aggressively).
	frac := p.PCFraction
	if frac <= 0 {
		frac = 0.25
	}
	pcBlocks := int(frac * float64(p.VMRAMBytes/blockdev.BlockSize) *
		float64(gen.DataBlocks()) / float64(p.DataBlocks()))
	pc := newPageCache(pcBlocks)

	clock := sys.Clock
	buf := blockdev.GetBlock()
	defer blockdev.PutBlock(buf)
	start := clock.Now()

	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		res.Ops++
		sys.CPU.ChargeApp(p.AppCPU)
		clock.Advance(p.AppCPU)
		for i := 0; i < req.Blocks; i++ {
			lba := req.LBA + int64(i)
			if lba >= sys.Dev.Blocks() {
				break
			}
			if req.Write {
				gen.WriteContent(lba, buf)
				d, err := sys.Dev.WriteBlock(lba, buf)
				if err != nil {
					return nil, fmt.Errorf("harness: %s write lba %d: %w", sys.Name(), lba, err)
				}
				pc.insert(lba)
				res.Writes++
				res.WriteLat.Record(d)
				res.WriteHist.Record(d)
				clock.Advance(d)
			} else {
				if pc.lookup(lba) {
					res.ReadLat.Record(pageCacheHitLatency)
					res.ReadHist.Record(pageCacheHitLatency)
					clock.Advance(pageCacheHitLatency)
					continue
				}
				d, err := sys.Dev.ReadBlock(lba, buf)
				if err != nil {
					return nil, fmt.Errorf("harness: %s read lba %d: %w", sys.Name(), lba, err)
				}
				pc.insert(lba)
				res.Reads++
				res.ReadLat.Record(d)
				res.ReadHist.Record(d)
				clock.Advance(d)
			}
		}
	}
	if err := sys.Flush(); err != nil {
		return nil, fmt.Errorf("harness: %s flush: %w", sys.Name(), err)
	}

	res.QueueDepth = 1
	res.Streams = 1
	res.PageCacheHitRatio = pc.hitRatio()
	finalize(sys, res, p, start)
	return res, nil
}

// finalize computes the derived measurements of a finished run (rates,
// CPU utilization, device and power accounting) from the system's
// current state. Shared by the serial and concurrent paths.
func finalize(sys *System, res *Result, p workload.Profile, start sim.Time) {
	clock := sys.Clock
	res.Elapsed = clock.Now().Sub(start)
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		res.ReqPerSec = float64(res.Ops) / secs
		txn := p.IOsPerTxn
		if txn <= 0 {
			txn = 1
		}
		res.TxnPerSec = float64(res.Ops) / float64(txn) / secs
	}

	// CPU utilization: the benchmark's application level plus the
	// storage stack's measured compute share (the paper's figures show
	// I-CASH adding a few percent at most).
	storageShare := 0.0
	if res.Elapsed > 0 {
		storageShare = float64(sys.StorageCPUTime()) / float64(res.Elapsed)
	}
	res.CPUUtil = p.BaseCPUUtil + storageShare
	if res.CPUUtil > 0.99 {
		res.CPUUtil = 0.99
	}

	// Device-level accounting.
	var usage power.Usage
	usage.CPUBusy = sys.CPUBusy()
	if ssdStats := sys.ssdStats(); ssdStats != nil {
		st := *ssdStats
		res.SSDHostWrites = st.HostWrites
		res.SSDErases = st.Erases
		res.SSDWriteAmp = st.WriteAmplification()
		usage.SSDReads = st.Reads
		usage.SSDWrites = st.HostWrites
		usage.SSDErases = st.Erases
	}
	for _, h := range sys.HDDs {
		res.HDDBusy += h.Stats.ReadTime + h.Stats.WriteTime
		res.HDDOps += h.Stats.Ops()
	}
	usage.HDDBusy = res.HDDBusy
	res.WattHours = power.DefaultModel().WattHours(usage)

	if sys.ICASH != nil {
		st := sys.ICASH.Stats
		res.ICASHStats = &st
		res.KindCounts = sys.ICASH.KindCounts()
		res.Degraded = sys.ICASH.Degraded()
	} else if sys.Sharded != nil {
		st := sys.Sharded.Stats()
		res.ICASHStats = &st
		res.KindCounts = sys.Sharded.KindCounts()
		res.Degraded = sys.Sharded.Degraded()
	}
	if sys.SSDFault != nil {
		st := sys.SSDFault.Stats
		res.SSDFaultStats = &st
	}
	if sys.HDDFault != nil {
		st := sys.HDDFault.Stats
		res.HDDFaultStats = &st
	}
}

// BenchmarkRun bundles the per-system results of one benchmark.
type BenchmarkRun struct {
	Profile workload.Profile
	Opts    workload.Options
	Order   []Kind
	Results map[Kind]*Result
	// SysICASH keeps the I-CASH controller handle for inspection tools
	// (nil on sharded runs; SysSharded carries the composed handle then).
	SysICASH *core.Controller
	// SysSharded is the composed sharded controller when the run built
	// with Shards > 1; inspection tools break out per-shard state from
	// it.
	SysSharded *core.ShardedController
}

// benchConfig derives the scaled build configuration for profile p.
// It is computed once per benchmark and shared read-only by every
// (profile, system) point.
func benchConfig(p workload.Profile, opts workload.Options) BuildConfig {
	gen := workload.NewGenerator(p, opts)
	scale := float64(gen.DataBlocks()) / float64(p.DataBlocks())
	cfg := BuildConfig{
		DataBlocks:     gen.DataBlocks(),
		SSDCacheBlocks: scaleBlocks(p.SSDCacheBytes, scale),
		DeltaRAMBytes:  scaleBytes(p.DeltaRAMBytes, scale),
		DataRAMBytes:   scaleBytes(p.DeltaRAMBytes, scale),
	}
	// Scale compensation: synthetic deltas carry fixed overheads
	// (64-byte segments, op headers) that do not shrink with the data
	// set the way real content does, so guarantee the delta buffer can
	// hold a fully delta-represented data set (~512 B/block).
	if min := gen.DataBlocks() * 512; cfg.DeltaRAMBytes < min {
		cfg.DeltaRAMBytes = min
	}
	if p.VMs > 1 {
		cfg.VMImageBlocks = gen.ImageBlocks()
	}
	cfg.Tune = opts.TuneICASH
	cfg.Shards = Shards()
	return cfg
}

// ConfigForProfile returns the scaled build configuration RunBenchmark
// would use for profile p — the hook external run-drivers (the block-
// service front-end) use to build systems identical to the in-process
// harness's, so served and direct runs are comparable point for point.
func ConfigForProfile(p workload.Profile, opts workload.Options) BuildConfig {
	return benchConfig(p, opts)
}

// pointResult is the output of one independent experiment point.
type pointResult struct {
	res     *Result
	icash   *core.Controller
	sharded *core.ShardedController
}

// runPoint executes one (profile, system) point in full isolation: a
// fresh system build and a fresh workload generator, so concurrent
// points share nothing mutable. A fresh generator is equivalent to the
// historical shared-generator-plus-Reset pattern (NewGenerator is
// Reset), so the simulated numbers are bit-identical either way.
func runPoint(p workload.Profile, opts workload.Options, cfg BuildConfig, k Kind) (pointResult, error) {
	sys, err := Build(k, cfg)
	if err != nil {
		return pointResult{}, err
	}
	gen := workload.NewGenerator(p, opts)
	sys.SetFill(gen.Fill)
	if err := Populate(sys, gen); err != nil {
		return pointResult{}, fmt.Errorf("harness: %s on %s: %w", p.Name, k, err)
	}
	res, err := Run(sys, gen)
	if err != nil {
		return pointResult{}, fmt.Errorf("harness: %s on %s: %w", p.Name, k, err)
	}
	return pointResult{res: res, icash: sys.ICASH, sharded: sys.Sharded}, nil
}

// RunBenchmark executes profile p on each requested system (all five
// when systems is nil) with identical request streams. The per-system
// points are independent and fan across Parallelism() workers; results
// are gathered in the systems' submission order, so the BenchmarkRun is
// identical whatever the worker count.
func RunBenchmark(p workload.Profile, opts workload.Options, systems []Kind) (*BenchmarkRun, error) {
	if systems == nil {
		systems = AllKinds()
	}
	br := &BenchmarkRun{Profile: p, Opts: opts, Order: systems, Results: make(map[Kind]*Result)}
	cfg := benchConfig(p, opts)
	points := make([]pointResult, len(systems))
	err := ForEachPoint(len(systems), func(i int) error {
		pt, err := runPoint(p, opts, cfg, systems[i])
		if err != nil {
			return err
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, k := range systems {
		br.Results[k] = points[i].res
		if points[i].icash != nil {
			br.SysICASH = points[i].icash
		}
		if points[i].sharded != nil {
			br.SysSharded = points[i].sharded
		}
	}
	return br, nil
}

// scaleBytes scales a byte budget, with a floor that keeps fixed
// overheads (segment rounding, metadata) from dominating tiny runs.
func scaleBytes(bytes int64, scale float64) int64 {
	b := int64(float64(bytes) * scale)
	if b < 512<<10 {
		b = 512 << 10
	}
	return b
}

// scaleBlocks converts an unscaled byte size to scaled blocks.
func scaleBlocks(bytes int64, scale float64) int64 {
	b := int64(float64(bytes) * scale / blockdev.BlockSize)
	if b < 64 {
		b = 64
	}
	return b
}
