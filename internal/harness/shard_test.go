package harness

import (
	"fmt"
	"reflect"
	"testing"

	"icash/internal/workload"
)

// Sharded scoreboard-equality battery: at every shard count, the run's
// numbers must be identical whatever the worker count — ForEachPoint
// fans the per-shard populate and the per-point builds, and none of it
// may change a simulated value. Under -race these tests double as the
// data-race proof for the per-shard fan (fresh generators, per-shard
// accountants, frozen clock).

// withShards runs fn with the package shard count set to n, restoring
// the previous setting afterwards.
func withShards(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := int(shardCount.Load())
	SetShards(n)
	defer SetShards(prev)
	fn()
}

func TestRunBenchmarkShardedSerialParallelIdentical(t *testing.T) {
	p := workload.SysBench()
	opts := workload.Options{Scale: 1.0 / 256, MaxOps: 1200, Seed: 42}
	for _, shards := range []int{1, 2, 8} {
		withShards(t, shards, func() {
			var runs [][]*Result
			for _, n := range []int{1, 2, 8} {
				withParallelism(t, n, func() {
					br, err := RunBenchmark(p, opts, []Kind{ICASH})
					if err != nil {
						t.Fatalf("shards %d parallelism %d: %v", shards, n, err)
					}
					runs = append(runs, resultsOf(br))
				})
			}
			for i := 1; i < len(runs); i++ {
				if !reflect.DeepEqual(runs[0], runs[i]) {
					t.Fatalf("shards %d: results diverge between parallelism 1 and %d",
						shards, []int{1, 2, 8}[i])
				}
			}
		})
	}
}

// TestShardSweepSerialParallelIdentical pins the whole sweep report —
// every profile, every shard count, the per-shard journal breakout —
// to byte equality across worker counts. The sweep's own populate runs
// through the sharded ForEachPoint fan, so this is the end-to-end
// "same bytes at every shard-worker count" check.
func TestShardSweepSerialParallelIdentical(t *testing.T) {
	opts := workload.Options{Scale: QDSweepScale, MaxOps: 2000, Seed: 42}
	counts := []int{1, 2, 4}
	var reports []string
	for _, n := range []int{1, 2, 8} {
		withParallelism(t, n, func() {
			out, err := ShardSweep(counts, opts)
			if err != nil {
				t.Fatalf("parallelism %d: %v", n, err)
			}
			reports = append(reports, out)
		})
	}
	for i := 1; i < len(reports); i++ {
		if reports[i] != reports[0] {
			t.Fatalf("ShardSweep report diverges between parallelism 1 and %d:\n--- serial ---\n%s\n--- parallel ---\n%s",
				[]int{1, 2, 8}[i], reports[0], reports[i])
		}
	}
}

// TestShardedPopulateMatchesSerial builds the same sharded system twice
// and populates once through the parallel fan and once with the fan
// forced serial; every device byte and every counter must agree, and
// the composed device must serve back exactly the generator's content.
func TestShardedPopulateMatchesSerial(t *testing.T) {
	p := workload.RandRead()
	opts := workload.Options{Scale: 1.0 / 256, MaxOps: 400, Seed: 7}
	cfg := ConfigForProfile(p, opts)
	cfg.Shards = 4

	build := func(workers int) *System {
		var sys *System
		withParallelism(t, workers, func() {
			s, err := Build(ICASH, cfg)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			gen := workload.NewGenerator(p, opts)
			if err := Populate(s, gen); err != nil {
				t.Fatalf("populate (workers=%d): %v", workers, err)
			}
			sys = s
		})
		return sys
	}
	serial := build(1)
	fanned := build(8)

	if serial.Sharded == nil || fanned.Sharded == nil {
		t.Fatal("expected sharded builds")
	}
	for i := 0; i < serial.Sharded.NumShards(); i++ {
		a, b := serial.Sharded.Shard(i).Stats, fanned.Sharded.Shard(i).Stats
		if !reflect.DeepEqual(a, b) {
			t.Errorf("shard %d stats diverge between worker counts:\nserial: %+v\nfanned: %+v", i, a, b)
		}
		ka, kb := serial.Sharded.Shard(i).KindCounts(), fanned.Sharded.Shard(i).KindCounts()
		if ka != kb {
			t.Errorf("shard %d kind counts diverge: %+v vs %+v", i, ka, kb)
		}
	}
	if serial.Clock.Now() != fanned.Clock.Now() {
		t.Errorf("clocks diverge: %v vs %v", serial.Clock.Now(), fanned.Clock.Now())
	}

	// Read-back oracle: the composed device serves the generator's
	// content for every populated LBA.
	gen := workload.NewGenerator(p, opts)
	n := gen.DataBlocks()
	if n > fanned.Sharded.Blocks() {
		n = fanned.Sharded.Blocks()
	}
	want := make([]byte, 4096)
	got := make([]byte, 4096)
	for lba := int64(0); lba < n; lba++ {
		gen.Fill(lba, want)
		if _, err := fanned.Sharded.ReadBlock(lba, got); err != nil {
			t.Fatalf("read lba %d: %v", lba, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("content mismatch at lba %d after fanned populate", lba)
		}
	}
}

func TestBuildShardedShapes(t *testing.T) {
	cfg := BuildConfig{DataBlocks: 4096, Shards: 4, VMImageBlocks: 96}
	sys, err := Build(ICASH, cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sc := sys.Sharded
	if sc == nil {
		t.Fatal("Sharded not set")
	}
	if sys.ICASH != nil {
		t.Error("ICASH handle should be nil on a sharded build")
	}
	// 4096/4 = 1024, aligned up to a multiple of 96 -> 1056.
	if sc.ShardBlocks() != 1056 {
		t.Errorf("ShardBlocks = %d, want 1056 (1024 aligned to 96)", sc.ShardBlocks())
	}
	if len(sys.SSDs) != 4 || len(sys.HDDs) != 4 || len(sys.ShardCPUs) != 4 {
		t.Errorf("per-shard slices sized %d/%d/%d, want 4/4/4",
			len(sys.SSDs), len(sys.HDDs), len(sys.ShardCPUs))
	}
	// Station namespaces: every station name carries its shard prefix.
	for _, st := range sys.Stations {
		name := st.Name()
		if name[0] != 's' {
			t.Errorf("station %q lacks a shard prefix", name)
		}
	}
	wantStations := 4 * (4 + 1) // 4 channels + 1 actuator per shard
	if len(sys.Stations) != wantStations {
		t.Errorf("stations = %d, want %d", len(sys.Stations), wantStations)
	}
}

func TestShardSweepScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("shard sweep in -short mode")
	}
	opts := workload.Options{Seed: 42}
	out, err := ShardSweep([]int{1, 4}, opts)
	if err != nil {
		t.Fatalf("ShardSweep: %v", err)
	}
	// The acceptance bound: 4 shards must at least double both the
	// random-read and random-write throughput of the single-controller
	// build at QD>=8. Parse the speedup column of each table's last row.
	var speedups []float64
	for _, line := range splitLines(out) {
		var n int
		var reqs, sp float64
		if _, err := fmt.Sscanf(line, "shards=%d req/s=%f speedup=%fx", &n, &reqs, &sp); err == nil && n == 4 {
			speedups = append(speedups, sp)
		}
	}
	if len(speedups) != 2 {
		t.Fatalf("expected 2 shards=4 rows in sweep output, got %d:\n%s", len(speedups), out)
	}
	for i, sp := range speedups {
		if sp < 2.0 {
			t.Errorf("profile %d: shards=4 speedup %.2fx < 2x:\n%s", i, sp, out)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
