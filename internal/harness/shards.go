package harness

import "sync/atomic"

// Shard-count plumbing, the -shards analogue of SetParallelism: a
// package-level knob the command-line front ends set once, consumed by
// benchConfig so every build path — RunBenchmark, the QD sweeps, the
// block-service front end via ConfigForProfile — shards identically.
// The default (1) takes the classic single-controller build, byte-
// identical to the pre-sharding harness.

var shardCount atomic.Int32

// SetShards sets how many LBA-range shards the I-CASH builds use.
// n <= 1 restores the classic single-controller stack.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	shardCount.Store(int32(n))
}

// Shards reports the configured shard count (>= 1).
func Shards() int {
	if n := int(shardCount.Load()); n > 0 {
		return n
	}
	return 1
}
