package harness

import (
	"fmt"
	"strings"

	"icash/internal/workload"
)

// ShardSweepStreams is the default number of interleaved per-VM
// request streams the shard sweep drives. Shard scaling only shows
// under real concurrency — one stream at QD 8 leaves every station
// mostly idle and throughput latency-bound — so the sweep models the
// many-VM consolidation the sharding exists for: streams x QueueDepth
// requests outstanding against the array.
const ShardSweepStreams = 64

// ShardSweep measures I-CASH throughput against shard count, for the
// random-read and random-write microbenchmarks driven by
// ShardSweepStreams per-VM streams at queue depth >= 8 each. Each
// shard owns its own SSD+HDD pair, so N shards expose N times the
// flash channels and disk arms; with hundreds of requests in flight
// the single-controller build saturates its devices and the sharded
// builds convert the extra hardware into throughput — the
// sharded-controller analogue of the RAID0 QD-scaling table.
//
// Every (profile, shard-count) point builds its own system and fans
// across Parallelism() workers; rendering in submission order keeps
// the table byte-identical at every worker and shard-worker count.
func ShardSweep(counts []int, opts workload.Options) (string, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	if opts.Scale <= 0 {
		opts.Scale = QDSweepScale
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 16000
	}
	if opts.QueueDepth <= 1 {
		opts.QueueDepth = 8
	}
	opts.StreamPerVM = true
	profiles := []workload.Profile{workload.RandRead(), workload.RandWrite()}
	for i := range profiles {
		profiles[i].VMs = ShardSweepStreams
	}
	points := make([]pointResult, len(profiles)*len(counts))
	var firstErr error
	err := ForEachPoint(len(points), func(i int) error {
		p := profiles[i/len(counts)]
		o := opts
		cfg := benchConfig(p, o)
		cfg.Shards = counts[i%len(counts)]
		pt, err := runPoint(p, o, cfg, ICASH)
		if err != nil {
			return err
		}
		points[i] = pt
		return nil
	})
	var b strings.Builder
	for pi, p := range profiles {
		fmt.Fprintf(&b, "=== shardsweep: %s on I-CASH (scale %.5f, %d ops, %d streams, qd %d) ===\n",
			p.Name, opts.Scale, opts.MaxOps, p.VMs, opts.QueueDepth)
		base := 0.0
		for ci, n := range counts {
			pt := points[pi*len(counts)+ci]
			if pt.res == nil {
				firstErr = err
				break
			}
			r := pt.res
			if base == 0 {
				base = r.ReqPerSec
			}
			fmt.Fprintf(&b, "shards=%-2d req/s=%8.0f speedup=%5.2fx elapsed=%v\n",
				n, r.ReqPerSec, r.ReqPerSec/base, r.Elapsed)
			if pt.sharded != nil {
				// Per-shard journal accounting: group commit is a
				// per-shard chain, and balanced counters are the
				// evidence the routing spreads load rather than
				// funneling it.
				b.WriteString("  journal:")
				for si := 0; si < pt.sharded.NumShards(); si++ {
					st := pt.sharded.Shard(si).Stats
					fmt.Fprintf(&b, " s%d[txns=%d bytes=%d]", si, st.TxnsCommitted, st.GroupCommitBytes)
				}
				b.WriteString("\n")
			} else if st := r.ICASHStats; st != nil {
				fmt.Fprintf(&b, "  journal: s0[txns=%d bytes=%d]\n", st.TxnsCommitted, st.GroupCommitBytes)
			}
		}
	}
	return b.String(), firstErr
}
