package harness

import (
	"fmt"
	"strings"

	"icash/internal/core"
	"icash/internal/metrics"
	"icash/internal/workload"
)

// QDSweepScale is the default data-set scale for the queue-depth sweep:
// chosen so the scaled data set is a whole number of RAID0 stripes
// (245760 blocks / 120 = 2048 = 16 stripes of 4x32), so all four
// members carry equal chunk counts and the measured scaling reflects
// device parallelism rather than stripe-rounding imbalance.
const QDSweepScale = 1.0 / 120

// QDSweep measures RAID0 random-read throughput against queue depth
// (the RandRead microbenchmark) and renders a scaling table with
// per-station utilization. A 4-disk array should approach 4x the QD=1
// throughput once enough requests are in flight (>=3x at QD=8).
func QDSweep(depths []int, opts workload.Options) (string, error) {
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8, 16, 32}
	}
	if opts.Scale <= 0 {
		opts.Scale = QDSweepScale
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 4000
	}
	p := workload.RandRead()
	var b strings.Builder
	fmt.Fprintf(&b, "=== qdsweep: %s on RAID0 (scale %.5f, %d ops) ===\n",
		p.Name, opts.Scale, opts.MaxOps)
	// Depths are independent points: fan them across Parallelism()
	// workers and render in submission order, so the table (including
	// the speedup column, normalized to the first depth) is byte-for-
	// byte what the serial sweep prints.
	runs := make([]*BenchmarkRun, len(depths))
	var firstErr error
	err := ForEachPoint(len(depths), func(i int) error {
		o := opts
		o.QueueDepth = depths[i]
		br, err := RunBenchmark(p, o, []Kind{RAID0})
		if err != nil {
			return err
		}
		runs[i] = br
		return nil
	})
	base := 0.0
	for i, qd := range depths {
		if runs[i] == nil {
			firstErr = err
			break
		}
		r := runs[i].Results[RAID0]
		if base == 0 {
			base = r.ReqPerSec
		}
		fmt.Fprintf(&b, "qd=%-3d req/s=%8.0f speedup=%5.2fx elapsed=%v\n",
			qd, r.ReqPerSec, r.ReqPerSec/base, r.Elapsed)
		b.WriteString(metrics.FormatStations(r.Stations, "  ", true))
	}
	return b.String(), firstErr
}

// WriteQDSweep measures I-CASH random-write throughput against queue
// depth (the RandWrite microbenchmark) and renders a scaling table with
// the delta-log commit accounting next to each depth. This is the
// before/after instrument for the group-commit journal: overlapping
// writers should amortize into fewer, larger sequential log commits,
// which shows up as higher req/s and fewer log blocks per operation.
func WriteQDSweep(depths []int, opts workload.Options) (string, error) {
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8, 16}
	}
	if opts.Scale <= 0 {
		opts.Scale = QDSweepScale
	}
	if opts.MaxOps <= 0 {
		opts.MaxOps = 12000
	}
	if opts.TuneICASH == nil {
		// Shrink the log so the run wraps it several times: steady-state
		// write throughput is set by the commit + compaction path, not by
		// appends into a forever-empty log.
		opts.TuneICASH = func(c *core.Config) { c.LogBlocks = 128 }
	}
	p := workload.RandWrite()
	var b strings.Builder
	fmt.Fprintf(&b, "=== wsweep: %s on I-CASH (scale %.5f, %d ops) ===\n",
		p.Name, opts.Scale, opts.MaxOps)
	// Depths fan across Parallelism() workers like every other point
	// set; rendering in submission order keeps the table byte-identical
	// at every worker count.
	runs := make([]*BenchmarkRun, len(depths))
	var firstErr error
	err := ForEachPoint(len(depths), func(i int) error {
		o := opts
		o.QueueDepth = depths[i]
		br, err := RunBenchmark(p, o, []Kind{ICASH})
		if err != nil {
			return err
		}
		runs[i] = br
		return nil
	})
	base := 0.0
	for i, qd := range depths {
		if runs[i] == nil {
			firstErr = err
			break
		}
		r := runs[i].Results[ICASH]
		if base == 0 {
			base = r.ReqPerSec
		}
		fmt.Fprintf(&b, "qd=%-3d req/s=%8.0f speedup=%5.2fx elapsed=%v\n",
			qd, r.ReqPerSec, r.ReqPerSec/base, r.Elapsed)
		if st := r.ICASHStats; st != nil {
			fmt.Fprintf(&b, "  log: txns=%d flushes=%d blocks=%d deltas=%d",
				st.TxnsCommitted, st.FlushRuns, st.LogBlocksWritten, st.DeltasPacked)
			if st.TxnsCommitted > 0 {
				fmt.Fprintf(&b, " bytes/txn=%d", st.GroupCommitBytes/st.TxnsCommitted)
			}
			b.WriteString("\n")
		}
		b.WriteString(metrics.FormatStations(r.Stations, "  ", true))
	}
	return b.String(), firstErr
}
