// Package harness builds the five storage systems of the paper's
// evaluation (§4.4) on identical simulated devices, drives them with the
// workload generators, and renders every figure and table of §5.
package harness

import (
	"fmt"

	"icash/internal/baseline"
	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/fault"
	"icash/internal/hdd"
	"icash/internal/raid"
	"icash/internal/sim"
	"icash/internal/sim/event"
	"icash/internal/ssd"
)

// Kind identifies one of the five storage systems under test.
type Kind int

const (
	// FusionIO is the pure-SSD baseline holding the whole data set.
	FusionIO Kind = iota
	// RAID0 stripes four simulated SATA disks.
	RAID0
	// Dedup is the content-deduplicating SSD cache over one disk.
	Dedup
	// LRU is the SSD LRU cache over one disk.
	LRU
	// ICASH is the paper's contribution.
	ICASH
)

// String returns the paper's label for the system.
func (k Kind) String() string {
	switch k {
	case FusionIO:
		return "FusionIO"
	case RAID0:
		return "RAID"
	case Dedup:
		return "Dedup"
	case LRU:
		return "LRU"
	case ICASH:
		return "I-CASH"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists the systems in the paper's figure order.
func AllKinds() []Kind { return []Kind{FusionIO, RAID0, Dedup, LRU, ICASH} }

// BuildConfig sizes one system instance.
type BuildConfig struct {
	// DataBlocks is the virtual-disk size in blocks (the scaled data
	// set).
	DataBlocks int64
	// SSDCacheBlocks is the SSD provisioned for the cache systems and
	// I-CASH (FusionIO always gets the full data set).
	SSDCacheBlocks int64
	// DeltaRAMBytes and DataRAMBytes partition I-CASH's controller RAM.
	DeltaRAMBytes int64
	DataRAMBytes  int64
	// VMImageBlocks enables I-CASH's VM-offset pairing (0 = off).
	VMImageBlocks int64
	// RAIDDisks is the stripe width (the paper uses 4).
	RAIDDisks int
	// Tune overrides I-CASH controller parameters after the harness
	// defaults are applied (ablation studies).
	Tune func(*core.Config)

	// FaultSSD and FaultHDD, when non-nil, interpose deterministic
	// fault injectors between the I-CASH controller and its devices
	// (robustness experiments; ignored for the baseline systems). Their
	// Clock and default Station names are filled in by Build; a Plan on
	// either config is additionally installed as a station shaper, so
	// fail-slow windows inflate both the controller-visible latency and
	// the station occupancy under QD>1.
	FaultSSD *fault.Config
	FaultHDD *fault.Config

	// Scrub configures I-CASH's background integrity scrubber (see
	// core.ScrubConfig; a zero Interval leaves it disabled). Ignored
	// for the baseline systems.
	Scrub core.ScrubConfig

	// SlowDetector enables the fail-slow detector: station service
	// times feed a windowed-p99 watch, and the concurrent runner
	// quarantines / re-admits the I-CASH SSD as the flag flips.
	SlowDetector bool
	// SlowSSDThreshold and SlowHDDThreshold override the detector
	// thresholds (zero keeps the defaults: 2 ms per SSD channel, 100 ms
	// per HDD actuator). 2 ms sits well above a channel's routine
	// service (tens of microseconds); the rare healthy ops beyond it —
	// writes that trigger GC pay an erase plus relocations — stay under
	// the detector's 5% flag fraction, while a fail-slow window pushes
	// ordinary writes past it in bulk.
	SlowSSDThreshold sim.Duration
	SlowHDDThreshold sim.Duration
}

// System is one storage configuration under test: the device stack plus
// its clock and CPU accountant.
type System struct {
	Kind  Kind
	Clock *sim.Clock
	CPU   *cpumodel.Accountant
	Dev   blockdev.Device

	// Component handles for statistics; nil when absent.
	SSD   *ssd.Device
	HDDs  []*hdd.Device
	ICASH *core.Controller
	LRUc  *baseline.LRUCache
	Dedup *baseline.DedupCache
	Pure  *baseline.PureSSD
	RAID  *raid.Array0

	// SSDFault and HDDFault are the fault injectors when the build
	// requested them; nil otherwise.
	SSDFault *fault.Device
	HDDFault *fault.Device

	// Tracer and Stations are the concurrency-engine hookup: every SSD
	// channel and HDD actuator is a service station, and devices note
	// their per-request service times through the tracer. The serial
	// (QD=1) path never begins a trace, so the stations stay idle there.
	Tracer   *event.Tracer
	Stations []*event.Server

	// Detector, when the build enabled it, watches station service
	// times; the concurrent runner polls it between requests to drive
	// SSD quarantine and re-admission on the I-CASH controller.
	Detector *fault.Detector

	flush func() error
}

// Name returns the paper's label.
func (s *System) Name() string { return s.Kind.String() }

// Flush drains any volatile state to durable media (end of run).
func (s *System) Flush() error {
	if s.flush == nil {
		return nil
	}
	return s.flush()
}

// ResetStats zeroes every statistics counter in the stack (after the
// unmeasured populate phase) and restarts the CPU utilization window.
func (s *System) ResetStats() {
	if s.SSD != nil {
		s.SSD.ResetStats()
	}
	for _, h := range s.HDDs {
		h.ResetStats()
	}
	if s.ICASH != nil {
		s.ICASH.ResetStats()
	}
	if s.LRUc != nil {
		s.LRUc.ResetStats()
	}
	if s.Dedup != nil {
		s.Dedup.ResetStats()
	}
	if s.Pure != nil {
		s.Pure.ResetStats()
	}
	if s.RAID != nil {
		s.RAID.ResetStats()
	}
	if s.SSDFault != nil {
		s.SSDFault.ResetStats()
	}
	if s.HDDFault != nil {
		s.HDDFault.ResetStats()
	}
	for _, st := range s.Stations {
		st.ResetStats()
	}
	s.CPU.Reset()
}

// instrument builds one service station per independently serving unit
// — each SSD channel, each HDD actuator — and connects the devices to
// the shared tracer. Called once at the end of Build. Fault plans from
// the build config become station shapers (a fail-slow window inflates
// station occupancy, not just the controller-visible latency), and the
// optional slow-device detector observes every station's shaped
// service times.
func (s *System) instrument(cfg BuildConfig) {
	s.Tracer = event.NewTracer()
	var ssdPlan, hddPlan *fault.Schedule
	if cfg.FaultSSD != nil {
		ssdPlan = cfg.FaultSSD.Plan
	}
	if cfg.FaultHDD != nil {
		hddPlan = cfg.FaultHDD.Plan
	}
	if cfg.SlowDetector {
		s.Detector = fault.NewDetector(0)
	}
	watch := func(srv *event.Server, threshold sim.Duration) {
		if s.Detector == nil {
			return
		}
		name := srv.Name()
		s.Detector.Watch(name, threshold)
		srv.SetObserver(func(svc sim.Duration) { s.Detector.Observe(name, svc) })
	}
	ssdThreshold := cfg.SlowSSDThreshold
	if ssdThreshold <= 0 {
		ssdThreshold = 2 * sim.Millisecond
	}
	hddThreshold := cfg.SlowHDDThreshold
	if hddThreshold <= 0 {
		hddThreshold = 100 * sim.Millisecond
	}
	if s.SSD != nil {
		n := s.SSD.Config().Channels
		chans := make([]*event.Server, n)
		for i := range chans {
			chans[i] = event.NewServer(fmt.Sprintf("ssd.ch%d", i), event.DefaultQueueCap)
			chans[i].SetShaper(ssdPlan.Shaper(chans[i].Name()))
			watch(chans[i], ssdThreshold)
			s.Stations = append(s.Stations, chans[i])
		}
		s.SSD.Instrument(s.Tracer, chans)
	}
	for i, h := range s.HDDs {
		srv := event.NewServer(fmt.Sprintf("hdd%d", i), event.DefaultQueueCap)
		srv.SetShaper(hddPlan.Shaper(srv.Name()))
		watch(srv, hddThreshold)
		s.Stations = append(s.Stations, srv)
		h.Instrument(s.Tracer, srv)
	}
}

// SetFill installs the workload's initial-content oracle on every
// device in the stack.
func (s *System) SetFill(f blockdev.FillFunc) {
	if s.SSD != nil {
		s.SSD.SetFill(f)
	}
	for _, h := range s.HDDs {
		h.SetFill(f)
	}
	if s.RAID != nil {
		s.RAID.SetFill(f)
	}
}

// Build constructs a system of the given kind.
func Build(kind Kind, cfg BuildConfig) (*System, error) {
	if cfg.DataBlocks <= 0 {
		return nil, fmt.Errorf("harness: DataBlocks must be positive")
	}
	if cfg.RAIDDisks <= 0 {
		cfg.RAIDDisks = 4
	}
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	s := &System{Kind: kind, Clock: clock, CPU: cpu}

	switch kind {
	case FusionIO:
		// The paper's ioDrive is far larger than any data set (80 GB vs
		// at most 17.5 GB), so the device runs at low utilization with
		// mild garbage collection. 4x the data set preserves that.
		devCfg := ssd.DefaultConfig(cfg.DataBlocks * 4)
		devCfg.CapacityBlocks = cfg.DataBlocks * 4
		s.SSD = ssd.New(devCfg)
		s.Pure = baseline.NewPureSSD(s.SSD, cpu)
		s.Dev = s.Pure
		s.flush = s.Pure.Flush

	case RAID0:
		const chunk = 32
		stripe := int64(cfg.RAIDDisks) * chunk
		per := (cfg.DataBlocks + stripe - 1) / stripe * chunk
		members := make([]blockdev.Device, cfg.RAIDDisks)
		for i := range members {
			h := hdd.New(hdd.DefaultConfig(per))
			s.HDDs = append(s.HDDs, h)
			members[i] = h
		}
		arr, err := raid.NewArray0(members, chunk)
		if err != nil {
			return nil, err
		}
		s.RAID = arr
		s.Dev = arr
		s.flush = func() error { return nil }

	case Dedup:
		s.SSD = ssd.New(cachePartitionConfig(cacheBlocks(cfg)))
		h := hdd.New(hdd.DefaultConfig(cfg.DataBlocks))
		s.HDDs = []*hdd.Device{h}
		c := baseline.NewDedupCache(s.SSD, h, cpu)
		s.Dedup = c
		s.Dev = c
		s.flush = c.Flush

	case LRU:
		s.SSD = ssd.New(cachePartitionConfig(cacheBlocks(cfg)))
		h := hdd.New(hdd.DefaultConfig(cfg.DataBlocks))
		s.HDDs = []*hdd.Device{h}
		c := baseline.NewLRUCache(s.SSD, h, cpu)
		s.LRUc = c
		s.Dev = c
		s.flush = c.Flush

	case ICASH:
		ssdBlocks := cacheBlocks(cfg)
		// The log must comfortably hold the live delta volume of a
		// fully delta-represented data set (a 4 KB log block packs
		// roughly ten deltas) plus cleaning headroom.
		logBlocks := cfg.DataBlocks / 2
		if logBlocks < 512 {
			logBlocks = 512
		}
		if logBlocks > 262144 {
			logBlocks = 262144
		}
		s.SSD = ssd.New(cachePartitionConfig(ssdBlocks))
		h := hdd.New(hdd.DefaultConfig(cfg.DataBlocks + logBlocks))
		s.HDDs = []*hdd.Device{h}
		ccfg := core.NewDefaultConfig(cfg.DataBlocks, ssdBlocks,
			orDefault(cfg.DeltaRAMBytes, 32<<20), orDefault(cfg.DataRAMBytes, 32<<20))
		ccfg.LogBlocks = logBlocks
		ccfg.VMImageBlocks = cfg.VMImageBlocks
		// The paper's scan period (2,000 I/Os) assumes a ~1M-block data
		// set; keep the scan frequency proportional on scaled-down runs
		// so reference selection keeps pace with the workload.
		scan := int(cfg.DataBlocks / 4)
		if scan > ccfg.ScanPeriod {
			scan = ccfg.ScanPeriod
		}
		if scan < 128 {
			scan = 128
		}
		ccfg.ScanPeriod = scan
		// Flush cadence scales the same way (the paper's 4,096-I/O
		// period assumes full-size runs).
		flush := int(cfg.DataBlocks / 8)
		if flush > ccfg.FlushPeriodOps {
			flush = ccfg.FlushPeriodOps
		}
		if flush < 64 {
			flush = 64
		}
		ccfg.FlushPeriodOps = flush
		ccfg.FlushDirtyBytes = ccfg.DeltaRAMBytes / 8
		// Virtual-block metadata is ~100 B per block (<0.3% of the data
		// size); track the whole virtual disk rather than thrash.
		ccfg.MetadataBlocks = int(cfg.DataBlocks) + 64
		if cfg.Tune != nil {
			cfg.Tune(&ccfg)
		}
		var ssdDev, hddDev blockdev.Device = s.SSD, h
		if cfg.FaultSSD != nil {
			fc := *cfg.FaultSSD
			fc.Clock = clock
			if fc.Station == "" {
				fc.Station = "ssd"
			}
			s.SSDFault = fault.Wrap(ssdDev, fc)
			ssdDev = s.SSDFault
		}
		if cfg.FaultHDD != nil {
			fc := *cfg.FaultHDD
			fc.Clock = clock
			if fc.Station == "" {
				fc.Station = "hdd0"
			}
			s.HDDFault = fault.Wrap(hddDev, fc)
			hddDev = s.HDDFault
		}
		ctrl, err := core.New(ccfg, ssdDev, hddDev, clock, cpu)
		if err != nil {
			return nil, err
		}
		ctrl.SetScrub(cfg.Scrub)
		s.ICASH = ctrl
		s.Dev = ctrl
		s.flush = ctrl.Flush

	default:
		return nil, fmt.Errorf("harness: unknown system kind %d", kind)
	}
	s.instrument(cfg)
	return s, nil
}

// PollDetector drives SSD quarantine and re-admission on the I-CASH
// controller from the slow-device detector's current verdict. The
// concurrent runner calls it after every replayed block, so a flagged
// station sidetracks the SSD within one request and a recovered one
// re-admits it just as promptly. No-op when the build did not ask for
// a detector or the system is not I-CASH.
func (s *System) PollDetector() {
	if s.Detector == nil || s.ICASH == nil {
		return
	}
	s.ICASH.SetSSDQuarantined(s.Detector.AnySlow("ssd"))
}

// cachePartitionConfig builds the SSD device for a cache-sized
// partition. The paper carves 128 MB - 1 GB partitions out of an 80 GB
// ioDrive, so the flash behind a partition is effectively heavily
// over-provisioned and garbage collection is mild; OverProvision = 1
// models that.
func cachePartitionConfig(blocks int64) ssd.Config {
	c := ssd.DefaultConfig(blocks)
	c.OverProvision = 1.0
	return c
}

// cacheBlocks returns the SSD size for the cache systems, defaulting to
// the paper's ~10% of the data set.
func cacheBlocks(cfg BuildConfig) int64 {
	if cfg.SSDCacheBlocks > 0 {
		return cfg.SSDCacheBlocks
	}
	b := cfg.DataBlocks / 10
	if b < 64 {
		b = 64
	}
	return b
}

func orDefault(v, def int64) int64 {
	if v > 0 {
		return v
	}
	return def
}
