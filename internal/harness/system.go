// Package harness builds the five storage systems of the paper's
// evaluation (§4.4) on identical simulated devices, drives them with the
// workload generators, and renders every figure and table of §5.
package harness

import (
	"fmt"

	"icash/internal/baseline"
	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/fault"
	"icash/internal/hdd"
	"icash/internal/raid"
	"icash/internal/sim"
	"icash/internal/sim/event"
	"icash/internal/ssd"
)

// Kind identifies one of the five storage systems under test.
type Kind int

const (
	// FusionIO is the pure-SSD baseline holding the whole data set.
	FusionIO Kind = iota
	// RAID0 stripes four simulated SATA disks.
	RAID0
	// Dedup is the content-deduplicating SSD cache over one disk.
	Dedup
	// LRU is the SSD LRU cache over one disk.
	LRU
	// ICASH is the paper's contribution.
	ICASH
)

// String returns the paper's label for the system.
func (k Kind) String() string {
	switch k {
	case FusionIO:
		return "FusionIO"
	case RAID0:
		return "RAID"
	case Dedup:
		return "Dedup"
	case LRU:
		return "LRU"
	case ICASH:
		return "I-CASH"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists the systems in the paper's figure order.
func AllKinds() []Kind { return []Kind{FusionIO, RAID0, Dedup, LRU, ICASH} }

// BuildConfig sizes one system instance.
type BuildConfig struct {
	// DataBlocks is the virtual-disk size in blocks (the scaled data
	// set).
	DataBlocks int64
	// SSDCacheBlocks is the SSD provisioned for the cache systems and
	// I-CASH (FusionIO always gets the full data set).
	SSDCacheBlocks int64
	// DeltaRAMBytes and DataRAMBytes partition I-CASH's controller RAM.
	DeltaRAMBytes int64
	DataRAMBytes  int64
	// VMImageBlocks enables I-CASH's VM-offset pairing (0 = off).
	VMImageBlocks int64
	// RAIDDisks is the stripe width (the paper uses 4).
	RAIDDisks int
	// Shards partitions the I-CASH controller into that many
	// independent LBA-range shards, each a full controller over its own
	// SSD+HDD pair, composed under the one clock (<= 1 builds the
	// classic single instance; ignored for the baseline systems). When
	// VMImageBlocks is set the per-shard size is aligned up to it, so a
	// VM image never straddles shards.
	Shards int
	// FaultShard selects which shard the FaultSSD/FaultHDD injectors
	// attach to when Shards > 1 (default shard 0). Faults are a
	// per-device phenomenon, and pinning them to one shard is what the
	// blast-radius experiments measure: the other shards keep serving.
	FaultShard int
	// Tune overrides I-CASH controller parameters after the harness
	// defaults are applied (ablation studies).
	Tune func(*core.Config)

	// FaultSSD and FaultHDD, when non-nil, interpose deterministic
	// fault injectors between the I-CASH controller and its devices
	// (robustness experiments; ignored for the baseline systems). Their
	// Clock and default Station names are filled in by Build; a Plan on
	// either config is additionally installed as a station shaper, so
	// fail-slow windows inflate both the controller-visible latency and
	// the station occupancy under QD>1.
	FaultSSD *fault.Config
	FaultHDD *fault.Config

	// Scrub configures I-CASH's background integrity scrubber (see
	// core.ScrubConfig; a zero Interval leaves it disabled). Ignored
	// for the baseline systems.
	Scrub core.ScrubConfig

	// SlowDetector enables the fail-slow detector: station service
	// times feed a windowed-p99 watch, and the concurrent runner
	// quarantines / re-admits the I-CASH SSD as the flag flips.
	SlowDetector bool
	// SlowSSDThreshold and SlowHDDThreshold override the detector
	// thresholds (zero keeps the defaults: 2 ms per SSD channel, 100 ms
	// per HDD actuator). 2 ms sits well above a channel's routine
	// service (tens of microseconds); the rare healthy ops beyond it —
	// writes that trigger GC pay an erase plus relocations — stay under
	// the detector's 5% flag fraction, while a fail-slow window pushes
	// ordinary writes past it in bulk.
	SlowSSDThreshold sim.Duration
	SlowHDDThreshold sim.Duration
}

// System is one storage configuration under test: the device stack plus
// its clock and CPU accountant.
type System struct {
	Kind  Kind
	Clock *sim.Clock
	CPU   *cpumodel.Accountant
	Dev   blockdev.Device

	// Component handles for statistics; nil when absent.
	SSD   *ssd.Device
	HDDs  []*hdd.Device
	ICASH *core.Controller
	LRUc  *baseline.LRUCache
	Dedup *baseline.DedupCache
	Pure  *baseline.PureSSD
	RAID  *raid.Array0

	// Sharded is the composed controller when the build asked for
	// Shards > 1; ICASH is nil then, and shard i's SSD and HDD are
	// SSDs[i] and HDDs[i]. ShardCPUs holds one storage accountant per
	// shard — per-shard so the parallel populate fan never shares a
	// mutable accountant across workers; the aggregate views below sum
	// them with the system accountant.
	Sharded   *core.ShardedController
	SSDs      []*ssd.Device
	ShardCPUs []*cpumodel.Accountant
	// shardSSDNames caches the per-shard SSD station prefixes
	// ("s0.ssd", ...) so the per-request detector poll allocates
	// nothing.
	shardSSDNames []string

	// SSDFault and HDDFault are the fault injectors when the build
	// requested them; nil otherwise.
	SSDFault *fault.Device
	HDDFault *fault.Device

	// Tracer and Stations are the concurrency-engine hookup: every SSD
	// channel and HDD actuator is a service station, and devices note
	// their per-request service times through the tracer. The serial
	// (QD=1) path never begins a trace, so the stations stay idle there.
	Tracer   *event.Tracer
	Stations []*event.Server

	// Detector, when the build enabled it, watches station service
	// times; the concurrent runner polls it between requests to drive
	// SSD quarantine and re-admission on the I-CASH controller.
	Detector *fault.Detector

	flush func() error
}

// Name returns the paper's label.
func (s *System) Name() string { return s.Kind.String() }

// Flush drains any volatile state to durable media (end of run).
func (s *System) Flush() error {
	if s.flush == nil {
		return nil
	}
	return s.flush()
}

// ResetStats zeroes every statistics counter in the stack (after the
// unmeasured populate phase) and restarts the CPU utilization window.
func (s *System) ResetStats() {
	if s.SSD != nil {
		s.SSD.ResetStats()
	}
	for _, d := range s.SSDs {
		d.ResetStats()
	}
	for _, h := range s.HDDs {
		h.ResetStats()
	}
	if s.ICASH != nil {
		s.ICASH.ResetStats()
	}
	if s.Sharded != nil {
		s.Sharded.ResetStats()
	}
	if s.LRUc != nil {
		s.LRUc.ResetStats()
	}
	if s.Dedup != nil {
		s.Dedup.ResetStats()
	}
	if s.Pure != nil {
		s.Pure.ResetStats()
	}
	if s.RAID != nil {
		s.RAID.ResetStats()
	}
	if s.SSDFault != nil {
		s.SSDFault.ResetStats()
	}
	if s.HDDFault != nil {
		s.HDDFault.ResetStats()
	}
	for _, st := range s.Stations {
		st.ResetStats()
	}
	s.CPU.Reset()
	for _, c := range s.ShardCPUs {
		c.Reset()
	}
}

// ssdStats returns the device-level SSD accounting: the single SSD's
// stats on a classic stack, the sum across per-shard SSDs on a sharded
// one, nil when the stack has no SSD (RAID0).
func (s *System) ssdStats() *ssd.Stats {
	if s.SSD != nil {
		st := s.SSD.Stats
		return &st
	}
	if len(s.SSDs) == 0 {
		return nil
	}
	var total ssd.Stats
	for _, d := range s.SSDs {
		st := d.Stats
		total.Accumulate(&st)
	}
	return &total
}

// StorageCPUTime is the storage-stack CPU time across the system
// accountant and every per-shard accountant.
func (s *System) StorageCPUTime() sim.Duration {
	t := s.CPU.StorageTime
	for _, c := range s.ShardCPUs {
		t += c.StorageTime
	}
	return t
}

// CPUBusy is total CPU busy time (application + storage) across the
// system accountant and every per-shard accountant.
func (s *System) CPUBusy() sim.Duration {
	b := s.CPU.Busy()
	for _, c := range s.ShardCPUs {
		b += c.Busy()
	}
	return b
}

// instrument builds one service station per independently serving unit
// — each SSD channel, each HDD actuator — and connects the devices to
// the shared tracer. Called once at the end of Build. Fault plans from
// the build config become station shapers (a fail-slow window inflates
// station occupancy, not just the controller-visible latency), and the
// optional slow-device detector observes every station's shaped
// service times.
func (s *System) instrument(cfg BuildConfig) {
	s.Tracer = event.NewTracer()
	var ssdPlan, hddPlan *fault.Schedule
	if cfg.FaultSSD != nil {
		ssdPlan = cfg.FaultSSD.Plan
	}
	if cfg.FaultHDD != nil {
		hddPlan = cfg.FaultHDD.Plan
	}
	if cfg.SlowDetector {
		s.Detector = fault.NewDetector(0)
	}
	watch := func(srv *event.Server, threshold sim.Duration) {
		if s.Detector == nil {
			return
		}
		name := srv.Name()
		s.Detector.Watch(name, threshold)
		srv.SetObserver(func(svc sim.Duration) { s.Detector.Observe(name, svc) })
	}
	ssdThreshold := cfg.SlowSSDThreshold
	if ssdThreshold <= 0 {
		ssdThreshold = 2 * sim.Millisecond
	}
	hddThreshold := cfg.SlowHDDThreshold
	if hddThreshold <= 0 {
		hddThreshold = 100 * sim.Millisecond
	}
	addSSD := func(dev *ssd.Device, prefix string) {
		n := dev.Config().Channels
		chans := make([]*event.Server, n)
		for i := range chans {
			chans[i] = event.NewServer(fmt.Sprintf("%sssd.ch%d", prefix, i), event.DefaultQueueCap)
			chans[i].SetShaper(ssdPlan.Shaper(chans[i].Name()))
			watch(chans[i], ssdThreshold)
			s.Stations = append(s.Stations, chans[i])
		}
		dev.Instrument(s.Tracer, chans)
	}
	addHDD := func(h *hdd.Device, name string) {
		srv := event.NewServer(name, event.DefaultQueueCap)
		srv.SetShaper(hddPlan.Shaper(srv.Name()))
		watch(srv, hddThreshold)
		s.Stations = append(s.Stations, srv)
		h.Instrument(s.Tracer, srv)
	}
	if s.Sharded != nil {
		// Sharded stack: shard i's stations live under the "s<i>."
		// prefix, so a fault window or detector verdict scoped to
		// "s0.ssd" touches exactly one shard's channels (the schedule
		// and detector both match dotted prefixes).
		for i, dev := range s.SSDs {
			s.shardSSDNames = append(s.shardSSDNames, fmt.Sprintf("s%d.ssd", i))
			addSSD(dev, fmt.Sprintf("s%d.", i))
		}
		for i, h := range s.HDDs {
			addHDD(h, fmt.Sprintf("s%d.hdd0", i))
		}
		return
	}
	if s.SSD != nil {
		addSSD(s.SSD, "")
	}
	for i, h := range s.HDDs {
		addHDD(h, fmt.Sprintf("hdd%d", i))
	}
}

// SetFill installs the workload's initial-content oracle on every
// device in the stack. On a sharded stack each shard's devices see
// shard-local LBAs, so the oracle is installed through the routing
// translation (global = shard base + local).
func (s *System) SetFill(f blockdev.FillFunc) {
	if s.Sharded != nil {
		for i := range s.SSDs {
			s.SetShardFill(i, f)
		}
		return
	}
	if s.SSD != nil {
		s.SSD.SetFill(f)
	}
	for _, h := range s.HDDs {
		h.SetFill(f)
	}
	if s.RAID != nil {
		s.RAID.SetFill(f)
	}
}

// SetShardFill installs f — an oracle over *global* LBAs — on shard
// i's devices, translated to the shard's local address space. The
// sharded populate fan uses it with one generator clone per shard, so
// no two workers ever share the (non-thread-safe) oracle.
func (s *System) SetShardFill(i int, f blockdev.FillFunc) {
	base := int64(i) * s.Sharded.ShardBlocks()
	tf := func(lba int64, buf []byte) { f(base+lba, buf) }
	s.SSDs[i].SetFill(tf)
	s.HDDs[i].SetFill(tf)
}

// Build constructs a system of the given kind.
func Build(kind Kind, cfg BuildConfig) (*System, error) {
	if cfg.DataBlocks <= 0 {
		return nil, fmt.Errorf("harness: DataBlocks must be positive")
	}
	if cfg.RAIDDisks <= 0 {
		cfg.RAIDDisks = 4
	}
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	s := &System{Kind: kind, Clock: clock, CPU: cpu}

	switch kind {
	case FusionIO:
		// The paper's ioDrive is far larger than any data set (80 GB vs
		// at most 17.5 GB), so the device runs at low utilization with
		// mild garbage collection. 4x the data set preserves that.
		devCfg := ssd.DefaultConfig(cfg.DataBlocks * 4)
		devCfg.CapacityBlocks = cfg.DataBlocks * 4
		s.SSD = ssd.New(devCfg)
		s.Pure = baseline.NewPureSSD(s.SSD, cpu)
		s.Dev = s.Pure
		s.flush = s.Pure.Flush

	case RAID0:
		const chunk = 32
		stripe := int64(cfg.RAIDDisks) * chunk
		per := (cfg.DataBlocks + stripe - 1) / stripe * chunk
		members := make([]blockdev.Device, cfg.RAIDDisks)
		for i := range members {
			h := hdd.New(hdd.DefaultConfig(per))
			s.HDDs = append(s.HDDs, h)
			members[i] = h
		}
		arr, err := raid.NewArray0(members, chunk)
		if err != nil {
			return nil, err
		}
		s.RAID = arr
		s.Dev = arr
		s.flush = func() error { return nil }

	case Dedup:
		s.SSD = ssd.New(cachePartitionConfig(cacheBlocks(cfg)))
		h := hdd.New(hdd.DefaultConfig(cfg.DataBlocks))
		s.HDDs = []*hdd.Device{h}
		c := baseline.NewDedupCache(s.SSD, h, cpu)
		s.Dedup = c
		s.Dev = c
		s.flush = c.Flush

	case LRU:
		s.SSD = ssd.New(cachePartitionConfig(cacheBlocks(cfg)))
		h := hdd.New(hdd.DefaultConfig(cfg.DataBlocks))
		s.HDDs = []*hdd.Device{h}
		c := baseline.NewLRUCache(s.SSD, h, cpu)
		s.LRUc = c
		s.Dev = c
		s.flush = c.Flush

	case ICASH:
		if cfg.Shards > 1 {
			if err := buildShardedICASH(s, cfg); err != nil {
				return nil, err
			}
			break
		}
		ssdBlocks := cacheBlocks(cfg)
		ccfg := icashConfig(cfg.DataBlocks, ssdBlocks,
			orDefault(cfg.DeltaRAMBytes, 32<<20), orDefault(cfg.DataRAMBytes, 32<<20),
			cfg.VMImageBlocks)
		s.SSD = ssd.New(cachePartitionConfig(ssdBlocks))
		h := hdd.New(hdd.DefaultConfig(cfg.DataBlocks + ccfg.LogBlocks))
		s.HDDs = []*hdd.Device{h}
		if cfg.Tune != nil {
			cfg.Tune(&ccfg)
		}
		var ssdDev, hddDev blockdev.Device = s.SSD, h
		if cfg.FaultSSD != nil {
			fc := *cfg.FaultSSD
			fc.Clock = clock
			if fc.Station == "" {
				fc.Station = "ssd"
			}
			s.SSDFault = fault.Wrap(ssdDev, fc)
			ssdDev = s.SSDFault
		}
		if cfg.FaultHDD != nil {
			fc := *cfg.FaultHDD
			fc.Clock = clock
			if fc.Station == "" {
				fc.Station = "hdd0"
			}
			s.HDDFault = fault.Wrap(hddDev, fc)
			hddDev = s.HDDFault
		}
		ctrl, err := core.New(ccfg, ssdDev, hddDev, clock, cpu)
		if err != nil {
			return nil, err
		}
		ctrl.SetScrub(cfg.Scrub)
		s.ICASH = ctrl
		s.Dev = ctrl
		s.flush = ctrl.Flush

	default:
		return nil, fmt.Errorf("harness: unknown system kind %d", kind)
	}
	s.instrument(cfg)
	return s, nil
}

// PollDetector drives SSD quarantine and re-admission on the I-CASH
// controller from the slow-device detector's current verdict. The
// concurrent runner calls it after every replayed block, so a flagged
// station sidetracks the SSD within one request and a recovered one
// re-admits it just as promptly. No-op when the build did not ask for
// a detector or the system is not I-CASH.
func (s *System) PollDetector() {
	if s.Detector == nil {
		return
	}
	if s.Sharded != nil {
		// Quarantine is per shard: a slow channel on s0's SSD
		// sidetracks only s0; the other shards keep their read path.
		for i, name := range s.shardSSDNames {
			s.Sharded.Shard(i).SetSSDQuarantined(s.Detector.AnySlow(name))
		}
		return
	}
	if s.ICASH == nil {
		return
	}
	s.ICASH.SetSSDQuarantined(s.Detector.AnySlow("ssd"))
}

// icashConfig sizes one I-CASH controller over dataBlocks virtual
// blocks — the whole disk for the classic build, one shard's slice for
// the sharded build, so a shard is configured exactly like a small
// standalone controller.
func icashConfig(dataBlocks, ssdBlocks, deltaRAM, dataRAM, vmImageBlocks int64) core.Config {
	// The log must comfortably hold the live delta volume of a fully
	// delta-represented data set (a 4 KB log block packs roughly ten
	// deltas) plus cleaning headroom.
	logBlocks := dataBlocks / 2
	if logBlocks < 512 {
		logBlocks = 512
	}
	if logBlocks > 262144 {
		logBlocks = 262144
	}
	ccfg := core.NewDefaultConfig(dataBlocks, ssdBlocks, deltaRAM, dataRAM)
	ccfg.LogBlocks = logBlocks
	ccfg.VMImageBlocks = vmImageBlocks
	// The paper's scan period (2,000 I/Os) assumes a ~1M-block data
	// set; keep the scan frequency proportional on scaled-down runs
	// so reference selection keeps pace with the workload.
	scan := int(dataBlocks / 4)
	if scan > ccfg.ScanPeriod {
		scan = ccfg.ScanPeriod
	}
	if scan < 128 {
		scan = 128
	}
	ccfg.ScanPeriod = scan
	// Flush cadence scales the same way (the paper's 4,096-I/O
	// period assumes full-size runs).
	flush := int(dataBlocks / 8)
	if flush > ccfg.FlushPeriodOps {
		flush = ccfg.FlushPeriodOps
	}
	if flush < 64 {
		flush = 64
	}
	ccfg.FlushPeriodOps = flush
	ccfg.FlushDirtyBytes = ccfg.DeltaRAMBytes / 8
	// Virtual-block metadata is ~100 B per block (<0.3% of the data
	// size); track the whole virtual disk rather than thrash.
	ccfg.MetadataBlocks = int(dataBlocks) + 64
	return ccfg
}

// buildShardedICASH assembles cfg.Shards independent controllers, each
// over its own SSD+HDD pair sized to its LBA slice, and composes them
// with core.NewSharded under the system's one clock. RAM budgets and
// the SSD cache split evenly; per-slice floors keep tiny shards
// viable. The fault injectors, when requested, attach to shard
// cfg.FaultShard only, under that shard's station namespace.
func buildShardedICASH(s *System, cfg BuildConfig) error {
	nsh := cfg.Shards
	per := (cfg.DataBlocks + int64(nsh) - 1) / int64(nsh)
	if cfg.VMImageBlocks > 0 {
		// Align so no VM image straddles a shard boundary: the session
		// partitions of the block service map whole VMs to shards, and
		// first-load pairing needs image-offset twins co-resident.
		per = (per + cfg.VMImageBlocks - 1) / cfg.VMImageBlocks * cfg.VMImageBlocks
	}
	ssdBlocks := cacheBlocks(cfg) / int64(nsh)
	if ssdBlocks < 64 {
		ssdBlocks = 64
	}
	deltaRAM := orDefault(cfg.DeltaRAMBytes, 32<<20) / int64(nsh)
	if min := per * 512; deltaRAM < min {
		deltaRAM = min
	}
	dataRAM := orDefault(cfg.DataRAMBytes, 32<<20) / int64(nsh)
	if dataRAM < 512<<10 {
		dataRAM = 512 << 10
	}
	faultShard := cfg.FaultShard
	if faultShard < 0 || faultShard >= nsh {
		faultShard = 0
	}

	shards := make([]*core.Controller, nsh)
	for i := 0; i < nsh; i++ {
		ccfg := icashConfig(per, ssdBlocks, deltaRAM, dataRAM, cfg.VMImageBlocks)
		sdev := ssd.New(cachePartitionConfig(ssdBlocks))
		h := hdd.New(hdd.DefaultConfig(per + ccfg.LogBlocks))
		s.SSDs = append(s.SSDs, sdev)
		s.HDDs = append(s.HDDs, h)
		if cfg.Tune != nil {
			cfg.Tune(&ccfg)
		}
		var ssdDev, hddDev blockdev.Device = sdev, h
		if i == faultShard && cfg.FaultSSD != nil {
			fc := *cfg.FaultSSD
			fc.Clock = s.Clock
			if fc.Station == "" {
				fc.Station = fmt.Sprintf("s%d.ssd", i)
			}
			s.SSDFault = fault.Wrap(ssdDev, fc)
			ssdDev = s.SSDFault
		}
		if i == faultShard && cfg.FaultHDD != nil {
			fc := *cfg.FaultHDD
			fc.Clock = s.Clock
			if fc.Station == "" {
				fc.Station = fmt.Sprintf("s%d.hdd0", i)
			}
			s.HDDFault = fault.Wrap(hddDev, fc)
			hddDev = s.HDDFault
		}
		shardCPU := cpumodel.NewAccountant(s.Clock)
		s.ShardCPUs = append(s.ShardCPUs, shardCPU)
		ctrl, err := core.New(ccfg, ssdDev, hddDev, s.Clock, shardCPU)
		if err != nil {
			return fmt.Errorf("harness: shard %d: %w", i, err)
		}
		ctrl.SetScrub(cfg.Scrub)
		shards[i] = ctrl
	}
	sc, err := core.NewSharded(shards)
	if err != nil {
		return err
	}
	s.Sharded = sc
	s.Dev = sc
	// Flush fans across the shards: each drains only shard-local state,
	// results are index-gathered, and the first-index error wins — same
	// determinism argument as every other ForEachPoint use.
	s.flush = func() error {
		return ForEachPoint(sc.NumShards(), func(i int) error {
			if err := sc.Shard(i).Flush(); err != nil {
				return fmt.Errorf("harness: shard %d flush: %w", i, err)
			}
			return nil
		})
	}
	return nil
}

// cachePartitionConfig builds the SSD device for a cache-sized
// partition. The paper carves 128 MB - 1 GB partitions out of an 80 GB
// ioDrive, so the flash behind a partition is effectively heavily
// over-provisioned and garbage collection is mild; OverProvision = 1
// models that.
func cachePartitionConfig(blocks int64) ssd.Config {
	c := ssd.DefaultConfig(blocks)
	c.OverProvision = 1.0
	return c
}

// cacheBlocks returns the SSD size for the cache systems, defaulting to
// the paper's ~10% of the data set.
func cacheBlocks(cfg BuildConfig) int64 {
	if cfg.SSDCacheBlocks > 0 {
		return cfg.SSDCacheBlocks
	}
	b := cfg.DataBlocks / 10
	if b < 64 {
		b = 64
	}
	return b
}

func orDefault(v, def int64) int64 {
	if v > 0 {
		return v
	}
	return def
}
