// Package hdd models a mechanical hard disk drive: a seek-time curve over
// cylinder distance, rotational latency, media transfer rate, and head
// position state. The model captures the one asymmetry I-CASH is built
// on: a random 4 KB access costs milliseconds of seek plus rotation,
// while sequential streaming costs only transfer time — so packing many
// deltas into one sequentially-written log block turns many mechanical
// operations into one.
package hdd

import (
	"fmt"
	"math"

	"icash/internal/blockdev"
	"icash/internal/sim"
	"icash/internal/sim/event"
)

// Config describes the simulated drive. Defaults approximate the paper's
// 160 GB 7200 RPM Seagate SATA drive.
type Config struct {
	// CapacityBlocks is the capacity in 4 KB blocks.
	CapacityBlocks int64
	// Cylinders is the number of seek positions; LBAs map linearly onto
	// cylinders (outer-to-inner, ignoring zoning).
	Cylinders int
	// RPM is the spindle speed; full rotation = 60s/RPM.
	RPM int
	// TrackToTrackSeek is the minimum (adjacent cylinder) seek time.
	TrackToTrackSeek sim.Duration
	// AverageSeek is the seek time over one third of the stroke; the
	// seek curve is calibrated through this point.
	AverageSeek sim.Duration
	// MaxSeek is the full-stroke seek time.
	MaxSeek sim.Duration
	// TransferRate is the sustained media rate in bytes per second.
	TransferRate int64
	// WriteCacheBlocks sets the volatile on-drive write buffer: up to
	// this many consecutive sequential writes complete at buffer speed
	// before the model charges media time. 0 disables write caching.
	WriteCacheBlocks int
	// BufferLatency is the service time for a buffered (cached) write.
	BufferLatency sim.Duration
}

// DefaultConfig returns a 7200 RPM SATA drive scaled to capacityBlocks.
// The cylinder count is proportional to capacity relative to a 160 GB
// drive with 65536 cylinders: a scaled-down data set occupies a narrow
// band of a physical disk, so seeks within it are short — exactly as
// the paper's 960 MB data set on a 160 GB Seagate behaves.
func DefaultConfig(capacityBlocks int64) Config {
	cylinders := int(capacityBlocks / 640)
	if cylinders < 64 {
		cylinders = 64
	}
	if cylinders > 65536 {
		cylinders = 65536
	}
	return Config{
		CapacityBlocks:   capacityBlocks,
		Cylinders:        cylinders,
		RPM:              7200,
		TrackToTrackSeek: 800 * sim.Microsecond,
		AverageSeek:      8500 * sim.Microsecond,
		MaxSeek:          16 * sim.Millisecond,
		TransferRate:     100 << 20, // 100 MB/s sustained
		WriteCacheBlocks: 4,
		BufferLatency:    300 * sim.Microsecond,
	}
}

// streamSlots is how many concurrent sequential streams the drive's
// read-ahead/NCQ logic tracks (firmware typically follows several).
const streamSlots = 4

// nearGap is how far ahead of a stream head an access may land and
// still count as stream continuation (read-ahead window).
const nearGap = 32

// Device is the simulated disk. It is not safe for concurrent use.
type Device struct {
	cfg Config

	data map[int64][]byte
	fill blockdev.FillFunc

	// bad holds sectors with injected latent errors: reads fail with
	// blockdev.ErrMedia until a successful write remaps the sector.
	bad map[int64]bool

	headCyl  int // current head cylinder
	buffered int // writes currently absorbed by the write buffer

	// streams holds the next expected LBA of recently active sequential
	// streams, most recent first.
	streams [streamSlots]int64

	// tracer/station connect the drive to the concurrency engine: each
	// serviced request notes its mechanical time against the actuator
	// station. Nil when uninstrumented (standalone use).
	tracer  *event.Tracer
	station *event.Server

	// Stats is externally visible accounting.
	Stats Stats
}

// Stats aggregates drive activity.
type Stats struct {
	blockdev.Stats
	// Seeks counts mechanical seeks performed.
	Seeks int64
	// SeekTime is the total time spent seeking.
	SeekTime sim.Duration
	// RotationTime is the total rotational-latency time.
	RotationTime sim.Duration
	// SequentialOps counts requests serviced without a seek.
	SequentialOps int64
	// BufferedWrites counts writes absorbed by the write buffer.
	BufferedWrites int64
	// MediaErrors counts reads that failed on a latent sector error.
	MediaErrors int64
}

// New builds a drive from cfg.
func New(cfg Config) *Device {
	if cfg.CapacityBlocks <= 0 {
		panic("hdd: non-positive capacity")
	}
	if cfg.Cylinders <= 0 {
		cfg.Cylinders = 1
	}
	d := &Device{cfg: cfg, data: make(map[int64][]byte)}
	for i := range d.streams {
		d.streams[i] = -1
	}
	return d
}

// Blocks returns the capacity in blocks.
func (d *Device) Blocks() int64 { return d.cfg.CapacityBlocks }

// Config returns the drive configuration.
func (d *Device) Config() Config { return d.cfg }

// cylinderOf maps an LBA to its cylinder.
func (d *Device) cylinderOf(lba int64) int {
	return int(lba * int64(d.cfg.Cylinders) / d.cfg.CapacityBlocks)
}

// seekTime returns the time to move the head dist cylinders. The curve
// is the standard a + b*sqrt(dist) settle-plus-coast model, calibrated
// so that dist=1 costs TrackToTrackSeek and dist=Cylinders/3 costs
// AverageSeek, clamped at MaxSeek.
func (d *Device) seekTime(dist int) sim.Duration {
	if dist <= 0 {
		return 0
	}
	third := float64(d.cfg.Cylinders) / 3
	a := float64(d.cfg.TrackToTrackSeek)
	b := (float64(d.cfg.AverageSeek) - a) / math.Sqrt(third)
	t := sim.Duration(a + b*math.Sqrt(float64(dist)))
	if t > d.cfg.MaxSeek {
		t = d.cfg.MaxSeek
	}
	return t
}

// rotationLatency returns the expected half-rotation wait.
func (d *Device) rotationLatency() sim.Duration {
	full := sim.Duration(int64(60) * int64(sim.Second) / int64(d.cfg.RPM))
	return full / 2
}

// transferTime returns media transfer time for n bytes.
func (d *Device) transferTime(n int) sim.Duration {
	return sim.Duration(int64(n) * int64(sim.Second) / d.cfg.TransferRate)
}

// noteStream matches lba against the tracked sequential streams. It
// returns the continuation kind: 0 = exact next block, 1 = within the
// read-ahead window, -1 = no stream match; and promotes/updates the
// matched stream.
func (d *Device) noteStream(lba int64) int {
	for i, next := range d.streams {
		if next < 0 {
			continue
		}
		gap := lba - next
		if gap >= 0 && gap <= nearGap {
			// Continue this stream; move it to the front.
			copy(d.streams[1:], d.streams[:i])
			d.streams[0] = lba + 1
			if gap == 0 {
				return 0
			}
			return 1
		}
	}
	// New stream replaces the oldest.
	copy(d.streams[1:], d.streams[:streamSlots-1])
	d.streams[0] = lba + 1
	return -1
}

// access computes the mechanical cost of touching lba and updates head
// state. The drive follows several sequential streams at once (as real
// read-ahead and NCQ firmware does): exact continuation costs transfer
// only, continuation within the read-ahead window costs a short settle,
// and everything else pays seek plus rotation.
func (d *Device) access(lba int64, write bool) sim.Duration {
	kind := d.noteStream(lba)
	xfer := d.transferTime(blockdev.BlockSize)
	if kind == 0 {
		d.Stats.SequentialOps++
		d.headCyl = d.cylinderOf(lba)
		d.buffered = 0
		return xfer
	}
	if kind == 1 {
		// Read-ahead window: skip the gap at media speed.
		d.Stats.SequentialOps++
		d.headCyl = d.cylinderOf(lba)
		d.buffered = 0
		return xfer + d.cfg.TrackToTrackSeek
	}
	if write && d.cfg.WriteCacheBlocks > 0 && d.buffered < d.cfg.WriteCacheBlocks {
		// Non-sequential write absorbed by the volatile buffer; the
		// media catch-up happens asynchronously. The head still ends up
		// at the written location.
		d.buffered++
		d.Stats.BufferedWrites++
		d.headCyl = d.cylinderOf(lba)
		return d.cfg.BufferLatency
	}
	d.buffered = 0
	cyl := d.cylinderOf(lba)
	dist := cyl - d.headCyl
	if dist < 0 {
		dist = -dist
	}
	seek := d.seekTime(dist)
	rot := d.rotationLatency()
	d.headCyl = cyl
	if seek > 0 {
		d.Stats.Seeks++
		d.Stats.SeekTime += seek
	}
	d.Stats.RotationTime += rot
	return seek + rot + xfer
}

// ReadBlock services a read at lba.
func (d *Device) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	if d.bad[lba] {
		// The drive still pays the mechanical cost of the failed attempt.
		lat := d.access(lba, false)
		d.Stats.MediaErrors++
		d.tracer.Note(d.station, lat)
		return lat, fmt.Errorf("hdd: latent sector error at lba %d: %w", lba, blockdev.ErrMedia)
	}
	if b, ok := d.data[lba]; ok {
		copy(buf, b)
	} else if d.fill != nil {
		d.fill(lba, buf)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	lat := d.access(lba, false)
	d.Stats.NoteRead(blockdev.BlockSize, lat)
	d.tracer.Note(d.station, lat)
	return lat, nil
}

// WriteBlock services a write at lba.
func (d *Device) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return 0, err
	}
	if err := blockdev.CheckBuffer(buf); err != nil {
		return 0, err
	}
	b, ok := d.data[lba]
	if !ok {
		b = make([]byte, blockdev.BlockSize)
		d.data[lba] = b
	}
	copy(b, buf)
	// A successful write remaps a latent-error sector (spare-pool
	// reallocation), healing it.
	delete(d.bad, lba)
	lat := d.access(lba, true)
	d.Stats.NoteWrite(blockdev.BlockSize, lat)
	d.tracer.Note(d.station, lat)
	return lat, nil
}

// InjectLatentError marks lba as a latent sector error: subsequent
// reads fail with blockdev.ErrMedia until a write heals the sector.
// Test hook; no effect on timing until the sector is touched.
func (d *Device) InjectLatentError(lba int64) {
	if d.bad == nil {
		d.bad = make(map[int64]bool)
	}
	d.bad[lba] = true
}

var _ blockdev.Device = (*Device)(nil)

// Preload installs content at lba without timing, head movement or
// statistics (the disk "already contains" the data set).
func (d *Device) Preload(lba int64, content []byte) error {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return err
	}
	if err := blockdev.CheckBuffer(content); err != nil {
		return err
	}
	b, ok := d.data[lba]
	if !ok {
		b = make([]byte, blockdev.BlockSize)
		d.data[lba] = b
	}
	copy(b, content)
	return nil
}

var _ blockdev.Preloader = (*Device)(nil)

// Corrupt flips one bit of the stored content at lba, bypassing timing,
// head movement and statistics: the disk keeps serving the damaged
// bytes with no error — a seeded silent bit-rot for integrity tests
// and demos. Unwritten blocks are materialized from the fill oracle
// first so the corruption is visible against the expected content.
func (d *Device) Corrupt(lba int64, bit int) error {
	if err := blockdev.CheckRange(lba, d.cfg.CapacityBlocks); err != nil {
		return err
	}
	b, ok := d.data[lba]
	if !ok {
		b = make([]byte, blockdev.BlockSize)
		if d.fill != nil {
			d.fill(lba, b)
		}
		d.data[lba] = b
	}
	n := len(b) * 8
	bit = ((bit % n) + n) % n
	b[bit/8] ^= 1 << uint(bit%8)
	return nil
}

// SetFill installs the initial-content oracle for unwritten blocks.
func (d *Device) SetFill(f blockdev.FillFunc) { d.fill = f }

var _ blockdev.Filler = (*Device)(nil)

// Instrument connects the drive to the concurrency engine: every
// serviced request notes its mechanical service time against srv via
// tr. A nil tracer detaches the drive.
func (d *Device) Instrument(tr *event.Tracer, srv *event.Server) {
	d.tracer = tr
	d.station = srv
}

// ResetStats zeroes the accumulated statistics.
func (d *Device) ResetStats() { d.Stats = Stats{} }
