package hdd

import (
	"bytes"
	"testing"
	"testing/quick"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	d := New(DefaultConfig(1024))
	buf := make([]byte, blockdev.BlockSize)
	out := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(1)
	model := map[int64][]byte{}
	for i := 0; i < 2000; i++ {
		lba := int64(r.Intn(1024))
		if r.Float64() < 0.5 {
			r.Bytes(buf)
			if _, err := d.WriteBlock(lba, buf); err != nil {
				t.Fatal(err)
			}
			model[lba] = append([]byte(nil), buf...)
		} else {
			if _, err := d.ReadBlock(lba, out); err != nil {
				t.Fatal(err)
			}
			want := model[lba]
			if want == nil {
				want = make([]byte, blockdev.BlockSize)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("lba %d mismatch", lba)
			}
		}
	}
}

func TestSequentialVsRandom(t *testing.T) {
	cfg := DefaultConfig(1 << 20) // large disk: long seeks possible
	d := New(cfg)
	buf := make([]byte, blockdev.BlockSize)

	// Sequential scan: after the first access, transfer-only.
	var seqTotal sim.Duration
	for lba := int64(0); lba < 256; lba++ {
		dur, _ := d.ReadBlock(lba, buf)
		if lba > 0 {
			seqTotal += dur
		}
	}
	seqAvg := seqTotal / 255

	// Random far accesses: seek + rotation.
	d2 := New(cfg)
	var rndTotal sim.Duration
	r := sim.NewRand(2)
	for i := 0; i < 255; i++ {
		dur, _ := d2.ReadBlock(r.Int63n(1<<20), buf)
		rndTotal += dur
	}
	rndAvg := rndTotal / 255

	if seqAvg*20 > rndAvg {
		t.Fatalf("sequential (%v) should be far cheaper than random (%v)", seqAvg, rndAvg)
	}
	if d.Stats.SequentialOps < 250 {
		t.Fatalf("sequential ops = %d", d.Stats.SequentialOps)
	}
}

func TestSeekCurveMonotone(t *testing.T) {
	d := New(DefaultConfig(1 << 20))
	last := sim.Duration(0)
	for _, dist := range []int{1, 10, 100, 1000, 10000} {
		s := d.seekTime(dist)
		if s < last {
			t.Fatalf("seek(%d) = %v decreased from %v", dist, s, last)
		}
		last = s
	}
	if d.seekTime(0) != 0 {
		t.Fatal("zero distance must cost nothing")
	}
	if d.seekTime(1) < d.cfg.TrackToTrackSeek {
		t.Fatal("minimum seek below track-to-track time")
	}
	if d.seekTime(1<<30) > d.cfg.MaxSeek {
		t.Fatal("seek exceeds full stroke")
	}
}

func TestMultiStreamDetection(t *testing.T) {
	// Two interleaved sequential streams must both be recognized, the
	// way drive read-ahead firmware handles them.
	d := New(DefaultConfig(1 << 20))
	buf := make([]byte, blockdev.BlockSize)
	a, b := int64(0), int64(500000)
	var total sim.Duration
	for i := 0; i < 100; i++ {
		da, _ := d.ReadBlock(a, buf)
		db, _ := d.ReadBlock(b, buf)
		if i > 0 {
			total += da + db
		}
		a++
		b++
	}
	avg := total / 198
	if avg > 500*sim.Microsecond {
		t.Fatalf("interleaved streams average %v; stream detection broken", avg)
	}
}

func TestWriteBufferAbsorbsBursts(t *testing.T) {
	cfg := DefaultConfig(1 << 20)
	d := New(cfg)
	buf := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(3)
	var fast int
	for i := 0; i < cfg.WriteCacheBlocks; i++ {
		dur, _ := d.WriteBlock(r.Int63n(1<<20), buf)
		if dur == cfg.BufferLatency {
			fast++
		}
	}
	if fast == 0 {
		t.Fatal("write buffer never absorbed a random write")
	}
	if d.Stats.BufferedWrites == 0 {
		t.Fatal("buffered writes not counted")
	}
}

func TestBounds(t *testing.T) {
	d := New(DefaultConfig(10))
	buf := make([]byte, blockdev.BlockSize)
	if _, err := d.ReadBlock(10, buf); err == nil {
		t.Error("out of range read must fail")
	}
	if _, err := d.WriteBlock(-1, buf); err == nil {
		t.Error("negative write must fail")
	}
	if _, err := d.WriteBlock(0, buf[:1]); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestFillOracleAndPreload(t *testing.T) {
	d := New(DefaultConfig(64))
	d.SetFill(func(lba int64, buf []byte) { buf[0] = byte(lba) + 1 })
	buf := make([]byte, blockdev.BlockSize)
	d.ReadBlock(3, buf)
	if buf[0] != 4 {
		t.Fatal("fill oracle ignored")
	}
	pre := make([]byte, blockdev.BlockSize)
	pre[0] = 200
	if err := d.Preload(3, pre); err != nil {
		t.Fatal(err)
	}
	d.ReadBlock(3, buf)
	if buf[0] != 200 {
		t.Fatal("preload did not override oracle")
	}
}

// Property: latency is always positive and bounded by max seek + full
// rotation + transfer; content round-trips.
func TestLatencyBoundsProperty(t *testing.T) {
	cfg := DefaultConfig(4096)
	bound := cfg.MaxSeek + sim.Duration(int64(60)*int64(sim.Second)/int64(cfg.RPM)) +
		sim.Duration(int64(blockdev.BlockSize)*int64(sim.Second)/cfg.TransferRate)
	f := func(seed uint64) bool {
		d := New(cfg)
		r := sim.NewRand(seed)
		buf := make([]byte, blockdev.BlockSize)
		for i := 0; i < 200; i++ {
			lba := int64(r.Intn(4096))
			var dur sim.Duration
			var err error
			if r.Float64() < 0.5 {
				dur, err = d.WriteBlock(lba, buf)
			} else {
				dur, err = d.ReadBlock(lba, buf)
			}
			if err != nil || dur <= 0 || dur > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
