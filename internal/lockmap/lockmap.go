// Package lockmap is a sharded per-address lock manager — the
// fine-grained locking substrate for the sharded controller (ROADMAP
// item 1), landed ahead of the sharding itself so the lock hierarchy is
// machine-checked (icash-vet's lockorder analyzer) from the first diff
// that uses it.
//
// The idiom is go-nfsd's addrlock/lockmap: a fixed array of buckets,
// each a mutex-guarded set of held addresses with a condition variable
// for waiters. Acquiring an address takes its bucket's mutex only long
// enough to mark the address held (or to park on the condition
// variable); the bucket mutex is never held while the caller runs, so
// two goroutines touching different addresses in the same bucket
// contend only for nanoseconds, and goroutines touching different
// buckets never contend at all.
//
// Lock-order discipline (enforced statically by lockorder, dynamically
// by the -race jobs):
//
//   - an address lock is a leaf: no bucket mutex and no other lock
//     class may be acquired while holding one inside this package;
//   - holders must not call into blocking device or station code with
//     a bucket mutex held (the Acquire/Release fast path cannot — it
//     only touches the map);
//   - two addresses are only ever acquired together through Acquire2,
//     which orders them canonically (ascending) so concurrent pairs
//     cannot deadlock.
package lockmap

import "sync"

// nBuckets shards the address space. A power of two keeps the bucket
// index a mask; 64 is go-nfsd's sweet spot — enough to make same-bucket
// collisions rare at a few thousand concurrent streams, small enough
// that the zero-value LockMap stays cheap.
const nBuckets = 64

// LockMap provides mutual exclusion per uint64 address. The zero value
// is ready to use. Addresses are a namespace the caller defines — LBAs,
// slot indices, shard ids — and distinct LockMaps are distinct lock
// classes to the lockorder analyzer.
type LockMap struct {
	buckets [nBuckets]bucket
}

// bucket is one shard: a mutex-guarded held-set and a condition
// variable all waiters in the bucket park on. Broadcast wakes every
// waiter on any release; each re-checks its own address. Per-address
// conditions would wake fewer goroutines, but the held-set is expected
// to be sparse and short-lived, and one condition keeps release O(1)
// with no allocation.
type bucket struct {
	mu   sync.Mutex
	cond *sync.Cond
	held map[uint64]struct{}
}

func (lm *LockMap) bucket(addr uint64) *bucket {
	return &lm.buckets[addr&(nBuckets-1)]
}

// Acquire blocks until addr is exclusively held by the caller.
func (lm *LockMap) Acquire(addr uint64) {
	b := lm.bucket(addr)
	b.mu.Lock()
	if b.held == nil {
		b.held = make(map[uint64]struct{})
		b.cond = sync.NewCond(&b.mu)
	}
	for {
		if _, taken := b.held[addr]; !taken {
			b.held[addr] = struct{}{}
			b.mu.Unlock()
			return
		}
		b.cond.Wait()
	}
}

// Release unlocks addr. Releasing an address that is not held panics:
// it means two goroutines believed they owned the same address, which
// is exactly the corruption the map exists to prevent.
func (lm *LockMap) Release(addr uint64) {
	b := lm.bucket(addr)
	b.mu.Lock()
	if _, taken := b.held[addr]; !taken {
		b.mu.Unlock()
		panic("lockmap: Release of address not held")
	}
	delete(b.held, addr)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Held reports whether addr is currently held by someone. It is a
// test/assertion helper: the answer is stale the moment it returns.
func (lm *LockMap) Held(addr uint64) bool {
	b := lm.bucket(addr)
	b.mu.Lock()
	_, taken := b.held[addr]
	b.mu.Unlock()
	return taken
}

// Acquire2 acquires two addresses in canonical (ascending) order, so
// concurrent pairs can never deadlock against each other. Equal
// addresses are acquired once.
func (lm *LockMap) Acquire2(a, b uint64) {
	if a == b {
		lm.Acquire(a)
		return
	}
	if a > b {
		a, b = b, a
	}
	lm.Acquire(a)
	//lint:ignore lockorder same-class nesting is safe here: the addresses are distinct and acquired in canonical ascending order, so concurrent pairs cannot form an ABBA cycle
	lm.Acquire(b)
}

// Release2 releases a pair taken by Acquire2 (any argument order).
func (lm *LockMap) Release2(a, b uint64) {
	if a == b {
		lm.Release(a)
		return
	}
	lm.Release(a)
	lm.Release(b)
}

// With runs fn while holding addr. The release is deferred, so fn may
// panic without wedging the address.
func (lm *LockMap) With(addr uint64, fn func()) {
	lm.Acquire(addr)
	defer lm.Release(addr)
	fn()
}
