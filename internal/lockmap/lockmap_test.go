package lockmap

import (
	"sync"
	"testing"
)

// TestMutualExclusion hammers a handful of addresses from many
// goroutines; each address guards its own plain counter slot, so any
// exclusion failure is a lost update (and a -race report).
func TestMutualExclusion(t *testing.T) {
	var lm LockMap
	const (
		addrs   = 8
		workers = 16
		rounds  = 200
	)
	counts := make([]int, addrs)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				addr := uint64((w + r) % addrs)
				lm.Acquire(addr)
				counts[addr]++
				lm.Release(addr)
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != workers*rounds {
		t.Fatalf("lost updates: counted %d increments, want %d", total, workers*rounds)
	}
}

// TestSameBucketIndependence proves two addresses that share a bucket
// (addr and addr+nBuckets) do not exclude each other.
func TestSameBucketIndependence(t *testing.T) {
	var lm LockMap
	lm.Acquire(3)
	done := make(chan struct{})
	go func() {
		lm.Acquire(3 + nBuckets) // same bucket, different address: must not block
		lm.Release(3 + nBuckets)
		close(done)
	}()
	<-done
	lm.Release(3)
}

// TestHeld pins the assertion helper.
func TestHeld(t *testing.T) {
	var lm LockMap
	if lm.Held(7) {
		t.Fatal("fresh map reports address held")
	}
	lm.Acquire(7)
	if !lm.Held(7) {
		t.Fatal("acquired address not reported held")
	}
	lm.Release(7)
	if lm.Held(7) {
		t.Fatal("released address still reported held")
	}
}

// TestReleaseNotHeldPanics pins the double-release guard.
func TestReleaseNotHeldPanics(t *testing.T) {
	var lm LockMap
	lm.Acquire(1)
	lm.Release(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of unheld address did not panic")
		}
	}()
	lm.Release(1)
}

// TestAcquire2 pins the pair primitive: canonical order, equal-address
// dedupe, and release in either order.
func TestAcquire2(t *testing.T) {
	var lm LockMap
	lm.Acquire2(9, 4)
	if !lm.Held(9) || !lm.Held(4) {
		t.Fatal("Acquire2 did not take both addresses")
	}
	lm.Release2(4, 9)
	if lm.Held(9) || lm.Held(4) {
		t.Fatal("Release2 did not free both addresses")
	}

	lm.Acquire2(5, 5)
	if !lm.Held(5) {
		t.Fatal("Acquire2 with equal addresses did not take the address")
	}
	lm.Release2(5, 5)
	if lm.Held(5) {
		t.Fatal("Release2 with equal addresses did not free the address")
	}
}

// TestAcquire2NoDeadlock runs opposing pairs concurrently: without
// canonical ordering this livelocks/deadlocks almost immediately.
func TestAcquire2NoDeadlock(t *testing.T) {
	var lm LockMap
	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a, b := uint64(1), uint64(2)
				if g == 1 {
					a, b = b, a
				}
				lm.Acquire2(a, b)
				lm.Release2(a, b)
			}
		}(g)
	}
	wg.Wait()
}

// TestWith pins the closure helper, including release on panic.
func TestWith(t *testing.T) {
	var lm LockMap
	ran := false
	lm.With(11, func() {
		ran = true
		if !lm.Held(11) {
			t.Error("With body ran without holding the address")
		}
	})
	if !ran {
		t.Fatal("With did not run the body")
	}
	func() {
		defer func() { recover() }()
		lm.With(11, func() { panic("boom") })
	}()
	if lm.Held(11) {
		t.Fatal("address still held after panic inside With")
	}
}
