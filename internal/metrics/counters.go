package metrics

import (
	"fmt"
	"strings"

	"icash/internal/core"
	"icash/internal/fault"
)

// Counter is one named monotonic count, used to export fault, retry and
// degradation accounting in a stable, table-friendly order.
type Counter struct {
	Name  string
	Value int64
}

// ResilienceCounters flattens the controller's fault-handling and
// self-healing statistics into an ordered counter list. The order is
// part of the contract: tools print and diff these tables.
func ResilienceCounters(st *core.Stats) []Counter {
	return []Counter{
		{"transient_retries", st.TransientRetries},
		{"retry_backoff_ns", int64(st.RetryBackoffTime)},
		{"ssd_read_faults", st.SSDReadFaults},
		{"ssd_write_faults", st.SSDWriteFaults},
		{"hdd_read_faults", st.HDDReadFaults},
		{"hdd_write_faults", st.HDDWriteFaults},
		{"slot_scrubs", st.SlotScrubs},
		{"slot_scrub_repairs", st.SlotScrubRepairs},
		{"scrub_data_loss", st.ScrubDataLoss},
		{"slots_retired", st.SlotsRetired},
		{"bad_log_blocks", st.BadLogBlocks},
		{"torn_log_blocks", st.TornLogBlocks},
		{"dropped_log_records", st.DroppedLogRecs},
		{"degrade_events", st.DegradeEvents},
		{"degraded_data_loss", st.DegradedDataLoss},
		{"degraded_ops", st.DegradedOps},
		// Fail-slow handling (appended: the order above is frozen).
		{"deadline_exceeded", st.DeadlineExceeded},
		{"hedged_reads", st.HedgedReads},
		{"hedge_wins", st.HedgeWins},
		{"hedge_cancels", st.HedgeCancels},
		{"hedge_saved_ns", int64(st.HedgeSavedTime)},
		{"deadline_give_ups", st.DeadlineGiveUps},
		{"quarantine_events", st.QuarantineEvents},
		{"readmit_events", st.ReadmitEvents},
		{"quarantined_ops", st.QuarantinedOps},
		{"quarantine_skips", st.QuarantineSkips},
	}
}

// JournalCounters flattens the group-commit journal's accounting into
// an ordered counter list: how many transactions committed, how much
// payload each burst carried, the device time the commit writes cost,
// and what recovery had to throw away. The order is part of the
// contract: tools print and diff these tables.
func JournalCounters(st *core.Stats) []Counter {
	counters := []Counter{
		{"txns_committed", st.TxnsCommitted},
		{"group_commit_bytes", st.GroupCommitBytes},
		{"commit_write_ns", int64(st.CommitWriteTime)},
		{"txns_discarded_on_replay", st.TxnsDiscardedOnReplay},
	}
	labels := [...]string{"<=4KiB", "<=16KiB", "<=64KiB", "<=256KiB", "<=1MiB", ">1MiB"}
	for i, n := range st.GroupCommitBatchHist {
		counters = append(counters, Counter{"batch_" + labels[i], n})
	}
	return counters
}

// IntegrityCounters flattens the controller's end-to-end integrity
// accounting (checksums, scrubbing, verified repair) into an ordered
// counter list. The order is part of the contract: tools print and
// diff these tables.
func IntegrityCounters(st *core.Stats) []Counter {
	return []Counter{
		{"corruptions_detected", st.CorruptionsDetected},
		{"corruptions_repaired", st.CorruptionsRepaired},
		{"unrepairable_blocks", st.UnrepairableBlocks},
		{"scrub_passes", st.ScrubPasses},
		{"scrub_slot_checks", st.ScrubSlotChecks},
		{"scrub_home_checks", st.ScrubHomeChecks},
	}
}

// FaultCounters flattens a fault injector's accounting into an ordered
// counter list.
func FaultCounters(st *fault.Stats) []Counter {
	return []Counter{
		{"reads", st.Reads},
		{"writes", st.Writes},
		{"media_errors", st.MediaErrors},
		{"transient_errors", st.TransientErrors},
		{"lost_errors", st.LostErrors},
		{"torn_writes", st.TornWrites},
		{"healed_blocks", st.HealedBlocks},
		{"slow_ops", st.SlowOps},
		{"slow_time_ns", int64(st.SlowTime)},
		// Silent-corruption injection (appended: the order above is
		// frozen). These count injected lies, not detections.
		{"bit_flips", st.BitFlips},
		{"misdirected_writes", st.MisdirectedWrites},
		{"lost_writes", st.LostWrites},
	}
}

// FormatCounters renders counters one per line with the given indent,
// skipping zero entries when skipZero is set (quiet tables for healthy
// runs).
func FormatCounters(counters []Counter, indent string, skipZero bool) string {
	var b strings.Builder
	for _, c := range counters {
		if skipZero && c.Value == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s%-22s %d\n", indent, c.Name, c.Value)
	}
	return b.String()
}
