package metrics

import (
	"strings"
	"testing"

	"icash/internal/core"
	"icash/internal/fault"
)

func TestResilienceCountersComplete(t *testing.T) {
	st := core.Stats{
		TransientRetries: 3,
		SlotScrubs:       5,
		DegradeEvents:    1,
	}
	cs := ResilienceCounters(&st)
	seen := map[string]int64{}
	for _, c := range cs {
		if _, dup := seen[c.Name]; dup {
			t.Fatalf("duplicate counter %q", c.Name)
		}
		seen[c.Name] = c.Value
	}
	if seen["transient_retries"] != 3 || seen["slot_scrubs"] != 5 || seen["degrade_events"] != 1 {
		t.Fatalf("counter values not carried through: %v", seen)
	}
	// The order is part of the contract: retries first, new counter
	// groups appended at the end (fail-slow handling is the newest).
	if cs[0].Name != "transient_retries" || cs[len(cs)-1].Name != "quarantine_skips" {
		t.Fatalf("counter order changed: first %q last %q", cs[0].Name, cs[len(cs)-1].Name)
	}
}

func TestJournalCountersComplete(t *testing.T) {
	st := core.Stats{
		TxnsCommitted:         7,
		GroupCommitBytes:      12345,
		TxnsDiscardedOnReplay: 2,
	}
	st.GroupCommitBatchHist[0] = 5
	st.GroupCommitBatchHist[1] = 2
	cs := JournalCounters(&st)
	seen := map[string]int64{}
	for _, c := range cs {
		if _, dup := seen[c.Name]; dup {
			t.Fatalf("duplicate counter %q", c.Name)
		}
		seen[c.Name] = c.Value
	}
	if seen["txns_committed"] != 7 || seen["group_commit_bytes"] != 12345 ||
		seen["txns_discarded_on_replay"] != 2 || seen["batch_<=4KiB"] != 5 || seen["batch_<=16KiB"] != 2 {
		t.Fatalf("counter values not carried through: %v", seen)
	}
	// One counter per histogram bucket plus the four scalars; order is
	// part of the contract (scalars first, buckets ascending).
	if len(cs) != 4+len(st.GroupCommitBatchHist) {
		t.Fatalf("want %d counters, got %d", 4+len(st.GroupCommitBatchHist), len(cs))
	}
	if cs[0].Name != "txns_committed" || cs[len(cs)-1].Name != "batch_>1MiB" {
		t.Fatalf("counter order changed: first %q last %q", cs[0].Name, cs[len(cs)-1].Name)
	}
}

func TestFaultCountersCarryValues(t *testing.T) {
	st := fault.Stats{Reads: 10, TornWrites: 2}
	seen := map[string]int64{}
	for _, c := range FaultCounters(&st) {
		seen[c.Name] = c.Value
	}
	if seen["reads"] != 10 || seen["torn_writes"] != 2 {
		t.Fatalf("fault counters wrong: %v", seen)
	}
}

func TestFormatCounters(t *testing.T) {
	cs := []Counter{{"alpha", 1}, {"beta", 0}, {"gamma", 7}}
	all := FormatCounters(cs, "  ", false)
	if n := strings.Count(all, "\n"); n != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", n, all)
	}
	quiet := FormatCounters(cs, "  ", true)
	if strings.Contains(quiet, "beta") {
		t.Fatalf("skipZero kept a zero entry:\n%s", quiet)
	}
	if !strings.Contains(quiet, "alpha") || !strings.Contains(quiet, "gamma") {
		t.Fatalf("skipZero dropped a nonzero entry:\n%s", quiet)
	}
	if FormatCounters([]Counter{{"z", 0}}, "", true) != "" {
		t.Fatal("all-zero table should format to empty string")
	}
}
