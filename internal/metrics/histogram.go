package metrics

import (
	"fmt"
	"math/bits"

	"icash/internal/sim"
)

// Histogram is a fixed-bucket latency histogram with enough resolution
// for tail percentiles (p99, p999). Where LatencyRecorder uses one
// bucket per power of two (fine for means and medians, coarse at the
// tail), Histogram splits every power-of-two octave into four linear
// sub-buckets — two significant bits of mantissa — so a p999 estimate
// is within ~12.5% of the true sample instead of within 2x.
//
// The bucket layout is fixed (no allocation, mergeable by index):
//
//	d < histMinMag:            4 linear buckets of histMinMag/4 each
//	histMinMag <= d < 2^histMaxExp:  4 sub-buckets per octave
//	d >= 2^histMaxExp:         the last bucket (~17 s and beyond)
//
// The zero value is ready to use.
type Histogram struct {
	count   int64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
	buckets [histBuckets]int64
}

const (
	// histMinExp: durations below 2^histMinExp ns (~1 µs) share four
	// linear buckets; nothing in the simulation resolves finer.
	histMinExp = 10
	// histMaxExp caps the top octave at 2^34 ns (~17 s), matching
	// LatencyRecorder's range.
	histMaxExp = 34
	// histSub is the number of linear sub-buckets per octave.
	histSub = 4

	histMinMag  = int64(1) << histMinExp
	histBuckets = histSub + (histMaxExp-histMinExp)*histSub + 1
)

// histBucketOf maps a duration to its bucket index.
func histBucketOf(d sim.Duration) int {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	if v < histMinMag {
		return int(v / (histMinMag / histSub))
	}
	exp := 63 - bits.LeadingZeros64(uint64(v))
	if exp >= histMaxExp {
		return histBuckets - 1
	}
	// Two bits of mantissa below the leading bit select the sub-bucket.
	sub := int((v >> uint(exp-2)) & (histSub - 1))
	return histSub + (exp-histMinExp)*histSub + sub
}

// histBucketBounds returns the [lo, hi) duration range of bucket b.
func histBucketBounds(b int) (lo, hi sim.Duration) {
	if b < histSub {
		step := histMinMag / histSub
		return sim.Duration(int64(b) * step), sim.Duration(int64(b+1) * step)
	}
	if b >= histBuckets-1 {
		return sim.Duration(int64(1) << histMaxExp), sim.Duration(int64(1) << 62)
	}
	b -= histSub
	exp := histMinExp + b/histSub
	sub := int64(b % histSub)
	base := int64(1) << uint(exp)
	step := base / histSub
	return sim.Duration(base + sub*step), sim.Duration(base + (sub+1)*step)
}

// Record adds one sample.
func (h *Histogram) Record(d sim.Duration) {
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[histBucketOf(d)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total recorded time.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Min returns the smallest sample.
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Percentile returns an estimate of the p-th percentile (0 < p <= 100)
// as the midpoint of the containing bucket, clamped to the observed
// range.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	target := int64(p / 100 * float64(h.count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b]
		if cum >= target {
			lo, hi := histBucketBounds(b)
			return clampDur((lo+hi)/2, h.min, h.max)
		}
	}
	return h.max
}

// P50, P95, P99 and P999 are the percentile shorthands every table uses.
func (h *Histogram) P50() sim.Duration  { return h.Percentile(50) }
func (h *Histogram) P95() sim.Duration  { return h.Percentile(95) }
func (h *Histogram) P99() sim.Duration  { return h.Percentile(99) }
func (h *Histogram) P999() sim.Duration { return h.Percentile(99.9) }

// Merge adds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// String summarizes the distribution with the tail percentiles.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v",
		h.count, h.Mean(), h.P50(), h.P95(), h.P99(), h.P999(), h.max)
}
