package metrics

import (
	"sort"
	"testing"

	"icash/internal/sim"
)

// TestHistogramBucketRoundTrip: every bucket's bounds contain exactly
// the durations that map back to it.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for b := 0; b < histBuckets; b++ {
		lo, hi := histBucketBounds(b)
		if got := histBucketOf(lo); got != b {
			t.Fatalf("bucket %d: lower bound %v maps to %d", b, lo, got)
		}
		if b < histBuckets-1 {
			if got := histBucketOf(hi - 1); got != b {
				t.Fatalf("bucket %d: top %v maps to %d", b, hi-1, got)
			}
			if got := histBucketOf(hi); got != b+1 {
				t.Fatalf("bucket %d: upper bound %v maps to %d, want %d", b, hi, got, b+1)
			}
		}
	}
	if got := histBucketOf(-5); got != 0 {
		t.Errorf("negative duration maps to %d, want 0", got)
	}
}

// TestHistogramPercentileAccuracy checks percentile estimates against
// exact order statistics on a deterministic heavy-tailed sample set: the
// two-bit mantissa keeps every estimate within 15% (one sub-bucket) of
// the true value.
func TestHistogramPercentileAccuracy(t *testing.T) {
	r := sim.NewRand(7)
	var h Histogram
	samples := make([]sim.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mixture: mostly ~100 µs, a 2% tail out to ~50 ms.
		d := 50*sim.Microsecond + sim.Duration(r.Int63n(int64(100*sim.Microsecond)))
		if r.Float64() < 0.02 {
			d = 5*sim.Millisecond + sim.Duration(r.Int63n(int64(45*sim.Millisecond)))
		}
		h.Record(d)
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 95, 99, 99.9} {
		idx := int(p / 100 * float64(len(samples)))
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		exact := samples[idx]
		got := h.Percentile(p)
		lo := float64(exact) * 0.85
		hi := float64(exact) * 1.15
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("p%v = %v, want within 15%% of exact %v", p, got, exact)
		}
	}
}

// TestHistogramMerge: merging two histograms equals recording the
// concatenated sample stream.
func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	r := sim.NewRand(9)
	for i := 0; i < 5000; i++ {
		d := sim.Duration(r.Int63n(int64(20 * sim.Millisecond)))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		all.Record(d)
	}
	a.Merge(&b)
	if a != all {
		t.Fatal("merged histogram differs from directly recorded histogram")
	}
	var empty Histogram
	a.Merge(&empty)
	if a != all {
		t.Fatal("merging an empty histogram changed the receiver")
	}
}

// TestHistogramEdges covers the empty histogram and extreme samples.
func TestHistogramEdges(t *testing.T) {
	var h Histogram
	if h.Percentile(99) != 0 || h.String() != "no samples" {
		t.Fatal("empty histogram should report zero percentiles")
	}
	h.Record(0)
	h.Record(1 << 40) // beyond the top octave
	if h.Min() != 0 || h.Max() != 1<<40 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if p := h.Percentile(100); p != h.Max() {
		t.Errorf("p100 = %v, want max %v", p, h.Max())
	}
	if p := h.Percentile(0); p != h.Min() {
		t.Errorf("p0 = %v, want min %v", p, h.Min())
	}
}
