// Package metrics provides latency recording and table formatting for
// the experiment harness. Latencies go into logarithmic histograms so
// means and percentiles are available without storing every sample.
package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"icash/internal/sim"
)

// nBuckets covers 1 ns .. ~17 s in power-of-two buckets.
const nBuckets = 35

// LatencyRecorder accumulates a latency distribution.
type LatencyRecorder struct {
	count   int64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
	buckets [nBuckets]int64
}

// bucketOf returns the histogram bucket for d.
func bucketOf(d sim.Duration) int {
	if d <= 0 {
		return 0
	}
	b := 64 - bits.LeadingZeros64(uint64(d))
	if b >= nBuckets {
		b = nBuckets - 1
	}
	return b
}

// Record adds one sample.
func (r *LatencyRecorder) Record(d sim.Duration) {
	if r.count == 0 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	r.count++
	r.sum += d
	r.buckets[bucketOf(d)]++
}

// Count returns the number of samples.
func (r *LatencyRecorder) Count() int64 { return r.count }

// Sum returns the total recorded time.
func (r *LatencyRecorder) Sum() sim.Duration { return r.sum }

// Mean returns the average sample, or 0 when empty.
func (r *LatencyRecorder) Mean() sim.Duration {
	if r.count == 0 {
		return 0
	}
	return r.sum / sim.Duration(r.count)
}

// Min returns the smallest sample.
func (r *LatencyRecorder) Min() sim.Duration { return r.min }

// Max returns the largest sample.
func (r *LatencyRecorder) Max() sim.Duration { return r.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) using the
// geometric midpoint of the containing bucket.
func (r *LatencyRecorder) Quantile(q float64) sim.Duration {
	if r.count == 0 {
		return 0
	}
	if q <= 0 {
		return r.min
	}
	if q >= 1 {
		return r.max
	}
	target := int64(math.Ceil(q * float64(r.count)))
	var cum int64
	for b := 0; b < nBuckets; b++ {
		cum += r.buckets[b]
		if cum >= target {
			if b == 0 {
				return clampDur(0, r.min, r.max)
			}
			lo := int64(1) << uint(b-1)
			hi := int64(1) << uint(b)
			return clampDur(sim.Duration((lo+hi)/2), r.min, r.max)
		}
	}
	return r.max
}

// clampDur bounds a bucket-midpoint estimate to the observed range.
func clampDur(d, lo, hi sim.Duration) sim.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Merge adds o's samples into r.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	if o.count == 0 {
		return
	}
	if r.count == 0 || o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.count += o.count
	r.sum += o.sum
	for i := range r.buckets {
		r.buckets[i] += o.buckets[i]
	}
}

// String summarizes the distribution.
func (r *LatencyRecorder) String() string {
	if r.count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		r.count, r.Mean(), r.Quantile(0.5), r.Quantile(0.99), r.max)
}
