package metrics

import (
	"strings"
	"testing"
	"testing/quick"

	"icash/internal/sim"
)

func TestEmptyRecorder(t *testing.T) {
	var r LatencyRecorder
	if r.Count() != 0 || r.Mean() != 0 || r.Quantile(0.5) != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	if r.String() != "no samples" {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestBasicStats(t *testing.T) {
	var r LatencyRecorder
	for _, d := range []sim.Duration{10, 20, 30, 40} {
		r.Record(d * sim.Microsecond)
	}
	if r.Count() != 4 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Mean() != 25*sim.Microsecond {
		t.Fatalf("mean = %v", r.Mean())
	}
	if r.Min() != 10*sim.Microsecond || r.Max() != 40*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if !strings.Contains(r.String(), "n=4") {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestQuantileApproximation(t *testing.T) {
	var r LatencyRecorder
	// 99 samples at ~100µs, 1 sample at ~10ms.
	for i := 0; i < 99; i++ {
		r.Record(100 * sim.Microsecond)
	}
	r.Record(10 * sim.Millisecond)
	p50 := r.Quantile(0.5)
	p999 := r.Quantile(0.999)
	// Histogram buckets are powers of two: p50 must land in the bucket
	// containing 100µs (within 2x), p99.9 near the outlier.
	if p50 < 50*sim.Microsecond || p50 > 200*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p999 < 5*sim.Millisecond {
		t.Fatalf("p99.9 = %v, expected to reflect the outlier", p999)
	}
	if r.Quantile(0) != r.Min() || r.Quantile(1) != r.Max() {
		t.Fatal("quantile extremes")
	}
}

func TestMerge(t *testing.T) {
	var a, b LatencyRecorder
	a.Record(10 * sim.Microsecond)
	b.Record(30 * sim.Microsecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 20*sim.Microsecond {
		t.Fatalf("after merge: count=%d mean=%v", a.Count(), a.Mean())
	}
	var empty LatencyRecorder
	a.Merge(&empty)
	if a.Count() != 2 {
		t.Fatal("merging empty changed the recorder")
	}
}

// Property: mean is exact (not bucketed), min <= p50 <= max, and
// quantiles are monotone in q.
func TestRecorderProperties(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var r LatencyRecorder
		var sum sim.Duration
		for _, v := range raw {
			d := sim.Duration(v)
			r.Record(d)
			sum += d
		}
		if r.Mean() != sum/sim.Duration(len(raw)) {
			return false
		}
		last := sim.Duration(-1)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			cur := r.Quantile(q)
			if cur < last {
				return false
			}
			last = cur
		}
		return r.Min() <= r.Quantile(0.5) && r.Quantile(0.5) <= r.Max()*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
