package metrics

import (
	"fmt"
	"strings"

	"icash/internal/sim"
)

// StationStats is the per-device-station accounting the concurrency
// engine produces for one measured run: utilization of the station over
// the run, the queue-wait distribution, and queue-pressure indicators.
// One station is one independently serving unit — an HDD actuator, an
// SSD channel, one member of a RAID stripe.
type StationStats struct {
	// Name identifies the station ("hdd0", "ssd.ch2", ...).
	Name string
	// Ops counts requests served by the station.
	Ops int64
	// Busy is total service time (utilization numerator).
	Busy sim.Duration
	// Utilization is Busy over the observation window, in [0, 1].
	Utilization float64
	// QueuePeak is the largest queue occupancy observed.
	QueuePeak int
	// Stalls counts admissions that found the bounded queue full.
	Stalls int64
	// Wait is the queue-wait histogram (arrival to service start).
	Wait LatencyRecorder
	// Service is the service-time distribution after fail-slow shaping,
	// with tail-percentile resolution.
	Service Histogram
	// SlowOps counts requests inflated by a fail-slow plan; SlowTime is
	// the total extra service time injected.
	SlowOps  int64
	SlowTime sim.Duration
}

// String renders one scoreboard row.
func (s StationStats) String() string {
	row := fmt.Sprintf("%-8s ops=%-7d util=%5.1f%% qpeak=%-3d stalls=%-5d wait[%s]",
		s.Name, s.Ops, 100*s.Utilization, s.QueuePeak, s.Stalls, s.Wait.String())
	if s.Service.Count() > 0 {
		row += fmt.Sprintf(" svc[p50=%v p99=%v p999=%v]",
			s.Service.P50(), s.Service.P99(), s.Service.P999())
	}
	if s.SlowOps > 0 {
		row += fmt.Sprintf(" slow[ops=%d time=%v]", s.SlowOps, s.SlowTime)
	}
	return row
}

// FormatStations renders a station table, one row per station, with the
// given indent. Stations that served nothing are skipped when skipIdle
// is set.
func FormatStations(stations []StationStats, indent string, skipIdle bool) string {
	var b strings.Builder
	for _, s := range stations {
		if skipIdle && s.Ops == 0 {
			continue
		}
		b.WriteString(indent)
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}
