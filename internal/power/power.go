// Package power computes the energy consumed by a simulated run,
// reproducing the paper's Table 5 methodology: the authors subtract the
// idle power level and multiply the active difference by the benchmark
// running time, yielding Watt-hours attributable to the run. We compute
// the same quantity from simulated device activity:
//
//   - each HDD contributes its active power while busy (seek/rotate/
//     transfer time accumulated by the hdd model);
//   - the SSD contributes per-operation energy using the constants the
//     paper itself cites from Sun et al. [47]: 9.5 µJ per 4 KB read and
//     76.1 µJ per 4 KB write, plus erase energy;
//   - the CPU contributes its active-power delta while busy.
package power

import (
	"icash/internal/sim"
)

// Model holds the power/energy constants for one machine.
type Model struct {
	// HDDActiveWatts is per-disk power above idle while seeking or
	// transferring (the paper attributes 15 W per disk to the RAID).
	HDDActiveWatts float64
	// SSDReadJoules is energy per 4 KB SSD read (9.5 µJ, paper §5.2).
	SSDReadJoules float64
	// SSDWriteJoules is energy per 4 KB SSD write (76.1 µJ).
	SSDWriteJoules float64
	// SSDEraseJoules is energy per block erase.
	SSDEraseJoules float64
	// CPUActiveWatts is CPU package power above idle while busy.
	CPUActiveWatts float64
}

// DefaultModel returns the constants used across the experiment harness.
func DefaultModel() Model {
	return Model{
		HDDActiveWatts: 15.0,
		SSDReadJoules:  9.5e-6,
		SSDWriteJoules: 76.1e-6,
		SSDEraseJoules: 200e-6,
		CPUActiveWatts: 65.0,
	}
}

// Usage is the activity summary a run feeds into the model.
type Usage struct {
	// HDDBusy is the summed busy time across all disks.
	HDDBusy sim.Duration
	// SSDReads, SSDWrites and SSDErases are operation counts.
	SSDReads  int64
	SSDWrites int64
	SSDErases int64
	// CPUBusy is total CPU busy time.
	CPUBusy sim.Duration
}

// Joules returns the total energy for u in joules.
func (m Model) Joules(u Usage) float64 {
	j := m.HDDActiveWatts * u.HDDBusy.Seconds()
	j += m.SSDReadJoules * float64(u.SSDReads)
	j += m.SSDWriteJoules * float64(u.SSDWrites)
	j += m.SSDEraseJoules * float64(u.SSDErases)
	j += m.CPUActiveWatts * u.CPUBusy.Seconds()
	return j
}

// WattHours returns the total energy for u in watt-hours, the unit the
// paper's Table 5 reports.
func (m Model) WattHours(u Usage) float64 {
	return m.Joules(u) / 3600.0
}
