package power

import (
	"math"
	"testing"

	"icash/internal/sim"
)

func TestJoulesComposition(t *testing.T) {
	m := Model{
		HDDActiveWatts: 10,
		SSDReadJoules:  1e-6,
		SSDWriteJoules: 10e-6,
		SSDEraseJoules: 100e-6,
		CPUActiveWatts: 50,
	}
	u := Usage{
		HDDBusy:   2 * sim.Second,
		SSDReads:  1000,
		SSDWrites: 100,
		SSDErases: 10,
		CPUBusy:   1 * sim.Second,
	}
	want := 10*2.0 + 1e-6*1000 + 10e-6*100 + 100e-6*10 + 50*1.0
	if got := m.Joules(u); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Joules = %v, want %v", got, want)
	}
	if got := m.WattHours(u); math.Abs(got-want/3600) > 1e-12 {
		t.Fatalf("WattHours = %v", got)
	}
}

func TestDefaultModelUsesPaperConstants(t *testing.T) {
	m := DefaultModel()
	// The paper cites 9.5 µJ per 4 KB read and 76.1 µJ per write from
	// Sun et al. [47] (§5.2), and 15 W per RAID disk.
	if m.SSDReadJoules != 9.5e-6 || m.SSDWriteJoules != 76.1e-6 {
		t.Errorf("SSD energy constants diverge from the paper: %v %v",
			m.SSDReadJoules, m.SSDWriteJoules)
	}
	if m.HDDActiveWatts != 15.0 {
		t.Errorf("HDD watts = %v, paper attributes 15 W per disk", m.HDDActiveWatts)
	}
}

func TestZeroUsage(t *testing.T) {
	if DefaultModel().Joules(Usage{}) != 0 {
		t.Fatal("no activity must consume no energy")
	}
}

func TestEnergyMonotone(t *testing.T) {
	m := DefaultModel()
	base := Usage{SSDReads: 10, SSDWrites: 10, HDDBusy: sim.Second}
	more := base
	more.SSDWrites *= 10
	if m.Joules(more) <= m.Joules(base) {
		t.Fatal("more writes must consume more energy")
	}
}
