//go:build !race

// Package race exposes whether the binary was built with the race
// detector, mirroring the standard library's internal/race. Alloc-gate
// tests consult it: race instrumentation adds heap allocations, so
// exact AllocsPerRun pins only hold in non-race builds.
package race

// Enabled reports whether the race detector is compiled in.
const Enabled = false
