// Package raid implements RAID0 block-level striping over any set of
// simulated devices. The paper's second baseline is a 4-disk Linux MD
// RAID0 array (§4.4); striping spreads load but each random request
// still pays one disk's mechanical latency.
package raid

import (
	"fmt"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// Array0 is a RAID0 stripe set. It is not safe for concurrent use.
//
// RAID0 has no redundancy: a lost member takes its stripe chunks with
// it. The array tracks which members have failed (any error that
// classifies as device loss) and fails requests routed to them fast,
// without re-touching the dead device, so upper layers observe a
// consistent degraded view instead of timing-dependent behaviour.
type Array0 struct {
	members     []blockdev.Device
	chunkBlocks int64
	blocks      int64
	failed      []bool

	// Stats aggregates array-level request accounting.
	Stats Stats
}

// Stats extends the common device accounting with fault counters.
type Stats struct {
	blockdev.Stats
	// Faults counts member I/O errors observed by the array.
	Faults int64
	// MemberLosses counts members declared failed.
	MemberLosses int64
}

// NewArray0 builds a RAID0 array over members with the given chunk size
// in blocks (Linux MD default 512 KB = 128 blocks of 4 KB).
func NewArray0(members []blockdev.Device, chunkBlocks int64) (*Array0, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("raid: empty member set")
	}
	if chunkBlocks <= 0 {
		return nil, fmt.Errorf("raid: chunk size must be positive, got %d", chunkBlocks)
	}
	min := members[0].Blocks()
	for _, m := range members[1:] {
		if b := m.Blocks(); b < min {
			min = b
		}
	}
	// Only whole chunks participate in the stripe; a member's trailing
	// partial chunk is unusable, exactly as in Linux MD.
	usableChunks := min / chunkBlocks
	return &Array0{
		members:     members,
		chunkBlocks: chunkBlocks,
		blocks:      usableChunks * chunkBlocks * int64(len(members)),
		failed:      make([]bool, len(members)),
	}, nil
}

// noteError records a member error, marking the member failed when the
// error classifies as device loss.
func (a *Array0) noteError(m int, err error) {
	a.Stats.Faults++
	if blockdev.Classify(err) == blockdev.ClassDeviceLost && !a.failed[m] {
		a.failed[m] = true
		a.Stats.MemberLosses++
	}
}

// FailedMembers returns the indices of members declared failed.
func (a *Array0) FailedMembers() []int {
	var out []int
	for m, f := range a.failed {
		if f {
			out = append(out, m)
		}
	}
	return out
}

// Healthy reports whether every member is still in service.
func (a *Array0) Healthy() bool {
	for _, f := range a.failed {
		if f {
			return false
		}
	}
	return true
}

// Blocks returns the array capacity in blocks.
func (a *Array0) Blocks() int64 { return a.blocks }

// Members returns the backing devices (for stats collection).
func (a *Array0) Members() []blockdev.Device { return a.members }

// locate maps an array LBA to (member, member LBA) using chunked
// round-robin striping.
func (a *Array0) locate(lba int64) (int, int64) {
	chunk := lba / a.chunkBlocks
	within := lba % a.chunkBlocks
	member := int(chunk % int64(len(a.members)))
	memberChunk := chunk / int64(len(a.members))
	return member, memberChunk*a.chunkBlocks + within
}

// ReadBlock routes a read to the owning stripe member.
func (a *Array0) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, a.blocks); err != nil {
		return 0, err
	}
	m, mlba := a.locate(lba)
	if a.failed[m] {
		a.Stats.Faults++
		return 0, fmt.Errorf("raid: member %d failed: %w", m, blockdev.ErrDeviceLost)
	}
	d, err := a.members[m].ReadBlock(mlba, buf)
	if err != nil {
		a.noteError(m, err)
		return 0, fmt.Errorf("raid: member %d: %w", m, err)
	}
	a.Stats.NoteRead(blockdev.BlockSize, d)
	return d, nil
}

// WriteBlock routes a write to the owning stripe member.
func (a *Array0) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if err := blockdev.CheckRange(lba, a.blocks); err != nil {
		return 0, err
	}
	m, mlba := a.locate(lba)
	if a.failed[m] {
		a.Stats.Faults++
		return 0, fmt.Errorf("raid: member %d failed: %w", m, blockdev.ErrDeviceLost)
	}
	d, err := a.members[m].WriteBlock(mlba, buf)
	if err != nil {
		a.noteError(m, err)
		return 0, fmt.Errorf("raid: member %d: %w", m, err)
	}
	a.Stats.NoteWrite(blockdev.BlockSize, d)
	return d, nil
}

var _ blockdev.Device = (*Array0)(nil)

// Preload routes content installation to the owning stripe member,
// which must itself support preloading.
func (a *Array0) Preload(lba int64, content []byte) error {
	if err := blockdev.CheckRange(lba, a.blocks); err != nil {
		return err
	}
	m, mlba := a.locate(lba)
	p, ok := a.members[m].(blockdev.Preloader)
	if !ok {
		return fmt.Errorf("raid: member %d does not support preloading", m)
	}
	return p.Preload(mlba, content)
}

var _ blockdev.Preloader = (*Array0)(nil)

// SetFill installs the initial-content oracle, translating each
// member's local addresses back to array addresses.
func (a *Array0) SetFill(f blockdev.FillFunc) {
	for m, dev := range a.members {
		fl, ok := dev.(blockdev.Filler)
		if !ok {
			continue
		}
		member := m
		fl.SetFill(func(mlba int64, buf []byte) {
			chunk := mlba / a.chunkBlocks
			within := mlba % a.chunkBlocks
			arrayChunk := chunk*int64(len(a.members)) + int64(member)
			f(arrayChunk*a.chunkBlocks+within, buf)
		})
	}
}

var _ blockdev.Filler = (*Array0)(nil)

// ResetStats zeroes the array-level statistics.
func (a *Array0) ResetStats() { a.Stats = Stats{} }
