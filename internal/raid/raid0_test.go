package raid

import (
	"bytes"
	"testing"
	"testing/quick"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

func memMembers(n int, blocks int64) []blockdev.Device {
	ms := make([]blockdev.Device, n)
	for i := range ms {
		ms[i] = blockdev.NewMemDevice(blocks, 10*sim.Microsecond)
	}
	return ms
}

func TestNewValidation(t *testing.T) {
	if _, err := NewArray0(nil, 32); err == nil {
		t.Error("empty member set must fail")
	}
	if _, err := NewArray0(memMembers(2, 64), 0); err == nil {
		t.Error("zero chunk must fail")
	}
}

func TestCapacityWholeChunks(t *testing.T) {
	// 100-block members with 32-block chunks: only 3 whole chunks per
	// member participate (96 blocks), as in Linux MD.
	a, err := NewArray0(memMembers(4, 100), 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks() != 4*96 {
		t.Fatalf("capacity = %d, want %d", a.Blocks(), 4*96)
	}
}

func TestStripingLayout(t *testing.T) {
	a, err := NewArray0(memMembers(4, 128), 32)
	if err != nil {
		t.Fatal(err)
	}
	// Array LBA 0..31 -> member 0, 32..63 -> member 1, etc.; second
	// round of chunks goes back to member 0 at its chunk 1.
	cases := []struct{ lba, member, mlba int64 }{
		{0, 0, 0},
		{31, 0, 31},
		{32, 1, 0},
		{96, 3, 0},
		{128, 0, 32},
		{129, 0, 33},
		{160, 1, 32},
	}
	for _, c := range cases {
		m, mlba := a.locate(c.lba)
		if int64(m) != c.member || mlba != c.mlba {
			t.Errorf("locate(%d) = (%d, %d), want (%d, %d)", c.lba, m, mlba, c.member, c.mlba)
		}
	}
}

func TestRoundTripAndDistribution(t *testing.T) {
	members := memMembers(4, 256)
	a, err := NewArray0(members, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	out := make([]byte, blockdev.BlockSize)
	r := sim.NewRand(5)
	model := map[int64][]byte{}
	for i := 0; i < 3000; i++ {
		lba := r.Int63n(a.Blocks())
		if r.Float64() < 0.5 {
			r.Bytes(buf)
			if _, err := a.WriteBlock(lba, buf); err != nil {
				t.Fatal(err)
			}
			model[lba] = append([]byte(nil), buf...)
		} else {
			if _, err := a.ReadBlock(lba, out); err != nil {
				t.Fatal(err)
			}
			want := model[lba]
			if want == nil {
				want = make([]byte, blockdev.BlockSize)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("lba %d mismatch", lba)
			}
		}
	}
	// Uniform random traffic must spread across all members.
	for i, m := range members {
		md := m.(*blockdev.MemDevice)
		if md.Stats.Ops() < 100 {
			t.Errorf("member %d received only %d ops", i, md.Stats.Ops())
		}
	}
}

func TestBounds(t *testing.T) {
	a, _ := NewArray0(memMembers(2, 64), 16)
	buf := make([]byte, blockdev.BlockSize)
	if _, err := a.ReadBlock(a.Blocks(), buf); err == nil {
		t.Error("out-of-range read must fail")
	}
	if _, err := a.WriteBlock(-1, buf); err == nil {
		t.Error("negative write must fail")
	}
}

func TestPreloadAndFill(t *testing.T) {
	members := memMembers(4, 128)
	a, _ := NewArray0(members, 32)
	want := make([]byte, blockdev.BlockSize)
	want[0] = 9
	if err := a.Preload(130, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, blockdev.BlockSize)
	a.ReadBlock(130, got)
	if !bytes.Equal(got, want) {
		t.Fatal("preload mismatch")
	}

	// Fill oracle addresses must translate back to array LBAs.
	a2, _ := NewArray0(memMembers(4, 128), 32)
	a2.SetFill(func(lba int64, buf []byte) {
		buf[0] = byte(lba % 251)
	})
	for _, lba := range []int64{0, 31, 32, 100, 200, 400, 511} {
		a2.ReadBlock(lba, got)
		if got[0] != byte(lba%251) {
			t.Errorf("fill for lba %d returned tag %d, want %d", lba, got[0], byte(lba%251))
		}
	}
}

// Property: locate is a bijection from array LBAs onto (member, mlba)
// pairs within capacity.
func TestLocateBijectionProperty(t *testing.T) {
	a, _ := NewArray0(memMembers(3, 96), 8)
	seen := make(map[[2]int64]int64)
	f := func(raw uint32) bool {
		lba := int64(raw) % a.Blocks()
		m, mlba := a.locate(lba)
		if mlba >= 96 || m < 0 || m >= 3 {
			return false
		}
		key := [2]int64{int64(m), mlba}
		if prev, ok := seen[key]; ok && prev != lba {
			return false // two LBAs mapped to one physical location
		}
		seen[key] = lba
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
