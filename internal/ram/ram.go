// Package ram models the controller's DRAM buffer: a byte budget with
// reservation accounting and a flat access cost. The I-CASH controller
// partitions a configured amount of system RAM between the delta buffer
// and cached data blocks (paper §4.1); replacement decisions trigger when
// a reservation fails.
package ram

import (
	"fmt"

	"icash/internal/sim"
)

// AccessLatency is the simulated cost of servicing a 4 KB block from
// DRAM, covering copy and controller bookkeeping.
const AccessLatency = 1 * sim.Microsecond

// Budget tracks usage of a fixed byte budget.
type Budget struct {
	capacity int64
	used     int64

	// HighWater records the maximum bytes ever in use.
	HighWater int64
}

// NewBudget returns a budget of capacity bytes.
func NewBudget(capacity int64) *Budget {
	if capacity < 0 {
		panic("ram: negative capacity")
	}
	return &Budget{capacity: capacity}
}

// Capacity returns the configured size in bytes.
func (b *Budget) Capacity() int64 { return b.capacity }

// Used returns the bytes currently reserved.
func (b *Budget) Used() int64 { return b.used }

// Free returns the bytes currently available.
func (b *Budget) Free() int64 { return b.capacity - b.used }

// Reserve claims n bytes, reporting whether they fit.
func (b *Budget) Reserve(n int64) bool {
	if n < 0 {
		panic("ram: negative reservation")
	}
	if b.used+n > b.capacity {
		return false
	}
	b.used += n
	if b.used > b.HighWater {
		b.HighWater = b.used
	}
	return true
}

// Release returns n bytes to the budget. Releasing more than is in use
// is a programming error and panics.
func (b *Budget) Release(n int64) {
	if n < 0 {
		panic("ram: negative release")
	}
	if n > b.used {
		panic(fmt.Sprintf("ram: release %d exceeds used %d", n, b.used))
	}
	b.used -= n
}

// Utilization returns used/capacity in [0,1], or 0 for a zero budget.
func (b *Budget) Utilization() float64 {
	if b.capacity == 0 {
		return 0
	}
	return float64(b.used) / float64(b.capacity)
}
