package ram

import (
	"testing"
	"testing/quick"
)

func TestBudgetBasics(t *testing.T) {
	b := NewBudget(1000)
	if b.Capacity() != 1000 || b.Used() != 0 || b.Free() != 1000 {
		t.Fatal("fresh budget state wrong")
	}
	if !b.Reserve(600) {
		t.Fatal("reserve within capacity failed")
	}
	if b.Reserve(500) {
		t.Fatal("over-reserve succeeded")
	}
	if !b.Reserve(400) {
		t.Fatal("exact-fit reserve failed")
	}
	if b.Free() != 0 || b.Utilization() != 1.0 {
		t.Fatalf("free=%d util=%f", b.Free(), b.Utilization())
	}
	b.Release(1000)
	if b.Used() != 0 {
		t.Fatal("release did not return bytes")
	}
	if b.HighWater != 1000 {
		t.Fatalf("high water = %d", b.HighWater)
	}
}

func TestBudgetZeroCapacity(t *testing.T) {
	b := NewBudget(0)
	if b.Reserve(1) {
		t.Fatal("zero budget accepted a reservation")
	}
	if !b.Reserve(0) {
		t.Fatal("zero reservation must always fit")
	}
	if b.Utilization() != 0 {
		t.Fatal("utilization of empty budget")
	}
}

func TestBudgetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative capacity": func() { NewBudget(-1) },
		"negative reserve":  func() { NewBudget(10).Reserve(-1) },
		"negative release":  func() { NewBudget(10).Release(-1) },
		"over release":      func() { NewBudget(10).Release(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: used never exceeds capacity and never goes negative under
// any valid reserve/release sequence.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(ops []int16) bool {
		b := NewBudget(1 << 20)
		var held int64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if b.Reserve(n) {
					held += n
				}
			} else if -n <= held {
				b.Release(-n)
				held += n
			}
			if b.Used() != held || b.Used() < 0 || b.Used() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
