package server

// ReplyTracker is the client-side bookkeeping for one session: it
// matches server replies to issued request ids and enforces the same
// window discipline from the other end of the wire. The simulated
// clients use it to verify every served completion; fuzzing uses it to
// prove hostile reply streams (out-of-order, forged, duplicated ids)
// are classified, never mis-accounted.
type ReplyTracker struct {
	window   int
	inflight map[uint64]uint8 // id -> issued opcode
	dec      Decoder
	replies  []Reply
}

// NewReplyTracker returns a tracker enforcing the given window.
func NewReplyTracker(window int) *ReplyTracker {
	if window < 1 {
		window = 1
	}
	return &ReplyTracker{window: window, inflight: make(map[uint64]uint8)}
}

// Outstanding returns the number of unanswered requests.
func (t *ReplyTracker) Outstanding() int { return len(t.inflight) }

// Issue records a request entering the window. Reusing an id still in
// flight or exceeding the window is the client's own protocol bug and
// faults immediately — the server would tear the session down anyway.
func (t *ReplyTracker) Issue(id uint64, op uint8) error {
	if _, dup := t.inflight[id]; dup {
		return faultf(FaultDupID, "client: id %d already in flight", id)
	}
	if len(t.inflight) >= t.window {
		return faultf(FaultWindow, "client: window %d full", t.window)
	}
	t.inflight[id] = op
	return nil
}

// Feed parses received reply bytes, retiring matched requests. The
// returned slice (valid until the next Feed) lists the completions in
// wire order. A reply whose id was never issued or already completed is
// FaultUnknownID; an opcode disagreeing with the issued request is
// FaultOp.
func (t *ReplyTracker) Feed(p []byte) ([]Reply, error) {
	t.dec.Feed(p)
	t.replies = t.replies[:0]
	for {
		rep, err := t.dec.NextReply()
		if err == ErrNeedMore {
			return t.replies, nil
		}
		if err != nil {
			return t.replies, err
		}
		op, ok := t.inflight[rep.ID]
		if !ok {
			return t.replies, faultf(FaultUnknownID, "client: reply for id %d which is not in flight", rep.ID)
		}
		if op != rep.Op {
			return t.replies, faultf(FaultOp, "client: reply op %d for id %d issued as op %d", rep.Op, rep.ID, op)
		}
		if rep.Op == OpRead && rep.Status != StatusOK && len(rep.Payload) != 0 {
			return t.replies, faultf(FaultLength, "client: failed read %d carries %d payload bytes", rep.ID, len(rep.Payload))
		}
		delete(t.inflight, rep.ID)
		t.replies = append(t.replies, rep)
	}
}
