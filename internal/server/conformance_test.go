package server

import (
	"bytes"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/sim"
)

// confEnv is one conformance case's world: a real controller behind a
// session, with the surviving media kept for recovery-based assertions.
type confEnv struct {
	cfg  core.Config
	ssd  *blockdev.MemDevice
	hdd  *blockdev.MemDevice
	ctrl *core.Controller
	sess *Session
}

// newConfEnv builds a small controller (journal in group-commit mode,
// no op-count flush triggers so the tests control durability points)
// and a session over it.
func newConfEnv(t *testing.T, opt SessionOptions) *confEnv {
	t.Helper()
	cfg := core.NewDefaultConfig(4096, 256, 64<<10, 256<<10)
	cfg.ScanPeriod = 100
	cfg.ScanWindow = 400
	cfg.LogBlocks = 64
	cfg.FlushPeriodOps = 0
	cfg.FlushDirtyBytes = 1 << 30
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
	hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
	ctrl, err := core.New(cfg, ssd, hdd, clock, cpu)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return &confEnv{cfg: cfg, ssd: ssd, hdd: hdd, ctrl: ctrl, sess: NewSession("conf", ctrl, opt)}
}

// hello completes the handshake and asserts the reply bytes are exactly
// the expected grant.
func (e *confEnv) hello(t *testing.T, h Hello, want HelloReply) {
	t.Helper()
	out, err := e.sess.Feed(AppendHello(nil, h))
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	if wantBytes := AppendHelloReply(nil, want); !bytes.Equal(out, wantBytes) {
		t.Fatalf("handshake reply bytes:\n got %x\nwant %x", out, wantBytes)
	}
}

// defaultHello is the plain whole-disk handshake most cases start with.
func (e *confEnv) defaultHello(t *testing.T, window uint16) {
	t.Helper()
	e.hello(t,
		Hello{Version: ProtocolVersion, WantWindow: window, VM: AnyVM},
		HelloReply{Version: ProtocolVersion, Window: window, Status: HandshakeOK,
			BlockSize: blockdev.BlockSize, Blocks: uint64(e.cfg.VirtualBlocks)})
}

// pattern fills a block with a recognizable per-LBA pattern.
func pattern(lba int64, salt byte) []byte {
	b := make([]byte, blockdev.BlockSize)
	for i := range b {
		b[i] = byte(int64(i)*3+lba) ^ salt
	}
	return b
}

// TestConformance is the scripted byte-level protocol suite: each case
// feeds hand-built wire bytes and asserts both the reply bytes and the
// controller-visible effects.
func TestConformance(t *testing.T) {
	t.Run("handshake/window-capped", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		// The client asks for more than the server allows; the grant is
		// the server's cap, spelled out in the reply bytes.
		e.hello(t,
			Hello{Version: ProtocolVersion, WantWindow: 50, VM: AnyVM},
			HelloReply{Version: ProtocolVersion, Window: 8, Status: HandshakeOK,
				BlockSize: blockdev.BlockSize, Blocks: uint64(e.cfg.VirtualBlocks)})
		if e.sess.State() != StateServing {
			t.Fatalf("state %s, want serving", e.sess.State())
		}
		if e.sess.Window() != 8 {
			t.Fatalf("window %d, want 8", e.sess.Window())
		}
	})

	t.Run("handshake/bad-version", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		out, err := e.sess.Feed(AppendHello(nil, Hello{Version: 2, WantWindow: 4, VM: AnyVM}))
		if code, ok := FaultOf(err); !ok || code != FaultVersion {
			t.Fatalf("got %v, want FaultVersion", err)
		}
		want := AppendHelloReply(nil, HelloReply{Version: ProtocolVersion, Status: RefuseVersion})
		if !bytes.Equal(out, want) {
			t.Fatalf("refusal bytes:\n got %x\nwant %x", out, want)
		}
		if e.sess.State() != StateClosed {
			t.Fatalf("state %s, want closed after refusal", e.sess.State())
		}
	})

	t.Run("handshake/vm-refused", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{
			MaxWindow: 8,
			Partition: func(vm uint32) (int64, int64, bool) {
				if vm >= 4 {
					return 0, 0, false
				}
				return int64(vm) * 1024, 1024, true
			},
		})
		out, err := e.sess.Feed(AppendHello(nil, Hello{Version: ProtocolVersion, WantWindow: 4, VM: 7}))
		if code, ok := FaultOf(err); !ok || code != FaultVM {
			t.Fatalf("got %v, want FaultVM", err)
		}
		want := AppendHelloReply(nil, HelloReply{Version: ProtocolVersion, Status: RefuseVM})
		if !bytes.Equal(out, want) {
			t.Fatalf("refusal bytes:\n got %x\nwant %x", out, want)
		}
	})

	t.Run("handshake/partition-granted", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{
			MaxWindow: 8,
			Partition: func(vm uint32) (int64, int64, bool) { return int64(vm) * 1024, 1024, true },
		})
		e.hello(t,
			Hello{Version: ProtocolVersion, WantWindow: 4, VM: 2},
			HelloReply{Version: ProtocolVersion, Window: 4, Status: HandshakeOK,
				BlockSize: blockdev.BlockSize, FirstLBA: 2048, Blocks: 1024})
		// A request outside the granted partition is StatusRange — the
		// session stays up, the array is never asked.
		out, err := e.sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: 100, Blocks: 1}))
		if err != nil {
			t.Fatalf("out-of-partition read: %v", err)
		}
		want := AppendReply(nil, Reply{Op: OpRead, Status: StatusRange, ID: 1})
		if !bytes.Equal(out, want) {
			t.Fatalf("range reply bytes:\n got %x\nwant %x", out, want)
		}
		if e.sess.State() != StateServing {
			t.Fatalf("state %s, want serving after a range error", e.sess.State())
		}
	})

	t.Run("pipelined-reads", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		// Seed content through the controller directly, then read it back
		// through the wire — three pipelined requests in one burst.
		var contents [3][]byte
		for i := range contents {
			contents[i] = pattern(int64(10+i), 0x5A)
			if _, err := e.ctrl.WriteBlock(int64(10+i), contents[i]); err != nil {
				t.Fatalf("seed write: %v", err)
			}
		}
		var burst []byte
		for i := range contents {
			burst = AppendRequest(burst, Request{Op: OpRead, ID: uint64(i + 1), LBA: uint64(10 + i), Blocks: 1})
		}
		out, err := e.sess.Feed(burst)
		if err != nil {
			t.Fatalf("pipelined reads: %v", err)
		}
		// Replies come back in request order, each carrying the exact
		// content with a valid payload CRC.
		var want []byte
		for i := range contents {
			want = AppendReply(want, Reply{Op: OpRead, Status: StatusOK, ID: uint64(i + 1), Payload: contents[i]})
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("pipelined reply stream diverges (%d vs %d bytes)", len(out), len(want))
		}
		if st := e.sess.Stats(); st.Reads != 3 || st.Requests != 3 {
			t.Fatalf("stats %+v, want 3 reads", st)
		}
	})

	t.Run("write-flush-durability", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		content := pattern(42, 0x17)
		burst := AppendRequest(nil, Request{Op: OpWrite, ID: 1, LBA: 42, Blocks: 1, Payload: content})
		burst = AppendRequest(burst, Request{Op: OpFlush, ID: 2})
		out, err := e.sess.Feed(burst)
		if err != nil {
			t.Fatalf("write+flush: %v", err)
		}
		want := AppendReply(nil, Reply{Op: OpWrite, Status: StatusOK, ID: 1})
		want = AppendReply(want, Reply{Op: OpFlush, Status: StatusOK, ID: 2})
		if !bytes.Equal(out, want) {
			t.Fatalf("write+flush reply bytes:\n got %x\nwant %x", out, want)
		}
		// Controller-visible: the content reads back and the flush went
		// through the group-commit journal as a committed transaction.
		buf := make([]byte, blockdev.BlockSize)
		if _, err := e.ctrl.ReadBlock(42, buf); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(buf, content) {
			t.Fatal("flushed content does not read back")
		}
		if e.ctrl.Stats.TxnsCommitted == 0 {
			t.Fatal("flush acknowledged but no journal transaction committed")
		}
		if n, err := e.ctrl.AuditJournal(); err != nil || n != 0 {
			t.Fatalf("journal audit after flush: %d incomplete, err %v", n, err)
		}
	})

	t.Run("window-full-backpressure", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 2)
		before := pattern(5, 0)
		if _, err := e.ctrl.WriteBlock(5, before); err != nil {
			t.Fatalf("seed: %v", err)
		}
		// Three writes in one burst against a window of two: the whole
		// burst is rejected before any executes — over-pipelining must
		// not get partial side effects.
		var burst []byte
		for i := 0; i < 3; i++ {
			burst = AppendRequest(burst, Request{Op: OpWrite, ID: uint64(i + 1), LBA: 5, Blocks: 1, Payload: pattern(5, byte(i+1))})
		}
		out, err := e.sess.Feed(burst)
		if code, ok := FaultOf(err); !ok || code != FaultWindow {
			t.Fatalf("got %v, want FaultWindow", err)
		}
		if len(out) != 0 {
			t.Fatalf("%d reply bytes emitted for a rejected burst", len(out))
		}
		if e.sess.State() != StateFailed {
			t.Fatalf("state %s, want failed", e.sess.State())
		}
		buf := make([]byte, blockdev.BlockSize)
		if _, err := e.ctrl.ReadBlock(5, buf); err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !bytes.Equal(buf, before) {
			t.Fatal("rejected burst still mutated the array")
		}
		if st := e.sess.Stats(); st.Writes != 0 {
			t.Fatalf("stats %+v, want zero executed writes", st)
		}
	})

	t.Run("dup-id-in-flight", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		burst := AppendRequest(nil, Request{Op: OpRead, ID: 9, LBA: 0, Blocks: 1})
		burst = AppendRequest(burst, Request{Op: OpRead, ID: 9, LBA: 1, Blocks: 1})
		_, err := e.sess.Feed(burst)
		if code, ok := FaultOf(err); !ok || code != FaultDupID {
			t.Fatalf("got %v, want FaultDupID", err)
		}
		// A retired id is reusable: the in-flight set empties once
		// replies are emitted, so sequential reuse is legal.
		e2 := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e2.defaultHello(t, 4)
		for i := 0; i < 2; i++ {
			if _, err := e2.sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: 9, LBA: 0, Blocks: 1})); err != nil {
				t.Fatalf("sequential id reuse round %d: %v", i, err)
			}
		}
	})

	t.Run("mid-transaction-disconnect", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		frame := AppendRequest(nil, Request{Op: OpWrite, ID: 1, LBA: 3, Blocks: 1, Payload: pattern(3, 0x33)})
		// The peer dies halfway through the frame.
		out, err := e.sess.Feed(frame[:len(frame)/2])
		if err != nil || len(out) != 0 {
			t.Fatalf("partial frame: out %d bytes, err %v", len(out), err)
		}
		err = e.sess.CloseStream()
		if code, ok := FaultOf(err); !ok || code != FaultTruncated {
			t.Fatalf("got %v, want FaultTruncated", err)
		}
		if e.sess.State() != StateFailed {
			t.Fatalf("state %s, want failed", e.sess.State())
		}
		// The half-received write never touched the array, and the array
		// is still internally consistent.
		buf := make([]byte, blockdev.BlockSize)
		if _, err := e.ctrl.ReadBlock(3, buf); err != nil {
			t.Fatalf("read back: %v", err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("half-received write leaked into the array")
			}
		}
		if err := e.ctrl.CheckInvariants(); err != nil {
			t.Fatalf("invariants after disconnect: %v", err)
		}
	})

	t.Run("clean-disconnect-between-frames", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		if _, err := e.sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: 0, Blocks: 1})); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := e.sess.CloseStream(); err != nil {
			t.Fatalf("clean close: %v", err)
		}
		if e.sess.State() != StateClosed {
			t.Fatalf("state %s, want closed", e.sess.State())
		}
	})

	t.Run("graceful-shutdown-drain", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		content := pattern(77, 0x77)
		burst := AppendRequest(nil, Request{Op: OpWrite, ID: 1, LBA: 77, Blocks: 1, Payload: content})
		burst = AppendRequest(burst, Request{Op: OpClose, ID: 2})
		out, err := e.sess.Feed(burst)
		if err != nil {
			t.Fatalf("write+close: %v", err)
		}
		want := AppendReply(nil, Reply{Op: OpWrite, Status: StatusOK, ID: 1})
		want = AppendReply(want, Reply{Op: OpClose, Status: StatusOK, ID: 2})
		if !bytes.Equal(out, want) {
			t.Fatalf("close reply bytes:\n got %x\nwant %x", out, want)
		}
		if e.sess.State() != StateClosed {
			t.Fatalf("state %s, want closed", e.sess.State())
		}
		// The close ack promised a journal drain: the write survives a
		// power cycle. Model one — fresh controller recovered from the
		// same media — and read the block back.
		clock := sim.NewClock()
		cpu := cpumodel.NewAccountant(clock)
		rc, err := core.Recover(e.cfg, e.ssd, e.hdd, clock, cpu)
		if err != nil {
			t.Fatalf("recover after close: %v", err)
		}
		buf := make([]byte, blockdev.BlockSize)
		if _, err := rc.ReadBlock(77, buf); err != nil {
			t.Fatalf("read back after recovery: %v", err)
		}
		if !bytes.Equal(buf, content) {
			t.Fatal("close-acknowledged write did not survive recovery")
		}
	})

	t.Run("frames-after-close", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		burst := AppendRequest(nil, Request{Op: OpClose, ID: 1})
		burst = AppendRequest(burst, Request{Op: OpRead, ID: 2, LBA: 0, Blocks: 1})
		_, err := e.sess.Feed(burst)
		if code, ok := FaultOf(err); !ok || code != FaultState {
			t.Fatalf("got %v, want FaultState", err)
		}
	})

	t.Run("bytes-before-handshake-reply", func(t *testing.T) {
		// A request frame where the hello should be is a framing fault:
		// the magics are distinct exactly so this is caught immediately.
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		_, err := e.sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: 0, Blocks: 1}))
		if code, ok := FaultOf(err); !ok || code != FaultMagic {
			t.Fatalf("got %v, want FaultMagic", err)
		}
	})

	t.Run("corrupt-request-crc", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		frame := AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: 0, Blocks: 1})
		frame[10] ^= 0x01 // flip an id bit under the header CRC
		_, err := e.sess.Feed(frame)
		if code, ok := FaultOf(err); !ok || code != FaultCRC {
			t.Fatalf("got %v, want FaultCRC", err)
		}
		if e.sess.State() != StateFailed {
			t.Fatalf("state %s, want failed", e.sess.State())
		}
	})

	t.Run("device-error-absorbed-vs-fatal", func(t *testing.T) {
		// Media-class errors become StatusIO replies and the session
		// stays up; device-lost is fatal and surfaces wrapped, so the
		// caller can classify it with blockdev.Classify.
		mb := &memBackend{n: 64}
		mb.failLBA, mb.failErr = 7, blockdev.ErrMedia
		sess := NewSession("errs", mb, SessionOptions{MaxWindow: 8})
		if _, err := sess.Feed(AppendHello(nil, Hello{Version: ProtocolVersion, WantWindow: 4, VM: AnyVM})); err != nil {
			t.Fatalf("handshake: %v", err)
		}
		out, err := sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: 7, Blocks: 1}))
		if err != nil {
			t.Fatalf("absorbed error killed the session: %v", err)
		}
		want := AppendReply(nil, Reply{Op: OpRead, Status: StatusIO, ID: 1})
		if !bytes.Equal(out, want) {
			t.Fatalf("StatusIO reply bytes:\n got %x\nwant %x", out, want)
		}
		if sess.State() != StateServing {
			t.Fatalf("state %s, want serving after an absorbed error", sess.State())
		}
		if st := sess.Stats(); st.StatusErrors != 1 {
			t.Fatalf("stats %+v, want one status error", st)
		}

		mb.failErr = blockdev.ErrDeviceLost
		_, err = sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: 2, LBA: 7, Blocks: 1}))
		if blockdev.Classify(err) != blockdev.ClassDeviceLost {
			t.Fatalf("got %v, want a wrapped device-lost error", err)
		}
		if sess.State() != StateFailed {
			t.Fatalf("state %s, want failed after device loss", sess.State())
		}
	})

	t.Run("trim-zeroes", func(t *testing.T) {
		e := newConfEnv(t, SessionOptions{MaxWindow: 8})
		e.defaultHello(t, 4)
		if _, err := e.ctrl.WriteBlock(20, pattern(20, 0xFF)); err != nil {
			t.Fatalf("seed: %v", err)
		}
		out, err := e.sess.Feed(AppendRequest(nil, Request{Op: OpTrim, ID: 1, LBA: 20, Blocks: 1}))
		if err != nil {
			t.Fatalf("trim: %v", err)
		}
		want := AppendReply(nil, Reply{Op: OpTrim, Status: StatusOK, ID: 1})
		if !bytes.Equal(out, want) {
			t.Fatalf("trim reply bytes:\n got %x\nwant %x", out, want)
		}
		buf := make([]byte, blockdev.BlockSize)
		if _, err := e.ctrl.ReadBlock(20, buf); err != nil {
			t.Fatalf("read back: %v", err)
		}
		for _, b := range buf {
			if b != 0 {
				t.Fatal("trimmed block still has content")
			}
		}
	})
}

// memBackend is a minimal in-memory Backend for session-level tests
// that need controlled error injection without a controller.
type memBackend struct {
	n       int64
	blocks  map[int64][]byte
	failLBA int64
	failErr error
	flushes int
}

func (m *memBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	if lba < 0 || lba >= m.n {
		return 0, blockdev.ErrOutOfRange
	}
	if m.failErr != nil && lba == m.failLBA {
		return 0, m.failErr
	}
	if b, ok := m.blocks[lba]; ok {
		copy(buf, b)
	} else {
		clear(buf)
	}
	return sim.Microsecond, nil
}

func (m *memBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	if lba < 0 || lba >= m.n {
		return 0, blockdev.ErrOutOfRange
	}
	if m.failErr != nil && lba == m.failLBA {
		return 0, m.failErr
	}
	if m.blocks == nil {
		m.blocks = make(map[int64][]byte)
	}
	m.blocks[lba] = append([]byte(nil), buf...)
	return sim.Microsecond, nil
}

func (m *memBackend) Flush() error  { m.flushes++; return nil }
func (m *memBackend) Blocks() int64 { return m.n }
