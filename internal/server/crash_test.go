package server

import (
	"testing"

	"icash/internal/blockdev"
	"icash/internal/core"
	"icash/internal/cpumodel"
	"icash/internal/fault"
	"icash/internal/fault/crashtest"
	"icash/internal/sim"
)

// The crash sweep's deterministic frame workload. The same seed always
// produces the same frame script and therefore the same HDD write
// sequence — which is what lets a traced dry run enumerate crash
// points for the armed runs, exactly like the in-process crash harness.
const (
	crashSeed       = 1701
	crashOps        = 400
	crashLBASpace   = 96
	crashWriteFrac  = 0.6
	crashFlushEvery = 25
	crashMaxBurst   = 4 // pipelined frames per Feed; crashes land mid-burst
)

// serveRig is one crash run's world: controller on a crashable HDD,
// driven through a session.
type serveRig struct {
	cfg  core.Config
	ssd  *blockdev.MemDevice
	hddF *fault.Device
	ctrl *core.Controller
	sess *Session
}

func buildServeRig(t *testing.T) *serveRig {
	t.Helper()
	cfg := core.NewDefaultConfig(4096, 256, 64<<10, 256<<10)
	cfg.ScanPeriod = 100
	cfg.ScanWindow = 400
	cfg.LogBlocks = 64
	cfg.FlushPeriodOps = 0
	cfg.FlushDirtyBytes = 1 << 30
	clock := sim.NewClock()
	cpu := cpumodel.NewAccountant(clock)
	ssd := blockdev.NewMemDevice(cfg.SSDBlocks, 10*sim.Microsecond)
	hdd := blockdev.NewMemDevice(cfg.VirtualBlocks+cfg.LogBlocks, 100*sim.Microsecond)
	hddF := fault.Wrap(hdd, fault.Config{Seed: crashSeed, Clock: clock, Station: "hdd"})
	ctrl, err := core.New(cfg, ssd, hddF, clock, cpu)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	return &serveRig{cfg: cfg, ssd: ssd, hddF: hddF, ctrl: ctrl,
		sess: NewSession("crash", ctrl, SessionOptions{MaxWindow: 8})}
}

// genBlock fills a deterministic content block for one write.
func genBlock(rnd *sim.Rand) []byte {
	b := make([]byte, blockdev.BlockSize)
	rnd.Bytes(b)
	return b
}

// runServedCrashWorkload replays the deterministic frame script against
// the rig's session, keeping the durability oracle in sync with what
// the wire acknowledged: a write joins the history when its reply is
// seen, the floor rises when a flush reply is seen. A power cut fires
// inside Feed — after frame decode, before that request's reply is
// emitted — so the replies already in the returned buffer identify
// exactly which requests of the burst completed.
func runServedCrashWorkload(t *testing.T, rig *serveRig, o *crashtest.Oracle) (crashed bool) {
	t.Helper()
	if _, err := rig.sess.Feed(AppendHello(nil, Hello{Version: ProtocolVersion, WantWindow: 8, VM: AnyVM})); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	rnd := sim.NewRand(crashSeed)
	id := uint64(1)

	type scripted struct {
		op      uint8
		lba     int64
		content []byte
	}
	for issued := 0; issued < crashOps; {
		burstN := 1 + rnd.Intn(crashMaxBurst)
		var frames []byte
		var burst []scripted
		for j := 0; j < burstN && issued < crashOps; j++ {
			lba := int64(rnd.Intn(crashLBASpace))
			if rnd.Float64() < crashWriteFrac {
				content := genBlock(rnd)
				frames = AppendRequest(frames, Request{Op: OpWrite, ID: id, LBA: uint64(lba), Blocks: 1, Payload: content})
				burst = append(burst, scripted{op: OpWrite, lba: lba, content: content})
			} else {
				frames = AppendRequest(frames, Request{Op: OpRead, ID: id, LBA: uint64(lba), Blocks: 1})
				burst = append(burst, scripted{op: OpRead, lba: lba})
			}
			id++
			issued++
			if issued%crashFlushEvery == 0 {
				frames = AppendRequest(frames, Request{Op: OpFlush, ID: id})
				burst = append(burst, scripted{op: OpFlush})
				id++
			}
		}

		out, err := rig.sess.Feed(frames)
		// The replies already emitted are acknowledgements: their
		// requests completed against the array before any crash.
		var d Decoder
		d.Feed(out)
		acked := 0
		for {
			rep, derr := d.NextReply()
			if derr != nil {
				break
			}
			s := burst[acked]
			if rep.Status == StatusOK {
				switch s.op {
				case OpWrite:
					o.NoteWrite(s.lba, s.content)
				case OpFlush:
					o.NoteFlush()
				}
			}
			acked++
		}

		if err != nil {
			if blockdev.Classify(err) != blockdev.ClassDeviceLost {
				t.Fatalf("workload error other than the armed power cut: %v", err)
			}
			// The request the cut interrupted is burst[acked]: decoded,
			// executing, reply never emitted. An interrupted write may
			// still surface after recovery if its log record landed, so
			// it joins the history without raising the durable floor. An
			// interrupted flush was never acknowledged: no floor raise.
			if acked < len(burst) && burst[acked].op == OpWrite {
				o.NoteWrite(burst[acked].lba, burst[acked].content)
			}
			return true
		}
		if acked != len(burst) {
			t.Fatalf("clean burst acked %d of %d requests", acked, len(burst))
		}
	}
	return false
}

// TestServedCrashSweep cuts power at log writes reached through the
// block-service path — mid-burst, between frame decode and reply
// emission — then recovers and holds the array to the wire's promises:
// no write the server acknowledged as durable (flush/close reply) may
// be lost, no recovered block may hold content never written, the
// journal audit must agree with recovery's discard count, and the
// controller invariants must hold. This is the served twin of the
// in-process crashtest sweep.
func TestServedCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is not a -short test")
	}

	// Dry run: trace every HDD write and collect the 1-indexed write
	// counts landing in the delta-log region.
	dry := buildServeRig(t)
	dry.hddF.TraceWrites = true
	if crashed := runServedCrashWorkload(t, dry, crashtest.NewOracle()); crashed {
		t.Fatal("dry run crashed with nothing armed")
	}
	if err := dry.sess.CloseStream(); err != nil {
		t.Fatalf("dry run close: %v", err)
	}
	var points []int64
	for i, lba := range dry.hddF.WriteLog {
		if lba >= dry.cfg.VirtualBlocks {
			points = append(points, int64(i+1))
		}
	}
	if len(points) < 8 {
		t.Fatalf("only %d log-write crash points traced; the workload must flush more", len(points))
	}

	// Spread ~8 crash points across the run, each with a healthy spread
	// of torn-write sizes (0 = cut before the block, partial tears, and
	// a full-block landing).
	picks := make([]int64, 0, 8)
	for i := 0; i < 8; i++ {
		picks = append(picks, points[i*(len(points)-1)/7])
	}
	torn := []int{0, 1, 100, 2048, 4096}

	for _, point := range picks {
		for _, tear := range torn {
			o := crashtest.NewOracle()
			rig := buildServeRig(t)
			rig.hddF.SetCrashAfterWrites(point, tear)
			if crashed := runServedCrashWorkload(t, rig, o); !crashed {
				t.Fatalf("point %d tear %d: armed crash never fired (saw %d writes)",
					point, tear, rig.hddF.WritesSeen())
			}

			// Power-on: RAM gone, media (torn block included) survives.
			rig.hddF.Restore()
			clock := sim.NewClock()
			cpu := cpumodel.NewAccountant(clock)
			rc, err := core.Recover(rig.cfg, rig.ssd, rig.hddF, clock, cpu)
			if err != nil {
				t.Fatalf("point %d tear %d: recover: %v", point, tear, err)
			}
			if err := rc.CheckInvariants(); err != nil {
				t.Fatalf("point %d tear %d: post-recovery invariants: %v", point, tear, err)
			}
			incomplete, err := rc.AuditJournal()
			if err != nil {
				t.Fatalf("point %d tear %d: journal audit: %v", point, tear, err)
			}
			if int64(incomplete) != rc.Stats.TxnsDiscardedOnReplay {
				t.Fatalf("point %d tear %d: %d incomplete transactions on disk, recovery discarded %d",
					point, tear, incomplete, rc.Stats.TxnsDiscardedOnReplay)
			}

			buf := make([]byte, blockdev.BlockSize)
			for lba := int64(0); lba < crashLBASpace; lba++ {
				if _, err := rc.ReadBlock(lba, buf); err != nil {
					t.Fatalf("point %d tear %d: read-back lba %d: %v", point, tear, lba, err)
				}
				if err := o.Check(lba, buf); err != nil {
					t.Fatalf("point %d tear %d: %v", point, tear, err)
				}
			}
		}
	}
}
