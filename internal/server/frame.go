// Package server is the block-service front-end: an NBD-style framed
// protocol (length-prefixed read/write/flush/trim RPCs with request
// ids and CRC-protected headers, negotiated by a handshake) and the
// session state machine that drives the I-CASH controller from it.
//
// The package deliberately owns no clock and no goroutines. A Session
// is a pure byte-in/byte-out machine: callers feed it received bytes
// and transmit whatever it returns. The simulated front-end (sim.go)
// composes sessions as service stations on the discrete-event engine
// under the single sim.Clock — a served run is bit-identical at any
// worker count — while cmd/icash-serve can bind the very same Session
// to a real TCP connection for interactive use.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"icash/internal/blockdev"
)

// Protocol constants. The frame grammar is:
//
//	client:  hello · (request)*
//	server:  helloReply · (reply)*
//
// All integers are little-endian; every header ends in an IEEE CRC32
// of the preceding header bytes, and a non-empty payload carries its
// own trailing CRC32. See DESIGN.md §13 for the field tables.
const (
	// ProtocolVersion is negotiated by the handshake; the server
	// refuses anything else.
	ProtocolVersion = 1

	// MaxWindow caps the negotiated per-session in-flight window.
	MaxWindow = 64
	// MaxBlocksPerRequest bounds one request's span — the same 64-block
	// ceiling the workload generators respect. Together with the exact
	// payload-length rules it is the decoder's allocation clamp: no
	// declared length can make the decoder hold more than one maximal
	// frame beyond the bytes actually received.
	MaxBlocksPerRequest = 64
	// MaxPayload is the largest legal frame payload.
	MaxPayload = MaxBlocksPerRequest * blockdev.BlockSize

	// AnyVM in hello.VM asks for the whole virtual disk instead of one
	// VM's image partition.
	AnyVM = 0xFFFFFFFF
)

// Frame magics: one distinct word per frame kind, so a desynchronized
// stream is caught at the next header, not silently misparsed.
const (
	MagicHello      = 0x69634801
	MagicHelloReply = 0x69634802
	MagicRequest    = 0x69634803
	MagicReply      = 0x69634804
)

// Request opcodes.
const (
	OpRead  = uint8(1)
	OpWrite = uint8(2)
	OpFlush = uint8(3)
	OpTrim  = uint8(4)
	OpClose = uint8(5)
)

// Reply status codes.
const (
	// StatusOK acknowledges a completed request. For writes, OK means
	// the journal accepted the data; durability still requires a
	// flush, exactly as on the in-process path.
	StatusOK = uint8(0)
	// StatusIO reports a device error the array absorbed (media or
	// transient class); the session stays up.
	StatusIO = uint8(1)
	// StatusRange rejects a request outside the session's negotiated
	// LBA partition.
	StatusRange = uint8(2)
)

// Handshake status codes (helloReply.Status).
const (
	HandshakeOK      = uint32(0)
	RefuseVersion    = uint32(1)
	RefuseVM         = uint32(2)
	RefuseBadRequest = uint32(3)
)

// Header sizes, including the trailing header CRC.
const (
	helloSize       = 24
	helloReplySize  = 40
	reqHeaderSize   = 36
	replyHeaderSize = 28
	crcSize         = 4
)

// FaultCode classifies a protocol violation. Every error the decoder
// or session surfaces for hostile input is a *Fault carrying one of
// these codes — fuzzing asserts the classification is total (no
// panics, no bare errors).
type FaultCode int

const (
	// FaultTruncated: the stream ended inside a frame.
	FaultTruncated FaultCode = iota + 1
	// FaultMagic: a header began with the wrong frame magic.
	FaultMagic
	// FaultVersion: the handshake offered an unsupported version.
	FaultVersion
	// FaultOp: an unknown opcode or reserved flag bits set.
	FaultOp
	// FaultCRC: a header or payload checksum mismatched.
	FaultCRC
	// FaultLength: block count or payload length outside the rules.
	FaultLength
	// FaultDupID: a request id reused while still in flight.
	FaultDupID
	// FaultWindow: more frames in flight than the negotiated window.
	FaultWindow
	// FaultState: a frame arrived in a state that cannot accept it
	// (before the handshake completed, or after close).
	FaultState
	// FaultVM: the handshake asked for a VM partition the server does
	// not serve.
	FaultVM
	// FaultUnknownID: a reply for an id that was never issued (or
	// already completed) — the out-of-order/forged-reply case.
	FaultUnknownID
)

// String names the code for fault summaries.
func (c FaultCode) String() string {
	switch c {
	case FaultTruncated:
		return "truncated"
	case FaultMagic:
		return "magic"
	case FaultVersion:
		return "version"
	case FaultOp:
		return "op"
	case FaultCRC:
		return "crc"
	case FaultLength:
		return "length"
	case FaultDupID:
		return "dup-id"
	case FaultWindow:
		return "window"
	case FaultState:
		return "state"
	case FaultVM:
		return "vm"
	case FaultUnknownID:
		return "unknown-id"
	default:
		return fmt.Sprintf("FaultCode(%d)", int(c))
	}
}

// Fault is a classified protocol violation.
type Fault struct {
	Code   FaultCode
	Detail string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("server: protocol fault (%s): %s", f.Code, f.Detail)
}

func faultf(code FaultCode, format string, args ...any) *Fault {
	return &Fault{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// FaultOf extracts the classification of err. ok is false when err is
// not a protocol fault (nil, ErrNeedMore, or a backend error).
func FaultOf(err error) (FaultCode, bool) {
	var f *Fault
	if errors.As(err, &f) {
		return f.Code, true
	}
	return 0, false
}

// ErrNeedMore reports that the buffered bytes end mid-frame: not an
// error, just an incomplete read. More Feed calls may complete it;
// CloseStream converts a dangling partial frame into FaultTruncated.
var ErrNeedMore = errors.New("server: incomplete frame")

// Hello is the client's handshake offer.
type Hello struct {
	Version    uint16
	WantWindow uint16
	// VM selects one VM image partition, or AnyVM for the whole disk.
	VM    uint32
	Flags uint32
}

// HelloReply is the server's handshake answer. On HandshakeOK it
// grants the window and describes the session's LBA partition; on a
// refusal only Status is meaningful.
type HelloReply struct {
	Version   uint16
	Window    uint16
	Status    uint32
	BlockSize uint32
	FirstLBA  uint64
	Blocks    uint64
}

// Request is one decoded client RPC. Payload aliases the decoder's
// buffer and is valid until the next Feed call.
type Request struct {
	Op     uint8
	ID     uint64
	LBA    uint64
	Blocks uint32
	// Payload is exactly Blocks*BlockSize bytes for OpWrite, empty
	// otherwise.
	Payload []byte
}

// Reply is one decoded server response. Payload aliases the decoder's
// buffer and is valid until the next Feed call.
type Reply struct {
	Op      uint8
	Status  uint8
	ID      uint64
	Payload []byte
}

var crcTable = crc32.IEEETable

func headerCRC(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// AppendHello encodes h onto dst.
func AppendHello(dst []byte, h Hello) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, helloSize)...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:4], MagicHello)
	binary.LittleEndian.PutUint16(b[4:6], h.Version)
	binary.LittleEndian.PutUint16(b[6:8], h.WantWindow)
	binary.LittleEndian.PutUint32(b[8:12], h.VM)
	binary.LittleEndian.PutUint32(b[12:16], h.Flags)
	binary.LittleEndian.PutUint32(b[16:20], 0)
	binary.LittleEndian.PutUint32(b[20:24], headerCRC(b[0:20]))
	return dst
}

// AppendHelloReply encodes r onto dst.
func AppendHelloReply(dst []byte, r HelloReply) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, helloReplySize)...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:4], MagicHelloReply)
	binary.LittleEndian.PutUint16(b[4:6], r.Version)
	binary.LittleEndian.PutUint16(b[6:8], r.Window)
	binary.LittleEndian.PutUint32(b[8:12], r.Status)
	binary.LittleEndian.PutUint32(b[12:16], r.BlockSize)
	binary.LittleEndian.PutUint64(b[16:24], r.FirstLBA)
	binary.LittleEndian.PutUint64(b[24:32], r.Blocks)
	binary.LittleEndian.PutUint32(b[32:36], 0)
	binary.LittleEndian.PutUint32(b[36:40], headerCRC(b[0:36]))
	return dst
}

// AppendRequest encodes req onto dst, computing both CRCs.
func AppendRequest(dst []byte, req Request) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, reqHeaderSize)...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:4], MagicRequest)
	b[4] = req.Op
	b[5] = 0
	binary.LittleEndian.PutUint16(b[6:8], 0)
	binary.LittleEndian.PutUint64(b[8:16], req.ID)
	binary.LittleEndian.PutUint64(b[16:24], req.LBA)
	binary.LittleEndian.PutUint32(b[24:28], req.Blocks)
	binary.LittleEndian.PutUint32(b[28:32], uint32(len(req.Payload)))
	binary.LittleEndian.PutUint32(b[32:36], headerCRC(b[0:32]))
	if len(req.Payload) > 0 {
		dst = append(dst, req.Payload...)
		dst = binary.LittleEndian.AppendUint32(dst, headerCRC(req.Payload))
	}
	return dst
}

// AppendReply encodes rep onto dst, computing both CRCs.
func AppendReply(dst []byte, rep Reply) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, replyHeaderSize)...)
	b := dst[off:]
	binary.LittleEndian.PutUint32(b[0:4], MagicReply)
	b[4] = rep.Op
	b[5] = rep.Status
	binary.LittleEndian.PutUint16(b[6:8], 0)
	binary.LittleEndian.PutUint64(b[8:16], rep.ID)
	binary.LittleEndian.PutUint32(b[16:20], uint32(len(rep.Payload)))
	binary.LittleEndian.PutUint32(b[20:24], 0)
	binary.LittleEndian.PutUint32(b[24:28], headerCRC(b[0:24]))
	if len(rep.Payload) > 0 {
		dst = append(dst, rep.Payload...)
		dst = binary.LittleEndian.AppendUint32(dst, headerCRC(rep.Payload))
	}
	return dst
}

// Decoder is a push parser over a framed byte stream. Feed appends
// received bytes; the Next* methods consume one complete frame or
// return ErrNeedMore. Any malformed frame returns a *Fault and leaves
// the decoder poisoned (the stream has lost framing; the session tears
// down).
//
// The decoder only ever buffers bytes it was fed — declared lengths
// are validated against MaxPayload before any byte is awaited, so a
// hostile length field cannot make it reserve memory.
type Decoder struct {
	buf []byte
	off int
}

// Feed appends received bytes to the parse buffer.
func (d *Decoder) Feed(p []byte) {
	// Compact consumed bytes once they dominate the buffer, so a
	// long-lived session does not grow its buffer without bound.
	if d.off > 0 && (d.off >= len(d.buf) || d.off >= 4096) {
		d.buf = d.buf[:copy(d.buf, d.buf[d.off:])]
		d.off = 0
	}
	d.buf = append(d.buf, p...)
}

// Buffered returns the number of unconsumed bytes.
func (d *Decoder) Buffered() int { return len(d.buf) - d.off }

// peek returns n unconsumed bytes without consuming them.
func (d *Decoder) peek(n int) ([]byte, bool) {
	if d.Buffered() < n {
		return nil, false
	}
	return d.buf[d.off : d.off+n], true
}

func (d *Decoder) consume(n int) { d.off += n }

// checkHeader validates the magic and trailing CRC of a header of size
// n whose payload-covering CRC sits in the last 4 bytes.
func checkHeader(b []byte, magic uint32, kind string) error {
	if got := binary.LittleEndian.Uint32(b[0:4]); got != magic {
		return faultf(FaultMagic, "%s frame magic %#x, want %#x", kind, got, magic)
	}
	n := len(b)
	if got, want := binary.LittleEndian.Uint32(b[n-4:n]), headerCRC(b[:n-4]); got != want {
		return faultf(FaultCRC, "%s header crc %#x, want %#x", kind, got, want)
	}
	return nil
}

// NextHello consumes the handshake frame.
func (d *Decoder) NextHello() (Hello, error) {
	b, ok := d.peek(helloSize)
	if !ok {
		return Hello{}, ErrNeedMore
	}
	if err := checkHeader(b, MagicHello, "hello"); err != nil {
		return Hello{}, err
	}
	h := Hello{
		Version:    binary.LittleEndian.Uint16(b[4:6]),
		WantWindow: binary.LittleEndian.Uint16(b[6:8]),
		VM:         binary.LittleEndian.Uint32(b[8:12]),
		Flags:      binary.LittleEndian.Uint32(b[12:16]),
	}
	d.consume(helloSize)
	return h, nil
}

// NextHelloReply consumes the handshake answer.
func (d *Decoder) NextHelloReply() (HelloReply, error) {
	b, ok := d.peek(helloReplySize)
	if !ok {
		return HelloReply{}, ErrNeedMore
	}
	if err := checkHeader(b, MagicHelloReply, "hello-reply"); err != nil {
		return HelloReply{}, err
	}
	r := HelloReply{
		Version:   binary.LittleEndian.Uint16(b[4:6]),
		Window:    binary.LittleEndian.Uint16(b[6:8]),
		Status:    binary.LittleEndian.Uint32(b[8:12]),
		BlockSize: binary.LittleEndian.Uint32(b[12:16]),
		FirstLBA:  binary.LittleEndian.Uint64(b[16:24]),
		Blocks:    binary.LittleEndian.Uint64(b[24:32]),
	}
	d.consume(helloReplySize)
	return r, nil
}

// validateRequest applies the per-op length rules. They are exact, not
// bounds: a frame that is self-inconsistent is hostile, not sloppy.
func validateRequest(op uint8, blocks, payloadLen uint32) error {
	switch op {
	case OpRead, OpTrim:
		if blocks < 1 || blocks > MaxBlocksPerRequest {
			return faultf(FaultLength, "op %d blocks %d outside [1,%d]", op, blocks, MaxBlocksPerRequest)
		}
		if payloadLen != 0 {
			return faultf(FaultLength, "op %d carries %d payload bytes, want 0", op, payloadLen)
		}
	case OpWrite:
		if blocks < 1 || blocks > MaxBlocksPerRequest {
			return faultf(FaultLength, "write blocks %d outside [1,%d]", blocks, MaxBlocksPerRequest)
		}
		if payloadLen != blocks*blockdev.BlockSize {
			return faultf(FaultLength, "write payload %dB for %d blocks, want %d",
				payloadLen, blocks, blocks*blockdev.BlockSize)
		}
	case OpFlush, OpClose:
		if blocks != 0 || payloadLen != 0 {
			return faultf(FaultLength, "op %d with blocks=%d payload=%dB, want 0/0", op, blocks, payloadLen)
		}
	default:
		return faultf(FaultOp, "unknown opcode %d", op)
	}
	return nil
}

// NextRequest consumes one complete request frame.
func (d *Decoder) NextRequest() (Request, error) {
	b, ok := d.peek(reqHeaderSize)
	if !ok {
		return Request{}, ErrNeedMore
	}
	if err := checkHeader(b, MagicRequest, "request"); err != nil {
		return Request{}, err
	}
	if b[5] != 0 || binary.LittleEndian.Uint16(b[6:8]) != 0 {
		return Request{}, faultf(FaultOp, "reserved request flag bits set")
	}
	req := Request{
		Op:     b[4],
		ID:     binary.LittleEndian.Uint64(b[8:16]),
		LBA:    binary.LittleEndian.Uint64(b[16:24]),
		Blocks: binary.LittleEndian.Uint32(b[24:28]),
	}
	payloadLen := binary.LittleEndian.Uint32(b[28:32])
	// The length rules run before any payload byte is awaited: an
	// oversized declared length is rejected here, never buffered for.
	if err := validateRequest(req.Op, req.Blocks, payloadLen); err != nil {
		return Request{}, err
	}
	total := reqHeaderSize
	if payloadLen > 0 {
		total += int(payloadLen) + crcSize
	}
	full, ok := d.peek(total)
	if !ok {
		return Request{}, ErrNeedMore
	}
	if payloadLen > 0 {
		payload := full[reqHeaderSize : reqHeaderSize+int(payloadLen)]
		if got, want := binary.LittleEndian.Uint32(full[total-crcSize:total]), headerCRC(payload); got != want {
			return Request{}, faultf(FaultCRC, "request %d payload crc %#x, want %#x", req.ID, got, want)
		}
		req.Payload = payload
	}
	d.consume(total)
	return req, nil
}

// NextReply consumes one complete reply frame.
func (d *Decoder) NextReply() (Reply, error) {
	b, ok := d.peek(replyHeaderSize)
	if !ok {
		return Reply{}, ErrNeedMore
	}
	if err := checkHeader(b, MagicReply, "reply"); err != nil {
		return Reply{}, err
	}
	if binary.LittleEndian.Uint16(b[6:8]) != 0 || binary.LittleEndian.Uint32(b[20:24]) != 0 {
		return Reply{}, faultf(FaultOp, "reserved reply bits set")
	}
	rep := Reply{
		Op:     b[4],
		Status: b[5],
		ID:     binary.LittleEndian.Uint64(b[8:16]),
	}
	payloadLen := binary.LittleEndian.Uint32(b[16:20])
	if payloadLen > MaxPayload {
		return Reply{}, faultf(FaultLength, "reply payload %dB exceeds clamp %d", payloadLen, MaxPayload)
	}
	if payloadLen%blockdev.BlockSize != 0 {
		return Reply{}, faultf(FaultLength, "reply payload %dB is not whole blocks", payloadLen)
	}
	total := replyHeaderSize
	if payloadLen > 0 {
		total += int(payloadLen) + crcSize
	}
	full, ok := d.peek(total)
	if !ok {
		return Reply{}, ErrNeedMore
	}
	if payloadLen > 0 {
		payload := full[replyHeaderSize : replyHeaderSize+int(payloadLen)]
		if got, want := binary.LittleEndian.Uint32(full[total-crcSize:total]), headerCRC(payload); got != want {
			return Reply{}, faultf(FaultCRC, "reply %d payload crc %#x, want %#x", rep.ID, got, want)
		}
		rep.Payload = payload
	}
	d.consume(total)
	return rep, nil
}
