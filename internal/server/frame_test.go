package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestFrameRoundTrips encodes one frame of every kind and decodes it
// back, proving the Append*/Next* pairs agree on every field.
func TestFrameRoundTrips(t *testing.T) {
	t.Run("hello", func(t *testing.T) {
		in := Hello{Version: ProtocolVersion, WantWindow: 17, VM: 3, Flags: 0}
		var d Decoder
		d.Feed(AppendHello(nil, in))
		got, err := d.NextHello()
		if err != nil {
			t.Fatalf("NextHello: %v", err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
		if d.Buffered() != 0 {
			t.Fatalf("%d bytes left after a whole frame", d.Buffered())
		}
	})
	t.Run("hello-reply", func(t *testing.T) {
		in := HelloReply{Version: ProtocolVersion, Window: 8, Status: HandshakeOK, BlockSize: 4096, FirstLBA: 1 << 20, Blocks: 1 << 16}
		var d Decoder
		d.Feed(AppendHelloReply(nil, in))
		got, err := d.NextHelloReply()
		if err != nil {
			t.Fatalf("NextHelloReply: %v", err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v, want %+v", got, in)
		}
	})
	t.Run("request", func(t *testing.T) {
		payload := make([]byte, 2*4096)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		cases := []Request{
			{Op: OpRead, ID: 1, LBA: 42, Blocks: 3},
			{Op: OpWrite, ID: 2, LBA: 100, Blocks: 2, Payload: payload},
			{Op: OpFlush, ID: 3},
			{Op: OpTrim, ID: 4, LBA: 7, Blocks: 1},
			{Op: OpClose, ID: 5},
		}
		for _, in := range cases {
			var d Decoder
			d.Feed(AppendRequest(nil, in))
			got, err := d.NextRequest()
			if err != nil {
				t.Fatalf("op %d: NextRequest: %v", in.Op, err)
			}
			if got.Op != in.Op || got.ID != in.ID || got.LBA != in.LBA || got.Blocks != in.Blocks || !bytes.Equal(got.Payload, in.Payload) {
				t.Fatalf("op %d: round trip mismatch: got %+v", in.Op, got)
			}
		}
	})
	t.Run("reply", func(t *testing.T) {
		payload := make([]byte, 4096)
		payload[0], payload[4095] = 0xAA, 0x55
		cases := []Reply{
			{Op: OpRead, Status: StatusOK, ID: 9, Payload: payload},
			{Op: OpWrite, Status: StatusOK, ID: 10},
			{Op: OpFlush, Status: StatusIO, ID: 11},
			{Op: OpRead, Status: StatusRange, ID: 12},
		}
		for _, in := range cases {
			var d Decoder
			d.Feed(AppendReply(nil, in))
			got, err := d.NextReply()
			if err != nil {
				t.Fatalf("id %d: NextReply: %v", in.ID, err)
			}
			if got.Op != in.Op || got.Status != in.Status || got.ID != in.ID || !bytes.Equal(got.Payload, in.Payload) {
				t.Fatalf("id %d: round trip mismatch: got %+v", in.ID, got)
			}
		}
	})
}

// TestFrameSplitFeeding delivers a request frame one byte at a time:
// every prefix must report ErrNeedMore (never a fault, never a partial
// decode) and the final byte must complete the frame.
func TestFrameSplitFeeding(t *testing.T) {
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	frame := AppendRequest(nil, Request{Op: OpWrite, ID: 77, LBA: 5, Blocks: 1, Payload: payload})
	var d Decoder
	for i, b := range frame {
		d.Feed([]byte{b})
		req, err := d.NextRequest()
		if i < len(frame)-1 {
			if err != ErrNeedMore {
				t.Fatalf("after %d of %d bytes: got err %v, want ErrNeedMore", i+1, len(frame), err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("full frame: %v", err)
		}
		if req.ID != 77 || !bytes.Equal(req.Payload, payload) {
			t.Fatalf("full frame decoded wrong: %+v", req)
		}
	}
	if d.Buffered() != 0 {
		t.Fatalf("%d bytes left after the frame completed", d.Buffered())
	}
}

// corrupt returns a copy of frame with the byte at off XORed.
func corrupt(frame []byte, off int) []byte {
	c := append([]byte(nil), frame...)
	c[off] ^= 0xFF
	return c
}

// TestFrameFaultClassification drives the decoder with malformed frames
// and asserts each is rejected with the advertised fault code — never a
// bare error, never a wrong decode.
func TestFrameFaultClassification(t *testing.T) {
	goodReq := AppendRequest(nil, Request{Op: OpFlush, ID: 1})
	write := func(blocks, payloadLen uint32) []byte {
		// Hand-build a header with inconsistent lengths; AppendRequest
		// would refuse to, since it derives payloadLen from the slice.
		b := make([]byte, reqHeaderSize)
		binary.LittleEndian.PutUint32(b[0:4], MagicRequest)
		b[4] = OpWrite
		binary.LittleEndian.PutUint64(b[8:16], 9)
		binary.LittleEndian.PutUint32(b[24:28], blocks)
		binary.LittleEndian.PutUint32(b[28:32], payloadLen)
		binary.LittleEndian.PutUint32(b[32:36], headerCRC(b[0:32]))
		return b
	}
	cases := []struct {
		name  string
		frame []byte
		want  FaultCode
	}{
		{"bad-magic", corrupt(goodReq, 0), FaultMagic},
		{"bad-header-crc", corrupt(goodReq, 33), FaultCRC},
		{"bad-id-under-crc", corrupt(goodReq, 9), FaultCRC},
		{"unknown-op", func() []byte {
			b := append([]byte(nil), goodReq...)
			b[4] = 99
			binary.LittleEndian.PutUint32(b[32:36], headerCRC(b[0:32]))
			return b
		}(), FaultOp},
		{"reserved-flag-bits", func() []byte {
			b := append([]byte(nil), goodReq...)
			b[5] = 1
			binary.LittleEndian.PutUint32(b[32:36], headerCRC(b[0:32]))
			return b
		}(), FaultOp},
		{"write-zero-blocks", write(0, 0), FaultLength},
		{"write-too-many-blocks", write(MaxBlocksPerRequest+1, (MaxBlocksPerRequest+1)*4096), FaultLength},
		{"write-payload-mismatch", write(1, 4095), FaultLength},
		{"oversized-declared-payload", write(2, 1<<30), FaultLength},
		{"flush-with-blocks", func() []byte {
			b := append([]byte(nil), goodReq...)
			binary.LittleEndian.PutUint32(b[24:28], 1)
			binary.LittleEndian.PutUint32(b[32:36], headerCRC(b[0:32]))
			return b
		}(), FaultLength},
		{"bad-payload-crc", func() []byte {
			f := AppendRequest(nil, Request{Op: OpWrite, ID: 2, LBA: 0, Blocks: 1, Payload: make([]byte, 4096)})
			return corrupt(f, len(f)-1)
		}(), FaultCRC},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d Decoder
			d.Feed(tc.frame)
			_, err := d.NextRequest()
			code, ok := FaultOf(err)
			if !ok {
				t.Fatalf("got err %v, want a *Fault", err)
			}
			if code != tc.want {
				t.Fatalf("got fault %s, want %s (err: %v)", code, tc.want, err)
			}
		})
	}
}

// TestDeclaredLengthNotBuffered proves the allocation clamp: a header
// declaring a huge payload is rejected at header-parse time, before the
// decoder waits for (or reserves) a single payload byte.
func TestDeclaredLengthNotBuffered(t *testing.T) {
	b := make([]byte, reqHeaderSize)
	binary.LittleEndian.PutUint32(b[0:4], MagicRequest)
	b[4] = OpWrite
	binary.LittleEndian.PutUint32(b[24:28], 64)
	binary.LittleEndian.PutUint32(b[28:32], 0xFFFFFF00) // declares ~4 GiB
	binary.LittleEndian.PutUint32(b[32:36], headerCRC(b[0:32]))

	var d Decoder
	d.Feed(b)
	_, err := d.NextRequest()
	if code, ok := FaultOf(err); !ok || code != FaultLength {
		t.Fatalf("got %v, want FaultLength at header parse", err)
	}
	if cap(d.buf) > 2*len(b) {
		t.Fatalf("decoder reserved %d bytes for a declared-length attack (fed %d)", cap(d.buf), len(b))
	}
}

// TestReplyLengthRules covers the reply-side clamp: payloads above
// MaxPayload or not whole blocks are faults before any byte is awaited.
func TestReplyLengthRules(t *testing.T) {
	mk := func(payloadLen uint32) []byte {
		b := make([]byte, replyHeaderSize)
		binary.LittleEndian.PutUint32(b[0:4], MagicReply)
		b[4] = OpRead
		binary.LittleEndian.PutUint64(b[8:16], 1)
		binary.LittleEndian.PutUint32(b[16:20], payloadLen)
		binary.LittleEndian.PutUint32(b[24:28], headerCRC(b[0:24]))
		return b
	}
	for _, tc := range []struct {
		name       string
		payloadLen uint32
	}{
		{"over-clamp", MaxPayload + 4096},
		{"ragged", 100},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var d Decoder
			d.Feed(mk(tc.payloadLen))
			_, err := d.NextReply()
			if code, ok := FaultOf(err); !ok || code != FaultLength {
				t.Fatalf("got %v, want FaultLength", err)
			}
		})
	}
}

// TestDecoderCompaction proves a long-lived stream does not grow the
// parse buffer without bound: after many consumed frames the buffer
// stays within a few frames of the high-water mark.
func TestDecoderCompaction(t *testing.T) {
	frame := AppendRequest(nil, Request{Op: OpFlush, ID: 1})
	var d Decoder
	for i := 0; i < 10000; i++ {
		d.Feed(frame)
		if _, err := d.NextRequest(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if cap(d.buf) > 64*len(frame) {
		t.Fatalf("decoder buffer grew to %d bytes over a long session", cap(d.buf))
	}
}
