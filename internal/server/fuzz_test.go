package server

import (
	"bytes"
	"encoding/binary"
	"testing"

	"icash/internal/blockdev"
)

// hostileSeeds is the shared seed corpus: valid frames of every kind
// plus the classic attacks — truncations, oversized declared lengths,
// corrupt CRCs, wrong magics, duplicated ids, forged replies.
func hostileSeeds() [][]byte {
	payload := make([]byte, blockdev.BlockSize)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	hello := AppendHello(nil, Hello{Version: ProtocolVersion, WantWindow: 4, VM: AnyVM})
	read := AppendRequest(nil, Request{Op: OpRead, ID: 1, LBA: 3, Blocks: 1})
	write := AppendRequest(nil, Request{Op: OpWrite, ID: 2, LBA: 5, Blocks: 1, Payload: payload})
	flush := AppendRequest(nil, Request{Op: OpFlush, ID: 3})
	closeF := AppendRequest(nil, Request{Op: OpClose, ID: 4})
	reply := AppendReply(nil, Reply{Op: OpRead, Status: StatusOK, ID: 1, Payload: payload})

	oversized := append([]byte(nil), write...)
	binary.LittleEndian.PutUint32(oversized[28:32], 0xFFFF0000)
	binary.LittleEndian.PutUint32(oversized[32:36], headerCRC(oversized[0:32]))

	badCRC := append([]byte(nil), read...)
	badCRC[len(badCRC)-1] ^= 0xFF

	badMagic := append([]byte(nil), read...)
	badMagic[0] ^= 0xFF

	dup := append(append([]byte(nil), read...), read...)

	seeds := [][]byte{
		hello,
		append(append([]byte(nil), hello...), read...),
		append(append(append([]byte(nil), hello...), write...), flush...),
		append(append([]byte(nil), hello...), closeF...),
		read[:10],            // truncated header
		write[:len(write)-7], // truncated payload
		oversized,            // declared-length attack
		badCRC,
		badMagic,
		dup,   // duplicate ids in one burst
		reply, // reply bytes where requests belong
		append(append([]byte(nil), hello...), reply...),
		bytes.Repeat([]byte{0x69}, 200), // magic-ish garbage
		{},
	}
	return seeds
}

// FuzzFrameRoundTrip throws arbitrary bytes at every decoder entry
// point. The invariants: no panic, every error is ErrNeedMore or a
// classified *Fault, the decoder never buffers beyond what it was fed,
// and any frame that does decode re-encodes to a decodable equal.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, s := range hostileSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(kind string, err error) {
			if err == nil || err == ErrNeedMore {
				return
			}
			if _, ok := FaultOf(err); !ok {
				t.Fatalf("%s: unclassified error %v", kind, err)
			}
		}
		// Each Next* on its own decoder: whatever the bytes are, the
		// answer is a decode, ErrNeedMore, or a classified fault.
		var dh, dr Decoder
		dh.Feed(data)
		_, err := dh.NextHello()
		check("hello", err)
		dh = Decoder{}
		dh.Feed(data)
		_, err = dh.NextHelloReply()
		check("hello-reply", err)

		// Requests in a loop, as a session would drain a burst.
		dr.Feed(data)
		for {
			req, err := dr.NextRequest()
			if err != nil {
				check("request", err)
				break
			}
			// Round trip: re-encoding the decoded frame and decoding it
			// again must yield the same request.
			var d2 Decoder
			d2.Feed(AppendRequest(nil, req))
			req2, err := d2.NextRequest()
			if err != nil {
				t.Fatalf("re-encoded request failed to decode: %v", err)
			}
			if req2.Op != req.Op || req2.ID != req.ID || req2.LBA != req.LBA ||
				req2.Blocks != req.Blocks || !bytes.Equal(req2.Payload, req.Payload) {
				t.Fatalf("request round trip diverged: %+v vs %+v", req, req2)
			}
		}
		// Allocation clamp: the buffer holds only bytes actually fed
		// (append growth at most doubles).
		if cap(dr.buf) > 2*len(data)+64 {
			t.Fatalf("decoder holds %d bytes cap for %d fed", cap(dr.buf), len(data))
		}

		var dp Decoder
		dp.Feed(data)
		for {
			rep, err := dp.NextReply()
			if err != nil {
				check("reply", err)
				break
			}
			var d2 Decoder
			d2.Feed(AppendReply(nil, rep))
			rep2, err := d2.NextReply()
			if err != nil {
				t.Fatalf("re-encoded reply failed to decode: %v", err)
			}
			if rep2.Op != rep.Op || rep2.Status != rep.Status || rep2.ID != rep.ID ||
				!bytes.Equal(rep2.Payload, rep.Payload) {
				t.Fatalf("reply round trip diverged: %+v vs %+v", rep, rep2)
			}
		}
	})
}

// FuzzSessionBytes drives a full session (and the client-side tracker)
// with arbitrary byte streams, delivered in uneven chunks the way a
// transport would. Invariants: no panic, a fatal error is always a
// classified *Fault (the backend never fails here), a failed session
// stays failed, and CloseStream always classifies.
func FuzzSessionBytes(f *testing.F) {
	for _, s := range hostileSeeds() {
		f.Add(s)
	}
	// A burst overflowing the window, preceded by a valid handshake.
	over := AppendHello(nil, Hello{Version: ProtocolVersion, WantWindow: 2, VM: AnyVM})
	for i := 0; i < 4; i++ {
		over = AppendRequest(over, Request{Op: OpRead, ID: uint64(i), LBA: 0, Blocks: 1})
	}
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		backend := &memBackend{n: 64}
		sess := NewSession("fuzz", backend, SessionOptions{MaxWindow: 4})
		// Deliver in chunks of varying size so frame boundaries land
		// mid-header, mid-payload, everywhere.
		var fatal error
		for off, n := 0, 0; off < len(data); off += n {
			n = 7 + (off % 31)
			if off+n > len(data) {
				n = len(data) - off
			}
			out, err := sess.Feed(data[off : off+n])
			// Whatever comes back is frame-aligned bytes or nothing; a
			// tracker must be able to parse the stream without panics.
			_ = out
			if err != nil {
				if _, ok := FaultOf(err); !ok {
					t.Fatalf("session error unclassified: %v", err)
				}
				fatal = err
				break
			}
		}
		if fatal != nil {
			if sess.State() != StateFailed && sess.State() != StateClosed {
				t.Fatalf("session errored but state is %s", sess.State())
			}
			// A dead session must stay dead: more bytes never resurrect it.
			if out, _ := sess.Feed([]byte{1, 2, 3}); sess.State() == StateServing || len(out) > 0 {
				t.Fatalf("failed session came back to life (state %s)", sess.State())
			}
		}
		if err := sess.CloseStream(); err != nil {
			if _, ok := FaultOf(err); !ok {
				t.Fatalf("CloseStream unclassified: %v", err)
			}
		}
		// Allocation clamp at the session level too.
		if cap(sess.dec.buf) > 2*len(data)+64 {
			t.Fatalf("session decoder holds %d cap for %d fed", cap(sess.dec.buf), len(data))
		}

		// The client tracker fed the same hostile bytes as a reply
		// stream: classified faults only, no panics, no mis-accounting
		// below zero.
		tr := NewReplyTracker(4)
		for i := uint64(0); i < 4; i++ {
			if err := tr.Issue(i, OpRead); err != nil {
				t.Fatalf("issue %d: %v", i, err)
			}
		}
		if _, err := tr.Feed(data); err != nil {
			if _, ok := FaultOf(err); !ok {
				t.Fatalf("tracker error unclassified: %v", err)
			}
		}
		if tr.Outstanding() < 0 || tr.Outstanding() > 4 {
			t.Fatalf("tracker outstanding %d out of range", tr.Outstanding())
		}
	})
}

// TestReplyTrackerHostileStreams pins the tracker's fault taxonomy with
// crafted reply streams (the fuzzer explores around these).
func TestReplyTrackerHostileStreams(t *testing.T) {
	t.Run("unknown-id", func(t *testing.T) {
		tr := NewReplyTracker(4)
		_, err := tr.Feed(AppendReply(nil, Reply{Op: OpRead, Status: StatusOK, ID: 99}))
		if code, ok := FaultOf(err); !ok || code != FaultUnknownID {
			t.Fatalf("got %v, want FaultUnknownID", err)
		}
	})
	t.Run("duplicated-reply", func(t *testing.T) {
		tr := NewReplyTracker(4)
		if err := tr.Issue(1, OpWrite); err != nil {
			t.Fatal(err)
		}
		frame := AppendReply(nil, Reply{Op: OpWrite, Status: StatusOK, ID: 1})
		if _, err := tr.Feed(frame); err != nil {
			t.Fatalf("first reply: %v", err)
		}
		_, err := tr.Feed(frame)
		if code, ok := FaultOf(err); !ok || code != FaultUnknownID {
			t.Fatalf("replayed reply: got %v, want FaultUnknownID", err)
		}
	})
	t.Run("op-mismatch", func(t *testing.T) {
		tr := NewReplyTracker(4)
		if err := tr.Issue(1, OpWrite); err != nil {
			t.Fatal(err)
		}
		_, err := tr.Feed(AppendReply(nil, Reply{Op: OpRead, Status: StatusOK, ID: 1}))
		if code, ok := FaultOf(err); !ok || code != FaultOp {
			t.Fatalf("got %v, want FaultOp", err)
		}
	})
	t.Run("out-of-order-is-legal", func(t *testing.T) {
		// Reply order is the server's choice; the tracker matches by id.
		tr := NewReplyTracker(4)
		for i := uint64(1); i <= 3; i++ {
			if err := tr.Issue(i, OpWrite); err != nil {
				t.Fatal(err)
			}
		}
		var stream []byte
		for _, id := range []uint64{3, 1, 2} {
			stream = AppendReply(stream, Reply{Op: OpWrite, Status: StatusOK, ID: id})
		}
		reps, err := tr.Feed(stream)
		if err != nil {
			t.Fatalf("out-of-order replies: %v", err)
		}
		if len(reps) != 3 || reps[0].ID != 3 || reps[1].ID != 1 || reps[2].ID != 2 {
			t.Fatalf("completions %v, want ids 3,1,2", reps)
		}
		if tr.Outstanding() != 0 {
			t.Fatalf("outstanding %d, want 0", tr.Outstanding())
		}
	})
	t.Run("window-overflow-on-issue", func(t *testing.T) {
		tr := NewReplyTracker(2)
		tr.Issue(1, OpRead)
		tr.Issue(2, OpRead)
		err := tr.Issue(3, OpRead)
		if code, ok := FaultOf(err); !ok || code != FaultWindow {
			t.Fatalf("got %v, want FaultWindow", err)
		}
	})
}
