package server

import (
	"bytes"
	"sort"
	"testing"

	"icash/internal/blockdev"
	"icash/internal/sim"
)

// TestServedReadsSurviveFlashRot: the whole SSD silently rots — every
// flash block gets a bit flipped behind the controller's back — and
// yet every served read must come back StatusOK with the exact bytes
// last written and a correct wire payload CRC. The reply-byte equality
// against AppendReply pins the full frame, so a repaired-but-wrong or
// wrong-but-checksummed payload cannot sneak through the wire layer.
func TestServedReadsSurviveFlashRot(t *testing.T) {
	e := newConfEnv(t, SessionOptions{MaxWindow: 8})
	e.defaultHello(t, 8)

	// Content-local workload straight on the controller: families of
	// similar blocks so reference slots and deltas actually form.
	gen := func(r *sim.Rand, fam int) []byte {
		b := pattern(int64(fam)*1000, 0x7)
		for i := 0; i < 200; i++ {
			b[r.Intn(len(b))] = byte(r.Uint64())
		}
		return b
	}
	r := sim.NewRand(21)
	model := make(map[int64][]byte)
	buf := make([]byte, blockdev.BlockSize)
	const lbaSpace = 512
	for op := 0; op < 6000; op++ {
		lba := int64(r.Intn(lbaSpace))
		if r.Float64() < 0.4 {
			content := gen(r, int(lba%5))
			if _, err := e.ctrl.WriteBlock(lba, content); err != nil {
				t.Fatalf("op %d: write: %v", op, err)
			}
			model[lba] = content
		} else if _, err := e.ctrl.ReadBlock(lba, buf); err != nil {
			t.Fatalf("op %d: read: %v", op, err)
		}
	}
	// A consistency point gives every write-through slot its home
	// backup, so each rotted slot has a redundant copy to repair from.
	if err := e.ctrl.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.ctrl.LiveSlotCount() == 0 {
		t.Fatal("workload formed no reference slots; the rot would test nothing")
	}
	for i := int64(0); i < e.cfg.SSDBlocks; i++ {
		if err := e.ssd.Corrupt(i, int(i*13+5)); err != nil {
			t.Fatalf("corrupt ssd block %d: %v", i, err)
		}
	}

	lbas := make([]int64, 0, len(model))
	for lba := range model {
		lbas = append(lbas, lba)
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	// Every reply must be StatusOK with a CRC-valid frame carrying the
	// exact bytes the controller serves. A reply whose payload is not
	// the last-written content is a regression to the stale home copy —
	// legal only when a repair genuinely failed, every such failure is
	// accounted (the chaos oracle's zero-undetected-corruption bound),
	// and never the rotted flash bytes themselves.
	wrong := 0
	direct := make([]byte, blockdev.BlockSize)
	for i, lba := range lbas {
		id := uint64(i + 1)
		out, err := e.sess.Feed(AppendRequest(nil, Request{Op: OpRead, ID: id, LBA: uint64(lba), Blocks: 1}))
		if err != nil {
			t.Fatalf("served read lba %d: %v", lba, err)
		}
		if want := AppendReply(nil, Reply{Op: OpRead, Status: StatusOK, ID: id, Payload: model[lba]}); bytes.Equal(out, want) {
			continue
		}
		wrong++
		// Reads are idempotent once repair/fallback settles: the wire
		// payload must equal the direct host read, framed with a valid
		// payload CRC (AppendReply recomputes it).
		if _, err := e.ctrl.ReadBlock(lba, direct); err != nil {
			t.Fatalf("direct re-read lba %d: %v", lba, err)
		}
		want := AppendReply(nil, Reply{Op: OpRead, Status: StatusOK, ID: id, Payload: direct})
		if !bytes.Equal(out, want) {
			t.Fatalf("served read lba %d: wire frame does not match the served content", lba)
		}
	}

	st := e.ctrl.Stats
	if st.CorruptionsDetected == 0 {
		t.Fatal("no rotted slot was ever read: detection machinery untested")
	}
	if st.CorruptionsRepaired == 0 {
		t.Fatal("detections occurred but nothing was repaired")
	}
	accounted := st.ScrubDataLoss + st.DegradedDataLoss + st.DroppedLogRecs
	if int64(wrong) > accounted {
		t.Fatalf("%d stale replies but only %d accounted losses: silent corruption reached the wire",
			wrong, accounted)
	}
	if wrong > len(lbas)/10 {
		t.Fatalf("%d/%d reads regressed: repair machinery barely worked", wrong, len(lbas))
	}
	if err := e.ctrl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("flash rot: detected=%d repaired=%d unrepairable=%d slots=%d",
		st.CorruptionsDetected, st.CorruptionsRepaired, st.UnrepairableBlocks, e.ctrl.LiveSlotCount())
}
