package server

import (
	"sync"

	"icash/internal/sim"
)

// LockedBackend serializes concurrent sessions onto a single-threaded
// backend. The controller stack is deliberately not safe for concurrent
// use — determinism comes from single-threaded mutation under one
// sim.Clock — so the real-TCP front end funnels every connection
// through this one mutex. The simulated durations the devices return
// are reported on the wire but not slept out.
//
// This is the pre-sharding concurrency story: one global lock, zero
// parallelism inside the array. The sharded controller (ROADMAP item 1)
// replaces this funnel with per-shard instances composed under
// lockmap-style per-address locking; until then, LockedBackend is the
// only lock in the serving path and the root of the lockorder
// analyzer's acquisition-order graph for this package.
type LockedBackend struct {
	mu    sync.Mutex
	inner Backend
}

// NewLockedBackend wraps inner so any number of goroutines may share it.
func NewLockedBackend(inner Backend) *LockedBackend {
	return &LockedBackend{inner: inner}
}

// ReadBlock serializes a read onto the inner backend.
func (b *LockedBackend) ReadBlock(lba int64, buf []byte) (sim.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore lockorder deliberate pre-sharding funnel: serializing onto the single-threaded controller IS this type's contract (see type doc); the sharded controller retires it
	return b.inner.ReadBlock(lba, buf)
}

// WriteBlock serializes a write onto the inner backend.
func (b *LockedBackend) WriteBlock(lba int64, buf []byte) (sim.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore lockorder deliberate pre-sharding funnel: serializing onto the single-threaded controller IS this type's contract (see type doc); the sharded controller retires it
	return b.inner.WriteBlock(lba, buf)
}

// Flush serializes a flush onto the inner backend.
func (b *LockedBackend) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//lint:ignore lockorder deliberate pre-sharding funnel: serializing onto the single-threaded controller IS this type's contract (see type doc); the sharded controller retires it
	return b.inner.Flush()
}

// Blocks reports the inner backend's size.
func (b *LockedBackend) Blocks() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inner.Blocks()
}
