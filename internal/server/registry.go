package server

import (
	"fmt"
	"sort"
	"sync"
)

// Registry tracks the live sessions of the real-TCP front end: each
// accepted connection registers its session, deregisters on teardown,
// and the listener drains the set on shutdown so the close promise —
// everything a session acknowledged is durable — holds across the whole
// service, not just per connection.
//
// The simulated mode never touches it (sessions there are event
// stations owned by one goroutine); the registry exists exactly where
// real concurrency does.
type Registry struct {
	mu       sync.Mutex
	sessions map[uint64]*Session
	nextID   uint64
	draining bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[uint64]*Session)}
}

// Add registers a session and returns its id. It fails once draining
// has begun: a connection that raced the shutdown must be refused, not
// silently served without durability cover.
func (r *Registry) Add(s *Session) (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return 0, fmt.Errorf("server: registry draining, connection %s refused", s.Name())
	}
	r.nextID++
	id := r.nextID
	r.sessions[id] = s
	return id, nil
}

// Remove deregisters a session. Unknown ids are ignored (teardown and
// drain can race benignly).
func (r *Registry) Remove(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, id)
}

// Len reports the number of registered sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Stats sums the accounting of every live session. Sessions are read in
// id order so any future order-sensitive aggregation stays
// deterministic.
func (r *Registry) Stats() SessionStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sumLocked()
}

// sumLocked aggregates every registered session's accounting, in id
// order. Callers hold r.mu.
func (r *Registry) sumLocked() SessionStats {
	var total SessionStats
	for _, id := range r.sortedIDs() {
		s := r.sessions[id].Stats()
		total.BytesIn += s.BytesIn
		total.BytesOut += s.BytesOut
		total.Requests += s.Requests
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.Flushes += s.Flushes
		total.Trims += s.Trims
		total.StatusErrors += s.StatusErrors
		total.Service += s.Service
	}
	return total
}

// sortedIDs returns the registered session ids ascending. Callers hold
// r.mu.
func (r *Registry) sortedIDs() []uint64 {
	ids := make([]uint64, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Drain begins shutdown: no new session may register, the aggregate
// accounting of everything still live is captured, and the backend is
// flushed so every write any session acknowledged is durable before the
// listener reports the service stopped.
//
// The flush runs outside r.mu: it is a blocking device call (the
// lockorder analyzer's held-across-device rule), and holding the
// registry lock across it would wedge every connection teardown —
// Remove blocks on r.mu — behind the slowest device in the array. The
// draining flag is already set when the lock drops, so the snapshot
// stays exact: no session can register between capture and flush.
func (r *Registry) Drain(backend Backend) (SessionStats, error) {
	r.mu.Lock()
	r.draining = true
	total := r.sumLocked()
	r.mu.Unlock()
	if err := backend.Flush(); err != nil {
		return total, fmt.Errorf("server: drain flush: %w", err)
	}
	return total, nil
}
